// Defining your own rewrite rules. Rules are S-expression pairs over the
// operator language (paper §3.2); multi-output rules list several source and
// target expressions. An optional condition inspects the matched variables'
// shape analysis, for preconditions the syntactic match can't express.
//
// This example teaches the optimizer that average-pooling commutes with
// relu, and adds a (contrived) multi-pattern rule merging two relus of the
// same input through a concat — then shows both firing on a toy graph.
#include <cstdio>

#include "cost/cost.h"
#include "optimizer/optimizer.h"
#include "rewrite/rewrite.h"
#include "rewrite/rules.h"

int main() {
  using namespace tensat;

  // Single-pattern rule with a condition: only fire on 4-D tensors wider
  // than 4 channels (demonstrates the InfoLookup interface).
  RewriteCondition wide_enough = [](const InfoLookup& info) {
    const ValueInfo& x = info(Symbol("x"));
    return x.kind == VKind::kTensor && x.rank() == 4 && x.shape[1] >= 4;
  };
  Rewrite pool_relu =
      make_rewrite("custom-pool-relu-commute",
                   "(poolavg (relu ?x) ?kh ?kw ?sh ?sw ?p 0)",
                   "(relu (poolavg ?x ?kh ?kw ?sh ?sw ?p 0))", wide_enough);

  // Multi-pattern rule: two separate consumers of relu(x) and sigmoid(x)
  // become two splits of one concatenated activation block.
  Rewrite merge_acts = make_rewrite(
      "custom-merge-activations",
      "(relu ?x) (sigmoid ?x)",
      "(split0 (split 1 (concat2 1 (relu ?x) (sigmoid ?x)))) "
      "(split1 (split 1 (concat2 1 (relu ?x) (sigmoid ?x))))");

  std::vector<Rewrite> rules = default_rules();
  rules.push_back(pool_relu);
  rules.push_back(merge_acts);

  Graph g;
  const Id x = g.input("x", {1, 16, 16, 16});
  g.add_root(g.poolavg(g.relu(x), 2, 2, 2, 2, kPadValid));
  g.add_root(g.sigmoid(x));

  const T4CostModel model;
  TensatOptions options;
  options.k_max = 4;
  options.node_limit = 1000;
  const TensatResult result = optimize(g, rules, model, options);

  std::printf("original : %.2f us\n", result.original_cost);
  std::printf("optimized: %.2f us\n", result.optimized_cost);
  std::printf("graph    : %s\n",
              result.optimized.to_sexpr(result.optimized.roots()[0]).c_str());
  std::printf("\n(custom rules participated in saturation alongside the %zu\n"
              " built-in rules)\n",
              default_rules().size());
  return 0;
}
