// Optimizing a BERT encoder stack (the paper's Fig. 8 scenario): the Q/K/V
// projection matmuls share the layer input, so equality saturation merges
// them into one matmul over concatenated weight matrices — the weights
// concatenate at inference-preparation time for free, and one large matmul
// beats three small kernel launches.
//
// The example also contrasts greedy and ILP extraction on the same e-graph:
// greedy cannot see that the merged matmul is shared between the Q/K/V
// outputs (paper §6.5), so only ILP realizes the gain.
#include <cstdio>

#include "extract/engine/engine.h"
#include "extract/extract.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "trace/report.h"

int main() {
  using namespace tensat;

  const Graph bert = make_bert(/*layers=*/2, /*seq=*/64, /*hidden=*/512);
  const T4CostModel model;
  std::printf("BERT (2 layers, seq 64, hidden 512): %zu operators, cost %.1f us\n",
              bert.reachable_size(), graph_cost(bert, model));

  TensatOptions options;
  options.k_max = 6;
  options.k_multi = 1;
  options.node_limit = 900;
  options.ilp.time_limit_s = 30.0;

  EGraph eg = seed_egraph(bert);
  const ExploreStats explore = run_exploration(eg, default_rules(), options);
  std::printf("exploration: %zu e-nodes, %zu e-classes, %zu cycle-filtered\n",
              explore.enodes_total, explore.eclasses, explore.filtered);
  trace::print_explore_phases(stdout, explore, "phase times");

  const ExtractionResult greedy = extract_greedy(eg, model);
  const EngineExtractionResult ilp = extract_engine(eg, model, options.ilp);
  std::printf("greedy extraction: %.1f us\n", greedy.ok ? greedy.cost : -1.0);
  std::printf("ILP extraction   : %.1f us%s\n", ilp.ok ? ilp.cost : -1.0,
              ilp.timed_out ? " (timeout; best incumbent)" : "");
  trace::print_extract_phases(stdout, ilp.stats, "extract phases");
  std::printf("engine: %zu reachable classes -> %zu forced + %zu free + %zu "
              "collapsed (monolithic instance would be one core)\n",
              ilp.stats.classes_reachable, ilp.stats.classes_forced,
              ilp.stats.classes_free, ilp.stats.classes_collapsed);

  if (ilp.ok) {
    const auto hist = ilp.graph.op_histogram();
    const auto count = [&](Op op) { return hist.count(op) ? hist.at(op) : 0; };
    std::printf("\noptimized graph uses: %d matmul, %d concat2, %d split "
                "(vs %d matmul originally)\n",
                count(Op::kMatmul), count(Op::kConcat2), count(Op::kSplit),
                bert.op_histogram().at(Op::kMatmul));
  }
  return 0;
}
