// Optimizing a NasRNN cell — the paper's best case (68.9% speedup in Table
// 1, Fig. 11 pattern): each cell computes eight gates, each gate a pair of
// matmuls against the step input x_t and the hidden state h. Sixteen small
// matmuls collapse into a few large ones via the multi-pattern rules.
//
// This example also compares against the TASO-style backtracking baseline on
// the same graph, cost model, and rule set — the paper's Table 1 row.
#include <cstdio>

#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "support/timer.h"
#include "taso/search.h"
#include "trace/report.h"

int main() {
  using namespace tensat;

  const Graph cell = make_nasrnn(/*steps=*/2, /*batch=*/16, /*hidden=*/512);
  const T4CostModel model;
  std::printf("NasRNN (2 steps, hidden 512): %zu operators, cost %.1f us\n",
              cell.reachable_size(), graph_cost(cell, model));

  // TASO-style sequential backtracking search.
  TasoOptions taso_options;
  taso_options.iterations = 30;
  taso_options.time_limit_s = 60.0;
  Timer taso_timer;
  const TasoResult taso = taso_search(cell, default_rules(), model, taso_options);
  std::printf("TASO  : %.1f us after %.2fs (best found at %.2fs)\n", taso.best_cost,
              taso.stats.total_seconds, taso.stats.best_seconds);

  // TENSAT.
  TensatOptions options;
  options.k_max = 6;
  options.k_multi = 2;  // two rounds merge gate pairs, then pairs of pairs
  options.node_limit = 1500;
  Timer tensat_timer;
  const TensatResult tensat = optimize(cell, default_rules(), model, options);
  std::printf("TENSAT: %.1f us after %.2fs (explore %.2fs + extract %.2fs)\n",
              tensat.optimized_cost, tensat_timer.seconds(),
              tensat.explore.seconds, tensat.extract_seconds);
  trace::print_explore_phases(stdout, tensat.explore, "        explore phases");
  trace::print_extract_phases(stdout, tensat.extract_stats,
                              "        extract phases");

  std::printf("\nspeedup over original: TASO %.1f%%, TENSAT %.1f%%\n",
              100.0 * (taso.original_cost - taso.best_cost) / taso.best_cost,
              100.0 * (tensat.original_cost - tensat.optimized_cost) /
                  tensat.optimized_cost);
  return 0;
}
