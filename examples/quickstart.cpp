// Quickstart: build a small tensor graph, optimize it with TENSAT, and
// inspect what changed.
//
//   $ ./build/examples/quickstart
//
// The graph is the paper's Figure 2 motif: two matmuls sharing an input.
// Equality saturation discovers the merged form (one matmul of concatenated
// weights, recovered with split) and ILP extraction selects it because the
// merged kernel is cheaper than two small ones.
#include <cstdio>

#include "cost/cost.h"
#include "lang/graph.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"

int main() {
  using namespace tensat;

  // 1. Build the input graph: y1 = x * W1, y2 = x * W2.
  Graph g;
  const Id x = g.input("x", {64, 512});
  const Id w1 = g.weight("w1", {512, 512});
  const Id w2 = g.weight("w2", {512, 512});
  g.add_root(g.matmul(x, w1));
  g.add_root(g.matmul(x, w2));

  // 2. Configure and run the optimizer (defaults follow the paper §6.1).
  const T4CostModel model;
  TensatOptions options;
  options.k_max = 6;       // exploration iterations
  options.k_multi = 1;     // multi-pattern iterations
  options.node_limit = 2000;
  const TensatResult result = optimize(g, default_rules(), model, options);

  // 3. Report.
  std::printf("original cost : %8.2f us\n", result.original_cost);
  std::printf("optimized cost: %8.2f us  (%.1f%% speedup)\n", result.optimized_cost,
              100.0 * (result.original_cost - result.optimized_cost) /
                  result.optimized_cost);
  std::printf("exploration   : %d iterations, %zu e-nodes, %zu e-classes (%s)\n",
              result.explore.iterations, result.explore.enodes_total,
              result.explore.eclasses,
              result.explore.stop == StopReason::kSaturated ? "saturated" : "limit");
  std::printf("phase times   : search %.3fs, apply %.3fs, rebuild %.3fs, "
              "dmap %.3fs, cycle sweep %.3fs\n",
              result.explore.search_seconds, result.explore.apply_seconds,
              result.explore.rebuild_seconds, result.explore.dmap_seconds,
              result.explore.cycle_sweep_seconds);
  std::printf("extraction    : reach %.3fs, reduce %.3fs, lp-build %.3fs, "
              "solve %.3fs, stitch %.3fs (%zu cores, largest %zu vars of %zu "
              "classes)\n",
              result.extract_stats.reach_seconds, result.extract_stats.reduce_seconds,
              result.extract_stats.lp_build_seconds, result.extract_stats.solve_seconds,
              result.extract_stats.stitch_seconds, result.extract_stats.num_cores,
              result.extract_stats.largest_core_vars,
              result.extract_stats.classes_reachable);
  std::printf("\noptimized graph (root expression):\n%s\n",
              result.optimized.to_sexpr(result.optimized.roots()[0]).c_str());
  return 0;
}
