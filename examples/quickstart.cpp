// Quickstart: build a small tensor graph, optimize it with TENSAT, and
// inspect what changed.
//
//   $ ./build/examples/quickstart
//
// The graph is the paper's Figure 2 motif: two matmuls sharing an input.
// Equality saturation discovers the merged form (one matmul of concatenated
// weights, recovered with split) and ILP extraction selects it because the
// merged kernel is cheaper than two small ones.
#include <cstdio>

#include "cost/cost.h"
#include "lang/graph.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "trace/report.h"

int main() {
  using namespace tensat;

  // 1. Build the input graph: y1 = x * W1, y2 = x * W2.
  Graph g;
  const Id x = g.input("x", {64, 512});
  const Id w1 = g.weight("w1", {512, 512});
  const Id w2 = g.weight("w2", {512, 512});
  g.add_root(g.matmul(x, w1));
  g.add_root(g.matmul(x, w2));

  // 2. Configure and run the optimizer (defaults follow the paper §6.1).
  const T4CostModel model;
  TensatOptions options;
  options.k_max = 6;       // exploration iterations
  options.k_multi = 1;     // multi-pattern iterations
  options.node_limit = 2000;
  const TensatResult result = optimize(g, default_rules(), model, options);

  // 3. Report.
  std::printf("original cost : %8.2f us\n", result.original_cost);
  std::printf("optimized cost: %8.2f us  (%.1f%% speedup)\n", result.optimized_cost,
              100.0 * (result.original_cost - result.optimized_cost) /
                  result.optimized_cost);
  std::printf("exploration   : %d iterations, %zu e-nodes, %zu e-classes (%s)\n",
              result.explore.iterations, result.explore.enodes_total,
              result.explore.eclasses,
              result.explore.stop == StopReason::kSaturated ? "saturated" : "limit");
  trace::print_explore_phases(stdout, result.explore, "phase times   ");
  trace::print_extract_phases(stdout, result.extract_stats, "extraction    ");
  std::printf("\noptimized graph (root expression):\n%s\n",
              result.optimized.to_sexpr(result.optimized.roots()[0]).c_str());
  return 0;
}
