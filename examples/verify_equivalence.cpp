// Verifying an optimization end to end: optimize a model, save both graphs,
// reload them, and check with the reference interpreter that they compute
// identical outputs on shared random inputs. This is the workflow a user
// would run before trusting an optimized graph in production (the optimized
// graph is also printed in the serialized exchange format).
#include <cstdio>

#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "serialize/serialize.h"
#include "tensor/interp.h"

namespace {

/// Drops the noop chain the optimizer adds for single-rooting, so outputs
/// can be compared tensor by tensor.
std::vector<tensat::Id> real_roots(const tensat::Graph& g) {
  using namespace tensat;
  std::vector<Id> out;
  std::vector<Id> stack(g.roots().begin(), g.roots().end());
  while (!stack.empty()) {
    const Id id = stack.back();
    stack.pop_back();
    if (g.node(id).op == Op::kNoop) {
      stack.push_back(g.node(id).children[1]);
      stack.push_back(g.node(id).children[0]);
    } else {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace tensat;

  Graph original = make_squeezenet(/*fires=*/1, /*channels=*/8, /*hw=*/8);
  const T4CostModel model;

  TensatOptions options;
  options.k_max = 4;
  options.node_limit = 2000;
  const TensatResult result = optimize(original, default_rules(), model, options);
  std::printf("cost: %.2f -> %.2f us\n", result.original_cost, result.optimized_cost);

  // Round-trip both graphs through the serializer (as a deployment would).
  Graph opt = load_graph_from_string(save_graph_to_string(result.optimized));
  original.single_root();
  Graph orig = load_graph_from_string(save_graph_to_string(original));

  orig.set_roots(real_roots(orig));
  opt.set_roots(real_roots(opt));
  const auto a = Interpreter(2026).run_roots(orig);
  const auto b = Interpreter(2026).run_roots(opt);
  if (a.size() != b.size()) {
    std::printf("FAIL: output count differs (%zu vs %zu)\n", a.size(), b.size());
    return 1;
  }
  float worst = 0.0f;
  for (size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, Tensor::max_abs_diff(a[i], b[i]));
  std::printf("max |difference| across %zu outputs: %.2e\n", a.size(),
              static_cast<double>(worst));
  std::printf(worst < 1e-3 ? "VERIFIED: graphs are equivalent\n"
                           : "FAIL: outputs diverge\n");
  return worst < 1e-3 ? 0 : 1;
}
