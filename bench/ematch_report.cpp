// E-matching throughput report: runs the bench/micro_egraph.cpp matcher
// workload (every canonical pattern of the default rule set against model
// seed e-graphs) through both the naive recursive matcher and the compiled
// e-matching VM, and writes matches/sec plus the speedup to a JSON file so
// later PRs have a perf trajectory to compare against.
//
// Usage: bench_ematch_report [output.json]   (default: BENCH_ematch.json)
#include <cstdio>
#include <string>
#include <vector>

#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/matcher.h"
#include "rewrite/multi.h"
#include "rewrite/rules.h"
#include "support/timer.h"

using namespace tensat;

namespace {

struct Throughput {
  double seconds{0.0};
  size_t matches{0};
  [[nodiscard]] double matches_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(matches) / seconds : 0.0;
  }
};

/// Repeats the full-rule-set search until `min_seconds` of work accumulates
/// (at least once), then reports the per-sweep average.
template <typename SearchAll>
Throughput measure(const SearchAll& search_all, double min_seconds = 0.3) {
  size_t reps = 0;
  size_t matches = 0;
  Timer timer;
  do {
    matches = search_all();  // identical every sweep; keep the last count
    ++reps;
  } while (timer.seconds() < min_seconds);
  Throughput t;
  t.seconds = timer.seconds() / static_cast<double>(reps);
  t.matches = matches;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_ematch.json";
  const MultiPlan plan = build_multi_plan(default_rules());

  struct ModelRow {
    std::string name;
    size_t eclasses;
    size_t enodes;
    Throughput naive;
    Throughput vm;
  };
  std::vector<ModelRow> rows;

  std::vector<ModelInfo> models;
  models.push_back({"BERT(2,32,128)", make_bert(2, 32, 128)});  // micro_egraph workload
  models.push_back({"NasRNN(1,8,64)", make_nasrnn(1, 8, 64)});
  models.push_back({"Inception-v3(2,32,16)", make_inception_v3(2, 32, 16)});

  std::printf("%-24s %10s %12s | %12s %12s | %8s\n", "model", "eclasses",
              "naive m/s", "vm m/s", "matches", "speedup");
  for (const ModelInfo& m : models) {
    EGraph eg = seed_egraph(m.graph);
    ModelRow row;
    row.name = m.name;
    row.eclasses = eg.num_classes();
    row.enodes = eg.num_enodes();
    row.naive = measure([&] {
      size_t total = 0;
      for (const CanonicalPattern& cp : plan.patterns)
        total += search_pattern_naive(eg, cp.pat, cp.root).size();
      return total;
    });
    row.vm = measure([&] {
      size_t total = 0;
      for (const CanonicalPattern& cp : plan.patterns)
        total += ematch::search(eg, cp.program).size();
      return total;
    });
    std::printf("%-24s %10zu %12.0f | %12.0f %12zu | %7.2fx\n", row.name.c_str(),
                row.eclasses, row.naive.matches_per_sec(), row.vm.matches_per_sec(),
                row.vm.matches, row.naive.seconds / row.vm.seconds);
    rows.push_back(std::move(row));
  }

  double naive_seconds = 0.0, vm_seconds = 0.0;
  for (const ModelRow& r : rows) {
    naive_seconds += r.naive.seconds;
    vm_seconds += r.vm.seconds;
  }
  const double speedup = vm_seconds > 0.0 ? naive_seconds / vm_seconds : 0.0;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": \"all canonical patterns of default_rules() vs "
                  "model seed e-graphs (bench/ematch_report.cpp; same search as "
                  "bench/micro_egraph.cpp BM_EMatchAllRules*)\",\n");
  std::fprintf(f, "  \"models\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ModelRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"eclasses\": %zu, \"enodes\": %zu,\n"
                 "     \"naive\": {\"seconds_per_sweep\": %.6f, \"matches\": %zu, "
                 "\"matches_per_sec\": %.0f},\n"
                 "     \"vm\": {\"seconds_per_sweep\": %.6f, \"matches\": %zu, "
                 "\"matches_per_sec\": %.0f},\n"
                 "     \"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.eclasses, r.enodes, r.naive.seconds,
                 r.naive.matches, r.naive.matches_per_sec(), r.vm.seconds, r.vm.matches,
                 r.vm.matches_per_sec(), r.naive.seconds / r.vm.seconds,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"overall_speedup_vm_over_naive\": %.2f\n", speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\noverall speedup (vm over naive): %.2fx -> %s\n", speedup,
              out_path.c_str());
  return speedup >= 2.0 ? 0 : 2;  // acceptance gate: VM must be >= 2x naive
}
