// E-matching throughput report (see bench/README.md for the JSON schema):
//
//  1. single-pattern: every canonical pattern of the default rule set against
//     model seed e-graphs, naive recursive matcher vs compiled VM (the same
//     workload as bench/micro_egraph.cpp BM_EMatchAllRules*). Gate: the VM
//     must stay >= 2x the naive matcher.
//  2. multi_join: every multi-pattern rule, Cartesian-product join of the
//     per-source match sets vs the joint VM program that prunes incompatible
//     combinations during the search. Gate: joint must not be slower overall.
//  3. parallel: the full canonical-pattern sweep on 1 thread vs a small
//     worker pool (ematch::search_all; identical results by construction).
//  4. apply: full exploration runs; the staged pipeline with a stage-1
//     worker pool vs the serial baseline (the same staged code at
//     apply_threads = 1, the determinism anchor), with the legacy direct
//     path (TensatOptions::staged_apply = false) reported for context.
//     Compares accumulated ExploreStats::apply_seconds and records the
//     per-phase breakdown. Gate: staged with the pool must not be slower
//     than the serial staged baseline overall.
//  5. cycles: full exploration runs; incremental cycle analysis
//     (TensatOptions::incremental_cycles, journal/epoch descendants map +
//     scoped sweep) vs the fresh-rebuild baseline, comparing
//     ExploreStats::dmap_seconds + cycle_sweep_seconds. The two modes must
//     agree on applications and filtered nodes (they produce bit-identical
//     e-graphs). Gate: incremental must not be slower than fresh overall.
//  6. extract: ILP extraction on explored e-graphs; the decomposing engine
//     (extract/engine: reductions + SCC condensation + per-core solves) vs
//     the monolithic one-shot ILP. On instances both solve, costs must agree
//     and the engine must not be slower overall; additionally at least one
//     instance the monolithic path rejects as too_large (its post-presolve
//     variable count exceeds max_instance_nodes) must be solved by the
//     engine — the scalability claim the subsystem exists for.
//  7. trace: the full canonical-pattern sweep on the explored-BERT e-graph
//     (every ematch::search emits a span) with a trace::Tracer installed vs
//     disabled, min-of-N timing to resist CI noise. Gate: tracing-enabled
//     overhead must stay <= 5%.
//  8. pool: the persistent work-stealing pool (support/pool.h) vs the
//     pre-pool thread-spawning dispatch, on a chunked explored-graph sweep
//     (one fork-join per small pattern batch — the fine-grained shape the
//     lowered kMinParallelSearchWork floor enables). Gate: pool dispatch
//     must be >= 1.5x the spawning baseline. Also records the end-to-end
//     exploration wall-time scaling curve at 1/2/4/8 threads (not gated:
//     on a single-core runner the honest curve is flat) and the pool's
//     lifetime job/invitation/steal totals.
//  9. service: the optimization service (src/service) on a repeated +
//     perturbed request mix (small BERT / NasRNN / SharedMM): cold (every
//     reuse layer off) vs cached steady state (result-cache hits after a
//     warm-up pass), plus a session leg resuming perturbed variants and a
//     cache-only bit-identity check (a hit must return the exact bytes an
//     independent cold recomputation produces). Gates: cached must be
//     >= 5x cold (exit 15); hits must be bit-identical (exit 16).
// 10. metrics: the always-on service metrics layer (src/metrics — latency
//     histograms, gauges, flight recorder) priced on the cached steady-state
//     mix: two identically-warmed services differing only in enable_metrics,
//     min-of-N interleaved reps. Gate: metrics-enabled per-request time must
//     stay <= 1.05x disabled (exit 17).
//
// The top-level JSON carries provenance: schema_version, git_sha,
// hardware_concurrency, build_type (bench/README.md).
//
// Usage: bench_ematch_report [output.json]   (default: BENCH_ematch.json)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <thread>

#include "bench_common.h"
#include "ematch/machine.h"
#include "extract/engine/engine.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/matcher.h"
#include "rewrite/multi.h"
#include "rewrite/rules.h"
#include "serialize/serialize.h"
#include "service/service.h"
#include "support/buildinfo.h"
#include "support/rng.h"
#include "support/parallel.h"
#include "support/pool.h"
#include "support/timer.h"
#include "trace/trace.h"

using namespace tensat;

namespace {

struct Throughput {
  double seconds{0.0};
  size_t matches{0};
  [[nodiscard]] double matches_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(matches) / seconds : 0.0;
  }
};

/// Repeats the full-rule-set search until `min_seconds` of work accumulates
/// (at least once), then reports the per-sweep average.
template <typename SearchAll>
Throughput measure(const SearchAll& search_all, double min_seconds = 0.3) {
  size_t reps = 0;
  size_t matches = 0;
  Timer timer;
  do {
    matches = search_all();  // identical every sweep; keep the last count
    ++reps;
  } while (timer.seconds() < min_seconds);
  Throughput t;
  t.seconds = timer.seconds() / static_cast<double>(reps);
  t.matches = matches;
  return t;
}

/// A multi-pattern stress graph: `groups` distinct inputs, each feeding
/// `per_group` matmuls. Every matmul matches every multi-rule source, so the
/// Cartesian product has (groups*per_group)^2 combinations per rule while
/// only same-input (resp. same-weight) pairs are compatible — the blow-up
/// case the joint plan exists for.
Graph make_shared_matmul_blowup(int groups, int per_group) {
  Graph g;
  for (int grp = 0; grp < groups; ++grp) {
    const Id x = g.input("x" + std::to_string(grp), {64, 64});
    for (int i = 0; i < per_group; ++i) {
      const Id w =
          g.weight("w" + std::to_string(grp) + "_" + std::to_string(i), {64, 64});
      g.add_root(g.matmul(x, w));
    }
  }
  return g;
}

/// One workload e-graph for the multi_join and parallel sections.
struct Workload {
  std::string name;
  EGraph eg;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_ematch.json";
  const std::vector<Rewrite>& rules = default_rules();
  const MultiPlan plan = build_multi_plan(rules);
  using tensat::bench::cost_model;  // the shared bench T4 model (section 6)

  // ---- Section 1: naive vs VM on every canonical pattern -------------------
  struct ModelRow {
    std::string name;
    size_t eclasses;
    size_t enodes;
    Throughput naive;
    Throughput vm;
  };
  std::vector<ModelRow> rows;

  std::vector<ModelInfo> models;
  models.push_back({"BERT(2,32,128)", make_bert(2, 32, 128)});  // micro_egraph workload
  models.push_back({"NasRNN(1,8,64)", make_nasrnn(1, 8, 64)});
  models.push_back({"Inception-v3(2,32,16)", make_inception_v3(2, 32, 16)});

  std::printf("%-24s %10s %12s | %12s %12s | %8s\n", "model", "eclasses",
              "naive m/s", "vm m/s", "matches", "speedup");
  for (const ModelInfo& m : models) {
    EGraph eg = seed_egraph(m.graph);
    ModelRow row;
    row.name = m.name;
    row.eclasses = eg.num_classes();
    row.enodes = eg.num_enodes();
    row.naive = measure([&] {
      size_t total = 0;
      for (const CanonicalPattern& cp : plan.patterns)
        total += search_pattern_naive(eg, cp.pat, cp.root).size();
      return total;
    });
    row.vm = measure([&] {
      size_t total = 0;
      for (const CanonicalPattern& cp : plan.patterns)
        total += ematch::search(eg, cp.program).size();
      return total;
    });
    std::printf("%-24s %10zu %12.0f | %12.0f %12zu | %7.2fx\n", row.name.c_str(),
                row.eclasses, row.naive.matches_per_sec(), row.vm.matches_per_sec(),
                row.vm.matches, row.naive.seconds / row.vm.seconds);
    rows.push_back(std::move(row));
  }

  double naive_seconds = 0.0, vm_seconds = 0.0;
  for (const ModelRow& r : rows) {
    naive_seconds += r.naive.seconds;
    vm_seconds += r.vm.seconds;
  }
  const double speedup = vm_seconds > 0.0 ? naive_seconds / vm_seconds : 0.0;

  // ---- Workloads for the multi_join and parallel sections ------------------
  // Seed e-graphs are small; an explored e-graph (merged classes, more
  // e-nodes per class) plus a synthetic shared-operand graph cover the
  // regimes where the Cartesian product actually blows up.
  std::vector<Workload> workloads;
  workloads.push_back({"BERT(2,32,128) seed", seed_egraph(models[0].graph)});
  workloads.push_back({"SharedMM(8x12) seed", seed_egraph(make_shared_matmul_blowup(8, 12))});
  {
    EGraph eg = seed_egraph(models[0].graph);
    TensatOptions opt;
    opt.k_max = 2;
    opt.k_multi = 1;
    opt.node_limit = 4000;
    run_exploration(eg, rules, opt);
    workloads.push_back({"BERT(2,32,128) explored", std::move(eg)});
  }

  // ---- Section 2: Cartesian-product join vs joint plan ---------------------
  struct JoinRow {
    std::string name;
    size_t eclasses;
    size_t combos_tried;  // tuples the Cartesian join examines per sweep
    Throughput cartesian;
    Throughput joint;
  };
  std::vector<JoinRow> join_rows;

  std::printf("\n%-24s %10s %12s | %12s %12s | %8s\n", "multi-pattern join",
              "combos", "cart m/s", "joint m/s", "matches", "speedup");
  for (Workload& w : workloads) {
    const EGraph& eg = w.eg;
    JoinRow row;
    row.name = w.name;
    row.eclasses = eg.num_classes();
    row.combos_tried = 0;
    // Cartesian baseline, exactly as the exploration loop used to do it:
    // search each canonical source pattern once (shared across rules), then
    // per rule decanonicalize the per-source lists and join them.
    row.cartesian = measure([&] {
      std::vector<std::vector<PatternMatch>> matches(plan.patterns.size());
      std::vector<bool> searched(plan.patterns.size(), false);
      size_t total = 0;
      row.combos_tried = 0;
      for (size_t r = 0; r < rules.size(); ++r) {
        if (!rules[r].is_multi()) continue;
        std::vector<std::vector<PatternMatch>> per_source;
        for (const SourceBinding& sb : plan.rule_sources[r]) {
          if (!searched[sb.pattern_index]) {
            matches[sb.pattern_index] =
                ematch::search(eg, plan.patterns[sb.pattern_index].program);
            searched[sb.pattern_index] = true;
          }
          std::vector<PatternMatch> list;
          list.reserve(matches[sb.pattern_index].size());
          for (const PatternMatch& m : matches[sb.pattern_index])
            list.push_back(PatternMatch{m.root, decanonicalize(m.subst, sb.rename)});
          per_source.push_back(std::move(list));
        }
        size_t combos = 0;
        total += cartesian_join(per_source, 0, &combos).size();
        row.combos_tried += combos;
      }
      return total;
    });
    row.joint = measure([&] {
      size_t total = 0;
      for (size_t r = 0; r < rules.size(); ++r)
        if (rules[r].is_multi())
          total += ematch::search_joint(eg, plan.joint_programs[r]).size();
      return total;
    });
    std::printf("%-24s %10zu %12.0f | %12.0f %12zu | %7.2fx\n", row.name.c_str(),
                row.combos_tried, row.cartesian.matches_per_sec(),
                row.joint.matches_per_sec(), row.joint.matches,
                row.cartesian.seconds / row.joint.seconds);
    if (row.cartesian.matches != row.joint.matches) {
      std::fprintf(stderr,
                   "joint/cartesian match-count mismatch on %s: %zu vs %zu\n",
                   row.name.c_str(), row.joint.matches, row.cartesian.matches);
      return 3;
    }
    join_rows.push_back(std::move(row));
  }

  double cart_seconds = 0.0, joint_seconds = 0.0;
  for (const JoinRow& r : join_rows) {
    cart_seconds += r.cartesian.seconds;
    joint_seconds += r.joint.seconds;
  }
  const double join_speedup =
      joint_seconds > 0.0 ? cart_seconds / joint_seconds : 0.0;

  // ---- Section 3: serial vs parallel canonical-pattern sweep ---------------
  // At least 2 so the worker-pool path is really measured, even on one core
  // (where the honest answer is "no speedup"); at most 4 to keep CI stable.
  const size_t pool =
      std::max<size_t>(2, std::min<size_t>(4, resolve_threads(0)));
  std::vector<const ematch::Program*> progs;
  progs.reserve(plan.patterns.size());
  for (const CanonicalPattern& cp : plan.patterns) progs.push_back(&cp.program);

  struct ParallelRow {
    std::string name;
    Throughput serial;
    Throughput parallel;
  };
  std::vector<ParallelRow> par_rows;

  std::printf("\n%-24s %12s | %12s | %8s   (%zu threads)\n", "parallel sweep",
              "1-thread m/s", "N-thread m/s", "speedup", pool);
  for (Workload& w : workloads) {
    const EGraph& eg = w.eg;
    ParallelRow row;
    row.name = w.name;
    row.serial = measure([&] {
      size_t total = 0;
      for (const auto& found : ematch::search_all(eg, progs, 1))
        total += found.size();
      return total;
    });
    row.parallel = measure([&] {
      size_t total = 0;
      for (const auto& found : ematch::search_all(eg, progs, pool))
        total += found.size();
      return total;
    });
    std::printf("%-24s %12.0f | %12.0f | %7.2fx\n", row.name.c_str(),
                row.serial.matches_per_sec(), row.parallel.matches_per_sec(),
                row.serial.seconds / row.parallel.seconds);
    par_rows.push_back(std::move(row));
  }

  // ---- Section 4: serial staged apply vs pooled staged apply ---------------
  // Full exploration runs from a fresh seed each repetition; only the apply
  // phase (ExploreStats::apply_seconds) is compared — search, rebuild, and
  // extraction are identical work on both sides. The baseline is the SAME
  // staged code at apply_threads = 1 (the determinism anchor: any thread
  // count produces a bit-identical e-graph, so this is purely a throughput
  // comparison). The legacy direct path is reported for context: it does
  // less total node work (it reuses the live hash-cons mid-iteration, which
  // snapshot planning cannot), the deficit the stage-1 pool repays.
  // SharedMM is the apply-heavy blow-up shape; BERT the model workload.
  struct ApplyStats {
    double apply_seconds{0.0};
    double search_seconds{0.0};
    double rebuild_seconds{0.0};
    size_t applications{0};
  };
  struct ApplyRow {
    std::string name;
    ApplyStats serial;   // staged, apply_threads = 1
    ApplyStats pooled;   // staged, apply_threads = apply_pool
    ApplyStats legacy;   // direct path (staged_apply = false), context only
  };
  std::vector<ApplyRow> apply_rows;

  const auto measure_apply = [&rules](const Graph& g, bool staged, size_t threads,
                                      double min_seconds = 0.5) {
    TensatOptions opt;
    opt.k_max = 3;
    opt.k_multi = 1;
    opt.node_limit = 6000;
    opt.staged_apply = staged;
    opt.apply_threads = threads;
    ApplyStats acc;
    size_t reps = 0;
    Timer timer;
    do {
      EGraph eg = seed_egraph(g);
      const ExploreStats s = run_exploration(eg, rules, opt);
      acc.apply_seconds += s.apply_seconds;
      acc.search_seconds += s.search_seconds;
      acc.rebuild_seconds += s.rebuild_seconds;
      acc.applications = s.applications;  // identical every rep
      ++reps;
    } while (timer.seconds() < min_seconds);
    acc.apply_seconds /= static_cast<double>(reps);
    acc.search_seconds /= static_cast<double>(reps);
    acc.rebuild_seconds /= static_cast<double>(reps);
    return acc;
  };

  struct ApplyWorkload {
    std::string name;
    Graph graph;
  };
  std::vector<ApplyWorkload> apply_workloads;
  apply_workloads.push_back({"BERT(2,32,128)", models[0].graph});
  apply_workloads.push_back({"SharedMM(8x12)", make_shared_matmul_blowup(8, 12)});

  // Honest hardware pool (capped for CI stability): on a single-core machine
  // the pooled configuration IS the serial one, so it is measured once and
  // the comparison degenerates to 1x by construction.
  const size_t apply_pool = std::min<size_t>(4, resolve_threads(0));

  std::printf("\n%-24s %12s %12s %12s | %12s | %8s   (%zu threads)\n",
              "apply phase", "staged-1t s", "staged-Nt s", "legacy s",
              "applications", "speedup", apply_pool);
  for (const ApplyWorkload& w : apply_workloads) {
    ApplyRow row;
    row.name = w.name;
    row.serial = measure_apply(w.graph, /*staged=*/true, /*threads=*/1);
    row.pooled = apply_pool > 1
                     ? measure_apply(w.graph, /*staged=*/true, apply_pool)
                     : row.serial;
    row.legacy = measure_apply(w.graph, /*staged=*/false, /*threads=*/1);
    std::printf("%-24s %12.4f %12.4f %12.4f | %12zu | %7.2fx\n", row.name.c_str(),
                row.serial.apply_seconds, row.pooled.apply_seconds,
                row.legacy.apply_seconds, row.pooled.applications,
                row.serial.apply_seconds / row.pooled.apply_seconds);
    apply_rows.push_back(std::move(row));
  }

  double serial_apply_seconds = 0.0, pooled_apply_seconds = 0.0;
  for (const ApplyRow& r : apply_rows) {
    serial_apply_seconds += r.serial.apply_seconds;
    pooled_apply_seconds += r.pooled.apply_seconds;
  }
  const double apply_speedup =
      pooled_apply_seconds > 0.0 ? serial_apply_seconds / pooled_apply_seconds : 0.0;

  // ---- Section 5: incremental vs fresh cycle analysis ----------------------
  // Full exploration runs from a fresh seed each repetition; only the cycle
  // analysis work (ExploreStats::dmap_seconds + cycle_sweep_seconds) is
  // compared — it is exactly the work the incremental subsystem replaces:
  // descendants-map construction/epoch advances and the post-rebuild sweep.
  // The differential suite (tests/cycles_incremental_test.cpp) proves the
  // two modes produce bit-identical e-graphs; the bench re-checks the cheap
  // observable part (applications + filtered counts) every run.
  struct CycleSide {
    double dmap_seconds{0.0};
    double cycle_sweep_seconds{0.0};
    size_t applications{0};
    size_t filtered{0};
    [[nodiscard]] double total() const { return dmap_seconds + cycle_sweep_seconds; }
  };
  struct CycleRow {
    std::string name;
    CycleSide fresh;
    CycleSide incremental;
  };
  std::vector<CycleRow> cycle_rows;

  const auto measure_cycles = [&rules](const Graph& g, bool incremental,
                                       double min_seconds = 0.5) {
    TensatOptions opt;
    opt.k_max = 3;
    opt.k_multi = 1;
    opt.node_limit = 6000;
    opt.incremental_cycles = incremental;
    CycleSide acc;
    size_t reps = 0;
    Timer timer;
    do {
      EGraph eg = seed_egraph(g);
      const ExploreStats s = run_exploration(eg, rules, opt);
      acc.dmap_seconds += s.dmap_seconds;
      acc.cycle_sweep_seconds += s.cycle_sweep_seconds;
      acc.applications = s.applications;  // identical every rep
      acc.filtered = s.filtered;
      ++reps;
    } while (timer.seconds() < min_seconds);
    acc.dmap_seconds /= static_cast<double>(reps);
    acc.cycle_sweep_seconds /= static_cast<double>(reps);
    return acc;
  };

  std::vector<ApplyWorkload> cycle_workloads;
  cycle_workloads.push_back({"BERT(2,32,128)", models[0].graph});
  cycle_workloads.push_back({"NasRNN(1,8,64)", models[1].graph});
  cycle_workloads.push_back({"SharedMM(8x12)", make_shared_matmul_blowup(8, 12)});

  std::printf("\n%-24s %10s %10s | %10s %10s | %8s\n", "cycle analysis",
              "fresh dmap", "sweep s", "inc dmap", "sweep s", "speedup");
  for (const ApplyWorkload& w : cycle_workloads) {
    CycleRow row;
    row.name = w.name;
    row.fresh = measure_cycles(w.graph, /*incremental=*/false);
    row.incremental = measure_cycles(w.graph, /*incremental=*/true);
    std::printf("%-24s %10.5f %10.5f | %10.5f %10.5f | %7.2fx\n", row.name.c_str(),
                row.fresh.dmap_seconds, row.fresh.cycle_sweep_seconds,
                row.incremental.dmap_seconds, row.incremental.cycle_sweep_seconds,
                row.fresh.total() / row.incremental.total());
    if (row.fresh.applications != row.incremental.applications ||
        row.fresh.filtered != row.incremental.filtered) {
      std::fprintf(stderr,
                   "incremental/fresh cycle-analysis mismatch on %s: "
                   "applications %zu vs %zu, filtered %zu vs %zu\n",
                   row.name.c_str(), row.incremental.applications,
                   row.fresh.applications, row.incremental.filtered,
                   row.fresh.filtered);
      return 7;
    }
    cycle_rows.push_back(std::move(row));
  }

  double fresh_cycle_seconds = 0.0, inc_cycle_seconds = 0.0;
  for (const CycleRow& r : cycle_rows) {
    fresh_cycle_seconds += r.fresh.total();
    inc_cycle_seconds += r.incremental.total();
  }
  const double cycle_speedup =
      inc_cycle_seconds > 0.0 ? fresh_cycle_seconds / inc_cycle_seconds : 0.0;

  // ---- Section 6: extraction engine vs monolithic ILP ----------------------
  // Explored e-graphs (cycle-filtered, so extraction runs without the
  // acyclicity constraints — the paper's main mode). The first rows are
  // sized so the monolithic ILP solves them: there the engine must match the
  // cost and not be slower overall. The last row is sized past the
  // monolithic max_instance_nodes refusal: the engine must solve it anyway
  // (its largest residual core stays small), demonstrating the cap lift.
  struct ExtractSide {
    double seconds{0.0};
    double cost{0.0};
    bool ok{false};
    bool too_large{false};
    bool timed_out{false};
    size_t vars{0};
    size_t cores{0};
    size_t largest_core{0};
    double gap{-1.0};  // certified relative gap; < 0 = not applicable
    size_t fallback_cores{0};
    int warm_start_hits{0};
    int refactorizations{0};
  };
  struct ExtractRow {
    std::string name;
    size_t enodes{0};
    ExtractSide mono;
    ExtractSide engine;
  };
  std::vector<ExtractRow> extract_rows;

  struct ExtractWorkload {
    std::string name;
    Graph graph;
    int k_max;
    size_t node_limit;
    // Certified-gap stop for the engine side. Tight (1e-3) rows are also
    // cost-parity-checked against the monolithic solver; the headline row
    // stops at the gate threshold itself so the proof tail is not spent
    // past the certificate the gate asks for.
    double rel_gap{1e-3};
  };
  std::vector<ExtractWorkload> extract_workloads;
  extract_workloads.push_back({"BERT(1,16,64) explored", make_bert(1, 16, 64), 2, 400});
  extract_workloads.push_back({"NasRNN(1,8,64) explored", models[1].graph, 2, 800});
  extract_workloads.push_back(
      {"SharedMM(6x8) explored", make_shared_matmul_blowup(6, 8), 2, 2500});
  extract_workloads.push_back(
      {"SharedMM(8x12) explored", make_shared_matmul_blowup(8, 12), 3, 6000});
  // The headline instance (paper Table 3's BERT, bench-scaled): two rewrite
  // iterations grow a chained ~512-variable core — the shape that used to
  // defeat the bundled B&B outright (42% gap at the 20 s budget). The
  // engine must land a certified gap <= 1% within the budget (gated below,
  // exit 13).
  extract_workloads.push_back(
      {"BERT(2,32,128) explored", models[0].graph, 2, 4000, 0.01});

  const double extract_time_limit = 20.0;
  std::printf("\n%-24s %8s | %10s %8s | %10s %8s %6s | %8s\n", "extraction",
              "enodes", "mono s", "vars", "engine s", "largest", "cores",
              "speedup");
  for (const ExtractWorkload& w : extract_workloads) {
    TensatOptions opt;
    opt.k_max = w.k_max;
    opt.k_multi = 1;
    opt.node_limit = w.node_limit;
    EGraph eg = seed_egraph(w.graph);
    run_exploration(eg, rules, opt);

    ExtractRow row;
    row.name = w.name;
    row.enodes = eg.num_enodes();

    IlpExtractOptions mono_opt;
    mono_opt.time_limit_s = extract_time_limit;
    Timer t;
    const IlpExtractionResult mono = extract_ilp(eg, cost_model(), mono_opt);
    row.mono.seconds = t.seconds();
    row.mono.cost = mono.cost;
    row.mono.ok = mono.ok;
    row.mono.too_large = mono.too_large;
    row.mono.timed_out = mono.timed_out;
    row.mono.vars = mono.num_vars;

    ExtractEngineOptions engine_opt;
    engine_opt.time_limit_s = extract_time_limit;
    engine_opt.rel_gap = w.rel_gap;
    t.reset();
    const EngineExtractionResult engine = extract_engine(eg, cost_model(), engine_opt);
    row.engine.seconds = t.seconds();
    row.engine.cost = engine.cost;
    row.engine.ok = engine.ok;
    row.engine.too_large = engine.too_large;
    row.engine.timed_out = engine.timed_out;
    row.engine.vars = engine.stats.milp_vars_total;
    row.engine.cores = engine.stats.num_cores;
    row.engine.largest_core = engine.stats.largest_core_vars;
    if (std::isfinite(engine.stats.gap)) row.engine.gap = engine.stats.gap;
    row.engine.fallback_cores = engine.stats.fallback_cores;
    row.engine.warm_start_hits = engine.stats.warm_start_hits;
    row.engine.refactorizations = engine.stats.refactorizations;

    char gap_buf[32];
    if (row.engine.gap >= 0.0)
      std::snprintf(gap_buf, sizeof gap_buf, "gap %.3f%%", 100.0 * row.engine.gap);
    else
      std::snprintf(gap_buf, sizeof gap_buf, "gap -");
    std::printf("%-24s %8zu | %10.4f %8zu | %10.4f %8zu %6zu | %7.2fx  %s%s%s\n",
                row.name.c_str(), row.enodes, row.mono.seconds, row.mono.vars,
                row.engine.seconds, row.engine.largest_core, row.engine.cores,
                row.mono.ok && row.engine.ok && !row.mono.too_large
                    ? row.mono.seconds / row.engine.seconds
                    : 0.0,
                gap_buf, row.mono.too_large ? "  (mono: too large)" : "",
                row.engine.fallback_cores > 0 ? "  (engine: lp fallback)" : "");
    // Cost parity is only meaningful when both sides solved to (gap-)
    // optimality: a timeout incumbent on either side is by-design allowed
    // to be worse.
    if (row.mono.ok && row.engine.ok && !row.mono.timed_out &&
        !row.engine.timed_out &&
        std::abs(row.mono.cost - row.engine.cost) >
            std::max(1e-6, 2e-3 * std::abs(row.mono.cost))) {
      std::fprintf(stderr,
                   "extract engine/monolithic cost mismatch on %s: %.6f vs %.6f\n",
                   row.name.c_str(), row.engine.cost, row.mono.cost);
      return 10;
    }
    extract_rows.push_back(std::move(row));
  }

  double mono_extract_seconds = 0.0, engine_extract_seconds = 0.0;
  size_t extract_shared_rows = 0;
  bool solved_too_large = false;
  for (const ExtractRow& r : extract_rows) {
    if (r.mono.ok && r.engine.ok && !r.mono.timed_out && !r.engine.timed_out) {
      mono_extract_seconds += r.mono.seconds;
      engine_extract_seconds += r.engine.seconds;
      ++extract_shared_rows;
    }
    if (r.mono.too_large && r.engine.ok && !r.engine.timed_out)
      solved_too_large = true;
  }
  // With no mutually solved row (e.g. the monolithic side times out on every
  // shared instance on a loaded runner) there is nothing to compare: the
  // speed gate is skipped rather than reported as an engine loss.
  const double extract_speedup =
      extract_shared_rows == 0 ? 1.0
      : engine_extract_seconds > 0.0
          ? mono_extract_seconds / engine_extract_seconds
          : 0.0;
  // Headline gap gate (exit 13): the engine must land BERT(2,32,128)
  // explored with a certified relative gap <= 1% inside the shared budget.
  bool bert_gap_ok = false;
  double bert_gap = -1.0;
  for (const ExtractRow& r : extract_rows) {
    if (r.name.rfind("BERT(2,32,128)", 0) != 0) continue;
    bert_gap = r.engine.gap;
    bert_gap_ok = r.engine.ok && r.engine.gap >= 0.0 && r.engine.gap <= 0.01;
  }

  // ---- Section 6b: per-node LP microbench, sparse vs dense simplex ---------
  // One extraction-shaped LP relaxation (cover rows over [0,1] variables —
  // the exact shape of a B&B node) solved cold by both solve_lp paths,
  // min-of-reps. The sparse revised simplex must be >= 2x the dense tableau
  // per node (gated, exit 14): its per-iteration cost is O(nnz + eta file)
  // against the tableau's O(m * (n + m)) full-matrix update.
  double lp_dense_s = 0.0, lp_sparse_s = 0.0, lp_micro_obj = 0.0;
  size_t lp_micro_vars = 0, lp_micro_rows_n = 0;
  {
    Rng lp_rng(4242);
    LinearProgram micro;
    constexpr int kMicroVars = 700;
    constexpr int kMicroRows = 450;
    for (int j = 0; j < kMicroVars; ++j)
      micro.add_var(0.0, 1.0, lp_rng.uniform(0.5, 4.0));
    for (int r = 0; r < kMicroRows; ++r) {
      LinearProgram::Row row;
      while (row.terms.size() < 6) {
        const int j = static_cast<int>(lp_rng.below(kMicroVars));
        bool dup = false;
        for (const auto& [jj, c] : row.terms) dup = dup || jj == j;
        if (!dup) row.terms.emplace_back(j, 1.0);
      }
      row.lo = 1.0;
      row.hi = tensat::kInf;
      micro.rows.push_back(row);
    }
    lp_micro_vars = static_cast<size_t>(micro.num_vars());
    lp_micro_rows_n = micro.rows.size();
    const auto time_lp_path = [&](bool sparse) {
      LpOptions o;
      o.sparse = sparse;
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 5; ++rep) {
        Timer t;
        const LpResult r = solve_lp(micro, o);
        if (r.status != LpStatus::kOptimal) return -1.0;
        lp_micro_obj = r.objective;
        best = std::min(best, t.seconds());
      }
      return best;
    };
    lp_dense_s = time_lp_path(false);
    lp_sparse_s = time_lp_path(true);
  }
  const double lp_micro_speedup =
      lp_dense_s > 0.0 && lp_sparse_s > 0.0 ? lp_dense_s / lp_sparse_s : 0.0;
  std::printf("\n%-24s %10s | %10s | %8s   (%zu vars, %zu cover rows)\n",
              "per-node LP solve", "dense s", "sparse s", "speedup",
              lp_micro_vars, lp_micro_rows_n);
  std::printf("%-24s %10.4f | %10.4f | %7.2fx\n", "extraction-shaped LP",
              lp_dense_s, lp_sparse_s, lp_micro_speedup);

  // ---- Section 7: tracing overhead, enabled vs disabled --------------------
  // Workload: the explored-BERT canonical-pattern sweep (the trace-densest
  // hot path — one ematch/search span per pattern per sweep, so the span
  // record cost is maximally represented relative to useful work). Min-of-N
  // rep timing, same sweep count per rep on both sides: the minimum is the
  // least-interrupted run, the measurement most resistant to CI noise.
  double trace_disabled_s = 0.0, trace_enabled_s = 0.0;
  size_t trace_sweeps_per_rep = 0, trace_events = 0;
  {
    const EGraph& eg = workloads.back().eg;  // "BERT(2,32,128) explored"
    const auto sweep = [&] {
      size_t total = 0;
      for (const auto& found : ematch::search_all(eg, progs, 1))
        total += found.size();
      return total;
    };
    // Warm up before calibrating: the first sweep here runs on caches cold
    // from the LP section and can read >10x the steady-state sweep, and
    // calibrating the rep size on it shrinks reps to a few ms — fragile
    // against timer granularity and vCPU steal. Calibrate on the
    // steady-state rate so one rep is ~50ms of work.
    sweep();
    Timer cal;
    for (int i = 0; i < 3; ++i) sweep();
    trace_sweeps_per_rep = std::max<size_t>(
        1, static_cast<size_t>(0.05 / std::max(cal.seconds() / 3.0, 1e-9)));
    constexpr size_t kReps = 7;
    const auto timed_rep = [&] {
      Timer t;
      for (size_t s = 0; s < trace_sweeps_per_rep; ++s) sweep();
      return t.seconds() / static_cast<double>(trace_sweeps_per_rep);
    };
    // Interleave disabled/enabled reps (instead of one full block each) so
    // slow machine-load drift cancels rather than landing entirely on
    // whichever side runs second; min-of-reps still filters bursts.
    trace::Tracer tracer;
    trace_disabled_s = std::numeric_limits<double>::infinity();
    trace_enabled_s = std::numeric_limits<double>::infinity();
    for (size_t rep = 0; rep < kReps; ++rep) {
      trace_disabled_s = std::min(trace_disabled_s, timed_rep());
      tracer.install();
      trace_enabled_s = std::min(trace_enabled_s, timed_rep());
      tracer.uninstall();
    }
    trace_events = tracer.summary().events;
  }
  const double trace_overhead =
      trace_disabled_s > 0.0 ? trace_enabled_s / trace_disabled_s : 1.0;
  std::printf("\n%-24s %14s | %14s | %8s\n", "tracing overhead",
              "disabled s/swp", "enabled s/swp", "ratio");
  std::printf("%-24s %14.6f | %14.6f | %7.3fx  (%zu events)\n",
              "BERT(2,32,128) explored", trace_disabled_s, trace_enabled_s,
              trace_overhead, trace_events);

  // ---- Section 8: persistent pool vs spawning dispatch + thread scaling ----
  // (a) Dispatch comparison, gated: a chunked canonical-pattern sweep over
  // the explored-BERT e-graph — one fork-join per small pattern batch, the
  // fine-grained shape the lowered kMinParallelSearchWork floor exists for.
  // Identical work both sides; the only difference is how each fork-join is
  // dispatched (pool parallel_for vs spawning_parallel_for, the pre-pool
  // implementation kept as the baseline/oracle). Full sweeps bury the
  // dispatch cost under ~1ms of search work; the chunked shape is where a
  // per-dispatch thread spawn actually hurts, and where the pool must win.
  // Min-of-N rep timing, as in section 7, to resist CI noise.
  constexpr size_t kPoolDispatchThreads = 4;
  constexpr size_t kPoolDispatchChunk = 4;
  double pool_dispatch_s = 0.0, spawn_dispatch_s = 0.0;
  size_t pool_dispatches_per_sweep = 0;
  {
    const EGraph& eg = workloads.back().eg;  // "BERT(2,32,128) explored"
    pool_dispatches_per_sweep =
        (progs.size() + kPoolDispatchChunk - 1) / kPoolDispatchChunk;
    const auto sweep = [&](bool spawning) {
      std::vector<std::vector<PatternMatch>> results(progs.size());
      for (size_t c = 0; c < pool_dispatches_per_sweep; ++c) {
        const size_t b = c * kPoolDispatchChunk;
        const size_t e = std::min(b + kPoolDispatchChunk, progs.size());
        const auto body = [&](size_t i) {
          results[b + i] = ematch::search(eg, *progs[b + i]);
        };
        if (spawning)
          spawning_parallel_for(e - b, kPoolDispatchThreads, body);
        else
          parallel_for(e - b, kPoolDispatchThreads, body);
      }
      size_t total = 0;
      for (const auto& found : results) total += found.size();
      return total;
    };
    constexpr size_t kReps = 7;
    constexpr size_t kSweepsPerRep = 20;
    const auto min_of_reps = [&](bool spawning) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t rep = 0; rep < kReps; ++rep) {
        Timer t;
        for (size_t s = 0; s < kSweepsPerRep; ++s) sweep(spawning);
        best = std::min(best, t.seconds() / kSweepsPerRep);
      }
      return best;
    };
    pool_dispatch_s = min_of_reps(false);
    spawn_dispatch_s = min_of_reps(true);
  }
  const double pool_dispatch_speedup =
      pool_dispatch_s > 0.0 ? spawn_dispatch_s / pool_dispatch_s : 0.0;
  std::printf("\n%-24s %14s | %14s | %8s   (%zu thr, %zu-pattern chunks)\n",
              "pool dispatch", "pool s/swp", "spawning s/swp", "speedup",
              kPoolDispatchThreads, kPoolDispatchChunk);
  std::printf("%-24s %14.6f | %14.6f | %7.2fx\n", "BERT(2,32,128) explored",
              pool_dispatch_s, spawn_dispatch_s, pool_dispatch_speedup);

  // (b) End-to-end wall-time scaling curve, recorded (not gated — on a
  // single-core runner the honest curve is flat): one full exploration per
  // thread count with both knobs set, identical e-graphs by the determinism
  // contract, so applications double-checks that only wall time moved.
  struct ScalePoint {
    size_t threads;
    double seconds;
    size_t applications;
  };
  std::vector<ScalePoint> scaling;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    TensatOptions opt;
    opt.k_max = 3;
    opt.k_multi = 1;
    opt.node_limit = 6000;
    opt.search_threads = threads;
    opt.apply_threads = threads;
    double best = std::numeric_limits<double>::infinity();
    size_t applications = 0;
    for (int rep = 0; rep < 3; ++rep) {
      EGraph eg = seed_egraph(models[0].graph);
      Timer t;
      const ExploreStats st = run_exploration(eg, rules, opt);
      best = std::min(best, t.seconds());
      applications = st.applications;
    }
    scaling.push_back(ScalePoint{threads, best, applications});
  }
  std::printf("%-24s", "e2e scaling (threads:s)");
  for (const ScalePoint& p : scaling)
    std::printf("  %zu:%.3f", p.threads, p.seconds);
  const WorkStealingPool::Stats pool_stats = WorkStealingPool::global().stats();
  std::printf("  (pool: %zu jobs, %zu invitations, %zu steals)\n",
              static_cast<size_t>(pool_stats.jobs),
              static_cast<size_t>(pool_stats.invitations),
              static_cast<size_t>(pool_stats.steals));

  // ---- Section 9: optimization service — cached vs cold steady state -------
  // A repeated + perturbed request mix (small BERT / NasRNN / SharedMM)
  // through the service front end (src/service/). cold = every feature off,
  // one full pipeline run per request — the per-request price without reuse.
  // cached = the full service at steady state: after one warm-up pass the
  // repeated mix is all result-cache hits. Gate (exit 15): cached steady-
  // state throughput must be >= 5x cold. Separately, a session leg submits
  // perturbed variants under one session key (reported, not gated: those
  // are real explorations), and a cache-only regime verifies hits return
  // bytes identical to an independent cold recomputation (exit 16).
  service::ServiceOptions service_opt;
  service_opt.tensat.k_max = 3;
  service_opt.tensat.k_multi = 1;
  service_opt.tensat.node_limit = 500;
  service_opt.tensat.ilp.time_limit_s = 5.0;
  service_opt.tensat.ilp.rel_gap = 0.0;  // exact: hit-vs-recompute identity

  struct ServiceRequest {
    const char* name;
    std::string text;
  };
  std::vector<ServiceRequest> service_mix;
  service_mix.push_back({"BERT", save_graph_to_string(make_bert(1, 8, 16))});
  service_mix.push_back({"NasRNN", save_graph_to_string(make_nasrnn(1, 4, 32))});
  service_mix.push_back(
      {"SharedMM", save_graph_to_string(make_shared_matmul_blowup(2, 4))});

  // (a) Cold baseline: features off, one pass over the mix.
  double service_cold_s = 0.0;
  {
    service::ServiceOptions off = service_opt;
    off.enable_cache = false;
    off.enable_sessions = false;
    off.enable_warm_starts = false;
    service::OptimizationService cold_svc(rules, cost_model(), off);
    Timer t;
    for (const ServiceRequest& req : service_mix) {
      const service::ServiceResponse r = cold_svc.submit(req.text);
      if (!r.ok) {
        std::fprintf(stderr, "service cold %s failed: %s\n", req.name,
                     r.error.c_str());
        return 1;
      }
    }
    service_cold_s = t.seconds();
  }
  const double service_cold_rps =
      static_cast<double>(service_mix.size()) / service_cold_s;

  // (b) Full service: warm-up pass + session leg, then the timed steady
  // state (every request a cache hit). Trace counters collected here.
  double service_cached_s = 0.0;
  constexpr size_t kServicePasses = 50;
  size_t service_sessions_reused = 0;
  double service_session_avg_s = 0.0;
  int64_t svc_trace_hits = 0, svc_trace_misses = 0, svc_trace_reused = 0;
  {
    trace::Tracer tracer;
    tracer.install();
    service::OptimizationService svc(rules, cost_model(), service_opt);
    for (const ServiceRequest& req : service_mix) {
      if (!svc.submit(req.text).ok) return 1;  // warm-up: populates the cache
    }
    // Session leg: perturbed BERT variants under one key — one fresh run,
    // then resumes against the persisted e-graph.
    constexpr int kSessionRounds = 3;
    {
      Timer t;
      for (int round = 0; round < kSessionRounds; ++round) {
        Graph variant = make_bert(1, 8, 16);
        variant.add_root(
            variant.relu(variant.input("p" + std::to_string(round), {16, 16})));
        const service::ServiceResponse r =
            svc.submit(save_graph_to_string(variant), "bench-session");
        if (!r.ok) return 1;
        if (r.session_reused) ++service_sessions_reused;
      }
      service_session_avg_s = t.seconds() / kSessionRounds;
    }
    {
      Timer t;
      for (size_t pass = 0; pass < kServicePasses; ++pass)
        for (const ServiceRequest& req : service_mix)
          if (!svc.submit(req.text).ok) return 1;
      service_cached_s = t.seconds();
    }
    tracer.uninstall();
    for (const auto& total : tracer.summary().totals) {
      if (total.name == "service/hits") svc_trace_hits = total.value;
      if (total.name == "service/misses") svc_trace_misses = total.value;
      if (total.name == "service/sessions_reused") svc_trace_reused = total.value;
    }
  }
  const double service_cached_rps =
      static_cast<double>(kServicePasses * service_mix.size()) / service_cached_s;
  const double service_speedup =
      service_cold_rps > 0.0 ? service_cached_rps / service_cold_rps : 0.0;

  // (c) Bit-identity: in the cache-only regime a hit must return exactly
  // the bytes an independent cold service computes for the same graph.
  bool service_bit_identical = true;
  {
    service::ServiceOptions cache_only = service_opt;
    cache_only.enable_sessions = false;
    cache_only.enable_warm_starts = false;
    service::OptimizationService first(rules, cost_model(), cache_only);
    service::OptimizationService fresh(rules, cost_model(), cache_only);
    for (const ServiceRequest& req : service_mix) {
      const service::ServiceResponse cold = first.submit(req.text);
      const service::ServiceResponse hit = first.submit(req.text);
      const service::ServiceResponse recomputed = fresh.submit(req.text);
      if (!cold.ok || !hit.ok || !recomputed.ok || !hit.cache_hit ||
          hit.optimized_text != cold.optimized_text ||
          hit.optimized_text != recomputed.optimized_text) {
        std::fprintf(stderr, "service bit-identity MISMATCH on %s\n", req.name);
        service_bit_identical = false;
      }
    }
  }

  std::printf("\n%-24s %12s | %12s | %8s   (%zu-request mix, %zu passes)\n",
              "service", "cold req/s", "cached req/s", "speedup",
              service_mix.size(), kServicePasses);
  std::printf("%-24s %12.2f | %12.2f | %7.1fx   session avg %.3fs, reused %zu; "
              "hits %lld, misses %lld; bit-identical: %s\n",
              "repeat mix", service_cold_rps, service_cached_rps, service_speedup,
              service_session_avg_s, service_sessions_reused,
              static_cast<long long>(svc_trace_hits),
              static_cast<long long>(svc_trace_misses),
              service_bit_identical ? "yes" : "NO");

  // ---- Section 10: metrics-enabled service overhead ------------------------
  // The metrics layer is always-on in production, so its price is paid on
  // EVERY request — and the cache-hit steady state is where it is most
  // visible: a hit is ~100us of real work, so per-request instrumentation
  // (latency observe, gauge refresh, pool depth scan, flight-ring append)
  // has nowhere to hide. Two identically-optioned services, both warmed to
  // all-hits, differing only in enable_metrics; min-of-N interleaved reps
  // (the section 7 discipline) so machine drift cancels. Gate (exit 17):
  // metrics-enabled <= 1.05x disabled.
  double metrics_disabled_s = 0.0;
  double metrics_enabled_s = 0.0;
  uint64_t metrics_flight_recorded = 0;
  {
    service::ServiceOptions with = service_opt;
    with.enable_metrics = true;
    service::ServiceOptions without = service_opt;
    without.enable_metrics = false;
    service::OptimizationService svc_with(rules, cost_model(), with);
    service::OptimizationService svc_without(rules, cost_model(), without);
    for (const ServiceRequest& req : service_mix) {
      if (!svc_with.submit(req.text).ok) return 1;  // warm both caches
      if (!svc_without.submit(req.text).ok) return 1;
    }
    constexpr size_t kMetricsPasses = 30;  // ~90 hits per rep
    constexpr size_t kMetricsReps = 7;
    const auto timed_rep = [&](service::OptimizationService& svc) {
      Timer t;
      for (size_t pass = 0; pass < kMetricsPasses; ++pass)
        for (const ServiceRequest& req : service_mix)
          if (!svc.submit(req.text).ok) return -1.0;
      return t.seconds() /
             static_cast<double>(kMetricsPasses * service_mix.size());
    };
    metrics_disabled_s = std::numeric_limits<double>::infinity();
    metrics_enabled_s = std::numeric_limits<double>::infinity();
    for (size_t rep = 0; rep < kMetricsReps; ++rep) {
      const double off = timed_rep(svc_without);
      const double on = timed_rep(svc_with);
      if (off < 0.0 || on < 0.0) return 1;
      metrics_disabled_s = std::min(metrics_disabled_s, off);
      metrics_enabled_s = std::min(metrics_enabled_s, on);
    }
    metrics_flight_recorded = svc_with.flight_recorder()->total_recorded();
  }
  const double metrics_overhead =
      metrics_disabled_s > 0.0 ? metrics_enabled_s / metrics_disabled_s : 1.0;
  std::printf("\n%-24s %14s | %14s | %8s\n", "metrics overhead",
              "disabled s/req", "enabled s/req", "ratio");
  std::printf("%-24s %14.6f | %14.6f | %7.3fx  (%llu flight records)\n",
              "cached service mix", metrics_disabled_s, metrics_enabled_s,
              metrics_overhead,
              static_cast<unsigned long long>(metrics_flight_recorded));

  // ---- JSON report ---------------------------------------------------------
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  // Provenance: enough to tell which commit, build flavor, and machine class
  // produced the numbers when two BENCH_ematch.json artifacts disagree.
  std::fprintf(f, "  \"schema_version\": 6,\n");
  std::fprintf(f, "  \"git_sha\": \"%s\",\n", build_git_sha());
  std::fprintf(f, "  \"build_type\": \"%s\",\n", build_type());
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"workload\": \"all canonical patterns of default_rules() vs "
                  "model seed e-graphs (bench/ematch_report.cpp; same search as "
                  "bench/micro_egraph.cpp BM_EMatchAllRules*)\",\n");
  std::fprintf(f, "  \"models\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ModelRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"eclasses\": %zu, \"enodes\": %zu,\n"
                 "     \"naive\": {\"seconds_per_sweep\": %.6f, \"matches\": %zu, "
                 "\"matches_per_sec\": %.0f},\n"
                 "     \"vm\": {\"seconds_per_sweep\": %.6f, \"matches\": %zu, "
                 "\"matches_per_sec\": %.0f},\n"
                 "     \"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.eclasses, r.enodes, r.naive.seconds,
                 r.naive.matches, r.naive.matches_per_sec(), r.vm.seconds, r.vm.matches,
                 r.vm.matches_per_sec(), r.naive.seconds / r.vm.seconds,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"overall_speedup_vm_over_naive\": %.2f,\n", speedup);
  std::fprintf(f, "  \"multi_join\": {\n");
  std::fprintf(f, "    \"workload\": \"all multi-pattern rules of default_rules(): "
                  "Cartesian-product join of per-source VM match sets vs joint VM "
                  "program (src/ematch joint plan)\",\n");
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t i = 0; i < join_rows.size(); ++i) {
    const JoinRow& r = join_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"eclasses\": %zu, "
                 "\"combined_matches\": %zu, \"cartesian_combos_tried\": %zu,\n"
                 "       \"cartesian\": {\"seconds_per_sweep\": %.6f}, "
                 "\"joint\": {\"seconds_per_sweep\": %.6f}, \"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.eclasses, r.joint.matches, r.combos_tried,
                 r.cartesian.seconds, r.joint.seconds,
                 r.cartesian.seconds / r.joint.seconds,
                 i + 1 < join_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"overall_speedup_joint_over_cartesian\": %.2f\n", join_speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"parallel\": {\n");
  std::fprintf(f, "    \"workload\": \"full canonical-pattern sweep via "
                  "ematch::search_all, 1 thread vs pool (identical results by "
                  "construction)\",\n");
  std::fprintf(f, "    \"threads\": %zu,\n", pool);
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t i = 0; i < par_rows.size(); ++i) {
    const ParallelRow& r = par_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"serial\": {\"seconds_per_sweep\": %.6f}, "
                 "\"parallel\": {\"seconds_per_sweep\": %.6f}, \"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.serial.seconds, r.parallel.seconds,
                 r.serial.seconds / r.parallel.seconds,
                 i + 1 < par_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"apply\": {\n");
  std::fprintf(f, "    \"workload\": \"full exploration runs (k_max=3, k_multi=1, "
                  "node_limit=6000): staged plan/commit apply pipeline, "
                  "apply_threads=1 (serial baseline, the determinism anchor) vs a "
                  "stage-1 worker pool, plus the legacy direct path for context; "
                  "seconds are ExploreStats per-phase timings\",\n");
  std::fprintf(f, "    \"threads\": %zu,\n", apply_pool);
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t i = 0; i < apply_rows.size(); ++i) {
    const ApplyRow& r = apply_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"applications\": %zu,\n"
                 "       \"staged_serial\": {\"apply_seconds\": %.6f, "
                 "\"search_seconds\": %.6f, \"rebuild_seconds\": %.6f},\n"
                 "       \"staged_pool\": {\"apply_seconds\": %.6f, "
                 "\"search_seconds\": %.6f, \"rebuild_seconds\": %.6f},\n"
                 "       \"legacy_direct\": {\"apply_seconds\": %.6f},\n"
                 "       \"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.pooled.applications, r.serial.apply_seconds,
                 r.serial.search_seconds, r.serial.rebuild_seconds,
                 r.pooled.apply_seconds, r.pooled.search_seconds,
                 r.pooled.rebuild_seconds, r.legacy.apply_seconds,
                 r.serial.apply_seconds / r.pooled.apply_seconds,
                 i + 1 < apply_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"overall_speedup_pool_over_serial\": %.2f\n", apply_speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"cycles\": {\n");
  std::fprintf(f, "    \"workload\": \"full exploration runs (k_max=3, k_multi=1, "
                  "node_limit=6000): incremental cycle analysis (journal/epoch "
                  "descendants map + scoped sweep, TensatOptions::incremental_cycles) "
                  "vs the per-iteration fresh rebuild; seconds are "
                  "ExploreStats::dmap_seconds / cycle_sweep_seconds\",\n");
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t i = 0; i < cycle_rows.size(); ++i) {
    const CycleRow& r = cycle_rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"applications\": %zu, "
                 "\"filtered\": %zu,\n"
                 "       \"fresh\": {\"dmap_seconds\": %.6f, "
                 "\"cycle_sweep_seconds\": %.6f},\n"
                 "       \"incremental\": {\"dmap_seconds\": %.6f, "
                 "\"cycle_sweep_seconds\": %.6f},\n"
                 "       \"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.incremental.applications, r.incremental.filtered,
                 r.fresh.dmap_seconds, r.fresh.cycle_sweep_seconds,
                 r.incremental.dmap_seconds, r.incremental.cycle_sweep_seconds,
                 r.fresh.total() / r.incremental.total(),
                 i + 1 < cycle_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"overall_speedup_incremental_over_fresh\": %.2f\n",
               cycle_speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"extract\": {\n");
  std::fprintf(f, "    \"workload\": \"ILP extraction of explored (cycle-filtered) "
                  "e-graphs: the decomposing engine (extract/engine: reductions + "
                  "SCC condensation + tree-like DP collapse + per-core solves) vs "
                  "the monolithic one-shot ILP; the last row exceeds the "
                  "monolithic max_instance_nodes cap on purpose\",\n");
  std::fprintf(f, "    \"time_limit_s\": %.1f,\n", extract_time_limit);
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t i = 0; i < extract_rows.size(); ++i) {
    const ExtractRow& r = extract_rows[i];
    // Rows the monolithic side refuses (too_large) or fails have no honest
    // time ratio: speedup is null, and they are excluded from
    // overall_speedup_engine_over_monolithic above.
    char speedup_buf[32];
    if (r.mono.ok && r.engine.ok && !r.mono.too_large)
      std::snprintf(speedup_buf, sizeof speedup_buf, "%.2f",
                    r.mono.seconds / r.engine.seconds);
    else
      std::snprintf(speedup_buf, sizeof speedup_buf, "null");
    char gap_buf[32];
    if (r.engine.gap >= 0.0)
      std::snprintf(gap_buf, sizeof gap_buf, "%.6f", r.engine.gap);
    else
      std::snprintf(gap_buf, sizeof gap_buf, "null");
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"enodes\": %zu,\n"
                 "       \"monolithic\": {\"seconds\": %.6f, \"vars\": %zu, "
                 "\"ok\": %s, \"too_large\": %s, \"cost\": %.4f},\n"
                 "       \"engine\": {\"seconds\": %.6f, \"vars_total\": %zu, "
                 "\"cores\": %zu, \"largest_core_vars\": %zu, \"ok\": %s, "
                 "\"cost\": %.4f,\n"
                 "        \"gap\": %s, \"fallback_cores\": %zu, "
                 "\"warm_start_hits\": %d, \"refactorizations\": %d},\n"
                 "       \"speedup\": %s}%s\n",
                 r.name.c_str(), r.enodes, r.mono.seconds, r.mono.vars,
                 r.mono.ok ? "true" : "false", r.mono.too_large ? "true" : "false",
                 r.mono.cost, r.engine.seconds, r.engine.vars, r.engine.cores,
                 r.engine.largest_core, r.engine.ok ? "true" : "false",
                 r.engine.cost, gap_buf, r.engine.fallback_cores,
                 r.engine.warm_start_hits, r.engine.refactorizations,
                 speedup_buf, i + 1 < extract_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"overall_speedup_engine_over_monolithic\": %.2f,\n",
               extract_speedup);
  std::fprintf(f, "    \"engine_solved_monolithic_too_large\": %s,\n",
               solved_too_large ? "true" : "false");
  std::fprintf(f, "    \"bert_gap\": %s,\n",
               bert_gap >= 0.0
                   ? (std::to_string(bert_gap).c_str())
                   : "null");
  std::fprintf(f, "    \"bert_gap_within_1pct\": %s\n",
               bert_gap_ok ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"lp_microbench\": {\n");
  std::fprintf(f, "    \"workload\": \"one extraction-shaped LP relaxation "
                  "(%zu [0,1] vars, %zu 6-term cover rows) solved cold by "
                  "solve_lp, dense tableau vs sparse revised simplex "
                  "(LpOptions::sparse); min of 5 reps each\",\n",
               lp_micro_vars, lp_micro_rows_n);
  std::fprintf(f, "    \"objective\": %.6f,\n", lp_micro_obj);
  std::fprintf(f, "    \"dense\": {\"seconds\": %.6f}, "
                  "\"sparse\": {\"seconds\": %.6f},\n",
               lp_dense_s, lp_sparse_s);
  std::fprintf(f, "    \"speedup_sparse_over_dense\": %.2f\n", lp_micro_speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"trace\": {\n");
  std::fprintf(f, "    \"workload\": \"full canonical-pattern sweep on the "
                  "explored-BERT e-graph, trace::Tracer installed vs disabled "
                  "(src/trace; every ematch::search records one span); min of 7 "
                  "reps, %zu sweeps per rep\",\n",
               trace_sweeps_per_rep);
  std::fprintf(f, "    \"disabled\": {\"seconds_per_sweep\": %.6f},\n",
               trace_disabled_s);
  std::fprintf(f, "    \"enabled\": {\"seconds_per_sweep\": %.6f, "
                  "\"events_recorded\": %zu},\n",
               trace_enabled_s, trace_events);
  std::fprintf(f, "    \"overhead_ratio_enabled_over_disabled\": %.3f\n",
               trace_overhead);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"pool\": {\n");
  std::fprintf(f, "    \"workload\": \"chunked canonical-pattern sweep on the "
                  "explored-BERT e-graph — one fork-join per %zu-pattern batch "
                  "at %zu participants — dispatched via the persistent "
                  "work-stealing pool (support/pool.h parallel_for) vs the "
                  "pre-pool thread-spawning baseline (spawning_parallel_for); "
                  "min of 7 reps, 20 sweeps per rep; identical matches both "
                  "sides\",\n",
               kPoolDispatchChunk, kPoolDispatchThreads);
  std::fprintf(f, "    \"dispatch\": {\"threads\": %zu, \"chunk\": %zu, "
                  "\"dispatches_per_sweep\": %zu,\n",
               kPoolDispatchThreads, kPoolDispatchChunk,
               pool_dispatches_per_sweep);
  std::fprintf(f, "      \"pool\": {\"seconds_per_sweep\": %.6f}, "
                  "\"spawning\": {\"seconds_per_sweep\": %.6f},\n",
               pool_dispatch_s, spawn_dispatch_s);
  std::fprintf(f, "      \"speedup_pool_over_spawning\": %.2f},\n",
               pool_dispatch_speedup);
  std::fprintf(f, "    \"scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalePoint& p = scaling[i];
    std::fprintf(f,
                 "      {\"threads\": %zu, \"explore_wall_seconds\": %.6f, "
                 "\"applications\": %zu}%s\n",
                 p.threads, p.seconds, p.applications,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"scaling_workload\": \"full BERT(2,32,128) exploration "
                  "(k_max=3, k_multi=1, node_limit=6000), search_threads = "
                  "apply_threads = N, min wall time of 3 runs; e-graphs are "
                  "bit-identical across the curve by the determinism "
                  "contract\",\n");
  std::fprintf(f, "    \"worker_pool_totals\": {\"jobs\": %zu, "
                  "\"invitations\": %zu, \"steals\": %zu}\n",
               static_cast<size_t>(pool_stats.jobs),
               static_cast<size_t>(pool_stats.invitations),
               static_cast<size_t>(pool_stats.steals));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"service\": {\n");
  std::fprintf(f, "    \"workload\": \"repeated + perturbed request mix (small "
                  "BERT / NasRNN / SharedMM) through the optimization service "
                  "(src/service): cold = all reuse layers off, one pipeline run "
                  "per request; cached = full service steady state after a "
                  "warm-up pass (%zu passes over the mix, all result-cache "
                  "hits); session = perturbed BERT variants resumed under one "
                  "session key (real explorations, reported not gated)\",\n",
               kServicePasses);
  std::fprintf(f, "    \"cold\": {\"requests\": %zu, \"seconds\": %.6f, "
                  "\"requests_per_sec\": %.2f},\n",
               service_mix.size(), service_cold_s, service_cold_rps);
  std::fprintf(f, "    \"cached\": {\"requests\": %zu, \"seconds\": %.6f, "
                  "\"requests_per_sec\": %.2f},\n",
               kServicePasses * service_mix.size(), service_cached_s,
               service_cached_rps);
  std::fprintf(f, "    \"speedup_cached_over_cold\": %.2f,\n", service_speedup);
  std::fprintf(f, "    \"session\": {\"requests\": 3, \"reused\": %zu, "
                  "\"avg_seconds\": %.6f},\n",
               service_sessions_reused, service_session_avg_s);
  std::fprintf(f, "    \"bit_identical_hits\": %s,\n",
               service_bit_identical ? "true" : "false");
  std::fprintf(f, "    \"trace_totals\": {\"hits\": %lld, \"misses\": %lld, "
                  "\"sessions_reused\": %lld}\n",
               static_cast<long long>(svc_trace_hits),
               static_cast<long long>(svc_trace_misses),
               static_cast<long long>(svc_trace_reused));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"metrics\": {\n");
  std::fprintf(f, "    \"workload\": \"cached steady-state service mix, two "
                  "identically-warmed services differing only in "
                  "enable_metrics (src/metrics latency histograms + gauges + "
                  "flight recorder on every request); min-of-7 interleaved "
                  "reps, per-request seconds\",\n");
  std::fprintf(f, "    \"disabled_seconds_per_request\": %.9f,\n",
               metrics_disabled_s);
  std::fprintf(f, "    \"enabled_seconds_per_request\": %.9f,\n",
               metrics_enabled_s);
  std::fprintf(f, "    \"overhead_ratio\": %.4f,\n", metrics_overhead);
  std::fprintf(f, "    \"flight_records\": %llu\n",
               static_cast<unsigned long long>(metrics_flight_recorded));
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\noverall speedup (vm over naive): %.2fx, (joint over cartesian): "
              "%.2fx, (pooled over serial apply): %.2fx, (incremental over fresh "
              "cycles): %.2fx, (engine over monolithic extract): %.2fx, "
              "(engine solved a too-large instance): %s, (BERT gap): %s, "
              "(sparse over dense LP): %.2fx, (tracing overhead): "
              "%.3fx, (pool over spawning dispatch): %.2fx, (cached service "
              "over cold): %.1fx, (service hits bit-identical): %s, "
              "(metrics overhead): %.3fx -> %s\n",
              speedup, join_speedup, apply_speedup, cycle_speedup, extract_speedup,
              solved_too_large ? "yes" : "NO",
              bert_gap_ok ? "<= 1%" : "MISSED", lp_micro_speedup,
              trace_overhead, pool_dispatch_speedup, service_speedup,
              service_bit_identical ? "yes" : "NO", metrics_overhead,
              out_path.c_str());
  if (speedup < 2.0) return 2;        // gate: VM must be >= 2x naive
  if (join_speedup < 1.0) return 4;   // gate: joint join must not lose overall
  if (apply_speedup < 1.0) return 5;  // gate: pooled apply must not lose overall
  if (cycle_speedup < 1.0) return 6;  // gate: incremental cycles must not lose
  if (extract_speedup < 1.0) return 8;  // gate: engine extraction must not lose
  if (!solved_too_large) return 9;    // gate: engine must lift the size cap
  if (trace_overhead > 1.05) return 11;  // gate: tracing-enabled overhead <= 5%
  if (pool_dispatch_speedup < 1.5) return 12;  // gate: pool >= 1.5x spawning
  if (!bert_gap_ok) return 13;  // gate: BERT extraction certified within 1%
  if (lp_micro_speedup < 2.0) return 14;  // gate: sparse LP >= 2x dense
  if (service_speedup < 5.0) return 15;  // gate: cached service >= 5x cold
  if (!service_bit_identical) return 16;  // gate: hits == cold recomputation
  if (metrics_overhead > 1.05) return 17;  // gate: metrics-enabled <= 1.05x
  return 0;
}
