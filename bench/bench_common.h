// Shared helpers for the paper-reproduction benchmark harnesses. Each bench
// binary regenerates one table or figure of the paper; the helpers here keep
// configuration (model scales, optimizer settings) consistent across them so
// numbers are comparable between tables.
//
// Environment knobs:
//   TENSAT_BENCH_QUICK=1   shrink workloads for smoke runs (CI / ctest).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cost/cost.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "taso/search.h"

namespace tensat::bench {

inline bool quick_mode() {
  const char* v = std::getenv("TENSAT_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

inline const T4CostModel& cost_model() {
  static const T4CostModel model;
  return model;
}

/// The benchmark models, scaled down in quick mode.
inline std::vector<ModelInfo> bench_models() {
  if (!quick_mode()) return paper_models();
  std::vector<ModelInfo> models;
  models.push_back({"NasRNN", make_nasrnn(1, 8, 128)});
  models.push_back({"BERT", make_bert(1, 16, 64)});
  models.push_back({"ResNeXt-50", make_resnext50(1, 16, 8, 2)});
  models.push_back({"NasNet-A", make_nasnet_a(1, 8, 8)});
  models.push_back({"SqueezeNet", make_squeezenet(1, 16, 16)});
  models.push_back({"VGG-19", make_vgg19(4, 32)});
  models.push_back({"Inception-v3", make_inception_v3(1, 16, 8)});
  return models;
}

/// TENSAT settings mirroring the paper's defaults (§6.1), with the e-graph
/// node limit scaled to what the in-repo MILP can extract from.
inline TensatOptions tensat_options(int k_multi = 1) {
  TensatOptions opt;
  opt.k_max = quick_mode() ? 4 : 8;
  opt.k_multi = k_multi;
  opt.node_limit = quick_mode() ? 500 : 900;
  opt.explore_time_limit_s = 30.0;
  opt.cycle_filter = CycleFilterMode::kEfficient;
  opt.extractor = ExtractorKind::kIlp;
  opt.ilp.time_limit_s = quick_mode() ? 5.0 : 20.0;
  opt.ilp.max_instance_nodes = 2600;
  return opt;
}

/// TASO baseline settings (§6.1: n = 100, alpha = 1.05).
inline TasoOptions taso_options() {
  TasoOptions opt;
  opt.iterations = quick_mode() ? 10 : 100;
  opt.alpha = 1.05;
  opt.time_limit_s = quick_mode() ? 10.0 : 60.0;
  return opt;
}

inline double speedup_percent(double original, double optimized) {
  if (optimized <= 0.0) return 0.0;
  return 100.0 * (original - optimized) / optimized;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(reproduces %s; simulated T4 cost model — compare shapes, not\n"
              " absolute numbers; see EXPERIMENTS.md)\n\n",
              paper_ref);
}

}  // namespace tensat::bench
