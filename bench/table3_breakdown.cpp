// Reproduces paper Table 3: TENSAT optimization-time breakdown into the
// exploration phase and the extraction phase, per benchmark model.
#include "bench/bench_common.h"
#include "support/timer.h"

using namespace tensat;
using namespace tensat::bench;

int main() {
  print_header("Table 3 — TENSAT time breakdown", "Table 3");
  std::printf("%-14s %14s %14s %10s %10s\n", "model", "explore(s)", "extract(s)",
              "enodes", "eclasses");

  for (const ModelInfo& m : bench_models()) {
    const TensatOptions opt = tensat_options();
    EGraph eg = seed_egraph(m.graph);
    const ExploreStats explore = run_exploration(eg, default_rules(), opt);
    Timer t;
    const IlpExtractionResult ext = extract_ilp(eg, cost_model(), opt.ilp);
    const double extract_seconds = t.seconds();
    std::printf("%-14s %14.3f %14.3f %10zu %10zu%s\n", m.name.c_str(),
                explore.seconds, extract_seconds, explore.enodes_total,
                explore.eclasses, ext.timed_out ? "  (ILP timeout)" : "");
    std::fflush(stdout);
  }
  std::printf("\nPaper shape to check: both phases stay in the same order of\n"
              "magnitude; neither dominates by orders of magnitude at k_multi=1.\n");
  return 0;
}
