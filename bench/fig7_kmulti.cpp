// Reproduces paper Figure 7: the effect of the number of multi-pattern
// iterations k_multi in {0,1,2,3} on (left) speedup, (middle) optimizer
// time, and (right) final e-graph size — including the double-exponential
// e-node growth and ILP timeouts at high k_multi.
//
// Also exercises the paper's §6.4 observation: under the "measured runtime"
// model (MeasuredRuntimeModel) a cost-model win can be a (small) runtime
// loss for data-movement-heavy graphs like SqueezeNet.
#include <memory>

#include "bench/bench_common.h"
#include "support/timer.h"

using namespace tensat;
using namespace tensat::bench;

int main() {
  print_header("Figure 7 — varying k_multi", "Figure 7");
  std::printf("%-14s %8s %10s %10s %10s %10s %12s\n", "model", "k_multi", "time(s)",
              "speedup%", "runtime%", "#enodes", "stop");

  auto base = std::make_shared<T4CostModel>();
  const MeasuredRuntimeModel runtime(base, /*movement_penalty=*/0.35,
                                     /*jitter=*/0.01, /*seed=*/7);

  const int max_k = quick_mode() ? 2 : 3;
  for (const ModelInfo& m : bench_models()) {
    for (int k_multi = 0; k_multi <= max_k; ++k_multi) {
      // The paper's two measurements at each k_multi:
      //  * e-graph growth — exploration alone with a high node ceiling (the
      //    double-exponential #enodes curve, Fig. 7 right);
      //  * speedup + optimizer time — the full pipeline at extraction scale
      //    (our MILP's ceiling stands in for the paper's ILP timeouts at
      //    high k_multi).
      TensatOptions grow = tensat_options(k_multi);
      grow.node_limit = quick_mode() ? 8000 : 30000;
      grow.explore_time_limit_s = quick_mode() ? 5.0 : 15.0;
      EGraph eg = seed_egraph(m.graph);
      const ExploreStats growth = run_exploration(eg, default_rules(), grow);

      TensatOptions opt = tensat_options(k_multi);
      Timer t;
      const TensatResult r = optimize(m.graph, default_rules(), cost_model(), opt);
      const double seconds = t.seconds();
      const double pct = speedup_percent(r.original_cost, r.optimized_cost);
      // "True runtime" speedup under the discrepancy model.
      Graph original = m.graph;
      original.single_root();
      const double runtime_pct = speedup_percent(graph_cost(original, runtime),
                                                 graph_cost(r.optimized, runtime));
      const char* stop = r.ilp.too_large         ? "ilp-too-large"
                         : r.ilp.timed_out       ? "ilp-timeout"
                         : r.explore.stop == StopReason::kSaturated ? "saturated"
                         : r.explore.stop == StopReason::kNodeLimit ? "node-limit"
                                                                    : "iter-limit";
      std::printf("%-14s %8d %10.2f %10.2f %10.2f %10zu %12s\n", m.name.c_str(),
                  k_multi, seconds, pct, runtime_pct, growth.enodes_total, stop);
      std::fflush(stdout);
    }
  }
  std::printf("\nPaper shapes to check: #enodes explodes with k_multi (log scale in\n"
              "the paper); speedup is non-decreasing in k_multi under the cost\n"
              "model; optimizer time grows with k_multi; the measured-runtime\n"
              "column can dip below the cost-model column on concat-heavy models\n"
              "(the paper's SqueezeNet anomaly).\n");
  return 0;
}
