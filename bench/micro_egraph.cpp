// Micro-benchmarks (google-benchmark) for the e-graph primitives that
// dominate exploration time: add/hash-cons, merge + rebuild, e-matching,
// descendants-map construction, and cycle filtering.
#include <benchmark/benchmark.h>

#include "cycles/cycles.h"
#include "ematch/machine.h"
#include "lang/parse.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/matcher.h"
#include "rewrite/multi.h"
#include "rewrite/rules.h"

namespace tensat {
namespace {

Graph chain_graph(int n) {
  Graph g;
  Id x = g.input("x", {32, 32});
  for (int i = 0; i < n; ++i) x = (i % 2 == 0) ? g.relu(x) : g.tanh(x);
  g.add_root(x);
  return g;
}

void BM_EGraphAddGraph(benchmark::State& state) {
  const Graph g = chain_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    EGraph eg;
    benchmark::DoNotOptimize(eg.add_graph(g));
  }
}
BENCHMARK(BM_EGraphAddGraph)->Arg(64)->Arg(512);

void BM_HashconsHit(benchmark::State& state) {
  EGraph eg;
  const Graph g = chain_graph(256);
  auto mapping = eg.add_graph(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eg.add_graph(g));  // all hits
  }
}
BENCHMARK(BM_HashconsHit);

void BM_MergeRebuild(benchmark::State& state) {
  // Merge two parallel chains pairwise and rebuild (congruence cascade).
  for (auto _ : state) {
    state.PauseTiming();
    Graph g;
    const Id a = g.input("a", {16, 16});
    const Id b = g.input("b", {16, 16});
    Id xa = a, xb = b;
    for (int i = 0; i < state.range(0); ++i) {
      xa = g.relu(xa);
      xb = g.relu(xb);
    }
    g.add_root(xa);
    g.add_root(xb);
    EGraph eg;
    auto mapping = eg.add_graph(g);
    state.ResumeTiming();
    eg.merge(mapping.at(a), mapping.at(b));
    eg.rebuild();
    benchmark::DoNotOptimize(eg.num_classes());
  }
}
BENCHMARK(BM_MergeRebuild)->Arg(64)->Arg(256);

void BM_EMatch(benchmark::State& state) {
  EGraph eg = seed_egraph(make_bert(2, 32, 128));
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(matmul ?act ?a ?b)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(search_pattern(eg, pat, root));
  }
}
BENCHMARK(BM_EMatch);

// VM-vs-naive matcher comparison: the same search (every canonical pattern
// of the default rule set against a BERT seed e-graph) through the naive
// recursive backtracker and through the compiled e-matching VM. The VM
// programs are precompiled, as in the exploration loop.
void BM_EMatchAllRulesNaive(benchmark::State& state) {
  EGraph eg = seed_egraph(make_bert(2, 32, 128));
  const MultiPlan plan = build_multi_plan(default_rules());
  for (auto _ : state) {
    size_t total = 0;
    for (const CanonicalPattern& cp : plan.patterns)
      total += search_pattern_naive(eg, cp.pat, cp.root).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EMatchAllRulesNaive);

void BM_EMatchAllRulesVM(benchmark::State& state) {
  EGraph eg = seed_egraph(make_bert(2, 32, 128));
  const MultiPlan plan = build_multi_plan(default_rules());
  for (auto _ : state) {
    size_t total = 0;
    for (const CanonicalPattern& cp : plan.patterns)
      total += ematch::search(eg, cp.program).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EMatchAllRulesVM);

void BM_DescendantsMap(benchmark::State& state) {
  EGraph eg = seed_egraph(make_inception_v3(2, 32, 16));
  for (auto _ : state) {
    DescendantsMap d(eg);
    benchmark::DoNotOptimize(d.reaches(0, 1));
  }
}
BENCHMARK(BM_DescendantsMap);

void BM_ExplorationIteration(benchmark::State& state) {
  const Graph g = make_nasrnn(1, 8, 64);
  TensatOptions opt;
  opt.k_max = 1;
  opt.k_multi = 1;
  opt.node_limit = 4000;
  for (auto _ : state) {
    EGraph eg = seed_egraph(g);
    benchmark::DoNotOptimize(run_exploration(eg, default_rules(), opt));
  }
}
BENCHMARK(BM_ExplorationIteration);

}  // namespace
}  // namespace tensat

BENCHMARK_MAIN();
