// Reproduces paper Table 1 (and the data behind Figures 4 and 5):
// optimization time and runtime speedup of TASO's backtracking search vs
// TENSAT's equality saturation, over the seven benchmark models.
//
// TENSAT runs at k_multi = 1 and k_multi = 2; the paper likewise bumps
// k_multi per model (its "Incept. k=2" row) — which k wins depends on how
// the e-graph node budget splits between multi-pattern merges and algebraic
// rewrites (see EXPERIMENTS.md).
#include <algorithm>

#include "bench/bench_common.h"
#include "support/timer.h"

using namespace tensat;
using namespace tensat::bench;

int main() {
  print_header("Table 1 / Fig. 4 / Fig. 5 — TASO vs TENSAT", "Table 1, Figures 4-5");
  std::printf("%-14s %9s %9s | %8s %9s %9s %9s | %11s\n", "model", "tasoT(s)",
              "tasoBest", "taso(%)", "ts.k1(%)", "ts.k2(%)", "ts.best", "tensat(s)");

  for (const ModelInfo& m : bench_models()) {
    const TasoResult taso =
        taso_search(m.graph, default_rules(), cost_model(), taso_options());
    const double taso_pct = speedup_percent(taso.original_cost, taso.best_cost);

    double pct[3] = {0, 0, 0};
    double seconds[3] = {0, 0, 0};
    for (int k = 1; k <= 2; ++k) {
      Timer t;
      const TensatResult r =
          optimize(m.graph, default_rules(), cost_model(), tensat_options(k));
      seconds[k] = t.seconds();
      pct[k] = speedup_percent(r.original_cost, r.optimized_cost);
    }
    const int best_k = pct[2] > pct[1] ? 2 : 1;
    std::printf("%-14s %9.2f %9.2f | %8.1f %9.1f %9.1f %9.1f | %11.2f\n",
                m.name.c_str(), taso.stats.total_seconds, taso.stats.best_seconds,
                taso_pct, pct[1], pct[2], pct[best_k], seconds[best_k]);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape to check: TENSAT (best k) speedup >= TASO on most models.\n"
      "Optimizer-time note: at this reproduction's scale TASO's search is much\n"
      "cheaper than at paper scale (graphs are 10-100x smaller and our cost\n"
      "model is analytic rather than measured), while TENSAT's time is\n"
      "dominated by the from-scratch MILP; the paper's 10-380x time advantage\n"
      "does not transfer — see EXPERIMENTS.md for the full discussion.\n");
  return 0;
}
