// Reproduces paper Table 6: exploration-phase time under vanilla cycle
// filtering (whole-e-graph pass before every substitution) vs the efficient
// algorithm (descendants-map pre-filter + DFS post-pass), for k_multi = 1, 2.
#include "bench/bench_common.h"

using namespace tensat;
using namespace tensat::bench;

namespace {

double explore_seconds(const ModelInfo& m, int k_multi, CycleFilterMode mode) {
  TensatOptions opt = tensat_options(k_multi);
  opt.cycle_filter = mode;
  opt.explore_time_limit_s = quick_mode() ? 10.0 : 40.0;
  // Exploration only (no extraction here), so the e-graph can grow to where
  // the per-substitution whole-graph passes of vanilla filtering bite.
  opt.node_limit = quick_mode() ? 1500 : 8000;
  EGraph eg = seed_egraph(m.graph);
  const ExploreStats stats = run_exploration(eg, default_rules(), opt);
  return stats.seconds;
}

}  // namespace

int main() {
  print_header("Table 6 — Vanilla vs efficient cycle filtering", "Table 6");
  std::printf("%-14s %7s %12s %12s %9s\n", "model", "k_multi", "vanilla(s)",
              "efficient(s)", "ratio");

  std::vector<std::string> wanted = {"BERT", "NasRNN", "NasNet-A"};
  for (const ModelInfo& m : bench_models()) {
    if (std::find(wanted.begin(), wanted.end(), m.name) == wanted.end()) continue;
    for (int k_multi = 1; k_multi <= 2; ++k_multi) {
      const double vanilla = explore_seconds(m, k_multi, CycleFilterMode::kVanilla);
      const double efficient = explore_seconds(m, k_multi, CycleFilterMode::kEfficient);
      std::printf("%-14s %7d %12.3f %12.3f %8.1fx\n", m.name.c_str(), k_multi,
                  vanilla, efficient, efficient > 0 ? vanilla / efficient : 0.0);
      std::fflush(stdout);
    }
  }
  std::printf("\nPaper shape to check: efficient filtering is faster everywhere and\n"
              "the gap widens sharply with k_multi (paper reports up to ~2000x).\n");
  return 0;
}
