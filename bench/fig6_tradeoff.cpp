// Reproduces paper Figure 6: speedup-over-optimization-time trade-off on
// Inception-v3. TASO's curve comes from its improvement timeline (best cost
// at each time an improvement was found); TENSAT contributes one point per
// k_multi setting (its whole run is a single shot).
#include "bench/bench_common.h"
#include "support/timer.h"

using namespace tensat;
using namespace tensat::bench;

int main() {
  print_header("Figure 6 — speedup vs optimizer time (Inception-v3)", "Figure 6");

  Graph graph;
  for (const ModelInfo& m : bench_models())
    if (m.name == "Inception-v3") graph = m.graph;

  // TASO timeline.
  TasoOptions topt = taso_options();
  topt.time_limit_s = quick_mode() ? 10.0 : 60.0;
  topt.iterations = 1000000;  // let the time limit govern, as in Fig. 6
  const TasoResult taso = taso_search(graph, default_rules(), cost_model(), topt);
  std::printf("TASO curve (time s -> speedup %%):\n");
  for (const auto& [seconds, cost] : taso.stats.timeline)
    std::printf("  %8.2fs  %6.2f%%\n", seconds,
                speedup_percent(taso.original_cost, cost));

  // TENSAT points at k_multi = 1 and 2 (the paper's "Incept." and
  // "Incept. k=2" runs).
  for (int k_multi = 1; k_multi <= 2; ++k_multi) {
    Timer t;
    const TensatResult r =
        optimize(graph, default_rules(), cost_model(), tensat_options(k_multi));
    std::printf("TENSAT k_multi=%d: %8.2fs  %6.2f%%\n", k_multi, t.seconds(),
                speedup_percent(r.original_cost, r.optimized_cost));
    std::fflush(stdout);
  }
  std::printf("\nPaper shape to check: TENSAT reaches its speedup in a fraction of\n"
              "the time TASO needs to approach its own plateau (better trade-off\n"
              "curve).\n");
  return 0;
}
