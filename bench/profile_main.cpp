// tensat_profile — the profiling CLI for the tracing/telemetry layer
// (src/trace, docs/OBSERVABILITY.md).
//
// Runs the full TENSAT pipeline (explore + ILP extract) on one model with a
// trace::Tracer installed, then emits:
//   * trace.json — Chrome trace-event JSON; load it in chrome://tracing or
//     https://ui.perfetto.dev to see per-thread spans for search / plan /
//     commit / rebuild / dmap / sweep and the per-core extraction solves,
//     plus the e-graph growth counters.
//   * a per-rule profile table (matches / planned / committed / nodes added /
//     bans / unbans / attributed seconds per rule) and the per-iteration
//     e-graph growth timeline, on stdout.
//
// Usage: tensat_profile <model> [options]
//   <model>: bert | nasrnn | inception | sharedmm | tiny-bert
//   -o FILE        trace output path (default trace.json)
//   --k-max N      exploration iterations (default 6)
//   --k-multi N    multi-pattern iterations (default 1)
//   --node-limit N e-graph size cap (default 5000)
//   --threads N    search/apply worker threads (default 0 = hardware)
//   --top N        rule-profile rows to print (default 25, 0 = all)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "support/buildinfo.h"
#include "trace/report.h"
#include "trace/trace.h"

using namespace tensat;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <bert|nasrnn|inception|sharedmm|tiny-bert> "
               "[-o trace.json] [--k-max N] [--k-multi N] [--node-limit N] "
               "[--threads N] [--top N]\n",
               argv0);
  return 2;
}

/// The multi-pattern blow-up shape from bench_ematch_report: apply-heavy,
/// good for watching the plan/commit pipeline saturate.
Graph make_sharedmm() {
  Graph g;
  for (int grp = 0; grp < 8; ++grp) {
    const Id x = g.input("x" + std::to_string(grp), {64, 64});
    for (int i = 0; i < 12; ++i) {
      const Id w =
          g.weight("w" + std::to_string(grp) + "_" + std::to_string(i), {64, 64});
      g.add_root(g.matmul(x, w));
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  std::string out_path = "trace.json";
  TensatOptions options;
  options.k_max = 6;
  options.k_multi = 1;
  options.node_limit = 5000;
  options.search_threads = 0;
  options.apply_threads = 0;
  options.ilp.time_limit_s = 30.0;
  size_t top_n = 25;

  const std::string model = argv[1];
  for (int i = 2; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "-o") == 0)
      out_path = need_value("-o");
    else if (std::strcmp(argv[i], "--k-max") == 0)
      options.k_max = std::atoi(need_value("--k-max"));
    else if (std::strcmp(argv[i], "--k-multi") == 0)
      options.k_multi = std::atoi(need_value("--k-multi"));
    else if (std::strcmp(argv[i], "--node-limit") == 0)
      options.node_limit = static_cast<size_t>(std::atol(need_value("--node-limit")));
    else if (std::strcmp(argv[i], "--threads") == 0) {
      const size_t n = static_cast<size_t>(std::atol(need_value("--threads")));
      options.search_threads = n;
      options.apply_threads = n;
    } else if (std::strcmp(argv[i], "--top") == 0)
      top_n = static_cast<size_t>(std::atol(need_value("--top")));
    else
      return usage(argv[0]);
  }

  Graph g;
  if (model == "bert")
    g = make_bert(2, 32, 128);
  else if (model == "nasrnn")
    g = make_nasrnn(2, 16, 512);
  else if (model == "inception")
    g = make_inception_v3(2, 32, 16);
  else if (model == "sharedmm")
    g = make_sharedmm();
  else if (model == "tiny-bert")  // CI smoke scale
    g = make_bert(1, 4, 8);
  else
    return usage(argv[0]);

  const T4CostModel& cost = bench::cost_model();
  std::printf("tensat_profile: %s (%zu operators), build %s/%s\n", model.c_str(),
              g.reachable_size(), build_git_sha(), build_type());

  trace::Tracer tracer;
  tracer.install();
  const TensatResult result = optimize(g, default_rules(), cost, options);
  tracer.uninstall();

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  tracer.write_chrome_trace(out);
  out.close();

  const trace::Summary summary = tracer.summary();
  std::printf("cost: %.1f -> %.1f us (%+.1f%%); explore %.2fs (%d iterations, "
              "stop=%s), extract %.2fs; %zu trace events -> %s\n",
              result.original_cost, result.optimized_cost,
              bench::speedup_percent(result.original_cost, result.optimized_cost),
              result.explore.seconds, result.explore.iterations,
              result.explore.stop == StopReason::kSaturated    ? "saturated"
              : result.explore.stop == StopReason::kNodeLimit  ? "node-limit"
              : result.explore.stop == StopReason::kTimeLimit  ? "time-limit"
                                                               : "iter-limit",
              result.extract_seconds, summary.events, out_path.c_str());
  trace::print_explore_phases(stdout, result.explore, "explore phases");
  trace::print_extract_phases(stdout, result.extract_stats, "extract phases");

  std::printf("\nper-iteration e-graph growth:\n");
  trace::print_growth_timeline(stdout, result.explore);

  std::printf("\nper-rule profile (by attributed seconds):\n");
  trace::print_rule_profile(stdout, result.explore, top_n);

  std::printf("\naggregate span times (all lanes):\n");
  for (const auto& sp : summary.spans)
    std::printf("  %-28s x%-6zu %10.3f ms\n", sp.name.c_str(), sp.count,
                sp.total_us / 1e3);
  if (!summary.totals.empty()) {
    std::printf("aggregate counters:\n");
    for (const auto& t : summary.totals)
      std::printf("  %-28s %12lld\n", t.name.c_str(),
                  static_cast<long long>(t.value));
  }
  return 0;
}
