// Reproduces paper Table 4: greedy vs ILP extraction. Greedy extraction
// ignores subgraph sharing, so on models whose best rewrites rely on shared
// merged operators (BERT, NasNet-A) it fails to improve the graph — or even
// regresses — while ILP extraction finds the optimum.
//
// Rows: runtime cost (simulated microseconds) of the original graph and of
// the graphs produced by greedy and by ILP extraction, k_multi = 1.
#include "bench/bench_common.h"

using namespace tensat;
using namespace tensat::bench;

int main() {
  print_header("Table 4 — Greedy vs ILP extraction", "Table 4");
  std::printf("%-14s %14s %14s %14s\n", "model", "original", "greedy", "ilp");

  for (const ModelInfo& m : bench_models()) {
    const std::string& name = m.name;
    // The paper reports BERT, NasRNN, NasNet-A; we run all models and mark
    // the paper's three.
    const TensatOptions opt = tensat_options();
    EGraph eg = seed_egraph(m.graph);
    run_exploration(eg, default_rules(), opt);

    const double original = graph_cost(m.graph, cost_model());
    const ExtractionResult greedy = extract_greedy(eg, cost_model());
    const IlpExtractionResult ilp = extract_ilp(eg, cost_model(), opt.ilp);

    std::printf("%-14s %14.2f %14.2f %14.2f%s\n", name.c_str(), original,
                greedy.ok ? greedy.cost : -1.0, ilp.ok ? ilp.cost : -1.0,
                ilp.timed_out ? "  (ILP timeout)" : "");
    std::fflush(stdout);
  }
  std::printf("\nPaper shape to check: ILP <= greedy everywhere; on models whose\n"
              "wins come from shared merged operators, greedy stays at (or above)\n"
              "the original cost while ILP improves it.\n");
  return 0;
}
