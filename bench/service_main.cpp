// tensat_service — a small CLI front end for the optimization service
// (src/service/): parses graphs from the tensat-graph v1 text format,
// drives OptimizationService through a repeated request mix, and prints the
// per-request outcomes plus the service trace counters
// (service/{hits,misses,sessions_reused}) for the CI smoke grep.
//
// Usage: tensat_service [options]
//   --rounds N       repeat the request mix N times (default 3)
//   --session KEY    also resubmit a perturbed variant per round under KEY
//                    (default "iter"; empty string disables the session leg)
//   --node-limit N   e-graph size cap per run (default 500)
//   --k-max N        exploration iterations (default 4)
//   --no-cache / --no-sessions / --no-warm   disable one reuse layer
//   --metrics FILE   write Prometheus text exposition to FILE at exit, plus
//                    FILE.round<N> after each round (for monotonicity checks)
//   --metrics-json FILE   write the JSON exposition to FILE at exit
//   --no-metrics     run with the metrics layer disabled entirely
//   --slow-threshold S    flight-recorder slow-request capture threshold in
//                         seconds (default 0 = capture off)
//   --slow-dump-dir DIR   where slow-request Chrome traces land (default ".")
//
// The mix per round is tiny-BERT, tiny-NasRNN, and SharedMM — the same
// shapes bench_ematch_report's service section measures at larger scale.
// Round 1 is all cold; later rounds hit the result cache, and the session
// leg resumes its e-graph, so a healthy run ends with hits > 0 and
// sessions_reused > 0. With metrics on, each round also prints a one-line
// stderr report (p50/p99 latency, hit ratio, pool depth) — the periodic
// operator view a long-lived deployment would log.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metrics/flight.h"
#include "metrics/metrics.h"
#include "models/models.h"
#include "rewrite/rules.h"
#include "serialize/serialize.h"
#include "service/service.h"
#include "support/buildinfo.h"
#include "trace/trace.h"

using namespace tensat;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rounds N] [--session KEY] [--node-limit N] "
               "[--k-max N] [--no-cache] [--no-sessions] [--no-warm]\n"
               "          [--metrics FILE] [--metrics-json FILE] "
               "[--no-metrics] [--slow-threshold S] [--slow-dump-dir DIR]\n",
               argv0);
  return 2;
}

/// SharedMM at smoke scale: the multi-pattern shape from bench_ematch_report.
Graph make_sharedmm_small() {
  Graph g;
  for (int grp = 0; grp < 2; ++grp) {
    const Id x = g.input("x" + std::to_string(grp), {32, 32});
    for (int i = 0; i < 4; ++i) {
      const Id w =
          g.weight("w" + std::to_string(grp) + "_" + std::to_string(i), {32, 32});
      g.add_root(g.matmul(x, w));
    }
  }
  return g;
}

/// A perturbed variant for the session leg: the base model plus one extra
/// disjoint root, distinct per round, so every resubmission is a cache miss
/// that still shares almost all structure with the session's e-graph.
Graph perturb(Graph g, int round) {
  const Id x = g.input("perturb" + std::to_string(round), {16, 16});
  g.add_root(g.relu(x));
  return g;
}

bool write_exposition(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << body;
  return static_cast<bool>(out);
}

/// One operator line per round: merged (all-outcome) latency quantiles, hit
/// ratio, and pool backlog — scraped from the same registry Prometheus sees.
void report_round(const service::OptimizationService& svc, int round) {
  metrics::MetricsRegistry* reg = svc.metrics();
  if (reg == nullptr) return;
  std::vector<metrics::HistogramSnapshot> parts;
  for (const char* outcome : {"hit", "cold", "session", "error"})
    parts.push_back(reg->histogram("tensat_service_submit_seconds",
                                   {{"outcome", outcome}})
                        .snapshot());
  const metrics::HistogramSnapshot all = metrics::merge_snapshots(parts);
  std::fprintf(stderr,
               "metrics round %d: requests %llu  p50 %.4fs  p99 %.4fs  "
               "hit_ratio %.2f  queue_depth %.0f  flight %llu\n",
               round + 1, static_cast<unsigned long long>(all.count),
               all.quantile(0.5), all.quantile(0.99),
               reg->gauge("tensat_service_cache_hit_ratio").value(),
               reg->gauge("tensat_service_pool_queue_depth").value(),
               static_cast<unsigned long long>(
                   svc.flight_recorder()->total_recorded()));
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 3;
  std::string session_key = "iter";
  std::string metrics_path;
  std::string metrics_json_path;
  service::ServiceOptions options;
  options.tensat = bench::tensat_options();
  options.tensat.k_max = 4;
  options.tensat.node_limit = 500;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--rounds") == 0)
      rounds = std::atoi(need_value("--rounds"));
    else if (std::strcmp(argv[i], "--session") == 0)
      session_key = need_value("--session");
    else if (std::strcmp(argv[i], "--node-limit") == 0)
      options.tensat.node_limit =
          static_cast<size_t>(std::atol(need_value("--node-limit")));
    else if (std::strcmp(argv[i], "--k-max") == 0)
      options.tensat.k_max = std::atoi(need_value("--k-max"));
    else if (std::strcmp(argv[i], "--no-cache") == 0)
      options.enable_cache = false;
    else if (std::strcmp(argv[i], "--no-sessions") == 0)
      options.enable_sessions = false;
    else if (std::strcmp(argv[i], "--no-warm") == 0)
      options.enable_warm_starts = false;
    else if (std::strcmp(argv[i], "--metrics") == 0)
      metrics_path = need_value("--metrics");
    else if (std::strcmp(argv[i], "--metrics-json") == 0)
      metrics_json_path = need_value("--metrics-json");
    else if (std::strcmp(argv[i], "--no-metrics") == 0)
      options.enable_metrics = false;
    else if (std::strcmp(argv[i], "--slow-threshold") == 0)
      options.slow_threshold_s = std::atof(need_value("--slow-threshold"));
    else if (std::strcmp(argv[i], "--slow-dump-dir") == 0)
      options.slow_dump_dir = need_value("--slow-dump-dir");
    else
      return usage(argv[0]);
  }

  struct Request {
    const char* name;
    std::string text;
  };
  std::vector<Request> mix;
  mix.push_back({"tiny-bert", save_graph_to_string(make_bert(1, 4, 8))});
  mix.push_back({"tiny-nasrnn", save_graph_to_string(make_nasrnn(1, 4, 32))});
  mix.push_back({"sharedmm", save_graph_to_string(make_sharedmm_small())});
  const Graph session_base = make_bert(1, 4, 8);

  std::printf("tensat_service: %d round(s) x %zu request(s)%s, build %s/%s\n",
              rounds, mix.size(),
              session_key.empty() ? "" : " + 1 session request", build_git_sha(),
              build_type());

  const std::vector<Rewrite>& rules = default_rules();
  const T4CostModel& model = bench::cost_model();
  service::OptimizationService svc(rules, model, options);

  trace::Tracer tracer;
  tracer.install();
  int failures = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const Request& req : mix) {
      const service::ServiceResponse r = svc.submit(req.text);
      if (!r.ok) {
        std::fprintf(stderr, "FAIL %s: %s\n", req.name, r.error.c_str());
        ++failures;
        continue;
      }
      std::printf("round %d %-12s %s  cost %.1f -> %.1f us  %.3fs\n", round + 1,
                  req.name, r.cache_hit ? "hit " : "cold", r.original_cost,
                  r.optimized_cost, r.seconds);
    }
    if (!session_key.empty()) {
      const std::string text = save_graph_to_string(perturb(session_base, round));
      const service::ServiceResponse r = svc.submit(text, session_key);
      if (!r.ok) {
        std::fprintf(stderr, "FAIL session: %s\n", r.error.c_str());
        ++failures;
      } else {
        std::printf("round %d %-12s %s  cost %.1f -> %.1f us  %.3fs\n", round + 1,
                    "session", r.session_reused ? "resume" : "fresh ",
                    r.original_cost, r.optimized_cost, r.seconds);
      }
    }
    report_round(svc, round);
    if (!metrics_path.empty() && svc.metrics() != nullptr) {
      // Per-round snapshots: tools/check_prometheus.py diffs consecutive
      // files to verify counters never decrease across scrapes.
      std::ostringstream body;
      svc.metrics()->expose_prometheus(body);
      write_exposition(metrics_path + ".round" + std::to_string(round + 1),
                       body.str());
    }
  }
  tracer.uninstall();

  const service::ServiceStats stats = svc.stats();
  std::printf("\nrequests %zu  errors %zu  cache %zu/%zu entries  sessions %zu live\n",
              stats.requests, stats.errors, svc.cache_size(),
              options.cache_capacity, svc.live_sessions());
  // One line per service counter, exactly as CI greps them.
  const trace::Summary summary = tracer.summary();
  for (const auto& total : summary.totals)
    if (total.name.rfind("service/", 0) == 0)
      std::printf("%s %lld\n", total.name.c_str(),
                  static_cast<long long>(total.value));

  if (svc.metrics() != nullptr) {
    if (!metrics_path.empty()) {
      std::ostringstream body;
      svc.metrics()->expose_prometheus(body);
      if (!write_exposition(metrics_path, body.str())) ++failures;
      std::printf("metrics/prometheus %s\n", metrics_path.c_str());
    }
    if (!metrics_json_path.empty()) {
      std::ostringstream body;
      svc.metrics()->expose_json(body);
      if (!write_exposition(metrics_json_path, body.str())) ++failures;
      std::printf("metrics/json %s\n", metrics_json_path.c_str());
    }
    const metrics::FlightRecorder& flight = *svc.flight_recorder();
    std::printf("flight/recorded %llu\n",
                static_cast<unsigned long long>(flight.total_recorded()));
    std::printf("flight/dumps %llu\n",
                static_cast<unsigned long long>(flight.dumps_written()));
    for (const std::string& path : flight.dump_paths())
      std::printf("flight/dump %s\n", path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
