// Reproduces paper Table 5: ILP extraction time with vs without the
// acyclicity constraints (4)-(5), with both real-valued and integer-valued
// topological-order variables t_m.
//
// Protocol follows the paper: with cycle constraints, exploration runs with
// NO cycle filtering (the ILP must handle cycles); without them, exploration
// uses efficient cycle filtering (the full TENSAT approach).
#include "bench/bench_common.h"

using namespace tensat;
using namespace tensat::bench;

namespace {

struct Cell {
  double seconds;
  bool timed_out;
};

Cell run(const ModelInfo& m, int k_multi, bool cycle_constraints, bool integer_t) {
  TensatOptions opt = tensat_options(k_multi);
  opt.cycle_filter =
      cycle_constraints ? CycleFilterMode::kNone : CycleFilterMode::kEfficient;
  opt.ilp.cycle_constraints = cycle_constraints;
  opt.ilp.integer_topo_vars = integer_t;
  opt.ilp.time_limit_s = quick_mode() ? 5.0 : 15.0;
  // Smaller e-graphs than Table 1: the contrast needs the no-cycle ILP to
  // finish within our solver's reach (the paper ran SCIP at 50k e-nodes).
  opt.node_limit = quick_mode() ? 300 : 450;

  EGraph eg = seed_egraph(m.graph);
  run_exploration(eg, default_rules(), opt);
  const IlpExtractionResult r = extract_ilp(eg, cost_model(), opt.ilp);
  return Cell{r.solve_seconds, r.timed_out};
}

void print_cell(const Cell& c, double limit) {
  if (c.timed_out)
    std::printf(" %11s", (">" + std::to_string(static_cast<int>(limit)) + "s").c_str());
  else
    std::printf(" %10.2fs", c.seconds);
}

}  // namespace

int main() {
  print_header("Table 5 — ILP with vs without cycle constraints", "Table 5");
  const double limit = quick_mode() ? 5.0 : 15.0;
  std::printf("%-14s %7s %12s %12s %12s\n", "model", "k_multi", "cyc(real)",
              "cyc(int)", "no-cyc");

  // The paper's three models for this ablation.
  std::vector<std::string> wanted = {"BERT", "NasRNN", "NasNet-A"};
  for (const ModelInfo& m : bench_models()) {
    if (std::find(wanted.begin(), wanted.end(), m.name) == wanted.end()) continue;
    for (int k_multi = 1; k_multi <= 2; ++k_multi) {
      const Cell real_t = run(m, k_multi, true, false);
      const Cell int_t = run(m, k_multi, true, true);
      const Cell none = run(m, k_multi, false, false);
      std::printf("%-14s %7d", m.name.c_str(), k_multi);
      print_cell(real_t, limit);
      print_cell(int_t, limit);
      print_cell(none, limit);
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf("\nPaper shape to check: with cycle constraints the solver is one to\n"
              "three orders of magnitude slower (or times out) vs without; real and\n"
              "integer t_m behave similarly.\n");
  return 0;
}
