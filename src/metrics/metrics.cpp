#include "metrics/metrics.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>

#include "support/check.h"

namespace tensat::metrics {

namespace detail {

size_t shard_index() {
  // Hash the thread id once and cache it: the hot path is a TLS read and a
  // mask. kShards is a power of two, so the mask is exact.
  static_assert((kShards & (kShards - 1)) == 0, "kShards must be a power of 2");
  thread_local const size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & (kShards - 1);
  return slot;
}

}  // namespace detail

namespace {

/// Prometheus metric/label-name charset. Family names are fixed strings
/// from our own call sites, so a violation is a programming error.
bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (!alpha && (i == 0 || c < '0' || c > '9')) return false;
  }
  return true;
}

/// Escapes a label value per the text exposition format: backslash, double
/// quote, and newline.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// JSON string escaping for exposition (label values are the only dynamic
/// strings; families are identifier-charset by construction).
std::string escape_json(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Canonical `key="value"` rendering of a label set (insertion order — the
/// caller's outcome enumeration order is the stable exposition order).
std::string render_labels(const Labels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += escape_label_value(labels[i].second);
    out += '"';
  }
  return out;
}

/// `family{labels}` or `family{labels,extra}`; bare family when both empty.
void write_series_name(std::ostream& out, const std::string& family,
                       const std::string& labels, const std::string& extra = "") {
  out << family;
  if (labels.empty() && extra.empty()) return;
  out << '{' << labels;
  if (!labels.empty() && !extra.empty()) out << ',';
  out << extra << '}';
}

void write_double(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

/// JSON has no Inf/NaN literals; a non-finite value (e.g. a gauge someone
/// set to a division by zero) exposes as null rather than invalid JSON.
void write_json_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  write_double(out, v);
}

}  // namespace

// ---- Histogram -------------------------------------------------------------

size_t Histogram::bucket_index(double v) const {
  if (!(v > lowest_)) return 0;  // NaN and everything <= lowest land here
  const double ratio = v / lowest_;
  int exp = 0;
  const double frac = std::frexp(ratio, &exp);  // ratio = frac * 2^exp, frac in [0.5, 1)
  // Bucket i covers (lowest*2^(i-1), lowest*2^i] — the upper edge is
  // inclusive (Prometheus `le`), so an exact power of two (frac == 0.5)
  // belongs one bucket below the open interval frexp reports.
  const int bucket = frac == 0.5 ? exp - 1 : exp;
  const size_t idx = static_cast<size_t>(bucket > 0 ? bucket : 1);
  return idx > kBuckets ? kBuckets : idx;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.lowest = lowest_;
  s.cumulative.assign(kBuckets + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= kBuckets; ++i)
      s.cumulative[i] += shard.buckets[i].load(std::memory_order_relaxed);
    s.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (size_t i = 1; i <= kBuckets; ++i) s.cumulative[i] += s.cumulative[i - 1];
  s.count = s.cumulative[kBuckets];
  return s;
}

double HistogramSnapshot::upper_bound(size_t i) const {
  if (i + 1 >= cumulative.size()) return std::numeric_limits<double>::infinity();
  return lowest * std::ldexp(1.0, static_cast<int>(i));
}

namespace {
/// Finite buckets worth exposing: both edges of every cumulative-count jump
/// (plus bucket 0). Cumulative semantics make the elided runs exactly
/// recoverable, and keeping the jump edges preserves full quantile
/// resolution for a consumer — while a mostly-empty 40-bucket grid
/// collapses to a handful of series.
std::vector<size_t> exposed_buckets(const HistogramSnapshot& s) {
  std::vector<size_t> out;
  const size_t finite = s.cumulative.size() - 1;  // exclude +Inf
  for (size_t i = 0; i < finite; ++i) {
    const uint64_t prev = i == 0 ? 0 : s.cumulative[i - 1];
    const uint64_t next = i + 1 < finite ? s.cumulative[i + 1] : s.count;
    if (i == 0 || s.cumulative[i] != prev || s.cumulative[i] != next)
      out.push_back(i);
  }
  return out;
}
}  // namespace

namespace {
double snapshot_quantile(const HistogramSnapshot& s, double q) {
  if (s.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(s.count);
  size_t b = 0;
  while (b < s.cumulative.size() &&
         static_cast<double>(s.cumulative[b]) < rank)
    ++b;
  if (b + 1 >= s.cumulative.size()) {
    // +Inf bucket: report the largest finite bound (Prometheus convention —
    // the estimate is a floor, not an extrapolation).
    return s.upper_bound(s.cumulative.size() - 2);
  }
  const uint64_t below = b == 0 ? 0 : s.cumulative[b - 1];
  const uint64_t in_bucket = s.cumulative[b] - below;
  const double lower = b == 0 ? 0.0 : s.upper_bound(b - 1);
  const double upper = s.upper_bound(b);
  if (in_bucket == 0) return upper;
  const double frac =
      (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
  return lower + (upper - lower) * (frac < 0.0 ? 0.0 : frac);
}
}  // namespace

double HistogramSnapshot::quantile(double q) const {
  return snapshot_quantile(*this, q);
}

HistogramSnapshot merge_snapshots(const std::vector<HistogramSnapshot>& parts) {
  HistogramSnapshot out;
  for (const HistogramSnapshot& p : parts) {
    if (out.cumulative.empty()) {
      out = p;
      continue;
    }
    TENSAT_CHECK(p.lowest == out.lowest &&
                     p.cumulative.size() == out.cumulative.size(),
                 "merge_snapshots: mismatched histogram grids");
    for (size_t i = 0; i < out.cumulative.size(); ++i)
      out.cumulative[i] += p.cumulative[i];
    out.sum += p.sum;
    out.count += p.count;
  }
  return out;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry::Instance& MetricsRegistry::instance(const std::string& family,
                                                     const Labels& labels,
                                                     Type type,
                                                     const std::string& help,
                                                     double lowest) {
  TENSAT_CHECK(valid_name(family), "invalid metric family name");
  for (const auto& [key, value] : labels) {
    (void)value;
    TENSAT_CHECK(valid_name(key), "invalid metric label name");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  auto [fit, fresh] = families_.try_emplace(family);
  Family& fam = fit->second;
  if (fresh) {
    fam.type = type;
    fam.help = help;
    fam.lowest = lowest;
  } else {
    TENSAT_CHECK(fam.type == type,
                 "metric family re-registered under a different type");
    if (fam.help.empty() && !help.empty()) fam.help = help;
  }
  auto [iit, created] = fam.instances.try_emplace(render_labels(labels));
  Instance& inst = iit->second;
  if (created) {
    inst.labels = labels;
    switch (type) {
      case Type::kCounter: inst.counter = std::make_unique<Counter>(); break;
      case Type::kGauge: inst.gauge = std::make_unique<Gauge>(); break;
      case Type::kHistogram:
        inst.histogram = std::make_unique<Histogram>(fam.lowest);
        break;
    }
  }
  return inst;
}

Counter& MetricsRegistry::counter(const std::string& family,
                                  const Labels& labels,
                                  const std::string& help) {
  return *instance(family, labels, Type::kCounter, help, 0.0).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& family, const Labels& labels,
                              const std::string& help) {
  return *instance(family, labels, Type::kGauge, help, 0.0).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& family,
                                      const Labels& labels,
                                      const std::string& help, double lowest) {
  return *instance(family, labels, Type::kHistogram, help, lowest).histogram;
}

size_t MetricsRegistry::families() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

void MetricsRegistry::expose_prometheus(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty())
      out << "# HELP " << name << ' ' << fam.help << '\n';
    out << "# TYPE " << name << ' '
        << (fam.type == Type::kCounter
                ? "counter"
                : fam.type == Type::kGauge ? "gauge" : "histogram")
        << '\n';
    for (const auto& [label_str, inst] : fam.instances) {
      switch (fam.type) {
        case Type::kCounter:
          write_series_name(out, name, label_str);
          out << ' ' << inst.counter->value() << '\n';
          break;
        case Type::kGauge:
          write_series_name(out, name, label_str);
          out << ' ';
          write_double(out, inst.gauge->value());
          out << '\n';
          break;
        case Type::kHistogram: {
          const HistogramSnapshot s = inst.histogram->snapshot();
          for (const size_t i : exposed_buckets(s)) {
            std::string le = "le=\"";
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.9g", s.upper_bound(i));
            le += buf;
            le += '"';
            write_series_name(out, name + "_bucket", label_str, le);
            out << ' ' << s.cumulative[i] << '\n';
          }
          write_series_name(out, name + "_bucket", label_str, "le=\"+Inf\"");
          out << ' ' << s.count << '\n';
          write_series_name(out, name + "_sum", label_str);
          out << ' ';
          write_double(out, s.sum);
          out << '\n';
          write_series_name(out, name + "_count", label_str);
          out << ' ' << s.count << '\n';
          break;
        }
      }
    }
  }
}

void MetricsRegistry::expose_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto labels_json = [&](const Labels& labels) {
    out << '{';
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out << ',';
      out << '"' << labels[i].first << "\":\"" << escape_json(labels[i].second)
          << '"';
    }
    out << '}';
  };
  bool first_c = true, first_g = true, first_h = true;
  out << "{\"counters\":[";
  for (const auto& [name, fam] : families_) {
    if (fam.type != Type::kCounter) continue;
    for (const auto& [label_str, inst] : fam.instances) {
      (void)label_str;
      if (!first_c) out << ',';
      first_c = false;
      out << "{\"name\":\"" << name << "\",\"labels\":";
      labels_json(inst.labels);
      out << ",\"value\":" << inst.counter->value() << '}';
    }
  }
  out << "],\"gauges\":[";
  for (const auto& [name, fam] : families_) {
    if (fam.type != Type::kGauge) continue;
    for (const auto& [label_str, inst] : fam.instances) {
      (void)label_str;
      if (!first_g) out << ',';
      first_g = false;
      out << "{\"name\":\"" << name << "\",\"labels\":";
      labels_json(inst.labels);
      out << ",\"value\":";
      write_json_double(out, inst.gauge->value());
      out << '}';
    }
  }
  out << "],\"histograms\":[";
  for (const auto& [name, fam] : families_) {
    if (fam.type != Type::kHistogram) continue;
    for (const auto& [label_str, inst] : fam.instances) {
      (void)label_str;
      if (!first_h) out << ',';
      first_h = false;
      const HistogramSnapshot s = inst.histogram->snapshot();
      out << "{\"name\":\"" << name << "\",\"labels\":";
      labels_json(inst.labels);
      out << ",\"count\":" << s.count << ",\"sum\":";
      write_json_double(out, s.sum);
      out << ",\"p50\":";
      write_json_double(out, s.quantile(0.5));
      out << ",\"p90\":";
      write_json_double(out, s.quantile(0.9));
      out << ",\"p99\":";
      write_json_double(out, s.quantile(0.99));
      out << ",\"buckets\":[";
      bool first_b = true;
      for (const size_t i : exposed_buckets(s)) {
        if (!first_b) out << ',';
        first_b = false;
        out << "{\"le\":";
        write_json_double(out, s.upper_bound(i));
        out << ",\"cumulative\":" << s.cumulative[i] << '}';
      }
      out << (first_b ? "{\"le\":\"+Inf\",\"cumulative\":"
                      : ",{\"le\":\"+Inf\",\"cumulative\":")
          << s.count << "}]}";
    }
  }
  out << "]}";
}

}  // namespace tensat::metrics
