// Flight recorder: a bounded ring of per-request telemetry records with
// automatic slow-request capture.
//
// Aggregate metrics (metrics.h) tell an operator THAT the p99 blew up;
// the flight recorder tells them WHICH request did it and WHERE the time
// went. Every completed request appends one RequestRecord — id,
// fingerprint, outcome, wall seconds, the per-phase breakdown lifted from
// ExploreStats/ExtractStats, stop reason, MILP gap — into a fixed-capacity
// ring (oldest evicted first). A request whose wall time exceeds
// Options::slow_threshold_s is additionally CAPTURED: its record is
// re-rendered as a per-phase span timeline through the existing tracer
// (trace::Tracer, never installed — a private instance) and dumped as a
// Chrome trace-event JSON file, so the tail request is diagnosable in
// Perfetto after the fact without having traced the whole service.
//
// Costs: record() takes one uncontended mutex for a struct copy — per
// REQUEST, not per event, so it is invisible next to even a cache-hit
// submit. Slow dumps do file I/O on the submitting thread; they are
// bounded by Options::max_dumps per recorder lifetime so a misconfigured
// threshold cannot fill a disk.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tensat::metrics {

/// One serviced request, as the flight recorder remembers it. Phase
/// seconds are zero when the phase did not run (cache hits, errors).
struct RequestRecord {
  enum class Outcome : uint8_t { kHit, kCold, kSession, kError };

  uint64_t request_id{0};
  uint64_t fingerprint{0};
  Outcome outcome{Outcome::kCold};
  double seconds{0.0};  // submit() wall time
  int iterations{0};
  /// StopReason as an int (metrics stays independent of the optimizer
  /// headers); -1 when no exploration ran (hits, errors).
  int stop_reason{-1};
  // Exploration phase split (ExploreStats).
  double search_seconds{0.0};
  double apply_seconds{0.0};
  double rebuild_seconds{0.0};
  double dmap_seconds{0.0};
  double cycle_sweep_seconds{0.0};
  // Extraction phase split (ExtractStats).
  double reach_seconds{0.0};
  double reduce_seconds{0.0};
  double lp_build_seconds{0.0};
  double solve_seconds{0.0};
  double stitch_seconds{0.0};
  /// Certified MILP gap of the extraction; negative = not applicable
  /// (greedy extractor, cache hit, error).
  double milp_gap{-1.0};
  size_t fallback_cores{0};
  size_t enodes_total{0};  // e-graph size after the run (0 on hit/error)
};

const char* outcome_name(RequestRecord::Outcome o);

class FlightRecorder {
 public:
  struct Options {
    size_t capacity = 256;  // ring entries
    /// Requests slower than this are dumped as Chrome traces; <= 0
    /// disables capture (the ring still records).
    double slow_threshold_s = 0.0;
    std::string dump_dir = ".";
    size_t max_dumps = 16;  // per recorder lifetime
  };

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(Options options);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one record (evicting the oldest past capacity) and captures a
  /// slow-request trace dump when the thresholds say so. Thread-safe.
  void record(const RequestRecord& r);

  /// Ring contents, oldest first. Thread-safe (a consistent copy).
  [[nodiscard]] std::vector<RequestRecord> snapshot() const;

  [[nodiscard]] uint64_t total_recorded() const;
  [[nodiscard]] uint64_t dumps_written() const;
  /// Paths of the trace dumps written, in order (bounded by max_dumps).
  [[nodiscard]] std::vector<std::string> dump_paths() const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  /// Renders `r` as a span timeline through a private trace::Tracer and
  /// writes Chrome trace JSON. Returns the path, empty on I/O failure.
  std::string write_dump(const RequestRecord& r);

  const Options options_;
  mutable std::mutex mu_;
  std::vector<RequestRecord> ring_;  // ring_[ (start_ + i) % capacity ]
  size_t start_{0};
  uint64_t total_{0};
  uint64_t dumps_{0};
  std::vector<std::string> dump_paths_;
};

}  // namespace tensat::metrics
