#include "metrics/flight.h"

#include <cstdio>
#include <fstream>

#include "trace/trace.h"

namespace tensat::metrics {

const char* outcome_name(RequestRecord::Outcome o) {
  switch (o) {
    case RequestRecord::Outcome::kHit:
      return "hit";
    case RequestRecord::Outcome::kCold:
      return "cold";
    case RequestRecord::Outcome::kSession:
      return "session";
    case RequestRecord::Outcome::kError:
      return "error";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(Options options) : options_(std::move(options)) {
  ring_.reserve(options_.capacity);
}

void FlightRecorder::record(const RequestRecord& r) {
  bool dump = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.capacity > 0) {
      if (ring_.size() < options_.capacity) {
        ring_.push_back(r);
      } else {
        ring_[start_] = r;
        start_ = (start_ + 1) % options_.capacity;
      }
    }
    ++total_;
    dump = options_.slow_threshold_s > 0.0 &&
           r.seconds > options_.slow_threshold_s && dumps_ < options_.max_dumps;
    if (dump) ++dumps_;  // reserve the slot before releasing the lock
  }
  if (dump) {
    std::string path = write_dump(r);
    std::lock_guard<std::mutex> lock(mu_);
    if (path.empty()) {
      --dumps_;  // the reservation didn't materialize; give it back
    } else {
      dump_paths_.push_back(std::move(path));
    }
  }
}

std::vector<RequestRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(start_ + i) % ring_.size()]);
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t FlightRecorder::dumps_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumps_;
}

std::vector<std::string> FlightRecorder::dump_paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dump_paths_;
}

namespace {
/// Appends a span of `seconds` (skipped when zero) at the running cursor.
/// Names must be string literals — the tracer stores the pointer.
void phase_span(trace::Tracer& t, const char* name, double seconds,
                double* cursor_us) {
  if (seconds <= 0.0) return;
  double start = *cursor_us;
  double end = start + seconds * 1e6;
  t.record_span(name, start, end);
  *cursor_us = end;
}
}  // namespace

std::string FlightRecorder::write_dump(const RequestRecord& r) {
  // Re-render the record as a span timeline through a PRIVATE tracer (never
  // installed — live instrumentation points cannot land in it). Phases are
  // laid out back to back at their recorded durations; the residue between
  // the phase sum and the request wall time gets its own span so Perfetto
  // shows where untracked time went.
  trace::Tracer tracer;
  double cursor = 0.0;
  tracer.instant("request", static_cast<int64_t>(r.request_id), true);
  tracer.instant("fingerprint", static_cast<int64_t>(r.fingerprint), true);
  tracer.incr("iterations", r.iterations);
  tracer.incr("enodes_total", static_cast<int64_t>(r.enodes_total));
  tracer.incr("fallback_cores", static_cast<int64_t>(r.fallback_cores));
  if (r.stop_reason >= 0) tracer.incr("stop_reason", r.stop_reason);
  if (r.milp_gap >= 0.0)
    tracer.incr("milp_gap_ppm", static_cast<int64_t>(r.milp_gap * 1e6));

  phase_span(tracer, "explore/search", r.search_seconds, &cursor);
  phase_span(tracer, "explore/apply", r.apply_seconds, &cursor);
  phase_span(tracer, "explore/rebuild", r.rebuild_seconds, &cursor);
  phase_span(tracer, "explore/dmap", r.dmap_seconds, &cursor);
  phase_span(tracer, "explore/cycle_sweep", r.cycle_sweep_seconds, &cursor);
  phase_span(tracer, "extract/reach", r.reach_seconds, &cursor);
  phase_span(tracer, "extract/reduce", r.reduce_seconds, &cursor);
  phase_span(tracer, "extract/lp_build", r.lp_build_seconds, &cursor);
  phase_span(tracer, "extract/solve", r.solve_seconds, &cursor);
  phase_span(tracer, "extract/stitch", r.stitch_seconds, &cursor);
  double untracked = r.seconds * 1e6 - cursor;
  if (untracked > 0.0) phase_span(tracer, "other", untracked * 1e-6, &cursor);
  tracer.record_span(outcome_name(r.outcome), 0.0, r.seconds * 1e6,
                     static_cast<int64_t>(r.request_id), true);

  char name[64];
  std::snprintf(name, sizeof(name), "slow_request_%llu.json",
                static_cast<unsigned long long>(r.request_id));
  std::string path =
      options_.dump_dir.empty() ? std::string(name) : options_.dump_dir;
  if (!options_.dump_dir.empty()) {
    if (path.back() != '/') path.push_back('/');
    path += name;
  }
  std::ofstream out(path);
  if (!out) return {};
  tracer.write_chrome_trace(out);
  out.flush();
  return out ? path : std::string{};
}

}  // namespace tensat::metrics
