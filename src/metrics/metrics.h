// Always-on service metrics: counters, gauges, and log-bucketed latency
// histograms with Prometheus-text and JSON exposition.
//
// The tracing layer (src/trace/) answers "what happened inside THIS run" —
// it is installed around one pipeline invocation and produces a timeline.
// This layer answers the operator questions a long-lived service gets asked
// continuously — p99 submit latency, hit ratio, queue depth — so it is
// built to stay enabled for the process lifetime and be scraped while
// requests are in flight.
//
// Recording follows the house lock-free-lanes pattern from src/trace/,
// adapted to metrics' merge-on-scrape needs: every metric is sharded into
// kShards cacheline-padded slots and a recording thread touches only the
// slot its thread id hashes to — one relaxed atomic RMW per event, no lock,
// no false sharing between unrelated threads. Scrapes sum the shards. The
// numbers a scrape returns are therefore eventually consistent (a racing
// add may or may not be included), which is exactly the Prometheus
// contract; counters never decrease and histogram bucket counts never
// exceed a later scrape's.
//
// Histograms are log-bucketed: bucket 0 covers (0, lowest]; bucket i
// covers (lowest*2^(i-1), lowest*2^i]; the final bucket is +Inf. With the
// default lowest = 1us that spans 1us .. ~550s in 40 buckets — wide enough
// for cache hits and cold MILP solves on one grid. Quantiles (p50/p90/p99)
// are estimated from the bucket counts by linear interpolation inside the
// containing bucket, so their error is bounded by one bucket width (a
// factor-of-2 band), the standard Prometheus histogram_quantile trade.
//
// Registration (MetricsRegistry::counter/gauge/histogram) takes a mutex
// once per (family, labels) pair; the returned references are stable for
// the registry's lifetime, so hot paths hold handles and never re-lookup.
// Metric families must be fixed strings ([a-zA-Z_][a-zA-Z0-9_]*); label
// VALUES may be dynamic and are escaped at exposition time.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace tensat::metrics {

namespace detail {
/// Shard count per metric. A power of two; 16 slots keeps a Histogram
/// under 6 KiB while making same-slot collisions of concurrently recording
/// threads unlikely at service thread counts.
inline constexpr size_t kShards = 16;

/// The calling thread's shard slot: its thread id hashed once and cached
/// thread-locally, so the hot path is an array index off a TLS read.
size_t shard_index();

/// Cacheline-padded atomic cell (one per shard) so two threads recording
/// into different shards never contend on a line.
struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> v{0};
};
}  // namespace detail

/// Monotone counter. add() is one relaxed fetch_add on the caller's shard;
/// value() sums the shards (scrape-time merge).
class Counter {
 public:
  void add(uint64_t delta = 1) {
    shards_[detail::shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  [[nodiscard]] uint64_t value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::PaddedU64, detail::kShards> shards_;
};

/// Point-in-time gauge (set wins; add is a CAS loop — gauges are updated at
/// request rate, not inner-loop rate, so contention is negligible).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged scrape view of one histogram. `cumulative[i]` counts observations
/// <= `upper_bound(i)` (Prometheus `le` semantics); the last entry is the
/// +Inf bucket and equals `count`.
struct HistogramSnapshot {
  double lowest{0.0};  // upper bound of bucket 0
  std::vector<uint64_t> cumulative;
  uint64_t count{0};
  double sum{0.0};

  /// Upper bound of bucket i: lowest * 2^i; +Inf for the final bucket.
  [[nodiscard]] double upper_bound(size_t i) const;
  /// Quantile estimate for q in [0, 1]: linear interpolation inside the
  /// bucket containing rank ceil(q * count). 0 when empty; the last finite
  /// bound when the rank lands in the +Inf bucket (Prometheus convention).
  [[nodiscard]] double quantile(double q) const;
};

/// Merges same-grid snapshots (e.g. per-outcome latency histograms into an
/// all-outcomes view). Snapshots with mismatched grids are rejected.
HistogramSnapshot merge_snapshots(const std::vector<HistogramSnapshot>& parts);

/// Log-bucketed histogram of positive values. observe() is two relaxed
/// atomic RMWs (bucket count + sum) on the caller's shard.
class Histogram {
 public:
  /// Number of finite-bound buckets; one more +Inf bucket follows.
  static constexpr size_t kBuckets = 40;

  explicit Histogram(double lowest = 1e-6) : lowest_(lowest) {}

  void observe(double v) {
    auto& shard = shards_[detail::shard_index()];
    shard.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    // Sum is a CAS loop: C++17 atomic<double> has no fetch_add, and the
    // per-shard split keeps the loop effectively uncontended.
    double cur = shard.sum.load(std::memory_order_relaxed);
    while (!shard.sum.compare_exchange_weak(cur, cur + v,
                                            std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] double lowest() const { return lowest_; }

 private:
  [[nodiscard]] size_t bucket_index(double v) const;

  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets + 1> buckets{};
    std::atomic<double> sum{0.0};
  };

  const double lowest_;
  std::array<Shard, detail::kShards> shards_;
};

/// Label set for one metric instance, e.g. {{"outcome", "hit"}}. Keys must
/// be fixed identifier strings; values may be dynamic.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A named registry of counters, gauges, and histograms with two exposition
/// formats. Thread-safe: registration and scraping lock; recording through
/// the returned references is lock-free (see the header comment).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under (family, labels), creating it on
  /// first use. The reference is stable for the registry's lifetime.
  /// Registering one family under two different metric types throws.
  /// `help`, when non-empty on the creating call, becomes the # HELP line.
  Counter& counter(const std::string& family, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& family, const Labels& labels = {},
               const std::string& help = "");
  /// `lowest` applies on the creating call only (one grid per family).
  Histogram& histogram(const std::string& family, const Labels& labels = {},
                       const std::string& help = "", double lowest = 1e-6);

  /// Prometheus text exposition format (one # TYPE line per family, samples
  /// grouped under it; histograms expand to _bucket/_sum/_count series).
  void expose_prometheus(std::ostream& out) const;
  /// The same data as one JSON object ({"counters": [...], "gauges": [...],
  /// "histograms": [...]}), with p50/p90/p99 precomputed per histogram.
  void expose_json(std::ostream& out) const;

  [[nodiscard]] size_t families() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Instance {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Type type{Type::kCounter};
    std::string help;
    double lowest{1e-6};
    // Keyed by the canonical rendered label string, exposition-ordered.
    std::map<std::string, Instance> instances;
  };

  Instance& instance(const std::string& family, const Labels& labels,
                     Type type, const std::string& help, double lowest);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;  // exposition-ordered by name
};

}  // namespace tensat::metrics
