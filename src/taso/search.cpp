#include "taso/search.h"

#include <queue>
#include <unordered_set>

#include "support/timer.h"
#include "taso/graph_rewrite.h"

namespace tensat {
namespace {

struct Candidate {
  Graph graph;
  double cost;
};

struct CandidateOrder {
  bool operator()(const Candidate& a, const Candidate& b) const {
    return a.cost > b.cost;  // min-heap on cost
  }
};

}  // namespace

TasoResult taso_search(const Graph& input, const std::vector<Rewrite>& rules,
                       const CostModel& model, const TasoOptions& options) {
  Timer timer;
  TasoResult result;
  result.best = input;
  result.original_cost = graph_cost(input, model);
  result.best_cost = result.original_cost;
  result.stats.timeline.emplace_back(0.0, result.original_cost);

  std::priority_queue<Candidate, std::vector<Candidate>, CandidateOrder> queue;
  std::unordered_set<std::string> seen;
  seen.insert(input.canonical_key());
  queue.push(Candidate{input, result.original_cost});
  result.stats.graphs_seen = 1;

  while (!queue.empty() && result.stats.iterations_run < options.iterations) {
    if (timer.seconds() > options.time_limit_s) break;
    Candidate cur = queue.top();
    queue.pop();
    ++result.stats.iterations_run;

    for (const Rewrite& rule : rules) {
      if (timer.seconds() > options.time_limit_s) break;
      for (const auto& tuple : find_rule_applications(cur.graph, rule)) {
        auto next = apply_to_graph(cur.graph, rule, tuple);
        if (!next.has_value()) continue;
        ++result.stats.applications;
        std::string key = next->canonical_key();
        if (!seen.insert(std::move(key)).second) continue;
        ++result.stats.graphs_seen;
        const double cost = graph_cost(*next, model);
        if (cost < result.best_cost) {
          result.best_cost = cost;
          result.best = *next;
          result.stats.best_seconds = timer.seconds();
          result.stats.timeline.emplace_back(result.stats.best_seconds, cost);
        }
        if (cost < options.alpha * result.best_cost &&
            queue.size() < options.max_queue) {
          queue.push(Candidate{std::move(*next), cost});
        }
      }
    }
  }
  result.stats.total_seconds = timer.seconds();
  return result;
}

}  // namespace tensat
