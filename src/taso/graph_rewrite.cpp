#include "taso/graph_rewrite.h"

#include <unordered_map>

#include "support/check.h"

namespace tensat {
namespace {

/// Matches pattern node `pid` against graph node `gid`, extending `subst`.
/// Returns false (leaving subst possibly partially extended — callers pass
/// copies) if they don't match.
bool match_at(const Graph& g, const Graph& pat, Id pid, Id gid, Subst& subst) {
  const TNode& p = pat.node(pid);
  if (p.op == Op::kVar) return subst.bind(p.str, gid);
  const TNode& n = g.node(gid);
  if (n.op != p.op || n.num != p.num || !(n.str == p.str)) return false;
  for (size_t i = 0; i < p.children.size(); ++i)
    if (!match_at(g, pat, p.children[i], n.children[i], subst)) return false;
  return true;
}

}  // namespace

std::vector<PatternMatch> match_graph_pattern(const Graph& g, const Graph& pat,
                                              Id pat_root) {
  std::vector<PatternMatch> out;
  for (Id gid : g.topo_order()) {
    Subst subst;
    if (match_at(g, pat, pat_root, gid, subst))
      out.push_back(PatternMatch{gid, std::move(subst)});
  }
  return out;
}

std::vector<std::vector<PatternMatch>> find_rule_applications(const Graph& g,
                                                              const Rewrite& rule) {
  std::vector<std::vector<PatternMatch>> result;
  std::vector<std::vector<PatternMatch>> per_root;
  per_root.reserve(rule.src_roots.size());
  for (Id root : rule.src_roots) {
    per_root.push_back(match_graph_pattern(g, rule.pat, root));
    if (per_root.back().empty()) return result;
  }
  if (rule.src_roots.size() == 1) {
    for (auto& m : per_root[0]) result.push_back({std::move(m)});
    return result;
  }
  // Cartesian product with compatibility and distinct-roots checks.
  std::vector<PatternMatch> current;
  std::vector<size_t> idx(per_root.size(), 0);
  // Iterative odometer over the product.
  while (true) {
    // Build and test the current tuple.
    std::optional<Subst> combined = Subst{};
    std::vector<PatternMatch> tuple;
    bool roots_distinct = true;
    for (size_t k = 0; k < per_root.size() && combined; ++k) {
      const PatternMatch& m = per_root[k][idx[k]];
      for (const PatternMatch& prev : tuple)
        if (prev.root == m.root) roots_distinct = false;
      combined = Subst::merged(*combined, m.subst);
      tuple.push_back(m);
    }
    if (combined && roots_distinct) {
      for (size_t k = 0; k < tuple.size(); ++k) tuple[k].subst = *combined;
      result.push_back(std::move(tuple));
    }
    // Advance the odometer.
    size_t k = 0;
    while (k < idx.size()) {
      if (++idx[k] < per_root[k].size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == idx.size()) break;
  }
  return result;
}

namespace {

/// Copies the subgraph rooted at `id` from `src` into `dst` verbatim.
std::optional<Id> copy_original(const Graph& src, Id id, Graph& dst,
                                std::unordered_map<Id, Id>& memo) {
  auto it = memo.find(id);
  if (it != memo.end()) return it->second;
  const TNode& n = src.node(id);
  TNode out{n.op, n.num, n.str, {}};
  out.children.reserve(n.children.size());
  for (Id c : n.children) {
    auto copied = copy_original(src, c, dst, memo);
    if (!copied) return std::nullopt;
    out.children.push_back(*copied);
  }
  auto added = dst.try_add(std::move(out));
  if (added) memo.emplace(id, *added);
  return added;
}

/// Instantiates a target pattern into `dst`; variables resolve to original
/// (un-rewritten) copies of their bound subgraphs.
std::optional<Id> instantiate_target(const Graph& g, const Graph& pat, Id pid,
                                     const Subst& subst, Graph& dst,
                                     std::unordered_map<Id, Id>& orig_memo,
                                     std::unordered_map<Id, Id>& pat_memo) {
  auto it = pat_memo.find(pid);
  if (it != pat_memo.end()) return it->second;
  const TNode& p = pat.node(pid);
  std::optional<Id> result;
  if (p.op == Op::kVar) {
    auto bound = subst.get(p.str);
    TENSAT_CHECK(bound.has_value(), "unbound variable ?" << p.str.str());
    result = copy_original(g, *bound, dst, orig_memo);
  } else {
    TNode out{p.op, p.num, p.str, {}};
    out.children.reserve(p.children.size());
    for (Id c : p.children) {
      auto child = instantiate_target(g, pat, c, subst, dst, orig_memo, pat_memo);
      if (!child) return std::nullopt;
      out.children.push_back(*child);
    }
    result = dst.try_add(std::move(out));
  }
  if (result) pat_memo.emplace(pid, *result);
  return result;
}

/// Copies `id` with matched roots redirected to their replacements.
std::optional<Id> copy_rewritten(const Graph& g, Id id, Graph& dst,
                                 const std::unordered_map<Id, Id>& replacement,
                                 std::unordered_map<Id, Id>& memo) {
  auto rep = replacement.find(id);
  if (rep != replacement.end()) return rep->second;
  auto it = memo.find(id);
  if (it != memo.end()) return it->second;
  const TNode& n = g.node(id);
  TNode out{n.op, n.num, n.str, {}};
  out.children.reserve(n.children.size());
  for (Id c : n.children) {
    auto copied = copy_rewritten(g, c, dst, replacement, memo);
    if (!copied) return std::nullopt;
    out.children.push_back(*copied);
  }
  auto added = dst.try_add(std::move(out));
  if (added) memo.emplace(id, *added);
  return added;
}

}  // namespace

std::optional<Graph> apply_to_graph(const Graph& g, const Rewrite& rule,
                                    const std::vector<PatternMatch>& matches) {
  TENSAT_CHECK(matches.size() == rule.src_roots.size(),
               "match tuple size mismatch for rule " << rule.name);
  const Subst& subst = matches[0].subst;  // tuples share the combined subst

  if (rule.cond) {
    auto lookup = [&](Symbol var) -> const ValueInfo& {
      auto bound = subst.get(var);
      TENSAT_CHECK(bound.has_value(), "condition references unbound ?" << var.str());
      return g.info(*bound);
    };
    if (!rule.check_cond(lookup)) return std::nullopt;
  }

  Graph out;
  std::unordered_map<Id, Id> orig_memo;
  std::unordered_map<Id, Id> pat_memo;
  std::unordered_map<Id, Id> replacement;
  for (size_t k = 0; k < matches.size(); ++k) {
    auto target = instantiate_target(g, rule.pat, rule.dst_roots[k], subst, out,
                                     orig_memo, pat_memo);
    if (!target) return std::nullopt;  // shape check failed
    // Replacement must compute a tensor of the same shape.
    const ValueInfo& src_info = g.info(matches[k].root);
    const ValueInfo& dst_info = out.info(*target);
    if (src_info.kind != dst_info.kind || src_info.shape != dst_info.shape ||
        src_info.shape2 != dst_info.shape2)
      return std::nullopt;
    replacement.emplace(matches[k].root, *target);
  }

  std::unordered_map<Id, Id> rw_memo;
  std::vector<Id> new_roots;
  for (Id root : g.roots()) {
    auto copied = copy_rewritten(g, root, out, replacement, rw_memo);
    if (!copied) return std::nullopt;
    new_roots.push_back(*copied);
  }
  out.set_roots(std::move(new_roots));
  return out;
}

}  // namespace tensat
