// The TASO baseline: cost-based backtracking search over sequences of
// substitutions (Jia et al. 2019a, Algorithm 2), reimplemented on our graph
// IR and cost model so the comparison with TENSAT is apples-to-apples.
//
// A priority queue ordered by graph cost holds candidate graphs; each popped
// graph is expanded by applying every rule at every match; children within
// `alpha` of the best cost are enqueued. The search records when it first
// reached its best graph (the paper's "TASO best" oracle time) and the full
// improvement timeline (for the paper's Fig. 6 trade-off curve).
#pragma once

#include <memory>
#include <vector>

#include "cost/cost.h"
#include "lang/graph.h"
#include "rewrite/rewrite.h"

namespace tensat {

struct TasoOptions {
  int iterations = 100;       // queue pops (the paper's n)
  double alpha = 1.05;        // cost-relaxation factor
  double time_limit_s = 60.0;
  size_t max_queue = 200000;  // safety valve
};

struct TasoStats {
  double total_seconds{0.0};
  double best_seconds{0.0};  // time when the best graph was first found
  int iterations_run{0};
  size_t graphs_seen{0};
  size_t applications{0};
  /// (elapsed seconds, best cost so far) at every improvement.
  std::vector<std::pair<double, double>> timeline;
};

struct TasoResult {
  Graph best;
  double original_cost{0.0};
  double best_cost{0.0};
  TasoStats stats;
};

TasoResult taso_search(const Graph& input, const std::vector<Rewrite>& rules,
                       const CostModel& model, const TasoOptions& options = {});

}  // namespace tensat
