// Pattern matching and substitution on concrete graphs — the machinery the
// TASO-style sequential backtracking baseline needs. Unlike e-matching, a
// concrete node has exactly one definition, so a (pattern node, graph node)
// pair yields at most one substitution.
#pragma once

#include <optional>
#include <vector>

#include "lang/graph.h"
#include "rewrite/rewrite.h"
#include "rewrite/subst.h"

namespace tensat {

/// All matches of the pattern rooted at `pat_root` against nodes of `g`
/// reachable from its roots. Variables bind node ids of `g`.
std::vector<PatternMatch> match_graph_pattern(const Graph& g, const Graph& pat,
                                              Id pat_root);

/// All ways to apply `rule` to `g`: for single-pattern rules one entry per
/// match; for multi-pattern rules the compatible Cartesian combinations with
/// pairwise-distinct matched roots.
std::vector<std::vector<PatternMatch>> find_rule_applications(const Graph& g,
                                                              const Rewrite& rule);

/// Applies `rule` at the given match tuple (one PatternMatch per source
/// root). Returns the rewritten graph, or nullopt if the shape check, the
/// rule condition, or output-shape compatibility fails. `g` is unchanged.
std::optional<Graph> apply_to_graph(const Graph& g, const Rewrite& rule,
                                    const std::vector<PatternMatch>& matches);

}  // namespace tensat
