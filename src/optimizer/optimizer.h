// The TENSAT optimizer: exploration (equality saturation with multi-pattern
// rules and cycle filtering) followed by extraction (greedy or ILP).
// Mirrors the paper's §4-§5 pipeline and exposes each phase separately so
// the ablation benchmarks (Tables 4-6) can recombine them.
#pragma once

#include <memory>
#include <vector>

#include "cost/cost.h"
#include "egraph/egraph.h"
#include "extract/extract.h"
#include "lang/graph.h"
#include "rewrite/rules.h"

namespace tensat {

enum class CycleFilterMode {
  kNone,       // rely on ILP cycle constraints instead
  kVanilla,    // full-pass check before every substitution (paper §5.2)
  kEfficient,  // descendants pre-filter + DFS post-pass (Algorithm 2)
};

enum class ExtractorKind { kGreedy, kIlp };

enum class StopReason { kSaturated, kIterLimit, kNodeLimit, kTimeLimit };

struct TensatOptions {
  int k_max = 15;          // exploration iterations (paper k_max)
  int k_multi = 1;         // iterations that apply multi-pattern rules
  size_t node_limit = 20000;  // e-graph size cap (paper N_max = 50000)
  double explore_time_limit_s = 30.0;
  CycleFilterMode cycle_filter = CycleFilterMode::kEfficient;
  ExtractorKind extractor = ExtractorKind::kIlp;
  IlpExtractOptions ilp;
  /// Cap on match tuples applied per rule per iteration (guards the
  /// double-exponential multi-pattern growth between node-limit checks).
  size_t max_applications_per_rule = 100000;
  /// Tighter per-iteration cap for single-pattern rules: the cheap algebraic
  /// rules produce orders of magnitude more matches than the multi-pattern
  /// merges and would otherwise exhaust the node budget in iteration one
  /// (the role egg's BackoffScheduler plays for TENSAT).
  size_t max_single_rule_applications = 100000;
};

struct ExploreStats {
  int iterations{0};
  StopReason stop{StopReason::kIterLimit};
  size_t enodes{0};        // excluding filtered
  size_t enodes_total{0};  // the paper's #enodes
  size_t eclasses{0};
  size_t filtered{0};
  size_t matches_found{0};
  size_t applications{0};
  double seconds{0.0};
};

/// Runs the exploration phase on a pre-seeded e-graph (root already set).
ExploreStats run_exploration(EGraph& eg, const std::vector<Rewrite>& rules,
                             const TensatOptions& options);

struct TensatResult {
  bool ok{false};
  Graph optimized;
  double original_cost{0.0};
  double optimized_cost{0.0};
  ExploreStats explore;
  double extract_seconds{0.0};
  IlpExtractionResult ilp;  // populated when extractor == kIlp
};

/// The full pipeline: seed e-graph from `input`, explore, extract.
TensatResult optimize(const Graph& input, const std::vector<Rewrite>& rules,
                      const CostModel& model, const TensatOptions& options = {});

/// Seeds an e-graph with `input` (single-rooted via noop if needed).
EGraph seed_egraph(const Graph& input);

}  // namespace tensat
