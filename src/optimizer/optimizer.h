// The TENSAT optimizer: exploration (equality saturation with multi-pattern
// rules and cycle filtering) followed by extraction (greedy or ILP).
// Mirrors the paper's §4-§5 pipeline and exposes each phase separately so
// the ablation benchmarks (Tables 4-6) can recombine them.
#pragma once

#include <memory>
#include <vector>

#include "cost/cost.h"
#include "egraph/egraph.h"
#include "ematch/scheduler.h"
#include "extract/engine/engine.h"
#include "extract/extract.h"
#include "lang/graph.h"
#include "rewrite/rules.h"

namespace tensat {

enum class CycleFilterMode {
  kNone,       // rely on ILP cycle constraints instead
  kVanilla,    // full-pass check before every substitution (paper §5.2)
  kEfficient,  // descendants pre-filter + DFS post-pass (Algorithm 2)
};

enum class ExtractorKind { kGreedy, kIlp };

enum class StopReason { kSaturated, kIterLimit, kNodeLimit, kTimeLimit };

struct TensatOptions {
  int k_max = 15;          // exploration iterations (paper k_max)
  int k_multi = 1;         // iterations that apply multi-pattern rules
  size_t node_limit = 20000;  // e-graph size cap (paper N_max = 50000)
  double explore_time_limit_s = 30.0;
  CycleFilterMode cycle_filter = CycleFilterMode::kEfficient;
  ExtractorKind extractor = ExtractorKind::kIlp;
  /// ILP extraction knobs. The engine's staged pipeline (reductions + SCC
  /// decomposition + per-core solves, extract/engine/engine.h) is the
  /// default; `ilp.decompose = false` selects the monolithic one-shot ILP,
  /// the differential baseline. All IlpExtractOptions fields apply to both.
  ExtractEngineOptions ilp;
  /// Rule scheduling (egg's BackoffScheduler): per-rule per-iteration match
  /// budgets with temporary bans for rules that blow them. Replaces the old
  /// hard per-rule application caps; the default budget is high enough that
  /// bans only kick in on genuinely match-explosive rules, and banned rules
  /// always get a final chance before saturation is declared.
  ematch::BackoffOptions backoff{/*match_limit=*/100000, /*ban_length=*/5};
  /// Multi-pattern rules: search all of a rule's sources as one joint VM
  /// program (shared variables bind once; incompatible cross-pattern
  /// candidates are pruned during the search) instead of joining the
  /// per-source match sets with a post-hoc Cartesian product. Enumerates the
  /// identical combined match set (tests/joint_ematch_test.cpp), though in a
  /// different order — under a node/time limit the two modes may therefore
  /// truncate at different applications. False selects the Cartesian
  /// baseline kept for differential tests and the ematch_report benchmark.
  bool joint_multi = true;
  /// Worker threads for the per-iteration pattern searches (the VM is
  /// read-only over the clean e-graph). 0 = one per hardware thread. Any
  /// value yields identical results: each pattern's search is sequential
  /// and results merge in plan order, so threading never reorders anything.
  size_t search_threads = 1;
  /// Worker threads for stage 1 of the staged apply pipeline: per-pending-
  /// application condition checks, cycle pre-filters, and target planning,
  /// all read-only against the clean e-graph. 0 (default) = one per hardware
  /// thread. Any value yields a bit-identical e-graph: plans are independent
  /// and partitioned into index-based chunks, and the stage-2 commit replays
  /// them serially in plan order, which fixes the node insertion and merge
  /// order regardless of worker scheduling. Iterations with fewer pending
  /// applications than one chunk never spawn workers at all.
  size_t apply_threads = 0;
  /// True (default) routes the apply phase through the three-stage pipeline
  /// (parallel plan, serial batched commit, single rebuild). False keeps the
  /// legacy direct path — condition check, cycle pre-filter, and instantiate
  /// interleaved with merges per application — as the differential baseline
  /// (tests/apply_pipeline_test.cpp, bench_ematch_report's apply section).
  /// The two paths agree on iterations, stop reason, filtered nodes, and
  /// extraction; they differ in two benign ways. An instantiation that fails
  /// its shape check during planning (stage 1) leaves no partial nodes — the
  /// plan is dropped whole, where the direct path adds bottom-up and strands
  /// whatever preceded the failing node — so the staged e-graph is in
  /// practice never larger, and the direct path's stranded junk is
  /// matchable, which lets its application count drift upward over
  /// iterations. (A shape check can also fail at commit time, after
  /// intervening merges coarsened an analysis value; that rare case strands
  /// the target's already-committed descendants just like the direct path.)
  /// And plans observe the iteration-start snapshot where the direct path
  /// observes earlier in-iteration merges — relevant only to analysis joins
  /// mid-iteration.
  bool staged_apply = true;
  /// True (default) maintains the efficient cycle filter's descendants map
  /// and cycle sweep incrementally across iterations (cycles/incremental.h):
  /// the e-graph journals adds/merges/filterings, the map repairs only the
  /// rows whose reachability changed at the serial rebuild boundary (falling
  /// back to full reconstruction when merges fuse large regions), and the
  /// post-rebuild sweep restarts its DFS only from merge-dirtied classes.
  /// False rebuilds the DescendantsMap from scratch every iteration and
  /// sweeps the whole graph — the paper's literal Algorithm 2, kept as the
  /// differential baseline (tests/cycles_incremental_test.cpp proves the two
  /// modes produce identical reaches() relations, filtered-node sets, and
  /// bit-identical e-graphs; bench_ematch_report's "cycles" section gates
  /// incremental >= 1x fresh). Only meaningful with
  /// CycleFilterMode::kEfficient; the epoch advance happens strictly at the
  /// serial boundary, so any apply_threads/search_threads value still yields
  /// a bit-identical e-graph.
  bool incremental_cycles = true;
  /// True (default) replaces stage 2's per-application hash-cons replay
  /// with the sharded batch commit: a serial *resolve* pass walks the
  /// viable plans in plan order, maps every staged node to a pre-assigned
  /// fresh e-class id (deduplicating across plan chunks), and enforces the
  /// node/time limits between applications; EGraph::commit_prepared then
  /// fills the op-sharded hash-cons, op-index, and parent lists with
  /// apply_threads pool workers; finally a serial *merge* pass re-checks
  /// merge soundness on live data and merges in plan order — the
  /// determinism anchor. Because ids, stamps, and every per-container
  /// append order are fixed by the serial passes, the e-graph is
  /// bit-identical for any apply_threads value (tests/apply_pipeline_test
  /// pins 1/2/8 threads across the full toggle matrix).
  ///
  /// This is a distinct commit *mode*, not a bit-for-bit replay of the
  /// serial stage 2: the serial path interleaves merges between
  /// applications, so a later application's commit can collapse onto a
  /// class an earlier merge canonicalized, where the batch path inserts
  /// the plan-time form and lets rebuild()'s congruence pass collapse it.
  /// The two modes agree semantically (same iterations/stop/extraction on
  /// the differential suite) and each is deterministic; false keeps the
  /// serial per-application commit as the differential baseline. Only
  /// meaningful with staged_apply.
  bool sharded_commit = true;
};

/// Cumulative per-rule telemetry across all exploration iterations, indexed
/// parallel to the rules vector handed to run_exploration. Counters are
/// always on (they ride existing per-rule loop boundaries, so the cost is a
/// handful of increments per rule per iteration); this is the table
/// tensat_profile prints and the reward signal a cost-aware scheduler
/// (ROADMAP item 3) consumes. Everything except `seconds` is deterministic —
/// identical for any search/apply thread count on the deterministic paths
/// (pinned by tests/trace_test.cpp).
struct RuleTelemetry {
  std::string name;
  /// Match tuples enumerated for the rule (compatible combinations for
  /// multi-pattern rules). Truncated at budget+1 on the iteration a budget
  /// blows — the same truncation the apply phase sees.
  size_t matches{0};
  /// Applications queued for the apply pipeline (within budget).
  size_t planned{0};
  /// Applications that actually changed the e-graph at commit.
  size_t committed{0};
  /// E-nodes the rule's commits added (hash-cons growth attributed to it).
  size_t nodes_added{0};
  size_t bans{0};    // backoff bans imposed on this rule
  size_t unbans{0};  // bans lifted early by the pre-saturation unban pass
  /// Wall-clock attributed to the rule: its share of each pattern search it
  /// consumes (split evenly among the pattern's active users; joint searches
  /// are wholly its own), plus its match enumeration and commit time.
  /// Stage-1 planning time is not attributable per rule (chunks mix rules).
  double seconds{0.0};
};

/// One exploration iteration's e-graph growth sample, recorded after the
/// iteration's rebuild and cycle sweep — the timeline that shows where a
/// saturation run blows up. All fields except `seconds` are deterministic
/// across thread counts on the deterministic paths.
struct IterationTelemetry {
  size_t eclasses{0};
  size_t enodes{0};        // excluding filtered
  size_t enodes_total{0};  // hash-cons size (the paper's #enodes)
  size_t filtered{0};
  size_t matches{0};       // single-pattern matches found this iteration
  size_t applications{0};  // successful applications this iteration
  double seconds{0.0};     // iteration wall time
};

struct ExploreStats {
  int iterations{0};
  StopReason stop{StopReason::kIterLimit};
  size_t enodes{0};        // excluding filtered
  size_t enodes_total{0};  // the paper's #enodes
  size_t eclasses{0};
  size_t filtered{0};
  size_t matches_found{0};
  size_t applications{0};
  /// Combined (full-rule) multi-pattern matches enumerated across all
  /// iterations — the compatible tuples handed to the apply step.
  size_t multi_matches_found{0};
  /// Candidate source-match tuples the multi-pattern join examined. Under
  /// the Cartesian baseline this is the full product of the per-source match
  /// sets; under the joint plan incompatible prefixes are pruned inside the
  /// VM, so it equals multi_matches_found. The gap measures the blow-up the
  /// joint plan avoids.
  size_t multi_combos_considered{0};
  /// Rule bans imposed by the backoff scheduler across all iterations.
  size_t bans{0};
  /// Pattern searches skipped because every rule using the pattern was
  /// banned (or out of its multi-pattern window).
  size_t searches_skipped{0};
  double seconds{0.0};
  /// Per-phase wall-clock breakdown of `seconds`, accumulated across
  /// iterations, so regressions can be pinned to the dominant phase
  /// (BENCH_ematch.json records the apply and cycles shares). search = the
  /// parallel pattern/joint searches; apply = match enumeration + the
  /// plan/commit pipeline (or the legacy direct loop); rebuild = congruence
  /// repair; dmap = descendants-map construction (fresh mode) or epoch
  /// advances (incremental mode); cycle_sweep = the post-rebuild cycle
  /// filtering pass. dmap/cycle_sweep used to be folded into apply/rebuild;
  /// they are split out so the incremental-vs-fresh cycle analysis gate can
  /// measure exactly the work it replaces.
  double search_seconds{0.0};
  double apply_seconds{0.0};
  double rebuild_seconds{0.0};
  double dmap_seconds{0.0};
  double cycle_sweep_seconds{0.0};
  /// Per-rule telemetry, indexed parallel to the input rules.
  std::vector<RuleTelemetry> rules;
  /// Per-iteration e-graph growth timeline (one entry per executed
  /// iteration, including one truncated by a node/time limit).
  std::vector<IterationTelemetry> growth;
};

class IncrementalCycleAnalysis;

/// Cross-call exploration state for a persistent optimization session (the
/// service layer, src/service/): the backoff scheduler, the incremental
/// cycle analysis (journal + closure epochs), and the global iteration
/// clock. Passing one ExplorationSession through successive run_exploration
/// calls on the SAME e-graph makes a perturbed resubmission resume
/// saturation where the previous request stopped instead of restarting.
///
/// The iteration clock is the load-bearing part: BackoffScheduler ban
/// timestamps (`banned_until`) are absolute iteration numbers, so replaying
/// them against a per-call counter restarting at 0 would re-impose every
/// expired ban at the start of each resumed call (ban lengths double per
/// ban, so a long-lived session would starve its hottest rules). The
/// session numbers iterations globally: call N resumes at iteration_base =
/// total iterations executed by calls 1..N-1.
struct ExplorationSession {
  ExplorationSession();
  ~ExplorationSession();
  ExplorationSession(ExplorationSession&&) noexcept;
  ExplorationSession& operator=(ExplorationSession&&) noexcept;

  /// Created on the first call; ban state persists across calls on the
  /// global iteration clock. The rule count must match on every call.
  std::unique_ptr<ematch::BackoffScheduler> scheduler;
  /// Persisted incremental cycle analysis: keeps its journal attached to
  /// the session e-graph between calls, so additions made between requests
  /// (resubmitted graphs) are journaled and folded in at resume, not lost.
  /// Only populated when the options select incremental efficient
  /// filtering; the e-graph must stay at a stable address (heap-own it).
  std::unique_ptr<IncrementalCycleAnalysis> cycles;
  /// Total iterations executed across all calls: the global clock
  /// scheduler timestamps live on.
  size_t iteration_base{0};
};

/// Runs the exploration phase on a pre-seeded e-graph (root already set).
/// `session`, when non-null, persists scheduler/cycle state across calls on
/// the same e-graph (see ExplorationSession); null preserves the one-shot
/// behavior exactly.
ExploreStats run_exploration(EGraph& eg, const std::vector<Rewrite>& rules,
                             const TensatOptions& options,
                             ExplorationSession* session = nullptr);

struct TensatResult {
  bool ok{false};
  Graph optimized;
  double original_cost{0.0};
  double optimized_cost{0.0};
  ExploreStats explore;
  double extract_seconds{0.0};
  /// Per-phase extraction breakdown (reach/reduce/lp-build/solve/stitch plus
  /// reduction and core counters), the extraction analog of ExploreStats'
  /// search/apply/rebuild split. Filled for ILP extraction (both the engine
  /// and the monolithic path); zero for greedy extraction.
  ExtractStats extract_stats;
  EngineExtractionResult ilp;  // populated when extractor == kIlp
};

/// The full pipeline: seed e-graph from `input`, explore, extract.
TensatResult optimize(const Graph& input, const std::vector<Rewrite>& rules,
                      const CostModel& model, const TensatOptions& options = {});

/// Seeds an e-graph with `input` (single-rooted via noop if needed).
EGraph seed_egraph(const Graph& input);

}  // namespace tensat
