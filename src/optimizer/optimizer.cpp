#include "optimizer/optimizer.h"

#include <algorithm>
#include <atomic>

#include "cycles/cycles.h"
#include "cycles/incremental.h"
#include "rewrite/matcher.h"
#include "rewrite/multi.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace tensat {
namespace {

/// One pending application: the rule, the per-source matched root classes,
/// and the combined substitution.
struct Application {
  const Rewrite* rule;
  size_t rule_index;  // into the rules vector (per-rule telemetry key)
  std::vector<Id> src_classes;
  Subst subst;
};

/// The read-only prefix shared by the direct path and stage-1 planning: the
/// rule condition on the matched variables' analysis data, then the
/// efficient pre-filter (Algorithm 2, lines 3-9) — skip the substitution if
/// a matched class is a descendant of (or is) a class we would merge into.
/// Pure reads; on a clean e-graph, safe for concurrent callers.
bool passes_read_only_checks(const EGraph& eg, const Application& app,
                             CycleFilterMode mode, const ReachabilityMap* dmap) {
  const Rewrite& rule = *app.rule;
  if (rule.cond) {
    auto lookup = [&](Symbol var) -> const ValueInfo& {
      auto bound = app.subst.get(var);
      TENSAT_CHECK(bound.has_value(), "condition references unbound ?" << var.str());
      return eg.data(*bound);
    };
    if (!rule.check_cond(lookup)) return false;
  }
  if (mode == CycleFilterMode::kEfficient && dmap != nullptr) {
    for (Id src : app.src_classes) {
      const Id a = eg.find(src);
      for (const auto& [var, cls] : app.subst.bindings()) {
        const Id c = eg.find(cls);
        if (c == a || dmap->reaches(c, a)) return false;
      }
    }
  }
  return true;
}

/// The merge is only sound if the target computes a value of the same kind
/// and shape as its matched source class. Deliberately a subset of
/// ValueInfo::operator== (hist/num/str/weight_only are joinable); the direct
/// path, stage-1 planning, and the stage-2 re-check must all agree on it.
bool merge_sound(const ValueInfo& a, const ValueInfo& b) {
  return a.kind == b.kind && a.shape == b.shape && a.shape2 == b.shape2;
}

/// Applies one substitution with the configured cycle handling. Returns true
/// if the e-graph changed.
bool apply_one(EGraph& eg, const Application& app, CycleFilterMode mode,
               const ReachabilityMap* dmap) {
  const Rewrite& rule = *app.rule;
  if (!passes_read_only_checks(eg, app, mode, dmap)) return false;

  // Instantiate every target pattern (monotone adds; cannot create cycles).
  std::vector<Id> targets;
  targets.reserve(rule.dst_roots.size());
  for (Id dst_root : rule.dst_roots) {
    auto target = instantiate(eg, rule.pat, dst_root, app.subst);
    if (!target.has_value()) return false;  // shape check failed
    targets.push_back(*target);
  }
  for (size_t k = 0; k < targets.size(); ++k)
    if (!merge_sound(eg.data(app.src_classes[k]), eg.data(targets[k]))) return false;

  bool changed = false;
  for (size_t k = 0; k < targets.size(); ++k) {
    const Id src = eg.find(app.src_classes[k]);
    const Id dst = eg.find(targets[k]);
    if (src == dst) continue;
    if (mode == CycleFilterMode::kVanilla && merge_would_create_cycle(eg, src, dst)) {
      // Vanilla filtering (paper §5.2): discard the substitution. The target
      // nodes stay in the e-graph unmerged, which is harmless.
      continue;
    }
    changed |= eg.merge(src, dst);
  }
  return changed;
}

/// Adds the guarded scope's wall time to `acc` on every exit path — the
/// per-rule seconds accounting for loops that bail with `continue`.
struct SecondsGuard {
  explicit SecondsGuard(double& acc) : acc(acc) {}
  ~SecondsGuard() { acc += timer.seconds(); }
  SecondsGuard(const SecondsGuard&) = delete;
  SecondsGuard& operator=(const SecondsGuard&) = delete;
  double& acc;
  Timer timer;
};

/// Stage 1 plans applications in fixed index chunks; each chunk owns one
/// staging arena and scratch, so workers share nothing mutable, duplicate
/// targets within a chunk are planned (and shape-inferred) once, and the
/// app -> chunk partition is a pure function of the application index —
/// worker count and scheduling cannot influence any plan.
constexpr size_t kPlanChunk = 128;

struct PlanChunk {
  explicit PlanChunk(const EGraph& eg) : buf(eg) {}
  NodeBuffer buf;
  std::vector<Id> targets;  // concatenated target lists of the chunk's apps
  std::vector<Id> memo;     // plan_instantiate scratch, reused across apps
};

/// Stage-1 result for one pending application: its slice of the chunk's
/// target arena and whether it survived its read-only checks.
struct ApplyPlan {
  uint32_t targets_first{0};
  uint32_t targets_count{0};
  bool viable{false};
};

/// Stage 1 of the apply pipeline (parallel, read-only): evaluates the rule
/// condition, the efficient-cycle pre-filter, and plans the target
/// instantiation against the clean e-graph snapshot. Mirrors apply_one up to
/// (but excluding) the merges; writes only into `plan` and `chunk`.
void plan_application(const EGraph& eg, const Application& app, ApplyPlan& plan,
                      PlanChunk& chunk, CycleFilterMode mode,
                      const ReachabilityMap* dmap) {
  const Rewrite& rule = *app.rule;
  if (!passes_read_only_checks(eg, app, mode, dmap)) return;

  plan.targets_first = static_cast<uint32_t>(chunk.targets.size());
  for (Id dst_root : rule.dst_roots) {
    auto target =
        plan_instantiate(chunk.buf, rule.pat, dst_root, app.subst, chunk.memo);
    if (!target.has_value()) {  // shape check failed
      chunk.targets.resize(plan.targets_first);
      return;
    }
    chunk.targets.push_back(*target);
  }
  for (size_t k = 0; k < rule.dst_roots.size(); ++k) {
    if (!merge_sound(eg.data(app.src_classes[k]),
                     chunk.buf.data(chunk.targets[plan.targets_first + k]))) {
      chunk.targets.resize(plan.targets_first);
      return;
    }
  }
  plan.targets_count = static_cast<uint32_t>(rule.dst_roots.size());
  plan.viable = true;
}

/// Stage 2 of the apply pipeline (serial, plan order): commits a viable
/// plan's staged nodes through the real hash-cons — duplicates planned by
/// other applications collapse here — and performs the merges. Returns true
/// if the e-graph changed. `committed` is caller-owned scratch.
bool commit_application(EGraph& eg, const Application& app, const ApplyPlan& plan,
                        PlanChunk& chunk, CycleFilterMode mode,
                        std::vector<Id>& committed) {
  committed.clear();
  for (uint32_t k = 0; k < plan.targets_count; ++k) {
    auto id = chunk.buf.commit(eg, chunk.targets[plan.targets_first + k]);
    if (!id.has_value()) return false;  // commit-time shape check failed
    committed.push_back(*id);
  }
  // Re-verify merge soundness on the live analysis data: commits earlier in
  // the batch can have joined analysis values (e.g. cleared a concat
  // history) since the plan compared against the snapshot.
  for (size_t k = 0; k < committed.size(); ++k)
    if (!merge_sound(eg.data(app.src_classes[k]), eg.data(committed[k])))
      return false;
  bool changed = false;
  for (size_t k = 0; k < committed.size(); ++k) {
    const Id src = eg.find(app.src_classes[k]);
    const Id dst = eg.find(committed[k]);
    if (src == dst) continue;
    if (mode == CycleFilterMode::kVanilla && merge_would_create_cycle(eg, src, dst))
      continue;
    changed |= eg.merge(src, dst);
  }
  return changed;
}

/// Sharded-commit working state: the prepared batch plus the cross-chunk
/// deduplication map (final-form node -> final id). Fresh ids are assigned
/// densely from `base` in first-resolution order — a pure function of the
/// plan order, independent of every thread count.
struct BatchCommit {
  Id base{0};
  std::vector<EGraph::PreparedNode> prepared;
  std::unordered_map<TNode, Id, TNodeHash> dedup;
};

/// Resolves one staged id to its final e-class id, children first,
/// memoizing per chunk entry. Sound because the resolve pass runs against
/// the untouched clean snapshot (no merges precede it in batch mode): real
/// children are still canonical, every all-real staged node is still
/// absent from the hash-cons (stage() proved absence and nothing was
/// added), and a node with a fresh child cannot pre-exist (no live node
/// references an id >= base). Resolution therefore cannot fail — the plan
/// already passed the only gate (shape inference) on identical inputs.
Id resolve_staged(const PlanChunk& chunk, std::vector<Id>& memo, Id id,
                  BatchCommit& bc, size_t& fresh) {
  if (!NodeBuffer::is_staged(id)) return id;  // canonical real id
  const size_t idx = NodeBuffer::staged_index(id);
  if (memo[idx] != kInvalidId) return memo[idx];
  TNode node = chunk.buf.staged_node(id);
  for (Id& c : node.children) c = resolve_staged(chunk, memo, c, bc, fresh);
  const Id next_id = bc.base + static_cast<Id>(bc.prepared.size());
  auto [it, inserted] = bc.dedup.emplace(node, next_id);
  if (inserted) {
    bc.prepared.push_back(
        EGraph::PreparedNode{std::move(node), &chunk.buf.staged_data(id)});
    ++fresh;
  }
  memo[idx] = it->second;
  return it->second;
}

}  // namespace

EGraph seed_egraph(const Graph& input) {
  Graph g = input;  // single_root() mutates
  const Id root = g.single_root();
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.set_root(mapping.at(root));
  return eg;
}

ExplorationSession::ExplorationSession() = default;
ExplorationSession::~ExplorationSession() = default;
ExplorationSession::ExplorationSession(ExplorationSession&&) noexcept = default;
ExplorationSession& ExplorationSession::operator=(ExplorationSession&&) noexcept =
    default;

ExploreStats run_exploration(EGraph& eg, const std::vector<Rewrite>& rules,
                             const TensatOptions& options,
                             ExplorationSession* session) {
  trace::ScopedSpan explore_span("explore");
  Timer timer;
  ExploreStats stats;
  stats.rules.resize(rules.size());
  for (size_t r = 0; r < rules.size(); ++r) stats.rules[r].name = rules[r].name;
  const MultiPlan plan = build_multi_plan(rules);
  // Scheduler: session-owned when resuming, call-local otherwise. Ban
  // timestamps are ABSOLUTE iteration numbers, so a resumed session must
  // keep numbering iterations on its global clock (iteration_base): bans
  // recorded by the previous call then expire exactly on schedule, instead
  // of being re-served from zero every call (see ExplorationSession).
  std::optional<ematch::BackoffScheduler> local_scheduler;
  if (session != nullptr) {
    if (session->scheduler == nullptr)
      session->scheduler =
          std::make_unique<ematch::BackoffScheduler>(rules.size(), options.backoff);
    TENSAT_CHECK(session->scheduler->num_rules() == rules.size(),
                 "session resumed with a different rule set");
  } else {
    local_scheduler.emplace(rules.size(), options.backoff);
  }
  ematch::BackoffScheduler& scheduler =
      session != nullptr ? *session->scheduler : *local_scheduler;
  const size_t iter_base = session != nullptr ? session->iteration_base : 0;

  // Which rules consume each canonical pattern: a pattern whose every user
  // is inactive this iteration (banned, or multi-pattern past k_multi) need
  // not be searched at all. Under the joint plan, multi-pattern rules search
  // through their own joint program instead, so they don't keep a canonical
  // pattern alive — patterns only multi-pattern rules use are never searched
  // separately.
  std::vector<std::vector<size_t>> pattern_users(plan.patterns.size());
  for (size_t r = 0; r < rules.size(); ++r) {
    if (options.joint_multi && rules[r].is_multi()) continue;
    for (const SourceBinding& sb : plan.rule_sources[r])
      pattern_users[sb.pattern_index].push_back(r);
  }

  eg.rebuild();
  // Incremental cycle analysis (cycles/incremental.h): attach once — the
  // e-graph journals every add/merge/filtering from here on — and build the
  // initial epoch. The fresh path below rebuilds a DescendantsMap per
  // iteration instead, as the differential baseline. A session resumes its
  // persisted analysis: the journal stayed attached between calls, so
  // whatever the service added to the e-graph since the last call is
  // already recorded and gets folded in at the first iteration's (lazy)
  // epoch advance — nothing is lost, nothing is rebuilt from scratch.
  const bool incremental_cycles =
      options.incremental_cycles &&
      options.cycle_filter == CycleFilterMode::kEfficient;
  std::unique_ptr<IncrementalCycleAnalysis> owned_cycles;
  IncrementalCycleAnalysis* inc_cycles = nullptr;
  if (incremental_cycles) {
    Timer dmap_timer;
    if (session != nullptr) {
      if (session->cycles == nullptr) {
        session->cycles = std::make_unique<IncrementalCycleAnalysis>(
            eg, /*fallback_fraction=*/0.5, options.apply_threads);
      } else {
        TENSAT_CHECK(session->cycles->egraph() == &eg,
                     "session resumed against a different e-graph");
      }
      inc_cycles = session->cycles.get();
    } else {
      owned_cycles = std::make_unique<IncrementalCycleAnalysis>(
          eg, /*fallback_fraction=*/0.5, options.apply_threads);
      inc_cycles = owned_cycles.get();
    }
    stats.dmap_seconds += dmap_timer.seconds();
  }
  for (int iter = 0; iter < options.k_max; ++iter) {
    if (timer.seconds() > options.explore_time_limit_s) {
      stats.stop = StopReason::kTimeLimit;
      break;
    }
    if (eg.num_enodes_total() >= options.node_limit) {
      stats.stop = StopReason::kNodeLimit;
      break;
    }
    const trace::ScopedSpan iter_span("explore/iteration", iter);
    const Timer iter_timer;
    const size_t matches_before_iter = stats.matches_found;
    const size_t applications_before_iter = stats.applications;
    const uint64_t version_before = eg.version();
    stats.iterations = iter + 1;

    auto rule_active = [&](size_t r) {
      if (scheduler.is_banned(r, iter_base + static_cast<size_t>(iter)))
        return false;
      return !(rules[r].is_multi() && iter >= options.k_multi);
    };

    // The descendants relation for the pre-filter: a frozen epoch of the
    // incremental map (advanced at the previous rebuild boundary), or — in
    // fresh mode — a DescendantsMap rebuilt here, once per iteration
    // (Algorithm 2 line 3). Either is immutable until the serial boundary,
    // so stage-1 workers share it read-only.
    std::unique_ptr<DescendantsMap> dmap;
    const ReachabilityMap* reach = nullptr;
    if (options.cycle_filter == CycleFilterMode::kEfficient) {
      if (incremental_cycles) {
        // Serial epoch boundary: drain the journal accumulated since the
        // last boundary into the next frozen epoch. Done lazily here — not
        // after the previous iteration's sweep — so the final iteration's
        // journal (whose epoch nobody would ever query) is never paid for,
        // mirroring the fresh path building its map only at iteration start.
        const trace::ScopedSpan dmap_span("explore/dmap");
        Timer dmap_timer;
        inc_cycles->advance_epoch();
        stats.dmap_seconds += dmap_timer.seconds();
        reach = inc_cycles;
      } else {
        const trace::ScopedSpan dmap_span("explore/dmap");
        Timer dmap_timer;
        dmap = std::make_unique<DescendantsMap>(eg);
        stats.dmap_seconds += dmap_timer.seconds();
        reach = dmap.get();
      }
    }

    // SEARCH: all canonical patterns with at least one active consumer, once
    // each (Algorithm 1 line 10), plus — under the joint plan — one joint
    // search per active multi-pattern rule. All searches are read-only over
    // the clean e-graph, so they fan out across the worker pool; results
    // land in per-task slots and are identical for any thread count.
    std::vector<std::vector<PatternMatch>> matches(plan.patterns.size());
    std::vector<std::vector<ematch::JointMatch>> joint_matches(rules.size());
    struct SearchTask {
      bool joint;
      size_t index;                 // pattern index, or rule index if joint
      ematch::MatchLimits limits;
      /// Rules charged for this search's wall time (RuleTelemetry::seconds):
      /// the pattern's active users, or the joint rule itself.
      std::vector<size_t> charged_rules;
    };
    std::vector<SearchTask> tasks;
    for (size_t p = 0; p < plan.patterns.size(); ++p) {
      // A pattern with no users at all (under the joint plan: sources only
      // multi-pattern rules consume) is covered elsewhere by design — it is
      // not a "skipped" search.
      if (pattern_users[p].empty()) continue;
      std::vector<size_t> active_users;
      for (size_t r : pattern_users[p])
        if (rule_active(r)) active_users.push_back(r);
      if (!active_users.empty())
        tasks.push_back(SearchTask{false, p, {}, std::move(active_users)});
      else
        ++stats.searches_skipped;
    }
    if (options.joint_multi) {
      for (size_t r = 0; r < rules.size(); ++r) {
        if (!rules[r].is_multi() || !rule_active(r)) continue;
        // The apply step stops after budget+1 combined matches (the +1 is
        // what trips the scheduler's ban), so the search needn't return more.
        ematch::MatchLimits limits;
        limits.max_matches = scheduler.match_limit(r) + 1;
        tasks.push_back(SearchTask{true, r, limits, {r}});
      }
    }
    // Same dispatch gate as ematch::search_all: a sweep too small to
    // amortize thread spawns runs on the calling thread (identical results
    // either way — only the dispatch changes).
    size_t search_threads = options.search_threads;
    if (search_threads != 1) {
      std::vector<const ematch::Program*> progs;
      progs.reserve(tasks.size());
      for (const SearchTask& task : tasks)
        progs.push_back(task.joint ? &plan.joint_programs[task.index]
                                   : &plan.patterns[task.index].program);
      if (ematch::search_work_estimate(eg, progs) < ematch::kMinParallelSearchWork)
        search_threads = 1;
    }
    Timer search_timer;
    // Per-task wall time, written by whichever worker runs the task (its own
    // slot; parallel_for's join publishes it) and distributed to the charged
    // rules serially below.
    std::vector<double> task_seconds(tasks.size(), 0.0);
    {
      const trace::ScopedSpan search_span("explore/search");
      parallel_for(tasks.size(), search_threads, [&](size_t t) {
        const SearchTask& task = tasks[t];
        const Timer task_timer;
        if (task.joint)
          joint_matches[task.index] =
              ematch::search_joint(eg, plan.joint_programs[task.index], task.limits);
        else
          matches[task.index] = ematch::search(eg, plan.patterns[task.index].program);
        task_seconds[t] = task_timer.seconds();
      });
    }
    stats.search_seconds += search_timer.seconds();
    for (size_t t = 0; t < tasks.size(); ++t) {
      const std::vector<size_t>& charged = tasks[t].charged_rules;
      const double share = task_seconds[t] / static_cast<double>(charged.size());
      for (size_t r : charged) stats.rules[r].seconds += share;
    }
    // Joint matches are credited to the multi_* stats in the apply loop, the
    // same place the Cartesian baseline counts its tuples, so the two modes
    // stay comparable even when node/time limits truncate the apply phase.
    for (const SearchTask& task : tasks)
      if (!task.joint) stats.matches_found += matches[task.index].size();

    // APPLY. The phase is a pipeline (mirroring egg's deferred-invariant
    // design): COLLECT enumerates the pending applications per rule, stage 1
    // evaluates every application read-only (fans out over apply_threads),
    // stage 2 commits nodes and merges serially in plan order — the
    // determinism anchor — and stage 3 is the single rebuild below.
    //
    // COLLECT walks rules with multi-pattern rules first: they introduce the
    // merged operators the search is really after, and must not be starved
    // of node budget by the (cheap, plentiful) algebraic rules. Budgets and
    // bans depend only on the match sets, never on apply outcomes, so
    // collection needs no e-graph access at all.
    Timer apply_timer;
    std::vector<size_t> rule_order;
    for (size_t r = 0; r < rules.size(); ++r)
      if (rules[r].is_multi()) rule_order.push_back(r);
    for (size_t r = 0; r < rules.size(); ++r)
      if (!rules[r].is_multi()) rule_order.push_back(r);

    // Collect is timed with an explicit record (not ScopedSpan) because the
    // loop and the later stages share this scope.
    trace::Tracer* const tracer = trace::Tracer::current();
    const double collect_start_us = tracer != nullptr ? tracer->now_us() : 0.0;
    std::vector<Application> apps;
    for (size_t r : rule_order) {
      // Enumeration of a huge match product can itself be slow; a coarse
      // per-rule check keeps collect bounded by the time limit (stage 2
      // notices the blown limit and records the stop reason).
      if (timer.seconds() > options.explore_time_limit_s) break;
      const Rewrite& rule = rules[r];
      if (!rule_active(r)) continue;
      const SecondsGuard rule_guard(stats.rules[r].seconds);
      const auto& sources = plan.rule_sources[r];
      const size_t budget = scheduler.match_limit(r);
      size_t applied_this_rule = 0;

      // Joint plan: the search already produced the compatible combinations
      // with shared variables bound once; just queue them.
      if (options.joint_multi && rule.is_multi()) {
        for (const ematch::JointMatch& jm : joint_matches[r]) {
          // The joint search only ever examines compatible tuples, so the
          // two counters advance together (the Cartesian baseline's combos
          // additionally include the incompatible tuples it had to try).
          ++stats.multi_combos_considered;
          ++stats.multi_matches_found;
          ++stats.rules[r].matches;
          ++applied_this_rule;
          // Budget blown: stop here; record_matches below imposes the ban.
          if (applied_this_rule > budget) break;
          ++stats.rules[r].planned;
          apps.push_back(Application{&rule, r, jm.roots, jm.subst});
        }
        if (scheduler.record_matches(r, iter_base + static_cast<size_t>(iter), applied_this_rule))
          ++stats.bans, ++stats.rules[r].bans;
        continue;
      }

      // De-canonicalized match lists per source pattern (Algorithm 1 ln 12-15).
      std::vector<std::vector<PatternMatch>> per_source;
      per_source.reserve(sources.size());
      bool any_empty = false;
      for (const SourceBinding& sb : sources) {
        std::vector<PatternMatch> list;
        list.reserve(matches[sb.pattern_index].size());
        for (const PatternMatch& m : matches[sb.pattern_index])
          list.push_back(PatternMatch{m.root, decanonicalize(m.subst, sb.rename)});
        if (list.empty()) any_empty = true;
        per_source.push_back(std::move(list));
      }
      if (any_empty) continue;

      // Cartesian product with the compatibility check (Algorithm 1 ln 16-20).
      std::vector<size_t> idx(per_source.size(), 0);
      for (;;) {
        Application app;
        app.rule = &rule;
        app.rule_index = r;
        if (rule.is_multi()) ++stats.multi_combos_considered;
        std::optional<Subst> combined = Subst{};
        for (size_t k = 0; k < per_source.size() && combined; ++k) {
          const PatternMatch& m = per_source[k][idx[k]];
          app.src_classes.push_back(m.root);
          combined = Subst::merged(*combined, m.subst);
        }
        if (combined.has_value()) {  // COMPATIBLE
          app.subst = std::move(*combined);
          ++applied_this_rule;
          ++stats.rules[r].matches;
          if (rule.is_multi()) ++stats.multi_matches_found;
          // Budget blown: stop here; record_matches below imposes the ban.
          if (applied_this_rule > budget) break;
          ++stats.rules[r].planned;
          apps.push_back(std::move(app));
        }
        size_t k = 0;
        while (k < idx.size()) {
          if (++idx[k] < per_source[k].size()) break;
          idx[k] = 0;
          ++k;
        }
        if (k == idx.size()) break;
      }
      if (scheduler.record_matches(r, iter_base + static_cast<size_t>(iter), applied_this_rule))
        ++stats.bans, ++stats.rules[r].bans;
    }
    if (tracer != nullptr)
      tracer->record_span("explore/collect", collect_start_us, tracer->now_us());

    bool hit_node_limit = false;
    bool hit_time_limit = false;
    if (options.staged_apply) {
      // STAGE 1 (parallel, read-only): chunks of applications plan against
      // the clean e-graph; workers share only the e-graph and the
      // descendants map. Which worker plans which chunk is scheduling-
      // dependent; the chunks and their plans are not.
      const size_t num_chunks = (apps.size() + kPlanChunk - 1) / kPlanChunk;
      std::vector<PlanChunk> chunks;
      chunks.reserve(num_chunks);
      for (size_t c = 0; c < num_chunks; ++c) chunks.emplace_back(eg);
      std::vector<ApplyPlan> plans(apps.size());
      // Rule conditions are arbitrary user callbacks, so planning itself can
      // blow the time limit: every worker re-checks it per application and
      // the abort flag stops the rest of the pool. Un-planned applications
      // simply stay non-viable — stage 2 sees the blown limit immediately
      // and stops the phase, matching the direct path's per-application
      // enforcement. (Node limits need no stage-1 check: planning never
      // grows the e-graph.)
      std::atomic<bool> plan_timed_out{false};
      {
        const trace::ScopedSpan plan_span("explore/plan");
        parallel_for(num_chunks, options.apply_threads, [&](size_t c) {
          // Per-chunk span on the worker's own lane: the per-thread view of
          // stage-1 occupancy (arg = chunk index).
          const trace::ScopedSpan chunk_span("apply/plan_chunk",
                                             static_cast<int64_t>(c));
          const size_t begin = c * kPlanChunk;
          const size_t end = std::min(begin + kPlanChunk, apps.size());
          for (size_t i = begin; i < end; ++i) {
            if (plan_timed_out.load(std::memory_order_relaxed)) return;
            if (timer.seconds() > options.explore_time_limit_s) {
              plan_timed_out.store(true, std::memory_order_relaxed);
              return;
            }
            plan_application(eg, apps[i], plans[i], chunks[c],
                             options.cycle_filter, reach);
          }
        });
      }

      const trace::ScopedSpan commit_span("explore/commit");
      if (options.sharded_commit) {
        // STAGE 2, batch mode: (a) serial resolve in plan order assigns
        // every fresh node a dense final id (pure function of the plans —
        // independent of all thread counts), (b) commit_prepared inserts
        // the whole batch with a parallel sharded fill, (c) a serial merge
        // pass in plan order performs the unions. Limits are enforced
        // between applications during resolve: the node check projects the
        // pending batch so batch mode stops at the same effective size the
        // serial path would, and an application either resolves fully or
        // not at all (per-app atomicity).
        BatchCommit bc;
        bc.base = static_cast<Id>(eg.num_ids());
        std::vector<std::vector<Id>> memos(chunks.size());
        for (size_t c = 0; c < chunks.size(); ++c)
          memos[c].assign(chunks[c].buf.size(), kInvalidId);
        struct ResolvedApp {
          uint32_t app_index;
          uint32_t targets_first;
          uint32_t targets_count;
        };
        std::vector<ResolvedApp> resolved;
        std::vector<Id> final_targets;
        for (size_t i = 0; i < apps.size(); ++i) {
          if (eg.num_enodes_total() + bc.prepared.size() >=
              options.node_limit) {
            hit_node_limit = true;
            break;
          }
          if (timer.seconds() > options.explore_time_limit_s) {
            hit_time_limit = true;
            break;
          }
          if (!plans[i].viable) continue;
          RuleTelemetry& rt = stats.rules[apps[i].rule_index];
          const SecondsGuard resolve_guard(rt.seconds);
          const PlanChunk& chunk = chunks[i / kPlanChunk];
          std::vector<Id>& memo = memos[i / kPlanChunk];
          size_t fresh = 0;
          const uint32_t first = static_cast<uint32_t>(final_targets.size());
          for (uint32_t k = 0; k < plans[i].targets_count; ++k) {
            final_targets.push_back(
                resolve_staged(chunk, memo,
                               chunk.targets[plans[i].targets_first + k], bc,
                               fresh));
          }
          rt.nodes_added += fresh;
          resolved.push_back(ResolvedApp{static_cast<uint32_t>(i), first,
                                         plans[i].targets_count});
        }
        const Id commit_base = eg.commit_prepared(bc.prepared,
                                                  options.apply_threads);
        TENSAT_CHECK(commit_base == bc.base,
                     "sharded commit base drifted: " << commit_base
                                                     << " != " << bc.base);
        // Serial merge pass — the determinism anchor. Soundness is
        // re-verified on the live analysis data exactly as
        // commit_application does: merges earlier in the batch can have
        // joined analysis values since the plan compared the snapshot.
        for (const ResolvedApp& ra : resolved) {
          const Application& app = apps[ra.app_index];
          RuleTelemetry& rt = stats.rules[app.rule_index];
          const SecondsGuard merge_guard(rt.seconds);
          bool sound = true;
          for (uint32_t k = 0; k < ra.targets_count && sound; ++k) {
            sound = merge_sound(eg.data(app.src_classes[k]),
                                eg.data(final_targets[ra.targets_first + k]));
          }
          if (!sound) continue;
          bool changed = false;
          for (uint32_t k = 0; k < ra.targets_count; ++k) {
            const Id src = eg.find(app.src_classes[k]);
            const Id dst = eg.find(final_targets[ra.targets_first + k]);
            if (src == dst) continue;
            if (options.cycle_filter == CycleFilterMode::kVanilla &&
                merge_would_create_cycle(eg, src, dst)) {
              continue;
            }
            changed |= eg.merge(src, dst);
          }
          if (changed) {
            ++stats.applications;
            ++rt.committed;
          }
        }
      } else {
        // STAGE 2, serial mode: commit one application at a time in plan
        // order, interleaving inserts and merges exactly like the direct
        // path. Node and time limits are enforced between applications;
        // exceeding the time limit stops the whole apply phase (the stop
        // reason is recorded after the rebuild below).
        std::vector<Id> committed;
        for (size_t i = 0; i < apps.size(); ++i) {
          if (eg.num_enodes_total() >= options.node_limit) {
            hit_node_limit = true;
            break;
          }
          if (timer.seconds() > options.explore_time_limit_s) {
            hit_time_limit = true;
            break;
          }
          if (!plans[i].viable) continue;
          RuleTelemetry& rt = stats.rules[apps[i].rule_index];
          const SecondsGuard commit_guard(rt.seconds);
          const size_t nodes_before = eg.num_enodes_total();
          if (commit_application(eg, apps[i], plans[i], chunks[i / kPlanChunk],
                                 options.cycle_filter, committed)) {
            ++stats.applications;
            ++rt.committed;
          }
          rt.nodes_added += eg.num_enodes_total() - nodes_before;
        }
      }
    } else {
      // Legacy direct path: condition checks, pre-filters, and instantiation
      // run against the live (mid-mutation) e-graph, one application at a
      // time, in the same plan order the staged pipeline commits in.
      const trace::ScopedSpan commit_span("explore/commit");
      for (const Application& app : apps) {
        if (eg.num_enodes_total() >= options.node_limit) {
          hit_node_limit = true;
          break;
        }
        if (timer.seconds() > options.explore_time_limit_s) {
          hit_time_limit = true;
          break;
        }
        RuleTelemetry& rt = stats.rules[app.rule_index];
        const SecondsGuard apply_guard(rt.seconds);
        const size_t nodes_before = eg.num_enodes_total();
        if (apply_one(eg, app, options.cycle_filter, reach)) {
          ++stats.applications;
          ++rt.committed;
        }
        rt.nodes_added += eg.num_enodes_total() - nodes_before;
      }
    }
    stats.apply_seconds += apply_timer.seconds();

    // STAGE 3: restore congruence, then filter cycles.
    {
      const trace::ScopedSpan rebuild_span("explore/rebuild");
      Timer rebuild_timer;
      eg.rebuild();
      stats.rebuild_seconds += rebuild_timer.seconds();
    }
    // Post-processing (Algorithm 2 lines 10-18): filter remaining cycles.
    if (options.cycle_filter == CycleFilterMode::kEfficient ||
        options.cycle_filter == CycleFilterMode::kVanilla) {
      // Vanilla's per-merge check is complete for the merges it allows, but
      // congruence-closure merges during rebuild() can still fuse classes
      // into cycles; sweep them too so the invariant holds for both modes.
      // The incremental sweep restarts its DFS only from merge-dirtied
      // classes and skips outright on add-only iterations; when it does
      // find a cycle it delegates to the same full filter_cycles pass, so
      // the filtered sets match the fresh baseline exactly.
      const trace::ScopedSpan sweep_span("explore/sweep");
      Timer sweep_timer;
      if (incremental_cycles)
        inc_cycles->sweep_cycles();
      else
        filter_cycles(eg);
      stats.cycle_sweep_seconds += sweep_timer.seconds();
    }

    // Growth timeline: one sample per executed iteration, taken after the
    // sweep so the sizes reflect what the next iteration will search. The
    // counter samples come from this serial context only, so their merged
    // sequences stay deterministic across thread counts.
    {
      IterationTelemetry g;
      g.eclasses = eg.num_classes();
      g.enodes = eg.num_enodes();
      g.enodes_total = eg.num_enodes_total();
      g.filtered = eg.num_filtered();
      g.matches = stats.matches_found - matches_before_iter;
      g.applications = stats.applications - applications_before_iter;
      g.seconds = iter_timer.seconds();
      trace::counter("egraph/classes", static_cast<int64_t>(g.eclasses));
      trace::counter("egraph/enodes", static_cast<int64_t>(g.enodes));
      trace::counter("egraph/hashcons", static_cast<int64_t>(g.enodes_total));
      trace::counter("egraph/filtered", static_cast<int64_t>(g.filtered));
      stats.growth.push_back(std::move(g));
    }

    if (hit_node_limit) {
      stats.stop = StopReason::kNodeLimit;
      break;
    }
    if (hit_time_limit) {
      stats.stop = StopReason::kTimeLimit;
      break;
    }
    if (eg.version() == version_before) {
      // Saturation may only be declared when no rule sat out the iteration
      // that just ran: a banned rule could still grow the e-graph. Lift the
      // bans and give those rules a final iteration instead.
      if (scheduler.any_banned(iter_base + static_cast<size_t>(iter))) {
        // Count the lifted bans per rule: banned beyond this iteration means
        // the unban below cuts the ban short.
        for (size_t r = 0; r < rules.size(); ++r)
          if (scheduler.is_banned(r, iter_base + static_cast<size_t>(iter) + 1))
            ++stats.rules[r].unbans;
        trace::instant("explore/unban_all");
        scheduler.unban_all();
        stats.stop = StopReason::kIterLimit;
        continue;
      }
      stats.stop = StopReason::kSaturated;
      break;
    }
    stats.stop = StopReason::kIterLimit;
  }

  stats.enodes = eg.num_enodes();
  stats.enodes_total = eg.num_enodes_total();
  stats.eclasses = eg.num_classes();
  stats.filtered = eg.num_filtered();
  stats.seconds = timer.seconds();
  // Advance the session's global iteration clock so the next run_exploration
  // call interprets the persisted scheduler's absolute ban deadlines
  // correctly (its local `iter` restarts at 0).
  if (session != nullptr)
    session->iteration_base += static_cast<size_t>(stats.iterations);
  return stats;
}

TensatResult optimize(const Graph& input, const std::vector<Rewrite>& rules,
                      const CostModel& model, const TensatOptions& options) {
  TensatResult result;
  result.original_cost = graph_cost(input, model);

  EGraph eg = seed_egraph(input);
  result.explore = run_exploration(eg, rules, options);

  Timer extract_timer;
  if (options.extractor == ExtractorKind::kGreedy) {
    ExtractionResult ext = extract_greedy(eg, model);
    result.ok = ext.ok;
    if (ext.ok) {
      result.optimized = std::move(ext.graph);
      result.optimized_cost = ext.cost;
    }
  } else {
    result.ilp = extract_engine(eg, model, options.ilp);
    result.ok = result.ilp.ok;
    result.extract_stats = result.ilp.stats;
    if (result.ilp.ok) {
      result.optimized = result.ilp.graph;
      result.optimized_cost = result.ilp.cost;
    }
  }
  result.extract_seconds = extract_timer.seconds();

  // The optimizer must never return a graph worse than its input: fall back
  // to the input if extraction found nothing better (can happen when the
  // node limit truncates exploration mid-way).
  if (!result.ok || result.optimized_cost > result.original_cost) {
    Graph g = input;
    g.single_root();
    result.optimized = std::move(g);
    result.optimized_cost = result.original_cost;
    result.ok = true;
  }
  return result;
}

}  // namespace tensat
