#include "optimizer/optimizer.h"

#include <algorithm>

#include "cycles/cycles.h"
#include "rewrite/matcher.h"
#include "rewrite/multi.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/timer.h"

namespace tensat {
namespace {

/// One pending application: the rule, the per-source matched root classes,
/// and the combined substitution.
struct Application {
  const Rewrite* rule;
  std::vector<Id> src_classes;
  Subst subst;
};

/// Applies one substitution with the configured cycle handling. Returns true
/// if the e-graph changed.
bool apply_one(EGraph& eg, const Application& app, CycleFilterMode mode,
               const DescendantsMap* dmap) {
  const Rewrite& rule = *app.rule;

  // Rule condition on the matched variables' analysis data.
  if (rule.cond) {
    auto lookup = [&](Symbol var) -> const ValueInfo& {
      auto bound = app.subst.get(var);
      TENSAT_CHECK(bound.has_value(), "condition references unbound ?" << var.str());
      return eg.data(*bound);
    };
    if (!rule.check_cond(lookup)) return false;
  }

  // Efficient pre-filter (Algorithm 2, lines 3-9): skip the substitution if
  // a matched class is a descendant of (or is) a class we would merge into.
  if (mode == CycleFilterMode::kEfficient && dmap != nullptr) {
    for (Id src : app.src_classes) {
      const Id a = eg.find(src);
      for (const auto& [var, cls] : app.subst.bindings()) {
        const Id c = eg.find(cls);
        if (c == a || dmap->reaches(c, a)) return false;
      }
    }
  }

  // Instantiate every target pattern (monotone adds; cannot create cycles).
  std::vector<Id> targets;
  targets.reserve(rule.dst_roots.size());
  for (Id dst_root : rule.dst_roots) {
    auto target = instantiate(eg, rule.pat, dst_root, app.subst);
    if (!target.has_value()) return false;  // shape check failed
    targets.push_back(*target);
  }
  // The merge is only sound if each target computes a value of the same
  // shape as its matched source class.
  for (size_t k = 0; k < targets.size(); ++k) {
    const ValueInfo& a = eg.data(app.src_classes[k]);
    const ValueInfo& b = eg.data(targets[k]);
    if (a.kind != b.kind || a.shape != b.shape || a.shape2 != b.shape2) return false;
  }

  bool changed = false;
  for (size_t k = 0; k < targets.size(); ++k) {
    const Id src = eg.find(app.src_classes[k]);
    const Id dst = eg.find(targets[k]);
    if (src == dst) continue;
    if (mode == CycleFilterMode::kVanilla && merge_would_create_cycle(eg, src, dst)) {
      // Vanilla filtering (paper §5.2): discard the substitution. The target
      // nodes stay in the e-graph unmerged, which is harmless.
      continue;
    }
    changed |= eg.merge(src, dst);
  }
  return changed;
}

}  // namespace

EGraph seed_egraph(const Graph& input) {
  Graph g = input;  // single_root() mutates
  const Id root = g.single_root();
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.set_root(mapping.at(root));
  return eg;
}

ExploreStats run_exploration(EGraph& eg, const std::vector<Rewrite>& rules,
                             const TensatOptions& options) {
  Timer timer;
  ExploreStats stats;
  const MultiPlan plan = build_multi_plan(rules);
  ematch::BackoffScheduler scheduler(rules.size(), options.backoff);

  // Which rules consume each canonical pattern: a pattern whose every user
  // is inactive this iteration (banned, or multi-pattern past k_multi) need
  // not be searched at all. Under the joint plan, multi-pattern rules search
  // through their own joint program instead, so they don't keep a canonical
  // pattern alive — patterns only multi-pattern rules use are never searched
  // separately.
  std::vector<std::vector<size_t>> pattern_users(plan.patterns.size());
  for (size_t r = 0; r < rules.size(); ++r) {
    if (options.joint_multi && rules[r].is_multi()) continue;
    for (const SourceBinding& sb : plan.rule_sources[r])
      pattern_users[sb.pattern_index].push_back(r);
  }

  eg.rebuild();
  for (int iter = 0; iter < options.k_max; ++iter) {
    if (timer.seconds() > options.explore_time_limit_s) {
      stats.stop = StopReason::kTimeLimit;
      break;
    }
    if (eg.num_enodes_total() >= options.node_limit) {
      stats.stop = StopReason::kNodeLimit;
      break;
    }
    const uint64_t version_before = eg.version();
    stats.iterations = iter + 1;

    auto rule_active = [&](size_t r) {
      if (scheduler.is_banned(r, static_cast<size_t>(iter))) return false;
      return !(rules[r].is_multi() && iter >= options.k_multi);
    };

    // The descendants map is rebuilt once per iteration (Algorithm 2 line 3).
    std::unique_ptr<DescendantsMap> dmap;
    if (options.cycle_filter == CycleFilterMode::kEfficient)
      dmap = std::make_unique<DescendantsMap>(eg);

    // SEARCH: all canonical patterns with at least one active consumer, once
    // each (Algorithm 1 line 10), plus — under the joint plan — one joint
    // search per active multi-pattern rule. All searches are read-only over
    // the clean e-graph, so they fan out across the worker pool; results
    // land in per-task slots and are identical for any thread count.
    std::vector<std::vector<PatternMatch>> matches(plan.patterns.size());
    std::vector<std::vector<ematch::JointMatch>> joint_matches(rules.size());
    struct SearchTask {
      bool joint;
      size_t index;                 // pattern index, or rule index if joint
      ematch::MatchLimits limits;
    };
    std::vector<SearchTask> tasks;
    for (size_t p = 0; p < plan.patterns.size(); ++p) {
      // A pattern with no users at all (under the joint plan: sources only
      // multi-pattern rules consume) is covered elsewhere by design — it is
      // not a "skipped" search.
      if (pattern_users[p].empty()) continue;
      bool any_active = false;
      for (size_t r : pattern_users[p]) any_active = any_active || rule_active(r);
      if (any_active)
        tasks.push_back(SearchTask{false, p, {}});
      else
        ++stats.searches_skipped;
    }
    if (options.joint_multi) {
      for (size_t r = 0; r < rules.size(); ++r) {
        if (!rules[r].is_multi() || !rule_active(r)) continue;
        // The apply step stops after budget+1 combined matches (the +1 is
        // what trips the scheduler's ban), so the search needn't return more.
        ematch::MatchLimits limits;
        limits.max_matches = scheduler.match_limit(r) + 1;
        tasks.push_back(SearchTask{true, r, limits});
      }
    }
    parallel_for(tasks.size(), options.search_threads, [&](size_t t) {
      const SearchTask& task = tasks[t];
      if (task.joint)
        joint_matches[task.index] =
            ematch::search_joint(eg, plan.joint_programs[task.index], task.limits);
      else
        matches[task.index] = ematch::search(eg, plan.patterns[task.index].program);
    });
    // Joint matches are credited to the multi_* stats in the apply loop, the
    // same place the Cartesian baseline counts its tuples, so the two modes
    // stay comparable even when node/time limits truncate the apply phase.
    for (const SearchTask& task : tasks)
      if (!task.joint) stats.matches_found += matches[task.index].size();

    // APPLY per rule. Multi-pattern rules go first: they introduce the
    // merged operators the search is really after, and must not be starved
    // of node budget by the (cheap, plentiful) algebraic rules.
    std::vector<size_t> rule_order;
    for (size_t r = 0; r < rules.size(); ++r)
      if (rules[r].is_multi()) rule_order.push_back(r);
    for (size_t r = 0; r < rules.size(); ++r)
      if (!rules[r].is_multi()) rule_order.push_back(r);

    bool hit_node_limit = false;
    for (size_t r : rule_order) {
      if (hit_node_limit) break;
      const Rewrite& rule = rules[r];
      if (!rule_active(r)) continue;
      const auto& sources = plan.rule_sources[r];
      const size_t budget = scheduler.match_limit(r);
      size_t applied_this_rule = 0;

      // Joint plan: the search already produced the compatible combinations
      // with shared variables bound once; just apply them.
      if (options.joint_multi && rule.is_multi()) {
        for (const ematch::JointMatch& jm : joint_matches[r]) {
          // The joint search only ever examines compatible tuples, so the
          // two counters advance together (the Cartesian baseline's combos
          // additionally include the incompatible tuples it had to try).
          ++stats.multi_combos_considered;
          ++stats.multi_matches_found;
          ++applied_this_rule;
          // Budget blown: stop here; record_matches below imposes the ban.
          if (applied_this_rule > budget) break;
          Application app;
          app.rule = &rule;
          app.src_classes = jm.roots;
          app.subst = jm.subst;
          if (apply_one(eg, app, options.cycle_filter, dmap.get()))
            ++stats.applications;
          if (eg.num_enodes_total() >= options.node_limit) {
            hit_node_limit = true;
            break;
          }
          if (timer.seconds() > options.explore_time_limit_s) break;
        }
        if (scheduler.record_matches(r, static_cast<size_t>(iter), applied_this_rule))
          ++stats.bans;
        continue;
      }

      // De-canonicalized match lists per source pattern (Algorithm 1 ln 12-15).
      std::vector<std::vector<PatternMatch>> per_source;
      per_source.reserve(sources.size());
      bool any_empty = false;
      for (const SourceBinding& sb : sources) {
        std::vector<PatternMatch> list;
        list.reserve(matches[sb.pattern_index].size());
        for (const PatternMatch& m : matches[sb.pattern_index])
          list.push_back(PatternMatch{m.root, decanonicalize(m.subst, sb.rename)});
        if (list.empty()) any_empty = true;
        per_source.push_back(std::move(list));
      }
      if (any_empty) continue;

      // Cartesian product with the compatibility check (Algorithm 1 ln 16-20).
      std::vector<size_t> idx(per_source.size(), 0);
      while (!hit_node_limit) {
        Application app;
        app.rule = &rule;
        if (rule.is_multi()) ++stats.multi_combos_considered;
        std::optional<Subst> combined = Subst{};
        for (size_t k = 0; k < per_source.size() && combined; ++k) {
          const PatternMatch& m = per_source[k][idx[k]];
          app.src_classes.push_back(m.root);
          combined = Subst::merged(*combined, m.subst);
        }
        if (combined.has_value()) {  // COMPATIBLE
          app.subst = std::move(*combined);
          ++applied_this_rule;
          if (rule.is_multi()) ++stats.multi_matches_found;
          // Budget blown: stop here; record_matches below imposes the ban.
          if (applied_this_rule > budget) break;
          if (apply_one(eg, app, options.cycle_filter, dmap.get()))
            ++stats.applications;
          if (eg.num_enodes_total() >= options.node_limit) hit_node_limit = true;
          if (timer.seconds() > options.explore_time_limit_s) break;
        }
        size_t k = 0;
        while (k < idx.size()) {
          if (++idx[k] < per_source[k].size()) break;
          idx[k] = 0;
          ++k;
        }
        if (k == idx.size()) break;
      }
      if (scheduler.record_matches(r, static_cast<size_t>(iter), applied_this_rule))
        ++stats.bans;
    }

    eg.rebuild();
    // Post-processing (Algorithm 2 lines 10-18): filter remaining cycles.
    if (options.cycle_filter == CycleFilterMode::kEfficient ||
        options.cycle_filter == CycleFilterMode::kVanilla) {
      // Vanilla's per-merge check is complete for the merges it allows, but
      // congruence-closure merges during rebuild() can still fuse classes
      // into cycles; sweep them too so the invariant holds for both modes.
      filter_cycles(eg);
    }

    if (hit_node_limit) {
      stats.stop = StopReason::kNodeLimit;
      break;
    }
    if (eg.version() == version_before) {
      // Saturation may only be declared when no rule sat out the iteration
      // that just ran: a banned rule could still grow the e-graph. Lift the
      // bans and give those rules a final iteration instead.
      if (scheduler.any_banned(static_cast<size_t>(iter))) {
        scheduler.unban_all();
        stats.stop = StopReason::kIterLimit;
        continue;
      }
      stats.stop = StopReason::kSaturated;
      break;
    }
    stats.stop = StopReason::kIterLimit;
  }

  stats.enodes = eg.num_enodes();
  stats.enodes_total = eg.num_enodes_total();
  stats.eclasses = eg.num_classes();
  stats.filtered = eg.num_filtered();
  stats.seconds = timer.seconds();
  return stats;
}

TensatResult optimize(const Graph& input, const std::vector<Rewrite>& rules,
                      const CostModel& model, const TensatOptions& options) {
  TensatResult result;
  result.original_cost = graph_cost(input, model);

  EGraph eg = seed_egraph(input);
  result.explore = run_exploration(eg, rules, options);

  Timer extract_timer;
  if (options.extractor == ExtractorKind::kGreedy) {
    ExtractionResult ext = extract_greedy(eg, model);
    result.ok = ext.ok;
    if (ext.ok) {
      result.optimized = std::move(ext.graph);
      result.optimized_cost = ext.cost;
    }
  } else {
    result.ilp = extract_ilp(eg, model, options.ilp);
    result.ok = result.ilp.ok;
    if (result.ilp.ok) {
      result.optimized = result.ilp.graph;
      result.optimized_cost = result.ilp.cost;
    }
  }
  result.extract_seconds = extract_timer.seconds();

  // The optimizer must never return a graph worse than its input: fall back
  // to the input if extraction found nothing better (can happen when the
  // node limit truncates exploration mid-way).
  if (!result.ok || result.optimized_cost > result.original_cost) {
    Graph g = input;
    g.single_root();
    result.optimized = std::move(g);
    result.optimized_cost = result.original_cost;
    result.ok = true;
  }
  return result;
}

}  // namespace tensat
