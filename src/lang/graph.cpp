#include "lang/graph.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace tensat {

std::optional<Id> Graph::try_add(TNode node) {
  TENSAT_CHECK(op_arity(node.op) == static_cast<int>(node.children.size()),
               "arity mismatch for " << op_info(node.op).name << ": got "
                                     << node.children.size());
  for (Id c : node.children)
    TENSAT_CHECK(c >= 0 && c < static_cast<Id>(nodes_.size()),
                 "child id out of range: " << c);
  auto it = memo_.find(node);
  if (it != memo_.end()) return it->second;

  ValueInfo info;
  if (kind_ == GraphKind::kConcrete) {
    TENSAT_CHECK(node.op != Op::kVar, "kVar node in a concrete graph");
    std::vector<ValueInfo> inputs;
    inputs.reserve(node.children.size());
    for (Id c : node.children) inputs.push_back(infos_[c]);
    auto inferred = infer(node, inputs);
    if (!inferred.has_value()) return std::nullopt;
    info = std::move(*inferred);
  }

  const Id id = static_cast<Id>(nodes_.size());
  nodes_.push_back(std::move(node));
  infos_.push_back(std::move(info));
  memo_.emplace(nodes_.back(), id);
  return id;
}

Id Graph::add(TNode node) {
  const Op op = node.op;
  auto id = try_add(std::move(node));
  TENSAT_CHECK(id.has_value(), "shape check failed adding " << op_info(op).name);
  return *id;
}

Id Graph::input(std::string_view name, const std::vector<int32_t>& dims) {
  return add({Op::kInput, 0, {}, {str(format_tensor_id(name, dims))}});
}

Id Graph::weight(std::string_view name, const std::vector<int32_t>& dims) {
  return add({Op::kWeight, 0, {}, {str(format_tensor_id(name, dims))}});
}

Id Graph::concat(int32_t axis, const std::vector<Id>& inputs) {
  TENSAT_CHECK(inputs.size() >= 2 && inputs.size() <= 5,
               "concat supports 2..5 inputs, got " << inputs.size());
  static constexpr Op kOps[] = {Op::kConcat2, Op::kConcat3, Op::kConcat4, Op::kConcat5};
  TNode n{kOps[inputs.size() - 2], 0, {}, {num(axis)}};
  n.children.insert(n.children.end(), inputs.begin(), inputs.end());
  return add(std::move(n));
}

void Graph::add_root(Id id) {
  TENSAT_CHECK(id >= 0 && id < static_cast<Id>(nodes_.size()), "bad root id");
  roots_.push_back(id);
}

Id Graph::single_root() {
  TENSAT_CHECK(!roots_.empty(), "graph has no roots");
  if (roots_.size() == 1) return roots_[0];
  Id combined = roots_[0];
  for (size_t i = 1; i < roots_.size(); ++i) combined = noop(combined, roots_[i]);
  roots_ = {combined};
  return combined;
}

std::vector<Id> Graph::topo_order() const {
  std::vector<Id> order;
  std::vector<int8_t> state(nodes_.size(), 0);  // 0=unvisited, 1=visiting, 2=done
  // Iterative DFS; children pushed before the node is emitted.
  std::vector<std::pair<Id, size_t>> stack;
  for (Id root : roots_) {
    if (state[root] == 2) continue;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [id, next_child] = stack.back();
      if (state[id] == 2) {
        stack.pop_back();
        continue;
      }
      state[id] = 1;
      if (next_child < nodes_[id].children.size()) {
        const Id child = nodes_[id].children[next_child++];
        if (state[child] != 2) stack.emplace_back(child, 0);
      } else {
        state[id] = 2;
        order.push_back(id);
        stack.pop_back();
      }
    }
  }
  return order;
}

std::string Graph::to_sexpr(Id id) const {
  const TNode& n = nodes_[id];
  switch (n.op) {
    case Op::kNum:
      return std::to_string(n.num);
    case Op::kStr:
      return n.str.str();
    case Op::kVar:
      return "?" + n.str.str();
    default: {
      std::string out = "(";
      out += op_info(n.op).name;
      for (Id c : n.children) {
        out.push_back(' ');
        out += to_sexpr(c);
      }
      out.push_back(')');
      return out;
    }
  }
}

std::string Graph::canonical_key() const {
  // Serialize reachable nodes with ids renumbered in first-visit DFS order
  // from the roots; two isomorphic rooted hash-consed DAGs produce identical
  // serializations because child traversal order is deterministic.
  std::unordered_map<Id, int> renumber;
  std::ostringstream os;
  std::vector<std::pair<Id, size_t>> stack;
  std::vector<std::string> lines;
  auto visit = [&](Id root) {
    std::vector<Id> dfs;
    dfs.push_back(root);
    while (!dfs.empty()) {
      Id id = dfs.back();
      dfs.pop_back();
      if (renumber.count(id)) continue;
      // Emit children first (postorder via two-phase push).
      bool ready = true;
      for (Id c : nodes_[id].children)
        if (!renumber.count(c)) ready = false;
      if (!ready) {
        dfs.push_back(id);
        for (auto it = nodes_[id].children.rbegin(); it != nodes_[id].children.rend(); ++it)
          if (!renumber.count(*it)) dfs.push_back(*it);
        continue;
      }
      const int new_id = static_cast<int>(renumber.size());
      renumber.emplace(id, new_id);
      const TNode& n = nodes_[id];
      std::string line = std::to_string(new_id);
      line += '=';
      line += op_info(n.op).name;
      if (n.op == Op::kNum) line += ":" + std::to_string(n.num);
      if (n.op == Op::kStr || n.op == Op::kVar) line += ":" + n.str.str();
      for (Id c : n.children) line += " " + std::to_string(renumber.at(c));
      lines.push_back(std::move(line));
    }
  };
  for (Id root : roots_) visit(root);
  for (const auto& line : lines) os << line << '\n';
  os << "roots:";
  for (Id root : roots_) os << ' ' << renumber.at(root);
  return os.str();
}

std::unordered_map<Op, int> Graph::op_histogram() const {
  std::unordered_map<Op, int> hist;
  for (Id id : topo_order()) ++hist[nodes_[id].op];
  return hist;
}

}  // namespace tensat
