// The tensor-graph operator set, following Table 2 of the paper
// "Equality Saturation for Tensor Graph Superoptimization" (MLSys 2021).
//
// Node types: tensor (T), integer (N), string (S), tensor tuple (TT).
// Integers encode operator parameters (stride, axis, padding and activation
// modes); strings encode variable-length parameters (shape, permutation,
// tensor identifiers). Both are themselves nodes (leaves) in the graph.
#pragma once

#include <cstdint>
#include <optional>
#include "support/span.h"
#include <string>
#include <string_view>
#include <vector>

namespace tensat {

enum class Op : uint8_t {
  kEwadd,      // element-wise addition             (T, T) -> T
  kEwmul,      // element-wise multiplication       (T, T) -> T
  kMatmul,     // matrix multiplication             (N, T, T) -> T  [activation, a, b]
  kConv,       // grouped convolution               (N, N, N, N, T, T) -> T
               //   [stride_h, stride_w, padding, activation, input, weight]
  kRelu,       // relu activation                   (T) -> T
  kTanh,       // tanh activation                   (T) -> T
  kSigmoid,    // sigmoid activation                (T) -> T
  kPoolmax,    // max pooling                       (T, N, N, N, N, N, N) -> T
               //   [input, kernel_h, kernel_w, stride_h, stride_w, padding, activation]
  kPoolavg,    // average pooling                   same signature as kPoolmax
  kTranspose,  // axis permutation                  (T, S) -> T
  kEnlarge,    // zero-pad a conv kernel to the spatial size of a reference kernel
               //                                   (T, T) -> T  [input, ref_input]
  kConcat2,    // concatenate along an axis         (N, T, T) -> T
  kConcat3,    //                                   (N, T, T, T) -> T
  kConcat4,    //                                   (N, T, T, T, T) -> T
  kConcat5,    //                                   (N, T, T, T, T, T) -> T
  kSplit,      // split a tensor in two at the most recent concat boundary
               //                                   (N, T) -> TT  [axis, input]
  kSplit0,     // first output of a split           (TT) -> T
  kSplit1,     // second output of a split          (TT) -> T
  kMerge,      // merge every `count` groups of a grouped-conv weight
               //                                   (T, N) -> T  [weight, count]
  kReshape,    // reshape to the shape encoded in the string child
               //                                   (T, S) -> T
  kInput,      // input tensor; identifier "name@d1_d2_..."   (S) -> T
  kWeight,     // weight tensor; identifier "name@d1_d2_..."  (S) -> T
  kNoop,       // combines graph outputs to make the graph single-rooted
               //                                   (T, T) -> T
  kNum,        // integer literal leaf (payload in TNode::num)
  kStr,        // string literal leaf (payload in TNode::str)
  kVar,        // pattern variable leaf (patterns only; payload in TNode::str)
  kOpCount,
};

/// Argument/value node types (paper Table 2's T / N / S / TT).
enum class ArgKind : uint8_t { kT, kN, kS, kTT };

/// Activation modes carried by kNum parameter nodes.
enum Activation : int64_t {
  kActNone = 0,
  kActRelu = 1,
  kActTanh = 2,
  kActSigmoid = 3,
};

/// Padding modes carried by kNum parameter nodes.
enum Padding : int64_t {
  kPadSame = 0,
  kPadValid = 1,
};

struct OpInfo {
  const char* name;             // S-expression head
  std::vector<ArgKind> sig;     // input node types, in order
  ArgKind out;                  // output node type
};

/// Metadata for `op` (name, signature). Total for every Op except the leaves'
/// signature entries, which are empty.
const OpInfo& op_info(Op op);

/// S-expression head -> Op, or nullopt for unknown names. Leaves (kNum, kStr,
/// kVar) have no head and are not returned here.
std::optional<Op> op_from_name(std::string_view name);

/// Number of children `op` expects.
int op_arity(Op op);

/// True for kNum / kStr / kVar.
bool op_is_leaf(Op op);

/// Splits "2_3_4" into {2,3,4}. Throws tensat::Error on malformed input.
std::vector<int32_t> parse_dims(std::string_view text);

/// Joins {2,3,4} into "2_3_4".
std::string format_dims(span<const int32_t> dims);

/// Splits a tensor identifier "name@d1_d2" into its name and dims.
std::pair<std::string, std::vector<int32_t>> parse_tensor_id(std::string_view id);

/// Builds a tensor identifier "name@d1_d2_...".
std::string format_tensor_id(std::string_view name, span<const int32_t> dims);

}  // namespace tensat
