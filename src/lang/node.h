// TNode: one operator node. The same struct serves three roles:
//   * a node in a concrete tensor computation graph (children = node ids),
//   * an e-node in the e-graph (children = e-class ids),
//   * a node in a rewrite pattern (kVar leaves allowed).
#pragma once

#include <cstdint>
#include <vector>

#include "lang/op.h"
#include "support/hash.h"
#include "support/symbol.h"

namespace tensat {

/// Index of a node within a Graph, or of an e-class within an EGraph.
using Id = int32_t;
inline constexpr Id kInvalidId = -1;

struct TNode {
  Op op{Op::kNum};
  int64_t num{0};            // payload when op == kNum
  Symbol str{};              // payload when op == kStr or kVar
  std::vector<Id> children{};

  friend bool operator==(const TNode& a, const TNode& b) {
    return a.op == b.op && a.num == b.num && a.str == b.str && a.children == b.children;
  }
};

struct TNodeHash {
  size_t operator()(const TNode& n) const {
    size_t seed = static_cast<size_t>(n.op);
    hash_combine_value(seed, n.num);
    hash_combine_value(seed, n.str.id());
    for (Id c : n.children) hash_combine_value(seed, c);
    return seed;
  }
};

inline TNode make_num(int64_t value) { return TNode{Op::kNum, value, Symbol(), {}}; }
inline TNode make_str(Symbol s) { return TNode{Op::kStr, 0, s, {}}; }
inline TNode make_var(Symbol name) { return TNode{Op::kVar, 0, name, {}}; }

}  // namespace tensat
