#include "lang/shapes.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace tensat {
namespace {

bool is_num(const ValueInfo& v) { return v.kind == VKind::kNum; }
bool is_str(const ValueInfo& v) { return v.kind == VKind::kStr; }
bool is_tensor(const ValueInfo& v) { return v.kind == VKind::kTensor; }

bool valid_activation(int64_t a) { return a >= kActNone && a <= kActSigmoid; }
bool valid_padding(int64_t p) { return p == kPadSame || p == kPadValid; }

/// Output spatial extent of a convolution/pooling window.
std::optional<int32_t> window_out(int32_t in, int32_t kernel, int32_t stride, int64_t pad) {
  if (kernel <= 0 || stride <= 0 || in <= 0) return std::nullopt;
  if (pad == kPadSame) return (in + stride - 1) / stride;
  if (in < kernel) return std::nullopt;
  return (in - kernel) / stride + 1;
}

std::optional<ValueInfo> infer_conv(const ValueInfo& sh, const ValueInfo& sw,
                                    const ValueInfo& pad, const ValueInfo& act,
                                    const ValueInfo& x, const ValueInfo& w) {
  if (!is_num(sh) || !is_num(sw) || !is_num(pad) || !is_num(act)) return std::nullopt;
  if (!is_tensor(x) || !is_tensor(w)) return std::nullopt;
  if (x.rank() != 4 || w.rank() != 4) return std::nullopt;
  if (!valid_padding(pad.num) || !valid_activation(act.num)) return std::nullopt;
  if (sh.num <= 0 || sw.num <= 0) return std::nullopt;
  const int32_t n = x.shape[0], c = x.shape[1], h = x.shape[2], width = x.shape[3];
  const int32_t cout = w.shape[0], cin_per_group = w.shape[1];
  const int32_t kh = w.shape[2], kw = w.shape[3];
  if (cin_per_group <= 0 || c % cin_per_group != 0) return std::nullopt;
  const int32_t groups = c / cin_per_group;
  if (groups <= 0 || cout % groups != 0) return std::nullopt;
  const auto oh = window_out(h, kh, static_cast<int32_t>(sh.num), pad.num);
  const auto ow = window_out(width, kw, static_cast<int32_t>(sw.num), pad.num);
  if (!oh || !ow) return std::nullopt;
  ValueInfo out = ValueInfo::of_tensor({n, cout, *oh, *ow}, x.weight_only && w.weight_only);
  // Concat boundaries propagate through the convolution: a concat over the
  // input's batch axis splits the output batch, and a concat over the
  // weight's output-channel axis splits the output channels. This is what
  // lets `split 1` recover the two conv results from a merged conv
  // (paper Fig. 9) — TASO tracks the same "split locations".
  for (const ConcatEntry& e : x.hist)
    if (e.axis == 0) out.hist.push_back(ConcatEntry{0, e.pos});
  for (const ConcatEntry& e : w.hist)
    if (e.axis == 0) out.hist.push_back(ConcatEntry{1, e.pos});
  return out;
}

std::optional<ValueInfo> infer_pool(span<const ValueInfo> in) {
  const ValueInfo& x = in[0];
  if (!is_tensor(x) || x.rank() != 4) return std::nullopt;
  for (int i = 1; i <= 6; ++i)
    if (!is_num(in[i])) return std::nullopt;
  const int64_t kh = in[1].num, kw = in[2].num, sh = in[3].num, sw = in[4].num;
  const int64_t pad = in[5].num, act = in[6].num;
  if (!valid_padding(pad) || !valid_activation(act)) return std::nullopt;
  const auto oh = window_out(x.shape[2], static_cast<int32_t>(kh), static_cast<int32_t>(sh), pad);
  const auto ow = window_out(x.shape[3], static_cast<int32_t>(kw), static_cast<int32_t>(sw), pad);
  if (!oh || !ow) return std::nullopt;
  return ValueInfo::of_tensor({x.shape[0], x.shape[1], *oh, *ow}, x.weight_only);
}

std::optional<ValueInfo> infer_matmul(const ValueInfo& act, const ValueInfo& a,
                                      const ValueInfo& b) {
  if (!is_num(act) || !valid_activation(act.num)) return std::nullopt;
  if (!is_tensor(a) || !is_tensor(b)) return std::nullopt;
  const int ra = a.rank(), rb = b.rank();
  if (ra < 2 || ra > 3 || rb < 2 || rb > 3) return std::nullopt;
  const int32_t m = a.shape[ra - 2], k = a.shape[ra - 1];
  const int32_t k2 = b.shape[rb - 2], n = b.shape[rb - 1];
  if (k != k2) return std::nullopt;
  std::vector<int32_t> dims;
  if (ra == 3 && rb == 3) {
    if (a.shape[0] != b.shape[0]) return std::nullopt;
    dims = {a.shape[0], m, n};
  } else if (ra == 3) {
    dims = {a.shape[0], m, n};  // broadcast b over the batch
  } else if (rb == 3) {
    dims = {b.shape[0], m, n};  // broadcast a over the batch
  } else {
    dims = {m, n};
  }
  ValueInfo out = ValueInfo::of_tensor(std::move(dims), a.weight_only && b.weight_only);
  // Concat boundaries propagate through matmul (see infer_conv): a concat on
  // a's row axis splits the output rows; a concat on b's column axis splits
  // the output columns (paper Fig. 2: split 1 after matmul-of-concat).
  const int rout = out.rank();
  for (const ConcatEntry& e : a.hist)
    if (e.axis == ra - 2) out.hist.push_back(ConcatEntry{rout - 2, e.pos});
  for (const ConcatEntry& e : b.hist)
    if (e.axis == rb - 1) out.hist.push_back(ConcatEntry{rout - 1, e.pos});
  return out;
}

std::optional<ValueInfo> infer_concat(span<const ValueInfo> in) {
  if (!is_num(in[0])) return std::nullopt;
  const int64_t axis = in[0].num;
  const auto tensors = in.subspan(1);
  if (!is_tensor(tensors[0])) return std::nullopt;
  const int rank = tensors[0].rank();
  if (axis < 0 || axis >= rank) return std::nullopt;
  bool weight_only = true;
  int32_t total = 0;
  for (const ValueInfo& t : tensors) {
    if (!is_tensor(t) || t.rank() != rank) return std::nullopt;
    for (int d = 0; d < rank; ++d)
      if (d != axis && t.shape[d] != tensors[0].shape[d]) return std::nullopt;
    total += t.shape[axis];
    weight_only = weight_only && t.weight_only;
  }
  ValueInfo out = ValueInfo::of_tensor(std::vector<int32_t>(tensors[0].shape), weight_only);
  out.shape[axis] = total;
  if (tensors.size() == 2) {
    // Binary concat records a split boundary: history prefix comes from the
    // first operand (see header comment).
    out.hist = tensors[0].hist;
    out.hist.push_back(ConcatEntry{static_cast<int32_t>(axis), tensors[0].shape[axis]});
  }
  return out;
}

std::optional<ValueInfo> infer_split(const ValueInfo& axis, const ValueInfo& t) {
  if (!is_num(axis) || !is_tensor(t)) return std::nullopt;
  if (axis.num < 0 || axis.num >= t.rank()) return std::nullopt;
  // Find the most recent concat entry along this axis.
  for (int i = static_cast<int>(t.hist.size()) - 1; i >= 0; --i) {
    if (t.hist[i].axis != axis.num) continue;
    const int32_t pos = t.hist[i].pos;
    if (pos <= 0 || pos >= t.shape[axis.num]) return std::nullopt;
    ValueInfo out;
    out.kind = VKind::kTuple;
    out.shape = t.shape;
    out.shape2 = t.shape;
    out.shape[axis.num] = pos;
    out.shape2[axis.num] = t.shape[axis.num] - pos;
    out.hist.assign(t.hist.begin(), t.hist.begin() + i);
    out.weight_only = t.weight_only;
    return out;
  }
  return std::nullopt;  // no concat boundary known for this axis
}

}  // namespace

int64_t ValueInfo::volume() const {
  int64_t v = 1;
  for (int32_t d : shape) v *= d;
  return v;
}

ValueInfo ValueInfo::of_num(int64_t v) {
  ValueInfo out;
  out.kind = VKind::kNum;
  out.num = v;
  return out;
}

ValueInfo ValueInfo::of_str(Symbol s) {
  ValueInfo out;
  out.kind = VKind::kStr;
  out.str = s;
  return out;
}

ValueInfo ValueInfo::of_tensor(std::vector<int32_t> dims, bool weight_only) {
  ValueInfo out;
  out.kind = VKind::kTensor;
  out.shape = std::move(dims);
  out.weight_only = weight_only;
  return out;
}

std::optional<ValueInfo> infer(const TNode& node, span<const ValueInfo> in) {
  switch (node.op) {
    case Op::kNum:
      return ValueInfo::of_num(node.num);
    case Op::kStr:
      return ValueInfo::of_str(node.str);
    case Op::kVar:
      return std::nullopt;

    case Op::kInput:
    case Op::kWeight: {
      if (!is_str(in[0])) return std::nullopt;
      auto [name, dims] = parse_tensor_id(in[0].str.str());
      if (dims.empty()) return std::nullopt;
      for (int32_t d : dims)
        if (d <= 0) return std::nullopt;
      return ValueInfo::of_tensor(std::move(dims), node.op == Op::kWeight);
    }

    case Op::kEwadd:
    case Op::kEwmul: {
      const ValueInfo& a = in[0];
      const ValueInfo& b = in[1];
      if (!is_tensor(a) || !is_tensor(b) || a.shape != b.shape) return std::nullopt;
      ValueInfo out = ValueInfo::of_tensor(std::vector<int32_t>(a.shape),
                                           a.weight_only && b.weight_only);
      if (a.hist == b.hist) out.hist = a.hist;
      return out;
    }

    case Op::kMatmul:
      return infer_matmul(in[0], in[1], in[2]);
    case Op::kConv:
      return infer_conv(in[0], in[1], in[2], in[3], in[4], in[5]);

    case Op::kRelu:
    case Op::kTanh:
    case Op::kSigmoid: {
      if (!is_tensor(in[0])) return std::nullopt;
      ValueInfo out = in[0];  // shape, hist, and weight-constness all carry over
      return out;
    }

    case Op::kPoolmax:
    case Op::kPoolavg:
      return infer_pool(in);

    case Op::kTranspose: {
      if (!is_tensor(in[0]) || !is_str(in[1])) return std::nullopt;
      const auto perm = parse_dims(in[1].str.str());
      const int rank = in[0].rank();
      if (static_cast<int>(perm.size()) != rank) return std::nullopt;
      std::vector<bool> seen(rank, false);
      std::vector<int32_t> dims(rank);
      for (int d = 0; d < rank; ++d) {
        if (perm[d] < 0 || perm[d] >= rank || seen[perm[d]]) return std::nullopt;
        seen[perm[d]] = true;
        dims[d] = in[0].shape[perm[d]];
      }
      return ValueInfo::of_tensor(std::move(dims), in[0].weight_only);
    }

    case Op::kEnlarge: {
      const ValueInfo& x = in[0];
      const ValueInfo& ref = in[1];
      if (!is_tensor(x) || !is_tensor(ref) || x.rank() != 4 || ref.rank() != 4)
        return std::nullopt;
      if (ref.shape[2] < x.shape[2] || ref.shape[3] < x.shape[3]) return std::nullopt;
      // Zero-padding is centered; require matching parity so the pad splits evenly.
      if ((ref.shape[2] - x.shape[2]) % 2 != 0 || (ref.shape[3] - x.shape[3]) % 2 != 0)
        return std::nullopt;
      return ValueInfo::of_tensor({x.shape[0], x.shape[1], ref.shape[2], ref.shape[3]},
                                  x.weight_only);
    }

    case Op::kConcat2:
    case Op::kConcat3:
    case Op::kConcat4:
    case Op::kConcat5:
      return infer_concat(in);

    case Op::kSplit:
      return infer_split(in[0], in[1]);

    case Op::kSplit0:
    case Op::kSplit1: {
      if (in[0].kind != VKind::kTuple) return std::nullopt;
      ValueInfo out = ValueInfo::of_tensor(
          std::vector<int32_t>(node.op == Op::kSplit0 ? in[0].shape : in[0].shape2),
          in[0].weight_only);
      out.hist = in[0].hist;
      return out;
    }

    case Op::kMerge: {
      const ValueInfo& w = in[0];
      if (!is_tensor(w) || w.rank() != 4 || !is_num(in[1])) return std::nullopt;
      const int64_t count = in[1].num;
      if (count < 1 || w.shape[0] % count != 0) return std::nullopt;
      return ValueInfo::of_tensor(
          {w.shape[0], static_cast<int32_t>(w.shape[1] * count), w.shape[2], w.shape[3]},
          w.weight_only);
    }

    case Op::kReshape: {
      if (!is_tensor(in[0]) || !is_str(in[1])) return std::nullopt;
      auto dims = parse_dims(in[1].str.str());
      int64_t vol = 1;
      for (int32_t d : dims) {
        if (d <= 0) return std::nullopt;
        vol *= d;
      }
      if (vol != in[0].volume()) return std::nullopt;
      return ValueInfo::of_tensor(std::move(dims), in[0].weight_only);
    }

    case Op::kNoop: {
      if (in[0].kind == VKind::kInvalid || in[1].kind == VKind::kInvalid)
        return std::nullopt;
      ValueInfo out;
      out.kind = VKind::kTensor;  // sentinel: empty shape, zero cost
      out.weight_only = false;
      return out;
    }

    case Op::kOpCount:
      break;
  }
  TENSAT_FAIL("infer: unhandled op");
}

std::string to_string(const ValueInfo& v) {
  std::ostringstream os;
  switch (v.kind) {
    case VKind::kInvalid:
      return "<invalid>";
    case VKind::kNum:
      os << "num(" << v.num << ")";
      return os.str();
    case VKind::kStr:
      os << "str(" << v.str.str() << ")";
      return os.str();
    case VKind::kTensor:
      os << "tensor[" << format_dims(v.shape) << "]";
      if (v.weight_only) os << " const";
      return os.str();
    case VKind::kTuple:
      os << "tuple[" << format_dims(v.shape) << " | " << format_dims(v.shape2) << "]";
      return os.str();
  }
  return "<?>";
}

}  // namespace tensat
