#include "lang/op.h"

#include <array>
#include <charconv>
#include <unordered_map>

#include "support/check.h"

namespace tensat {
namespace {

using A = ArgKind;

std::array<OpInfo, static_cast<size_t>(Op::kOpCount)> build_table() {
  std::array<OpInfo, static_cast<size_t>(Op::kOpCount)> t{};
  auto set = [&](Op op, const char* name, std::vector<ArgKind> sig, ArgKind out) {
    t[static_cast<size_t>(op)] = OpInfo{name, std::move(sig), out};
  };
  set(Op::kEwadd, "ewadd", {A::kT, A::kT}, A::kT);
  set(Op::kEwmul, "ewmul", {A::kT, A::kT}, A::kT);
  set(Op::kMatmul, "matmul", {A::kN, A::kT, A::kT}, A::kT);
  set(Op::kConv, "conv", {A::kN, A::kN, A::kN, A::kN, A::kT, A::kT}, A::kT);
  set(Op::kRelu, "relu", {A::kT}, A::kT);
  set(Op::kTanh, "tanh", {A::kT}, A::kT);
  set(Op::kSigmoid, "sigmoid", {A::kT}, A::kT);
  set(Op::kPoolmax, "poolmax", {A::kT, A::kN, A::kN, A::kN, A::kN, A::kN, A::kN}, A::kT);
  set(Op::kPoolavg, "poolavg", {A::kT, A::kN, A::kN, A::kN, A::kN, A::kN, A::kN}, A::kT);
  set(Op::kTranspose, "transpose", {A::kT, A::kS}, A::kT);
  set(Op::kEnlarge, "enlarge", {A::kT, A::kT}, A::kT);
  set(Op::kConcat2, "concat2", {A::kN, A::kT, A::kT}, A::kT);
  set(Op::kConcat3, "concat3", {A::kN, A::kT, A::kT, A::kT}, A::kT);
  set(Op::kConcat4, "concat4", {A::kN, A::kT, A::kT, A::kT, A::kT}, A::kT);
  set(Op::kConcat5, "concat5", {A::kN, A::kT, A::kT, A::kT, A::kT, A::kT}, A::kT);
  set(Op::kSplit, "split", {A::kN, A::kT}, A::kTT);
  set(Op::kSplit0, "split0", {A::kTT}, A::kT);
  set(Op::kSplit1, "split1", {A::kTT}, A::kT);
  set(Op::kMerge, "merge", {A::kT, A::kN}, A::kT);
  set(Op::kReshape, "reshape", {A::kT, A::kS}, A::kT);
  set(Op::kInput, "input", {A::kS}, A::kT);
  set(Op::kWeight, "weight", {A::kS}, A::kT);
  set(Op::kNoop, "noop", {A::kT, A::kT}, A::kT);
  set(Op::kNum, "num", {}, A::kN);
  set(Op::kStr, "str", {}, A::kS);
  set(Op::kVar, "var", {}, A::kT);
  return t;
}

const std::array<OpInfo, static_cast<size_t>(Op::kOpCount)>& table() {
  static const auto* t = new std::array<OpInfo, static_cast<size_t>(Op::kOpCount)>(build_table());
  return *t;
}

const std::unordered_map<std::string_view, Op>& name_map() {
  static const auto* m = [] {
    auto* map = new std::unordered_map<std::string_view, Op>();
    for (size_t i = 0; i < static_cast<size_t>(Op::kOpCount); ++i) {
      const Op op = static_cast<Op>(i);
      if (!op_is_leaf(op)) map->emplace(table()[i].name, op);
    }
    return map;
  }();
  return *m;
}

}  // namespace

const OpInfo& op_info(Op op) { return table()[static_cast<size_t>(op)]; }

std::optional<Op> op_from_name(std::string_view name) {
  auto it = name_map().find(name);
  if (it == name_map().end()) return std::nullopt;
  return it->second;
}

int op_arity(Op op) { return static_cast<int>(op_info(op).sig.size()); }

bool op_is_leaf(Op op) {
  return op == Op::kNum || op == Op::kStr || op == Op::kVar;
}

std::vector<int32_t> parse_dims(std::string_view text) {
  std::vector<int32_t> dims;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('_', pos);
    if (end == std::string_view::npos) end = text.size();
    int32_t value = 0;
    const auto piece = text.substr(pos, end - pos);
    auto [ptr, ec] = std::from_chars(piece.data(), piece.data() + piece.size(), value);
    TENSAT_CHECK(ec == std::errc() && ptr == piece.data() + piece.size(),
                 "malformed dimension list: '" << text << "'");
    dims.push_back(value);
    pos = end + 1;
  }
  return dims;
}

std::string format_dims(span<const int32_t> dims) {
  std::string out;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out.push_back('_');
    out += std::to_string(dims[i]);
  }
  return out;
}

std::pair<std::string, std::vector<int32_t>> parse_tensor_id(std::string_view id) {
  const size_t at = id.find('@');
  TENSAT_CHECK(at != std::string_view::npos, "tensor identifier missing '@': '" << id << "'");
  return {std::string(id.substr(0, at)), parse_dims(id.substr(at + 1))};
}

std::string format_tensor_id(std::string_view name, span<const int32_t> dims) {
  std::string out(name);
  out.push_back('@');
  out += format_dims(dims);
  return out;
}

}  // namespace tensat
