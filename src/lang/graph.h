// Graph: a hash-consed tensor computation DAG (also used for rewrite
// patterns). Nodes are immutable once added; structurally identical nodes
// are deduplicated, so shared subgraphs are represented once — which is what
// makes the "sum of node costs" model account for sharing, both here and in
// the TASO-baseline search.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/node.h"
#include "lang/shapes.h"

namespace tensat {

enum class GraphKind {
  kConcrete,  // every add() is shape-checked; kVar is rejected
  kPattern,   // kVar leaves allowed; no shape inference
};

class Graph {
 public:
  explicit Graph(GraphKind kind = GraphKind::kConcrete) : kind_(kind) {}

  [[nodiscard]] GraphKind kind() const { return kind_; }

  /// Adds a node (children must already exist). Returns the id of the
  /// existing identical node if there is one. For concrete graphs, throws
  /// tensat::Error if shape inference rejects the node.
  Id add(TNode node);

  /// Like add(), but returns nullopt instead of throwing when shape
  /// inference rejects the node. Used when applying rewrites to concrete
  /// graphs, where a shape-check failure just means "substitution does not
  /// apply here".
  std::optional<Id> try_add(TNode node);

  // ---- Leaf constructors -------------------------------------------------
  Id num(int64_t value) { return add(make_num(value)); }
  Id str(std::string_view text) { return add(make_str(Symbol(text))); }
  Id var(std::string_view name) { return add(make_var(Symbol(name))); }
  Id input(std::string_view name, const std::vector<int32_t>& dims);
  Id weight(std::string_view name, const std::vector<int32_t>& dims);

  // ---- Operator constructors (children given in Table 2 order) -----------
  Id ewadd(Id a, Id b) { return add({Op::kEwadd, 0, {}, {a, b}}); }
  Id ewmul(Id a, Id b) { return add({Op::kEwmul, 0, {}, {a, b}}); }
  Id matmul(Id a, Id b, Activation act = kActNone) {
    return add({Op::kMatmul, 0, {}, {num(act), a, b}});
  }
  Id conv(Id x, Id w, int32_t stride_h, int32_t stride_w, Padding pad = kPadSame,
          Activation act = kActNone) {
    return add({Op::kConv, 0, {},
                {num(stride_h), num(stride_w), num(pad), num(act), x, w}});
  }
  Id relu(Id x) { return add({Op::kRelu, 0, {}, {x}}); }
  Id tanh(Id x) { return add({Op::kTanh, 0, {}, {x}}); }
  Id sigmoid(Id x) { return add({Op::kSigmoid, 0, {}, {x}}); }
  Id poolmax(Id x, int32_t kh, int32_t kw, int32_t sh, int32_t sw,
             Padding pad = kPadValid, Activation act = kActNone) {
    return add({Op::kPoolmax, 0, {},
                {x, num(kh), num(kw), num(sh), num(sw), num(pad), num(act)}});
  }
  Id poolavg(Id x, int32_t kh, int32_t kw, int32_t sh, int32_t sw,
             Padding pad = kPadValid, Activation act = kActNone) {
    return add({Op::kPoolavg, 0, {},
                {x, num(kh), num(kw), num(sh), num(sw), num(pad), num(act)}});
  }
  Id transpose(Id x, const std::vector<int32_t>& perm) {
    return add({Op::kTranspose, 0, {}, {x, str(format_dims(perm))}});
  }
  Id enlarge(Id x, Id ref) { return add({Op::kEnlarge, 0, {}, {x, ref}}); }
  /// Concatenates 2..5 tensors; dispatches to kConcat2..kConcat5.
  Id concat(int32_t axis, const std::vector<Id>& inputs);
  Id split(int32_t axis, Id x) { return add({Op::kSplit, 0, {}, {num(axis), x}}); }
  Id split0(Id t) { return add({Op::kSplit0, 0, {}, {t}}); }
  Id split1(Id t) { return add({Op::kSplit1, 0, {}, {t}}); }
  Id merge(Id w, int32_t count) { return add({Op::kMerge, 0, {}, {w, num(count)}}); }
  Id reshape(Id x, const std::vector<int32_t>& dims) {
    return add({Op::kReshape, 0, {}, {x, str(format_dims(dims))}});
  }
  Id noop(Id a, Id b) { return add({Op::kNoop, 0, {}, {a, b}}); }

  // ---- Roots (graph outputs) ----------------------------------------------
  void add_root(Id id);
  void set_roots(std::vector<Id> roots) { roots_ = std::move(roots); }
  [[nodiscard]] const std::vector<Id>& roots() const { return roots_; }
  /// Combines all roots into a single root with a chain of noop nodes (the
  /// paper's single-rooting step) and returns it. Idempotent for one root.
  Id single_root();

  // ---- Access --------------------------------------------------------------
  [[nodiscard]] const TNode& node(Id id) const { return nodes_[id]; }
  [[nodiscard]] size_t size() const { return nodes_.size(); }
  /// ValueInfo for a node of a concrete graph (kInvalid for pattern graphs).
  [[nodiscard]] const ValueInfo& info(Id id) const { return infos_[id]; }

  /// Ids reachable from the roots, in topological order (children first).
  [[nodiscard]] std::vector<Id> topo_order() const;
  /// Number of nodes reachable from the roots.
  [[nodiscard]] size_t reachable_size() const { return topo_order().size(); }

  /// S-expression of the subgraph rooted at `id` (shared nodes re-expanded).
  [[nodiscard]] std::string to_sexpr(Id id) const;

  /// A canonical serialization of the reachable graph: equal strings iff the
  /// rooted DAGs are isomorphic. Used by the TASO search's visited set.
  [[nodiscard]] std::string canonical_key() const;

  /// Counts reachable nodes per operator (diagnostics / tests).
  [[nodiscard]] std::unordered_map<Op, int> op_histogram() const;

 private:
  GraphKind kind_;
  // Deques: node() and info() hand out references that must survive later
  // add() calls (appends never invalidate deque references).
  std::deque<TNode> nodes_;
  std::deque<ValueInfo> infos_;
  std::unordered_map<TNode, Id, TNodeHash> memo_;
  std::vector<Id> roots_;
};

}  // namespace tensat
