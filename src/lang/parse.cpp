#include "lang/parse.h"

#include <cctype>
#include <charconv>

#include "support/check.h"

namespace tensat {
namespace {

struct Parser {
  Graph& g;
  std::string_view text;
  size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  std::string_view token() {
    skip_ws();
    TENSAT_CHECK(pos < text.size(), "unexpected end of input");
    const size_t start = pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')') break;
      ++pos;
    }
    TENSAT_CHECK(pos > start, "empty token at offset " << start);
    return text.substr(start, pos - start);
  }

  Id parse_expr() {
    skip_ws();
    TENSAT_CHECK(pos < text.size(), "unexpected end of input");
    if (text[pos] != '(') return parse_atom();
    ++pos;  // consume '('
    const std::string_view head = token();
    const auto op = op_from_name(head);
    TENSAT_CHECK(op.has_value(), "unknown operator '" << head << "'");
    TNode node{*op, 0, {}, {}};
    while (true) {
      skip_ws();
      TENSAT_CHECK(pos < text.size(), "missing ')' for (" << head);
      if (text[pos] == ')') {
        ++pos;
        break;
      }
      node.children.push_back(parse_expr());
    }
    return g.add(std::move(node));
  }

  Id parse_atom() {
    const std::string_view tok = token();
    if (tok[0] == '?') {
      TENSAT_CHECK(tok.size() > 1, "empty variable name");
      return g.var(tok.substr(1));
    }
    int64_t value = 0;
    auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
    if (ec == std::errc() && ptr == tok.data() + tok.size()) return g.num(value);
    return g.str(tok);
  }
};

}  // namespace

Id parse_into(Graph& g, std::string_view text) {
  Parser p{g, text};
  const Id id = p.parse_expr();
  TENSAT_CHECK(p.at_end(), "trailing input after expression");
  return id;
}

std::vector<Id> parse_all_into(Graph& g, std::string_view text) {
  Parser p{g, text};
  std::vector<Id> roots;
  while (!p.at_end()) roots.push_back(p.parse_expr());
  TENSAT_CHECK(!roots.empty(), "no expressions in input");
  return roots;
}

}  // namespace tensat
