// S-expression parser for patterns and small graphs (paper §3.2).
//
// Grammar:   expr  := atom | '(' head expr* ')'
//            atom  := integer        -> kNum leaf
//                   | '?'name        -> kVar leaf (pattern graphs only)
//                   | text           -> kStr leaf
//            head  := an operator name from Table 2 (e.g. "matmul")
//
// Example:   (split0 (split 1 (matmul 0 ?a (concat2 1 ?b ?c))))
#pragma once

#include <string_view>
#include <vector>

#include "lang/graph.h"

namespace tensat {

/// Parses one expression into `g` and returns its root id. Throws
/// tensat::Error on malformed input.
Id parse_into(Graph& g, std::string_view text);

/// Parses a whitespace-separated sequence of expressions (a multi-output
/// pattern) into `g`, returning the root of each, in order.
std::vector<Id> parse_all_into(Graph& g, std::string_view text);

}  // namespace tensat
