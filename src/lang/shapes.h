// Shape inference / value analysis for the tensor language.
//
// A ValueInfo describes what a node computes: a tensor (with shape), an
// integer or string parameter, or a tensor tuple (the result of split).
// This single implementation backs:
//   * e-class analysis in the e-graph (the paper's "shape checking", §4),
//   * validation when constructing concrete graphs,
//   * the cost model (which needs operand shapes), and
//   * the reference interpreter (which mirrors the same split semantics).
//
// Split semantics: following TASO/TENSAT, `split(axis, t)` splits `t` at the
// boundary of the most recent concat along `axis`. We track a stack of
// (axis, boundary) entries per tensor value; a binary concat pushes an entry
// and split consumes the most recent entry for its axis. Both halves of a
// split inherit the history prefix that preceded the consumed entry.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/span.h"

#include "lang/node.h"

namespace tensat {

enum class VKind : uint8_t { kInvalid, kTensor, kNum, kStr, kTuple };

/// One concat boundary: concat along `axis` whose first operand ended at
/// `pos` (so the second operand spans [pos, end)).
struct ConcatEntry {
  int32_t axis{0};
  int32_t pos{0};
  friend bool operator==(const ConcatEntry& a, const ConcatEntry& b) {
    return a.axis == b.axis && a.pos == b.pos;
  }
  friend bool operator!=(const ConcatEntry& a, const ConcatEntry& b) { return !(a == b); }
};

struct ValueInfo {
  VKind kind{VKind::kInvalid};
  std::vector<int32_t> shape;        // kTensor: dims; kTuple: dims of first half
  std::vector<int32_t> shape2;       // kTuple: dims of second half
  std::vector<ConcatEntry> hist;     // concat-boundary stack (kTensor / kTuple prefix)
  int64_t num{0};                    // kNum payload
  Symbol str{};                      // kStr payload
  bool weight_only{false};           // value derivable from weights alone
                                     // (precomputable at inference time)

  friend bool operator==(const ValueInfo& a, const ValueInfo& b) {
    return a.kind == b.kind && a.shape == b.shape && a.shape2 == b.shape2 &&
           a.hist == b.hist && a.num == b.num && a.str == b.str &&
           a.weight_only == b.weight_only;
  }
  friend bool operator!=(const ValueInfo& a, const ValueInfo& b) { return !(a == b); }

  [[nodiscard]] bool is_tensor() const { return kind == VKind::kTensor; }
  [[nodiscard]] int rank() const { return static_cast<int>(shape.size()); }
  /// Number of elements (kTensor). 1 for rank-0.
  [[nodiscard]] int64_t volume() const;

  static ValueInfo of_num(int64_t v);
  static ValueInfo of_str(Symbol s);
  static ValueInfo of_tensor(std::vector<int32_t> dims, bool weight_only = false);
};

/// Infers the output ValueInfo for `node` given its children's infos (in
/// child order). Returns nullopt when the operator's shape preconditions do
/// not hold — this is exactly the paper's shape check that gates rewrite
/// application. kVar nodes always return nullopt.
std::optional<ValueInfo> infer(const TNode& node, span<const ValueInfo> inputs);

/// Human-readable rendering, for diagnostics and test failure messages.
std::string to_string(const ValueInfo& v);

}  // namespace tensat
