#include "extract/extract.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "support/check.h"
#include "support/timer.h"

namespace tensat {
namespace {

constexpr double kHuge = std::numeric_limits<double>::infinity();

/// Classes reachable from `root` through unfiltered e-nodes. Canonical ids
/// are dense in [0, num_ids()), so the seen-set is a flat byte array instead
/// of a hash map (this walk fronts every extraction).
std::vector<Id> reachable_classes(const EGraph& eg, Id root) {
  std::vector<Id> order;
  std::vector<Id> stack{eg.find(root)};
  std::vector<char> seen(eg.num_ids(), 0);
  while (!stack.empty()) {
    const Id cls = stack.back();
    stack.pop_back();
    if (seen[cls]) continue;
    seen[cls] = 1;
    order.push_back(cls);
    for (const EClassNode& e : eg.eclass(cls).nodes) {
      if (e.filtered) continue;
      for (Id c : e.node.children) {
        const Id canon = eg.find(c);
        if (!seen[canon]) stack.push_back(canon);
      }
    }
  }
  return order;
}

/// The greedy per-class choice: cheapest best-subtree e-node per class
/// (fixpoint; sharing ignored). Classes with no finite option are absent.
///
/// Worklist formulation: a class is re-evaluated only when one of its child
/// classes improves, found through a parents index — the old full-resweep
/// fixpoint re-scanned every e-node of every class per round. Per-node costs
/// and canonical child slots are cached once up front, so each re-evaluation
/// is a flat array scan. Choice ties resolve to the first e-node in class
/// order attaining the minimum, which is also what the resweep converged to.
std::unordered_map<Id, TNode> greedy_selection(const EGraph& eg, const CostModel& model,
                                               const std::vector<Id>& classes) {
  const size_t n = classes.size();
  std::vector<int32_t> slot(eg.num_ids(), -1);
  for (size_t s = 0; s < n; ++s) slot[classes[s]] = static_cast<int32_t>(s);

  // Flattened per-class options: cost + child slots, cached once.
  struct Option {
    const TNode* node;
    double cost;
    uint32_t children_first, children_count;  // into child_slots
  };
  std::vector<Option> options;
  std::vector<uint32_t> child_slots;
  std::vector<std::pair<uint32_t, uint32_t>> class_options(n);  // (first, count)
  std::vector<std::vector<uint32_t>> parents(n);
  for (size_t s = 0; s < n; ++s) {
    class_options[s].first = static_cast<uint32_t>(options.size());
    for (const EClassNode& e : eg.eclass(classes[s]).nodes) {
      if (e.filtered) continue;
      Option o;
      o.node = &e.node;
      o.cost = enode_cost(eg, classes[s], e.node, model);
      o.children_first = static_cast<uint32_t>(child_slots.size());
      for (Id c : e.node.children) {
        const uint32_t cs = static_cast<uint32_t>(slot[eg.find(c)]);
        child_slots.push_back(cs);
        parents[cs].push_back(static_cast<uint32_t>(s));
      }
      o.children_count = static_cast<uint32_t>(child_slots.size()) - o.children_first;
      options.push_back(o);
    }
    class_options[s].second =
        static_cast<uint32_t>(options.size()) - class_options[s].first;
  }
  for (std::vector<uint32_t>& p : parents) {
    std::sort(p.begin(), p.end());
    p.erase(std::unique(p.begin(), p.end()), p.end());
  }

  std::vector<double> best(n, kHuge);
  std::vector<const TNode*> choice(n, nullptr);
  std::vector<char> queued(n, 1);
  // Seed deepest-first: reachable_classes is a root-first DFS and the
  // worklist pops from the back, so pushing in slot order evaluates deep
  // classes before their parents and most classes settle on their first
  // evaluation.
  std::vector<uint32_t> work(n);
  for (size_t s = 0; s < n; ++s) work[s] = static_cast<uint32_t>(s);
  while (!work.empty()) {
    const uint32_t s = work.back();
    work.pop_back();
    queued[s] = 0;
    double new_best = kHuge;
    const TNode* new_choice = nullptr;
    const auto [first, count] = class_options[s];
    for (uint32_t k = first; k < first + count; ++k) {
      const Option& o = options[k];
      double total = o.cost;
      for (uint32_t j = o.children_first; j < o.children_first + o.children_count;
           ++j) {
        const double child_cost = best[child_slots[j]];
        if (child_cost == kHuge) {
          total = kHuge;
          break;
        }
        total += child_cost;
      }
      if (total < new_best - 1e-12) {
        new_best = total;
        new_choice = o.node;
      }
    }
    if (new_best < best[s] - 1e-12) {
      best[s] = new_best;
      choice[s] = new_choice;
      for (uint32_t p : parents[s]) {
        if (!queued[p]) {
          queued[p] = 1;
          work.push_back(p);
        }
      }
    }
  }

  std::unordered_map<Id, TNode> result;
  for (size_t s = 0; s < n; ++s)
    if (choice[s] != nullptr) result.emplace(classes[s], *choice[s]);
  return result;
}

}  // namespace

std::optional<Graph> build_selected_graph(
    const EGraph& eg, Id root, const std::unordered_map<Id, TNode>& selection) {
  Graph out;
  // Canonical ids are dense in [0, num_ids()): flat arrays replace the old
  // hash-map seen-sets (built: class -> node id in `out`; on_stack guards
  // against cyclic selections).
  std::vector<Id> built(eg.num_ids(), kInvalidId);
  std::vector<char> on_stack(eg.num_ids(), 0);

  // Explicit-stack DFS so deep graphs don't overflow the call stack.
  struct Frame {
    Id cls;
    size_t next_child{0};
  };
  std::vector<Frame> stack{{eg.find(root)}};
  on_stack[eg.find(root)] = 1;
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto sel = selection.find(f.cls);
    if (sel == selection.end()) return std::nullopt;  // incomplete selection
    const TNode& node = sel->second;
    if (f.next_child < node.children.size()) {
      const Id child = eg.find(node.children[f.next_child++]);
      if (built[child] != kInvalidId) continue;
      if (on_stack[child]) return std::nullopt;  // cyclic selection
      on_stack[child] = 1;
      stack.push_back(Frame{child});
      continue;
    }
    TNode concrete{node.op, node.num, node.str, {}};
    concrete.children.reserve(node.children.size());
    for (Id c : node.children) concrete.children.push_back(built[eg.find(c)]);
    // try_add: the chosen member can (rarely) fail the concrete shape check
    // when the class-level analysis was a join over disagreeing members;
    // treat it like a cyclic selection and let the caller fall back.
    auto added = out.try_add(std::move(concrete));
    if (!added.has_value()) return std::nullopt;
    built[f.cls] = *added;
    on_stack[f.cls] = 0;
    stack.pop_back();
  }
  out.add_root(built[eg.find(root)]);
  return out;
}

ExtractionResult extract_greedy(const EGraph& eg, const CostModel& model) {
  ExtractionResult result;
  const Id root = eg.root();
  const std::vector<Id> classes = reachable_classes(eg, root);
  const auto choice = greedy_selection(eg, model, classes);
  if (!choice.count(root)) return result;  // no finite extraction

  auto graph = build_selected_graph(eg, root, choice);
  if (!graph.has_value()) return result;
  result.graph = std::move(*graph);
  result.graph.single_root();
  result.cost = graph_cost(result.graph, model);
  result.ok = true;
  return result;
}

IlpExtractionResult extract_ilp(const EGraph& eg, const CostModel& model,
                                const IlpExtractOptions& options) {
  IlpExtractionResult result;
  Timer timer;
  Timer phase_timer;
  const Id root = eg.root();
  const std::vector<Id> classes = reachable_classes(eg, root);
  result.stats.reach_seconds = phase_timer.seconds();
  result.stats.classes_reachable = classes.size();
  phase_timer.reset();  // everything until solve_milp counts as lp-build

  // Enumerate decision variables: one per unfiltered e-node of a reachable
  // class (filter-list nodes are omitted == pinned to zero).
  struct NodeRef {
    Id cls;
    const TNode* node;
  };
  // Presolve: "free" classes — exactly one choice, zero cost, all children
  // free — never influence the optimization (parameter leaves, weight
  // tensors and the precomputed subgraphs above them). They get no
  // variables; their selection is forced during reconstruction.
  std::unordered_map<Id, bool> free_class;
  {
    bool changed = true;
    while (changed) {
      changed = false;
      for (Id cls : classes) {
        if (free_class[cls]) continue;
        const EClass& ec = eg.eclass(cls);
        const EClassNode* only = nullptr;
        size_t live = 0;
        for (const EClassNode& e : ec.nodes) {
          if (e.filtered) continue;
          ++live;
          only = &e;
        }
        if (live != 1 || eg.find(cls) == root) continue;
        if (enode_cost(eg, cls, only->node, model) != 0.0) continue;
        bool children_free = true;
        for (Id c : only->node.children)
          if (!free_class[eg.find(c)]) children_free = false;
        if (children_free) {
          free_class[cls] = true;
          changed = true;
        }
      }
    }
  }

  std::vector<NodeRef> nodes;
  std::unordered_map<Id, std::vector<int>> class_nodes;  // class -> var indices
  for (Id cls : classes) {
    if (free_class[cls]) continue;
    // Presolve: within a class, an e-node is dominated if another e-node has
    // the same child-class set and no higher cost — swapping them changes
    // neither feasibility nor the objective (all nodes of a class compute
    // the same value). Keep the first-cheapest per child set, which is also
    // what greedy extraction picks (keeps the warm start aligned).
    struct Group {
      size_t node_index;
      double cost;
    };
    std::map<std::vector<Id>, Group> groups;
    const EClass& ec = eg.eclass(cls);
    for (size_t k = 0; k < ec.nodes.size(); ++k) {
      const EClassNode& e = ec.nodes[k];
      if (e.filtered) continue;
      std::vector<Id> key;
      for (Id c : e.node.children) {
        const Id canon = eg.find(c);
        if (std::find(key.begin(), key.end(), canon) == key.end()) key.push_back(canon);
      }
      std::sort(key.begin(), key.end());
      const double cost = enode_cost(eg, cls, e.node, model);
      auto it = groups.find(key);
      if (it == groups.end()) {
        groups.emplace(std::move(key), Group{k, cost});
      } else if (cost < it->second.cost - 1e-12) {
        it->second = Group{k, cost};
      }
    }
    for (const auto& [key, group] : groups) {
      class_nodes[cls].push_back(static_cast<int>(nodes.size()));
      nodes.push_back(NodeRef{cls, &ec.nodes[group.node_index].node});
    }
  }
  result.num_vars = nodes.size();
  result.stats.milp_vars_total = nodes.size();
  result.stats.largest_core_vars = nodes.size();
  result.stats.num_cores = nodes.empty() ? 0 : 1;
  if (nodes.size() > options.max_instance_nodes) {
    result.too_large = true;
    result.timed_out = true;
    result.solve_seconds = timer.seconds();
    return result;
  }
  // Every root e-node filtered: nothing to extract (constraint (2) has no
  // variables). Report infeasible instead of crashing on the empty row.
  if (class_nodes.find(root) == class_nodes.end()) {
    result.milp_status = MilpStatus::kInfeasible;
    result.solve_seconds = timer.seconds();
    return result;
  }

  LinearProgram lp;
  std::vector<bool> integral;
  for (const NodeRef& ref : nodes) {
    lp.add_var(0.0, 1.0, enode_cost(eg, ref.cls, *ref.node, model));
    integral.push_back(true);
  }
  // Topological-order variables t_m (paper constraint (5)).
  std::unordered_map<Id, int> topo_var;
  const double M = static_cast<double>(classes.size());
  if (options.cycle_constraints) {
    for (Id cls : classes) {
      if (free_class[cls]) continue;  // leaf-only subtrees cannot be on a cycle
      const double hi = options.integer_topo_vars ? M - 1.0 : 1.0;
      topo_var[cls] = lp.add_var(0.0, hi, 0.0);
      integral.push_back(options.integer_topo_vars);
    }
  }

  // (2) exactly one root e-node.
  {
    std::vector<std::pair<int, double>> terms;
    for (int i : class_nodes.at(root)) terms.emplace_back(i, 1.0);
    lp.add_row(std::move(terms), 1.0, 1.0);
  }
  // Strengthening: at most one picked node per class. The paper relies on
  // this holding at optima (§5.1); adding it as a constraint preserves an
  // optimum and tightens the LP relaxation dramatically, which is what
  // keeps branch & bound from thrashing on equivalent fractional picks.
  for (const auto& [cls, vars] : class_nodes) {
    if (vars.size() < 2) continue;
    std::vector<std::pair<int, double>> terms;
    for (int i : vars) terms.emplace_back(i, 1.0);
    lp.add_row(std::move(terms), -kInf, 1.0);
  }
  // (3) children covered, aggregated per (parent class, child class):
  //       sum_{i in P with child m} x_i  <=  sum_{j in m} x_j.
  // Given the <=1-per-class rows, this is valid for integer solutions and
  // implies (and tightens) the paper's per-node form x_i <= sum_j x_j.
  // (4) topological order, if requested (per node, as in the paper).
  const double eps = 1.0 / (2.0 * M);
  const double bigA = options.integer_topo_vars ? M : 2.0;
  std::unordered_map<Id, std::vector<int>> child_to_parents;  // per parent class
  for (const auto& [cls, vars] : class_nodes) {
    child_to_parents.clear();
    for (int i : vars) {
      std::vector<Id> children;
      for (Id c : nodes[i].node->children) {
        const Id canon = eg.find(c);
        if (free_class[canon]) continue;  // always satisfiable at zero cost
        if (std::find(children.begin(), children.end(), canon) == children.end())
          children.push_back(canon);
      }
      for (Id m : children) {
        child_to_parents[m].push_back(i);
        if (options.cycle_constraints) {
          // t_g(i) - t_m - A*x_i >= (eps or 1) - A
          const double rhs = (options.integer_topo_vars ? 1.0 : eps) - bigA;
          lp.add_row({{topo_var.at(cls), 1.0}, {topo_var.at(m), -1.0}, {i, -bigA}},
                     rhs, kInf);
        }
      }
    }
    for (const auto& [m, parents] : child_to_parents) {
      std::vector<std::pair<int, double>> terms;
      for (int i : parents) terms.emplace_back(i, 1.0);
      // A child class with every e-node filtered has no variables: the row
      // degenerates to "sum of parents <= 0", pinning those parents to zero
      // (they cannot be covered).
      if (auto it = class_nodes.find(m); it != class_nodes.end())
        for (int j : it->second) terms.emplace_back(j, -1.0);
      lp.add_row(std::move(terms), -kInf, 0.0);
    }
  }
  result.num_rows = lp.rows.size();

  // Converts a per-class e-node selection into an LP point: x = 1 for the
  // chosen variable of every class the selection actually uses (walking down
  // from the root), topological t values assigned in dependency order.
  // Returns nullopt if the selection misses a needed class or picks a
  // presolved-away node; cyclic selections produce infeasible points that
  // the caller's feasibility check rejects.
  auto selection_to_x = [&](const std::unordered_map<Id, TNode>& sel)
      -> std::optional<std::vector<double>> {
    std::vector<double> x(lp.num_vars(), 0.0);
    std::vector<Id> used_order;  // dependency order (children first)
    std::unordered_map<Id, int8_t> state;
    std::vector<Id> stack{root};
    while (!stack.empty()) {
      const Id cls = stack.back();
      if (state[cls] == 2) {
        stack.pop_back();
        continue;
      }
      auto it = sel.find(cls);
      if (it == sel.end()) return std::nullopt;
      if (state[cls] == 1) {
        state[cls] = 2;
        used_order.push_back(cls);
        stack.pop_back();
        continue;
      }
      state[cls] = 1;
      for (Id c : it->second.children) {
        const Id canon = eg.find(c);
        if (state[canon] == 0) stack.push_back(canon);
      }
    }
    size_t order_index = 0;
    for (Id cls : used_order) {
      if (free_class[cls]) continue;  // no variable; forced selection
      int var = -1;
      const TNode& chosen = sel.at(cls);
      for (int i : class_nodes.at(cls)) {
        if (*nodes[i].node == chosen) {
          var = i;
          break;
        }
      }
      if (var < 0) return std::nullopt;
      x[var] = 1.0;
      if (options.cycle_constraints) {
        const double t = options.integer_topo_vars
                             ? static_cast<double>(order_index)
                             : (static_cast<double>(order_index) + 1.0) / (2.0 * M);
        x[topo_var.at(cls)] = t;
        ++order_index;
      }
    }
    return x;
  };

  // Greedy solution: warm start (incumbent upper bound) plus the fallback
  // returned on timeout, as in the paper.
  ExtractionResult greedy;
  std::unordered_map<Id, TNode> greedy_sel;
  std::optional<std::vector<double>> warm;
  if (options.warm_start_with_greedy) {
    greedy = extract_greedy(eg, model);
    greedy_sel = greedy_selection(eg, model, classes);
    if (greedy.ok && greedy_sel.count(root) > 0) {
      if (auto x = selection_to_x(greedy_sel); x && lp.feasible(*x, 1e-6))
        warm = std::move(x);
    }
  }

  MilpOptions milp_opt;
  milp_opt.time_limit_s = options.time_limit_s;
  milp_opt.rel_gap = options.rel_gap;
  milp_opt.sparse = options.sparse_lp;
  milp_opt.warm_start_basis = options.warm_start_basis;
  // LP-guided rounding: per class take the variable with the largest
  // fractional value (falling back to greedy for classes the LP zeroes);
  // this is how good incumbents appear long before optimality is proven.
  milp_opt.rounding = [&](const std::vector<double>& xfrac)
      -> std::optional<std::vector<double>> {
    std::unordered_map<Id, TNode> choice;
    for (const auto& [cls, vars] : class_nodes) {
      int best = -1;
      double best_value = 1e-6;
      for (int i : vars) {
        if (xfrac[i] > best_value) {
          best_value = xfrac[i];
          best = i;
        }
      }
      if (best >= 0) {
        choice.emplace(cls, *nodes[best].node);
      } else if (auto it = greedy_sel.find(cls); it != greedy_sel.end()) {
        choice.emplace(cls, it->second);
      }
    }
    for (Id cls : classes) {
      if (!free_class[cls]) continue;
      for (const EClassNode& e : eg.eclass(cls).nodes)
        if (!e.filtered) choice.emplace(cls, e.node);
    }
    return selection_to_x(choice);
  };
  result.stats.lp_build_seconds = phase_timer.seconds();
  phase_timer.reset();
  const MilpResult milp = solve_milp(lp, integral, milp_opt, warm);
  result.stats.solve_seconds = phase_timer.seconds();
  phase_timer.reset();
  result.milp_status = milp.status;
  result.timed_out = milp.timed_out;
  result.solve_seconds = milp.seconds;
  result.bb_nodes = milp.nodes_explored;
  result.best_bound = milp.best_bound;
  result.lp_iterations = milp.lp_iterations;
  result.stats.warm_start_hits = milp.warm_start_hits;
  result.stats.refactorizations = milp.refactorizations;

  if (milp.status != MilpStatus::kOptimal && milp.status != MilpStatus::kFeasible) {
    return result;
  }

  // Read the selection and rebuild the graph.
  std::unordered_map<Id, TNode> selection;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (milp.x[i] > 0.5) {
      // "At most one picked node per class" holds at optima; if several are
      // picked (cost ties), any one is valid — keep the first.
      selection.emplace(nodes[i].cls, *nodes[i].node);
    }
  }
  // Free classes were presolved out: their single zero-cost node is forced.
  for (Id cls : classes) {
    if (!free_class[cls]) continue;
    for (const EClassNode& e : eg.eclass(cls).nodes)
      if (!e.filtered) selection.emplace(cls, e.node);
  }
  auto graph = build_selected_graph(eg, root, selection);
  if (!graph.has_value()) {
    result.cyclic_selection = true;
    result.stats.stitch_seconds = phase_timer.seconds();
    // Fall back to the greedy graph if we have one (mirrors "use the best
    // known feasible solution").
    if (greedy.ok) {
      result.graph = std::move(greedy.graph);
      result.cost = greedy.cost;
      result.ok = true;
      result.stats.gap =
          std::max(0.0, (result.cost - result.best_bound) /
                            std::max(std::abs(result.cost), 1e-12));
    }
    return result;
  }
  result.graph = std::move(*graph);
  result.graph.single_root();
  result.cost = graph_cost(result.graph, model);
  result.ok = true;
  result.stats.gap = std::max(0.0, (result.cost - result.best_bound) /
                                       std::max(std::abs(result.cost), 1e-12));
  result.stats.stitch_seconds = phase_timer.seconds();
  return result;
}

}  // namespace tensat
