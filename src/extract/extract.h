// Extraction phase (paper §5): pick one e-node per needed e-class so the
// chosen graph minimizes total cost.
//
//  * Greedy: per-class best-subtree fixpoint (egg's default). Ignores
//    sharing, so it can pick strictly worse graphs (paper §6.5 / Table 4).
//  * ILP: the paper's formulation — binary x_i per e-node, root constraint
//    (2), child-cover constraints (3), optionally the topological-order
//    cycle constraints (4)-(5) with real or integer t_m. Filter-list
//    e-nodes are pinned to x_i = 0 (we simply omit their variables).
//    Solved by the in-repo branch & bound (ilp/milp.h), warm-started from
//    the greedy solution.
#pragma once

#include <optional>
#include <unordered_map>

#include "cost/cost.h"
#include "egraph/egraph.h"
#include "ilp/milp.h"

namespace tensat {

struct ExtractionResult {
  bool ok{false};
  Graph graph;  // concrete, single root
  double cost{0.0};
};

/// Per-phase wall-clock and size breakdown of one extraction, threaded
/// through TensatResult so `extract_seconds` regressions can be pinned to
/// the dominant phase (mirrors ExploreStats for exploration). The monolithic
/// ILP fills reach/lp_build/solve/stitch; the decomposing engine
/// (extract/engine/engine.h) additionally fills reduce_seconds and the
/// reduction/core counters.
struct ExtractStats {
  double reach_seconds{0.0};     // reachable sub-e-graph collection
  double reduce_seconds{0.0};    // reductions + SCC condensation + collapse
  double lp_build_seconds{0.0};  // LP/MILP assembly (all cores)
  double solve_seconds{0.0};     // branch & bound (all cores, wall clock)
  double stitch_seconds{0.0};    // selection -> concrete Graph rebuild
  size_t classes_reachable{0};
  size_t classes_forced{0};      // forced constants removed before the MILP
  size_t classes_free{0};        // zero-cost classes dropped entirely
  size_t classes_collapsed{0};   // tree-like pseudo-leaves solved by exact DP
  size_t classes_interior{0};    // classes inside collapsed regions
  size_t nodes_pruned_dominated{0};  // cost-dominance reductions
  size_t nodes_pruned_bound{0};      // greedy-incumbent-bound reductions
  size_t num_cores{0};           // independent MILP components solved
  size_t largest_core_vars{0};   // decision variables of the biggest core
  size_t milp_vars_total{0};     // decision variables summed over cores
  double base_cost{0.0};         // constant cost folded out of the MILPs
  size_t fallback_cores{0};  // oversized cores solved by the LP-relaxation +
                             // rounding fallback (bounded gap, no proof)
  int warm_start_hits{0};    // node LPs restored from a parent basis
  int refactorizations{0};   // sparse-basis rebuilds across all node LPs
  /// Certified relative optimality gap of the returned graph:
  /// (cost - best_bound) / max(|cost|, eps). 0 when optimality was proven;
  /// kInf when extraction produced no graph.
  double gap{kInf};
};

/// Greedy extraction from the e-graph's root class.
ExtractionResult extract_greedy(const EGraph& eg, const CostModel& model);

struct IlpExtractOptions {
  /// Include the acyclicity constraints (4)-(5). Leave off when the e-graph
  /// was cycle-filtered during exploration (the paper's full approach).
  bool cycle_constraints = false;
  /// Integer-valued t_m (the paper's ablation) instead of real-valued.
  bool integer_topo_vars = false;
  double time_limit_s = 10.0;
  /// Seed the MILP with the greedy solution as incumbent.
  bool warm_start_with_greedy = true;
  /// Refuse instances with more e-nodes than this (the dense-tableau LP
  /// would exhaust memory); reported as timed_out, mirroring the paper's
  /// ">1 hour" entries. The decomposing engine applies its own per-core cap
  /// (ExtractEngineOptions::max_core_nodes) instead.
  size_t max_instance_nodes = 2600;
  /// Relative MIP gap handed to the branch & bound: an incumbent within
  /// rel_gap * |incumbent| of the proven bound is reported optimal. Tests
  /// that pin exact engine-vs-monolithic cost parity set this to 0.
  double rel_gap = 1e-3;
  /// Per-node LPs through the sparse revised simplex (LpOptions::sparse);
  /// false = the dense tableau, the differential baseline.
  bool sparse_lp = true;
  /// Child B&B nodes re-solve from the parent's basis
  /// (MilpOptions::warm_start_basis); false = every node cold, the
  /// warm-vs-cold baseline.
  bool warm_start_basis = true;
};

struct IlpExtractionResult : ExtractionResult {
  MilpStatus milp_status{MilpStatus::kNoSolution};
  bool timed_out{false};
  bool too_large{false};
  double solve_seconds{0.0};
  int bb_nodes{0};
  double best_bound{0.0};  // proven lower bound from branch & bound
  int lp_iterations{0};
  size_t num_vars{0};
  size_t num_rows{0};
  /// True if the selected graph contained a cycle (possible only when
  /// cycle_constraints are off and the e-graph was not filtered).
  bool cyclic_selection{false};
  /// Per-phase breakdown (reach/reduce/lp-build/solve/stitch + sizes).
  ExtractStats stats;
};

/// ILP extraction from the e-graph's root class.
IlpExtractionResult extract_ilp(const EGraph& eg, const CostModel& model,
                                const IlpExtractOptions& options = {});

/// Rebuilds a concrete Graph from a per-class e-node choice, starting at the
/// root class. Returns nullopt if the selection is cyclic or incomplete.
std::optional<Graph> build_selected_graph(
    const EGraph& eg, Id root,
    const std::unordered_map<Id, TNode>& selection);

}  // namespace tensat
