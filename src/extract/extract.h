// Extraction phase (paper §5): pick one e-node per needed e-class so the
// chosen graph minimizes total cost.
//
//  * Greedy: per-class best-subtree fixpoint (egg's default). Ignores
//    sharing, so it can pick strictly worse graphs (paper §6.5 / Table 4).
//  * ILP: the paper's formulation — binary x_i per e-node, root constraint
//    (2), child-cover constraints (3), optionally the topological-order
//    cycle constraints (4)-(5) with real or integer t_m. Filter-list
//    e-nodes are pinned to x_i = 0 (we simply omit their variables).
//    Solved by the in-repo branch & bound (ilp/milp.h), warm-started from
//    the greedy solution.
#pragma once

#include <optional>
#include <unordered_map>

#include "cost/cost.h"
#include "egraph/egraph.h"
#include "ilp/milp.h"

namespace tensat {

struct ExtractionResult {
  bool ok{false};
  Graph graph;  // concrete, single root
  double cost{0.0};
};

/// Greedy extraction from the e-graph's root class.
ExtractionResult extract_greedy(const EGraph& eg, const CostModel& model);

struct IlpExtractOptions {
  /// Include the acyclicity constraints (4)-(5). Leave off when the e-graph
  /// was cycle-filtered during exploration (the paper's full approach).
  bool cycle_constraints = false;
  /// Integer-valued t_m (the paper's ablation) instead of real-valued.
  bool integer_topo_vars = false;
  double time_limit_s = 10.0;
  /// Seed the MILP with the greedy solution as incumbent.
  bool warm_start_with_greedy = true;
  /// Refuse instances with more e-nodes than this (the dense-tableau LP
  /// would exhaust memory); reported as timed_out, mirroring the paper's
  /// ">1 hour" entries.
  size_t max_instance_nodes = 2600;
};

struct IlpExtractionResult : ExtractionResult {
  MilpStatus milp_status{MilpStatus::kNoSolution};
  bool timed_out{false};
  bool too_large{false};
  double solve_seconds{0.0};
  int bb_nodes{0};
  double best_bound{0.0};  // proven lower bound from branch & bound
  int lp_iterations{0};
  size_t num_vars{0};
  size_t num_rows{0};
  /// True if the selected graph contained a cycle (possible only when
  /// cycle_constraints are off and the e-graph was not filtered).
  bool cyclic_selection{false};
};

/// ILP extraction from the e-graph's root class.
IlpExtractionResult extract_ilp(const EGraph& eg, const CostModel& model,
                                const IlpExtractOptions& options = {});

/// Rebuilds a concrete Graph from a per-class e-node choice, starting at the
/// root class. Returns nullopt if the selection is cyclic or incomplete.
std::optional<Graph> build_selected_graph(
    const EGraph& eg, Id root,
    const std::unordered_map<Id, TNode>& selection);

}  // namespace tensat
