#include "extract/engine/reduce.h"

#include <algorithm>

namespace tensat {
namespace exteng {
namespace {

/// True if a (sorted, distinct) is a subset of b (sorted, distinct).
bool subset_of(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Forced propagation: root forced; a class is forced when a forced class's
/// every live option references it; forced single-option classes become
/// constants (removed). Returns true if anything changed.
bool propagate_forced(Problem& p, const ReduceOptions& options, ReduceStats& stats) {
  bool changed = false;
  p.classes[p.root].forced = true;
  // Fixpoint over forced discovery; cheap because forcing only spreads
  // downward and each class flips at most twice (forced, then removed).
  bool local_changed = true;
  while (local_changed) {
    local_changed = false;
    for (size_t s = 0; s < p.classes.size(); ++s) {
      ClassSlot& c = p.classes[s];
      // Free classes carry no rows and stitch through free_choice, so they
      // neither propagate forcing nor need the constant-removal treatment.
      if (!c.reachable || !c.forced || c.free) continue;
      // Children referenced by EVERY live option are forced too.
      const Option* first_live = nullptr;
      size_t live = 0;
      for (const Option& o : c.options) {
        if (o.pruned) continue;
        ++live;
        if (first_live == nullptr) first_live = &o;
      }
      if (live == 0) continue;  // infeasible; caught by dp propagation
      for (uint32_t child : first_live->children) {
        bool in_all = true;
        for (const Option& o : c.options) {
          if (o.pruned || &o == first_live) continue;
          if (!std::binary_search(o.children.begin(), o.children.end(), child)) {
            in_all = false;
            break;
          }
        }
        ClassSlot& w = p.classes[child];
        if (in_all && !w.forced) {
          w.forced = true;
          local_changed = true;
          changed = true;
        }
      }
      // Forced + single live option = constant. Under cycle constraints a
      // potentially-cyclic class must keep its variable (its topological-
      // order rows are what forbids selections through its cycle).
      if (!c.removed && live == 1 && s != p.root &&
          !(options.cycle_constraints && c.cyclic)) {
        c.removed = true;
        p.base_cost += first_live->cost;
        ++stats.classes_forced;
        local_changed = true;
        changed = true;
      }
    }
  }
  return changed;
}

/// Cost-dominance: within each class prune options whose child-class set is
/// a (non-strict) superset of a live sibling's at equal-or-higher cost.
size_t prune_dominated(Problem& p) {
  size_t pruned = 0;
  for (size_t s = 0; s < p.classes.size(); ++s) {
    ClassSlot& c = p.classes[s];
    if (!c.reachable || c.removed || c.free) continue;  // free_choice must stay
    for (size_t a = 0; a < c.options.size(); ++a) {
      if (c.options[a].pruned) continue;
      for (size_t b = 0; b < c.options.size(); ++b) {
        if (b == a || c.options[b].pruned) continue;
        const Option& oa = c.options[a];
        const Option& ob = c.options[b];
        if (!subset_of(ob.children, oa.children)) continue;
        // Tie-break on equal cost + equal child set: keep the earlier
        // option, matching the monolithic presolve's first-cheapest rule.
        const bool cheaper = ob.cost < oa.cost - 1e-12;
        const bool tie = !cheaper && ob.cost <= oa.cost + 1e-12 && b < a;
        if (cheaper || tie) {
          c.options[a].pruned = true;
          ++pruned;
          break;
        }
      }
    }
  }
  return pruned;
}

/// Incumbent-bound pruning: prune option a when a live sibling b has
/// cost(b) + sum of b's children's dp bounds <= cost(a). Unsound under
/// cycle constraints (the greedy completion could close a cycle), so the
/// caller gates it. Requires dp to be current.
size_t prune_by_bound(Problem& p) {
  size_t pruned = 0;
  for (size_t s = 0; s < p.classes.size(); ++s) {
    ClassSlot& c = p.classes[s];
    if (!c.reachable || c.removed || c.free) continue;  // free_choice must stay
    for (size_t a = 0; a < c.options.size(); ++a) {
      if (c.options[a].pruned) continue;
      for (size_t b = 0; b < c.options.size(); ++b) {
        if (b == a || c.options[b].pruned) continue;
        const Option& ob = c.options[b];
        double ub = ob.cost;
        for (uint32_t child : ob.children) {
          const double cc = p.classes[child].dp_cost;
          if (cc == kInfCost) {
            ub = kInfCost;
            break;
          }
          ub += cc;
        }
        // Any solution using a pays at least cost(a) for it; replacing a
        // with b plus greedy subtrees for b's children costs at most ub.
        if (ub < kInfCost && ub <= c.options[a].cost) {
          c.options[a].pruned = true;
          ++pruned;
          break;
        }
      }
    }
  }
  return pruned;
}

/// Prune options referencing classes with no finite extraction (the cover
/// rows would have pinned those variables to zero).
size_t prune_infeasible_refs(Problem& p) {
  size_t pruned = 0;
  for (size_t s = 0; s < p.classes.size(); ++s) {
    ClassSlot& c = p.classes[s];
    if (!c.reachable) continue;
    for (Option& o : c.options) {
      if (o.pruned) continue;
      for (uint32_t child : o.children) {
        if (p.classes[child].dp_cost == kInfCost) {
          o.pruned = true;
          ++pruned;
          break;
        }
      }
    }
  }
  return pruned;
}

}  // namespace

void reduce(Problem& p, const ReduceOptions& options, ReduceStats& stats) {
  // Each round prunes at least one option or removes at least one class, so
  // the loop is bounded by the live option count; in practice 2-3 rounds.
  for (;;) {
    bool changed = propagate_forced(p, options, stats);
    const size_t dominated = prune_dominated(p);
    stats.nodes_pruned_dominated += dominated;
    size_t bound = 0;
    if (!options.cycle_constraints) {
      bound = prune_by_bound(p);
      stats.nodes_pruned_bound += bound;
    }
    const size_t infeasible = prune_infeasible_refs(p);
    changed = changed || dominated > 0 || bound > 0 || infeasible > 0;
    if (!changed) break;
    p.recompute_reachable();
    p.recompute_dp();
    if (p.classes[p.root].dp_cost == kInfCost) {
      stats.infeasible = true;
      return;
    }
  }
  p.recompute_parents();
}

void mark_free(Problem& p, ReduceStats& stats) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < p.classes.size(); ++s) {
      ClassSlot& c = p.classes[s];
      // Forced classes may be free too: "selected in every solution" and
      // "selectable at will at zero cost" compose — the class simply needs
      // no variable and no "= 1" row, and stitching expands free_choice
      // (never a cyclic member, so the removal stays safe under cycle
      // constraints). Only already-removed constants are skipped.
      if (!c.reachable || c.free || c.removed) continue;
      for (size_t k = 0; k < c.options.size(); ++k) {
        const Option& o = c.options[k];
        if (o.pruned || o.cost != 0.0) continue;
        bool children_free = true;
        for (uint32_t child : o.children) {
          if (!p.classes[child].free) {
            children_free = false;
            break;
          }
        }
        if (children_free) {
          c.free = true;
          c.free_choice = static_cast<int32_t>(k);
          ++stats.classes_free;
          changed = true;
          break;
        }
      }
    }
  }
  p.recompute_parents();
}

void collapse_treelike(Problem& p, ReduceStats& stats) {
  const size_t n = p.classes.size();
  // treelike(c): not cyclic, and every child is itself treelike with exactly
  // one parent class. Children-first evaluation: classes sorted by SCC index
  // ascending is reverse topological order of the condensation.
  std::vector<uint32_t> by_scc;
  by_scc.reserve(n);
  for (size_t s = 0; s < n; ++s)
    if (p.is_core(static_cast<uint32_t>(s))) by_scc.push_back(static_cast<uint32_t>(s));
  std::sort(by_scc.begin(), by_scc.end(), [&](uint32_t a, uint32_t b) {
    return p.classes[a].scc < p.classes[b].scc;
  });

  std::vector<char> treelike(n, 0);
  for (uint32_t s : by_scc) {
    const ClassSlot& c = p.classes[s];
    if (c.cyclic || c.dp_inc_cost == kInfCost) continue;
    bool ok = true;
    for (const Option& o : c.options) {
      if (o.pruned) continue;
      for (uint32_t child : o.children) {
        const ClassSlot& w = p.classes[child];
        // Forced children (removed constants included) are selected and paid
        // in every solution, and free children are selectable at will at
        // zero cost: neither joins the region nor blocks its exclusivity.
        if (w.removed || w.forced || w.free) continue;
        if (!treelike[child] || w.parents.size() != 1) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    treelike[s] = ok ? 1 : 0;
  }

  // Tops: treelike classes that are not interior of a larger treelike
  // region. Interior: exactly one parent class, and that parent is treelike.
  // Forced classes are never interior — they must be selected even when the
  // region top is not.
  for (uint32_t s : by_scc) {
    ClassSlot& c = p.classes[s];
    if (!treelike[s] || c.removed) continue;
    const bool is_interior = !c.forced && s != p.root && c.parents.size() == 1 &&
                             treelike[c.parents[0]];
    if (is_interior) {
      c.interior = true;
      ++stats.classes_interior;
      continue;
    }
    // Top of a maximal treelike region, priced at its exact incremental DP
    // cost. A forced top folds into the constant base cost; otherwise it
    // becomes a pseudo-leaf variable.
    c.collapsed = true;
    ++stats.classes_collapsed;
    if (c.forced) {
      p.base_cost += c.dp_inc_cost;
      c.removed = true;
      ++stats.classes_forced;
    }
  }
  p.recompute_parents();
}

}  // namespace exteng
}  // namespace tensat
