#include "extract/engine/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <set>
#include <unordered_map>

#include "extract/engine/problem.h"
#include "extract/engine/reduce.h"
#include "extract/engine/scc.h"
#include "ilp/milp.h"
#include "support/hash.h"
#include "support/parallel.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace tensat {

std::optional<MilpWarmCache::Entry> MilpWarmCache::lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void MilpWarmCache::store(uint64_t key, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.insert_or_assign(key, std::move(entry));
  (void)it;
  if (!inserted) return;  // refresh: key already in the eviction order
  order_.push_back(key);
  while (map_.size() > capacity_ && !order_.empty()) {
    map_.erase(order_.front());
    order_.pop_front();
  }
}

size_t MilpWarmCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

uint64_t MilpWarmCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t MilpWarmCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t milp_formulation_key(const LinearProgram& lp,
                              const std::vector<bool>& integer_mask) {
  size_t seed = 0xb10c5eedcafef00dull;
  auto mix_double = [&seed](double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    hash_combine(seed, static_cast<size_t>(bits));
  };
  hash_combine(seed, static_cast<size_t>(lp.num_vars()));
  for (double c : lp.objective) mix_double(c);
  hash_combine(seed, lp.rows.size());
  for (const LinearProgram::Row& row : lp.rows) {
    hash_combine(seed, row.terms.size());
    for (const auto& [j, a] : row.terms) {
      hash_combine(seed, static_cast<size_t>(j));
      mix_double(a);
    }
    mix_double(row.lo);
    mix_double(row.hi);
  }
  for (bool b : integer_mask) hash_combine(seed, b ? 1u : 0u);
  return seed;
}

namespace {

using exteng::ClassSlot;
using exteng::kInfCost;
using exteng::Option;
using exteng::Problem;

/// One independent MILP ("core"): a connected component of the reduced
/// dependency graph. Assembled serially, solved in parallel, merged in
/// member order. The per-class lookup tables are flat arrays indexed by
/// global class slot (-1 = not in this core), consistent with the
/// subsystem's slot-indexed design — they sit on the rounding callback's
/// per-B&B-node path.
struct Core {
  explicit Core(size_t num_slots)
      : first_var(num_slots, -1),
        var_count(num_slots, 0),
        topo_var(num_slots, -1),
        class_var(num_slots, -1) {}
  std::vector<uint32_t> members;           // class slots, ascending
  std::vector<uint32_t> decision_vars{};   // parallel arrays: owning class...
  std::vector<int32_t> decision_option{};  // ...and option index (-1 = pseudo-leaf)
  LinearProgram lp;
  std::vector<bool> integral;
  std::vector<int32_t> first_var;  // class slot -> first var id, -1 if absent
  std::vector<int32_t> var_count;  // class slot -> its var count
  std::vector<int32_t> topo_var;   // class slot -> t variable, -1 if none
  std::vector<int32_t> class_var;  // class slot -> selection indicator, -1 if none
  std::vector<uint32_t> forced_members;
  std::optional<std::vector<double>> warm;
  MilpResult milp;
};

/// Turns a per-class choice (class slot -> decision var) into a full LP
/// point for one core: x = 1 for every class actually needed by the closure
/// from the core's forced classes, with per-SCC topological values assigned
/// in dependency (post-) order. `choose` maps a needed member class to its
/// decision variable, or -1 when it has none (=> nullopt). Mirrors the
/// monolithic selection_to_x.
std::optional<std::vector<double>> closure_to_x(
    const Problem& p, const Core& core, bool cycle_constraints,
    bool integer_topo_vars, const std::vector<int>& scc_size,
    const std::function<int(uint32_t)>& choose) {
  std::vector<double> x(core.lp.num_vars(), 0.0);
  // Iterative DFS with post-order capture; states: 0 unseen, 1 open, 2 done.
  std::vector<int8_t> state(p.classes.size(), 0);
  std::vector<uint32_t> post_order;
  for (uint32_t seed : core.forced_members) {
    if (state[seed] == 2) continue;
    std::vector<uint32_t> stack{seed};
    while (!stack.empty()) {
      const uint32_t s = stack.back();
      if (state[s] != 0) {
        if (state[s] == 1) {
          state[s] = 2;
          post_order.push_back(s);
        }
        stack.pop_back();
        continue;
      }
      const int var = choose(s);
      if (var < 0) return std::nullopt;
      state[s] = 1;
      x[var] = 1.0;
      const ClassSlot& c = p.classes[s];
      const int32_t opt = core.decision_option[var];
      if (opt >= 0) {  // pseudo-leaves have no dependencies
        for (uint32_t child : c.options[opt].children) {
          const ClassSlot& w = p.classes[child];
          if (w.removed || w.interior || w.free || w.forced) continue;
          // A child already open (state 1) means the choice closed a cycle;
          // the point is still cover-feasible, and under cycle constraints
          // the caller's feasibility check rejects it — both matching the
          // monolithic selection_to_x.
          if (state[child] == 0) stack.push_back(child);
        }
      }
    }
  }
  // Selection indicators are determined by their equality rows: s_c = the
  // class's chosen-option mass.
  for (uint32_t s : core.members) {
    if (core.class_var[s] < 0) continue;
    double mass = 0.0;
    const int first = core.first_var[s];
    for (int v = first; v < first + core.var_count[s]; ++v) mass += x[v];
    x[core.class_var[s]] = mass;
  }
  if (cycle_constraints) {
    std::unordered_map<int32_t, int> rank;  // per-SCC running rank
    for (uint32_t s : post_order) {
      const ClassSlot& c = p.classes[s];
      if (!c.cyclic || core.topo_var[s] < 0) continue;
      const int r = rank[c.scc]++;
      const double m = static_cast<double>(scc_size[c.scc]);
      x[core.topo_var[s]] = integer_topo_vars
                                ? static_cast<double>(r)
                                : (static_cast<double>(r) + 1.0) / (2.0 * m);
    }
  }
  return x;
}

}  // namespace

EngineExtractionResult extract_engine(const EGraph& eg, const CostModel& model,
                                      const ExtractEngineOptions& options) {
  if (!options.decompose) {
    EngineExtractionResult result;
    static_cast<IlpExtractionResult&>(result) = extract_ilp(eg, model, options);
    return result;
  }

  EngineExtractionResult result;
  result.decomposed = true;
  Timer timer;
  Timer phase_timer;

  // Phase spans ride the existing phase_timer boundaries (explicit records,
  // not ScopedSpans, because the phases share this scope and several exit
  // early). The per-core spans below live on the solver workers' own lanes.
  const trace::ScopedSpan extract_span("extract");
  trace::Tracer* const tracer = trace::Tracer::current();
  double phase_start_us = tracer != nullptr ? tracer->now_us() : 0.0;
  const auto phase_mark = [&](const char* name) {
    if (tracer == nullptr) return;
    const double now = tracer->now_us();
    tracer->record_span(name, phase_start_us, now);
    phase_start_us = now;
  };

  // ---- Reach: flatten the reachable sub-e-graph --------------------------
  Problem p = Problem::build(eg, model);
  phase_mark("extract/reach");
  result.stats.reach_seconds = phase_timer.seconds();
  result.stats.classes_reachable = p.classes.size();
  phase_timer.reset();

  // Greedy fallback graph: the REAL extract_greedy, exactly as the
  // monolithic path computes it, so the cyclic-selection fallback returns
  // the identical graph on both paths. (The engine's internal DP is not a
  // substitute: it sums each distinct child class once — the right
  // semantics for pricing pseudo-leaves, where a class is paid once — while
  // extract_greedy sums per child occurrence, so their argmins can differ
  // on classes with duplicated children.)
  ExtractionResult greedy;
  if (options.warm_start_with_greedy && p.classes[p.root].dp_cost < kInfCost)
    greedy = extract_greedy(eg, model);
  // The warm-start/fallback computation is charged to lp-build, the phase
  // the monolithic path books it under, so the per-phase breakdown stays
  // comparable across the two paths.
  phase_mark("extract/greedy");
  result.stats.lp_build_seconds += phase_timer.seconds();
  phase_timer.reset();

  // ---- Reduce + condense + collapse --------------------------------------
  if (p.classes[p.root].dp_cost == kInfCost) {
    result.milp_status = MilpStatus::kInfeasible;
    result.solve_seconds = timer.seconds();
    return result;
  }
  exteng::condense_sccs(p);  // cyclic flags gate forced removal
  exteng::ReduceOptions reduce_opt;
  reduce_opt.cycle_constraints = options.cycle_constraints;
  // Free-ness is structural (a zero-cost derivation exists), so it is
  // decided before forced propagation — otherwise a forced constant inside
  // a zero-cost tower would block the tower's removal.
  exteng::ReduceStats rstats;
  exteng::mark_free(p, rstats);
  exteng::reduce(p, reduce_opt, rstats);
  if (rstats.infeasible) {
    result.stats.reduce_seconds = phase_timer.seconds();
    result.milp_status = MilpStatus::kInfeasible;
    result.solve_seconds = timer.seconds();
    return result;
  }
  exteng::condense_sccs(p);  // final SCCs of the reduced graph
  exteng::collapse_treelike(p, rstats);
  const size_t num_components = exteng::assign_components(p);

  phase_mark("extract/reduce");
  result.stats.reduce_seconds = phase_timer.seconds();
  result.stats.classes_forced = rstats.classes_forced;
  result.stats.classes_free = rstats.classes_free;
  result.stats.classes_collapsed = rstats.classes_collapsed;
  result.stats.classes_interior = rstats.classes_interior;
  result.stats.nodes_pruned_dominated = rstats.nodes_pruned_dominated;
  result.stats.nodes_pruned_bound = rstats.nodes_pruned_bound;
  result.stats.base_cost = p.base_cost;
  phase_timer.reset();

  // ---- Assemble one MILP per core ----------------------------------------
  std::vector<Core> cores;
  cores.reserve(num_components);
  for (size_t k = 0; k < num_components; ++k) cores.emplace_back(p.classes.size());
  for (size_t s = 0; s < p.classes.size(); ++s) {
    const int32_t comp = p.classes[s].component;
    if (comp >= 0) cores[comp].members.push_back(static_cast<uint32_t>(s));
  }

  // SCC sizes (over core classes) for the per-SCC big-M / epsilon.
  std::vector<int> scc_size;
  for (size_t s = 0; s < p.classes.size(); ++s) {
    const ClassSlot& c = p.classes[s];
    if (c.scc < 0 || !p.is_core(static_cast<uint32_t>(s))) continue;
    if (static_cast<size_t>(c.scc) >= scc_size.size())
      scc_size.resize(static_cast<size_t>(c.scc) + 1, 0);
    ++scc_size[c.scc];
  }

  // Per-core budget: the decomposed analog of the monolithic
  // max_instance_nodes cap — instance size no longer matters, core size
  // does. Oversized cores drop to the LP-relaxation + rounding fallback
  // (one B&B root node) instead of refusing the whole extraction, unless
  // lp_fallback is off (the pre-fallback baseline).
  size_t vars_total = 0;
  std::vector<uint8_t> fallback(cores.size(), 0);
  for (size_t k = 0; k < cores.size(); ++k) {
    size_t vars = 0;
    for (uint32_t s : cores[k].members) {
      const ClassSlot& c = p.classes[s];
      vars += c.collapsed ? 1 : p.live_option_count(s);
    }
    vars_total += vars;
    result.stats.largest_core_vars = std::max(result.stats.largest_core_vars, vars);
    if (vars > options.max_core_nodes && options.lp_fallback) {
      fallback[k] = 1;
      ++result.stats.fallback_cores;
    }
  }
  result.stats.num_cores = num_components;
  result.stats.milp_vars_total = vars_total;
  result.num_vars = vars_total;
  if (result.stats.largest_core_vars > options.max_core_nodes &&
      !options.lp_fallback) {
    result.too_large = true;
    result.timed_out = true;
    result.stats.lp_build_seconds += phase_timer.seconds();
    result.solve_seconds = timer.seconds();
    return result;
  }

  size_t rows_total = 0;
  for (Core& core : cores) {
    // Decision variables: one per live option, or one per collapsed
    // pseudo-leaf (priced at its exact incremental DP cost).
    for (uint32_t s : core.members) {
      const ClassSlot& c = p.classes[s];
      core.first_var[s] = core.lp.num_vars();
      if (c.collapsed) {
        core.lp.add_var(0.0, 1.0, c.dp_inc_cost);
        core.integral.push_back(true);
        core.decision_vars.push_back(s);
        core.decision_option.push_back(-1);
        core.var_count[s] = 1;
      } else {
        int count = 0;
        for (size_t k = 0; k < c.options.size(); ++k) {
          if (c.options[k].pruned) continue;
          core.lp.add_var(0.0, 1.0, c.options[k].cost);
          core.integral.push_back(true);
          core.decision_vars.push_back(s);
          core.decision_option.push_back(static_cast<int32_t>(k));
          ++count;
        }
        core.var_count[s] = count;
      }
      if (c.forced) core.forced_members.push_back(s);
    }
    // Topological-order variables: only classes of nontrivial SCCs can lie
    // on a cycle, so only they get t variables and big-M rows — the cyclic
    // cores the monolithic constraints (4)-(5) paid for globally.
    if (options.cycle_constraints) {
      for (uint32_t s : core.members) {
        const ClassSlot& c = p.classes[s];
        if (!c.cyclic) continue;
        const double m = static_cast<double>(scc_size[c.scc]);
        const double hi = options.integer_topo_vars ? std::max(m - 1.0, 0.0) : 1.0;
        core.topo_var[s] = core.lp.add_var(0.0, hi, 0.0);
        core.integral.push_back(options.integer_topo_vars);
      }
    }

    // Selection rows: forced classes must pick exactly one. Non-forced
    // multi-option classes get a binary selection INDICATOR s_c tied by
    // sum(x_i) - s_c = 0 (which subsumes the old <= 1 row: s_c's [0,1]
    // bound caps the sum). The indicator exists to branch on: fixing one
    // option variable lets the LP shift its mass to a sibling option of
    // the same class with no bound movement, while s_c = 0 kills every
    // option and s_c = 1 forces a full unit of selection through the
    // class — the dichotomy that actually resolves a chained core.
    // Single-option classes need neither: the lone variable is its own
    // indicator.
    for (uint32_t s : core.members) {
      const ClassSlot& c = p.classes[s];
      const int first = core.first_var[s];
      const int count = core.var_count[s];
      if (count == 0) continue;
      if (c.forced) {
        std::vector<std::pair<int, double>> terms;
        for (int v = first; v < first + count; ++v) terms.emplace_back(v, 1.0);
        core.lp.add_row(std::move(terms), 1.0, 1.0);
      } else if (count >= 2) {
        core.class_var[s] = core.lp.add_var(0.0, 1.0, 0.0);
        core.integral.push_back(true);
        std::vector<std::pair<int, double>> terms;
        for (int v = first; v < first + count; ++v) terms.emplace_back(v, 1.0);
        terms.emplace_back(core.class_var[s], -1.0);
        core.lp.add_row(std::move(terms), 0.0, 0.0);
      }
    }

    // Cover rows, aggregated per (parent class, child class), and the
    // topological-order rows for intra-SCC edges. Children that are forced
    // (selected anyway), free (zero-cost, selectable at will), removed, or
    // interior impose no cover.
    std::unordered_map<uint32_t, std::vector<int>> child_to_parents;
    for (uint32_t s : core.members) {
      const ClassSlot& c = p.classes[s];
      if (c.collapsed) continue;  // pseudo-leaf: subtree handled by DP
      child_to_parents.clear();
      const int first = core.first_var[s];
      int var = first;
      for (size_t k = 0; k < c.options.size(); ++k) {
        if (c.options[k].pruned) continue;
        const int this_var = var++;
        for (uint32_t child : c.options[k].children) {
          const ClassSlot& w = p.classes[child];
          if (w.removed || w.interior || w.free) continue;
          if (options.cycle_constraints && w.cyclic && c.cyclic && w.scc == c.scc) {
            // t_c - t_w - A*x >= (eps or 1) - A, per intra-SCC edge.
            const double m = static_cast<double>(scc_size[c.scc]);
            const double eps = 1.0 / (2.0 * m);
            const double big_a = options.integer_topo_vars ? m : 2.0;
            const double rhs = (options.integer_topo_vars ? 1.0 : eps) - big_a;
            core.lp.add_row({{core.topo_var[s], 1.0},
                             {core.topo_var[child], -1.0},
                             {this_var, -big_a}},
                            rhs, kInf);
          }
          if (w.forced) continue;  // cover vacuous: child picked regardless
          child_to_parents[child].push_back(this_var);
        }
      }
      for (const auto& [child, parent_vars] : child_to_parents) {
        std::vector<std::pair<int, double>> terms;
        for (int v : parent_vars) terms.emplace_back(v, 1.0);
        const int cfirst = core.first_var[child];
        const int ccount = core.var_count[child];
        for (int v = cfirst; v < cfirst + ccount; ++v) terms.emplace_back(v, -1.0);
        core.lp.add_row(std::move(terms), -kInf, 0.0);
      }
    }
    rows_total += core.lp.rows.size();

    // Warm start: the DP (greedy) selection restricted to this core.
    if (options.warm_start_with_greedy) {
      auto choose_dp = [&](uint32_t s) -> int {
        const ClassSlot& c = p.classes[s];
        if (c.collapsed) return core.first_var[s];
        if (c.dp_inc_choice < 0) return -1;
        int var = core.first_var[s];
        for (size_t k = 0; k < c.options.size(); ++k) {
          if (c.options[k].pruned) continue;
          if (static_cast<int32_t>(k) == c.dp_inc_choice) return var;
          ++var;
        }
        return -1;
      };
      auto x = closure_to_x(p, core, options.cycle_constraints,
                            options.integer_topo_vars, scc_size, choose_dp);
      if (x && core.lp.feasible(*x, 1e-6)) core.warm = std::move(x);
    }
  }
  result.num_rows = rows_total;
  phase_mark("extract/build");
  result.stats.lp_build_seconds += phase_timer.seconds();
  phase_timer.reset();

  // ---- Solve the cores in parallel, merge in core order ------------------
  MilpOptions milp_opt_base;
  milp_opt_base.rel_gap = options.rel_gap;
  milp_opt_base.sparse = options.sparse_lp;
  milp_opt_base.warm_start_basis = options.warm_start_basis;
  // Dispatch gate (the kMinParallelSearchWork lesson): parallelizing a
  // handful of tiny MILPs costs more than solving them, so the DEFAULT
  // (core_threads == 0) solves small instances on the calling thread —
  // identical results either way. An explicit thread count is honored
  // unconditionally, so tests and sanitizer jobs can force the pooled path.
  // The floor dropped 512 -> 128 with the persistent pool: dispatch is a
  // queue push, not a thread spawn, so only truly trivial core sets stay
  // serial.
  size_t core_threads = options.core_threads;
  if (core_threads == 0 && (cores.size() <= 1 || vars_total < 128))
    core_threads = 1;
  // Cross-request warm seeding: formulation keys and cache lookups happen
  // serially HERE, and stores serially after the solves, so one extraction
  // is a deterministic function of the cache state at entry — identical
  // cores within a request cannot race each other's entries on the pool.
  std::vector<uint64_t> warm_keys(cores.size(), 0);
  std::vector<MilpWarmCache::Entry> warm_seeds(cores.size());
  if (options.warm_cache != nullptr) {
    for (size_t k = 0; k < cores.size(); ++k) {
      warm_keys[k] = milp_formulation_key(cores[k].lp, cores[k].integral);
      if (auto entry = options.warm_cache->lookup(warm_keys[k])) {
        warm_seeds[k] = *entry;
        trace::incr("extract/core_seed_hits", 1);
      }
    }
  }
  parallel_for(cores.size(), core_threads, [&](size_t k) {
    // Per-core solve span on the worker's lane (arg = core index) — the
    // per-thread view of how the component solves pack onto the pool.
    const trace::ScopedSpan core_span("extract/core", static_cast<int64_t>(k));
    Core& core = cores[k];
    MilpOptions milp_opt = milp_opt_base;
    // time_limit_s is a TOTAL extraction budget, as it was for the
    // monolithic path: each core gets what is left on the shared wall
    // clock when its solve starts, so queued cores cannot stack N full
    // budgets. A core starting at (or past) the deadline times out
    // immediately, keeping its warm-start incumbent if it has one.
    milp_opt.time_limit_s =
        std::max(0.0, options.time_limit_s - timer.seconds());
    // Oversized core: LP-relaxation + iterative-rounding fallback. Explore
    // only the B&B root node — root LP, vector dive, LP-guided rounding —
    // and keep the root LP bound as the gap certificate.
    if (fallback[k]) milp_opt.max_nodes = 1;
    // Weigh class-selection indicators by the cost their dichotomy puts in
    // play (see MilpOptions::branch_weight): selecting the class costs at
    // least its cheapest option, and 2x biases ties toward the class-level
    // split, which moves the bound where an option split only shuffles
    // mass between siblings.
    milp_opt.branch_weight.assign(core.lp.num_vars(), 0.0);
    for (int v = 0; v < core.lp.num_vars(); ++v)
      milp_opt.branch_weight[v] = 1.0 + std::abs(core.lp.objective[v]);
    for (uint32_t s : core.members) {
      if (core.class_var[s] < 0) continue;
      double cheapest = kInfCost;
      const int first = core.first_var[s];
      for (int v = first; v < first + core.var_count[s]; ++v)
        cheapest = std::min(cheapest, core.lp.objective[v]);
      milp_opt.branch_weight[core.class_var[s]] = 2.0 * (1.0 + cheapest);
    }
    // LP-guided rounding, mirroring the monolithic: per class the largest
    // fractional variable, DP choice as fallback, closed under dependencies.
    milp_opt.rounding = [&](const std::vector<double>& xfrac)
        -> std::optional<std::vector<double>> {
      auto choose_rounded = [&](uint32_t s) -> int {
        const int first = core.first_var[s];
        const int count = core.var_count[s];
        int best = -1;
        double best_value = 1e-6;
        for (int v = first; v < first + count; ++v) {
          if (xfrac[v] > best_value) {
            best_value = xfrac[v];
            best = v;
          }
        }
        if (best >= 0) return best;
        const ClassSlot& c = p.classes[s];
        if (c.collapsed) return first;
        if (c.dp_inc_choice < 0) return -1;
        int var = first;
        for (size_t j = 0; j < c.options.size(); ++j) {
          if (c.options[j].pruned) continue;
          if (static_cast<int32_t>(j) == c.dp_inc_choice) return var;
          ++var;
        }
        return -1;
      };
      return closure_to_x(p, core, options.cycle_constraints,
                          options.integer_topo_vars, scc_size, choose_rounded);
    };
    // AND-OR hitting-set cuts, separated at the B&B root (cut & branch).
    // The plain relaxation of a chained core decays geometrically: a parent
    // picked at eps only charges each child class eps of selection mass, so
    // depth-d classes contribute ~2^-d of their cost and the root LP bound
    // is nearly vacuous (observed 18.5 vs a 209.4 optimum on explored
    // BERT). Every feasible selection derives each forced anchor, and a
    // derivation through option o activates ALL of o's covered children —
    // so replacing a frontier class f by one covered child per live option
    // of f keeps the frontier a hitting set for every selection. Walking
    // the frontier toward minimum fractional mass finds the depth where the
    // decay hides, and `sum of S's selection vars >= 1` restores full unit
    // mass there. Valid for every integer point, independent of branching
    // bounds, so the strengthened best_bound stays a certificate.
    milp_opt.cut_generator = [&core, &p](const std::vector<double>& xfrac)
        -> std::vector<LinearProgram::Row> {
      auto class_mass = [&](uint32_t s) {
        double m = 0.0;
        const int first = core.first_var[s];
        for (int v = first; v < first + core.var_count[s]; ++v) m += xfrac[v];
        return m;
      };
      std::vector<LinearProgram::Row> cuts;
      std::set<std::vector<uint32_t>> emitted;
      for (uint32_t anchor : core.forced_members) {
        std::set<uint32_t> frontier{anchor};
        std::set<uint32_t> sticky;
        std::vector<std::vector<uint32_t>> snapshots;  // improving frontiers
        double best_mass = 1.0 - 1e-4;  // emit only strictly violated sets
        for (int step = 0; step < 4096; ++step) {
          double mass = 0.0;
          for (uint32_t s : frontier) mass += class_mass(s);
          if (mass < best_mass) {
            best_mass = mass;
            snapshots.emplace_back(frontier.begin(), frontier.end());
          }
          // Expand the heaviest non-sticky member one level down.
          bool found = false;
          uint32_t f = 0;
          double fm = -1.0;
          for (uint32_t s : frontier) {
            if (sticky.count(s)) continue;
            const double m = class_mass(s);
            if (m > fm) {
              fm = m;
              f = s;
              found = true;
            }
          }
          if (!found) break;
          const ClassSlot& c = p.classes[f];
          bool expandable = !c.collapsed;
          std::vector<uint32_t> chosen;
          for (size_t k = 0; expandable && k < c.options.size(); ++k) {
            if (c.options[k].pruned) continue;
            int32_t pick = -1;
            double pick_mass = kInfCost;
            for (uint32_t child : c.options[k].children) {
              const ClassSlot& w = p.classes[child];
              // Mirror the cover-row filter exactly: only children the LP
              // actually forces can extend the hitting set.
              if (w.removed || w.interior || w.free || w.forced) continue;
              const double m = frontier.count(child) ? 0.0 : class_mass(child);
              if (m < pick_mass - 1e-12) {
                pick_mass = m;
                pick = static_cast<int32_t>(child);
              }
            }
            if (pick < 0)
              expandable = false;  // uncovered option: cannot hit below f
            else
              chosen.push_back(static_cast<uint32_t>(pick));
          }
          if (!expandable ||
              (chosen.size() == 1 && chosen[0] == f)) {  // self-loop only
            sticky.insert(f);
            continue;
          }
          frontier.erase(f);
          for (uint32_t w : chosen) frontier.insert(w);
        }
        // Deepest (lowest-mass) snapshots first; a handful per anchor keeps
        // rounds few without flooding the LP with correlated rows. Wide
        // frontiers are dropped outright: a dense hitting-set row buys
        // little bound (its unit of mass spreads over many classes) and
        // costs every later solve dearly — LU fill-in from dense rows is
        // what turns warm node LPs from milliseconds into tenths.
        constexpr size_t kMaxCutWidth = 48;
        const size_t take = std::min<size_t>(snapshots.size(), 8);
        for (size_t i = snapshots.size() - take; i < snapshots.size(); ++i) {
          if (snapshots[i].size() > kMaxCutWidth) continue;
          if (!emitted.insert(snapshots[i]).second) continue;
          LinearProgram::Row row;
          for (uint32_t s : snapshots[i]) {
            // One term per class: the selection indicator where one exists
            // (same value as the option sum, by its equality row), else the
            // class's option variables.
            if (core.class_var[s] >= 0) {
              row.terms.emplace_back(core.class_var[s], 1.0);
            } else {
              for (int v = core.first_var[s];
                   v < core.first_var[s] + core.var_count[s]; ++v)
                row.terms.emplace_back(v, 1.0);
            }
          }
          row.lo = 1.0;
          row.hi = kInf;
          cuts.push_back(std::move(row));
        }
      }
      return cuts;
    };
    milp_opt.seed_basis = warm_seeds[k].basis;
    milp_opt.seed_pseudocost = warm_seeds[k].pseudocost;
    core.milp = solve_milp(core.lp, core.integral, milp_opt, core.warm);
  });
  if (options.warm_cache != nullptr) {
    for (size_t k = 0; k < cores.size(); ++k) {
      if (cores[k].milp.root_basis != nullptr ||
          cores[k].milp.pseudocost != nullptr)
        options.warm_cache->store(
            warm_keys[k],
            {cores[k].milp.root_basis, cores[k].milp.pseudocost});
    }
  }
  phase_mark("extract/solve");
  result.stats.solve_seconds = phase_timer.seconds();
  phase_timer.reset();

  // Aggregate solver outcomes: optimal only if every core proved optimal;
  // a core with an incumbent but no proof degrades the whole result to
  // feasible; no incumbent anywhere, or an infeasible core, fails it.
  result.milp_status = MilpStatus::kOptimal;
  double bound = p.base_cost;
  for (size_t k = 0; k < cores.size(); ++k) {
    const Core& core = cores[k];
    // A fallback core stops at its one-node budget, which the B&B reports
    // as timed_out; with an incumbent in hand that is the intended
    // bounded-gap outcome, not a failure, so it does not mark the
    // extraction timed out.
    const bool fallback_ok =
        fallback[k] && (core.milp.status == MilpStatus::kFeasible ||
                        core.milp.status == MilpStatus::kOptimal);
    result.timed_out =
        result.timed_out || (core.milp.timed_out && !fallback_ok);
    result.bb_nodes += core.milp.nodes_explored;
    result.lp_iterations += core.milp.lp_iterations;
    result.stats.warm_start_hits += core.milp.warm_start_hits;
    result.stats.refactorizations += core.milp.refactorizations;
    if (core.milp.status == MilpStatus::kInfeasible)
      result.milp_status = MilpStatus::kInfeasible;
    else if (core.milp.status == MilpStatus::kNoSolution &&
             result.milp_status != MilpStatus::kInfeasible)
      result.milp_status = MilpStatus::kNoSolution;
    else if (core.milp.status == MilpStatus::kFeasible &&
             result.milp_status == MilpStatus::kOptimal)
      result.milp_status = MilpStatus::kFeasible;
    bound += core.milp.best_bound;
  }
  result.best_bound = bound;
  result.solve_seconds = result.stats.solve_seconds;
  if (result.milp_status != MilpStatus::kOptimal &&
      result.milp_status != MilpStatus::kFeasible) {
    return result;
  }

  // ---- Stitch: per-core selections + DP expansions -> one Graph ----------
  std::unordered_map<Id, TNode> selection;
  for (const ClassSlot& c : p.classes) {
    if (!c.reachable) continue;
    if (c.removed && !c.collapsed) {
      for (const Option& o : c.options)
        if (!o.pruned) selection.emplace(c.id, *o.node);
    } else if (c.free) {
      selection.emplace(c.id, *c.options[c.free_choice].node);
    } else if (c.interior || (c.removed && c.collapsed)) {
      if (c.dp_inc_choice >= 0)
        selection.emplace(c.id, *c.options[c.dp_inc_choice].node);
    }
  }
  for (const Core& core : cores) {
    for (size_t v = 0; v < core.decision_vars.size(); ++v) {
      if (core.milp.x[v] <= 0.5) continue;
      const ClassSlot& c = p.classes[core.decision_vars[v]];
      const int32_t opt = core.decision_option[v];
      if (opt >= 0) {
        selection.emplace(c.id, *c.options[opt].node);
      } else if (c.dp_inc_choice >= 0) {  // selected pseudo-leaf
        selection.emplace(c.id, *c.options[c.dp_inc_choice].node);
      }
    }
  }
  auto graph = build_selected_graph(eg, eg.root(), selection);
  if (!graph.has_value()) {
    result.cyclic_selection = true;
    phase_mark("extract/stitch");
    result.stats.stitch_seconds = phase_timer.seconds();
    if (greedy.ok) {  // best known feasible solution, as in the monolithic
      result.graph = std::move(greedy.graph);
      result.cost = greedy.cost;
      result.ok = true;
      result.stats.gap =
          std::max(0.0, (result.cost - result.best_bound) /
                            std::max(std::abs(result.cost), 1e-12));
    }
    return result;
  }
  result.graph = std::move(*graph);
  result.graph.single_root();
  result.cost = graph_cost(result.graph, model);
  result.ok = true;
  result.stats.gap = std::max(0.0, (result.cost - result.best_bound) /
                                       std::max(std::abs(result.cost), 1e-12));
  phase_mark("extract/stitch");
  result.stats.stitch_seconds = phase_timer.seconds();
  return result;
}

}  // namespace tensat
