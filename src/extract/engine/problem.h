// The extraction engine's working representation of one extraction instance
// (extract/engine/engine.h is the front door). The reachable sub-e-graph is
// flattened into slot-indexed arrays — one ClassSlot per reachable e-class,
// one Option per unfiltered e-node — so every later pass (reductions, SCC
// condensation, tree-like collapse, per-core MILP assembly, stitching) is
// plain index arithmetic instead of hash-map chasing.
//
// Lifecycle: Problem::build() snapshots the e-graph; the reduction passes
// (reduce.h) prune options and mark classes forced/removed/collapsed/
// interior; the condensation (scc.h) fills scc/cyclic/component; the engine
// then assembles one MILP per component. The e-graph itself is never
// mutated and must outlive the Problem (Option::node points into it).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "cost/cost.h"
#include "egraph/egraph.h"

namespace tensat {
namespace exteng {

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();
inline constexpr uint32_t kNoSlot = UINT32_MAX;

/// One unfiltered e-node of a reachable class: its cost under the engine's
/// cost model and its distinct child class slots (canonicalized, sorted).
struct Option {
  const TNode* node{nullptr};
  double cost{0.0};
  std::vector<uint32_t> children;  // distinct child slots, sorted ascending
  bool pruned{false};
};

/// One reachable e-class. The boolean flags partition the classes by how the
/// engine disposes of them:
///   * removed   — forced constant: selected in every solution and down to a
///                 single live option; cost folded into Problem::base_cost.
///   * collapsed — tree-like pseudo-leaf: its whole subtree is exclusive and
///                 sharing-free, so exact bottom-up DP solves it; the MILP
///                 sees one variable of cost dp_cost and no child edges.
///   * free      — has a zero-cost option whose children are all free
///                 (bottom-up fixpoint, so cyclic derivations never qualify):
///                 selectable at will at zero cost, so it is dropped from the
///                 MILP and from parents' cover rows entirely. Generalizes
///                 the old free_class presolve to multi-e-node classes and
///                 shared parents.
///   * interior  — strictly inside some collapsed region; reconstructed from
///                 dp_choice during stitching, invisible to the MILP.
/// A class none of these apply to is a *core* class and gets one MILP
/// variable per live option.
struct ClassSlot {
  Id id{kInvalidId};               // canonical e-class id
  std::vector<Option> options;
  std::vector<uint32_t> parents;   // distinct slots referencing this class
  bool reachable{true};
  bool forced{false};
  bool removed{false};
  bool collapsed{false};
  bool free{false};
  bool interior{false};
  int32_t scc{-1};                 // SCC index in children-first order
  bool cyclic{false};              // member of a nontrivial SCC (or self-loop)
  int32_t component{-1};           // independent-subproblem index, -1 = none
  /// Full greedy best-subtree cost (sharing ignored): the infeasibility
  /// signal (kInfCost <=> unextractable) and the incumbent-prune bound.
  double dp_cost{kInfCost};
  int32_t dp_choice{-1};           // index into options attaining dp_cost
  /// Incremental best-subtree cost: like dp_cost but forced classes
  /// contribute 0 — they are selected (and paid) in every solution, so the
  /// cost of *additionally* selecting this class excludes them. This is the
  /// exact pseudo-leaf cost for collapsed tree-like regions.
  double dp_inc_cost{kInfCost};
  int32_t dp_inc_choice{-1};
  /// For free classes: the zero-cost option whose children are all free —
  /// the selection stitching expands (its closure stays inside the free set,
  /// which is acyclic by construction).
  int32_t free_choice{-1};
};

struct Problem {
  const EGraph* eg{nullptr};
  const CostModel* model{nullptr};
  std::vector<ClassSlot> classes;
  uint32_t root{0};
  /// Constant cost of the forced classes removed from the decision problem.
  double base_cost{0.0};

  /// Snapshots the sub-e-graph reachable from eg.root() through unfiltered
  /// e-nodes. The returned problem has parents and dp filled.
  static Problem build(const EGraph& eg, const CostModel& model);

  /// True for classes the MILP still has to decide about.
  [[nodiscard]] bool is_core(uint32_t s) const {
    const ClassSlot& c = classes[s];
    return c.reachable && !c.removed && !c.interior && !c.free;
  }

  /// Recomputes the parents index over live options of reachable classes.
  /// Edges into removed/interior classes are not indexed (they carry no
  /// constraints), edges into collapsed classes are.
  void recompute_parents();

  /// Worklist fixpoint of the greedy best-subtree DP over live options
  /// (sharing ignored, so dp_cost is an upper bound in general and exact on
  /// tree-like regions). Fills dp_cost/dp_choice for every reachable class.
  void recompute_dp();

  /// Re-marks reachability from the root after pruning: traversal follows
  /// live options (the single live option for removed classes). Classes no
  /// longer reachable are excluded from every later pass. Returns the number
  /// of classes that flipped to unreachable.
  size_t recompute_reachable();

  [[nodiscard]] size_t live_option_count(uint32_t s) const {
    size_t n = 0;
    for (const Option& o : classes[s].options)
      if (!o.pruned) ++n;
    return n;
  }
};

}  // namespace exteng
}  // namespace tensat
