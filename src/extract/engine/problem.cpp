#include "extract/engine/problem.h"

#include <algorithm>

namespace tensat {
namespace exteng {

Problem Problem::build(const EGraph& eg, const CostModel& model) {
  Problem p;
  p.eg = &eg;
  p.model = &model;

  // DFS the reachable classes; canonical ids are dense in [0, num_ids()),
  // so slot lookup is a flat array.
  std::vector<int32_t> slot(eg.num_ids(), -1);
  std::vector<Id> order;
  std::vector<Id> stack{eg.find(eg.root())};
  while (!stack.empty()) {
    const Id cls = stack.back();
    stack.pop_back();
    if (slot[cls] >= 0) continue;
    slot[cls] = static_cast<int32_t>(order.size());
    order.push_back(cls);
    for (const EClassNode& e : eg.eclass(cls).nodes) {
      if (e.filtered) continue;
      for (Id c : e.node.children) {
        const Id canon = eg.find(c);
        if (slot[canon] < 0) stack.push_back(canon);
      }
    }
  }

  p.classes.resize(order.size());
  p.root = 0;  // eg.root() is the DFS seed, so it lands in slot 0
  for (size_t s = 0; s < order.size(); ++s) {
    ClassSlot& cs = p.classes[s];
    cs.id = order[s];
    for (const EClassNode& e : eg.eclass(order[s]).nodes) {
      if (e.filtered) continue;
      Option o;
      o.node = &e.node;
      o.cost = enode_cost(eg, order[s], e.node, model);
      for (Id c : e.node.children) {
        const uint32_t child = static_cast<uint32_t>(slot[eg.find(c)]);
        o.children.push_back(child);
      }
      std::sort(o.children.begin(), o.children.end());
      o.children.erase(std::unique(o.children.begin(), o.children.end()),
                       o.children.end());
      cs.options.push_back(std::move(o));
    }
  }
  p.recompute_parents();
  p.recompute_dp();
  return p;
}

void Problem::recompute_parents() {
  for (ClassSlot& c : classes) c.parents.clear();
  for (size_t s = 0; s < classes.size(); ++s) {
    const ClassSlot& c = classes[s];
    if (!c.reachable || c.removed || c.interior || c.free) continue;
    for (const Option& o : c.options) {
      if (o.pruned) continue;
      for (uint32_t child : o.children) {
        const ClassSlot& w = classes[child];
        if (!w.reachable || w.removed || w.interior || w.free) continue;
        classes[child].parents.push_back(static_cast<uint32_t>(s));
      }
    }
  }
  for (ClassSlot& c : classes) {
    std::sort(c.parents.begin(), c.parents.end());
    c.parents.erase(std::unique(c.parents.begin(), c.parents.end()),
                    c.parents.end());
  }
}

void Problem::recompute_dp() {
  const size_t n = classes.size();
  for (ClassSlot& c : classes) {
    c.dp_cost = kInfCost;
    c.dp_choice = -1;
    c.dp_inc_cost = kInfCost;
    c.dp_inc_choice = -1;
  }
  // Parents over *all* live options (including removed classes — their
  // interior still needs DP values for stitching), independent of the
  // constraint-oriented parents index.
  std::vector<std::vector<uint32_t>> up(n);
  for (size_t s = 0; s < n; ++s) {
    if (!classes[s].reachable) continue;
    for (const Option& o : classes[s].options) {
      if (o.pruned) continue;
      for (uint32_t child : o.children) up[child].push_back(static_cast<uint32_t>(s));
    }
  }
  for (std::vector<uint32_t>& u : up) {
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
  }

  std::vector<char> queued(n, 0);
  std::vector<uint32_t> work;
  work.reserve(n);
  // Deepest-first seed: slots were assigned in root-first DFS order and the
  // worklist pops from the back, so pushing in slot order settles most
  // classes on their first evaluation.
  for (size_t s = 0; s < n; ++s) {
    if (!classes[s].reachable) continue;
    work.push_back(static_cast<uint32_t>(s));
    queued[s] = 1;
  }
  while (!work.empty()) {
    const uint32_t s = work.back();
    work.pop_back();
    queued[s] = 0;
    ClassSlot& c = classes[s];
    double best = kInfCost, best_inc = kInfCost;
    int32_t choice = -1, choice_inc = -1;
    for (size_t k = 0; k < c.options.size(); ++k) {
      const Option& o = c.options[k];
      if (o.pruned) continue;
      double total = o.cost, total_inc = o.cost;
      for (uint32_t child : o.children) {
        const ClassSlot& w = classes[child];
        if (total < kInfCost) {
          total = (w.dp_cost == kInfCost) ? kInfCost : total + w.dp_cost;
        }
        if (total_inc < kInfCost && !w.forced) {
          total_inc =
              (w.dp_inc_cost == kInfCost) ? kInfCost : total_inc + w.dp_inc_cost;
        }
      }
      if (total < best - 1e-12) {
        best = total;
        choice = static_cast<int32_t>(k);
      }
      if (total_inc < best_inc - 1e-12) {
        best_inc = total_inc;
        choice_inc = static_cast<int32_t>(k);
      }
    }
    bool improved = false;
    if (best < c.dp_cost - 1e-12) {
      c.dp_cost = best;
      c.dp_choice = choice;
      improved = true;
    }
    if (best_inc < c.dp_inc_cost - 1e-12) {
      c.dp_inc_cost = best_inc;
      c.dp_inc_choice = choice_inc;
      improved = true;
    }
    if (improved) {
      for (uint32_t parent : up[s]) {
        if (!queued[parent] && classes[parent].reachable) {
          queued[parent] = 1;
          work.push_back(parent);
        }
      }
    }
  }
}

size_t Problem::recompute_reachable() {
  const size_t n = classes.size();
  std::vector<char> seen(n, 0);
  std::vector<uint32_t> stack{root};
  seen[root] = 1;
  while (!stack.empty()) {
    const uint32_t s = stack.back();
    stack.pop_back();
    for (const Option& o : classes[s].options) {
      if (o.pruned) continue;
      for (uint32_t child : o.children) {
        if (!seen[child]) {
          seen[child] = 1;
          stack.push_back(child);
        }
      }
    }
  }
  size_t dropped = 0;
  for (size_t s = 0; s < n; ++s) {
    if (classes[s].reachable && !seen[s]) {
      classes[s].reachable = false;
      ++dropped;
    }
  }
  return dropped;
}

}  // namespace exteng
}  // namespace tensat
