// Dependency condensation for the extraction engine: Tarjan SCCs of the
// class-dependency graph (class -> child class through live e-nodes) and the
// split of the reduced problem into independent MILP components.
//
// Why SCCs matter (paper §5.1): the acyclicity constraints (4)-(5) exist to
// forbid cyclic selections, and any cycle of the selection is a cycle of the
// class graph, which lives entirely inside one strongly connected component.
// Cross-SCC edges can never close a cycle, so topological-order variables
// and their big-M rows are only emitted for classes of nontrivial SCCs —
// the "residual cyclic cores" the monolithic formulation paid for globally.
#pragma once

#include "extract/engine/problem.h"

namespace tensat {
namespace exteng {

/// Fills ClassSlot::scc and ClassSlot::cyclic for every core class. SCC
/// indices are assigned in Tarjan completion order, which is children-first:
/// iterating classes by ascending scc index visits the condensation in
/// reverse topological order. Edges considered: live options of core
/// classes to core child classes.
void condense_sccs(Problem& p);

/// Fills ClassSlot::component: connected components of the undirected view
/// of the core dependency graph. Two classes in different components share
/// no variable, no cover row, and no cost coupling (every class appearing in
/// both sub-MILPs would have to be connected to both), so their MILPs solve
/// independently and their objectives add. Returns the component count.
/// Components are numbered by the smallest member slot, so the numbering —
/// and with it the per-core solve order — is deterministic.
size_t assign_components(Problem& p);

}  // namespace exteng
}  // namespace tensat
