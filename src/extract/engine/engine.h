// The extraction engine (paper §5 at scale): a staged replacement for the
// monolithic "build one giant ILP over every reachable e-node, solve"
// extraction path, which mirrors the paper's >1-hour SCIP timeouts with a
// hard max_instance_nodes refusal. The engine instead runs
//
//   reach -> reduce -> condense -> per-core MILPs (parallel) -> stitch
//
//  1. Reduction passes (extract/engine/reduce.h): forced-choice propagation,
//     cost-dominance pruning, greedy-incumbent-bound pruning, infeasibility
//     propagation — exact presolve that typically removes most variables.
//  2. Dependency condensation (extract/engine/scc.h): Tarjan SCCs of the
//     class-dependency graph. Exclusive tree-like regions are solved exactly
//     by bottom-up DP and collapse to pseudo-leaves; the paper's acyclicity
//     constraints (4)-(5) are emitted only inside nontrivial SCCs; the
//     residual splits into independent components ("cores").
//  3. Per-core branch & bound (ilp/milp.h) over the support/parallel.h pool,
//     merged deterministically, then one stitched global selection.
//
// The monolithic path survives as ExtractEngineOptions::decompose = false —
// the differential oracle (tests/extract_test.cpp, tests/extract_fuzz_test
// .cpp pin exact-cost parity on every instance both paths solve), following
// the same convention as search_pattern_naive and staged_apply = false.
#pragma once

#include "extract/extract.h"

namespace tensat {

struct ExtractEngineOptions : IlpExtractOptions {
  /// True (default) runs the staged reduce/condense/per-core pipeline.
  /// False delegates to the monolithic extract_ilp — identical behavior to
  /// the pre-engine code path, kept as the differential baseline.
  bool decompose = true;
  /// Per-core budget on decision variables, replacing the monolithic
  /// max_instance_nodes (which the engine deliberately ignores when
  /// decomposing: the whole point is that total instance size no longer
  /// bounds what is solvable — only the largest residual core does).
  /// Cores over the budget are handled per lp_fallback.
  size_t max_core_nodes = 2600;
  /// Oversized cores (> max_core_nodes decision variables) are solved by
  /// the LP-relaxation + iterative-rounding fallback — a single B&B root
  /// node: root LP, vector dive, LP-guided rounding — returning a feasible
  /// selection with a certified gap (ExtractStats::gap) instead of a
  /// too_large refusal. false restores the refusal, the pre-fallback
  /// baseline.
  bool lp_fallback = true;
  /// Worker threads for the per-core MILP solves. 0 (default) = one per
  /// hardware thread, except that single-core or tiny instances solve on
  /// the calling thread (thread spawns would cost more than the solves);
  /// an explicit count is honored unconditionally. Any value produces the
  /// same result: cores are independent, each solve is deterministic, and
  /// results merge in core order.
  size_t core_threads = 0;
};

struct EngineExtractionResult : IlpExtractionResult {
  /// True when the decomposing pipeline ran (false = monolithic delegate).
  bool decomposed{false};
};

/// ILP extraction from the e-graph's root class through the engine.
/// Semantics match extract_ilp: greedy warm starts and fallbacks, timeout
/// and too-large reporting, cyclic-selection fallback; `stats` carries the
/// per-phase breakdown either way.
EngineExtractionResult extract_engine(const EGraph& eg, const CostModel& model,
                                      const ExtractEngineOptions& options = {});

}  // namespace tensat
