// The extraction engine (paper §5 at scale): a staged replacement for the
// monolithic "build one giant ILP over every reachable e-node, solve"
// extraction path, which mirrors the paper's >1-hour SCIP timeouts with a
// hard max_instance_nodes refusal. The engine instead runs
//
//   reach -> reduce -> condense -> per-core MILPs (parallel) -> stitch
//
//  1. Reduction passes (extract/engine/reduce.h): forced-choice propagation,
//     cost-dominance pruning, greedy-incumbent-bound pruning, infeasibility
//     propagation — exact presolve that typically removes most variables.
//  2. Dependency condensation (extract/engine/scc.h): Tarjan SCCs of the
//     class-dependency graph. Exclusive tree-like regions are solved exactly
//     by bottom-up DP and collapse to pseudo-leaves; the paper's acyclicity
//     constraints (4)-(5) are emitted only inside nontrivial SCCs; the
//     residual splits into independent components ("cores").
//  3. Per-core branch & bound (ilp/milp.h) over the support/parallel.h pool,
//     merged deterministically, then one stitched global selection.
//
// The monolithic path survives as ExtractEngineOptions::decompose = false —
// the differential oracle (tests/extract_test.cpp, tests/extract_fuzz_test
// .cpp pin exact-cost parity on every instance both paths solve), following
// the same convention as search_pattern_naive and staged_apply = false.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "extract/extract.h"
#include "ilp/milp.h"

namespace tensat {

/// Cross-request MILP warm-start cache (the service's PR-8 lever): root
/// basis + pseudocost snapshots of solved extraction cores, keyed by a
/// fingerprint of the core's exact LP formulation (rows, objective,
/// integrality — the invariants SparseBasis and PseudocostSnapshot need).
/// A repeated or perturbed request that reassembles an identical core LP
/// starts its solve from the previous root basis and branching history.
///
/// Thread-safe; bounded FIFO eviction. Snapshots only ever seed a solver
/// that re-validates them (dimension-checked warm load with cold fallback,
/// advisory pseudocosts), so a stale or colliding entry can at worst slow a
/// solve — never change its certified result.
class MilpWarmCache {
 public:
  struct Entry {
    std::shared_ptr<const SparseBasis> basis;
    std::shared_ptr<const PseudocostSnapshot> pseudocost;
  };

  explicit MilpWarmCache(size_t capacity = 512) : capacity_(capacity) {}

  /// Returns the stored entry for a formulation key, counting a hit/miss.
  std::optional<Entry> lookup(uint64_t key);
  /// Stores (or refreshes) the entry for a key, evicting FIFO past capacity.
  void store(uint64_t key, Entry entry);

  [[nodiscard]] size_t size() const;
  [[nodiscard]] uint64_t hits() const;
  [[nodiscard]] uint64_t misses() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::unordered_map<uint64_t, Entry> map_;
  std::deque<uint64_t> order_;  // insertion order, for FIFO eviction
  uint64_t hits_{0};
  uint64_t misses_{0};
};

/// Fingerprint of an LP formulation + integrality mask: equal keys for the
/// byte-equal formulations the snapshot contracts require. (Bounds are
/// EXCLUDED: a basis is valid across bound changes — that is the whole
/// warm-start design — so forced-assignment differences between requests
/// still share entries.)
uint64_t milp_formulation_key(const LinearProgram& lp,
                              const std::vector<bool>& integer_mask);

struct ExtractEngineOptions : IlpExtractOptions {
  /// True (default) runs the staged reduce/condense/per-core pipeline.
  /// False delegates to the monolithic extract_ilp — identical behavior to
  /// the pre-engine code path, kept as the differential baseline.
  bool decompose = true;
  /// Per-core budget on decision variables, replacing the monolithic
  /// max_instance_nodes (which the engine deliberately ignores when
  /// decomposing: the whole point is that total instance size no longer
  /// bounds what is solvable — only the largest residual core does).
  /// Cores over the budget are handled per lp_fallback.
  size_t max_core_nodes = 2600;
  /// Oversized cores (> max_core_nodes decision variables) are solved by
  /// the LP-relaxation + iterative-rounding fallback — a single B&B root
  /// node: root LP, vector dive, LP-guided rounding — returning a feasible
  /// selection with a certified gap (ExtractStats::gap) instead of a
  /// too_large refusal. false restores the refusal, the pre-fallback
  /// baseline.
  bool lp_fallback = true;
  /// Worker threads for the per-core MILP solves. 0 (default) = one per
  /// hardware thread, except that single-core or tiny instances solve on
  /// the calling thread (thread spawns would cost more than the solves);
  /// an explicit count is honored unconditionally. Any value produces the
  /// same result: cores are independent, each solve is deterministic, and
  /// results merge in core order.
  size_t core_threads = 0;
  /// Cross-request warm-start cache, shared and owned by the caller (the
  /// service wires one per OptimizationService). Lookups happen serially at
  /// core-assembly time and stores serially after all solves, so within one
  /// extraction the result is deterministic for a given cache state.
  /// nullptr (default) = no cross-request seeding.
  MilpWarmCache* warm_cache = nullptr;
};

struct EngineExtractionResult : IlpExtractionResult {
  /// True when the decomposing pipeline ran (false = monolithic delegate).
  bool decomposed{false};
};

/// ILP extraction from the e-graph's root class through the engine.
/// Semantics match extract_ilp: greedy warm starts and fallbacks, timeout
/// and too-large reporting, cyclic-selection fallback; `stats` carries the
/// per-phase breakdown either way.
EngineExtractionResult extract_engine(const EGraph& eg, const CostModel& model,
                                      const ExtractEngineOptions& options = {});

}  // namespace tensat
