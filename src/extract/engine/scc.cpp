#include "extract/engine/scc.h"

#include <algorithm>
#include <numeric>

namespace tensat {
namespace exteng {

void condense_sccs(Problem& p) {
  const size_t n = p.classes.size();
  for (ClassSlot& c : p.classes) {
    c.scc = -1;
    c.cyclic = false;
  }

  // Iterative Tarjan over core classes (collapsed classes are core until the
  // collapse pass runs; their subtrees are tree-shaped anyway).
  std::vector<int32_t> index(n, -1);
  std::vector<int32_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<uint32_t> scc_stack;
  int32_t next_index = 0;
  int32_t next_scc = 0;

  struct Frame {
    uint32_t slot;
    uint32_t option{0};
    uint32_t child{0};
  };
  std::vector<Frame> dfs;

  for (size_t start = 0; start < n; ++start) {
    if (!p.is_core(static_cast<uint32_t>(start)) || index[start] >= 0) continue;
    dfs.push_back(Frame{static_cast<uint32_t>(start)});
    index[start] = lowlink[start] = next_index++;
    scc_stack.push_back(static_cast<uint32_t>(start));
    on_stack[start] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const ClassSlot& c = p.classes[f.slot];
      // Advance to the next unvisited core child edge.
      bool descended = false;
      while (f.option < c.options.size()) {
        const Option& o = c.options[f.option];
        if (o.pruned || f.child >= o.children.size()) {
          ++f.option;
          f.child = 0;
          continue;
        }
        const uint32_t w = o.children[f.child++];
        if (!p.is_core(w)) continue;
        if (index[w] < 0) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back(Frame{w});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[f.slot] = std::min(lowlink[f.slot], index[w]);
      }
      if (descended) continue;
      // All edges done: pop, fold lowlink into the parent, emit the SCC.
      const uint32_t v = f.slot;
      dfs.pop_back();
      if (!dfs.empty())
        lowlink[dfs.back().slot] = std::min(lowlink[dfs.back().slot], lowlink[v]);
      if (lowlink[v] == index[v]) {
        std::vector<uint32_t> members;
        for (;;) {
          const uint32_t w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = 0;
          p.classes[w].scc = next_scc;
          members.push_back(w);
          if (w == v) break;
        }
        if (members.size() > 1) {
          for (uint32_t w : members) p.classes[w].cyclic = true;
        } else {
          // Trivial SCC: cyclic only with a self-loop.
          for (const Option& o : p.classes[members[0]].options) {
            if (o.pruned) continue;
            if (std::binary_search(o.children.begin(), o.children.end(), members[0]))
              p.classes[members[0]].cyclic = true;
          }
        }
        ++next_scc;
      }
    }
  }
}

size_t assign_components(Problem& p) {
  const size_t n = p.classes.size();
  for (ClassSlot& c : p.classes) c.component = -1;

  // Union-find over core classes through (undirected) dependency edges.
  std::vector<uint32_t> uf(n);
  std::iota(uf.begin(), uf.end(), 0);
  const auto find = [&](uint32_t a) {
    while (uf[a] != a) {
      uf[a] = uf[uf[a]];
      a = uf[a];
    }
    return a;
  };
  const auto unite = [&](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) uf[std::max(a, b)] = std::min(a, b);  // smallest slot is root
  };
  for (size_t s = 0; s < n; ++s) {
    if (!p.is_core(static_cast<uint32_t>(s))) continue;
    for (const Option& o : p.classes[s].options) {
      if (o.pruned) continue;
      for (uint32_t child : o.children) {
        if (!p.is_core(child)) continue;
        // Edges into forced classes carry no cover coupling: the child is
        // selected in every solution (its own component's "= 1" row pays for
        // it) and the cover row into it is vacuous. Intra-SCC edges still
        // couple — their topological-order rows (when cycle constraints are
        // on) tie the two classes' t variables together.
        const bool same_cycle =
            p.classes[child].cyclic && p.classes[child].scc == p.classes[s].scc;
        if (!p.classes[child].forced || same_cycle)
          unite(static_cast<uint32_t>(s), child);
      }
    }
  }

  // Number components by their smallest member slot (deterministic).
  size_t count = 0;
  std::vector<int32_t> component_of_root(n, -1);
  for (size_t s = 0; s < n; ++s) {
    if (!p.is_core(static_cast<uint32_t>(s))) continue;
    const uint32_t r = find(static_cast<uint32_t>(s));
    if (component_of_root[r] < 0) component_of_root[r] = static_cast<int32_t>(count++);
    p.classes[s].component = component_of_root[r];
  }
  return count;
}

}  // namespace exteng
}  // namespace tensat
