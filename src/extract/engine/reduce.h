// Reduction passes of the extraction engine: exact presolve that shrinks the
// decision problem before any MILP is assembled. Every pass preserves the
// optimal extraction cost (see docs/ARCHITECTURE.md for the soundness
// arguments); the differential oracle is the monolithic ILP
// (ExtractEngineOptions::decompose = false).
//
//  * Forced-choice propagation: the root is selected in every solution; a
//    class is forced when some forced parent's every live e-node references
//    it. Forced classes with a single live e-node are constants — their cost
//    folds into Problem::base_cost and they leave the MILP entirely.
//  * Cost-dominance pruning: within a class, an e-node whose distinct child
//    class set is a superset of a sibling's, at no lower cost, can never
//    appear in a cheapest solution — swapping in the sibling stays feasible
//    (it needs fewer children) and never costs more. Subsumes the old
//    equal-child-set grouping, and is safe under cycle constraints because
//    the swap only removes selection edges.
//  * Incumbent-bound pruning (off under cycle constraints): an e-node n is
//    pruned when a live sibling n' satisfies
//    cost(n') + sum over n''s children of their greedy DP bound <= cost(n):
//    any solution through n pays at least cost(n) for it, and can instead
//    take n' plus greedy subtrees for its children at a total of at most
//    that. The greedy solution seeds the bounds.
//  * Infeasibility propagation: a class with no finite DP value cannot be
//    extracted at all, so e-nodes referencing it are pruned (the cover rows
//    would have forced their variables to zero anyway).
//  * Tree-like collapse: a class is tree-like when it is acyclic and every
//    strict descendant has exactly one parent class. Such a subtree is
//    exclusive (no entry except through its top) and sharing-free, so the
//    greedy DP is *exact* on it: the top becomes a single pseudo-leaf
//    variable of cost dp_cost (cost 0 => dropped entirely), and the interior
//    is reconstructed from dp choices during stitching.
#pragma once

#include "extract/engine/problem.h"

namespace tensat {
namespace exteng {

struct ReduceOptions {
  /// Mirrors IlpExtractOptions::cycle_constraints: when the MILP must forbid
  /// cyclic selections, reductions that could change cycle structure
  /// (forced-constant removal of potentially-cyclic classes, incumbent-bound
  /// pruning) are skipped or gated on acyclicity.
  bool cycle_constraints = false;
};

struct ReduceStats {
  size_t classes_forced{0};      // removed as constants
  size_t nodes_pruned_dominated{0};
  size_t nodes_pruned_bound{0};
  size_t classes_free{0};        // zero-cost classes dropped entirely
  size_t classes_collapsed{0};   // tree-like pseudo-leaves
  size_t classes_interior{0};
  bool infeasible{false};        // no finite extraction of the root exists
};

/// Runs forced/dominance/incumbent/infeasibility passes to fixpoint.
/// Requires parents, dp, and SCC flags to be current; leaves parents and dp
/// recomputed for the reduced problem. Sets stats.infeasible (and stops)
/// when the root has no finite extraction. Accumulates into `stats` like
/// mark_free/collapse_treelike, so one ReduceStats collects all passes.
void reduce(Problem& p, const ReduceOptions& options, ReduceStats& stats);

/// Marks free classes: bottom-up fixpoint of "has a zero-cost live option
/// whose children are all free". A free class is selectable at will at zero
/// cost, so it needs no variable and no cover rows; its free_choice closure
/// is acyclic by construction (cyclic derivations never reach the fixpoint),
/// which keeps the removal sound under cycle constraints — the same argument
/// as the monolithic free_class presolve, generalized to multi-e-node
/// classes and shared parents. Run BEFORE reduce(): free-ness is structural,
/// and forced-constant removal of a zero-cost leaf would otherwise block the
/// tower above it from qualifying.
void mark_free(Problem& p, ReduceStats& stats);

/// Marks tree-like subtrees: tops become collapsed pseudo-leaves, interiors
/// leave the MILP. Requires mark_free(), reduce(), and condense_sccs() to
/// have run (dp values current, cyclic flags set).
void collapse_treelike(Problem& p, ReduceStats& stats);

}  // namespace exteng
}  // namespace tensat
