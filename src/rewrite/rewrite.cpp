#include "rewrite/rewrite.h"

#include <algorithm>
#include <unordered_set>

#include "support/check.h"

namespace tensat {

std::vector<Symbol> pattern_vars(const Graph& pat, Id id) {
  std::vector<Symbol> vars;
  std::unordered_set<Id> visited;
  std::vector<Id> stack{id};
  while (!stack.empty()) {
    const Id cur = stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) continue;
    const TNode& n = pat.node(cur);
    if (n.op == Op::kVar) {
      if (std::find(vars.begin(), vars.end(), n.str) == vars.end())
        vars.push_back(n.str);
    }
    for (Id c : n.children) stack.push_back(c);
  }
  return vars;
}

Rewrite make_rewrite(std::string name, std::string_view src, std::string_view dst,
                     RewriteCondition cond) {
  Rewrite r;
  r.name = std::move(name);
  r.src_roots = parse_all_into(r.pat, src);
  r.dst_roots = parse_all_into(r.pat, dst);
  TENSAT_CHECK(r.src_roots.size() == r.dst_roots.size(),
               "rewrite '" << r.name << "': source and target output counts differ");
  r.cond = std::move(cond);

  // Every target variable must be bound by some source pattern.
  std::unordered_set<uint32_t> bound;
  for (Id root : r.src_roots)
    for (Symbol v : pattern_vars(r.pat, root)) bound.insert(v.id());
  for (Id root : r.dst_roots)
    for (Symbol v : pattern_vars(r.pat, root))
      TENSAT_CHECK(bound.count(v.id()) > 0, "rewrite '" << r.name
                                                        << "': unbound target variable ?"
                                                        << v.str());
  return r;
}

}  // namespace tensat
