// Multi-pattern rewrite support (paper §4, Algorithm 1).
//
// Before exploration we canonicalize every source S-expr of every
// multi-pattern rule by renaming its variables in traversal order; patterns
// that differ only by variable names collapse to one canonical pattern. Each
// exploration iteration then runs the single-pattern search once per
// canonical pattern. For a multi-pattern rule the per-source match sets are
// combined into full-rule matches in one of two equivalent ways:
//
//  - the joint plan (default): the rule's sources compile into a single VM
//    program (ematch::compile_joint_pattern) that binds shared variables
//    once and prunes incompatible cross-pattern candidates during the
//    search, skipping the canonical-pattern search for multi-only patterns
//    entirely;
//  - the Cartesian-product join (cartesian_join below, paper Algorithm 1
//    lines 16-20): combine the de-canonicalized matches of the rule's
//    source patterns post hoc, keeping combinations that agree on shared
//    variables. Kept as the differential baseline the joint plan is tested
//    and benchmarked against (TensatOptions::joint_multi = false).
#pragma once

#include <string>
#include <vector>

#include "ematch/machine.h"
#include "ematch/program.h"
#include "rewrite/matcher.h"
#include "rewrite/rewrite.h"

namespace tensat {

/// A deduplicated canonical source pattern shared by one or more rules,
/// pre-compiled for the e-matching VM (searches reuse the program; the
/// pattern AST is kept for the naive reference matcher and diagnostics).
struct CanonicalPattern {
  Graph pat{GraphKind::kPattern};
  Id root{kInvalidId};
  std::string key;  // canonical S-expr (dedup key)
  ematch::Program program;
};

/// For one source S-expr of one rule: which canonical pattern to search, and
/// how to rename its variables back (canonical name -> original name).
struct SourceBinding {
  size_t pattern_index{0};
  std::vector<std::pair<Symbol, Symbol>> rename;
};

/// Search plan for a rule set: shared canonical patterns plus, per rule, the
/// bindings of each of its source S-exprs. Rules are indexed as given.
struct MultiPlan {
  std::vector<CanonicalPattern> patterns;
  std::vector<std::vector<SourceBinding>> rule_sources;
  /// Per rule: the joint search program over the rule's own source patterns
  /// (original variable names, one kScan-driven root register per source;
  /// see ematch::compile_joint_pattern). Only multi-pattern rules get one —
  /// is_joint() is false for the rest, which search through the shared
  /// canonical patterns above.
  std::vector<ematch::Program> joint_programs;
};

/// Canonicalizes the pattern rooted at `root` of `pat`: variables are renamed
/// to $0, $1, ... in DFS encounter order. Returns the canonical graph/root/key
/// and appends (canonical, original) pairs to `rename`.
CanonicalPattern canonicalize_pattern(const Graph& pat, Id root,
                                      std::vector<std::pair<Symbol, Symbol>>* rename);

/// Builds the shared search plan for `rules` (every rule, single- or
/// multi-pattern; single-pattern rules also benefit from the dedup).
MultiPlan build_multi_plan(const std::vector<Rewrite>& rules);

/// Renames a canonical-variable substitution back to a rule's original
/// variable names.
Subst decanonicalize(const Subst& subst,
                     const std::vector<std::pair<Symbol, Symbol>>& rename);

/// The Cartesian-product join baseline: every combination of one match per
/// source list whose substitutions agree on the variables they share, as
/// (roots, merged substitution) tuples. Enumeration order matches the
/// historical exploration loop (source 0 varies fastest). `max_results` 0 =
/// unlimited; `combos_tried`, when given, receives the number of tuples
/// examined including incompatible ones — the joint plan's saving is exactly
/// the gap between this and the result size.
std::vector<ematch::JointMatch> cartesian_join(
    const std::vector<std::vector<PatternMatch>>& per_source,
    size_t max_results = 0, size_t* combos_tried = nullptr);

}  // namespace tensat
