// Multi-pattern rewrite support (paper §4, Algorithm 1).
//
// Before exploration we canonicalize every source S-expr of every
// multi-pattern rule by renaming its variables in traversal order; patterns
// that differ only by variable names collapse to one canonical pattern. Each
// exploration iteration then runs the single-pattern search once per
// canonical pattern, and each rule combines (Cartesian product) the
// de-canonicalized matches of its source patterns, keeping the combinations
// that agree on shared variables.
#pragma once

#include <string>
#include <vector>

#include "ematch/program.h"
#include "rewrite/matcher.h"
#include "rewrite/rewrite.h"

namespace tensat {

/// A deduplicated canonical source pattern shared by one or more rules,
/// pre-compiled for the e-matching VM (searches reuse the program; the
/// pattern AST is kept for the naive reference matcher and diagnostics).
struct CanonicalPattern {
  Graph pat{GraphKind::kPattern};
  Id root{kInvalidId};
  std::string key;  // canonical S-expr (dedup key)
  ematch::Program program;
};

/// For one source S-expr of one rule: which canonical pattern to search, and
/// how to rename its variables back (canonical name -> original name).
struct SourceBinding {
  size_t pattern_index{0};
  std::vector<std::pair<Symbol, Symbol>> rename;
};

/// Search plan for a rule set: shared canonical patterns plus, per rule, the
/// bindings of each of its source S-exprs. Rules are indexed as given.
struct MultiPlan {
  std::vector<CanonicalPattern> patterns;
  std::vector<std::vector<SourceBinding>> rule_sources;
};

/// Canonicalizes the pattern rooted at `root` of `pat`: variables are renamed
/// to $0, $1, ... in DFS encounter order. Returns the canonical graph/root/key
/// and appends (canonical, original) pairs to `rename`.
CanonicalPattern canonicalize_pattern(const Graph& pat, Id root,
                                      std::vector<std::pair<Symbol, Symbol>>* rename);

/// Builds the shared search plan for `rules` (every rule, single- or
/// multi-pattern; single-pattern rules also benefit from the dedup).
MultiPlan build_multi_plan(const std::vector<Rewrite>& rules);

/// Renames a canonical-variable substitution back to a rule's original
/// variable names.
Subst decanonicalize(const Subst& subst,
                     const std::vector<std::pair<Symbol, Symbol>>& rename);

}  // namespace tensat
