// E-matching: finds all ways a pattern embeds in the e-graph. This is the
// "existing efficient search routine for single-pattern rewrites" that
// Algorithm 1 builds on; multi-pattern rules reuse it per source pattern and
// combine the results (see multi.h).
#pragma once

#include <vector>

#include "egraph/egraph.h"
#include "rewrite/rewrite.h"
#include "rewrite/subst.h"

namespace tensat {

struct SearchLimits {
  /// Cap on total substitutions returned by one search (safety valve against
  /// pathological pattern blowup). 0 = unlimited.
  size_t max_matches = 200000;
  /// Cap on matcher work (recursive match steps) per search. Backtracking
  /// can explode on dense e-classes even when few matches result; the search
  /// returns what it has when the budget runs out. 0 = unlimited.
  size_t max_steps = 2000000;
};

/// All matches of the pattern rooted at `pattern_root` anywhere in the
/// e-graph. Variables bind canonical e-class ids; filtered e-nodes are
/// treated as removed. The e-graph must be clean (rebuilt).
std::vector<PatternMatch> search_pattern(const EGraph& eg, const Graph& pat,
                                         Id pattern_root,
                                         const SearchLimits& limits = {});

/// Matches of the pattern against one specific e-class.
std::vector<Subst> match_class(const EGraph& eg, const Graph& pat, Id pattern_root,
                               Id class_id, const SearchLimits& limits = {});

/// Instantiates the pattern rooted at `root` into the e-graph under `subst`.
/// Returns the resulting e-class, or nullopt if any new node fails the shape
/// check (the paper's shape-checking gate on rewrites).
std::optional<Id> instantiate(EGraph& eg, const Graph& pat, Id root, const Subst& subst);

}  // namespace tensat
