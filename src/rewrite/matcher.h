// E-matching: finds all ways a pattern embeds in the e-graph. This is the
// "existing efficient search routine for single-pattern rewrites" that
// Algorithm 1 builds on; multi-pattern rules reuse it per source pattern and
// combine the results (see multi.h).
//
// The default entry points compile the pattern and execute it on the
// register VM of src/ematch (op-indexed candidate selection, flat
// instruction dispatch). The original recursive backtracker is kept as
// search_pattern_naive / match_class_naive — it is the reference oracle the
// VM is differentially tested against, and the baseline the e-matching
// benchmarks measure speedups over.
#pragma once

#include <vector>

#include "egraph/egraph.h"
#include "ematch/machine.h"
#include "rewrite/rewrite.h"
#include "rewrite/subst.h"

namespace tensat {

struct SearchLimits {
  /// Cap on total substitutions returned by one search (safety valve against
  /// pathological pattern blowup). 0 = unlimited.
  size_t max_matches = 200000;
  /// Cap on matcher work (match steps / e-nodes tried) per search.
  /// Backtracking can explode on dense e-classes even when few matches
  /// result; the search returns what it has when the budget runs out.
  /// 0 = unlimited.
  size_t max_steps = 2000000;
};

/// All matches of the pattern rooted at `pattern_root` anywhere in the
/// e-graph. Variables bind canonical e-class ids; filtered e-nodes are
/// treated as removed. The e-graph must be clean (rebuilt). Compiles the
/// pattern and runs the ematch VM; callers searching the same pattern
/// repeatedly should compile once and call ematch::search directly.
std::vector<PatternMatch> search_pattern(const EGraph& eg, const Graph& pat,
                                         Id pattern_root,
                                         const SearchLimits& limits = {});

/// Matches of the pattern against one specific e-class (via the ematch VM).
std::vector<Subst> match_class(const EGraph& eg, const Graph& pat, Id pattern_root,
                               Id class_id, const SearchLimits& limits = {});

/// The legacy recursive backtracking matcher, kept as a reference oracle for
/// differential testing and benchmarking. Semantically identical to
/// search_pattern (same matches, same multiplicities).
std::vector<PatternMatch> search_pattern_naive(const EGraph& eg, const Graph& pat,
                                               Id pattern_root,
                                               const SearchLimits& limits = {});

/// Reference-oracle counterpart of match_class.
std::vector<Subst> match_class_naive(const EGraph& eg, const Graph& pat,
                                     Id pattern_root, Id class_id,
                                     const SearchLimits& limits = {});

/// Instantiates the pattern rooted at `root` into the e-graph under `subst`.
/// Returns the resulting e-class, or nullopt if any new node fails the shape
/// check (the paper's shape-checking gate on rewrites).
///
/// This is the legacy direct path: it mutates the e-graph node by node. The
/// staged apply pipeline uses the plan/commit split below instead; the two
/// produce identical e-graphs (tests/apply_pipeline_test.cpp).
std::optional<Id> instantiate(EGraph& eg, const Graph& pat, Id root, const Subst& subst);

/// The plan half of instantiate(): shape-checks and hash-conses the target
/// nodes into `buf` against buf.egraph() (which must be clean) WITHOUT
/// mutating the e-graph. Returns the target id — a real e-class id when the
/// whole target already exists, otherwise a staged id (NodeBuffer::is_staged)
/// — or nullopt on shape-check failure. Committing the returned id
/// (NodeBuffer::commit) yields exactly what the direct instantiate() would
/// have produced.
std::optional<Id> plan_instantiate(NodeBuffer& buf, const Graph& pat, Id root,
                                   const Subst& subst);

/// Allocation-light overload for hot loops (the apply pipeline plans every
/// pending application through this): `memo` is the pattern-id -> planned-id
/// scratch, resized and reset internally, reusable across calls.
std::optional<Id> plan_instantiate(NodeBuffer& buf, const Graph& pat, Id root,
                                   const Subst& subst, std::vector<Id>& memo);

}  // namespace tensat
