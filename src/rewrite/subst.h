// Variable bindings produced by pattern matching. In the e-graph matcher a
// variable binds an e-class id; in the concrete-graph matcher (TASO baseline)
// it binds a node id. The container is shared.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "lang/node.h"
#include "support/symbol.h"

namespace tensat {

class Subst {
 public:
  /// Binds var -> id. Returns false iff var is already bound to a different id.
  bool bind(Symbol var, Id id) {
    for (auto& [v, existing] : bindings_) {
      if (v == var) return existing == id;
    }
    bindings_.emplace_back(var, id);
    return true;
  }

  [[nodiscard]] std::optional<Id> get(Symbol var) const {
    for (const auto& [v, id] : bindings_) {
      if (v == var) return id;
    }
    return std::nullopt;
  }

  [[nodiscard]] const std::vector<std::pair<Symbol, Id>>& bindings() const {
    return bindings_;
  }

  /// Union of two substitutions; nullopt if they disagree on a shared var.
  static std::optional<Subst> merged(const Subst& a, const Subst& b) {
    Subst out = a;
    for (const auto& [v, id] : b.bindings_) {
      if (!out.bind(v, id)) return std::nullopt;
    }
    return out;
  }

 private:
  std::vector<std::pair<Symbol, Id>> bindings_;
};

/// One pattern match: the e-class (or concrete node) the pattern root matched,
/// plus the variable bindings.
struct PatternMatch {
  Id root;
  Subst subst;
};

}  // namespace tensat
