#include "rewrite/multi.h"

#include <unordered_map>

#include "support/check.h"

namespace tensat {
namespace {

/// Copies the subgraph rooted at `id` from `src` into `dst`, renaming
/// variables via `var_map` (filled on first encounter, DFS child order).
Id copy_renamed(const Graph& src, Id id, Graph& dst,
                std::unordered_map<uint32_t, Symbol>& var_map,
                std::vector<std::pair<Symbol, Symbol>>* rename) {
  const TNode& n = src.node(id);
  if (n.op == Op::kVar) {
    auto it = var_map.find(n.str.id());
    if (it == var_map.end()) {
      const Symbol canon("$" + std::to_string(var_map.size()));
      it = var_map.emplace(n.str.id(), canon).first;
      if (rename) rename->emplace_back(canon, n.str);
    }
    return dst.add(make_var(it->second));
  }
  TNode out{n.op, n.num, n.str, {}};
  out.children.reserve(n.children.size());
  for (Id c : n.children)
    out.children.push_back(copy_renamed(src, c, dst, var_map, rename));
  return dst.add(std::move(out));
}

}  // namespace

CanonicalPattern canonicalize_pattern(const Graph& pat, Id root,
                                      std::vector<std::pair<Symbol, Symbol>>* rename) {
  CanonicalPattern out;
  std::unordered_map<uint32_t, Symbol> var_map;
  out.root = copy_renamed(pat, root, out.pat, var_map, rename);
  out.key = out.pat.to_sexpr(out.root);
  out.program = ematch::compile_pattern(out.pat, out.root);
  return out;
}

MultiPlan build_multi_plan(const std::vector<Rewrite>& rules) {
  MultiPlan plan;
  std::unordered_map<std::string, size_t> by_key;
  plan.rule_sources.resize(rules.size());
  plan.joint_programs.resize(rules.size());
  for (size_t r = 0; r < rules.size(); ++r) {
    for (Id src_root : rules[r].src_roots) {
      SourceBinding binding;
      CanonicalPattern canon =
          canonicalize_pattern(rules[r].pat, src_root, &binding.rename);
      auto [it, inserted] = by_key.emplace(canon.key, plan.patterns.size());
      if (inserted) plan.patterns.push_back(std::move(canon));
      binding.pattern_index = it->second;
      plan.rule_sources[r].push_back(std::move(binding));
    }
    if (rules[r].is_multi())
      plan.joint_programs[r] =
          ematch::compile_joint_pattern(rules[r].pat, rules[r].src_roots);
  }
  return plan;
}

Subst decanonicalize(const Subst& subst,
                     const std::vector<std::pair<Symbol, Symbol>>& rename) {
  Subst out;
  for (const auto& [canon, original] : rename) {
    auto bound = subst.get(canon);
    TENSAT_CHECK(bound.has_value(), "decanonicalize: missing binding for " << canon.str());
    TENSAT_CHECK(out.bind(original, *bound), "decanonicalize: conflicting binding");
  }
  return out;
}

std::vector<ematch::JointMatch> cartesian_join(
    const std::vector<std::vector<PatternMatch>>& per_source, size_t max_results,
    size_t* combos_tried) {
  std::vector<ematch::JointMatch> out;
  if (combos_tried) *combos_tried = 0;
  for (const std::vector<PatternMatch>& list : per_source)
    if (list.empty()) return out;

  std::vector<size_t> idx(per_source.size(), 0);
  for (;;) {
    if (combos_tried) ++*combos_tried;
    ematch::JointMatch jm;
    std::optional<Subst> combined = Subst{};
    for (size_t k = 0; k < per_source.size() && combined; ++k) {
      const PatternMatch& m = per_source[k][idx[k]];
      jm.roots.push_back(m.root);
      combined = Subst::merged(*combined, m.subst);
    }
    if (combined.has_value()) {
      jm.subst = std::move(*combined);
      out.push_back(std::move(jm));
      if (max_results != 0 && out.size() >= max_results) return out;
    }
    size_t k = 0;
    while (k < idx.size()) {
      if (++idx[k] < per_source[k].size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == idx.size()) return out;
  }
}

}  // namespace tensat
