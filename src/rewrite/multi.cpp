#include "rewrite/multi.h"

#include <unordered_map>

#include "support/check.h"

namespace tensat {
namespace {

/// Copies the subgraph rooted at `id` from `src` into `dst`, renaming
/// variables via `var_map` (filled on first encounter, DFS child order).
Id copy_renamed(const Graph& src, Id id, Graph& dst,
                std::unordered_map<uint32_t, Symbol>& var_map,
                std::vector<std::pair<Symbol, Symbol>>* rename) {
  const TNode& n = src.node(id);
  if (n.op == Op::kVar) {
    auto it = var_map.find(n.str.id());
    if (it == var_map.end()) {
      const Symbol canon("$" + std::to_string(var_map.size()));
      it = var_map.emplace(n.str.id(), canon).first;
      if (rename) rename->emplace_back(canon, n.str);
    }
    return dst.add(make_var(it->second));
  }
  TNode out{n.op, n.num, n.str, {}};
  out.children.reserve(n.children.size());
  for (Id c : n.children)
    out.children.push_back(copy_renamed(src, c, dst, var_map, rename));
  return dst.add(std::move(out));
}

}  // namespace

CanonicalPattern canonicalize_pattern(const Graph& pat, Id root,
                                      std::vector<std::pair<Symbol, Symbol>>* rename) {
  CanonicalPattern out;
  std::unordered_map<uint32_t, Symbol> var_map;
  out.root = copy_renamed(pat, root, out.pat, var_map, rename);
  out.key = out.pat.to_sexpr(out.root);
  out.program = ematch::compile_pattern(out.pat, out.root);
  return out;
}

MultiPlan build_multi_plan(const std::vector<Rewrite>& rules) {
  MultiPlan plan;
  std::unordered_map<std::string, size_t> by_key;
  plan.rule_sources.resize(rules.size());
  for (size_t r = 0; r < rules.size(); ++r) {
    for (Id src_root : rules[r].src_roots) {
      SourceBinding binding;
      CanonicalPattern canon =
          canonicalize_pattern(rules[r].pat, src_root, &binding.rename);
      auto [it, inserted] = by_key.emplace(canon.key, plan.patterns.size());
      if (inserted) plan.patterns.push_back(std::move(canon));
      binding.pattern_index = it->second;
      plan.rule_sources[r].push_back(std::move(binding));
    }
  }
  return plan;
}

Subst decanonicalize(const Subst& subst,
                     const std::vector<std::pair<Symbol, Symbol>>& rename) {
  Subst out;
  for (const auto& [canon, original] : rename) {
    auto bound = subst.get(canon);
    TENSAT_CHECK(bound.has_value(), "decanonicalize: missing binding for " << canon.str());
    TENSAT_CHECK(out.bind(original, *bound), "decanonicalize: conflicting binding");
  }
  return out;
}

}  // namespace tensat
