// Rewrite rules (paper §3.2). A rule's source and target are patterns — DAGs
// with kVar leaves. Single-pattern rules have one matched output; multi-
// pattern rules (paper Fig. 2) have several, each source root paired with
// the target root at the same index.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/graph.h"
#include "lang/parse.h"
#include "rewrite/subst.h"

namespace tensat {

/// Resolves a pattern variable to the ValueInfo of whatever it is bound to.
using InfoLookup = std::function<const ValueInfo&(Symbol)>;

/// An extra semantic precondition beyond the syntactic match and the shape
/// check (e.g. "this convolution is not grouped"). Evaluated on the matched
/// variables' value infos; shared between the e-graph and the TASO matcher.
using RewriteCondition = std::function<bool(const InfoLookup&)>;

struct Rewrite {
  std::string name;
  Graph pat{GraphKind::kPattern};   // holds both source and target patterns
  std::vector<Id> src_roots;        // one per matched output
  std::vector<Id> dst_roots;        // paired with src_roots by index
  RewriteCondition cond;            // optional; empty = always true
  /// False for rules whose target uses operators the reference interpreter
  /// cannot evaluate (currently: merge); they are excluded from the numeric
  /// soundness property tests but still shape-validated.
  bool numeric_checkable = true;

  [[nodiscard]] bool is_multi() const { return src_roots.size() > 1; }
  [[nodiscard]] bool check_cond(const InfoLookup& lookup) const {
    return !cond || cond(lookup);
  }
};

/// Builds a rule from whitespace-separated source / target S-expressions
/// (equal counts; target variables must be bound by the source).
Rewrite make_rewrite(std::string name, std::string_view src, std::string_view dst,
                     RewriteCondition cond = nullptr);

/// Variables appearing in the subgraph rooted at `id`.
std::vector<Symbol> pattern_vars(const Graph& pat, Id id);

}  // namespace tensat
