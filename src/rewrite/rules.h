// The rewrite-rule set. The paper runs TENSAT with TASO's generated rules;
// we hand-write the verified rule families those rules cover (see DESIGN.md
// §3): elementwise algebra, matmul algebra and activation fusion, transpose
// algebra, concat/split algebra including the fused-operator rules the
// paper's appendix highlights (Figs. 8-11), convolution merging (output
// channels, input channels, batch, kernel enlarging, group merging), and the
// multi-pattern rules that introduce merged operators for operators that
// share an operand (paper Fig. 2).
//
// Every rule is numerically validated against the reference interpreter by
// tests/rules_soundness_test.cpp except those marked !numeric_checkable.
#pragma once

#include <vector>

#include "rewrite/rewrite.h"

namespace tensat {

/// The full default rule set (single- and multi-pattern, both directions
/// where well-formed).
const std::vector<Rewrite>& default_rules();

/// Only the single-pattern subset of default_rules().
std::vector<Rewrite> single_pattern_rules();

/// Only the multi-pattern subset of default_rules().
std::vector<Rewrite> multi_pattern_rules();

}  // namespace tensat
