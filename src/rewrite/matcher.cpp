#include "rewrite/matcher.h"

#include <unordered_map>

#include "support/check.h"

namespace tensat {
namespace {

struct Matcher {
  const EGraph& eg;
  const Graph& pat;
  size_t budget;
  size_t steps_left;

  /// Extends each subst in `in` with matches of pattern node `pid` against
  /// e-class `cls`; appends results to `out`.
  void match_node(Id pid, Id cls, const std::vector<Subst>& in,
                  std::vector<Subst>& out) {
    if (steps_left == 0) return;
    --steps_left;
    cls = eg.find(cls);
    const TNode& p = pat.node(pid);
    switch (p.op) {
      case Op::kVar: {
        for (const Subst& s : in) {
          Subst next = s;
          if (next.bind(p.str, cls) && out.size() < budget) out.push_back(std::move(next));
        }
        return;
      }
      case Op::kNum: {
        const ValueInfo& d = eg.data(cls);
        if (d.kind == VKind::kNum && d.num == p.num)
          for (const Subst& s : in)
            if (out.size() < budget) out.push_back(s);
        return;
      }
      case Op::kStr: {
        const ValueInfo& d = eg.data(cls);
        if (d.kind == VKind::kStr && d.str == p.str)
          for (const Subst& s : in)
            if (out.size() < budget) out.push_back(s);
        return;
      }
      default:
        break;
    }
    // Operator pattern: try every (unfiltered) e-node of the class with the
    // same operator; children constrain the substitution left to right.
    for (const EClassNode& entry : eg.eclass(cls).nodes) {
      if (entry.filtered || entry.node.op != p.op) continue;
      std::vector<Subst> current = in;
      for (size_t i = 0; i < p.children.size() && !current.empty(); ++i) {
        std::vector<Subst> next;
        match_node(p.children[i], entry.node.children[i], current, next);
        current = std::move(next);
      }
      for (Subst& s : current)
        if (out.size() < budget) out.push_back(std::move(s));
    }
  }
};

}  // namespace

std::vector<Subst> match_class_naive(const EGraph& eg, const Graph& pat,
                                     Id pattern_root, Id class_id,
                                     const SearchLimits& limits) {
  Matcher m{eg, pat, limits.max_matches == 0 ? SIZE_MAX : limits.max_matches,
            limits.max_steps == 0 ? SIZE_MAX : limits.max_steps};
  std::vector<Subst> out;
  m.match_node(pattern_root, class_id, {Subst{}}, out);
  return out;
}

std::vector<PatternMatch> search_pattern_naive(const EGraph& eg, const Graph& pat,
                                               Id pattern_root,
                                               const SearchLimits& limits) {
  std::vector<PatternMatch> matches;
  const size_t budget = limits.max_matches == 0 ? SIZE_MAX : limits.max_matches;
  Matcher m{eg, pat, budget,
            limits.max_steps == 0 ? SIZE_MAX : limits.max_steps};
  for (Id cls : eg.canonical_classes()) {
    if (matches.size() >= budget || m.steps_left == 0) break;
    std::vector<Subst> found;
    m.match_node(pattern_root, cls, {Subst{}}, found);
    for (Subst& s : found) {
      if (matches.size() >= budget) break;
      matches.push_back(PatternMatch{cls, std::move(s)});
    }
  }
  return matches;
}

std::vector<Subst> match_class(const EGraph& eg, const Graph& pat, Id pattern_root,
                               Id class_id, const SearchLimits& limits) {
  const ematch::Program prog = ematch::compile_pattern(pat, pattern_root);
  return ematch::match_class(eg, prog, class_id,
                             ematch::MatchLimits{limits.max_matches, limits.max_steps});
}

std::vector<PatternMatch> search_pattern(const EGraph& eg, const Graph& pat,
                                         Id pattern_root, const SearchLimits& limits) {
  const ematch::Program prog = ematch::compile_pattern(pat, pattern_root);
  return ematch::search(eg, prog,
                        ematch::MatchLimits{limits.max_matches, limits.max_steps});
}

std::optional<Id> instantiate(EGraph& eg, const Graph& pat, Id root, const Subst& subst) {
  std::unordered_map<Id, Id> memo;  // pattern id -> e-class id
  // Recursive lambda via explicit stack-free recursion (patterns are small).
  std::function<std::optional<Id>(Id)> go = [&](Id pid) -> std::optional<Id> {
    auto it = memo.find(pid);
    if (it != memo.end()) return it->second;
    const TNode& p = pat.node(pid);
    std::optional<Id> result;
    if (p.op == Op::kVar) {
      auto bound = subst.get(p.str);
      TENSAT_CHECK(bound.has_value(), "instantiate: unbound variable ?" << p.str.str());
      result = eg.find(*bound);
    } else {
      TNode node{p.op, p.num, p.str, {}};
      node.children.reserve(p.children.size());
      for (Id c : p.children) {
        auto child = go(c);
        if (!child) return std::nullopt;
        node.children.push_back(*child);
      }
      result = eg.try_add(std::move(node));
      if (!result) return std::nullopt;
    }
    memo.emplace(pid, *result);
    return result;
  };
  return go(root);
}

namespace {

/// Recursive planner over the pattern DAG; `memo` is a flat pattern-id ->
/// planned-id table (kInvalidId = unset; staged ids start at -2 so they
/// never alias the sentinel). No per-call allocation beyond the staged node.
struct Planner {
  NodeBuffer& buf;
  const EGraph& eg;
  const Graph& pat;
  const Subst& subst;
  std::vector<Id>& memo;
  bool failed{false};

  Id go(Id pid) {
    if (memo[pid] != kInvalidId) return memo[pid];
    const TNode& p = pat.node(pid);
    Id result = kInvalidId;
    if (p.op == Op::kVar) {
      auto bound = subst.get(p.str);
      TENSAT_CHECK(bound.has_value(),
                   "plan_instantiate: unbound variable ?" << p.str.str());
      result = eg.find(*bound);
    } else {
      TNode node{p.op, p.num, p.str, {}};
      node.children.reserve(p.children.size());
      for (Id c : p.children) {
        const Id child = go(c);
        if (failed) return kInvalidId;
        node.children.push_back(child);
      }
      auto staged = buf.stage(std::move(node));
      if (!staged.has_value()) {
        failed = true;
        return kInvalidId;
      }
      result = *staged;
    }
    memo[pid] = result;
    return result;
  }
};

}  // namespace

std::optional<Id> plan_instantiate(NodeBuffer& buf, const Graph& pat, Id root,
                                   const Subst& subst, std::vector<Id>& memo) {
  memo.assign(pat.size(), kInvalidId);
  Planner planner{buf, buf.egraph(), pat, subst, memo, false};
  const Id out = planner.go(root);
  if (planner.failed) return std::nullopt;
  return out;
}

std::optional<Id> plan_instantiate(NodeBuffer& buf, const Graph& pat, Id root,
                                   const Subst& subst) {
  std::vector<Id> memo;
  return plan_instantiate(buf, pat, root, subst, memo);
}

}  // namespace tensat
