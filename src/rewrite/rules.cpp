#include "rewrite/rules.h"

namespace tensat {
namespace {

/// Precondition: the convolution consuming (?x, ?w) is not grouped, i.e. the
/// weight's per-group input channels equal the input's channels. Used by the
/// rules that merge convolutions over channel axes, which are unsound for
/// grouped convolutions.
RewriteCondition not_grouped(const char* x, const char* w) {
  const Symbol xs(x), ws(w);
  return [xs, ws](const InfoLookup& info) {
    const ValueInfo& xi = info(xs);
    const ValueInfo& wi = info(ws);
    return xi.kind == VKind::kTensor && wi.kind == VKind::kTensor && xi.rank() == 4 &&
           wi.rank() == 4 && xi.shape[1] == wi.shape[1];
  };
}

/// Precondition: the convolution of (?x, ?w) has an even number of groups
/// greater than one (so merging every 2 groups is possible).
RewriteCondition groups_even(const char* x, const char* w) {
  const Symbol xs(x), ws(w);
  return [xs, ws](const InfoLookup& info) {
    const ValueInfo& xi = info(xs);
    const ValueInfo& wi = info(ws);
    if (xi.kind != VKind::kTensor || wi.kind != VKind::kTensor || xi.rank() != 4 ||
        wi.rank() != 4)
      return false;
    if (wi.shape[1] <= 0 || xi.shape[1] % wi.shape[1] != 0) return false;
    const int32_t groups = xi.shape[1] / wi.shape[1];
    return groups > 1 && groups % 2 == 0;
  };
}

RewriteCondition all_of(RewriteCondition a, RewriteCondition b) {
  return [a = std::move(a), b = std::move(b)](const InfoLookup& info) {
    return a(info) && b(info);
  };
}

struct RuleBuilder {
  std::vector<Rewrite> rules;

  void uni(const char* name, const char* src, const char* dst,
           RewriteCondition cond = nullptr, bool numeric = true) {
    Rewrite r = make_rewrite(name, src, dst, std::move(cond));
    r.numeric_checkable = numeric;
    rules.push_back(std::move(r));
  }

  /// Adds both directions; the condition applies to both.
  void bidi(const char* name, const char* a, const char* b,
            RewriteCondition cond = nullptr, bool numeric = true) {
    uni((std::string(name) + "-fwd").c_str(), a, b, cond, numeric);
    uni((std::string(name) + "-rev").c_str(), b, a, cond, numeric);
  }

  void uni(const std::string& name, const char* src, const char* dst,
           RewriteCondition cond = nullptr, bool numeric = true) {
    uni(name.c_str(), src, dst, std::move(cond), numeric);
  }
};

std::vector<Rewrite> build_default_rules() {
  RuleBuilder b;

  // ---- Elementwise algebra -------------------------------------------------
  b.uni("ewadd-comm", "(ewadd ?a ?b)", "(ewadd ?b ?a)");
  b.bidi("ewadd-assoc", "(ewadd (ewadd ?a ?b) ?c)", "(ewadd ?a (ewadd ?b ?c))");
  b.uni("ewmul-comm", "(ewmul ?a ?b)", "(ewmul ?b ?a)");
  b.bidi("ewmul-assoc", "(ewmul (ewmul ?a ?b) ?c)", "(ewmul ?a (ewmul ?b ?c))");
  b.bidi("mul-distributes-over-add", "(ewmul (ewadd ?a ?b) ?c)",
         "(ewadd (ewmul ?a ?c) (ewmul ?b ?c))");

  // ---- Matmul algebra and activation fusion -------------------------------
  b.bidi("matmul-assoc", "(matmul ?act ?a (matmul 0 ?b ?c))",
         "(matmul ?act (matmul 0 ?a ?b) ?c)");
  b.bidi("matmul-linear-rhs", "(matmul 0 ?a (ewadd ?b ?c))",
         "(ewadd (matmul 0 ?a ?b) (matmul 0 ?a ?c))");
  b.bidi("matmul-linear-lhs", "(matmul 0 (ewadd ?a ?b) ?c)",
         "(ewadd (matmul 0 ?a ?c) (matmul 0 ?b ?c))");
  b.bidi("relu-into-matmul", "(relu (matmul 0 ?a ?b))", "(matmul 1 ?a ?b)");
  b.bidi("tanh-into-matmul", "(tanh (matmul 0 ?a ?b))", "(matmul 2 ?a ?b)");
  b.bidi("sigmoid-into-matmul", "(sigmoid (matmul 0 ?a ?b))", "(matmul 3 ?a ?b)");
  b.bidi("relu-into-conv", "(relu (conv ?sh ?sw ?p 0 ?x ?w))",
         "(conv ?sh ?sw ?p 1 ?x ?w)");
  b.uni("relu-idempotent", "(relu (relu ?x))", "(relu ?x)");

  // ---- Transpose algebra ---------------------------------------------------
  b.uni("transpose-involution", "(transpose (transpose ?x 1_0) 1_0)", "?x");
  b.bidi("transpose-of-matmul", "(transpose (matmul ?act ?a ?b) 1_0)",
         "(matmul ?act (transpose ?b 1_0) (transpose ?a 1_0))");
  b.bidi("transpose-of-ewadd", "(transpose (ewadd ?a ?b) ?p)",
         "(ewadd (transpose ?a ?p) (transpose ?b ?p))");
  b.bidi("transpose-of-ewmul", "(transpose (ewmul ?a ?b) ?p)",
         "(ewmul (transpose ?a ?p) (transpose ?b ?p))");
  b.bidi("relu-transpose-commute", "(relu (transpose ?x ?p))",
         "(transpose (relu ?x) ?p)");

  // ---- Concat / split algebra ----------------------------------------------
  b.uni("split0-of-concat", "(split0 (split ?ax (concat2 ?ax ?a ?b)))", "?a");
  b.uni("split1-of-concat", "(split1 (split ?ax (concat2 ?ax ?a ?b)))", "?b");
  b.uni("concat-of-split",
        "(concat2 ?ax (split0 (split ?ax ?t)) (split1 (split ?ax ?t)))", "?t");
  b.bidi("concat-of-relu", "(concat2 ?ax (relu ?a) (relu ?b))",
         "(relu (concat2 ?ax ?a ?b))");
  b.bidi("concat-of-tanh", "(concat2 ?ax (tanh ?a) (tanh ?b))",
         "(tanh (concat2 ?ax ?a ?b))");
  b.bidi("concat-of-sigmoid", "(concat2 ?ax (sigmoid ?a) (sigmoid ?b))",
         "(sigmoid (concat2 ?ax ?a ?b))");
  b.bidi("concat-of-ewadd", "(concat2 ?ax (ewadd ?a ?b) (ewadd ?c ?d))",
         "(ewadd (concat2 ?ax ?a ?c) (concat2 ?ax ?b ?d))");
  b.bidi("concat-of-ewmul", "(concat2 ?ax (ewmul ?a ?b) (ewmul ?c ?d))",
         "(ewmul (concat2 ?ax ?a ?c) (concat2 ?ax ?b ?d))");

  // Merging matmuls that share an operand, via concat (single-output forms;
  // the two-output forms are the multi-pattern rules below). Axis variants
  // cover rank-2 and rank-3 operands; the shape check kills the wrong one.
  b.bidi("matmul-concat-cols", "(concat2 1 (matmul ?act ?a ?b) (matmul ?act ?a ?c))",
         "(matmul ?act ?a (concat2 1 ?b ?c))");
  b.bidi("matmul-concat-cols-3d",
         "(concat2 2 (matmul ?act ?a ?b) (matmul ?act ?a ?c))",
         "(matmul ?act ?a (concat2 2 ?b ?c))");
  b.bidi("matmul-concat-rows", "(concat2 0 (matmul ?act ?a ?c) (matmul ?act ?b ?c))",
         "(matmul ?act (concat2 0 ?a ?b) ?c)");
  b.bidi("matmul-concat-rows-3d",
         "(concat2 1 (matmul ?act ?a ?c) (matmul ?act ?b ?c))",
         "(matmul ?act (concat2 1 ?a ?b) ?c)");

  // ---- Convolution merging -------------------------------------------------
  b.bidi("conv-concat-cout",
         "(concat2 1 (conv ?sh ?sw ?p ?act ?x ?w1) (conv ?sh ?sw ?p ?act ?x ?w2))",
         "(conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2))",
         all_of(not_grouped("x", "w1"), not_grouped("x", "w2")));
  b.bidi("conv-concat-batch",
         "(concat2 0 (conv ?sh ?sw ?p ?act ?x1 ?w) (conv ?sh ?sw ?p ?act ?x2 ?w))",
         "(conv ?sh ?sw ?p ?act (concat2 0 ?x1 ?x2) ?w)");
  // Paper Fig. 10: a sum of convolutions over the same spatial extent is one
  // convolution over channel-concatenated inputs and weights.
  b.bidi("conv-add-cin",
         "(ewadd (conv ?sh ?sw ?p 0 ?x1 ?w1) (conv ?sh ?sw ?p 0 ?x2 ?w2))",
         "(conv ?sh ?sw ?p 0 (concat2 1 ?x1 ?x2) (concat2 1 ?w1 ?w2))",
         all_of(not_grouped("x1", "w1"), not_grouped("x2", "w2")));
  // Kernel-size harmonization (TASO's enlarge): zero-pad the smaller kernel
  // so differently-sized convolutions over the same input can merge. Only
  // sound under SAME padding (hence the literal 0).
  b.uni("conv-enlarge-concat",
        "(concat2 1 (conv ?sh ?sw 0 ?act ?x ?w1) (conv ?sh ?sw 0 ?act ?x ?w2))",
        "(conv ?sh ?sw 0 ?act ?x (concat2 0 (enlarge ?w1 ?w2) ?w2))",
        all_of(not_grouped("x", "w1"), not_grouped("x", "w2")));
  b.uni("conv-enlarge-concat-sym",
        "(concat2 1 (conv ?sh ?sw 0 ?act ?x ?w1) (conv ?sh ?sw 0 ?act ?x ?w2))",
        "(conv ?sh ?sw 0 ?act ?x (concat2 0 ?w1 (enlarge ?w2 ?w1)))",
        all_of(not_grouped("x", "w1"), not_grouped("x", "w2")));
  // TASO's grouped-convolution merging: halve the group count by merging
  // every 2 groups (weight laid out block-diagonally by `merge`). Structural
  // only: merge's value depends on the consuming conv (see DESIGN.md).
  b.uni("conv-merge-groups", "(conv ?sh ?sw ?p ?act ?x ?w)",
        "(conv ?sh ?sw ?p ?act ?x (merge ?w 2))", groups_even("x", "w"),
        /*numeric=*/false);

  // ---- Pooling -------------------------------------------------------------
  b.bidi("poolavg-concat-channel",
         "(concat2 1 (poolavg ?x ?kh ?kw ?sh ?sw ?p ?act) "
         "(poolavg ?y ?kh ?kw ?sh ?sw ?p ?act))",
         "(poolavg (concat2 1 ?x ?y) ?kh ?kw ?sh ?sw ?p ?act)");
  b.bidi("poolmax-concat-channel",
         "(concat2 1 (poolmax ?x ?kh ?kw ?sh ?sw ?p ?act) "
         "(poolmax ?y ?kh ?kw ?sh ?sw ?p ?act))",
         "(poolmax (concat2 1 ?x ?y) ?kh ?kw ?sh ?sw ?p ?act)");

  // ---- Multi-pattern rules (paper Fig. 2 and Figs. 8/9/11) -----------------
  // Two matmuls sharing the left operand -> one matmul of concatenated right
  // operands, recovered by split.
  b.uni("multi-matmul-share-lhs",
        "(matmul ?act ?a ?b) (matmul ?act ?a ?c)",
        "(split0 (split 1 (matmul ?act ?a (concat2 1 ?b ?c)))) "
        "(split1 (split 1 (matmul ?act ?a (concat2 1 ?b ?c))))");
  b.uni("multi-matmul-share-lhs-3d",
        "(matmul ?act ?a ?b) (matmul ?act ?a ?c)",
        "(split0 (split 2 (matmul ?act ?a (concat2 2 ?b ?c)))) "
        "(split1 (split 2 (matmul ?act ?a (concat2 2 ?b ?c))))");
  // Two matmuls sharing the right operand (paper Fig. 11).
  b.uni("multi-matmul-share-rhs",
        "(matmul ?act ?x ?w) (matmul ?act ?y ?w)",
        "(split0 (split 0 (matmul ?act (concat2 0 ?x ?y) ?w))) "
        "(split1 (split 0 (matmul ?act (concat2 0 ?x ?y) ?w)))");
  b.uni("multi-matmul-share-rhs-3d",
        "(matmul ?act ?x ?w) (matmul ?act ?y ?w)",
        "(split0 (split 1 (matmul ?act (concat2 1 ?x ?y) ?w))) "
        "(split1 (split 1 (matmul ?act (concat2 1 ?x ?y) ?w)))");
  // Two convolutions sharing the input -> one convolution with concatenated
  // output channels (paper Fig. 9).
  b.uni("multi-conv-share-input",
        "(conv ?sh ?sw ?p ?act ?x ?w1) (conv ?sh ?sw ?p ?act ?x ?w2)",
        "(split0 (split 1 (conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2)))) "
        "(split1 (split 1 (conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2))))",
        all_of(not_grouped("x", "w1"), not_grouped("x", "w2")));
  // Two convolutions sharing the weight -> one convolution over the
  // batch-concatenated inputs.
  b.uni("multi-conv-share-weight",
        "(conv ?sh ?sw ?p ?act ?x1 ?w) (conv ?sh ?sw ?p ?act ?x2 ?w)",
        "(split0 (split 0 (conv ?sh ?sw ?p ?act (concat2 0 ?x1 ?x2) ?w))) "
        "(split1 (split 0 (conv ?sh ?sw ?p ?act (concat2 0 ?x1 ?x2) ?w)))");

  return b.rules;
}

}  // namespace

const std::vector<Rewrite>& default_rules() {
  static const auto* rules = new std::vector<Rewrite>(build_default_rules());
  return *rules;
}

std::vector<Rewrite> single_pattern_rules() {
  std::vector<Rewrite> out;
  for (const Rewrite& r : default_rules())
    if (!r.is_multi()) out.push_back(r);
  return out;
}

std::vector<Rewrite> multi_pattern_rules() {
  std::vector<Rewrite> out;
  for (const Rewrite& r : default_rules())
    if (r.is_multi()) out.push_back(r);
  return out;
}

}  // namespace tensat
