#include "cycles/incremental.h"

#include <algorithm>

#include "support/check.h"
#include "support/parallel.h"
#include "trace/trace.h"

namespace tensat {
namespace {

/// Word stride for rows covering `cols` dense columns, rounded up to 1024-
/// column granularity so growth re-strides the matrix (a full row-by-row
/// copy) at most once per 1024 new live classes.
size_t words_for(size_t cols) {
  constexpr size_t kGranularityWords = 16;  // 16 * 64 = 1024 columns
  const size_t need = (cols + 63) / 64;
  const size_t rounded =
      (need + kGranularityWords - 1) / kGranularityWords * kGranularityWords;
  return rounded == 0 ? kGranularityWords : rounded;
}

/// Minimum rows in one topological wave before rebuild_fresh dispatches it
/// to the pool. A row recompute is a few OR-loops over the stride; with the
/// persistent pool a dispatch costs about a microsecond, so a few dozen
/// rows already amortize it (the old thread-spawning floor would have
/// demanded thousands).
constexpr size_t kMinParallelRowWork = 64;

}  // namespace

IncrementalCycleAnalysis::IncrementalCycleAnalysis(EGraph& eg,
                                                   double fallback_fraction,
                                                   size_t threads)
    : eg_(&eg), fallback_fraction_(fallback_fraction), threads_(threads) {
  TENSAT_CHECK(eg.cycle_journal() == nullptr,
               "e-graph already has a cycle journal attached");
  eg.set_cycle_journal(&journal_);
  rebuild_fresh();
}

IncrementalCycleAnalysis::~IncrementalCycleAnalysis() {
  eg_->set_cycle_journal(nullptr);
}

bool IncrementalCycleAnalysis::reaches(Id from, Id to) const {
  if (from < 0 || to < 0) return false;
  const size_t f = static_cast<size_t>(from);
  const size_t t = static_cast<size_t>(to);
  if (f >= index_.size() || t >= index_.size()) return false;
  const int32_t fi = index_[f];
  const int32_t ti = index_[t];
  if (fi < 0 || ti < 0) return false;
  return (row(fi)[static_cast<size_t>(ti) / 64] >> (ti % 64)) & 1u;
}

int32_t IncrementalCycleAnalysis::alloc_index(Id id) {
  int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_used_++;
    ensure_capacity();
  }
  index_[id] = slot;
  return slot;
}

void IncrementalCycleAnalysis::ensure_capacity() {
  const size_t slots = static_cast<size_t>(slots_used_);
  const size_t need_words = words_for(slots);
  if (need_words > words_) {
    // Re-stride: copy every live row into the wider layout. Growing capacity
    // with headroom at the same time keeps this rare.
    const size_t new_capacity = std::max(slots + slots / 2 + 64, row_capacity_);
    std::vector<uint64_t> grown(new_capacity * need_words, 0);
    const size_t live = std::min(row_capacity_, slots);
    for (size_t i = 0; i < live; ++i)
      std::copy(&bits_[i * words_], &bits_[i * words_ + words_],
                &grown[i * need_words]);
    bits_ = std::move(grown);
    words_ = need_words;
    row_capacity_ = new_capacity;
  } else if (slots > row_capacity_) {
    row_capacity_ = slots + slots / 2 + 64;
    bits_.resize(row_capacity_ * words_, 0);
  }
}

void IncrementalCycleAnalysis::recompute_row(Id id) {
  int32_t idx = index_[id];
  if (idx < 0) idx = alloc_index(id);
  uint64_t* dst = row(idx);
  std::fill(dst, dst + words_, 0);
  for (const EClassNode& e : eg_->eclass(id).nodes) {
    if (e.filtered) continue;
    for (Id child : e.node.children) {
      const Id c = eg_->find(child);
      const int32_t ci = index_[c];
      // Children-first order guarantees every canonical child has a row by
      // now (recomputed this epoch, or kept — and provably still exact).
      const uint64_t* src = row(ci);
      for (size_t w = 0; w < words_; ++w) dst[w] |= src[w];
      dst[static_cast<size_t>(ci) / 64] |= (1ull << (ci % 64));
    }
  }
}

namespace {

/// Children-first recompute driver: rows of every id marked 1 in `state` are
/// recomputed by `recompute` in reverse-topological order, recursing only
/// into marked children (unmarked rows are already final). Back edges —
/// impossible on the acyclic post-sweep graph, but tolerated for misuse —
/// are skipped, mirroring DescendantsMap's under-approximation.
/// State encoding: 0 not a member, 1 member pending, 2 visiting, 3 done.
template <typename Recompute>
void recompute_members(const EGraph& eg, std::vector<int8_t>& state,
                       const Recompute& recompute) {
  struct Frame {
    Id cls;
    size_t node_i{0};
    size_t child_i{0};
  };
  std::vector<Frame> path;
  const Id n = static_cast<Id>(state.size());
  for (Id start = 0; start < n; ++start) {
    if (state[start] != 1) continue;
    path.push_back(Frame{start});
    state[start] = 2;
    while (!path.empty()) {
      Frame& f = path.back();
      const EClass& cls = eg.eclass(f.cls);
      bool descended = false;
      while (f.node_i < cls.nodes.size()) {
        const EClassNode& entry = cls.nodes[f.node_i];
        if (entry.filtered || f.child_i >= entry.node.children.size()) {
          ++f.node_i;
          f.child_i = 0;
          continue;
        }
        const Id child = eg.find(entry.node.children[f.child_i]);
        ++f.child_i;
        if (state[child] == 1) {
          state[child] = 2;
          path.push_back(Frame{child});
          descended = true;
          break;
        }
        // state 2 = back edge (skip), 0/3 = row already final.
      }
      if (descended) continue;
      if (f.node_i >= cls.nodes.size()) {
        recompute(f.cls);
        state[f.cls] = 3;
        path.pop_back();
      }
    }
  }
}

}  // namespace

void IncrementalCycleAnalysis::rebuild_fresh() {
  // The incremental repair's bail-out; worth a timeline marker because a
  // string of these means the merge pattern defeats the journal.
  const trace::ScopedSpan span("cycles/rebuild_fresh");
  ++stats_.fresh_rebuilds;
  const size_t n = eg_->num_ids();
  index_.assign(n, -1);
  free_slots_.clear();
  slots_used_ = 0;
  std::vector<int8_t> state(n, 0);
  size_t canonical = 0;
  // Pre-assign every canonical class its matrix slot in ascending id order
  // — a pure function of the e-graph, never of the wave schedule below.
  // (The incremental repair allocates lazily in recompute order instead;
  // that's fine there because it runs serially, but the parallel row-DP
  // must not race on slots_used_, and determinism tests compare matrices
  // across thread counts.)
  for (Id id = 0; id < static_cast<Id>(n); ++id) {
    if (eg_->find(id) == id) {
      state[id] = 1;
      ++canonical;
      index_[id] = slots_used_++;
    }
  }
  words_ = words_for(canonical);
  row_capacity_ = canonical + 64;
  bits_.assign(row_capacity_ * words_, 0);

  // Row-DP in topological waves: level(c) = 1 + max level over the
  // canonical children of c's unfiltered nodes, computed children-first by
  // the same driver the serial repair uses. All rows of one wave depend
  // only on rows of strictly earlier waves, so each wave recomputes on the
  // shared pool with no synchronization beyond the fork-join barrier; every
  // slot was assigned above and the matrix is pre-sized, so recompute_row
  // touches only its own disjoint row. Wave membership, slot numbering, and
  // row contents are all schedule-independent — serial and parallel
  // rebuilds produce bit-identical matrices.
  std::vector<int32_t> level(n, 0);
  int32_t max_level = 0;
  recompute_members(*eg_, state, [&](Id id) {
    int32_t lv = 0;
    for (const EClassNode& e : eg_->eclass(id).nodes) {
      if (e.filtered) continue;
      for (Id child : e.node.children) {
        const Id c = eg_->find(child);
        if (c != id) lv = std::max(lv, level[c] + 1);
      }
    }
    level[id] = lv;
    max_level = std::max(max_level, lv);
  });
  std::vector<std::vector<Id>> waves(static_cast<size_t>(max_level) + 1);
  for (Id id = 0; id < static_cast<Id>(n); ++id)
    if (state[id] == 3) waves[static_cast<size_t>(level[id])].push_back(id);
  for (const std::vector<Id>& wave : waves) {
    if (threads_ <= 1 || wave.size() < kMinParallelRowWork) {
      for (Id id : wave) recompute_row(id);
    } else {
      parallel_for(wave.size(), threads_,
                   [&](size_t i) { recompute_row(wave[i]); });
    }
  }
}

size_t IncrementalCycleAnalysis::sweep_cycles() {
  const trace::ScopedSpan span("cycles/sweep");
  // Add-only growth cannot create a cycle (every e-node's children predate
  // it), so with no merges recorded the graph is as acyclic as the last
  // epoch left it.
  if (journal_.merges.empty()) {
    ++stats_.sweeps_skipped;
    return 0;
  }
  // Every new cycle passes through a class fused by one of this epoch's
  // merges (see the header comment), so DFSing from just the merged
  // representatives decides acyclicity of the whole graph.
  std::vector<Id> roots;
  roots.reserve(journal_.merges.size());
  for (const auto& [a, b] : journal_.merges) {
    (void)b;
    roots.push_back(eg_->find(a));
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  if (!has_cycle_from(*eg_, roots)) {
    ++stats_.sweeps_clean;
    return 0;
  }
  // A cycle exists: resolve with the full filter_cycles pass — the same
  // code, in the same discovery order, as the fresh baseline, so the two
  // modes filter identical node sets. Its set_filtered calls land in the
  // journal and dirty the affected rows for advance_epoch.
  ++stats_.sweeps_full;
  return filter_cycles(*eg_);
}

void IncrementalCycleAnalysis::advance_epoch() {
  const trace::ScopedSpan span("cycles/advance_epoch");
  ++stats_.epochs;
  const size_t n = eg_->num_ids();
  if (journal_.empty() && n == index_.size()) return;

  // Dirty classes: out-edge sets changed. Merged-away new classes are
  // covered by their (dirty) representative. Classes merged away free their
  // matrix slot — safe to reuse immediately, because any surviving row that
  // referenced the freed column reached the dead class and is therefore an
  // ancestor of the merge, i.e. recomputed below.
  std::vector<Id> dirty;
  dirty.reserve(journal_.merges.size() + journal_.filtered_classes.size() +
                journal_.new_classes.size());
  for (const auto& [a, b] : journal_.merges) {
    dirty.push_back(eg_->find(a));
    for (const Id loser : {a, b}) {
      if (eg_->find(loser) != loser &&
          static_cast<size_t>(loser) < index_.size() && index_[loser] >= 0) {
        free_slots_.push_back(index_[loser]);
        index_[loser] = -1;
      }
    }
  }
  for (Id c : journal_.filtered_classes) dirty.push_back(eg_->find(c));
  for (Id c : journal_.new_classes) dirty.push_back(eg_->find(c));
  journal_.clear();
  index_.resize(n, -1);
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  // R = dirty ∪ ancestors(dirty), walked over the parents lists (which
  // survive filtering and merging, so this is a conservative superset of
  // the true ancestor set — extra members just recompute to their old row).
  std::vector<int8_t> state(n, 0);
  std::vector<Id> stack;
  stack.reserve(dirty.size());
  size_t r_count = 0;
  for (Id d : dirty) {
    if (state[d] == 0) {
      state[d] = 1;
      stack.push_back(d);
      ++r_count;
    }
  }
  while (!stack.empty()) {
    const Id c = stack.back();
    stack.pop_back();
    for (const auto& [p_node, p_class] : eg_->eclass(c).parents) {
      (void)p_node;
      const Id p = eg_->find(p_class);
      if (state[p] == 0) {
        state[p] = 1;
        stack.push_back(p);
        ++r_count;
      }
    }
  }

  // Merges that fused a large region dirty most of the graph; the scoped
  // repair would then do the full rebuild's work plus bookkeeping.
  if (static_cast<double>(r_count) >
      fallback_fraction_ * static_cast<double>(eg_->num_classes())) {
    rebuild_fresh();
    return;
  }

  ++stats_.incremental_updates;
  stats_.rows_recomputed += r_count;
  recompute_members(*eg_, state, [this](Id id) { recompute_row(id); });
}

}  // namespace tensat
