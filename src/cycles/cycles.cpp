#include "cycles/cycles.h"

#include <algorithm>

#include "support/check.h"

namespace tensat {
namespace {

/// Distinct canonical child classes of `cls`'s unfiltered e-nodes.
std::vector<Id> child_classes(const EGraph& eg, Id cls) {
  std::vector<Id> out;
  for (const EClassNode& e : eg.eclass(cls).nodes) {
    if (e.filtered) continue;
    for (Id c : e.node.children) {
      const Id canon = eg.find(c);
      if (std::find(out.begin(), out.end(), canon) == out.end()) out.push_back(canon);
    }
  }
  return out;
}

}  // namespace

DescendantsMap::DescendantsMap(const EGraph& eg) {
  const std::vector<Id> classes = eg.canonical_classes();
  const int n = static_cast<int>(classes.size());
  index_.reserve(classes.size());
  for (int i = 0; i < n; ++i) index_.emplace(classes[i], i);
  words_ = (static_cast<size_t>(n) + 63) / 64;
  bits_.assign(words_ * n, 0);

  // Reverse-topological DP over the class graph: children first, then
  // desc[c] = union over children (desc[child] | {child}). If the graph has
  // a cycle (possible transiently), back edges contribute nothing — the map
  // under-approximates, which is safe for a pre-filter (the post-processing
  // pass catches what slips through).
  std::vector<int8_t> state(n, 0);  // 0 unvisited, 1 visiting, 2 done
  std::vector<std::pair<int, size_t>> stack;
  std::vector<std::vector<int>> children(n);
  for (int i = 0; i < n; ++i) {
    for (Id c : child_classes(eg, classes[i])) children[i].push_back(index_.at(c));
  }
  for (int start = 0; start < n; ++start) {
    if (state[start] != 0) continue;
    stack.emplace_back(start, 0);
    state[start] = 1;
    while (!stack.empty()) {
      auto& [i, next] = stack.back();
      if (next < children[i].size()) {
        const int c = children[i][next++];
        if (state[c] == 0) {
          state[c] = 1;
          stack.emplace_back(c, 0);
        }
        // state 1 = back edge (cycle): skip; state 2 = already folded below.
      } else {
        for (int c : children[i]) {
          if (state[c] != 2) continue;  // skip back edges
          uint64_t* dst = &bits_[static_cast<size_t>(i) * words_];
          const uint64_t* src = &bits_[static_cast<size_t>(c) * words_];
          for (size_t w = 0; w < words_; ++w) dst[w] |= src[w];
          dst[static_cast<size_t>(c) / 64] |= (1ull << (c % 64));
        }
        state[i] = 2;
        stack.pop_back();
      }
    }
  }
}

int DescendantsMap::index_of(Id id) const {
  auto it = index_.find(id);
  return it == index_.end() ? -1 : it->second;
}

bool DescendantsMap::reaches(Id from, Id to) const {
  const int f = index_of(from);
  const int t = index_of(to);
  if (f < 0 || t < 0) return false;
  return (bits_[static_cast<size_t>(f) * words_ + static_cast<size_t>(t) / 64] >>
          (t % 64)) &
         1u;
}

namespace {

/// DFS reachability from `from` to `to` over the class graph.
bool reaches_dfs(const EGraph& eg, Id from, Id to) {
  from = eg.find(from);
  to = eg.find(to);
  std::vector<Id> stack{from};
  std::unordered_map<Id, bool> visited;
  while (!stack.empty()) {
    const Id cur = stack.back();
    stack.pop_back();
    if (cur == to) return true;
    if (visited[cur]) continue;
    visited[cur] = true;
    for (Id c : child_classes(eg, cur)) {
      if (!visited[c]) stack.push_back(c);
    }
  }
  return false;
}

}  // namespace

bool merge_would_create_cycle(const EGraph& eg, Id a, Id b) {
  a = eg.find(a);
  b = eg.find(b);
  if (a == b) return false;
  return reaches_dfs(eg, a, b) || reaches_dfs(eg, b, a);
}

namespace {

/// One e-graph edge: e-node `node_index` of class `cls` (its children are
/// the edge heads).
struct Edge {
  Id cls;
  size_t node_index;
};

/// One DFS pass collecting cycles; each cycle is returned as its edge list.
std::vector<std::vector<Edge>> collect_cycles(const EGraph& eg, size_t max_cycles) {
  std::vector<std::vector<Edge>> cycles;
  std::unordered_map<Id, int8_t> state;  // 0/absent unvisited, 1 on stack, 2 done

  // Path entry: class, index of the e-node being explored, index of the
  // child within that e-node.
  struct Frame {
    Id cls;
    size_t node_i{0};
    size_t child_i{0};
  };
  std::vector<Frame> path;
  std::unordered_map<Id, size_t> pos_on_path;

  for (Id start : eg.canonical_classes()) {
    if (state[start] != 0) continue;
    path.push_back(Frame{start});
    pos_on_path[start] = 0;
    state[start] = 1;
    while (!path.empty()) {
      Frame& f = path.back();
      const EClass& cls = eg.eclass(f.cls);
      // Advance to the next (node, child) edge.
      bool descended = false;
      while (f.node_i < cls.nodes.size()) {
        const EClassNode& entry = cls.nodes[f.node_i];
        if (entry.filtered || f.child_i >= entry.node.children.size()) {
          ++f.node_i;
          f.child_i = 0;
          continue;
        }
        const Id child = eg.find(entry.node.children[f.child_i]);
        ++f.child_i;
        const int8_t s = state[child];
        if (s == 1) {
          // Back edge: the cycle is the closing edge plus the in-edges of
          // every class on the path strictly after `child`.
          std::vector<Edge> cycle;
          cycle.push_back(Edge{f.cls, f.node_i});
          const size_t from = pos_on_path.at(child);
          for (size_t i = from + 1; i < path.size(); ++i) {
            // path[i] was entered through path[i-1]'s current e-node.
            cycle.push_back(Edge{path[i - 1].cls, path[i - 1].node_i});
          }
          cycles.push_back(std::move(cycle));
          if (cycles.size() >= max_cycles) return cycles;
        } else if (s == 0) {
          state[child] = 1;
          pos_on_path[child] = path.size();
          path.push_back(Frame{child});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      if (f.node_i >= cls.nodes.size()) {
        state[f.cls] = 2;
        pos_on_path.erase(f.cls);
        path.pop_back();
      }
    }
  }
  return cycles;
}

}  // namespace

size_t filter_cycles(EGraph& eg) {
  size_t filtered = 0;
  constexpr size_t kMaxCyclesPerPass = 4096;
  while (true) {
    const auto cycles = collect_cycles(eg, kMaxCyclesPerPass);
    if (cycles.empty()) break;
    for (const auto& cycle : cycles) {
      // Resolve only if the cycle is still intact (an earlier resolution in
      // this pass may have already broken it).
      bool intact = true;
      for (const Edge& e : cycle) {
        if (eg.eclass(e.cls).nodes[e.node_index].filtered) {
          intact = false;
          break;
        }
      }
      if (!intact) continue;
      // Filter the most recently added e-node on the cycle (paper §5.2).
      const Edge* last = &cycle[0];
      uint32_t best_stamp = eg.eclass(cycle[0].cls).nodes[cycle[0].node_index].stamp;
      for (const Edge& e : cycle) {
        const uint32_t stamp = eg.eclass(e.cls).nodes[e.node_index].stamp;
        if (stamp > best_stamp) {
          best_stamp = stamp;
          last = &e;
        }
      }
      eg.set_filtered(last->cls, last->node_index);
      ++filtered;
    }
  }
  return filtered;
}

bool is_acyclic(const EGraph& eg) { return collect_cycles(eg, 1).empty(); }

bool has_cycle_from(const EGraph& eg, const std::vector<Id>& roots) {
  // Same edge semantics as collect_cycles (filtered e-nodes invisible,
  // children canonicalized), but id-indexed coloring and first-back-edge
  // exit: this runs every iteration, so it must not pay hashing or cycle
  // reconstruction for the common "still acyclic" answer.
  std::vector<int8_t> state(eg.num_ids(), 0);  // 0 unvisited, 1 on stack, 2 done
  struct Frame {
    Id cls;
    size_t node_i{0};
    size_t child_i{0};
  };
  std::vector<Frame> path;
  for (Id root : roots) {
    const Id start = eg.find(root);
    if (state[start] != 0) continue;
    path.push_back(Frame{start});
    state[start] = 1;
    while (!path.empty()) {
      Frame& f = path.back();
      const EClass& cls = eg.eclass(f.cls);
      bool descended = false;
      while (f.node_i < cls.nodes.size()) {
        const EClassNode& entry = cls.nodes[f.node_i];
        if (entry.filtered || f.child_i >= entry.node.children.size()) {
          ++f.node_i;
          f.child_i = 0;
          continue;
        }
        const Id child = eg.find(entry.node.children[f.child_i]);
        ++f.child_i;
        if (state[child] == 1) return true;  // back edge
        if (state[child] == 0) {
          state[child] = 1;
          path.push_back(Frame{child});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      if (f.node_i >= cls.nodes.size()) {
        state[f.cls] = 2;
        path.pop_back();
      }
    }
  }
  return false;
}

}  // namespace tensat
