// Incremental cycle analysis: the descendants relation and the post-rebuild
// cycle sweep of Algorithm 2 (paper §5.2), maintained across exploration
// iterations instead of being rebuilt from scratch once per iteration.
//
// Between two rebuild boundaries the e-graph only grows — e-nodes are added
// and classes merged, never removed — so class-graph reachability is
// monotone within an iteration and the previous iteration's closure remains
// a valid starting point. The e-graph records every state change in a
// CycleJournal (egraph/egraph.h: new classes, a merge trace, newly filtered
// nodes); at the serial commit/rebuild boundary advance_epoch() drains the
// journal and repairs the closure in place:
//
//  * dirty classes = merged representatives + classes with newly filtered
//    nodes + new classes — exactly the classes whose out-edges changed;
//  * the recompute set R = dirty ∪ ancestors(dirty), found by walking the
//    e-graph's parents lists upward (a conservative superset: parents
//    entries survive filtering and merging);
//  * rows outside R provably kept their exact closure (any class whose
//    reachable set changed must reach a dirty class, making it an ancestor),
//    so only rows in R are recomputed, children-first, against the already-
//    final rows of their non-R children.
//
// When merges fuse a large region, |R| approaches the class count and the
// incremental repair would do the full rebuild's work with extra
// bookkeeping; advance_epoch() then falls back to full reconstruction
// (fallback_fraction). Either way the result is the exact transitive
// closure of the clean, acyclic class graph — bit-for-bit the same relation
// DescendantsMap computes fresh, which is what keeps incremental and fresh
// exploration e-graphs identical (tests/cycles_incremental_test.cpp).
//
// The cycle sweep is scoped the same way: an e-graph that was acyclic at
// the last boundary can only have grown a cycle through a class fused by a
// merge since (add-only growth is acyclic by construction — every e-node's
// children predate it). sweep_cycles() therefore runs a detection-only DFS
// restarted just from the merged representatives (has_cycle_from); only
// when that finds a cycle does the full filter_cycles() pass run — the very
// same pass the fresh baseline runs, so the resolved (filtered) node set is
// identical by construction, not merely equivalent.
//
// Epoch/concurrency contract (renegotiating the snapshot-immutability note
// in cycles.h): stage-1 planning workers read a frozen epoch of the map
// through ReachabilityMap::reaches() while the journal accumulates on the
// side; the epoch advances only inside sweep_cycles()/advance_epoch(),
// which the optimizer calls strictly at the serial rebuild boundary. The
// map's content is a pure function of the e-graph state at the boundary —
// never of apply_threads, search_threads, or worker scheduling — so
// incremental mode preserves bit-identical e-graphs for any thread count
// (tests/apply_pipeline_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "cycles/cycles.h"
#include "egraph/egraph.h"

namespace tensat {

/// Counters for the incremental subsystem, reported by tests and benches.
struct IncrementalCycleStats {
  size_t epochs{0};             // advance_epoch() calls
  size_t fresh_rebuilds{0};     // full reconstructions (incl. the initial one)
  size_t incremental_updates{0};  // scoped row repairs
  size_t rows_recomputed{0};    // closure rows recomputed across all epochs
  size_t sweeps_skipped{0};     // sweeps skipped outright (no merges recorded)
  size_t sweeps_clean{0};       // scoped detection proved acyclicity
  size_t sweeps_full{0};        // detection found a cycle -> full filter pass
};

/// The incremental descendants map + scoped cycle sweep. Owns the journal it
/// attaches to the e-graph; detaches on destruction. The analysis must not
/// outlive the e-graph, and the e-graph must not be moved while attached.
///
/// Intended call sequence per exploration iteration, all at the serial
/// boundary (see the header comment for the epoch contract):
///
///   IncrementalCycleAnalysis inc(eg);       // eg clean; builds epoch 0
///   for each iteration:
///     ... plan/commit (reaches() queried concurrently, journal grows) ...
///     eg.rebuild();
///     inc.sweep_cycles();                   // scoped Algorithm 2 post-pass
///     inc.advance_epoch();                  // journal -> next frozen epoch
class IncrementalCycleAnalysis final : public ReachabilityMap {
 public:
  /// Attaches to `eg` (which must be clean) and builds the initial epoch
  /// with a full reconstruction. `fallback_fraction`: advance_epoch() falls
  /// back to full reconstruction when the recompute set exceeds this
  /// fraction of the canonical class count. `threads`: worker count for the
  /// full reconstruction's row-DP (rebuild_fresh computes rows in
  /// topological waves on the shared pool; everything observable — slot
  /// assignment, row contents, reaches() answers — is identical for any
  /// value, see rebuild_fresh). The incremental repair itself stays serial:
  /// its recompute sets are small by construction (past the fallback
  /// threshold it *is* the full reconstruction).
  explicit IncrementalCycleAnalysis(EGraph& eg, double fallback_fraction = 0.5,
                                    size_t threads = 1);
  ~IncrementalCycleAnalysis() override;
  IncrementalCycleAnalysis(const IncrementalCycleAnalysis&) = delete;
  IncrementalCycleAnalysis& operator=(const IncrementalCycleAnalysis&) = delete;

  /// The frozen epoch's descendants relation — same answers as a
  /// DescendantsMap built on the epoch's clean e-graph. Ids must be
  /// canonical ids of that snapshot (callers canonicalize through find());
  /// ids the snapshot has never seen return false.
  [[nodiscard]] bool reaches(Id from, Id to) const override;

  /// The scoped Algorithm 2 post-pass: returns 0 immediately when the
  /// journal records no merges (add-only growth cannot create a cycle), runs
  /// the detection DFS from the merged representatives otherwise, and only
  /// on a confirmed cycle delegates to the full filter_cycles() — whose
  /// resolution order the fresh baseline shares, keeping filtered sets
  /// identical. Call on a clean (rebuilt) e-graph, before advance_epoch().
  size_t sweep_cycles();

  /// Drains the journal and repairs the closure to match the current clean,
  /// acyclic e-graph (incrementally, or via full reconstruction past the
  /// fallback threshold). Call at the serial rebuild boundary, after
  /// sweep_cycles().
  void advance_epoch();

  [[nodiscard]] const IncrementalCycleStats& stats() const { return stats_; }

  /// The e-graph this analysis is attached to. A session persisting the
  /// analysis across run_exploration calls uses this to verify it is being
  /// resumed against the same e-graph (the journal and closure are
  /// meaningless against any other).
  [[nodiscard]] const EGraph* egraph() const { return eg_; }

 private:
  void rebuild_fresh();
  /// Assigns a dense row/column index to a class that has none, reusing a
  /// freed slot when available; zeroing is the recompute's job.
  int32_t alloc_index(Id id);
  /// Grows the matrix so every assigned index has a row and the stride
  /// covers every index as a column; re-striding (rare: 1024-column
  /// granularity) copies all live rows.
  void ensure_capacity();
  [[nodiscard]] uint64_t* row(int32_t index) {
    return &bits_[static_cast<size_t>(index) * words_];
  }
  [[nodiscard]] const uint64_t* row(int32_t index) const {
    return &bits_[static_cast<size_t>(index) * words_];
  }
  /// Recomputes class `id`'s row from its (unfiltered, canonical) children's
  /// rows, allocating its index if needed.
  void recompute_row(Id id);

  EGraph* eg_;
  CycleJournal journal_;
  double fallback_fraction_;
  size_t threads_;
  /// Dense row/column indices: index_[id] is the matrix slot of canonical
  /// class `id`, or -1 (non-canonical, or created after the epoch — both
  /// answer false, matching DescendantsMap's unknown-id semantics). A class
  /// merged away frees its slot for reuse by a later class: any surviving
  /// row holding a bit of the freed column would have reached the dead
  /// class, making it an ancestor of the merge — hence recomputed this very
  /// epoch — so stale bits can never alias the slot's next owner. Dense
  /// indexing keeps the matrix sized by live classes, not by every id ever
  /// created (explorations merge away most of what they add).
  std::vector<int32_t> index_;
  std::vector<int32_t> free_slots_;
  int32_t slots_used_{0};   // high-water mark of assigned indices
  size_t row_capacity_{0};  // allocated row slots
  size_t words_{0};         // uint64 stride per row
  std::vector<uint64_t> bits_;
  IncrementalCycleStats stats_;
};

}  // namespace tensat
