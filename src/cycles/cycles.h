// Cycle filtering (paper §5.2). Valid rewrites can make the e-graph cyclic
// (paper Fig. 3); extraction must return a DAG. TENSAT filters cycles during
// exploration so the ILP can drop its (expensive) acyclicity constraints:
//
//  * Vanilla: before every merge, check with a fresh whole-e-graph pass
//    whether the merge closes a cycle; discard the substitution if so.
//    O(n_m * N) per iteration.
//  * Efficient (Algorithm 2): a descendants map built once per iteration
//    gives an O(1) (sound, incomplete) pre-filter per match; a DFS
//    post-processing pass then finds the cycles that slipped through and
//    resolves each by filtering the last-added e-node on it.
//
// The class graph here has an edge C -> D whenever some unfiltered e-node of
// class C has child class D; filtered e-nodes are invisible.
#pragma once

#include <unordered_map>
#include <vector>

#include "egraph/egraph.h"

namespace tensat {

/// Transitive descendants of every e-class, as a dense bitset matrix.
/// Snapshot semantics: reflects the e-graph at construction time. Immutable
/// after construction, so reaches() is safe for concurrent readers — the
/// staged apply pipeline shares one map across all stage-1 planning workers.
class DescendantsMap {
 public:
  explicit DescendantsMap(const EGraph& eg);

  /// True if `to` is a (transitive) descendant of `from`. Ids from the
  /// snapshot's canonical ids; unknown ids return false.
  [[nodiscard]] bool reaches(Id from, Id to) const;

 private:
  [[nodiscard]] int index_of(Id id) const;
  size_t words_{0};
  std::vector<uint64_t> bits_;
  std::unordered_map<Id, int> index_;
};

/// Fresh whole-graph reachability: true if merging `a` and `b` would close a
/// cycle (either can reach the other through unfiltered e-nodes). Used by
/// vanilla cycle filtering; cost O(N) per call.
bool merge_would_create_cycle(const EGraph& eg, Id a, Id b);

/// One round of Algorithm 2's post-processing (lines 10-18): repeatedly DFS
/// the class graph, collect cycles, and filter the most recently added
/// e-node on each, until no cycles remain. Returns the number of e-nodes
/// filtered. The e-graph must be clean (rebuilt).
size_t filter_cycles(EGraph& eg);

/// True if the class graph restricted to unfiltered e-nodes is acyclic.
bool is_acyclic(const EGraph& eg);

}  // namespace tensat
