// Cycle filtering (paper §5.2). Valid rewrites can make the e-graph cyclic
// (paper Fig. 3); extraction must return a DAG. TENSAT filters cycles during
// exploration so the ILP can drop its (expensive) acyclicity constraints:
//
//  * Vanilla: before every merge, check with a fresh whole-e-graph pass
//    whether the merge closes a cycle; discard the substitution if so.
//    O(n_m * N) per iteration.
//  * Efficient (Algorithm 2): a descendants map built once per iteration
//    gives an O(1) (sound, incomplete) pre-filter per match; a DFS
//    post-processing pass then finds the cycles that slipped through and
//    resolves each by filtering the last-added e-node on it.
//
// The class graph here has an edge C -> D whenever some unfiltered e-node of
// class C has child class D; filtered e-nodes are invisible.
//
// Two implementations of the descendants relation exist:
//
//  * DescendantsMap (below): rebuilt from scratch once per iteration — the
//    paper's literal Algorithm 2 line 3, kept as the differential baseline
//    (TensatOptions::incremental_cycles = false).
//  * IncrementalCycleAnalysis (cycles/incremental.h): maintained across
//    iterations from the e-graph's change journal, with epoch semantics.
//
// Concurrency contract (the staged apply pipeline's stage-1 workers): both
// implementations expose a *frozen epoch* of the relation through the
// ReachabilityMap interface. A DescendantsMap is immutable after
// construction; the incremental map mutates only inside advance_epoch(),
// which runs strictly at the serial commit/rebuild boundary — never while
// planning workers are live. Either way reaches() is a pure read during the
// plan phase, safe for any number of concurrent readers, and the answers are
// independent of apply_threads/search_threads.
#pragma once

#include <unordered_map>
#include <vector>

#include "egraph/egraph.h"

namespace tensat {

/// The frozen-epoch descendants relation the cycle pre-filter queries.
/// reaches(from, to) is true if `to` is a (transitive) descendant of `from`
/// in the class graph of the epoch's clean e-graph. Both ids must be
/// canonical ids of that snapshot; ids unknown to the snapshot (e.g. classes
/// created after it) return false. Implementations guarantee reaches() is a
/// pure read, safe for concurrent callers, between epoch boundaries.
class ReachabilityMap {
 public:
  virtual ~ReachabilityMap() = default;
  [[nodiscard]] virtual bool reaches(Id from, Id to) const = 0;
};

/// Transitive descendants of every e-class, as a dense bitset matrix.
/// Snapshot semantics: reflects the e-graph at construction time. Immutable
/// after construction, so reaches() is safe for concurrent readers — the
/// staged apply pipeline shares one map across all stage-1 planning workers.
class DescendantsMap final : public ReachabilityMap {
 public:
  explicit DescendantsMap(const EGraph& eg);

  /// True if `to` is a (transitive) descendant of `from`. Ids from the
  /// snapshot's canonical ids; unknown ids return false.
  [[nodiscard]] bool reaches(Id from, Id to) const override;

 private:
  [[nodiscard]] int index_of(Id id) const;
  size_t words_{0};
  std::vector<uint64_t> bits_;
  std::unordered_map<Id, int> index_;
};

/// Fresh whole-graph reachability: true if merging `a` and `b` would close a
/// cycle (either can reach the other through unfiltered e-nodes). Used by
/// vanilla cycle filtering; cost O(N) per call.
bool merge_would_create_cycle(const EGraph& eg, Id a, Id b);

/// One round of Algorithm 2's post-processing (lines 10-18): repeatedly DFS
/// the class graph, collect cycles, and filter the most recently added
/// e-node on each, until no cycles remain. Returns the number of e-nodes
/// filtered. The e-graph must be clean (rebuilt).
size_t filter_cycles(EGraph& eg);

/// True if the class graph restricted to unfiltered e-nodes is acyclic.
bool is_acyclic(const EGraph& eg);

/// Detection-only DFS from `roots`: true if any cycle is reachable from (and
/// hence, when every cycle must pass through a root, exists at all) the
/// given classes. Sound scoping for the incremental sweep: an e-graph that
/// was acyclic at the last epoch can only have grown a cycle through a class
/// fused by a merge since, so DFSing from the merged representatives decides
/// acyclicity of the whole graph without visiting unreachable regions.
/// Stops at the first back edge. The e-graph must be clean (rebuilt).
bool has_cycle_from(const EGraph& eg, const std::vector<Id>& roots);

}  // namespace tensat
