// Cost models. The paper measures each operator's runtime on a T4 GPU via
// cuDNN and sums node costs (§5, "Cost model"); we substitute an analytic
// T4-class model (see DESIGN.md §4): per-kernel launch overhead plus the
// max of a compute term (flops over peak, derated by a utilization curve
// that favours large kernels) and a memory term (bytes over bandwidth).
// The launch overhead and utilization curve are what make the paper's
// operator-merging rewrites profitable, for the same reason they are
// profitable on the real GPU.
//
// node_cost() layers the graph-level convention on top: operators whose
// output is derivable from weights alone cost zero (they are precomputed at
// inference time, cf. paper Fig. 10), and parameter/view nodes are free.
#pragma once

#include <memory>
#include "support/span.h"

#include "egraph/egraph.h"
#include "lang/graph.h"
#include "lang/shapes.h"

namespace tensat {

class CostModel {
 public:
  virtual ~CostModel() = default;
  /// Estimated runtime, in microseconds, of one execution of `node` given
  /// its input and output value infos. Pure operator cost: the weight-only
  /// zeroing convention is applied by node_cost(), not here.
  [[nodiscard]] virtual double op_cost(const TNode& node,
                                       span<const ValueInfo> inputs,
                                       const ValueInfo& out) const = 0;
};

/// Analytic NVIDIA-T4-class model.
class T4CostModel : public CostModel {
 public:
  struct Params {
    double launch_overhead_us = 5.0;    // per-kernel launch + scheduling
    double peak_flops = 8.1e12;         // fp32
    double mem_bandwidth = 2.4e11;      // bytes/s, effective
    double util_scale_flops = 2.0e8;    // utilization curve knee
    double min_util = 0.03;
    double transpose_penalty = 2.0;     // uncoalesced access factor
  };

  T4CostModel() = default;
  explicit T4CostModel(const Params& params) : p_(params) {}

  [[nodiscard]] double op_cost(const TNode& node, span<const ValueInfo> inputs,
                               const ValueInfo& out) const override;

 private:
  Params p_{};
};

/// "True runtime" simulator: wraps a base model and injects a controlled
/// discrepancy (extra cost on data-movement ops plus deterministic per-node
/// jitter). Used to reproduce the paper's §6.4 observation that a cost-model
/// win can be a runtime loss (SqueezeNet at high k_multi).
class MeasuredRuntimeModel : public CostModel {
 public:
  MeasuredRuntimeModel(std::shared_ptr<const CostModel> base, double movement_penalty,
                       double jitter, uint64_t seed)
      : base_(std::move(base)),
        movement_penalty_(movement_penalty),
        jitter_(jitter),
        seed_(seed) {}

  [[nodiscard]] double op_cost(const TNode& node, span<const ValueInfo> inputs,
                               const ValueInfo& out) const override;

 private:
  std::shared_ptr<const CostModel> base_;
  double movement_penalty_;
  double jitter_;
  uint64_t seed_;
};

/// The cost the optimizer charges for a node: 0 for parameter leaves, views,
/// noop, and any weight-only (precomputable) output; otherwise the model's
/// operator cost.
double node_cost(const CostModel& model, const TNode& node,
                 span<const ValueInfo> inputs, const ValueInfo& out);

/// Sum of node_cost over all nodes reachable from `g`'s roots (the paper's
/// graph cost; hash-consing means shared subgraphs are counted once).
double graph_cost(const Graph& g, const CostModel& model);

/// node_cost for an e-node: inputs come from its children's e-class data and
/// the output from its own class data.
double enode_cost(const EGraph& eg, Id cls, const TNode& node, const CostModel& model);

}  // namespace tensat
