#include "cost/cost.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/hash.h"
#include "support/rng.h"

namespace tensat {
namespace {

constexpr double kBytesPerElem = 4.0;  // fp32

double tensor_bytes(const ValueInfo& v) {
  return v.kind == VKind::kTensor || v.kind == VKind::kTuple
             ? kBytesPerElem * static_cast<double>(v.volume())
             : 0.0;
}

}  // namespace

double T4CostModel::op_cost(const TNode& node, span<const ValueInfo> inputs,
                            const ValueInfo& out) const {
  double flops = 0.0;
  double bytes = 0.0;
  switch (node.op) {
    case Op::kNum:
    case Op::kStr:
    case Op::kVar:
    case Op::kInput:
    case Op::kWeight:
    case Op::kNoop:
      return 0.0;
    // Views: split produces two aliased halves, split0/1 select one, reshape
    // reinterprets the buffer. No kernel is launched.
    case Op::kSplit:
    case Op::kSplit0:
    case Op::kSplit1:
    case Op::kReshape:
      return 0.0;

    case Op::kMatmul: {
      const ValueInfo& a = inputs[1];
      const int ra = a.rank();
      const double m = out.shape[out.rank() - 2];
      const double n = out.shape[out.rank() - 1];
      const double k = a.shape[ra - 1];
      const double batch = out.rank() == 3 ? out.shape[0] : 1.0;
      flops = 2.0 * batch * m * n * k;
      bytes = tensor_bytes(a) + tensor_bytes(inputs[2]) + tensor_bytes(out);
      break;
    }
    case Op::kConv: {
      const ValueInfo& w = inputs[5];
      const double cin_per_group = w.shape[1];
      const double kh = w.shape[2], kw = w.shape[3];
      flops = 2.0 * static_cast<double>(out.volume()) * cin_per_group * kh * kw;
      bytes = tensor_bytes(inputs[4]) + tensor_bytes(w) + tensor_bytes(out);
      break;
    }
    case Op::kEwadd:
    case Op::kEwmul:
      flops = static_cast<double>(out.volume());
      bytes = 3.0 * tensor_bytes(out);
      break;
    case Op::kRelu:
    case Op::kTanh:
    case Op::kSigmoid:
      flops = static_cast<double>(out.volume());
      bytes = 2.0 * tensor_bytes(out);
      break;
    case Op::kPoolmax:
    case Op::kPoolavg: {
      const double kh = static_cast<double>(inputs[1].num);
      const double kw = static_cast<double>(inputs[2].num);
      flops = static_cast<double>(out.volume()) * kh * kw;
      bytes = tensor_bytes(inputs[0]) + tensor_bytes(out);
      break;
    }
    case Op::kTranspose:
      bytes = p_.transpose_penalty * 2.0 * tensor_bytes(out);
      break;
    case Op::kEnlarge:
    case Op::kMerge:
      bytes = 2.0 * tensor_bytes(out);
      break;
    case Op::kConcat2:
    case Op::kConcat3:
    case Op::kConcat4:
    case Op::kConcat5:
      bytes = 2.0 * tensor_bytes(out);
      break;
    case Op::kOpCount:
      TENSAT_FAIL("bad op");
  }

  const double util = std::max(p_.min_util, 1.0 - std::exp(-flops / p_.util_scale_flops));
  const double compute_s = flops > 0.0 ? flops / (p_.peak_flops * util) : 0.0;
  const double memory_s = bytes / p_.mem_bandwidth;
  return p_.launch_overhead_us + 1e6 * std::max(compute_s, memory_s);
}

double MeasuredRuntimeModel::op_cost(const TNode& node,
                                     span<const ValueInfo> inputs,
                                     const ValueInfo& out) const {
  double cost = base_->op_cost(node, inputs, out);
  if (cost == 0.0) return 0.0;
  // Data-movement ops are systematically under-modelled by the analytic
  // model (kernel fusion opportunities lost, cache effects).
  switch (node.op) {
    case Op::kConcat2:
    case Op::kConcat3:
    case Op::kConcat4:
    case Op::kConcat5:
    case Op::kTranspose:
      cost *= 1.0 + movement_penalty_;
      break;
    case Op::kSplit:
      // "Free" views still cost a little in a real runtime (extra kernels
      // can no longer fuse across the split boundary).
      cost += movement_penalty_ * kBytesPerElem *
              static_cast<double>(out.volume()) / 2.4e11 * 1e6;
      break;
    default:
      break;
  }
  // Deterministic per-node jitter (measurement noise).
  size_t h = seed_;
  hash_combine_value(h, static_cast<int>(node.op));
  hash_combine_value(h, out.volume());
  Rng rng(h);
  return cost * (1.0 + jitter_ * rng.normal());
}

double node_cost(const CostModel& model, const TNode& node,
                 span<const ValueInfo> inputs, const ValueInfo& out) {
  if (out.weight_only) return 0.0;  // precomputed at inference time
  return model.op_cost(node, inputs, out);
}

double graph_cost(const Graph& g, const CostModel& model) {
  TENSAT_CHECK(g.kind() == GraphKind::kConcrete, "cannot cost a pattern graph");
  double total = 0.0;
  for (Id id : g.topo_order()) {
    const TNode& n = g.node(id);
    std::vector<ValueInfo> inputs;
    inputs.reserve(n.children.size());
    for (Id c : n.children) inputs.push_back(g.info(c));
    total += node_cost(model, n, inputs, g.info(id));
  }
  return total;
}

double enode_cost(const EGraph& eg, Id cls, const TNode& node, const CostModel& model) {
  std::vector<ValueInfo> inputs;
  inputs.reserve(node.children.size());
  for (Id c : node.children) inputs.push_back(eg.data(c));
  return node_cost(model, node, inputs, eg.data(cls));
}

}  // namespace tensat
