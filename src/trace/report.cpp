#include "trace/report.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace tensat::trace {

void print_explore_phases(std::FILE* out, const ExploreStats& stats,
                          const char* label) {
  std::fprintf(out,
               "%s: search %.3fs, apply %.3fs, rebuild %.3fs, dmap %.3fs, "
               "cycle sweep %.3fs (of %.3fs)\n",
               label, stats.search_seconds, stats.apply_seconds,
               stats.rebuild_seconds, stats.dmap_seconds,
               stats.cycle_sweep_seconds, stats.seconds);
}

void print_extract_phases(std::FILE* out, const ExtractStats& stats,
                          const char* label) {
  std::fprintf(out,
               "%s: reach %.3fs, reduce %.3fs, lp-build %.3fs, solve %.3fs, "
               "stitch %.3fs (%zu cores, largest %zu vars of %zu classes, "
               "gap %.2e, warm %d, refactor %d, fallback %zu)\n",
               label, stats.reach_seconds, stats.reduce_seconds,
               stats.lp_build_seconds, stats.solve_seconds,
               stats.stitch_seconds, stats.num_cores, stats.largest_core_vars,
               stats.classes_reachable, stats.gap, stats.warm_start_hits,
               stats.refactorizations, stats.fallback_cores);
}

void print_rule_profile(std::FILE* out, const ExploreStats& stats,
                        size_t top_n) {
  // Sort by attributed seconds, ties by name so the order is reproducible
  // even when every duration is zero (e.g. in the determinism tests).
  std::vector<size_t> order(stats.rules.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (stats.rules[a].seconds != stats.rules[b].seconds)
      return stats.rules[a].seconds > stats.rules[b].seconds;
    return stats.rules[a].name < stats.rules[b].name;
  });

  std::fprintf(out, "%-44s %9s %9s %9s %8s %5s %7s %9s\n", "rule", "matches",
               "planned", "committed", "nodes", "bans", "unbans", "seconds");
  size_t printed = 0;
  size_t elided = 0;
  for (size_t r : order) {
    const RuleTelemetry& rt = stats.rules[r];
    const bool silent = rt.matches == 0 && rt.bans == 0 && rt.seconds < 1e-4;
    if (silent || (top_n != 0 && printed >= top_n)) {
      ++elided;
      continue;
    }
    std::fprintf(out, "%-44s %9zu %9zu %9zu %8zu %5zu %7zu %9.3f\n",
                 rt.name.c_str(), rt.matches, rt.planned, rt.committed,
                 rt.nodes_added, rt.bans, rt.unbans, rt.seconds);
    ++printed;
  }
  if (elided > 0)
    std::fprintf(out, "(%zu rule%s with no activity%s not shown)\n", elided,
                 elided == 1 ? "" : "s", top_n != 0 ? " or below the cut" : "");
}

void print_growth_timeline(std::FILE* out, const ExploreStats& stats) {
  std::fprintf(out, "%4s %9s %9s %9s %9s %9s %9s %9s\n", "iter", "classes",
               "enodes", "hashcons", "filtered", "matches", "applied",
               "seconds");
  for (size_t i = 0; i < stats.growth.size(); ++i) {
    const IterationTelemetry& g = stats.growth[i];
    std::fprintf(out, "%4zu %9zu %9zu %9zu %9zu %9zu %9zu %9.3f\n", i,
                 g.eclasses, g.enodes, g.enodes_total, g.filtered, g.matches,
                 g.applications, g.seconds);
  }
}

}  // namespace tensat::trace
