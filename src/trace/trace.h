// Low-overhead tracing and telemetry for the optimizer stack.
//
// A Tracer collects three kinds of events — RAII scoped spans, counter
// samples, and instants — into lock-free per-thread lanes: each lane is
// written only by its owning thread, so recording takes no lock and no
// atomic RMW on the hot path. Lanes are merged at serial boundaries
// (summary() / write_chrome_trace(), which the caller invokes only after
// every parallel region has joined), ordered deterministically by
// (lane, per-lane sequence number).
//
// House determinism contract: wall-clock timestamps and lane assignment
// necessarily vary between runs and thread counts, so the *deterministic
// view* of a trace is everything except time — span names with their
// occurrence counts, aggregate counter totals (incr()), and counter-sample
// value sequences. Summary::deterministic_digest() serializes exactly that
// view; on the deterministic paths (no time-limit truncation) it is
// bit-identical for any search/apply/core thread count, pinned by
// tests/trace_test.cpp at 1/2/8 threads — the same contract the staged
// apply pipeline and incremental cycle analysis follow for the e-graph
// itself.
//
// Cost model: with no tracer installed (the default), every instrumentation
// point is one relaxed atomic load and a predictable branch — cheap enough
// to leave in release hot paths (bench_ematch_report's "trace" section gates
// tracing-*enabled* overhead at <= 5% on the explored-graph sweep; disabled
// overhead is unmeasurable). Event names must be string literals or other
// storage outliving the tracer (interned symbols qualify); dynamic detail
// goes in the int64 `arg`, never in the name.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "support/timer.h"

namespace tensat::trace {

/// One recorded event. Spans are stored complete (begin + duration, Chrome
/// "X" phase) rather than as begin/end pairs: half the events, and a span
/// can never be left dangling by an early return.
///
/// kStat is a counter sample whose *value* is inherently scheduling-
/// dependent (work-stealing pool queue depths, steal counts): it renders in
/// the Chrome trace like a counter but is excluded from
/// Summary::deterministic_digest(), so pool telemetry can never break the
/// cross-thread-count digest pins. Use kCounter for values the determinism
/// contract covers, kStat for values it cannot.
struct Event {
  enum class Kind : uint8_t { kSpan, kCounter, kInstant, kStat };
  const char* name;
  Kind kind;
  double ts_us;    // steady-clock microseconds since tracer construction
  double dur_us;   // kSpan only
  int64_t arg;     // span/instant detail (e.g. core index), or counter value
  bool has_arg;    // spans/instants: whether `arg` is meaningful
};

/// Merged, aggregated view of a trace (the in-memory summary sink).
struct Summary {
  struct SpanAgg {
    std::string name;
    size_t count{0};
    double total_us{0.0};
  };
  struct CounterSeries {
    std::string name;
    std::vector<int64_t> values;  // samples in deterministic merge order
  };
  struct Total {
    std::string name;
    int64_t value{0};  // sum of incr() deltas across all lanes
  };
  std::vector<SpanAgg> spans;        // sorted by name
  std::vector<CounterSeries> counters;  // sorted by name
  std::vector<Total> totals;         // sorted by name
  std::vector<CounterSeries> stats;  // kStat samples, sorted by name —
                                     // nondeterministic telemetry, NOT part
                                     // of deterministic_digest()
  size_t events{0};                  // total events across all lanes

  /// The deterministic view serialized: span names + counts, counter value
  /// sequences, and incr totals — no timestamps, no durations, no lane ids.
  /// Bit-identical across thread counts on the deterministic paths.
  [[nodiscard]] std::string deterministic_digest() const;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Makes this tracer the process-wide current tracer / removes it again.
  /// Instrumentation points pick it up through current(); install/uninstall
  /// must happen from serial code (typically main / a test body).
  void install();
  void uninstall();

  /// The installed tracer, or nullptr (tracing disabled). One relaxed
  /// atomic load — the entire disabled-path cost.
  [[nodiscard]] static Tracer* current() {
    return current_.load(std::memory_order_acquire);
  }

  /// Microseconds since construction on support/timer.h's steady clock (the
  /// repo's single timing authority).
  [[nodiscard]] double now_us() const { return timer_.seconds() * 1e6; }

  /// Records a completed span. Prefer ScopedSpan below.
  void record_span(const char* name, double start_us, double end_us,
                   int64_t arg = 0, bool has_arg = false);
  /// Records a counter sample (a timeline point; Chrome "C" phase). For a
  /// deterministic digest, sample a given counter name from one serial
  /// context only — concurrent samples of the same name merge in lane
  /// order, which worker scheduling can vary.
  void counter(const char* name, int64_t value);
  /// Records an instant event (Chrome "i" phase).
  void instant(const char* name, int64_t arg = 0, bool has_arg = false);
  /// Records a scheduling-dependent telemetry sample (Event::Kind::kStat):
  /// shown as a Chrome "C" counter, excluded from the deterministic digest.
  void stat(const char* name, int64_t value);
  /// Adds `delta` to the aggregate total for `name`. Lock-free (per-lane
  /// accumulation, summed at merge time); safe and deterministic from any
  /// thread — use for worker-side tallies like MILP iteration counts.
  void incr(const char* name, int64_t delta);

  /// Merges all lanes into the in-memory summary. Serial boundaries only.
  [[nodiscard]] Summary summary() const;

  /// Writes the merged trace as Chrome trace-event JSON (the object form:
  /// {"traceEvents": [...]}), loadable by chrome://tracing and Perfetto.
  /// Each lane becomes one "tid" so per-thread span gaps are visible.
  /// Serial boundaries only.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Lane;
  /// The calling thread's lane, registered on first use (the only locked
  /// operation; once per thread per tracer).
  Lane& lane();

  static std::atomic<Tracer*> current_;
  const uint64_t id_;  // process-unique; keys the thread-local lane cache
  Timer timer_;
  mutable std::mutex lanes_mu_;  // guards registration only, never recording
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// RAII scoped span: records [construction, destruction) under `name` on
/// the installed tracer, or does nothing (one atomic load) when tracing is
/// disabled. `arg` carries dynamic detail (rule/pattern/core index).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : tracer_(Tracer::current()), name_(name) {
    if (tracer_ != nullptr) start_us_ = tracer_->now_us();
  }
  ScopedSpan(const char* name, int64_t arg)
      : tracer_(Tracer::current()), name_(name), arg_(arg), has_arg_(true) {
    if (tracer_ != nullptr) start_us_ = tracer_->now_us();
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr)
      tracer_->record_span(name_, start_us_, tracer_->now_us(), arg_, has_arg_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  double start_us_{0.0};
  int64_t arg_{0};
  bool has_arg_{false};
};

/// Counter sample on the installed tracer; no-op when disabled.
inline void counter(const char* name, int64_t value) {
  if (Tracer* t = Tracer::current()) t->counter(name, value);
}

/// Instant event on the installed tracer; no-op when disabled.
inline void instant(const char* name, int64_t arg = 0, bool has_arg = false) {
  if (Tracer* t = Tracer::current()) t->instant(name, arg, has_arg);
}

/// Aggregate-total increment on the installed tracer; no-op when disabled.
inline void incr(const char* name, int64_t delta) {
  if (Tracer* t = Tracer::current()) t->incr(name, delta);
}

/// Scheduling-dependent telemetry sample (digest-excluded); no-op when
/// disabled.
inline void stat(const char* name, int64_t value) {
  if (Tracer* t = Tracer::current()) t->stat(name, value);
}

}  // namespace tensat::trace
