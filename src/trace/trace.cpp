#include "trace/trace.h"

#include <algorithm>
#include <map>
#include <utility>

#include "support/check.h"

namespace tensat::trace {
namespace {

/// Process-unique tracer ids. The thread-local lane cache is keyed by id,
/// not by Tracer*, so a stale cache entry can never alias a new tracer that
/// happens to reuse a destroyed one's address.
std::atomic<uint64_t> next_tracer_id{1};

struct LaneCache {
  uint64_t tracer_id{0};
  void* lane{nullptr};
};
thread_local LaneCache tls_lane;

void write_json_string(std::ostream& out, const char* s) {
  out << '"';
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::atomic<Tracer*> Tracer::current_{nullptr};

/// One thread's event buffer. Only the owning thread writes; the tracer
/// reads at serial boundaries (after every parallel region joined, so the
/// pool's join provides the happens-before edge).
struct Tracer::Lane {
  std::vector<Event> events;
  /// incr() totals: (name pointer, sum). Linear probe over a tiny vector —
  /// the name set is a handful of literals, and pointer identity is the
  /// key (same literal => same pointer within a TU; across TUs a duplicate
  /// entry merges by name at summary time anyway).
  std::vector<std::pair<const char*, int64_t>> totals;
};

Tracer::Tracer() : id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() {
  TENSAT_CHECK(current_.load(std::memory_order_acquire) != this,
               "tracer destroyed while installed");
}

void Tracer::install() {
  Tracer* expected = nullptr;
  TENSAT_CHECK(
      current_.compare_exchange_strong(expected, this, std::memory_order_acq_rel),
      "a tracer is already installed");
}

void Tracer::uninstall() {
  Tracer* expected = this;
  TENSAT_CHECK(
      current_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel),
      "uninstall: this tracer is not the installed one");
}

Tracer::Lane& Tracer::lane() {
  if (tls_lane.tracer_id == id_) return *static_cast<Lane*>(tls_lane.lane);
  const std::lock_guard<std::mutex> lock(lanes_mu_);
  lanes_.push_back(std::make_unique<Lane>());
  Lane* l = lanes_.back().get();
  tls_lane = LaneCache{id_, l};
  return *l;
}

void Tracer::record_span(const char* name, double start_us, double end_us,
                         int64_t arg, bool has_arg) {
  lane().events.push_back(Event{name, Event::Kind::kSpan, start_us,
                                end_us - start_us, arg, has_arg});
}

void Tracer::counter(const char* name, int64_t value) {
  lane().events.push_back(
      Event{name, Event::Kind::kCounter, now_us(), 0.0, value, true});
}

void Tracer::instant(const char* name, int64_t arg, bool has_arg) {
  lane().events.push_back(
      Event{name, Event::Kind::kInstant, now_us(), 0.0, arg, has_arg});
}

void Tracer::stat(const char* name, int64_t value) {
  lane().events.push_back(
      Event{name, Event::Kind::kStat, now_us(), 0.0, value, true});
}

void Tracer::incr(const char* name, int64_t delta) {
  Lane& l = lane();
  for (auto& [n, sum] : l.totals) {
    if (n == name) {
      sum += delta;
      return;
    }
  }
  l.totals.emplace_back(name, delta);
}

Summary Tracer::summary() const {
  Summary s;
  std::map<std::string, Summary::SpanAgg> spans;
  std::map<std::string, Summary::CounterSeries> counters;
  std::map<std::string, Summary::CounterSeries> stats;
  std::map<std::string, int64_t> totals;
  const std::lock_guard<std::mutex> lock(lanes_mu_);
  for (const auto& lane : lanes_) {
    s.events += lane->events.size();
    for (const Event& e : lane->events) {
      switch (e.kind) {
        case Event::Kind::kSpan: {
          auto& agg = spans[e.name];
          agg.name = e.name;
          ++agg.count;
          agg.total_us += e.dur_us;
          break;
        }
        case Event::Kind::kCounter: {
          auto& series = counters[e.name];
          series.name = e.name;
          series.values.push_back(e.arg);
          break;
        }
        case Event::Kind::kInstant: {
          auto& agg = spans[e.name];
          agg.name = e.name;
          ++agg.count;
          break;
        }
        case Event::Kind::kStat: {
          auto& series = stats[e.name];
          series.name = e.name;
          series.values.push_back(e.arg);
          break;
        }
      }
    }
    for (const auto& [name, sum] : lane->totals) totals[name] += sum;
  }
  for (auto& [name, agg] : spans) s.spans.push_back(std::move(agg));
  for (auto& [name, series] : counters) s.counters.push_back(std::move(series));
  for (auto& [name, series] : stats) s.stats.push_back(std::move(series));
  for (const auto& [name, value] : totals)
    s.totals.push_back(Summary::Total{name, value});
  return s;
}

std::string Summary::deterministic_digest() const {
  std::string out;
  for (const SpanAgg& sp : spans) {
    out += "span ";
    out += sp.name;
    out += " x";
    out += std::to_string(sp.count);
    out += '\n';
  }
  for (const CounterSeries& c : counters) {
    out += "counter ";
    out += c.name;
    out += ':';
    for (int64_t v : c.values) {
      out += ' ';
      out += std::to_string(v);
    }
    out += '\n';
  }
  for (const Total& t : totals) {
    out += "total ";
    out += t.name;
    out += '=';
    out += std::to_string(t.value);
    out += '\n';
  }
  return out;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(lanes_mu_);
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (size_t t = 0; t < lanes_.size(); ++t) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << t
        << ",\"args\":{\"name\":\"lane " << t << (t == 0 ? " (serial)" : "")
        << "\"}}";
  }
  char num[64];
  for (size_t t = 0; t < lanes_.size(); ++t) {
    for (const Event& e : lanes_[t]->events) {
      sep();
      out << "{\"name\":";
      write_json_string(out, e.name);
      switch (e.kind) {
        case Event::Kind::kSpan:
          std::snprintf(num, sizeof(num), "%.3f,\"dur\":%.3f", e.ts_us, e.dur_us);
          out << ",\"ph\":\"X\",\"ts\":" << num;
          break;
        case Event::Kind::kCounter:
        case Event::Kind::kStat:
          std::snprintf(num, sizeof(num), "%.3f", e.ts_us);
          out << ",\"ph\":\"C\",\"ts\":" << num;
          break;
        case Event::Kind::kInstant:
          std::snprintf(num, sizeof(num), "%.3f", e.ts_us);
          out << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << num;
          break;
      }
      out << ",\"pid\":0,\"tid\":" << t;
      if (e.kind == Event::Kind::kCounter || e.kind == Event::Kind::kStat) {
        out << ",\"args\":{\"value\":" << e.arg << '}';
      } else if (e.has_arg) {
        out << ",\"args\":{\"arg\":" << e.arg << '}';
      }
      out << '}';
    }
    // Aggregate totals surface as one final counter sample per lane so they
    // are visible in the viewer without a separate sink.
    for (const auto& [name, sum] : lanes_[t]->totals) {
      sep();
      out << "{\"name\":";
      write_json_string(out, name);
      out << ",\"ph\":\"C\",\"ts\":" << static_cast<int64_t>(now_us())
          << ",\"pid\":0,\"tid\":" << t << ",\"args\":{\"value\":" << sum << "}}";
    }
  }
  out << "]}\n";
}

}  // namespace tensat::trace
