// Shared human-readable telemetry formatting: one implementation of the
// phase-time lines, the per-rule profile table, and the per-iteration growth
// timeline, used by the examples and the tensat_profile CLI. Before this
// header each example hand-rolled its own printf block (and nasrnn_cell
// lumped dmap + cycle sweep into a single "cycles" number); keeping the
// format in one place keeps the tools comparable.
#pragma once

#include <cstdio>

#include "optimizer/optimizer.h"

namespace tensat::trace {

/// One line: `<label>: search 0.123s, apply 0.456s, rebuild ..., dmap ...,
/// cycle sweep ... (of <total>s)`. The five phases are ExploreStats' full
/// wall-clock decomposition — dmap and cycle sweep printed separately, never
/// lumped.
void print_explore_phases(std::FILE* out, const ExploreStats& stats,
                          const char* label);

/// One line: `<label>: reach ..., reduce ..., lp-build ..., solve ...,
/// stitch ... (<cores> cores, largest <vars> vars of <classes> classes)`.
void print_extract_phases(std::FILE* out, const ExtractStats& stats,
                          const char* label);

/// The per-rule profile table, sorted by attributed seconds (descending).
/// Rules that never matched and consumed no measurable time are elided.
/// `top_n` truncates the table (0 = no truncation); a final line reports how
/// many rules were elided or cut.
void print_rule_profile(std::FILE* out, const ExploreStats& stats,
                        size_t top_n = 0);

/// The per-iteration e-graph growth timeline (classes / e-nodes / hash-cons
/// size / filtered / matches / applications / seconds per iteration).
void print_growth_timeline(std::FILE* out, const ExploreStats& stats);

}  // namespace tensat::trace
