#include "support/pool.h"

#include <algorithm>
#include <exception>

#include "trace/trace.h"

namespace tensat {

namespace pool_detail {

/// Fork-join control block for one for_each call. Heap-allocated and
/// reference-counted: the caller holds one reference, every published
/// invitation holds one. The caller returns as soon as all items are
/// accounted for; a stale invitation accepted later finds the cursor
/// exhausted, touches neither fn nor ctx (both may dangle by then), and
/// just drops its reference.
struct Job {
  WorkStealingPool::RawFn invoke = nullptr;
  void* ctx = nullptr;
  size_t n = 0;
  size_t chunk = 1;

  std::atomic<size_t> next{0};       // item cursor (chunked claims)
  std::atomic<size_t> done{0};       // items accounted for (ran or skipped)
  std::atomic<bool> cancelled{false};
  std::atomic<int> refs{0};

  std::mutex mu;                // guards error; pairs with cv
  std::condition_variable cv;   // caller waits here for done == n
  std::exception_ptr error;     // first exception, set once under mu

  /// Claims and runs chunks until the cursor is exhausted. Every claimed
  /// index is counted in `done` even when cancellation skips its fn — the
  /// join point below can therefore guarantee all-items-ran-or-thrown.
  void run_chunks() {
    for (;;) {
      const size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = std::min(begin + chunk, n);
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          for (size_t i = begin; i < end; ++i) {
            if (cancelled.load(std::memory_order_relaxed)) break;
            invoke(ctx, i);
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
      const size_t finished =
          done.fetch_add(end - begin, std::memory_order_acq_rel) + (end - begin);
      if (finished == n) {
        // Lock then notify so the caller is either not yet waiting (its
        // predicate re-check sees done == n) or inside wait (gets woken).
        const std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }

  void release() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
};

namespace {
constexpr int64_t kInitialDequeCap = 64;
}  // namespace

InvitationDeque::InvitationDeque() : buf_(new Buf(kInitialDequeCap)) {}

InvitationDeque::~InvitationDeque() { delete buf_.load(std::memory_order_relaxed); }

void InvitationDeque::push(Job* job) {
  const int64_t b = bottom_.load(std::memory_order_seq_cst);
  const int64_t t = top_.load(std::memory_order_seq_cst);
  Buf* a = buf_.load(std::memory_order_relaxed);
  if (b - t >= a->cap) {
    grow(a, t, b);
    a = buf_.load(std::memory_order_relaxed);
  }
  // The release store on the cell is what publishes *job's fields to a
  // stealer's acquire load of the same cell.
  a->cells[b & a->mask].store(job, std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

Job* InvitationDeque::pop() {
  const int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
  Buf* a = buf_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);
  int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {  // empty
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return nullptr;
  }
  Job* job = a->cells[b & a->mask].load(std::memory_order_acquire);
  if (t < b) return job;  // more than one item left; no race possible
  // Last item: race the stealers through a CAS on top.
  const bool won = top_.compare_exchange_strong(
      t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
  bottom_.store(b + 1, std::memory_order_seq_cst);
  return won ? job : nullptr;
}

Job* InvitationDeque::steal() {
  int64_t t = top_.load(std::memory_order_seq_cst);
  const int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Buf* a = buf_.load(std::memory_order_acquire);
  Job* job = a->cells[t & a->mask].load(std::memory_order_acquire);
  // A failed CAS means the owner popped it or another thief won; the value
  // read above may then be stale (possibly from a retired buffer) and is
  // discarded unused.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    return nullptr;
  }
  return job;
}

size_t InvitationDeque::size() const {
  const int64_t b = bottom_.load(std::memory_order_relaxed);
  const int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<size_t>(b - t) : 0;
}

void InvitationDeque::grow(Buf* old, int64_t top, int64_t bottom) {
  Buf* bigger = new Buf(old->cap * 2);
  for (int64_t i = top; i < bottom; ++i) {
    bigger->cells[i & bigger->mask].store(
        old->cells[i & old->mask].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  buf_.store(bigger, std::memory_order_release);
  // In-flight stealers may still read the old buffer's cells for indices in
  // [top, bottom) — identical values, and their CAS on top_ arbitrates — so
  // it must stay allocated until the deque itself dies.
  retired_.emplace_back(old);
}

}  // namespace pool_detail

namespace {
// The worker a pool thread belongs to, and to which pool. Worker-recursive
// for_each calls push invitations onto their own deque (lock-free); foreign
// threads go through the injection queue.
thread_local WorkStealingPool* tls_pool = nullptr;
thread_local void* tls_worker = nullptr;
}  // namespace

WorkStealingPool& WorkStealingPool::global() {
  static WorkStealingPool pool;
  return pool;
}

WorkStealingPool::~WorkStealingPool() {
  {
    const std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  const size_t nw = worker_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < nw; ++i) {
    if (workers_[i]->thread.joinable()) workers_[i]->thread.join();
  }
  // Leftover invitations reference jobs that already completed (the caller
  // always self-completes before returning); just drop their references.
  for (size_t i = 0; i < nw; ++i) {
    while (pool_detail::Job* job = workers_[i]->deque.pop()) job->release();
  }
  for (pool_detail::Job* job : injected_) job->release();
}

void WorkStealingPool::ensure_workers(size_t want) {
  want = std::min(want, kMaxWorkers);
  if (worker_count_.load(std::memory_order_acquire) >= want) return;
  const std::lock_guard<std::mutex> lock(spawn_mu_);
  size_t have = worker_count_.load(std::memory_order_relaxed);
  while (have < want) {
    workers_[have] = std::make_unique<Worker>();
    workers_[have]->index = have;
    Worker* w = workers_[have].get();
    w->thread = std::thread([this, w] { worker_loop(w); });
    ++have;
    worker_count_.store(have, std::memory_order_release);
  }
}

void WorkStealingPool::submit(pool_detail::Job* job, size_t invitations) {
  Worker* self =
      (tls_pool == this) ? static_cast<Worker*>(tls_worker) : nullptr;
  if (self != nullptr) {
    for (size_t i = 0; i < invitations; ++i) self->deque.push(job);
  } else {
    const std::lock_guard<std::mutex> lock(inject_mu_);
    for (size_t i = 0; i < invitations; ++i) injected_.push_back(job);
    injected_size_.store(injected_.size(), std::memory_order_relaxed);
  }
  {
    // Empty critical section: a sleeper that scanned before the pushes
    // above has either reached wait() (the notify lands) or not yet locked
    // sleep_mu_ (its under-lock re-scan will find the work).
    const std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
}

pool_detail::Job* WorkStealingPool::find_work(Worker* self) {
  if (self != nullptr) {
    if (pool_detail::Job* job = self->deque.pop()) return job;
  }
  {
    const std::lock_guard<std::mutex> lock(inject_mu_);
    if (!injected_.empty()) {
      pool_detail::Job* job = injected_.front();
      injected_.pop_front();
      injected_size_.store(injected_.size(), std::memory_order_relaxed);
      return job;
    }
  }
  const size_t nw = worker_count_.load(std::memory_order_acquire);
  const size_t start = self != nullptr ? self->index + 1 : 0;
  for (size_t k = 0; k < nw; ++k) {
    Worker* victim = workers_[(start + k) % nw].get();
    if (victim == self) continue;
    if (pool_detail::Job* job = victim->deque.steal()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return job;
    }
  }
  return nullptr;
}

void WorkStealingPool::worker_loop(Worker* self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    pool_detail::Job* job = find_work(self);
    if (job == nullptr) {
      std::unique_lock<std::mutex> lock(sleep_mu_);
      if (stop_) return;
      job = find_work(self);  // re-scan under the lock: no lost wakeup
      if (job == nullptr) {
        sleep_cv_.wait(lock);
        continue;
      }
      lock.unlock();
    }
    job->run_chunks();
    job->release();
  }
}

void WorkStealingPool::for_each(size_t n, size_t participants, RawFn fn,
                                void* ctx) {
  if (n == 0) return;
  participants = std::min({participants, n, kMaxWorkers + 1});
  if (participants <= 1) {
    for (size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }
  ensure_workers(participants - 1);

  auto* job = new pool_detail::Job;
  job->invoke = fn;
  job->ctx = ctx;
  job->n = n;
  // ~8 chunks per participant: coarse enough to amortize the cursor RMW,
  // fine enough that stealing rebalances a skewed item-cost distribution.
  job->chunk = std::max<size_t>(1, n / (participants * 8));
  job->refs.store(static_cast<int>(participants), std::memory_order_relaxed);

  jobs_.fetch_add(1, std::memory_order_relaxed);
  invitations_.fetch_add(participants - 1, std::memory_order_relaxed);
  const uint64_t steals_before = steals_.load(std::memory_order_relaxed);
  // Sample the backlog across the WHOLE pool, before this call's own
  // invitations land. (The stat used to read only the calling worker's own
  // deque — a lane that is empty almost by definition at this point, since
  // the caller drains its own deque before submitting new work.)
  const size_t queue_depth_before =
      trace::Tracer::current() != nullptr ? queue_depth() : 0;

  submit(job, participants - 1);
  job->run_chunks();
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [job] {
      return job->done.load(std::memory_order_acquire) == job->n;
    });
  }
  // All chunk executions are finished (done == n with acquire ordering), so
  // `error` is final; stale invitations never touch it.
  const std::exception_ptr error = job->error;
  job->release();

  if (trace::Tracer::current() != nullptr) {
    // Scheduling-dependent by nature -> kStat, never kCounter (the
    // deterministic digest must stay thread-count-invariant).
    trace::stat("pool/steals",
                static_cast<int64_t>(
                    steals_.load(std::memory_order_relaxed) - steals_before));
    trace::stat("pool/queue_depth", static_cast<int64_t>(queue_depth_before));
  }

  if (error) std::rethrow_exception(error);
}

size_t WorkStealingPool::queue_depth() const {
  // Lock-free on purpose: the tracer's pool/queue_depth stat samples this
  // on every traced for_each dispatch, so it must cost a handful of relaxed
  // loads, not an inject_mu_ acquisition racing real submitters.
  size_t depth = injected_size_.load(std::memory_order_relaxed);
  const size_t count = worker_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) depth += workers_[i]->deque.size();
  return depth;
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  Stats s;
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.invitations = invitations_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tensat
