// Hash helpers used by hash-consing maps across the project.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace tensat {

/// Mixes `value`'s hash into `seed` (boost-style combiner with a 64-bit
/// avalanche step; good enough for hash-cons tables).
inline void hash_combine(size_t& seed, size_t value) {
  value *= 0x9e3779b97f4a7c15ull;
  value ^= value >> 32;
  seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

template <typename T>
void hash_combine_value(size_t& seed, const T& v) {
  hash_combine(seed, std::hash<T>{}(v));
}

}  // namespace tensat
