#include "support/symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace tensat {
namespace {

// Process-wide interner. A deque keeps string addresses stable so str() can
// return references without holding the lock.
struct Interner {
  std::mutex mu;
  std::deque<std::string> strings;
  std::unordered_map<std::string_view, uint32_t> ids;

  uint32_t intern(std::string_view text) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = ids.find(text);
    if (it != ids.end()) return it->second;
    strings.emplace_back(text);
    const uint32_t id = static_cast<uint32_t>(strings.size() - 1);
    ids.emplace(strings.back(), id);
    return id;
  }

  const std::string& lookup(uint32_t id) {
    std::lock_guard<std::mutex> lock(mu);
    return strings[id];
  }
};

Interner& interner() {
  static Interner* instance = new Interner();  // intentionally leaked
  return *instance;
}

}  // namespace

Symbol::Symbol() : id_(interner().intern("")) {}
Symbol::Symbol(std::string_view text) : id_(interner().intern(text)) {}

const std::string& Symbol::str() const { return interner().lookup(id_); }
bool Symbol::empty() const { return str().empty(); }

}  // namespace tensat
