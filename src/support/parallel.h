// Minimal fork-join fan-out for read-only work: runs fn(0..n-1) across a
// small worker pool fed by an atomic index counter. Built for the pattern
// searches of the exploration loop (the e-matching VM is read-only over a
// clean e-graph), where determinism comes from the caller writing results
// into per-index slots and merging in index order — worker scheduling then
// cannot influence anything observable.
#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace tensat {

/// Resolves a thread-count hint: 0 means "use the hardware concurrency"
/// (never less than 1 even when the runtime cannot report it).
inline size_t resolve_threads(size_t hint) {
  if (hint != 0) return hint;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Runs fn(i) for every i in [0, n) using up to `threads` workers (0 = one
/// per hardware thread; the calling thread always participates). Items are
/// claimed from an atomic counter, so the item-to-worker assignment is
/// nondeterministic — fn must only write state owned by its own index. The
/// first exception any fn throws is rethrown on the calling thread after all
/// workers have stopped; remaining unclaimed items are skipped.
template <typename Fn>
void parallel_for(size_t n, size_t threads, Fn&& fn) {
  threads = std::min(resolve_threads(threads), n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace tensat
