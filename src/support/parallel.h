// Fork-join fan-out for the exploration loop: runs fn(0..n-1) across the
// persistent work-stealing pool (support/pool.h) fed by an atomic chunk
// cursor. Built for the pattern searches, apply planning, cycle row-DP, and
// extraction cores, where determinism comes from the caller writing results
// into per-index slots and merging in index order — worker scheduling then
// cannot influence anything observable.
//
// parallel_for used to spawn fresh std::threads per call; dispatch cost
// (tens of microseconds per thread) exceeded many whole sub-millisecond
// regions, which is why BENCH_ematch.json's parallel rows sat at ~1x. The
// pool-backed version dispatches in ~1 allocation + a condvar wake. The old
// spawning implementation survives as spawning_parallel_for: it is the
// baseline bench_ematch_report section 8 gates the pool against (>= 1.5x),
// and a semantics oracle for tests/parallel_pool_test.cpp.
#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/pool.h"

namespace tensat {

/// Resolves a thread-count hint: 0 means "use the hardware concurrency"
/// (never less than 1 even when the runtime cannot report it).
inline size_t resolve_threads(size_t hint) {
  if (hint != 0) return hint;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Runs fn(i) for every i in [0, n) using up to `threads` participants of
/// the process-wide work-stealing pool (0 = one per hardware thread; the
/// calling thread always participates). Items are claimed in chunks from an
/// atomic cursor, so the item-to-worker assignment is nondeterministic — fn
/// must only write state owned by its own index. Returns only once every
/// item is accounted for: either all of fn(0..n-1) ran, or an fn threw and
/// the first exception is rethrown here after the remaining items were
/// explicitly skipped (never silently dropped). The pool stays usable after
/// an exception.
template <typename Fn>
void parallel_for(size_t n, size_t threads, Fn&& fn) {
  threads = std::min(resolve_threads(threads), n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  using F = std::remove_reference_t<Fn>;
  WorkStealingPool::global().for_each(
      n, threads, [](void* ctx, size_t i) { (*static_cast<F*>(ctx))(i); },
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
}

/// The pre-pool implementation: spawns `threads - 1` fresh std::threads per
/// call and joins them before returning. Kept as the measured baseline for
/// bench_ematch_report's pool section and as a differential oracle in the
/// pool tests — not for production call sites (dispatch costs tens of
/// microseconds per thread per call). Note its failure path keeps the old
/// semantics the pool fixed: after an exception, remaining unclaimed items
/// are skipped without being accounted (the exception is still rethrown).
template <typename Fn>
void spawning_parallel_for(size_t n, size_t threads, Fn&& fn) {
  threads = std::min(resolve_threads(threads), n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace tensat
