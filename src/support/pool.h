// A persistent work-stealing pool behind parallel_for (support/parallel.h).
//
// The exploration loop dispatches many sub-millisecond fork-join regions
// (pattern sweeps, apply planning, cycle row-DP waves, extraction cores).
// Spawning std::threads per region costs tens of microseconds each — more
// than some whole regions — which is why the committed BENCH_ematch.json
// parallel rows used to sit at ~1x. This pool starts its workers lazily,
// keeps them alive for the process lifetime, and hands them work through
// per-worker Chase-Lev deques, so dispatching a region costs roughly one
// heap allocation plus a condition-variable wake.
//
// Scheduling model ("invitations"):
//   * A fork-join call (for_each) builds one heap-allocated Job — the item
//     cursor, completion count, and error slot — and publishes
//     `participants - 1` *invitations* to it: Job pointers pushed onto the
//     calling worker's own deque (or onto a mutex-guarded injection queue
//     when the caller is not a pool worker, e.g. the main thread).
//   * Each invitation entitles exactly one worker to join that job, so a
//     job's concurrency never exceeds the participant count the caller
//     asked for, even while unrelated jobs run on the same pool.
//   * Idle workers pop their own deque from the bottom and steal from
//     other workers' deques from the top (Chase-Lev); both ends fall back
//     to the injection queue.
//   * Workers joining a job claim *chunks* of the index space from the
//     job's atomic cursor. The item-to-worker assignment is therefore
//     nondeterministic — exactly the contract parallel_for always had:
//     callers write per-index slots and merge in index order.
//
// Join semantics (the partial-completion fix): for_each returns only after
// every index in [0, n) is accounted for — either its fn ran, or a prior
// exception cancelled the job and the index was explicitly skipped *and
// counted*. On cancellation the first exception is rethrown; there is no
// silent path where the call returns normally with unrun items. The pool
// stays fully usable after an exception (all job state is per-call).
//
// Nested submission is deadlock-free: the caller of for_each always
// participates and drives its own job's cursor to exhaustion, so a job can
// only ever wait on chunks that other threads are *actively executing* —
// never on an invitation nobody accepted.
//
// The caller never blocks on invitation pickup: once the last chunk
// completes, for_each returns and leftover invitations become no-ops
// (the Job control block is reference-counted and outlives them).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tensat {

namespace pool_detail {
struct Job;

/// Chase-Lev work-stealing deque of Job invitations. The owning worker
/// pushes and pops at the bottom; any thread may steal from the top. Cell
/// accesses are release/acquire so the publication of the pointed-to Job is
/// carried by the cell itself (keeps TSan's happens-before graph exact);
/// top/bottom use seq_cst — this is the textbook algorithm, deliberately
/// not the fence-minimized variant.
class InvitationDeque {
 public:
  InvitationDeque();
  ~InvitationDeque();
  InvitationDeque(const InvitationDeque&) = delete;
  InvitationDeque& operator=(const InvitationDeque&) = delete;

  void push(Job* job);  // owner thread only
  Job* pop();           // owner thread only
  Job* steal();         // any thread; nullptr on empty or lost race
  size_t size() const;  // approximate (racy read of both ends)

 private:
  struct Buf {
    explicit Buf(int64_t c) : cap(c), mask(c - 1), cells(new std::atomic<Job*>[c]) {}
    const int64_t cap;
    const int64_t mask;  // cap is a power of two
    std::unique_ptr<std::atomic<Job*>[]> cells;
  };

  void grow(Buf* old, int64_t top, int64_t bottom);  // owner thread only

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buf*> buf_;
  // Replaced buffers stay alive until the deque dies: a stealer may still
  // be reading a cell of an old buffer; its CAS on top_ rejects stale wins.
  std::vector<std::unique_ptr<Buf>> retired_;  // owner thread only
};

}  // namespace pool_detail

class WorkStealingPool {
 public:
  /// The process-wide pool shared by search, apply planning, the cycle
  /// row-DP, and extraction cores. Constructed on first use (no workers
  /// until the first multi-participant job); destroyed — workers joined —
  /// at static destruction, so LSan/TSan see a clean shutdown.
  static WorkStealingPool& global();

  ~WorkStealingPool();
  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  using RawFn = void (*)(void* ctx, size_t index);

  /// Runs fn(ctx, i) for every i in [0, n) with up to `participants`
  /// threads (the caller included; clamped to n and to kMaxWorkers + 1).
  /// Participants above the hardware concurrency are honored — the pool
  /// grows to the requested width — so oversubscribed configurations
  /// (e.g. 8-thread determinism tests on a 1-core machine) exercise real
  /// concurrency interleavings. Blocks until all items are accounted for;
  /// rethrows the first exception (see the join-semantics note above).
  void for_each(size_t n, size_t participants, RawFn fn, void* ctx);

  /// Cumulative telemetry (monotone, process lifetime).
  struct Stats {
    uint64_t jobs = 0;         // for_each calls that took the parallel path
    uint64_t invitations = 0;  // invitations published
    uint64_t steals = 0;       // successful deque steals
  };
  Stats stats() const;

  /// Pending invitations across the whole pool: every worker deque plus the
  /// injection queue. Approximate (each deque is read racily while owners
  /// push/pop), but covers ALL lanes — unlike a single worker's own deque,
  /// which is empty almost by definition whenever that worker is the one
  /// asking. This is the number the pool-utilization gauge wants: how much
  /// published work is waiting for a thread, wherever it is queued.
  size_t queue_depth() const;

  size_t worker_count() const {
    return worker_count_.load(std::memory_order_acquire);
  }

  /// Hard cap on pool width; participants clamp to kMaxWorkers + 1.
  static constexpr size_t kMaxWorkers = 64;

 private:
  struct Worker {
    pool_detail::InvitationDeque deque;
    std::thread thread;
    size_t index = 0;
  };

  WorkStealingPool() = default;

  void ensure_workers(size_t want);
  void submit(pool_detail::Job* job, size_t invitations);
  pool_detail::Job* find_work(Worker* self);
  void worker_loop(Worker* self);

  // Fixed-capacity slot array so stealers can scan concurrently with lazy
  // spawning: slots [0, worker_count_) are fully constructed (release/
  // acquire on the count publishes them).
  std::unique_ptr<Worker> workers_[kMaxWorkers];
  std::atomic<size_t> worker_count_{0};
  std::mutex spawn_mu_;

  // Submission path for non-worker callers (the main thread, test threads).
  // injected_size_ mirrors injected_.size() (updated under inject_mu_ at
  // every push/pop) so queue_depth() can read the backlog without taking
  // the lock — it is sampled per traced dispatch.
  std::mutex inject_mu_;
  std::deque<pool_detail::Job*> injected_;
  std::atomic<size_t> injected_size_{0};

  // Sleep/wake. Producers take sleep_mu_ around the notify and sleepers
  // re-scan for work under it before waiting, so a wake can never be lost;
  // a missed invitation would otherwise only cost parallelism (the caller
  // self-completes), but there is no reason to accept even that.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  bool stop_ = false;

  std::atomic<uint64_t> jobs_{0};
  std::atomic<uint64_t> invitations_{0};
  std::atomic<uint64_t> steals_{0};
};

}  // namespace tensat
