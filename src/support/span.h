// Minimal C++17 stand-in for std::span (the project targets C++17; the
// standard type arrives in C++20). Covers only what this codebase uses:
// non-owning view over contiguous storage, constructible from containers
// with data()/size() (vector, array, Tensor storage) and from pointer+size.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <type_traits>

namespace tensat {

template <typename T>
class span {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;

  constexpr span() noexcept = default;
  constexpr span(T* data, size_t size) noexcept : data_(data), size_(size) {}

  /// From any contiguous container whose data() pointer converts to T*.
  template <typename Container,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(std::declval<Container&>().data()), T*>>>
  constexpr span(Container& c) noexcept : data_(c.data()), size_(c.size()) {}
  template <typename Container,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(std::declval<const Container&>().data()), T*>>>
  constexpr span(const Container& c) noexcept : data_(c.data()), size_(c.size()) {}

  template <size_t N>
  constexpr span(T (&arr)[N]) noexcept : data_(arr), size_(N) {}

  /// Braced-list arguments ({1, 2, 3}); valid for spans of const elements only
  /// (the list's backing array lives for the duration of the full expression).
  template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
  constexpr span(std::initializer_list<value_type> il) noexcept
      : data_(il.begin()), size_(il.size()) {}

  [[nodiscard]] constexpr T* data() const noexcept { return data_; }
  [[nodiscard]] constexpr size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  constexpr T& operator[](size_t i) const { return data_[i]; }
  [[nodiscard]] constexpr T& front() const { return data_[0]; }
  [[nodiscard]] constexpr T& back() const { return data_[size_ - 1]; }
  [[nodiscard]] constexpr T* begin() const noexcept { return data_; }
  [[nodiscard]] constexpr T* end() const noexcept { return data_ + size_; }
  [[nodiscard]] constexpr span subspan(size_t offset) const {
    return span(data_ + offset, size_ - offset);
  }

 private:
  T* data_{nullptr};
  size_t size_{0};
};

}  // namespace tensat
