// Interned strings. A Symbol is a cheap, trivially copyable handle to a string
// stored in a process-wide table; equality and hashing are integer operations.
// Used for operator string payloads (tensor identifiers, permutations, shapes)
// and pattern variable names.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace tensat {

class Symbol {
 public:
  /// The empty symbol, interned for "".
  Symbol();

  /// Interns `text` (idempotent) and returns its handle.
  explicit Symbol(std::string_view text);

  /// The interned text. Valid for the lifetime of the process.
  [[nodiscard]] const std::string& str() const;

  [[nodiscard]] uint32_t id() const { return id_; }
  [[nodiscard]] bool empty() const;

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  uint32_t id_;
};

}  // namespace tensat

template <>
struct std::hash<tensat::Symbol> {
  size_t operator()(tensat::Symbol s) const noexcept {
    return std::hash<uint32_t>{}(s.id());
  }
};
