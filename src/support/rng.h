// Deterministic pseudo-random numbers (splitmix64 core). All stochastic pieces
// of the project (test inputs, measurement-noise simulation, TASO tie-breaks)
// take an explicit Rng so runs are reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace tensat {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  /// Standard normal via Box-Muller (one value per call; simple and adequate).
  double normal() {
    double u1 = 0.0;
    while (u1 <= 1e-12) u1 = uniform();
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  bool chance(double p) { return uniform() < p; }

 private:
  uint64_t state_;
};

}  // namespace tensat
