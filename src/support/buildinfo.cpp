#include "support/buildinfo.h"

namespace tensat {

const char* build_git_sha() {
#ifdef TENSAT_GIT_SHA
  return TENSAT_GIT_SHA;
#else
  return "unknown";
#endif
}

const char* build_type() {
#ifdef TENSAT_BUILD_TYPE
  return TENSAT_BUILD_TYPE;
#else
  return "unknown";
#endif
}

}  // namespace tensat
