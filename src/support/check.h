// Error-checking macros. TENSAT_CHECK throws on violation in all build modes;
// it is used for invariants whose failure indicates a bug or malformed input
// that the caller cannot recover from locally.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tensat {

/// Exception type thrown by TENSAT_CHECK / TENSAT_FAIL.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace tensat

#define TENSAT_FAIL(msg)                                            \
  do {                                                              \
    std::ostringstream tensat_os_;                                  \
    tensat_os_ << msg;                                              \
    ::tensat::detail::fail(__FILE__, __LINE__, tensat_os_.str());   \
  } while (0)

#define TENSAT_CHECK(cond, msg)                                     \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::ostringstream tensat_os_;                                \
      tensat_os_ << "check failed: " #cond ": " << msg;             \
      ::tensat::detail::fail(__FILE__, __LINE__, tensat_os_.str()); \
    }                                                               \
  } while (0)
