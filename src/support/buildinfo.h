// Build provenance for benchmark artifacts: which commit and build type
// produced a BENCH_*.json or trace.json. The values are baked in at
// configure time (CMake passes TENSAT_GIT_SHA / TENSAT_BUILD_TYPE as
// per-source compile definitions on buildinfo.cpp only, so a new commit
// recompiles one translation unit, not the library).
#pragma once

namespace tensat {

/// Short git SHA of the checkout the build was configured from, or
/// "unknown" outside a git checkout.
const char* build_git_sha();

/// CMAKE_BUILD_TYPE of this build (e.g. "Release"), or "unknown".
const char* build_type();

}  // namespace tensat
