// Wall-clock timing helpers used for optimizer phase statistics and for the
// benchmark harnesses that report optimizer time.
//
// This is the single timing authority for the repo: every duration — phase
// stats, benchmark reps, time limits, and the tracer's now_us()
// (src/trace/trace.h) — goes through this steady-clock Timer. Do not add
// raw std::chrono call sites elsewhere; system_clock is subject to NTP
// steps, and mixing clocks breaks span nesting in the trace timeline.
#pragma once

#include <chrono>

namespace tensat {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tensat
