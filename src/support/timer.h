// Wall-clock timing helpers used for optimizer phase statistics and for the
// benchmark harnesses that report optimizer time.
#pragma once

#include <chrono>

namespace tensat {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tensat
