// The register-based e-matching VM. Executes a compiled Program (program.h)
// against an e-graph: kBind and kScan instructions are the backtracking
// points (iterating the e-nodes of a class with the right operator, resp.
// the candidate root classes of a joint sub-pattern), everything else is a
// straight-line check. Searches dispatch through the e-graph's op-index
// (EGraph::classes_with_op) so classes that cannot match a pattern root are
// never visited.
//
// Results are bit-for-bit interchangeable with the naive matcher in
// rewrite/matcher.h: same substitutions, same multiplicities, variables
// bound to canonical e-class ids (tests/ematch_test.cpp proves this by
// differential testing across the full rule set).
#pragma once

#include <vector>

#include "egraph/egraph.h"
#include "ematch/program.h"
#include "rewrite/subst.h"

namespace tensat::ematch {

struct MatchLimits {
  /// Cap on substitutions returned by one search. 0 = unlimited.
  size_t max_matches = 200000;
  /// Cap on VM work (e-nodes tried by kBind) per search; the search returns
  /// what it has when the budget runs out. 0 = unlimited.
  size_t max_steps = 2000000;
};

/// All matches of the compiled pattern anywhere in the e-graph. The e-graph
/// must be clean (rebuilt). Filtered e-nodes are treated as removed.
std::vector<PatternMatch> search(const EGraph& eg, const Program& prog,
                                 const MatchLimits& limits = {});

/// Matches of the compiled pattern against one specific e-class.
std::vector<Subst> match_class(const EGraph& eg, const Program& prog, Id class_id,
                               const MatchLimits& limits = {});

/// One match of a joint multi-pattern program: the e-class each sub-pattern
/// root matched (in source order) plus the combined substitution. Exactly the
/// compatible tuples the Cartesian-product join of the per-source match sets
/// would produce (tests/joint_ematch_test.cpp proves this differentially).
struct JointMatch {
  std::vector<Id> roots;
  Subst subst;
};

/// All matches of a joint program (compile_joint_pattern) in the e-graph.
/// Candidate classes for each sub-pattern root come from the op-index; shared
/// variables prune cross-pattern combinations during the search. The e-graph
/// must be clean (rebuilt). `limits.max_steps` counts e-nodes tried by kBind
/// plus root candidates tried by kScan, across all sub-patterns.
std::vector<JointMatch> search_joint(const EGraph& eg, const Program& prog,
                                     const MatchLimits& limits = {});

/// Coarse per-sweep work estimate for a batch of searches: candidate root
/// classes summed over the programs (the op-index bucket for operator roots,
/// every canonical class for leaf roots, each kScan's candidates for joint
/// programs). Cheap — bucket sizes are already maintained — and proportional
/// to the number of VM entry points a sweep will try, which is what thread
/// spawn overhead must amortize against.
size_t search_work_estimate(const EGraph& eg,
                            const std::vector<const Program*>& progs);

/// Minimum search_work_estimate for which search_all dispatches its worker
/// pool. Below it a sweep completes in well under the cost of a dispatch,
/// so the sweep runs on the calling thread. Results are identical either
/// way — this is purely a dispatch decision.
///
/// History: 4096 when dispatching meant spawning std::threads (the
/// BENCH_ematch.json "parallel" section measured 0.53-0.93x "speedups" on
/// seed-sized graphs before the gate existed). The persistent
/// work-stealing pool (support/pool.h) cut the dispatch cost from tens of
/// microseconds per worker to about a microsecond total, so the
/// break-even moved down an order of magnitude; BENCH_ematch.json's
/// "pool" section tracks the pool-vs-spawning ratio that justifies the
/// lower floor.
constexpr size_t kMinParallelSearchWork = 256;

/// Searches many programs against one read-only e-graph using up to `threads`
/// workers (0 = hardware concurrency). results[i] always corresponds to
/// progs[i] and is bit-identical to a serial ematch::search(eg, *progs[i]) —
/// worker scheduling cannot reorder or change anything (each program's search
/// is single-threaded and results merge by index), so any thread count
/// produces the same output. Sweeps whose search_work_estimate falls below
/// kMinParallelSearchWork run serially regardless of `threads`. The e-graph
/// must be clean (rebuilt): on a clean e-graph every VM operation, union-find
/// lookups included, is a pure read.
std::vector<std::vector<PatternMatch>> search_all(
    const EGraph& eg, const std::vector<const Program*>& progs, size_t threads,
    const MatchLimits& limits = {});

}  // namespace tensat::ematch
