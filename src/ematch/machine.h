// The register-based e-matching VM. Executes a compiled Program (program.h)
// against an e-graph: kBind instructions are the backtracking points
// (iterating the e-nodes of a class with the right operator), everything
// else is a straight-line check. Searches dispatch through the e-graph's
// op-index (EGraph::classes_with_op) so classes that cannot match the
// pattern root are never visited.
//
// Results are bit-for-bit interchangeable with the naive matcher in
// rewrite/matcher.h: same substitutions, same multiplicities, variables
// bound to canonical e-class ids (tests/ematch_test.cpp proves this by
// differential testing across the full rule set).
#pragma once

#include <vector>

#include "egraph/egraph.h"
#include "ematch/program.h"
#include "rewrite/subst.h"

namespace tensat::ematch {

struct MatchLimits {
  /// Cap on substitutions returned by one search. 0 = unlimited.
  size_t max_matches = 200000;
  /// Cap on VM work (e-nodes tried by kBind) per search; the search returns
  /// what it has when the budget runs out. 0 = unlimited.
  size_t max_steps = 2000000;
};

/// All matches of the compiled pattern anywhere in the e-graph. The e-graph
/// must be clean (rebuilt). Filtered e-nodes are treated as removed.
std::vector<PatternMatch> search(const EGraph& eg, const Program& prog,
                                 const MatchLimits& limits = {});

/// Matches of the compiled pattern against one specific e-class.
std::vector<Subst> match_class(const EGraph& eg, const Program& prog, Id class_id,
                               const MatchLimits& limits = {});

}  // namespace tensat::ematch
