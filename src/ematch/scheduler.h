// Rule scheduling for the exploration loop: egg's BackoffScheduler. Each
// rule has a per-iteration match budget; a rule that blows its budget is
// banned for a number of iterations, and both the budget and the ban length
// double with every repeat offense. This keeps cheap, match-explosive
// algebraic rules from starving the expensive multi-pattern merges of node
// budget — the role the two hard-coded `max_*_applications` caps used to
// play, but adaptive per rule.
//
// Saturation protocol: the e-graph can only be declared saturated on an
// iteration where no rule is banned — otherwise the banned rules must be
// unbanned (unban_all) and exploration continued so they get a final chance.
#pragma once

#include <cstddef>
#include <vector>

namespace tensat::ematch {

struct BackoffOptions {
  /// Per-rule applied-match budget per iteration before the rule is banned.
  size_t match_limit = 1000;
  /// Base ban duration in iterations; doubles with each repeat offense.
  size_t ban_length = 5;
};

class BackoffScheduler {
 public:
  explicit BackoffScheduler(size_t num_rules, BackoffOptions options = {});

  /// The rule's current per-iteration budget: match_limit << times_banned.
  [[nodiscard]] size_t match_limit(size_t rule) const;

  /// True if the rule may not search/apply during `iteration`.
  [[nodiscard]] bool is_banned(size_t rule, size_t iteration) const;

  /// Records that `rule` produced `matches` applied matches in `iteration`.
  /// Bans the rule starting with the next iteration when the budget was
  /// exceeded; returns true exactly when a new ban was imposed.
  bool record_matches(size_t rule, size_t iteration, size_t matches);

  /// True if any rule is banned during `iteration`.
  [[nodiscard]] bool any_banned(size_t iteration) const;

  /// Lifts every active ban (budgets stay doubled). Called before declaring
  /// saturation so previously banned rules get a final iteration.
  void unban_all();

  struct RuleStats {
    size_t total_matches{0};  // cumulative applied matches across iterations
    size_t times_banned{0};
    size_t banned_until{0};   // first iteration the rule may run again
  };
  [[nodiscard]] const RuleStats& stats(size_t rule) const { return stats_[rule]; }
  [[nodiscard]] size_t num_rules() const { return stats_.size(); }

 private:
  BackoffOptions options_;
  std::vector<RuleStats> stats_;
};

}  // namespace tensat::ematch
