// Compiled e-matching (the abstract machine of "egg: Fast and Extensible
// Equality Saturation", Willsey et al. 2021, §B; after de Moura & Bjørner's
// "Efficient E-Matching for SMT Solvers"). A pattern is lowered once into a
// flat instruction program; the register-based VM in machine.h then executes
// the program against the e-graph. This replaces re-interpreting the pattern
// AST per candidate e-class (the naive backtracker kept in rewrite/matcher.h
// as a reference oracle).
//
// Instruction set:
//   bind r, op, out   iterate the unfiltered e-nodes of class regs[r] whose
//                     operator is `op`; for each, write its canonicalized
//                     child classes into regs[out..out+arity) and continue.
//                     The only backtracking point.
//   compare a, b      succeed iff regs[a] and regs[b] are the same class.
//                     Emitted for repeated pattern variables.
//   check_num r, n    succeed iff class regs[r]'s analysis value is the
//                     integer literal n (pattern leaves like activation 0).
//   check_str r, s    likewise for string literals (permutations, shapes).
//   scan r, op        (joint programs only) iterate the e-graph's candidate
//                     classes for a sub-pattern root — classes_with_op(op),
//                     or every canonical class for leaf roots — writing each
//                     into regs[r]. A backtracking point, like bind.
//   yield             implicit at program end: read the variable registers
//                     out into a substitution.
//
// Multi-pattern rules additionally compile through compile_joint_pattern:
// all source patterns of a rule become ONE program whose sub-pattern roots
// are driven by kScan instructions. The compiler's variable map spans the
// sub-patterns, so a variable shared between sources binds once and its later
// occurrences become kCompare constraints — the cross-pattern pruning that
// replaces the post-hoc Cartesian-product join of independent match sets.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "lang/graph.h"
#include "lang/node.h"
#include "support/symbol.h"

namespace tensat::ematch {

/// Index of a VM register. Registers hold canonical e-class ids.
using Reg = int32_t;

struct Instruction {
  enum class Kind : uint8_t { kBind, kCompare, kCheckNum, kCheckStr, kScan };
  Kind kind{Kind::kBind};
  Reg reg{0};      // register inspected (kScan: written) by this instruction
  Op op{Op::kNum}; // kBind: operator the e-node must have; kScan: root op of
                   // the sub-pattern (leaf ops mean "every canonical class")
  Reg out{0};      // kBind: first register receiving the node's children
  Reg other{0};    // kCompare: earlier register that must hold the same class
  int64_t num{0};  // kCheckNum: required integer value
  Symbol str{};    // kCheckStr: required string value
};

struct Program {
  std::vector<Instruction> insts;
  Reg num_regs{1};  // register 0 holds the candidate root class
  /// Operator of the pattern root. For operator roots the searcher consults
  /// the e-graph's op-index and only visits classes that contain the op;
  /// leaf roots (kVar / kNum / kStr) fall back to scanning every class.
  Op root_op{Op::kVar};
  /// (variable, register) pairs to read out at yield, in first-occurrence
  /// DFS order — the same binding order the naive matcher produces.
  std::vector<std::pair<Symbol, Reg>> vars;
  /// Joint programs only: the register holding each sub-pattern's root class,
  /// in source order. Empty for single-pattern programs (whose root lives in
  /// register 0, driven by the searcher's candidate loop rather than kScan).
  std::vector<Reg> root_regs;

  [[nodiscard]] bool is_joint() const { return !root_regs.empty(); }
};

/// Lowers the pattern rooted at `root` of pattern graph `pat` into a program.
/// Shared operator subpatterns are expanded per edge (tree semantics), which
/// matches the naive matcher's enumeration multiplicity exactly; repeated
/// variables compile to kCompare constraints.
Program compile_pattern(const Graph& pat, Id root);

/// Lowers all source patterns of one multi-pattern rule into a single joint
/// program: each root in `roots` gets a kScan over its candidate classes,
/// then its sub-pattern's instructions. The variable map is shared across
/// sub-patterns, so variables occurring in several sources bind once and
/// prune candidate combinations during the search (instead of the post-hoc
/// Cartesian-product compatibility check). Executed via search_joint().
Program compile_joint_pattern(const Graph& pat, const std::vector<Id>& roots);

/// Human-readable listing of the program, for tests and diagnostics.
std::string to_string(const Program& prog);

}  // namespace tensat::ematch
