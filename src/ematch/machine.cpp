#include "ematch/machine.h"

#include <cstdint>
#include <unordered_map>

#include "support/parallel.h"
#include "trace/trace.h"

namespace tensat::ematch {
namespace {

/// One saved choice point: the kBind/kScan at `pc` may still have
/// alternatives starting at e-node (resp. candidate-class) index `next`.
struct Choice {
  uint32_t pc;
  uint32_t next;
};

struct VM {
  const EGraph& eg;
  const Program& prog;
  size_t matches_left;
  size_t steps_left;
  std::vector<Id> regs;
  std::vector<Choice> stack;
  /// Candidate root classes per kScan instruction, keyed by pc. Computed
  /// lazily on first use so single-pattern programs pay nothing.
  std::unordered_map<uint32_t, std::vector<Id>> scan_candidates;

  /// Satisfies the kBind at `pc` using the first admissible e-node at index
  /// >= `start` of the inspected class: writes the node's canonicalized
  /// children into the output registers and records the resumption point.
  /// Returns false when no alternative is left (or the step budget ran out).
  bool bind_from(uint32_t pc, uint32_t start) {
    const Instruction& in = prog.insts[pc];
    const std::vector<EClassNode>& nodes = eg.eclass(regs[in.reg]).nodes;
    for (uint32_t i = start; i < nodes.size(); ++i) {
      const EClassNode& entry = nodes[i];
      if (entry.filtered || entry.node.op != in.op) continue;
      if (steps_left == 0) return false;
      --steps_left;
      for (size_t k = 0; k < entry.node.children.size(); ++k)
        regs[in.out + k] = eg.find(entry.node.children[k]);
      stack.push_back(Choice{pc, i + 1});
      return true;
    }
    return false;
  }

  /// Satisfies the kScan at `pc` with the candidate class at index >= `start`
  /// of its candidate list, recording the resumption point. Candidates come
  /// from the op-index (all canonical classes for leaf-rooted sub-patterns).
  bool scan_from(uint32_t pc, uint32_t start) {
    auto it = scan_candidates.find(pc);
    if (it == scan_candidates.end()) {
      const Op op = prog.insts[pc].op;
      it = scan_candidates
               .emplace(pc, op_is_leaf(op) ? eg.canonical_classes()
                                           : eg.classes_with_op(op))
               .first;
    }
    const std::vector<Id>& candidates = it->second;
    if (start >= candidates.size()) return false;
    if (steps_left == 0) return false;
    --steps_left;
    regs[prog.insts[pc].reg] = candidates[start];
    stack.push_back(Choice{pc, start + 1});
    return true;
  }

  /// Runs the program from instruction 0 with the registers as currently
  /// initialized, invoking `on_match()` once per complete match. Returns
  /// false iff a budget ran out (caller must stop the whole search, matching
  /// the naive matcher's shared-budget behavior).
  template <typename OnMatch>
  bool run(OnMatch&& on_match) {
    stack.clear();
    uint32_t pc = 0;
    for (;;) {
      // Forward execution until the program fails or completes.
      bool failed = false;
      while (pc < prog.insts.size()) {
        const Instruction& in = prog.insts[pc];
        bool ok = true;
        switch (in.kind) {
          case Instruction::Kind::kBind:
            ok = bind_from(pc, 0);
            if (!ok && steps_left == 0) return false;
            break;
          case Instruction::Kind::kScan:
            ok = scan_from(pc, 0);
            if (!ok && steps_left == 0) return false;
            break;
          case Instruction::Kind::kCompare:
            ok = regs[in.reg] == regs[in.other];
            break;
          case Instruction::Kind::kCheckNum: {
            const ValueInfo& d = eg.data(regs[in.reg]);
            ok = d.kind == VKind::kNum && d.num == in.num;
            break;
          }
          case Instruction::Kind::kCheckStr: {
            const ValueInfo& d = eg.data(regs[in.reg]);
            ok = d.kind == VKind::kStr && d.str == in.str;
            break;
          }
        }
        if (!ok) {
          failed = true;
          break;
        }
        ++pc;
      }
      if (!failed) {
        if (matches_left == 0) return false;
        --matches_left;
        on_match();
      }
      // Backtrack to the most recent choice point with an alternative left.
      for (;;) {
        if (stack.empty()) return true;
        const Choice c = stack.back();
        stack.pop_back();
        const bool resumed = prog.insts[c.pc].kind == Instruction::Kind::kScan
                                 ? scan_from(c.pc, c.next)
                                 : bind_from(c.pc, c.next);
        if (resumed) {
          pc = c.pc + 1;
          break;
        }
        if (steps_left == 0) return false;
      }
    }
  }

  /// Single-pattern entry: register 0 holds the candidate root class.
  bool run_rooted(Id root_class, std::vector<Subst>& out) {
    regs.assign(prog.num_regs, kInvalidId);
    regs[0] = eg.find(root_class);
    return run([&] {
      Subst subst;
      for (const auto& [var, reg] : prog.vars) subst.bind(var, regs[reg]);
      out.push_back(std::move(subst));
    });
  }
};

VM make_vm(const EGraph& eg, const Program& prog, const MatchLimits& limits) {
  return VM{eg,
            prog,
            limits.max_matches == 0 ? SIZE_MAX : limits.max_matches,
            limits.max_steps == 0 ? SIZE_MAX : limits.max_steps,
            {},
            {},
            {}};
}

}  // namespace

std::vector<PatternMatch> search(const EGraph& eg, const Program& prog,
                                 const MatchLimits& limits) {
  // One span per pattern sweep, on whichever lane runs it — the per-thread
  // occupancy view of the parallel search phase.
  const trace::ScopedSpan span("ematch/search");
  VM vm = make_vm(eg, prog, limits);
  std::vector<PatternMatch> matches;
  // Leaf-rooted patterns scan every class; operator roots borrow the op-index
  // bucket directly (classes_with_op returns a reference on a clean e-graph,
  // so the hot path allocates nothing).
  std::vector<Id> leaf_candidates;
  if (op_is_leaf(prog.root_op)) leaf_candidates = eg.canonical_classes();
  const std::vector<Id>& candidates = op_is_leaf(prog.root_op)
                                          ? leaf_candidates
                                          : eg.classes_with_op(prog.root_op);
  std::vector<Subst> found;
  for (Id cls : candidates) {
    found.clear();
    const bool in_budget = vm.run_rooted(cls, found);
    for (Subst& s : found) matches.push_back(PatternMatch{cls, std::move(s)});
    if (!in_budget) break;
  }
  return matches;
}

std::vector<Subst> match_class(const EGraph& eg, const Program& prog, Id class_id,
                               const MatchLimits& limits) {
  VM vm = make_vm(eg, prog, limits);
  std::vector<Subst> out;
  vm.run_rooted(class_id, out);
  return out;
}

std::vector<JointMatch> search_joint(const EGraph& eg, const Program& prog,
                                     const MatchLimits& limits) {
  const trace::ScopedSpan span("ematch/search_joint");
  VM vm = make_vm(eg, prog, limits);
  vm.regs.assign(prog.num_regs, kInvalidId);
  std::vector<JointMatch> out;
  vm.run([&] {
    JointMatch jm;
    jm.roots.reserve(prog.root_regs.size());
    for (Reg r : prog.root_regs) jm.roots.push_back(vm.regs[r]);
    for (const auto& [var, reg] : prog.vars) jm.subst.bind(var, vm.regs[reg]);
    out.push_back(std::move(jm));
  });
  return out;
}

size_t search_work_estimate(const EGraph& eg,
                            const std::vector<const Program*>& progs) {
  // num_classes() walks every id; compute it once, only if some program
  // actually scans all classes.
  size_t all_classes = 0;
  bool all_classes_known = false;
  const auto candidates_for = [&](Op op) {
    if (!op_is_leaf(op)) return eg.classes_with_op(op).size();
    if (!all_classes_known) {
      all_classes = eg.num_classes();
      all_classes_known = true;
    }
    return all_classes;
  };
  size_t work = 0;
  for (const Program* prog : progs) {
    if (prog->is_joint()) {
      // Nested scans multiply rather than add, but by then the sweep is big
      // enough to parallelize anyway; the sum is a cheap lower bound.
      for (const Instruction& in : prog->insts)
        if (in.kind == Instruction::Kind::kScan) work += candidates_for(in.op);
    } else {
      work += candidates_for(prog->root_op);
    }
  }
  return work;
}

std::vector<std::vector<PatternMatch>> search_all(
    const EGraph& eg, const std::vector<const Program*>& progs, size_t threads,
    const MatchLimits& limits) {
  // Below the work threshold, thread spawns cost more than the whole sweep:
  // run on the calling thread. Identical results either way.
  if (threads != 1 && search_work_estimate(eg, progs) < kMinParallelSearchWork)
    threads = 1;
  std::vector<std::vector<PatternMatch>> results(progs.size());
  parallel_for(progs.size(), threads,
               [&](size_t i) { results[i] = search(eg, *progs[i], limits); });
  return results;
}

}  // namespace tensat::ematch
