#include "ematch/scheduler.h"

#include "support/check.h"
#include "trace/trace.h"

namespace tensat::ematch {
namespace {

/// `base << shift` saturating at SIZE_MAX (a rule banned dozens of times
/// must not overflow back into a tiny budget).
size_t shl_saturating(size_t base, size_t shift) {
  if (base == 0) return 0;
  if (shift >= 8 * sizeof(size_t)) return SIZE_MAX;
  const size_t shifted = base << shift;
  return (shifted >> shift) == base ? shifted : SIZE_MAX;
}

}  // namespace

BackoffScheduler::BackoffScheduler(size_t num_rules, BackoffOptions options)
    : options_(options), stats_(num_rules) {}

size_t BackoffScheduler::match_limit(size_t rule) const {
  return shl_saturating(options_.match_limit, stats_[rule].times_banned);
}

bool BackoffScheduler::is_banned(size_t rule, size_t iteration) const {
  return iteration < stats_[rule].banned_until;
}

bool BackoffScheduler::record_matches(size_t rule, size_t iteration, size_t matches) {
  TENSAT_CHECK(rule < stats_.size(), "scheduler: rule index out of range");
  RuleStats& s = stats_[rule];
  s.total_matches += matches;
  if (matches <= match_limit(rule)) return false;
  const size_t ban = shl_saturating(options_.ban_length, s.times_banned);
  s.banned_until = iteration + 1 + ban;
  ++s.times_banned;
  // Timeline marker (arg = rule index); record_matches runs from the serial
  // collect loop, so the instants merge deterministically.
  trace::instant("scheduler/ban", static_cast<int64_t>(rule), true);
  return true;
}

bool BackoffScheduler::any_banned(size_t iteration) const {
  for (const RuleStats& s : stats_)
    if (iteration < s.banned_until) return true;
  return false;
}

void BackoffScheduler::unban_all() {
  for (RuleStats& s : stats_) s.banned_until = 0;
}

}  // namespace tensat::ematch
