#include "ematch/program.h"

#include <sstream>
#include <unordered_map>

namespace tensat::ematch {
namespace {

struct Compiler {
  const Graph& pat;
  Program prog;
  std::unordered_map<uint32_t, Reg> var_regs;  // symbol id -> first register

  void compile(Id pid, Reg reg) {
    const TNode& n = pat.node(pid);
    switch (n.op) {
      case Op::kVar: {
        auto [it, fresh] = var_regs.emplace(n.str.id(), reg);
        if (fresh) {
          prog.vars.emplace_back(n.str, reg);
        } else {
          Instruction in;
          in.kind = Instruction::Kind::kCompare;
          in.reg = reg;
          in.other = it->second;
          prog.insts.push_back(in);
        }
        return;
      }
      case Op::kNum: {
        Instruction in;
        in.kind = Instruction::Kind::kCheckNum;
        in.reg = reg;
        in.num = n.num;
        prog.insts.push_back(in);
        return;
      }
      case Op::kStr: {
        Instruction in;
        in.kind = Instruction::Kind::kCheckStr;
        in.reg = reg;
        in.str = n.str;
        prog.insts.push_back(in);
        return;
      }
      default: {
        const Reg out = prog.num_regs;
        prog.num_regs += static_cast<Reg>(n.children.size());
        Instruction in;
        in.kind = Instruction::Kind::kBind;
        in.reg = reg;
        in.op = n.op;
        in.out = out;
        prog.insts.push_back(in);
        for (size_t i = 0; i < n.children.size(); ++i)
          compile(n.children[i], out + static_cast<Reg>(i));
        return;
      }
    }
  }
};

}  // namespace

Program compile_pattern(const Graph& pat, Id root) {
  Compiler c{pat, {}, {}};
  c.prog.root_op = pat.node(root).op;
  c.compile(root, 0);
  return c.prog;
}

Program compile_joint_pattern(const Graph& pat, const std::vector<Id>& roots) {
  Compiler c{pat, {}, {}};
  c.prog.num_regs = 0;  // no externally driven root register; kScan binds them
  c.prog.root_op = pat.node(roots.front()).op;
  for (Id root : roots) {
    const Reg r = c.prog.num_regs++;
    Instruction in;
    in.kind = Instruction::Kind::kScan;
    in.reg = r;
    in.op = pat.node(root).op;
    c.prog.insts.push_back(in);
    c.compile(root, r);
    c.prog.root_regs.push_back(r);
  }
  return c.prog;
}

std::string to_string(const Program& prog) {
  std::ostringstream os;
  os << "program(regs=" << prog.num_regs << ", root=" << op_info(prog.root_op).name
     << ")\n";
  for (const Instruction& in : prog.insts) {
    switch (in.kind) {
      case Instruction::Kind::kBind:
        os << "  bind r" << in.reg << ", " << op_info(in.op).name << ", r" << in.out
           << "\n";
        break;
      case Instruction::Kind::kCompare:
        os << "  compare r" << in.reg << ", r" << in.other << "\n";
        break;
      case Instruction::Kind::kCheckNum:
        os << "  check_num r" << in.reg << ", " << in.num << "\n";
        break;
      case Instruction::Kind::kCheckStr:
        os << "  check_str r" << in.reg << ", " << in.str.str() << "\n";
        break;
      case Instruction::Kind::kScan:
        os << "  scan r" << in.reg << ", " << op_info(in.op).name << "\n";
        break;
    }
  }
  os << "  yield";
  for (Reg r : prog.root_regs) os << " root=r" << r;
  for (const auto& [var, reg] : prog.vars) os << " ?" << var.str() << "=r" << reg;
  return os.str();
}

}  // namespace tensat::ematch
