#include "tensor/interp.h"

#include "support/check.h"
#include "support/hash.h"

namespace tensat {
namespace {

const Tensor& as_tensor(const Value& v) {
  const Tensor* t = std::get_if<Tensor>(&v);
  TENSAT_CHECK(t != nullptr, "expected tensor value");
  return *t;
}

int64_t as_num(const Value& v) {
  const int64_t* n = std::get_if<int64_t>(&v);
  TENSAT_CHECK(n != nullptr, "expected integer value");
  return *n;
}

Symbol as_str(const Value& v) {
  const Symbol* s = std::get_if<Symbol>(&v);
  TENSAT_CHECK(s != nullptr, "expected string value");
  return *s;
}

}  // namespace

Tensor Interpreter::fetch(const std::string& id_text) {
  auto [name, dims] = parse_tensor_id(id_text);
  auto it = feeds_.find(name);
  if (it != feeds_.end()) {
    TENSAT_CHECK(it->second.dims() == dims,
                 "fed tensor '" << name << "' has wrong shape");
    return it->second;
  }
  size_t h = seed_;
  hash_combine_value(h, name);
  return random_tensor(dims, h);
}

std::unordered_map<Id, Value> Interpreter::run(const Graph& g) {
  TENSAT_CHECK(g.kind() == GraphKind::kConcrete, "cannot interpret a pattern graph");
  std::unordered_map<Id, Value> values;
  for (Id id : g.topo_order()) {
    const TNode& n = g.node(id);
    auto in = [&](int i) -> const Value& { return values.at(n.children[i]); };
    switch (n.op) {
      case Op::kNum:
        values.emplace(id, n.num);
        break;
      case Op::kStr:
        values.emplace(id, n.str);
        break;
      case Op::kInput:
      case Op::kWeight:
        values.emplace(id, fetch(as_str(in(0)).str()));
        break;
      case Op::kEwadd:
        values.emplace(id, ewadd(as_tensor(in(0)), as_tensor(in(1))));
        break;
      case Op::kEwmul:
        values.emplace(id, ewmul(as_tensor(in(0)), as_tensor(in(1))));
        break;
      case Op::kMatmul:
        values.emplace(id, matmul(as_tensor(in(1)), as_tensor(in(2)),
                                  static_cast<Activation>(as_num(in(0)))));
        break;
      case Op::kConv:
        values.emplace(
            id, conv2d(as_tensor(in(4)), as_tensor(in(5)),
                       static_cast<int32_t>(as_num(in(0))),
                       static_cast<int32_t>(as_num(in(1))),
                       static_cast<Padding>(as_num(in(2))),
                       static_cast<Activation>(as_num(in(3)))));
        break;
      case Op::kRelu:
        values.emplace(id, activation(as_tensor(in(0)), kActRelu));
        break;
      case Op::kTanh:
        values.emplace(id, activation(as_tensor(in(0)), kActTanh));
        break;
      case Op::kSigmoid:
        values.emplace(id, activation(as_tensor(in(0)), kActSigmoid));
        break;
      case Op::kPoolmax:
      case Op::kPoolavg: {
        const auto kh = static_cast<int32_t>(as_num(in(1)));
        const auto kw = static_cast<int32_t>(as_num(in(2)));
        const auto sh = static_cast<int32_t>(as_num(in(3)));
        const auto sw = static_cast<int32_t>(as_num(in(4)));
        const auto pad = static_cast<Padding>(as_num(in(5)));
        const auto act = static_cast<Activation>(as_num(in(6)));
        values.emplace(id, n.op == Op::kPoolmax
                               ? poolmax(as_tensor(in(0)), kh, kw, sh, sw, pad, act)
                               : poolavg(as_tensor(in(0)), kh, kw, sh, sw, pad, act));
        break;
      }
      case Op::kTranspose: {
        const auto perm = parse_dims(as_str(in(1)).str());
        values.emplace(id, transpose(as_tensor(in(0)), perm));
        break;
      }
      case Op::kEnlarge: {
        const Tensor& ref = as_tensor(in(1));
        values.emplace(id, enlarge(as_tensor(in(0)), ref.dims()[2], ref.dims()[3]));
        break;
      }
      case Op::kConcat2:
      case Op::kConcat3:
      case Op::kConcat4:
      case Op::kConcat5: {
        const auto axis = static_cast<int32_t>(as_num(in(0)));
        std::vector<const Tensor*> inputs;
        for (size_t i = 1; i < n.children.size(); ++i)
          inputs.push_back(&as_tensor(in(static_cast<int>(i))));
        values.emplace(id, concat(axis, inputs));
        break;
      }
      case Op::kSplit: {
        const auto axis = static_cast<int32_t>(as_num(in(0)));
        // Boundary determined by shape analysis (most recent concat).
        const ValueInfo& info = g.info(id);
        TENSAT_CHECK(info.kind == VKind::kTuple, "split: analysis missing");
        auto [a, b] = split_at(as_tensor(in(1)), axis, info.shape[axis]);
        values.emplace(id, TensorPair{std::move(a), std::move(b)});
        break;
      }
      case Op::kSplit0:
      case Op::kSplit1: {
        const TensorPair* p = std::get_if<TensorPair>(&values.at(n.children[0]));
        TENSAT_CHECK(p != nullptr, "split0/1: expected tuple value");
        values.emplace(id, n.op == Op::kSplit0 ? p->first : p->second);
        break;
      }
      case Op::kReshape: {
        const auto dims = parse_dims(as_str(in(1)).str());
        values.emplace(id, reshape(as_tensor(in(0)), dims));
        break;
      }
      case Op::kMerge:
        TENSAT_FAIL("interpreter does not support merge (see DESIGN.md)");
      case Op::kNoop:
        values.emplace(id, Tensor{});  // grouping only; no data
        break;
      case Op::kVar:
      case Op::kOpCount:
        TENSAT_FAIL("cannot interpret op " << op_info(n.op).name);
    }
  }
  return values;
}

std::vector<Tensor> Interpreter::run_roots(const Graph& g) {
  auto values = run(g);
  std::vector<Tensor> out;
  out.reserve(g.roots().size());
  for (Id root : g.roots()) out.push_back(as_tensor(values.at(root)));
  return out;
}

}  // namespace tensat
