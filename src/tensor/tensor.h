// A minimal dense float tensor and the reference (CPU, loop-nest)
// implementations of every operator in the language. This is the semantic
// ground truth that the rewrite-rule property tests check against: if a
// rewrite changes any output tensor, the rule is wrong.
//
// Performance is irrelevant here; clarity and obvious correctness are the
// point. Layout is row-major, NCHW for 4-D tensors.
#pragma once

#include <cstdint>
#include "support/span.h"
#include <vector>

#include "lang/op.h"

namespace tensat {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int32_t> dims);
  Tensor(std::vector<int32_t> dims, std::vector<float> values);

  [[nodiscard]] const std::vector<int32_t>& dims() const { return dims_; }
  [[nodiscard]] int rank() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] int64_t volume() const { return static_cast<int64_t>(data_.size()); }
  [[nodiscard]] span<const float> data() const { return data_; }
  [[nodiscard]] span<float> data() { return data_; }

  float& at(span<const int32_t> idx);
  [[nodiscard]] float at(span<const int32_t> idx) const;

  // Convenience accessors for common ranks.
  float& at2(int32_t i, int32_t j);
  [[nodiscard]] float at2(int32_t i, int32_t j) const;
  float& at4(int32_t a, int32_t b, int32_t c, int32_t d);
  [[nodiscard]] float at4(int32_t a, int32_t b, int32_t c, int32_t d) const;

  /// Max absolute elementwise difference; requires equal dims.
  [[nodiscard]] static float max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  [[nodiscard]] int64_t offset(span<const int32_t> idx) const;
  std::vector<int32_t> dims_;
  std::vector<float> data_;
};

// ---- Reference operator implementations -----------------------------------

Tensor ewadd(const Tensor& a, const Tensor& b);
Tensor ewmul(const Tensor& a, const Tensor& b);
/// Matmul over rank 2 or 3 operands (rank-3 = leading batch dim; a rank-2
/// operand broadcasts over the other's batch), with a fused activation.
Tensor matmul(const Tensor& a, const Tensor& b, Activation act);
/// Grouped 2-D convolution, NCHW input (n,c,h,w), weight (cout, c/groups,
/// kh, kw); groups inferred from the channel ratio. SAME padding follows the
/// TensorFlow convention (total pad split low/high).
Tensor conv2d(const Tensor& x, const Tensor& w, int32_t stride_h, int32_t stride_w,
              Padding pad, Activation act);
Tensor activation(const Tensor& x, Activation act);
Tensor poolmax(const Tensor& x, int32_t kh, int32_t kw, int32_t sh, int32_t sw,
               Padding pad, Activation act);
/// Average pooling; with SAME padding, out-of-bounds taps are excluded from
/// the average (count over valid elements).
Tensor poolavg(const Tensor& x, int32_t kh, int32_t kw, int32_t sh, int32_t sw,
               Padding pad, Activation act);
Tensor transpose(const Tensor& x, span<const int32_t> perm);
/// Zero-pads a conv kernel (cout,cin,kh,kw) symmetrically to the reference
/// kernel's spatial size.
Tensor enlarge(const Tensor& x, int32_t ref_kh, int32_t ref_kw);
Tensor concat(int32_t axis, span<const Tensor* const> inputs);
/// Splits along `axis` at `pos` (first half gets [0,pos)).
std::pair<Tensor, Tensor> split_at(const Tensor& x, int32_t axis, int32_t pos);
Tensor reshape(const Tensor& x, std::vector<int32_t> dims);

/// Deterministic pseudo-random fill in [-1, 1] derived from `seed`.
Tensor random_tensor(std::vector<int32_t> dims, uint64_t seed);

}  // namespace tensat
