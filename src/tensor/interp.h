// Reference interpreter: evaluates a concrete Graph bottom-up with the
// loop-nest operators from tensor.h. Split boundaries come from the graph's
// shape analysis (ValueInfo), so interpreter semantics and shape checking
// agree by construction.
//
// Input and weight tensors are synthesized deterministically from their
// identifier (name + shape) and a global seed, so two graphs that reference
// the same identifiers see identical data — exactly what rewrite-soundness
// tests need. Callers may also pre-feed specific tensors by name.
#pragma once

#include <string>
#include <unordered_map>
#include <variant>

#include "lang/graph.h"
#include "tensor/tensor.h"

namespace tensat {

struct TensorPair {
  Tensor first;
  Tensor second;
};

/// Runtime value of a node: parameter leaves evaluate to themselves.
using Value = std::variant<Tensor, TensorPair, int64_t, Symbol>;

class Interpreter {
 public:
  explicit Interpreter(uint64_t seed = 1) : seed_(seed) {}

  /// Overrides the synthesized data for the identifier `name`.
  void feed(const std::string& name, Tensor t) { feeds_[name] = std::move(t); }

  /// Evaluates every node reachable from the roots; returns values by id.
  /// `merge` is rejected (its value depends on the consuming convolution's
  /// group count; see DESIGN.md) — graphs under numeric test must avoid it.
  std::unordered_map<Id, Value> run(const Graph& g);

  /// Evaluates and returns the tensors at the graph's roots, in root order.
  std::vector<Tensor> run_roots(const Graph& g);

 private:
  Tensor fetch(const std::string& id_text);
  uint64_t seed_;
  std::unordered_map<std::string, Tensor> feeds_;
};

}  // namespace tensat
