#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.h"
#include "support/rng.h"

namespace tensat {
namespace {

int64_t product(span<const int32_t> dims) {
  int64_t v = 1;
  for (int32_t d : dims) v *= d;
  return v;
}

float apply_act(float v, Activation act) {
  switch (act) {
    case kActNone:
      return v;
    case kActRelu:
      return v > 0.0f ? v : 0.0f;
    case kActTanh:
      return std::tanh(v);
    case kActSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
  }
  TENSAT_FAIL("bad activation " << static_cast<int>(act));
}

/// Total SAME padding for one spatial dimension (TensorFlow convention).
int32_t same_pad_total(int32_t in, int32_t kernel, int32_t stride) {
  const int32_t out = (in + stride - 1) / stride;
  return std::max<int32_t>((out - 1) * stride + kernel - in, 0);
}

}  // namespace

Tensor::Tensor(std::vector<int32_t> dims)
    : dims_(std::move(dims)), data_(product(dims_), 0.0f) {}

Tensor::Tensor(std::vector<int32_t> dims, std::vector<float> values)
    : dims_(std::move(dims)), data_(std::move(values)) {
  TENSAT_CHECK(static_cast<int64_t>(data_.size()) == product(dims_),
               "tensor data size does not match dims");
}

int64_t Tensor::offset(span<const int32_t> idx) const {
  TENSAT_CHECK(idx.size() == dims_.size(), "index rank mismatch");
  int64_t off = 0;
  for (size_t d = 0; d < dims_.size(); ++d) {
    TENSAT_CHECK(idx[d] >= 0 && idx[d] < dims_[d],
                 "index out of range at dim " << d << ": " << idx[d]);
    off = off * dims_[d] + idx[d];
  }
  return off;
}

float& Tensor::at(span<const int32_t> idx) { return data_[offset(idx)]; }
float Tensor::at(span<const int32_t> idx) const { return data_[offset(idx)]; }

float& Tensor::at2(int32_t i, int32_t j) {
  const int32_t idx[] = {i, j};
  return at(idx);
}
float Tensor::at2(int32_t i, int32_t j) const {
  const int32_t idx[] = {i, j};
  return at(idx);
}
float& Tensor::at4(int32_t a, int32_t b, int32_t c, int32_t d) {
  const int32_t idx[] = {a, b, c, d};
  return at(idx);
}
float Tensor::at4(int32_t a, int32_t b, int32_t c, int32_t d) const {
  const int32_t idx[] = {a, b, c, d};
  return at(idx);
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  TENSAT_CHECK(a.dims() == b.dims(), "max_abs_diff: dims differ");
  float worst = 0.0f;
  for (int64_t i = 0; i < a.volume(); ++i)
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  return worst;
}

Tensor ewadd(const Tensor& a, const Tensor& b) {
  TENSAT_CHECK(a.dims() == b.dims(), "ewadd: dims differ");
  Tensor out(a.dims().empty() ? std::vector<int32_t>{} : std::vector<int32_t>(a.dims()));
  for (int64_t i = 0; i < a.volume(); ++i) out.data()[i] = a.data()[i] + b.data()[i];
  return out;
}

Tensor ewmul(const Tensor& a, const Tensor& b) {
  TENSAT_CHECK(a.dims() == b.dims(), "ewmul: dims differ");
  Tensor out(std::vector<int32_t>(a.dims()));
  for (int64_t i = 0; i < a.volume(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b, Activation act) {
  const int ra = a.rank(), rb = b.rank();
  TENSAT_CHECK((ra == 2 || ra == 3) && (rb == 2 || rb == 3), "matmul: bad ranks");
  const int32_t m = a.dims()[ra - 2], k = a.dims()[ra - 1];
  const int32_t k2 = b.dims()[rb - 2], n = b.dims()[rb - 1];
  TENSAT_CHECK(k == k2, "matmul: inner dims differ");
  const int32_t batch = (ra == 3) ? a.dims()[0] : (rb == 3 ? b.dims()[0] : 1);
  if (ra == 3 && rb == 3)
    TENSAT_CHECK(a.dims()[0] == b.dims()[0], "matmul: batch dims differ");

  const bool batched = (ra == 3 || rb == 3);
  Tensor out(batched ? std::vector<int32_t>{batch, m, n} : std::vector<int32_t>{m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  const int64_t sa = (ra == 3) ? static_cast<int64_t>(m) * k : 0;
  const int64_t sb = (rb == 3) ? static_cast<int64_t>(k) * n : 0;
  for (int32_t bt = 0; bt < batch; ++bt) {
    for (int32_t i = 0; i < m; ++i) {
      for (int32_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int32_t p = 0; p < k; ++p)
          acc += static_cast<double>(pa[bt * sa + static_cast<int64_t>(i) * k + p]) *
                 pb[bt * sb + static_cast<int64_t>(p) * n + j];
        po[(static_cast<int64_t>(bt) * m + i) * n + j] =
            apply_act(static_cast<float>(acc), act);
      }
    }
  }
  return out;
}

Tensor conv2d(const Tensor& x, const Tensor& w, int32_t stride_h, int32_t stride_w,
              Padding pad, Activation act) {
  TENSAT_CHECK(x.rank() == 4 && w.rank() == 4, "conv2d: rank must be 4");
  const int32_t n = x.dims()[0], c = x.dims()[1], h = x.dims()[2], wd = x.dims()[3];
  const int32_t cout = w.dims()[0], cing = w.dims()[1], kh = w.dims()[2], kw = w.dims()[3];
  TENSAT_CHECK(c % cing == 0, "conv2d: channels not divisible by weight cin");
  const int32_t groups = c / cing;
  TENSAT_CHECK(cout % groups == 0, "conv2d: cout not divisible by groups");
  const int32_t cout_per_group = cout / groups;

  int32_t pad_top = 0, pad_left = 0, oh = 0, ow = 0;
  if (pad == kPadSame) {
    oh = (h + stride_h - 1) / stride_h;
    ow = (wd + stride_w - 1) / stride_w;
    pad_top = same_pad_total(h, kh, stride_h) / 2;
    pad_left = same_pad_total(wd, kw, stride_w) / 2;
  } else {
    TENSAT_CHECK(h >= kh && wd >= kw, "conv2d: VALID kernel larger than input");
    oh = (h - kh) / stride_h + 1;
    ow = (wd - kw) / stride_w + 1;
  }

  Tensor out({n, cout, oh, ow});
  for (int32_t b = 0; b < n; ++b) {
    for (int32_t oc = 0; oc < cout; ++oc) {
      const int32_t g = oc / cout_per_group;
      for (int32_t y = 0; y < oh; ++y) {
        for (int32_t xo = 0; xo < ow; ++xo) {
          double acc = 0.0;
          for (int32_t ic = 0; ic < cing; ++ic) {
            const int32_t in_c = g * cing + ic;
            for (int32_t dy = 0; dy < kh; ++dy) {
              const int32_t iy = y * stride_h - pad_top + dy;
              if (iy < 0 || iy >= h) continue;
              for (int32_t dx = 0; dx < kw; ++dx) {
                const int32_t ix = xo * stride_w - pad_left + dx;
                if (ix < 0 || ix >= wd) continue;
                acc += static_cast<double>(x.at4(b, in_c, iy, ix)) * w.at4(oc, ic, dy, dx);
              }
            }
          }
          out.at4(b, oc, y, xo) = apply_act(static_cast<float>(acc), act);
        }
      }
    }
  }
  return out;
}

Tensor activation(const Tensor& x, Activation act) {
  Tensor out(std::vector<int32_t>(x.dims()));
  for (int64_t i = 0; i < x.volume(); ++i) out.data()[i] = apply_act(x.data()[i], act);
  return out;
}

namespace {

template <bool kMax>
Tensor pool_impl(const Tensor& x, int32_t kh, int32_t kw, int32_t sh, int32_t sw,
                 Padding pad, Activation act) {
  TENSAT_CHECK(x.rank() == 4, "pool: rank must be 4");
  const int32_t n = x.dims()[0], c = x.dims()[1], h = x.dims()[2], wd = x.dims()[3];
  int32_t pad_top = 0, pad_left = 0, oh = 0, ow = 0;
  if (pad == kPadSame) {
    oh = (h + sh - 1) / sh;
    ow = (wd + sw - 1) / sw;
    pad_top = same_pad_total(h, kh, sh) / 2;
    pad_left = same_pad_total(wd, kw, sw) / 2;
  } else {
    TENSAT_CHECK(h >= kh && wd >= kw, "pool: VALID kernel larger than input");
    oh = (h - kh) / sh + 1;
    ow = (wd - kw) / sw + 1;
  }
  Tensor out({n, c, oh, ow});
  for (int32_t b = 0; b < n; ++b) {
    for (int32_t ch = 0; ch < c; ++ch) {
      for (int32_t y = 0; y < oh; ++y) {
        for (int32_t xo = 0; xo < ow; ++xo) {
          float best = -std::numeric_limits<float>::infinity();
          double sum = 0.0;
          int count = 0;
          for (int32_t dy = 0; dy < kh; ++dy) {
            const int32_t iy = y * sh - pad_top + dy;
            if (iy < 0 || iy >= h) continue;
            for (int32_t dx = 0; dx < kw; ++dx) {
              const int32_t ix = xo * sw - pad_left + dx;
              if (ix < 0 || ix >= wd) continue;
              const float v = x.at4(b, ch, iy, ix);
              best = std::max(best, v);
              sum += v;
              ++count;
            }
          }
          TENSAT_CHECK(count > 0, "pool: empty window");
          const float v = kMax ? best : static_cast<float>(sum / count);
          out.at4(b, ch, y, xo) = apply_act(v, act);
        }
      }
    }
  }
  return out;
}

}  // namespace

Tensor poolmax(const Tensor& x, int32_t kh, int32_t kw, int32_t sh, int32_t sw,
               Padding pad, Activation act) {
  return pool_impl<true>(x, kh, kw, sh, sw, pad, act);
}

Tensor poolavg(const Tensor& x, int32_t kh, int32_t kw, int32_t sh, int32_t sw,
               Padding pad, Activation act) {
  return pool_impl<false>(x, kh, kw, sh, sw, pad, act);
}

Tensor transpose(const Tensor& x, span<const int32_t> perm) {
  const int rank = x.rank();
  TENSAT_CHECK(static_cast<int>(perm.size()) == rank, "transpose: bad perm size");
  std::vector<int32_t> dims(rank);
  for (int d = 0; d < rank; ++d) dims[d] = x.dims()[perm[d]];
  Tensor out(std::move(dims));
  std::vector<int32_t> out_idx(rank, 0), in_idx(rank, 0);
  for (int64_t flat = 0; flat < out.volume(); ++flat) {
    int64_t rem = flat;
    for (int d = rank - 1; d >= 0; --d) {
      out_idx[d] = static_cast<int32_t>(rem % out.dims()[d]);
      rem /= out.dims()[d];
    }
    for (int d = 0; d < rank; ++d) in_idx[perm[d]] = out_idx[d];
    out.data()[flat] = x.at(in_idx);
  }
  return out;
}

Tensor enlarge(const Tensor& x, int32_t ref_kh, int32_t ref_kw) {
  TENSAT_CHECK(x.rank() == 4, "enlarge: rank must be 4");
  const int32_t co = x.dims()[0], ci = x.dims()[1], kh = x.dims()[2], kw = x.dims()[3];
  TENSAT_CHECK(ref_kh >= kh && ref_kw >= kw, "enlarge: reference smaller than kernel");
  TENSAT_CHECK((ref_kh - kh) % 2 == 0 && (ref_kw - kw) % 2 == 0,
               "enlarge: padding must be symmetric");
  const int32_t off_h = (ref_kh - kh) / 2, off_w = (ref_kw - kw) / 2;
  Tensor out({co, ci, ref_kh, ref_kw});
  for (int32_t a = 0; a < co; ++a)
    for (int32_t b = 0; b < ci; ++b)
      for (int32_t y = 0; y < kh; ++y)
        for (int32_t z = 0; z < kw; ++z)
          out.at4(a, b, y + off_h, z + off_w) = x.at4(a, b, y, z);
  return out;
}

Tensor concat(int32_t axis, span<const Tensor* const> inputs) {
  TENSAT_CHECK(!inputs.empty(), "concat: no inputs");
  const int rank = inputs[0]->rank();
  std::vector<int32_t> dims = inputs[0]->dims();
  for (size_t i = 1; i < inputs.size(); ++i) {
    TENSAT_CHECK(inputs[i]->rank() == rank, "concat: rank mismatch");
    for (int d = 0; d < rank; ++d)
      if (d != axis)
        TENSAT_CHECK(inputs[i]->dims()[d] == dims[d], "concat: dim mismatch at " << d);
    dims[axis] += inputs[i]->dims()[axis];
  }
  Tensor out(std::move(dims));
  // Copy slabs: outer = product of dims before axis; inner = after axis.
  int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= out.dims()[d];
  for (int d = axis + 1; d < rank; ++d) inner *= out.dims()[d];
  int64_t axis_off = 0;
  for (const Tensor* t : inputs) {
    const int64_t t_axis = t->dims()[axis];
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = t->data().data() + o * t_axis * inner;
      float* dst = out.data().data() + (o * out.dims()[axis] + axis_off) * inner;
      std::copy(src, src + t_axis * inner, dst);
    }
    axis_off += t_axis;
  }
  return out;
}

std::pair<Tensor, Tensor> split_at(const Tensor& x, int32_t axis, int32_t pos) {
  const int rank = x.rank();
  TENSAT_CHECK(axis >= 0 && axis < rank, "split: bad axis");
  TENSAT_CHECK(pos > 0 && pos < x.dims()[axis], "split: bad position " << pos);
  std::vector<int32_t> d0 = x.dims(), d1 = x.dims();
  d0[axis] = pos;
  d1[axis] = x.dims()[axis] - pos;
  Tensor a(std::move(d0)), b(std::move(d1));
  int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= x.dims()[d];
  for (int d = axis + 1; d < rank; ++d) inner *= x.dims()[d];
  const int64_t ax = x.dims()[axis];
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = x.data().data() + o * ax * inner;
    std::copy(src, src + pos * inner, a.data().data() + o * pos * inner);
    std::copy(src + pos * inner, src + ax * inner,
              b.data().data() + o * (ax - pos) * inner);
  }
  return {std::move(a), std::move(b)};
}

Tensor reshape(const Tensor& x, std::vector<int32_t> dims) {
  Tensor out(std::move(dims));
  TENSAT_CHECK(out.volume() == x.volume(), "reshape: volume mismatch");
  std::copy(x.data().begin(), x.data().end(), out.data().begin());
  return out;
}

Tensor random_tensor(std::vector<int32_t> dims, uint64_t seed) {
  Tensor out(std::move(dims));
  Rng rng(seed);
  for (float& v : out.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return out;
}

}  // namespace tensat
