#include "service/service.h"

#include <utility>

#include "cycles/incremental.h"
#include "egraph/egraph.h"
#include "extract/extract.h"
#include "serialize/serialize.h"
#include "service/fingerprint.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace tensat {
namespace service {

/// One persistent session. Member order matters: `exp` (whose cycle
/// analysis holds a journal pointer into *eg) must be declared after `eg`
/// so it is destroyed first, detaching the journal while the e-graph is
/// still alive. Retirement resets in the same order.
struct OptimizationService::Session {
  std::mutex mutex;            // serializes runs on this session
  std::unique_ptr<EGraph> eg;  // heap-owned: must not move while journaled
  ExplorationSession exp;
  size_t runs{0};
};

OptimizationService::OptimizationService(const std::vector<Rewrite>& rules,
                                         const CostModel& model,
                                         ServiceOptions options)
    : rules_(rules),
      model_(model),
      options_(std::move(options)),
      session_cap_(options_.session_node_cap != 0
                       ? options_.session_node_cap
                       : 10 * options_.tensat.node_limit),
      cache_(options_.cache_capacity),
      warm_(options_.warm_capacity) {}

OptimizationService::~OptimizationService() = default;

ServiceResponse OptimizationService::submit(const std::string& graph_text,
                                            const std::string& session_key) {
  Timer timer;
  ServiceResponse resp;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
  }

  Graph input;
  std::string canonical;
  try {
    input = load_graph_from_string(graph_text);
    canonical = canonical_form(input);
  } catch (const std::exception& e) {
    // Malformed request bytes are a client error, never a service crash.
    resp.error = e.what();
    resp.seconds = timer.seconds();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return resp;
  }
  resp.fingerprint = fingerprint(canonical);

  // Layer 1: result cache. Checked before the session path too — a graph
  // the service has already solved cold needs no session work.
  if (options_.enable_cache) {
    if (auto hit = cache_.lookup(canonical)) {
      trace::incr("service/hits", 1);
      resp.ok = true;
      resp.cache_hit = true;
      resp.optimized_text = hit->optimized_text;  // stored bytes, untouched
      resp.original_cost = hit->original_cost;
      resp.optimized_cost = hit->optimized_cost;
      resp.iterations = 0;
      resp.seconds = timer.seconds();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cache_hits;
      return resp;
    }
    trace::incr("service/misses", 1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.cache_misses;
  }

  const bool use_session = options_.enable_sessions && !session_key.empty();
  ServiceResponse run =
      use_session ? run_in_session(input, session_key) : run_sessionless(input);
  run.fingerprint = resp.fingerprint;

  // Only cold-path results populate the cache: a session result depends on
  // the session's prior exploration, and a later hit must hand back exactly
  // what a fresh submission of the graph would have produced.
  if (run.ok && !use_session && options_.enable_cache) {
    CachedResult entry;
    entry.optimized_text = run.optimized_text;
    entry.original_cost = run.original_cost;
    entry.optimized_cost = run.optimized_cost;
    entry.iterations = run.iterations;
    entry.fingerprint = run.fingerprint;
    cache_.insert(canonical, std::move(entry));
  }
  run.seconds = timer.seconds();
  return run;
}

ServiceResponse OptimizationService::run_sessionless(const Graph& input) {
  ServiceResponse resp;
  TensatOptions t = options_.tensat;
  if (options_.enable_warm_starts) t.ilp.warm_cache = &warm_;
  TensatResult result = optimize(input, rules_, model_, t);
  resp.ok = result.ok;
  if (result.ok) {
    resp.optimized_text = save_graph_to_string(result.optimized);
    resp.original_cost = result.original_cost;
    resp.optimized_cost = result.optimized_cost;
    resp.iterations = result.explore.iterations;
  }
  return resp;
}

ServiceResponse OptimizationService::run_in_session(const Graph& input,
                                                    const std::string& key) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = sessions_[key];
    if (slot == nullptr) {
      slot = std::make_shared<Session>();
      ++stats_.sessions_created;
    }
    session = slot;
  }
  std::lock_guard<std::mutex> session_lock(session->mutex);

  // Retire an overgrown session before seeding the request into it. Reset
  // order mirrors the member order contract: the exploration state (cycle
  // journal) detaches first, then the e-graph goes away.
  if (session->eg != nullptr &&
      session->eg->num_enodes_total() > session_cap_) {
    session->exp = ExplorationSession{};
    session->eg.reset();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.sessions_retired;
  }

  const bool reused = session->eg != nullptr;
  Graph g = input;
  const Id root = g.single_root();
  if (!reused) session->eg = std::make_unique<EGraph>();
  EGraph& eg = *session->eg;
  // On reuse this only ADDS (hash-consed, journaled as new classes — no
  // merges), so the persisted cycle closure resumes soundly: the first
  // iteration's lazy epoch advance drains the additions.
  auto mapping = eg.add_graph(g);
  eg.set_root(mapping.at(root));

  TensatOptions t = options_.tensat;
  if (options_.enable_warm_starts) t.ilp.warm_cache = &warm_;
  // Fresh headroom per run: an explored session would otherwise arrive at
  // the limit already and stop before its first iteration.
  t.node_limit = options_.tensat.node_limit + eg.num_enodes_total();

  ServiceResponse resp;
  ExploreStats explore = run_exploration(eg, rules_, t, &session->exp);
  resp.iterations = explore.iterations;

  const double original_cost = graph_cost(input, model_);
  bool ok = false;
  Graph optimized;
  double optimized_cost = 0.0;
  if (t.extractor == ExtractorKind::kGreedy) {
    ExtractionResult ext = extract_greedy(eg, model_);
    ok = ext.ok;
    if (ext.ok) {
      optimized = std::move(ext.graph);
      optimized_cost = ext.cost;
    }
  } else {
    EngineExtractionResult ilp = extract_engine(eg, model_, t.ilp);
    ok = ilp.ok;
    if (ilp.ok) {
      optimized = std::move(ilp.graph);
      optimized_cost = ilp.cost;
    }
  }
  // Same certificate optimize() gives: never worse than the request's input.
  if (!ok || optimized_cost > original_cost) {
    Graph fallback = input;
    fallback.single_root();
    optimized = std::move(fallback);
    optimized_cost = original_cost;
  }

  resp.ok = true;
  resp.session_reused = reused;
  resp.optimized_text = save_graph_to_string(optimized);
  resp.original_cost = original_cost;
  resp.optimized_cost = optimized_cost;
  ++session->runs;

  if (reused) {
    trace::incr("service/sessions_reused", 1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.sessions_reused;
  }
  return resp;
}

ServiceStats OptimizationService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t OptimizationService::live_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace service
}  // namespace tensat
