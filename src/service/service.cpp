#include "service/service.h"

#include <algorithm>
#include <utility>

#include "cycles/incremental.h"
#include "egraph/egraph.h"
#include "extract/extract.h"
#include "serialize/serialize.h"
#include "service/fingerprint.h"
#include "support/pool.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace tensat {
namespace service {

/// One persistent session. Member order matters: `exp` (whose cycle
/// analysis holds a journal pointer into *eg) must be declared after `eg`
/// so it is destroyed first, detaching the journal while the e-graph is
/// still alive. Retirement resets in the same order.
struct OptimizationService::Session {
  std::mutex mutex;            // serializes runs on this session
  std::unique_ptr<EGraph> eg;  // heap-owned: must not move while journaled
  ExplorationSession exp;
  size_t runs{0};
  /// E-node total last folded into the service-wide session_enodes_ delta
  /// counter (so retirement/regrowth adjust by exact differences).
  size_t recorded_enodes{0};
};

struct OptimizationService::RunTelemetry {
  ExploreStats explore;
  ExtractStats extract;
  bool has_explore{false};
  bool has_extract{false};
  size_t enodes_total{0};  // e-graph size when the run finished
};

/// All metric handles, resolved once at construction so the request path
/// never re-looks-up a family (registry references are stable).
struct OptimizationService::Instruments {
  metrics::MetricsRegistry registry;
  metrics::FlightRecorder flight;

  metrics::Counter& requests;
  metrics::Counter& errors;
  metrics::Counter& cache_hits;
  metrics::Counter& cache_misses;
  metrics::Counter& sessions_created;
  metrics::Counter& sessions_reused;
  metrics::Counter& sessions_retired;
  metrics::Counter& fallback_cores;
  metrics::Counter& warm_start_hits;
  metrics::Counter& refactorizations;
  metrics::Counter& pool_steals;

  metrics::Gauge& hit_ratio;
  metrics::Gauge& cache_entries;
  metrics::Gauge& warm_entries;
  metrics::Gauge& sessions_live;
  metrics::Gauge& session_enodes;
  metrics::Gauge& pool_queue_depth;
  metrics::Gauge& pool_workers;

  // Per-outcome submit latency, one histogram instance per outcome label.
  metrics::Histogram& latency_hit;
  metrics::Histogram& latency_cold;
  metrics::Histogram& latency_session;
  metrics::Histogram& latency_error;
  metrics::Histogram& milp_gap;

  std::atomic<uint64_t> last_pool_steals{0};

  explicit Instruments(metrics::FlightRecorder::Options flight_opts)
      : flight(std::move(flight_opts)),
        requests(registry.counter("tensat_service_requests_total", {},
                                  "Requests submitted")),
        errors(registry.counter("tensat_service_errors_total", {},
                                "Rejected (malformed) submissions")),
        cache_hits(registry.counter("tensat_service_cache_hits_total", {},
                                    "Result-cache hits")),
        cache_misses(registry.counter("tensat_service_cache_misses_total", {},
                                      "Result-cache misses")),
        sessions_created(registry.counter("tensat_service_sessions_created_total",
                                          {}, "Persistent sessions created")),
        sessions_reused(registry.counter("tensat_service_sessions_reused_total",
                                         {},
                                         "Requests resuming an existing session")),
        sessions_retired(registry.counter(
            "tensat_service_sessions_retired_total", {},
            "Sessions retired (e-graph outgrew session_node_cap)")),
        fallback_cores(registry.counter(
            "tensat_service_fallback_cores_total", {},
            "MILP cores solved by the LP-relaxation fallback")),
        warm_start_hits(registry.counter(
            "tensat_service_warm_start_hits_total", {},
            "MILP node LPs restored from a warm-start basis")),
        refactorizations(registry.counter(
            "tensat_service_refactorizations_total", {},
            "Sparse-basis refactorizations across MILP node LPs")),
        pool_steals(registry.counter("tensat_service_pool_steals_total", {},
                                     "Work-stealing pool deque steals")),
        hit_ratio(registry.gauge("tensat_service_cache_hit_ratio", {},
                                 "Lifetime result-cache hit ratio")),
        cache_entries(registry.gauge("tensat_service_cache_entries", {},
                                     "Result-cache resident entries")),
        warm_entries(registry.gauge("tensat_service_warm_entries", {},
                                    "MILP warm-start cache entries")),
        sessions_live(registry.gauge("tensat_service_sessions_live", {},
                                     "Persistent sessions resident")),
        session_enodes(registry.gauge(
            "tensat_service_session_enodes", {},
            "E-nodes held across all live session e-graphs")),
        pool_queue_depth(registry.gauge(
            "tensat_service_pool_queue_depth", {},
            "Pending invitations across all pool lanes")),
        pool_workers(registry.gauge("tensat_service_pool_workers", {},
                                    "Work-stealing pool worker threads")),
        latency_hit(submit_histogram("hit")),
        latency_cold(submit_histogram("cold")),
        latency_session(submit_histogram("session")),
        latency_error(submit_histogram("error")),
        milp_gap(registry.histogram(
            "tensat_service_milp_gap", {},
            "Certified relative MILP optimality gap per request", 1e-9)) {}

  metrics::Histogram& submit_histogram(const char* outcome) {
    return registry.histogram("tensat_service_submit_seconds",
                              {{"outcome", outcome}},
                              "submit() wall time by request outcome");
  }

  metrics::Histogram& latency(metrics::RequestRecord::Outcome o) {
    switch (o) {
      case metrics::RequestRecord::Outcome::kHit:
        return latency_hit;
      case metrics::RequestRecord::Outcome::kCold:
        return latency_cold;
      case metrics::RequestRecord::Outcome::kSession:
        return latency_session;
      case metrics::RequestRecord::Outcome::kError:
        return latency_error;
    }
    return latency_cold;
  }
};

OptimizationService::OptimizationService(const std::vector<Rewrite>& rules,
                                         const CostModel& model,
                                         ServiceOptions options)
    : rules_(rules),
      model_(model),
      options_(std::move(options)),
      session_cap_(options_.session_node_cap != 0
                       ? options_.session_node_cap
                       : 10 * options_.tensat.node_limit),
      cache_(options_.cache_capacity),
      warm_(options_.warm_capacity),
      instruments_(options_.enable_metrics
                       ? std::make_unique<Instruments>([&] {
                           metrics::FlightRecorder::Options f;
                           f.capacity = options_.flight_capacity;
                           f.slow_threshold_s = options_.slow_threshold_s;
                           f.dump_dir = options_.slow_dump_dir;
                           f.max_dumps = options_.max_slow_dumps;
                           return f;
                         }())
                       : nullptr) {}

OptimizationService::~OptimizationService() = default;

metrics::MetricsRegistry* OptimizationService::metrics() const {
  return instruments_ ? &instruments_->registry : nullptr;
}

metrics::FlightRecorder* OptimizationService::flight_recorder() const {
  return instruments_ ? &instruments_->flight : nullptr;
}

/// The single exit point for submit(): observes the latency histogram for
/// `outcome`, refreshes the scrape gauges, folds the run's extraction
/// counters in, and appends the flight-recorder record (which may dump a
/// slow-request trace). No-op when metrics are disabled.
void OptimizationService::finish(ServiceResponse& resp,
                                 metrics::RequestRecord::Outcome outcome,
                                 const RunTelemetry* tel) {
  if (!instruments_) return;
  Instruments& m = *instruments_;
  m.latency(outcome).observe(resp.seconds);

  if (tel != nullptr && tel->has_extract) {
    m.fallback_cores.add(tel->extract.fallback_cores);
    if (tel->extract.warm_start_hits > 0)
      m.warm_start_hits.add(static_cast<uint64_t>(tel->extract.warm_start_hits));
    if (tel->extract.refactorizations > 0)
      m.refactorizations.add(
          static_cast<uint64_t>(tel->extract.refactorizations));
    if (tel->extract.gap >= 0.0 && tel->extract.gap < kInf)
      m.milp_gap.observe(tel->extract.gap);
  }

  // Scrape gauges. Reading the service's own counters via the registry
  // keeps Prometheus self-consistent (ratio derived from the same totals
  // the scrape exposes).
  const uint64_t hits = m.cache_hits.value();
  const uint64_t misses = m.cache_misses.value();
  if (hits + misses > 0)
    m.hit_ratio.set(static_cast<double>(hits) /
                    static_cast<double>(hits + misses));
  m.cache_entries.set(static_cast<double>(cache_.size()));
  m.warm_entries.set(static_cast<double>(warm_.size()));
  m.sessions_live.set(static_cast<double>(live_sessions()));
  m.session_enodes.set(
      static_cast<double>(session_enodes_.load(std::memory_order_relaxed)));

  WorkStealingPool& pool = WorkStealingPool::global();
  m.pool_queue_depth.set(static_cast<double>(pool.queue_depth()));
  m.pool_workers.set(static_cast<double>(pool.worker_count()));
  const uint64_t steals = pool.stats().steals;
  const uint64_t prev =
      m.last_pool_steals.exchange(steals, std::memory_order_relaxed);
  if (steals > prev) m.pool_steals.add(steals - prev);

  metrics::RequestRecord rec;
  rec.request_id = resp.request_id;
  rec.fingerprint = resp.fingerprint;
  rec.outcome = outcome;
  rec.seconds = resp.seconds;
  rec.iterations = resp.iterations;
  if (tel != nullptr) {
    if (tel->has_explore) {
      rec.stop_reason = static_cast<int>(tel->explore.stop);
      rec.search_seconds = tel->explore.search_seconds;
      rec.apply_seconds = tel->explore.apply_seconds;
      rec.rebuild_seconds = tel->explore.rebuild_seconds;
      rec.dmap_seconds = tel->explore.dmap_seconds;
      rec.cycle_sweep_seconds = tel->explore.cycle_sweep_seconds;
    }
    if (tel->has_extract) {
      rec.reach_seconds = tel->extract.reach_seconds;
      rec.reduce_seconds = tel->extract.reduce_seconds;
      rec.lp_build_seconds = tel->extract.lp_build_seconds;
      rec.solve_seconds = tel->extract.solve_seconds;
      rec.stitch_seconds = tel->extract.stitch_seconds;
      if (tel->extract.gap >= 0.0 && tel->extract.gap < kInf)
        rec.milp_gap = tel->extract.gap;
      rec.fallback_cores = tel->extract.fallback_cores;
    }
    rec.enodes_total = tel->enodes_total;
  }
  m.flight.record(rec);
}

ServiceResponse OptimizationService::submit(const std::string& graph_text,
                                            const std::string& session_key) {
  Timer timer;
  ServiceResponse resp;
  resp.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
  }
  if (instruments_) instruments_->requests.inc();

  Graph input;
  std::string canonical;
  try {
    input = load_graph_from_string(graph_text);
    canonical = canonical_form(input);
  } catch (const std::exception& e) {
    // Malformed request bytes are a client error, never a service crash.
    resp.error = e.what();
    resp.seconds = timer.seconds();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.errors;
    }
    if (instruments_) instruments_->errors.inc();
    finish(resp, metrics::RequestRecord::Outcome::kError, nullptr);
    return resp;
  }
  resp.fingerprint = fingerprint(canonical);

  // Layer 1: result cache. Checked before the session path too — a graph
  // the service has already solved cold needs no session work.
  if (options_.enable_cache) {
    if (auto hit = cache_.lookup(canonical)) {
      trace::incr("service/hits", 1);
      resp.ok = true;
      resp.cache_hit = true;
      resp.optimized_text = hit->optimized_text;  // stored bytes, untouched
      resp.original_cost = hit->original_cost;
      resp.optimized_cost = hit->optimized_cost;
      resp.iterations = 0;
      resp.seconds = timer.seconds();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.cache_hits;
      }
      if (instruments_) instruments_->cache_hits.inc();
      finish(resp, metrics::RequestRecord::Outcome::kHit, nullptr);
      return resp;
    }
    trace::incr("service/misses", 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cache_misses;
    }
    if (instruments_) instruments_->cache_misses.inc();
  }

  const bool use_session = options_.enable_sessions && !session_key.empty();
  RunTelemetry tel;
  ServiceResponse run = use_session ? run_in_session(input, session_key, &tel)
                                    : run_sessionless(input, &tel);
  run.fingerprint = resp.fingerprint;
  run.request_id = resp.request_id;

  // Only cold-path results populate the cache: a session result depends on
  // the session's prior exploration, and a later hit must hand back exactly
  // what a fresh submission of the graph would have produced.
  if (run.ok && !use_session && options_.enable_cache) {
    CachedResult entry;
    entry.optimized_text = run.optimized_text;
    entry.original_cost = run.original_cost;
    entry.optimized_cost = run.optimized_cost;
    entry.iterations = run.iterations;
    entry.fingerprint = run.fingerprint;
    cache_.insert(canonical, std::move(entry));
  }
  run.seconds = timer.seconds();
  finish(run,
         use_session ? metrics::RequestRecord::Outcome::kSession
                     : metrics::RequestRecord::Outcome::kCold,
         &tel);
  return run;
}

ServiceResponse OptimizationService::run_sessionless(const Graph& input,
                                                     RunTelemetry* tel) {
  ServiceResponse resp;
  TensatOptions t = options_.tensat;
  if (options_.enable_warm_starts) t.ilp.warm_cache = &warm_;
  TensatResult result = optimize(input, rules_, model_, t);
  resp.ok = result.ok;
  if (result.ok) {
    resp.optimized_text = save_graph_to_string(result.optimized);
    resp.original_cost = result.original_cost;
    resp.optimized_cost = result.optimized_cost;
    resp.iterations = result.explore.iterations;
  }
  tel->explore = result.explore;
  tel->has_explore = true;
  tel->enodes_total = result.explore.enodes_total;
  if (t.extractor == ExtractorKind::kIlp) {
    tel->extract = result.extract_stats;
    tel->has_extract = true;
  }
  return resp;
}

ServiceResponse OptimizationService::run_in_session(const Graph& input,
                                                    const std::string& key,
                                                    RunTelemetry* tel) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = sessions_[key];
    if (slot == nullptr) {
      slot = std::make_shared<Session>();
      ++stats_.sessions_created;
      if (instruments_) instruments_->sessions_created.inc();
    }
    session = slot;
  }
  std::lock_guard<std::mutex> session_lock(session->mutex);

  // Retire an overgrown session before seeding the request into it. Reset
  // order mirrors the member order contract: the exploration state (cycle
  // journal) detaches first, then the e-graph goes away.
  if (session->eg != nullptr &&
      session->eg->num_enodes_total() > session_cap_) {
    session->exp = ExplorationSession{};
    session->eg.reset();
    session_enodes_.fetch_sub(static_cast<int64_t>(session->recorded_enodes),
                              std::memory_order_relaxed);
    session->recorded_enodes = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.sessions_retired;
    }
    if (instruments_) instruments_->sessions_retired.inc();
  }

  const bool reused = session->eg != nullptr;
  Graph g = input;
  const Id root = g.single_root();
  if (!reused) session->eg = std::make_unique<EGraph>();
  EGraph& eg = *session->eg;
  // On reuse this only ADDS (hash-consed, journaled as new classes — no
  // merges), so the persisted cycle closure resumes soundly: the first
  // iteration's lazy epoch advance drains the additions.
  auto mapping = eg.add_graph(g);
  eg.set_root(mapping.at(root));

  TensatOptions t = options_.tensat;
  if (options_.enable_warm_starts) t.ilp.warm_cache = &warm_;
  // Fresh headroom per run: an explored session would otherwise arrive at
  // the limit already and stop before its first iteration.
  t.node_limit = options_.tensat.node_limit + eg.num_enodes_total();

  ServiceResponse resp;
  ExploreStats explore = run_exploration(eg, rules_, t, &session->exp);
  resp.iterations = explore.iterations;
  tel->explore = explore;
  tel->has_explore = true;

  const double original_cost = graph_cost(input, model_);
  bool ok = false;
  Graph optimized;
  double optimized_cost = 0.0;
  if (t.extractor == ExtractorKind::kGreedy) {
    ExtractionResult ext = extract_greedy(eg, model_);
    ok = ext.ok;
    if (ext.ok) {
      optimized = std::move(ext.graph);
      optimized_cost = ext.cost;
    }
  } else {
    EngineExtractionResult ilp = extract_engine(eg, model_, t.ilp);
    ok = ilp.ok;
    if (ilp.ok) {
      optimized = std::move(ilp.graph);
      optimized_cost = ilp.cost;
    }
    tel->extract = ilp.stats;
    tel->has_extract = true;
  }
  // Same certificate optimize() gives: never worse than the request's input.
  if (!ok || optimized_cost > original_cost) {
    Graph fallback = input;
    fallback.single_root();
    optimized = std::move(fallback);
    optimized_cost = original_cost;
  }

  resp.ok = true;
  resp.session_reused = reused;
  resp.optimized_text = save_graph_to_string(optimized);
  resp.original_cost = original_cost;
  resp.optimized_cost = optimized_cost;
  ++session->runs;

  // Maintain the service-wide live-e-node delta for the size gauge.
  const size_t now_enodes = eg.num_enodes_total();
  session_enodes_.fetch_add(
      static_cast<int64_t>(now_enodes) -
          static_cast<int64_t>(session->recorded_enodes),
      std::memory_order_relaxed);
  session->recorded_enodes = now_enodes;
  tel->enodes_total = now_enodes;

  if (reused) {
    trace::incr("service/sessions_reused", 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.sessions_reused;
    }
    if (instruments_) instruments_->sessions_reused.inc();
  }
  return resp;
}

ServiceStats OptimizationService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t OptimizationService::live_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace service
}  // namespace tensat
