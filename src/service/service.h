// Optimization-as-a-service: a long-lived front end over the TENSAT
// pipeline that amortizes work across requests instead of starting cold
// every time. Three reuse layers, each independently switchable:
//
//   1. Result cache (service/cache.h): requests are canonicalized
//      (service/fingerprint.h) and looked up in a bounded LRU keyed by the
//      full canonical form. A hit returns the stored optimized graph bytes
//      and stats without touching the pool — bit-identical to the run that
//      populated the entry. Only sessionless (cold-path) results populate
//      the cache, so a hit always reproduces what a fresh submission of
//      that graph would have been handed.
//
//   2. Persistent sessions: a client that iterates on one model (perturbed
//      resubmissions) names a session; the service keeps that session's
//      explored e-graph alive together with its ExplorationSession state
//      (backoff scheduler on the global iteration clock, incremental cycle
//      journal/closure). A resubmission is added into the existing e-graph
//      and exploration RESUMES — rewrites discovered for the previous
//      variant are already in the e-graph, so saturation converges in fewer
//      iterations. Session results are cost-certified (never worse than the
//      request's input, same guarantee as optimize()) but not byte-stable
//      across service restarts: they depend on what the session explored
//      before, which is the point. A session whose e-graph outgrows
//      session_node_cap is retired and restarted fresh on the next request.
//
//   3. Cross-request MILP warm starts: the extraction engine's per-core
//      solves publish their root LP basis and pseudocost history into a
//      shared MilpWarmCache (extract/engine/engine.h) keyed by core
//      formulation fingerprint. Requests — sessionless or not — that
//      produce a previously-seen core seed its solve. Advisory only: seeds
//      steer simplex/B&B search order, never the certified objective.
//
// Concurrency: submit() is safe from any number of threads. The result
// cache and warm cache have internal locks; the session table has a service
// lock for lookup/creation and a per-session lock held for the duration of
// a session run (two requests naming the same session serialize; distinct
// sessions run concurrently on the shared pool).
//
// Trace counters (trace/trace.h, aggregated per tracer):
//   service/hits             result-cache hits
//   service/misses           result-cache misses
//   service/sessions_reused  requests that resumed an existing session
//
// Metrics (src/metrics/, always-on unless ServiceOptions::enable_metrics is
// cleared): per-outcome submit latency histograms, hit-ratio / session /
// pool gauges, MILP gap and fallback counters, and a flight recorder of
// per-request records with slow-request Chrome-trace capture. Scrape with
// metrics()->expose_prometheus() / expose_json(); see docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cost/cost.h"
#include "extract/engine/engine.h"
#include "metrics/flight.h"
#include "metrics/metrics.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "service/cache.h"

namespace tensat {
namespace service {

struct ServiceOptions {
  /// Pipeline knobs for every request the service runs itself (cache hits
  /// bypass them entirely). node_limit is interpreted per run: a resumed
  /// session gets node_limit fresh headroom on top of its existing e-graph.
  TensatOptions tensat;
  bool enable_cache = true;
  bool enable_sessions = true;
  bool enable_warm_starts = true;
  size_t cache_capacity = 256;       // result-cache entries
  size_t warm_capacity = 512;        // MILP warm-start entries
  /// Retire a session whose e-graph (hash-cons total) exceeds this many
  /// e-nodes; 0 = 10x tensat.node_limit. Retirement drops the explored
  /// state — the next request on the key starts a fresh session.
  size_t session_node_cap = 0;
  /// Metrics are on by default (that is the point of an always-on layer);
  /// the switch exists so bench section 10 can measure its own overhead
  /// gate against a genuinely uninstrumented service.
  bool enable_metrics = true;
  /// Flight-recorder knobs (metrics::FlightRecorder::Options). A request
  /// slower than slow_threshold_s dumps a Chrome trace of its phase
  /// breakdown into slow_dump_dir; <= 0 disables capture (ring still on).
  size_t flight_capacity = 256;
  double slow_threshold_s = 0.0;
  std::string slow_dump_dir = ".";
  size_t max_slow_dumps = 16;
};

/// Everything submit() reports about one request.
struct ServiceResponse {
  bool ok{false};
  std::string error;           // set when !ok (parse/validation failure)
  bool cache_hit{false};
  bool session_reused{false};  // resumed an existing session's e-graph
  uint64_t fingerprint{0};     // canonical-form fingerprint of the input
  std::string optimized_text;  // optimized graph, serialized (empty if !ok)
  double original_cost{0.0};
  double optimized_cost{0.0};
  int iterations{0};           // exploration iterations this request ran (0 on hit)
  double seconds{0.0};         // submit() wall time, including hits
  /// Process-unique id assigned at submission (1-based, monotone). Keys the
  /// flight-recorder record and any slow-request trace dump for this
  /// request, so a client report ("request 1234 was slow") is joinable
  /// against the service's own telemetry.
  uint64_t request_id{0};
};

/// Service-lifetime counters (monotone; independent of the trace sink).
struct ServiceStats {
  size_t requests{0};
  size_t errors{0};            // rejected (malformed) submissions
  size_t cache_hits{0};
  size_t cache_misses{0};      // misses among cache-eligible requests
  size_t sessions_created{0};
  size_t sessions_reused{0};
  size_t sessions_retired{0};  // e-graph outgrew session_node_cap
};

class OptimizationService {
 public:
  /// `rules` and `model` must outlive the service.
  OptimizationService(const std::vector<Rewrite>& rules, const CostModel& model,
                      ServiceOptions options = {});
  ~OptimizationService();
  OptimizationService(const OptimizationService&) = delete;
  OptimizationService& operator=(const OptimizationService&) = delete;

  /// Optimizes one graph given in the tensat-graph v1 text format.
  /// `session_key` empty = sessionless (cache + warm starts only); non-empty
  /// names the persistent session to resume or create. Malformed input
  /// yields ok=false with the parse error in `error` — submit() never
  /// throws for bad request bytes.
  ServiceResponse submit(const std::string& graph_text,
                         const std::string& session_key = "");

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] size_t warm_entries() const { return warm_.size(); }
  [[nodiscard]] size_t live_sessions() const;

  /// The metrics registry / flight recorder, or nullptr when
  /// ServiceOptions::enable_metrics is false. Scraping is thread-safe and
  /// may run concurrently with submissions.
  [[nodiscard]] metrics::MetricsRegistry* metrics() const;
  [[nodiscard]] metrics::FlightRecorder* flight_recorder() const;

 private:
  struct Session;
  struct Instruments;
  /// Per-run phase/stat payload handed back by the run paths so submit()'s
  /// single finish point can feed the histograms and flight recorder.
  struct RunTelemetry;

  ServiceResponse run_sessionless(const Graph& input, RunTelemetry* tel);
  ServiceResponse run_in_session(const Graph& input, const std::string& key,
                                 RunTelemetry* tel);
  void finish(ServiceResponse& resp, metrics::RequestRecord::Outcome outcome,
              const RunTelemetry* tel);

  const std::vector<Rewrite>& rules_;
  const CostModel& model_;
  const ServiceOptions options_;
  const size_t session_cap_;  // resolved session_node_cap

  ResultCache cache_;
  MilpWarmCache warm_;

  mutable std::mutex mutex_;  // guards sessions_ and stats_
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  ServiceStats stats_;

  std::atomic<uint64_t> next_request_id_{0};
  /// Live e-node total across all session e-graphs (delta-maintained by the
  /// session runs; drives the e-graph-size gauge without walking the table).
  std::atomic<int64_t> session_enodes_{0};
  const std::unique_ptr<Instruments> instruments_;  // null = metrics off
};

}  // namespace service
}  // namespace tensat
