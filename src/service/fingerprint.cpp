#include "service/fingerprint.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/check.h"

namespace tensat {
namespace service {

std::string canonical_form(const Graph& g) {
  TENSAT_CHECK(!g.roots().empty(), "canonical_form: graph has no roots");
  // canonical_key() renumbers nodes in first-visit DFS order from the roots,
  // which makes it id-relabeling invariant but root-order DEPENDENT (roots
  // are visited and emitted in stored order). Sort the roots by their own
  // single-root canonical serialization first; that order is itself
  // invariant under relabeling, so the combined key becomes root-order
  // invariant too.
  Graph sorted = g;
  if (g.roots().size() > 1) {
    std::vector<std::pair<std::string, Id>> keyed;
    keyed.reserve(g.roots().size());
    for (Id r : g.roots()) {
      Graph one = g;
      one.set_roots({r});
      keyed.emplace_back(one.canonical_key(), r);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Id> roots;
    roots.reserve(keyed.size());
    for (auto& [key, r] : keyed) roots.push_back(r);
    sorted.set_roots(std::move(roots));
  }
  return sorted.canonical_key();
}

uint64_t fingerprint(const std::string& bytes) {
  // FNV-1a, 64-bit: unseeded on purpose — fingerprints must agree across
  // processes and appear verbatim in logs and bench JSON.
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t graph_fingerprint(const Graph& g) { return fingerprint(canonical_form(g)); }

}  // namespace service
}  // namespace tensat
