// Bounded LRU result cache for the optimization service.
//
// Keys are full canonical-form strings (service/fingerprint.h) — the 64-bit
// fingerprint is display-only, so a hash collision can never serve the wrong
// graph's result. Values are the exact bytes a previous cold optimization
// produced; a hit returns those stored bytes untouched, which is what makes
// cache hits bit-identical to the run that populated them (the service-bench
// gate recomputes a hit cold and compares byte-for-byte).
//
// Thread safety: every method takes the internal mutex; lookups mutate LRU
// order, so there is no shared/read-only fast path. The cache stores value
// snapshots by copy — entries stay valid after eviction of the map node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace tensat {
namespace service {

/// Everything a cache hit needs to answer a request without recomputing.
struct CachedResult {
  std::string optimized_text;  // serialized optimized graph (exact bytes)
  double original_cost{0.0};
  double optimized_cost{0.0};
  int iterations{0};           // exploration iterations of the populating run
  uint64_t fingerprint{0};     // display fingerprint of the canonical form
};

/// Bounded LRU map: canonical form -> CachedResult.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns a copy of the entry and promotes it to most-recently-used.
  std::optional<CachedResult> lookup(const std::string& canonical) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(canonical);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second.order_it);
    ++hits_;
    return it->second.value;
  }

  /// Inserts (or refreshes) an entry, evicting least-recently-used past
  /// capacity. Refreshing overwrites the stored value and promotes the key.
  void insert(const std::string& canonical, CachedResult value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(canonical);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      order_.splice(order_.begin(), order_, it->second.order_it);
      return;
    }
    order_.push_front(canonical);
    map_.emplace(canonical, Entry{std::move(value), order_.begin()});
    while (map_.size() > capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
    }
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }
  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  [[nodiscard]] size_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

 private:
  struct Entry {
    CachedResult value;
    std::list<std::string>::iterator order_it;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> order_;  // front = most recently used
  size_t hits_{0};
  size_t misses_{0};
};

}  // namespace service
}  // namespace tensat
