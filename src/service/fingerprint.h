// Canonical graph fingerprints for the optimization service's result cache.
//
// Two submissions of "the same" tensor graph rarely arrive byte-identical:
// clients renumber node ids, reorder the node lines (any topological order is
// valid), and list multiple roots in arbitrary order. The cache must treat
// all of those as one key, and must never conflate two graphs that compute
// different things. canonical_form() produces a serialization that is
//
//   * invariant under node-id relabeling and node-line reordering (nodes are
//     renumbered by a deterministic first-visit DFS from the roots, reusing
//     Graph::canonical_key);
//   * invariant under root-order permutation (roots are sorted by their own
//     single-root canonical serialization before the combined key is built);
//   * injective on graph structure: the string is Graph::canonical_key()'s
//     full renumbered serialization (every op, payload, child edge, and root
//     spelled out), so equal forms imply isomorphic rooted DAGs.
//
// The cache keys on the full canonical string (no collision risk);
// fingerprint() condenses it to a 64-bit FNV-1a hash for display, logging,
// and the warm-start cache's per-core keys.
#pragma once

#include <cstdint>
#include <string>

#include "lang/graph.h"

namespace tensat {
namespace service {

/// The canonical serialization described above. The input graph is not
/// modified. Throws tensat::Error only if the graph has no roots.
[[nodiscard]] std::string canonical_form(const Graph& g);

/// 64-bit FNV-1a of an arbitrary byte string (stable across platforms and
/// runs — no per-process seeding, so fingerprints are comparable between
/// service instances and log files).
[[nodiscard]] uint64_t fingerprint(const std::string& bytes);

/// Convenience: fingerprint(canonical_form(g)).
[[nodiscard]] uint64_t graph_fingerprint(const Graph& g);

}  // namespace service
}  // namespace tensat
