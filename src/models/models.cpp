#include "models/models.h"

#include "support/check.h"

namespace tensat {
namespace {

/// Unique weight names within one graph.
struct Namer {
  int counter = 0;
  std::string next(const std::string& prefix) {
    return prefix + "_" + std::to_string(counter++);
  }
};

Id conv_layer(Graph& g, Namer& n, Id x, int cout, int kh, int kw, int stride = 1,
              Padding pad = kPadSame, bool with_relu = true, int groups = 1) {
  const ValueInfo& xi = g.info(x);
  TENSAT_CHECK(xi.rank() == 4, "conv_layer expects NCHW input");
  const int cin = xi.shape[1];
  TENSAT_CHECK(cin % groups == 0 && cout % groups == 0, "bad group count");
  const Id w = g.weight(n.next("w"), {cout, cin / groups, kh, kw});
  Id out = g.conv(x, w, stride, stride, pad, kActNone);
  if (with_relu) out = g.relu(out);
  return out;
}

Id fc_layer(Graph& g, Namer& n, Id x, int out_dim, bool with_relu) {
  const ValueInfo& xi = g.info(x);
  const Id w = g.weight(n.next("fc"), {xi.shape[xi.rank() - 1], out_dim});
  Id out = g.matmul(x, w);
  if (with_relu) out = g.relu(out);
  return out;
}

}  // namespace

Graph make_bert(int layers, int seq, int hidden) {
  Graph g;
  Namer n;
  Id x = g.input("x", {seq, hidden});
  for (int l = 0; l < layers; ++l) {
    // Self-attention: Q/K/V projections share the input x (paper Fig. 8).
    const Id wq = g.weight(n.next("wq"), {hidden, hidden});
    const Id wk = g.weight(n.next("wk"), {hidden, hidden});
    const Id wv = g.weight(n.next("wv"), {hidden, hidden});
    const Id wo = g.weight(n.next("wo"), {hidden, hidden});
    const Id q = g.matmul(x, wq);
    const Id k = g.matmul(x, wk);
    const Id v = g.matmul(x, wv);
    const Id scores = g.matmul(q, g.transpose(k, {1, 0}));
    const Id ctx = g.matmul(scores, v);
    const Id att = g.matmul(ctx, wo);
    x = g.ewadd(x, att);
    // Feed-forward block.
    const Id h = fc_layer(g, n, x, 4 * hidden, /*with_relu=*/true);
    x = g.ewadd(x, fc_layer(g, n, h, hidden, /*with_relu=*/false));
  }
  g.add_root(x);
  return g;
}

Graph make_nasrnn(int steps, int batch, int hidden, int gates) {
  Graph g;
  Namer n;
  Id h = g.input("h0", {batch, hidden});
  for (int t = 0; t < steps; ++t) {
    const Id x = g.input("x" + std::to_string(t), {batch, hidden});
    // Eight gates, each a pair of matmuls — eight matmuls share x and eight
    // share h (paper Fig. 11's motif).
    std::vector<Id> gate_outputs;
    static constexpr Activation kActs[8 > 0 ? 8 : 1] = {kActRelu,    kActSigmoid, kActTanh,
                                            kActSigmoid, kActTanh,    kActSigmoid,
                                            kActRelu,    kActTanh};
    for (int i = 0; i < gates; ++i) {
      const Id wx = g.weight(n.next("wx"), {hidden, hidden});
      const Id wh = g.weight(n.next("wh"), {hidden, hidden});
      const Id u = g.ewadd(g.matmul(x, wx), g.matmul(h, wh));
      Id c = u;
      switch (kActs[i % 8]) {
        case kActRelu:
          c = g.relu(u);
          break;
        case kActSigmoid:
          c = g.sigmoid(u);
          break;
        case kActTanh:
          c = g.tanh(u);
          break;
        default:
          break;
      }
      gate_outputs.push_back(c);
    }
    // Combine gates pairwise (alternating mul/add), then reduce to h.
    std::vector<Id> level = gate_outputs;
    bool use_mul = true;
    while (level.size() > 1) {
      std::vector<Id> next;
      for (size_t i = 0; i + 1 < level.size(); i += 2) {
        next.push_back(use_mul ? g.ewmul(level[i], level[i + 1])
                               : g.ewadd(level[i], level[i + 1]));
        use_mul = !use_mul;
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = std::move(next);
    }
    h = g.tanh(level[0]);
  }
  g.add_root(h);
  return g;
}

Graph make_resnext50(int blocks, int channels, int hw, int groups) {
  Graph g;
  Namer n;
  Id x = g.input("x", {1, channels, hw, hw});
  for (int b = 0; b < blocks; ++b) {
    const int mid = channels / 2;
    Id y = conv_layer(g, n, x, mid, 1, 1);
    y = conv_layer(g, n, y, mid, 3, 3, 1, kPadSame, true, groups);
    y = conv_layer(g, n, y, channels, 1, 1, 1, kPadSame, /*with_relu=*/false);
    x = g.relu(g.ewadd(x, y));
  }
  x = g.poolavg(x, 2, 2, 2, 2, kPadValid);
  g.add_root(x);
  return g;
}

namespace {

/// Separable convolution: depthwise (groups == channels) then pointwise.
Id sep_conv(Graph& g, Namer& n, Id x, int channels) {
  const Id dw = g.weight(n.next("dw"), {channels, 1, 3, 3});
  const Id pw = g.weight(n.next("pw"), {channels, channels, 1, 1});
  return g.conv(g.conv(x, dw, 1, 1, kPadSame), pw, 1, 1, kPadSame);
}

}  // namespace

Graph make_nasnet_a(int cells, int channels, int hw) {
  Graph g;
  Namer n;
  Id stem = conv_layer(g, n, g.input("x", {1, 3, hw, hw}), channels, 3, 3);
  Id prev = stem;
  Id cur = stem;
  for (int c = 0; c < cells; ++c) {
    // A normal cell: five branch combinations, concatenated (scaled-down
    // NasNet-A; the real cell has the same shape with more branches).
    const Id b1 = g.ewadd(sep_conv(g, n, cur, channels), cur);
    const Id b2 = g.ewadd(sep_conv(g, n, prev, channels), sep_conv(g, n, cur, channels));
    const Id b3 = g.ewadd(g.poolavg(cur, 3, 3, 1, 1, kPadSame), prev);
    const Id b4 = g.ewadd(g.poolavg(prev, 3, 3, 1, 1, kPadSame),
                          g.poolmax(prev, 3, 3, 1, 1, kPadSame));
    const Id cat = g.concat(1, {b1, b2, b3, b4});  // 4*channels
    // Project back down so cells compose.
    const Id next = conv_layer(g, n, cat, channels, 1, 1);
    prev = cur;
    cur = next;
  }
  g.add_root(cur);
  return g;
}

Graph make_squeezenet(int fires, int channels, int hw) {
  Graph g;
  Namer n;
  Id x = conv_layer(g, n, g.input("x", {1, 3, hw, hw}), channels, 3, 3, 2);
  for (int f = 0; f < fires; ++f) {
    // Fire module: squeeze 1x1, then parallel expand 1x1 / 3x3 sharing the
    // squeezed input (paper Fig. 9's motif), concatenated over channels.
    const int squeeze = channels / 4;
    const int expand = channels / 2;
    const Id s = conv_layer(g, n, x, squeeze, 1, 1);
    const Id e1 = conv_layer(g, n, s, expand, 1, 1);
    const Id e3 = conv_layer(g, n, s, expand, 3, 3);
    x = g.concat(1, {e1, e3});
    if (f == fires / 2) x = g.poolmax(x, 2, 2, 2, 2, kPadValid);
  }
  x = conv_layer(g, n, x, channels, 1, 1);
  x = g.poolavg(x, g.info(x).shape[2], g.info(x).shape[3], 1, 1, kPadValid);
  g.add_root(x);
  return g;
}

Graph make_vgg19(int base_channels, int hw) {
  Graph g;
  Namer n;
  Id x = g.input("x", {1, 3, hw, hw});
  const int block_convs[5] = {2, 2, 4, 4, 4};
  int c = base_channels;
  for (int b = 0; b < 5; ++b) {
    for (int k = 0; k < block_convs[b]; ++k) x = conv_layer(g, n, x, c, 3, 3);
    x = g.poolmax(x, 2, 2, 2, 2, kPadValid);
    if (b < 3) c *= 2;
  }
  const ValueInfo& xi = g.info(x);
  x = g.reshape(x, {1, static_cast<int32_t>(xi.volume())});
  x = fc_layer(g, n, x, 4 * c, true);
  x = fc_layer(g, n, x, 4 * c, true);
  x = fc_layer(g, n, x, 10, false);
  g.add_root(x);
  return g;
}

Graph make_inception_v3(int modules, int channels, int hw) {
  Graph g;
  Namer n;
  Id x = conv_layer(g, n, g.input("x", {1, 3, hw, hw}), channels, 3, 3, 2);
  for (int m = 0; m < modules; ++m) {
    // Inception-A-style module: four parallel branches from a shared input
    // (1x1 / 5x5 / double-3x3 / pooled-1x1), concatenated over channels.
    const int b = channels / 4;
    const Id b1 = conv_layer(g, n, x, b, 1, 1);
    const Id b2 = conv_layer(g, n, conv_layer(g, n, x, b, 1, 1), b, 5, 5);
    const Id b3 =
        conv_layer(g, n, conv_layer(g, n, conv_layer(g, n, x, b, 1, 1), b, 3, 3), b, 3, 3);
    const Id b4 = conv_layer(g, n, g.poolavg(x, 3, 3, 1, 1, kPadSame), b, 1, 1);
    x = g.concat(1, {b1, b2, b3, b4});
  }
  x = g.poolavg(x, 2, 2, 2, 2, kPadValid);
  g.add_root(x);
  return g;
}

Graph make_resnet50(int blocks, int channels, int hw) {
  Graph g;
  Namer n;
  Id x = conv_layer(g, n, g.input("x", {1, 3, hw, hw}), channels, 3, 3);
  for (int b = 0; b < blocks; ++b) {
    const int mid = channels / 4;
    Id y = conv_layer(g, n, x, mid, 1, 1);
    y = conv_layer(g, n, y, mid, 3, 3);
    y = conv_layer(g, n, y, channels, 1, 1, 1, kPadSame, /*with_relu=*/false);
    x = g.relu(g.ewadd(x, y));
  }
  x = g.poolavg(x, 2, 2, 2, 2, kPadValid);
  g.add_root(x);
  return g;
}

std::vector<ModelInfo> paper_models() {
  std::vector<ModelInfo> models;
  models.push_back({"NasRNN", make_nasrnn(3, 16, 512, 4)});
  models.push_back({"BERT", make_bert(4, 64, 512)});
  models.push_back({"ResNeXt-50", make_resnext50(3, 64, 28, 8)});
  models.push_back({"NasNet-A", make_nasnet_a(2, 32, 28)});
  models.push_back({"SqueezeNet", make_squeezenet(4, 32, 32)});
  models.push_back({"VGG-19", make_vgg19(16, 32)});
  models.push_back({"Inception-v3", make_inception_v3(3, 64, 28)});
  return models;
}

std::vector<ModelInfo> tiny_models() {
  std::vector<ModelInfo> models;
  models.push_back({"NasRNN", make_nasrnn(1, 2, 8)});
  models.push_back({"BERT", make_bert(1, 4, 8)});
  models.push_back({"ResNeXt-50", make_resnext50(1, 8, 8, 2)});
  models.push_back({"NasNet-A", make_nasnet_a(1, 4, 8)});
  models.push_back({"SqueezeNet", make_squeezenet(1, 8, 8)});
  models.push_back({"VGG-19", make_vgg19(2, 32)});
  models.push_back({"Inception-v3", make_inception_v3(1, 8, 8)});
  models.push_back({"ResNet-50", make_resnet50(1, 8, 8)});
  return models;
}

}  // namespace tensat
