// The benchmark model zoo: inference graphs for the paper's seven benchmark
// models (BERT, NasRNN, ResNeXt-50, NasNet-A, SqueezeNet, VGG-19,
// Inception-v3) plus ResNet-50 (which the paper notes gains nothing on T4).
//
// These are structurally faithful but scaled-down versions (see DESIGN.md
// §4): they contain exactly the operator motifs the paper's rewrites
// exploit — attention Q/K/V matmuls sharing an input (Fig. 8), NasRNN's
// matmul farms (Fig. 11), inception/fire modules with parallel convolutions
// sharing an input (Figs. 9-10), grouped-convolution bottlenecks — at sizes
// our dense-tableau MILP extraction can handle.
//
// Every builder takes explicit size parameters; `paper_models()` returns the
// benchmark-scale presets and `tiny_models()` unit-test-scale ones.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lang/graph.h"

namespace tensat {

Graph make_bert(int layers, int seq, int hidden);
Graph make_nasrnn(int steps, int batch, int hidden, int gates = 8);
Graph make_resnext50(int blocks, int channels, int hw, int groups);
Graph make_nasnet_a(int cells, int channels, int hw);
Graph make_squeezenet(int fires, int channels, int hw);
Graph make_vgg19(int base_channels, int hw);
Graph make_inception_v3(int modules, int channels, int hw);
Graph make_resnet50(int blocks, int channels, int hw);

struct ModelInfo {
  std::string name;
  Graph graph;
};

/// Benchmark-scale presets for the paper's seven benchmarks, in the paper's
/// Table 1 order: NasRNN, BERT, ResNeXt-50, NasNet-A, SqueezeNet, VGG-19,
/// Inception-v3.
std::vector<ModelInfo> paper_models();

/// Unit-test-scale versions of the same models (cheap enough to run through
/// the reference interpreter).
std::vector<ModelInfo> tiny_models();

}  // namespace tensat
