// Bounded-variable two-phase primal simplex with a dense tableau.
//
// Internal standard form: every input row `lo <= a.x <= hi` becomes
// `a.x + s = rhs` with a slack variable s whose bounds encode the range
// (see normalize()). Rows whose initial slack value violates the slack
// bounds get a +/-1 artificial variable; phase 1 minimizes the sum of
// artificials, phase 2 the true objective with artificials pinned to zero.
//
// Anti-cycling: Dantzig pricing normally, switching to Bland's rule after a
// run of degenerate pivots.
#include <algorithm>
#include <cmath>

#include "ilp/lp.h"
#include "ilp/sparse.h"
#include "support/check.h"

namespace tensat {

bool LinearProgram::feasible(const std::vector<double>& x, double tol) const {
  for (int j = 0; j < num_vars(); ++j)
    if (x[j] < lower[j] - tol || x[j] > upper[j] + tol) return false;
  for (const Row& r : rows) {
    const double v = row_value(r, x);
    if (v < r.lo - tol || v > r.hi + tol) return false;
  }
  return true;
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
  double v = 0.0;
  for (int j = 0; j < num_vars(); ++j) v += objective[j] * x[j];
  return v;
}

namespace {

enum class VStat : uint8_t { kBasic, kAtLower, kAtUpper };

class Simplex {
 public:
  Simplex(const LinearProgram& lp, const LpOptions& opt) : opt_(opt) { build(lp); }

  LpResult run(const LinearProgram& lp) {
    LpResult result;
    // ---- Phase 1: drive artificials to zero ----
    if (num_artificial_ > 0) {
      std::vector<double> phase1_cost(nt_, 0.0);
      for (int j = nt_ - num_artificial_; j < nt_; ++j) phase1_cost[j] = 1.0;
      const LpStatus st = optimize(phase1_cost, &result.iterations);
      if (st == LpStatus::kIterLimit) {
        result.status = st;
        return result;
      }
      double infeas = 0.0;
      for (int j = nt_ - num_artificial_; j < nt_; ++j) infeas += value_of(j);
      if (infeas > 1e-6) {
        result.status = LpStatus::kInfeasible;
        return result;
      }
      // Pin artificials at zero for phase 2.
      for (int j = nt_ - num_artificial_; j < nt_; ++j) upper_[j] = 0.0;
    }
    // ---- Phase 2: the real objective ----
    std::vector<double> cost(nt_, 0.0);
    for (int j = 0; j < n_; ++j) cost[j] = lp.objective[j];
    const LpStatus st = optimize(cost, &result.iterations);
    result.status = st;
    if (st == LpStatus::kOptimal || st == LpStatus::kIterLimit) {
      result.x.resize(n_);
      for (int j = 0; j < n_; ++j) result.x[j] = value_of(j);
      result.objective = lp.objective_value(result.x);
    }
    return result;
  }

 private:
  double* row(int i) { return &tab_[static_cast<size_t>(i) * nt_]; }

  [[nodiscard]] double value_of(int j) const {
    if (stat_[j] == VStat::kAtLower) return lower_[j];
    if (stat_[j] == VStat::kAtUpper) return upper_[j];
    for (int i = 0; i < m_; ++i)
      if (basis_[i] == j) return beta_[i];
    TENSAT_FAIL("basic variable not found");
  }

  void build(const LinearProgram& lp) {
    n_ = lp.num_vars();
    // Normalize rows: a.x + s = rhs, slack bounds encode the range. Rows
    // with only a lower bound are negated so the slack is always +1.
    struct NormRow {
      std::vector<std::pair<int, double>> terms;
      double rhs;
      double s_hi;  // slack in [0, s_hi]
    };
    std::vector<NormRow> norm;
    for (const auto& r : lp.rows) {
      if (r.lo == -kInf && r.hi == kInf) continue;
      NormRow nr;
      if (r.hi < kInf) {
        nr.terms = r.terms;
        nr.rhs = r.hi;
        nr.s_hi = (r.lo == -kInf) ? kInf : r.hi - r.lo;
      } else {
        nr.terms = r.terms;
        for (auto& [j, c] : nr.terms) c = -c;
        nr.rhs = -r.lo;
        nr.s_hi = kInf;
      }
      norm.push_back(std::move(nr));
    }
    m_ = static_cast<int>(norm.size());

    // Columns: structural | slacks | artificials (added below as needed).
    const int slack0 = n_;
    lower_.assign(n_ + m_, 0.0);
    upper_.assign(n_ + m_, 0.0);
    stat_.assign(n_ + m_, VStat::kAtLower);
    for (int j = 0; j < n_; ++j) {
      lower_[j] = lp.lower[j];
      upper_[j] = lp.upper[j];
      TENSAT_CHECK(lower_[j] <= upper_[j], "variable with empty domain");
      TENSAT_CHECK(lower_[j] > -kInf || upper_[j] < kInf,
                   "free variables are not supported");
      // Nonbasic at the finite bound nearest zero.
      if (lower_[j] == -kInf)
        stat_[j] = VStat::kAtUpper;
      else if (upper_[j] == kInf)
        stat_[j] = VStat::kAtLower;
      else
        stat_[j] = (std::abs(lower_[j]) <= std::abs(upper_[j])) ? VStat::kAtLower
                                                                : VStat::kAtUpper;
    }
    for (int i = 0; i < m_; ++i) {
      lower_[slack0 + i] = 0.0;
      upper_[slack0 + i] = norm[i].s_hi;
    }

    // Initial basic values with the all-slack basis.
    std::vector<double> beta(m_);
    for (int i = 0; i < m_; ++i) {
      double v = norm[i].rhs;
      for (const auto& [j, c] : norm[i].terms) {
        const double xj = (stat_[j] == VStat::kAtLower) ? lower_[j] : upper_[j];
        v -= c * xj;
      }
      beta[i] = v;
    }

    // Decide basis per row: slack if its value fits its bounds, else an
    // artificial carrying the residual (sign chosen so it starts >= 0).
    basis_.resize(m_);
    std::vector<double> art_sign(m_, 0.0);
    num_artificial_ = 0;
    std::vector<int> art_col(m_, -1);
    for (int i = 0; i < m_; ++i) {
      if (beta[i] >= -1e-12 && beta[i] <= upper_[slack0 + i] + 1e-12) {
        basis_[i] = slack0 + i;
      } else {
        art_sign[i] = (beta[i] > upper_[slack0 + i]) ? 1.0 : -1.0;
        art_col[i] = n_ + m_ + num_artificial_;
        ++num_artificial_;
      }
    }
    nt_ = n_ + m_ + num_artificial_;
    lower_.resize(nt_, 0.0);
    upper_.resize(nt_, kInf);
    stat_.resize(nt_, VStat::kAtLower);

    // Dense tableau T = B^{-1} A with B diagonal (+1 slack / ±1 artificial).
    tab_.assign(static_cast<size_t>(m_) * nt_, 0.0);
    beta_.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      double* t = row(i);
      for (const auto& [j, c] : norm[i].terms) t[j] += c;
      t[slack0 + i] = 1.0;
      if (art_col[i] < 0) {
        basis_[i] = slack0 + i;
        beta_[i] = beta[i];
      } else {
        // Slack becomes nonbasic at its nearest bound; the artificial takes
        // the (positive) residual. Row scaled by the artificial's sign so
        // the basis column is +1.
        const double s_val = std::clamp(beta[i], 0.0, upper_[slack0 + i]);
        stat_[slack0 + i] = (s_val == 0.0) ? VStat::kAtLower : VStat::kAtUpper;
        t[art_col[i]] = 1.0;
        if (art_sign[i] < 0) {
          for (int j = 0; j < nt_; ++j)
            if (j != art_col[i]) t[j] = -t[j];
        }
        basis_[i] = art_col[i];
        beta_[i] = std::abs(beta[i] - s_val);
      }
    }
    for (int i = 0; i < m_; ++i) stat_[basis_[i]] = VStat::kBasic;
  }

  /// Primal simplex iterations for the given cost vector, starting from the
  /// current basis. Updates *iterations cumulatively.
  LpStatus optimize(const std::vector<double>& cost, int* iterations) {
    // Reduced-cost row: r_j = c_j - c_B . T_j.
    std::vector<double> r(cost);
    for (int i = 0; i < m_; ++i) {
      const double cb = cost[basis_[i]];
      if (cb == 0.0) continue;
      const double* t = row(i);
      for (int j = 0; j < nt_; ++j) r[j] -= cb * t[j];
    }
    std::vector<bool> in_basis(nt_, false);
    for (int i = 0; i < m_; ++i) in_basis[basis_[i]] = true;

    int degenerate_run = 0;
    while (true) {
      if (++*iterations > opt_.max_iterations) return LpStatus::kIterLimit;
      const bool bland = degenerate_run > 2 * (m_ + nt_);

      // ---- Pricing: pick an entering variable ----
      int q = -1;
      double best = -opt_.tol;
      int dir = 0;  // +1 entering increases, -1 decreases
      for (int j = 0; j < nt_; ++j) {
        if (in_basis[j]) continue;
        if (lower_[j] == upper_[j]) continue;  // fixed
        double score = 0.0;
        int d = 0;
        if (stat_[j] == VStat::kAtLower && r[j] < -opt_.tol) {
          score = r[j];
          d = +1;
        } else if (stat_[j] == VStat::kAtUpper && r[j] > opt_.tol) {
          score = -r[j];
          d = -1;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          q = j;
          dir = d;
          break;
        }
        if (score < best) {
          best = score;
          q = j;
          dir = d;
        }
      }
      if (q < 0) return LpStatus::kOptimal;

      // ---- Ratio test ----
      // Entering moves by step >= 0 in direction `dir`; basic values move by
      // -T_iq * dir * step. Limits: the entering variable's own opposite
      // bound, and each basic variable hitting one of its bounds.
      double limit = upper_[q] - lower_[q];  // bound-flip distance (may be inf)
      int leave = -1;                        // row index of leaving basic var
      bool leave_to_upper = false;
      for (int i = 0; i < m_; ++i) {
        const double tiq = row(i)[q];
        const double rate = -tiq * dir;  // d beta_i / d step
        if (std::abs(rate) < 1e-11) continue;
        const int bj = basis_[i];
        double room;
        bool to_upper;
        if (rate > 0) {  // beta_i increases toward its upper bound
          if (upper_[bj] == kInf) continue;
          room = (upper_[bj] - beta_[i]) / rate;
          to_upper = true;
        } else {  // beta_i decreases toward its lower bound
          if (lower_[bj] == -kInf) continue;
          room = (lower_[bj] - beta_[i]) / rate;
          to_upper = false;
        }
        room = std::max(room, 0.0);
        if (room < limit - 1e-12 ||
            (bland && leave >= 0 && room < limit + 1e-12 && bj < basis_[leave])) {
          limit = room;
          leave = i;
          leave_to_upper = to_upper;
        }
      }
      if (limit == kInf) return LpStatus::kUnbounded;
      degenerate_run = (limit < 1e-10) ? degenerate_run + 1 : 0;

      // ---- Apply the step ----
      if (leave < 0) {
        // Bound flip: entering var crosses to its other bound; no basis change.
        const double step = limit * dir;
        for (int i = 0; i < m_; ++i) beta_[i] -= row(i)[q] * step;
        stat_[q] = (stat_[q] == VStat::kAtLower) ? VStat::kAtUpper : VStat::kAtLower;
        continue;
      }

      // Pivot: q enters the basis at row `leave`; basis_[leave] leaves to
      // the bound it hit.
      const double step = limit * dir;
      for (int i = 0; i < m_; ++i) beta_[i] -= row(i)[q] * step;
      const double enter_value =
          ((stat_[q] == VStat::kAtLower) ? lower_[q] : upper_[q]) + step;
      const int out = basis_[leave];
      stat_[out] = leave_to_upper ? VStat::kAtUpper : VStat::kAtLower;
      in_basis[out] = false;

      double* prow = row(leave);
      const double pivot = prow[q];
      TENSAT_CHECK(std::abs(pivot) > 1e-11, "numerically singular pivot");
      const double inv = 1.0 / pivot;
      for (int j = 0; j < nt_; ++j) prow[j] *= inv;
      beta_[leave] = enter_value;  // after normalization, row represents x_q
      for (int i = 0; i < m_; ++i) {
        if (i == leave) continue;
        double* t = row(i);
        const double factor = t[q];
        if (factor == 0.0) continue;
        for (int j = 0; j < nt_; ++j) t[j] -= factor * prow[j];
      }
      const double rq = r[q];
      if (rq != 0.0) {
        for (int j = 0; j < nt_; ++j) r[j] -= rq * prow[j];
      }
      basis_[leave] = q;
      stat_[q] = VStat::kBasic;
      in_basis[q] = true;
    }
  }

  LpOptions opt_;
  int n_{0};              // structural variables
  int m_{0};              // rows
  int nt_{0};             // total columns
  int num_artificial_{0};
  std::vector<double> tab_;
  std::vector<double> beta_;   // values of basic variables, by row
  std::vector<int> basis_;     // basic variable per row
  std::vector<double> lower_, upper_;
  std::vector<VStat> stat_;
};

}  // namespace

LpResult solve_lp(const LinearProgram& lp, const LpOptions& options) {
  if (options.sparse) {
    SparseLpSolver solver(lp);
    return solver.solve(options, lp.lower, lp.upper);
  }
  Simplex solver(lp, options);
  return solver.run(lp);
}

}  // namespace tensat
