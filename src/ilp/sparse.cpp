// Sparse bounded-variable revised simplex (see sparse.h for the contract).
//
// Internal standard form matches the dense tableau in simplex.cpp exactly:
// every input row `lo <= a.x <= hi` becomes `a.x + s = rhs` with slack
// bounds encoding the range, rows with only a lower bound negated so the
// slack is always +1. Cold starts use the same ±1 artificials and two-phase
// scheme; pricing is the same Dantzig-with-Bland-fallback rule, so the two
// solvers walk comparable paths and agree on every status.
//
// What differs is the linear algebra: columns live in CSC (slacks implicit),
// B^{-1} is an eta file updated per pivot and rebuilt from scratch every so
// often, and reduced costs are recomputed each iteration from y = B^{-T}c_B
// against the sparse columns — cheap because extraction matrices are >95%
// sparse, where the dense tableau pays m * n_total per pivot regardless.
#include "ilp/sparse.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace tensat {
namespace {

enum class VStat : uint8_t { kBasic, kAtLower, kAtUpper };

constexpr double kPivotTol = 1e-9;   // basis factorization / pivot floor
constexpr double kPrimalFeasTol = 1e-9;  // dual simplex: bound violation floor
constexpr double kEtaDropTol = 1e-13;    // eta entries below this are noise

}  // namespace

SparseLpSolver::SparseLpSolver(const LinearProgram& lp) {
  n_ = lp.num_vars();
  obj_ = lp.objective;
  // Normalize rows exactly as the dense tableau does.
  std::vector<std::vector<std::pair<int32_t, double>>> cols(n_);
  for (const auto& r : lp.rows) {
    if (r.lo == -kInf && r.hi == kInf) continue;
    const int32_t i = static_cast<int32_t>(rhs_.size());
    const double sign = (r.hi < kInf) ? 1.0 : -1.0;
    rhs_.push_back(sign > 0 ? r.hi : -r.lo);
    slack_hi_.push_back((r.hi < kInf && r.lo > -kInf) ? r.hi - r.lo : kInf);
    for (const auto& [j, c] : r.terms) cols[j].emplace_back(i, sign * c);
  }
  m_ = static_cast<int>(rhs_.size());
  // CSC, duplicate (row, col) entries coalesced the way the dense tableau
  // accumulates them (t[j] += c).
  col_start_.assign(n_ + 1, 0);
  for (int j = 0; j < n_; ++j) {
    auto& cv = cols[j];
    std::sort(cv.begin(), cv.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    size_t w = 0;
    for (size_t k = 0; k < cv.size(); ++k) {
      if (w > 0 && cv[w - 1].first == cv[k].first)
        cv[w - 1].second += cv[k].second;
      else
        cv[w++] = cv[k];
    }
    cv.resize(w);
    col_start_[j + 1] = col_start_[j] + static_cast<int32_t>(w);
  }
  row_ix_.reserve(col_start_[n_]);
  col_val_.reserve(col_start_[n_]);
  for (int j = 0; j < n_; ++j) {
    for (const auto& [i, c] : cols[j]) {
      row_ix_.push_back(i);
      col_val_.push_back(c);
    }
  }
}

/// Live solve state: bounds, basis, eta file. The shared CSC/rhs/objective
/// live in the SparseLpSolver; the context persists between its solve()
/// calls (rebind() re-arms it with fresh bounds) so the factorization of
/// the previous optimal basis can be reused when the next warm start names
/// exactly that basis.
class SparseSolveContext {
 public:
  SparseSolveContext(const SparseLpSolver& s, const LpOptions& opt,
                     const std::vector<double>& lo,
                     const std::vector<double>& hi)
      : s_(s), opt_(opt), n_(s.n_), m_(s.m_), nt_(s.n_ + s.m_) {
    lower_.assign(nt_, 0.0);
    upper_.assign(nt_, 0.0);
    set_bounds(lo, hi);
    stat_.assign(nt_, VStat::kAtLower);
    basis_.assign(m_, 0);
    basic_pos_.assign(nt_, -1);
    beta_.assign(m_, 0.0);
    work_.assign(m_, 0.0);
    y_.assign(m_, 0.0);
    rho_.assign(m_, 0.0);
    sigma_.resize(m_);
    for (int i = 0; i < m_; ++i) sigma_[i] = i;
    perm_buf_.assign(m_, 0.0);
  }

  /// Re-arms the context for the next solve on the same rows/objective:
  /// new bounds and options, artificials of the previous solve dropped,
  /// per-solve counters reset. The basis and eta file survive untouched —
  /// load_warm's fast path decides whether they can actually be reused.
  void rebind(const LpOptions& opt, const std::vector<double>& lo,
              const std::vector<double>& hi) {
    opt_ = opt;
    nt_ = n_ + m_;
    num_artificial_ = 0;
    art_row_.clear();
    art_sign_.clear();
    refactorizations_ = 0;
    lower_.resize(nt_);
    upper_.resize(nt_);
    stat_.resize(nt_, VStat::kAtLower);
    set_bounds(lo, hi);
  }

  void set_bounds(const std::vector<double>& lo, const std::vector<double>& hi) {
    for (int j = 0; j < n_; ++j) {
      lower_[j] = lo[j];
      upper_[j] = hi[j];
      TENSAT_CHECK(lower_[j] <= upper_[j], "variable with empty domain");
      TENSAT_CHECK(lower_[j] > -kInf || upper_[j] < kInf,
                   "free variables are not supported");
    }
    for (int i = 0; i < m_; ++i) {
      lower_[n_ + i] = 0.0;
      upper_[n_ + i] = s_.slack_hi_[i];
    }
  }

  LpResult run(const SparseBasis* warm, SparseBasis* basis_out) {
    LpResult result;
    bool warm_ok = false;
    if (warm != nullptr && !warm->empty() && load_warm(*warm)) {
      // The warm basis was optimal for the same rows and objective under
      // different bounds, so it is still dual feasible: the dual simplex
      // restores primal feasibility, then the primal pass mops up (usually
      // zero iterations). Iteration blow-up falls through to a cold start —
      // warm starts may only change speed, never the answer.
      std::vector<double> cost(nt_, 0.0);
      for (int j = 0; j < n_; ++j) cost[j] = s_.obj_[j];
      const LpStatus dual = dual_restore(cost, &result.iterations);
      if (dual == LpStatus::kOptimal) {
        const LpStatus st = optimize(cost, &result.iterations);
        if (st != LpStatus::kIterLimit) {
          result.status = st;
          warm_ok = true;
        }
      } else if (dual == LpStatus::kInfeasible) {
        // Sound certificate: the start was dual feasible, so a row with no
        // eligible entering column proves the bounds cannot be met.
        result.status = LpStatus::kInfeasible;
        warm_ok = true;
      }
    }
    if (!warm_ok) {
      cold_start();
      bool ok = true;
      if (num_artificial_ > 0) {
        std::vector<double> phase1(nt_, 0.0);
        for (int k = 0; k < num_artificial_; ++k) phase1[n_ + m_ + k] = 1.0;
        const LpStatus st = optimize(phase1, &result.iterations);
        if (st == LpStatus::kIterLimit) {
          result.status = st;
          ok = false;
        } else {
          double infeas = 0.0;
          for (int k = 0; k < num_artificial_; ++k)
            infeas += value_of(n_ + m_ + k);
          if (infeas > 1e-6) {
            result.status = LpStatus::kInfeasible;
            ok = false;
          } else {
            for (int k = 0; k < num_artificial_; ++k) upper_[n_ + m_ + k] = 0.0;
          }
        }
      }
      if (ok) {
        std::vector<double> cost(nt_, 0.0);
        for (int j = 0; j < n_; ++j) cost[j] = s_.obj_[j];
        result.status = optimize(cost, &result.iterations);
      }
    }
    result.warm = warm_ok;
    result.refactorizations = refactorizations_;
    if (result.status == LpStatus::kOptimal ||
        result.status == LpStatus::kIterLimit) {
      result.x.resize(n_);
      double obj = 0.0;
      for (int j = 0; j < n_; ++j) {
        result.x[j] = value_of(j);
        obj += s_.obj_[j] * result.x[j];
      }
      result.objective = obj;
    }
    if (basis_out != nullptr) {
      basis_out->basic.clear();
      basis_out->at_upper.clear();
      if (result.status == LpStatus::kOptimal) {
        basis_out->basic.assign(basis_.begin(), basis_.end());
        // Artificials stuck basic at level 0 (their post-phase-1 bounds are
        // [0,0]): swap each for its own row's slack — the same e_r column up
        // to sign, and that slack cannot itself be basic or B would hold
        // e_r twice and be singular. The swapped set is a genuine optimal
        // basis, so cold solves that kept an artificial still export a
        // warm-startable basis.
        for (int i = 0; i < m_; ++i) {
          if (basis_out->basic[i] >= n_ + m_) {
            const int k = basis_out->basic[i] - n_ - m_;
            basis_out->basic[i] = n_ + art_row_[k];
          }
        }
        basis_out->at_upper.assign(static_cast<size_t>(n_) + m_, 0);
        for (int j = 0; j < n_ + m_; ++j)
          basis_out->at_upper[j] = stat_[j] == VStat::kAtUpper ? 1 : 0;
      }
    }
    return result;
  }

 private:
  struct Eta {
    int32_t r;
    double pivot;
    int32_t begin;
    int32_t end;
  };

  /// Iterates the (row, value) entries of internal column j: structural
  /// columns from the CSC, slack j - n_ as +e_row, artificials as ±e_row.
  template <class F>
  void for_col(int j, F&& f) const {
    if (j < n_) {
      for (int32_t k = s_.col_start_[j]; k < s_.col_start_[j + 1]; ++k)
        f(s_.row_ix_[k], s_.col_val_[k]);
    } else if (j < n_ + m_) {
      f(j - n_, 1.0);
    } else {
      const int k = j - n_ - m_;
      f(art_row_[k], art_sign_[k]);
    }
  }

  [[nodiscard]] int col_nnz(int j) const {
    return j < n_ ? s_.col_start_[j + 1] - s_.col_start_[j] : 1;
  }

  void load_col(int j, std::vector<double>& v) const {
    std::fill(v.begin(), v.end(), 0.0);
    for_col(j, [&](int32_t i, double c) { v[i] += c; });
  }

  [[nodiscard]] double nonbasic_value(int j) const {
    return stat_[j] == VStat::kAtUpper ? upper_[j] : lower_[j];
  }

  [[nodiscard]] double value_of(int j) const {
    if (stat_[j] == VStat::kBasic) return beta_[basic_pos_[j]];
    return nonbasic_value(j);
  }

  // ---- Eta-file basis inverse -------------------------------------------
  // B^{-1} = U_k ... U_1 P^T F_l ... F_1 : refactorization builds the
  // factor etas F with partial pivoting over not-yet-pivoted rows (so any
  // nonsingular basis factors, including pure row permutations) plus the
  // permutation P; simplex pivots append update etas U on top, whose pivot
  // rows live in the outer (post-permutation) space where beta_ is indexed.
  // Applying an eta to v scales v[r] by `pivot` and adds v[r] * entry to
  // the off-pivot rows.

  void apply_eta(const Eta& e, std::vector<double>& v) const {
    const double t = v[e.r];
    if (t == 0.0) return;
    v[e.r] = t * e.pivot;
    for (int32_t k = e.begin; k < e.end; ++k) v[eta_ix_[k]] += t * eta_val_[k];
  }

  void apply_eta_t(const Eta& e, std::vector<double>& v) const {
    double acc = e.pivot * v[e.r];
    for (int32_t k = e.begin; k < e.end; ++k) acc += eta_val_[k] * v[eta_ix_[k]];
    v[e.r] = acc;
  }

  void append_eta(int r, const std::vector<double>& w) {
    Eta e;
    e.r = r;
    e.pivot = 1.0 / w[r];
    e.begin = static_cast<int32_t>(eta_ix_.size());
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double c = -w[i] * e.pivot;
      if (std::abs(c) > kEtaDropTol) {
        eta_ix_.push_back(i);
        eta_val_.push_back(c);
      }
    }
    e.end = static_cast<int32_t>(eta_ix_.size());
    etas_.push_back(e);
  }

  void ftran(std::vector<double>& v) {
    for (size_t t = 0; t < num_factor_etas_; ++t) apply_eta(etas_[t], v);
    if (!sigma_identity_) {
      for (int i = 0; i < m_; ++i) perm_buf_[i] = v[sigma_[i]];
      std::swap(v, perm_buf_);
    }
    for (size_t t = num_factor_etas_; t < etas_.size(); ++t)
      apply_eta(etas_[t], v);
  }

  void btran(std::vector<double>& v) {
    for (size_t t = etas_.size(); t > num_factor_etas_; --t)
      apply_eta_t(etas_[t - 1], v);
    if (!sigma_identity_) {
      for (int i = 0; i < m_; ++i) perm_buf_[sigma_[i]] = v[i];
      std::swap(v, perm_buf_);
    }
    for (size_t t = num_factor_etas_; t > 0; --t) apply_eta_t(etas_[t - 1], v);
  }

  /// Rebuilds the factorization from the current basis_. Unit slack columns
  /// basic at their own row contribute identity and are skipped; remaining
  /// columns are processed sparsest-first, each pivoting at the
  /// largest-magnitude entry among rows not yet claimed (smallest row index
  /// on ties — deterministic). Returns false on a numerically singular
  /// basis.
  bool refactorize() {
    factored_ = false;
    etas_.clear();
    eta_ix_.clear();
    eta_val_.clear();
    num_factor_etas_ = 0;
    sigma_identity_ = true;
    for (int i = 0; i < m_; ++i) sigma_[i] = i;
    ++refactorizations_;

    std::vector<int> pending;
    std::vector<uint8_t> row_used(m_, 0);
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] == n_ + i)
        row_used[i] = 1;  // identity factor, pivot row claimed
      else
        pending.push_back(i);
    }
    std::stable_sort(pending.begin(), pending.end(), [&](int a, int b) {
      return col_nnz(basis_[a]) < col_nnz(basis_[b]);
    });
    for (int i : pending) {
      load_col(basis_[i], work_);
      for (size_t t = 0; t < etas_.size(); ++t) apply_eta(etas_[t], work_);
      int r = -1;
      double best = kPivotTol;
      for (int k = 0; k < m_; ++k) {
        if (row_used[k]) continue;
        const double mag = std::abs(work_[k]);
        if (mag > best) {
          best = mag;
          r = k;
        }
      }
      if (r < 0) return false;
      row_used[r] = 1;
      append_eta(r, work_);
      sigma_[i] = r;
      if (r != i) sigma_identity_ = false;
    }
    num_factor_etas_ = etas_.size();
    num_factor_entries_ = eta_ix_.size();
    factored_ = true;
    return true;
  }

  /// beta = B^{-1} (rhs - N x_N) for the current basis and statuses.
  void compute_beta() {
    std::vector<double>& v = beta_;
    for (int i = 0; i < m_; ++i) v[i] = s_.rhs_[i];
    for (int j = 0; j < nt_; ++j) {
      if (basic_pos_[j] >= 0) continue;
      const double xj = nonbasic_value(j);
      if (xj == 0.0) continue;
      for_col(j, [&](int32_t i, double c) { v[i] -= c * xj; });
    }
    ftran(v);
  }

  /// Counts only the update etas appended since the last refactorization —
  /// the factorization itself contributes one eta per non-slack basic column,
  /// which must not count against the rebuild budget or a large basis would
  /// refactorize on every pivot.
  [[nodiscard]] bool eta_file_large() const {
    return etas_.size() - num_factor_etas_ >= 128 ||
           eta_ix_.size() - num_factor_entries_ >=
               96 * static_cast<size_t>(m_) + 1024;
  }

  bool refactor_and_recompute() {
    if (!refactorize()) return false;
    compute_beta();
    return true;
  }

  // ---- Cold start --------------------------------------------------------
  // Same construction as the dense tableau: all-slack basis; rows whose
  // initial slack value violates the slack bounds get a ±1 artificial, the
  // slack parked at its nearest bound.

  void cold_start() {
    art_row_.clear();
    art_sign_.clear();
    nt_ = n_ + m_;
    lower_.resize(nt_);
    upper_.resize(nt_);
    stat_.resize(nt_);
    for (int j = 0; j < n_; ++j) {
      if (lower_[j] == -kInf)
        stat_[j] = VStat::kAtUpper;
      else if (upper_[j] == kInf)
        stat_[j] = VStat::kAtLower;
      else
        stat_[j] = std::abs(lower_[j]) <= std::abs(upper_[j]) ? VStat::kAtLower
                                                              : VStat::kAtUpper;
    }
    for (int i = 0; i < m_; ++i) stat_[n_ + i] = VStat::kAtLower;

    std::vector<double> beta(m_);
    for (int i = 0; i < m_; ++i) beta[i] = s_.rhs_[i];
    for (int j = 0; j < n_; ++j) {
      const double xj = nonbasic_value(j);
      if (xj == 0.0) continue;
      for_col(j, [&](int32_t i, double c) { beta[i] -= c * xj; });
    }
    num_artificial_ = 0;
    for (int i = 0; i < m_; ++i) {
      if (beta[i] >= -1e-12 && beta[i] <= upper_[n_ + i] + 1e-12) {
        basis_[i] = n_ + i;
      } else {
        const double s_val = std::clamp(beta[i], 0.0, upper_[n_ + i]);
        stat_[n_ + i] = s_val == 0.0 ? VStat::kAtLower : VStat::kAtUpper;
        art_row_.push_back(i);
        art_sign_.push_back(beta[i] > upper_[n_ + i] ? 1.0 : -1.0);
        basis_[i] = n_ + m_ + num_artificial_;
        ++num_artificial_;
      }
    }
    nt_ = n_ + m_ + num_artificial_;
    lower_.resize(nt_, 0.0);
    upper_.resize(nt_, kInf);
    stat_.resize(nt_, VStat::kAtLower);
    basic_pos_.assign(nt_, -1);
    for (int i = 0; i < m_; ++i) {
      basic_pos_[basis_[i]] = i;
      stat_[basis_[i]] = VStat::kBasic;
    }
    // Diagonal (±1) basis: the factorization is m trivial etas at most.
    const bool ok = refactor_and_recompute();
    TENSAT_CHECK(ok, "singular initial basis");
  }

  bool load_warm(const SparseBasis& b) {
    if (static_cast<int>(b.basic.size()) != m_ ||
        static_cast<int>(b.at_upper.size()) != n_ + m_)
      return false;
    // Fast path test BEFORE basis_ is overwritten: does the request name
    // exactly the basis this context's previous solve ended with? Sibling
    // B&B nodes and successive dive steps do, constantly — for them the
    // existing eta file is a valid inverse and refactorization is skipped.
    bool live = factored_;
    for (int i = 0; live && i < m_; ++i) live = basis_[i] == b.basic[i];
    art_row_.clear();
    art_sign_.clear();
    num_artificial_ = 0;
    nt_ = n_ + m_;
    lower_.resize(nt_);
    upper_.resize(nt_);
    stat_.resize(nt_);
    basic_pos_.assign(nt_, -1);
    for (int j = 0; j < nt_; ++j) {
      // Rest bound from the snapshot, redirected to a finite bound if the
      // recorded side is infinite under the new bounds.
      if (b.at_upper[j] != 0)
        stat_[j] = upper_[j] < kInf ? VStat::kAtUpper : VStat::kAtLower;
      else
        stat_[j] = lower_[j] > -kInf ? VStat::kAtLower : VStat::kAtUpper;
    }
    for (int i = 0; i < m_; ++i) {
      const int32_t j = b.basic[i];
      if (j < 0 || j >= nt_ || basic_pos_[j] >= 0) return false;
      basis_[i] = j;
      basic_pos_[j] = i;
      stat_[j] = VStat::kBasic;
    }
    // A long eta file still forces a rebuild: reuse must not let update
    // etas (and their rounding error) accumulate across solves unbounded.
    if (!live || eta_file_large()) {
      if (!refactorize()) return false;
    }
    compute_beta();
    return true;
  }

  // ---- Primal simplex ----------------------------------------------------
  // Same pricing and ratio test as the dense tableau; reduced costs are
  // recomputed from y = B^{-T} c_B against the sparse columns instead of
  // being carried in a tableau row.

  LpStatus optimize(const std::vector<double>& cost, int* iterations) {
    int degenerate_run = 0;
    int numeric_retries = 0;
    while (true) {
      if (++*iterations > opt_.max_iterations) return LpStatus::kIterLimit;
      if (eta_file_large() && !refactor_and_recompute())
        return LpStatus::kIterLimit;
      for (int i = 0; i < m_; ++i) y_[i] = cost[basis_[i]];
      btran(y_);
      const bool bland = degenerate_run > 2 * (m_ + nt_);

      // ---- Pricing: pick an entering variable ----
      int q = -1;
      double best = -opt_.tol;
      int dir = 0;  // +1 entering increases, -1 decreases
      for (int j = 0; j < nt_; ++j) {
        if (basic_pos_[j] >= 0) continue;
        if (lower_[j] == upper_[j]) continue;  // fixed
        double rj = cost[j];
        for_col(j, [&](int32_t i, double c) { rj -= y_[i] * c; });
        double score = 0.0;
        int d = 0;
        if (stat_[j] == VStat::kAtLower && rj < -opt_.tol) {
          score = rj;
          d = +1;
        } else if (stat_[j] == VStat::kAtUpper && rj > opt_.tol) {
          score = -rj;
          d = -1;
        } else {
          continue;
        }
        if (bland) {  // first eligible index
          q = j;
          dir = d;
          break;
        }
        if (score < best) {
          best = score;
          q = j;
          dir = d;
        }
      }
      if (q < 0) return LpStatus::kOptimal;

      // ---- Ratio test (identical to the dense tableau's) ----
      load_col(q, work_);
      ftran(work_);
      double limit = upper_[q] - lower_[q];  // bound-flip distance
      int leave = -1;
      bool leave_to_upper = false;
      for (int i = 0; i < m_; ++i) {
        const double rate = -work_[i] * dir;  // d beta_i / d step
        if (std::abs(rate) < 1e-11) continue;
        const int bj = basis_[i];
        double room;
        bool to_upper;
        if (rate > 0) {
          if (upper_[bj] == kInf) continue;
          room = (upper_[bj] - beta_[i]) / rate;
          to_upper = true;
        } else {
          if (lower_[bj] == -kInf) continue;
          room = (lower_[bj] - beta_[i]) / rate;
          to_upper = false;
        }
        room = std::max(room, 0.0);
        if (room < limit - 1e-12 ||
            (bland && leave >= 0 && room < limit + 1e-12 &&
             bj < basis_[leave])) {
          limit = room;
          leave = i;
          leave_to_upper = to_upper;
        }
      }
      if (limit == kInf) return LpStatus::kUnbounded;
      degenerate_run = limit < 1e-10 ? degenerate_run + 1 : 0;

      const double step = limit * dir;
      if (leave < 0) {
        // Bound flip: entering crosses to its other bound; no basis change.
        for (int i = 0; i < m_; ++i) beta_[i] -= work_[i] * step;
        stat_[q] =
            stat_[q] == VStat::kAtLower ? VStat::kAtUpper : VStat::kAtLower;
        continue;
      }
      if (std::abs(work_[leave]) <= kPivotTol) {
        // Eta file has drifted: rebuild it and redo this iteration.
        if (++numeric_retries > 5 || !refactor_and_recompute())
          return LpStatus::kIterLimit;
        continue;
      }
      numeric_retries = 0;
      for (int i = 0; i < m_; ++i) beta_[i] -= work_[i] * step;
      const double enter_value =
          (stat_[q] == VStat::kAtLower ? lower_[q] : upper_[q]) + step;
      const int out = basis_[leave];
      stat_[out] = leave_to_upper ? VStat::kAtUpper : VStat::kAtLower;
      basic_pos_[out] = -1;
      append_eta(leave, work_);
      basis_[leave] = q;
      beta_[leave] = enter_value;
      stat_[q] = VStat::kBasic;
      basic_pos_[q] = leave;
    }
  }

  // ---- Dual simplex ------------------------------------------------------
  // Restores primal feasibility from a dual-feasible basis (the warm-start
  // case: an optimal basis whose bounds were then changed). Leaving row =
  // worst bound violation; entering column = textbook bounded-variable dual
  // ratio test, min ratio with smallest-index tie-break (deterministic).
  // Returns kOptimal when primal feasible, kInfeasible on a certified empty
  // node, kIterLimit when the caller should cold-start instead.

  LpStatus dual_restore(const std::vector<double>& cost, int* iterations) {
    int guard = 0;
    int numeric_retries = 0;
    const int max_dual = 4 * (m_ + nt_) + 1000;
    while (true) {
      if (++*iterations > opt_.max_iterations) return LpStatus::kIterLimit;
      if (++guard > max_dual) return LpStatus::kIterLimit;
      if (eta_file_large() && !refactor_and_recompute())
        return LpStatus::kIterLimit;

      int r = -1;
      double worst = kPrimalFeasTol;
      double sgn = 0.0;  // +1: beta above upper, -1: below lower
      for (int i = 0; i < m_; ++i) {
        const int bj = basis_[i];
        const double over = beta_[i] - upper_[bj];
        const double under = lower_[bj] - beta_[i];
        if (over > worst) {
          worst = over;
          r = i;
          sgn = 1.0;
        }
        if (under > worst) {
          worst = under;
          r = i;
          sgn = -1.0;
        }
      }
      if (r < 0) return LpStatus::kOptimal;  // primal feasible

      std::fill(rho_.begin(), rho_.end(), 0.0);
      rho_[r] = 1.0;
      btran(rho_);
      for (int i = 0; i < m_; ++i) y_[i] = cost[basis_[i]];
      btran(y_);

      int q = -1;
      double best_ratio = kInf;
      for (int j = 0; j < nt_; ++j) {
        if (basic_pos_[j] >= 0) continue;
        if (lower_[j] == upper_[j]) continue;
        double alpha = 0.0;
        double rj = cost[j];
        for_col(j, [&](int32_t i, double c) {
          alpha += rho_[i] * c;
          rj -= y_[i] * c;
        });
        const double d = sgn * alpha;
        double ratio;
        if (stat_[j] == VStat::kAtLower && d > kPivotTol)
          ratio = std::max(rj, 0.0) / d;
        else if (stat_[j] == VStat::kAtUpper && d < -kPivotTol)
          ratio = std::min(rj, 0.0) / d;
        else
          continue;
        if (ratio < best_ratio) {  // ascending j: ties keep the smallest index
          best_ratio = ratio;
          q = j;
        }
      }
      if (q < 0) return LpStatus::kInfeasible;

      load_col(q, work_);
      ftran(work_);
      if (std::abs(work_[r]) <= kPivotTol) {
        if (++numeric_retries > 5 || !refactor_and_recompute())
          return LpStatus::kIterLimit;
        continue;
      }
      numeric_retries = 0;
      const int out = basis_[r];
      const double target = sgn > 0 ? upper_[out] : lower_[out];
      const double t = (beta_[r] - target) / work_[r];
      for (int i = 0; i < m_; ++i) beta_[i] -= work_[i] * t;
      const double enter_value = nonbasic_value(q) + t;
      stat_[out] = sgn > 0 ? VStat::kAtUpper : VStat::kAtLower;
      basic_pos_[out] = -1;
      append_eta(r, work_);
      basis_[r] = q;
      beta_[r] = enter_value;
      stat_[q] = VStat::kBasic;
      basic_pos_[q] = r;
    }
  }

  const SparseLpSolver& s_;
  LpOptions opt_;
  int n_, m_, nt_;
  int num_artificial_{0};
  int refactorizations_{0};
  std::vector<int32_t> art_row_;
  std::vector<double> art_sign_;
  std::vector<double> lower_, upper_;
  std::vector<VStat> stat_;
  std::vector<int32_t> basis_;      // basic column per row
  std::vector<int32_t> basic_pos_;  // column -> row, -1 when nonbasic
  std::vector<double> beta_;        // values of basic variables, by row
  std::vector<Eta> etas_;
  std::vector<int32_t> eta_ix_;
  std::vector<double> eta_val_;
  size_t num_factor_etas_{0};     // etas_[0..) from refactorize; rest updates
  size_t num_factor_entries_{0};  // eta_ix_ prefix owned by the factorization
  std::vector<int32_t> sigma_;    // outer row i <- factor pivot row sigma_[i]
  bool sigma_identity_{true};
  bool factored_{false};  // etas_ is a valid inverse of the current basis_
  std::vector<double> perm_buf_;
  std::vector<double> work_, y_, rho_;
};

LpResult SparseLpSolver::solve(const LpOptions& opt,
                               const std::vector<double>& lower,
                               const std::vector<double>& upper,
                               const SparseBasis* warm,
                               SparseBasis* basis_out) {
  TENSAT_CHECK(static_cast<int>(lower.size()) == n_ &&
                   static_cast<int>(upper.size()) == n_,
               "bound vector size mismatch");
  if (ctx_ == nullptr)
    ctx_ = std::make_unique<SparseSolveContext>(*this, opt, lower, upper);
  else
    ctx_->rebind(opt, lower, upper);
  return ctx_->run(warm, basis_out);
}

SparseLpSolver::~SparseLpSolver() = default;

}  // namespace tensat
