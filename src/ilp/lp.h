// Linear program container shared by the simplex and branch-and-bound
// solvers. Minimization form:
//
//     minimize    c . x
//     subject to  lo_r <= a_r . x <= hi_r     for every row r
//                 lower_j <= x_j <= upper_j   for every variable j
//
// Either side of a row (and either variable bound) may be infinite; a row
// with lo == hi is an equality.
#pragma once

#include <limits>
#include <utility>
#include <vector>

namespace tensat {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

struct LinearProgram {
  struct Row {
    std::vector<std::pair<int, double>> terms;  // (variable, coefficient)
    double lo{-kInf};
    double hi{kInf};
  };

  std::vector<double> objective;
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<Row> rows;

  [[nodiscard]] int num_vars() const { return static_cast<int>(objective.size()); }

  /// Adds a variable; returns its index.
  int add_var(double lo, double hi, double obj) {
    objective.push_back(obj);
    lower.push_back(lo);
    upper.push_back(hi);
    return num_vars() - 1;
  }

  void add_row(std::vector<std::pair<int, double>> terms, double lo, double hi) {
    rows.push_back(Row{std::move(terms), lo, hi});
  }

  /// a . x for a given assignment.
  [[nodiscard]] static double row_value(const Row& row, const std::vector<double>& x) {
    double v = 0.0;
    for (const auto& [j, c] : row.terms) v += c * x[j];
    return v;
  }

  /// True if `x` satisfies all rows and bounds within `tol`.
  [[nodiscard]] bool feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// c . x
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpResult {
  LpStatus status{LpStatus::kIterLimit};
  double objective{0.0};
  std::vector<double> x;
  int iterations{0};
  /// Basis rebuilds (sparse path only; the dense tableau never factorizes).
  int refactorizations{0};
  /// True when the solve ran from a supplied warm basis without falling
  /// back to a cold start (sparse path only).
  bool warm{false};
};

struct LpOptions {
  int max_iterations = 500000;
  double tol = 1e-7;
  /// Sparse revised simplex (CSC columns + eta-file basis, ilp/sparse.h).
  /// false = the original dense tableau, kept as the differential baseline.
  bool sparse = true;
};

/// Solves the LP with a bounded-variable two-phase primal simplex: the
/// sparse revised implementation by default, the dense tableau when
/// options.sparse is false.
LpResult solve_lp(const LinearProgram& lp, const LpOptions& options = {});

}  // namespace tensat
