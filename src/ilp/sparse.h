// Sparse bounded-variable revised simplex. The constraint matrix is stored
// once in compressed-sparse-column form (structural columns only; slack
// columns are implicit unit vectors) and the basis inverse is kept as an
// eta file (product form of the inverse) with periodic refactorization.
//
// The solver object is persistent: it is built once from a LinearProgram and
// can then be re-solved many times with different VARIABLE bounds — exactly
// the branch-and-bound access pattern, where every node of the tree shares
// the root's rows and objective and differs only in bound overrides. Row
// ranges and the objective are frozen at construction.
//
// Warm starts: solve() optionally takes the basis of a previous (optimal)
// solve. Since bound changes leave reduced costs untouched, the old basis is
// still dual feasible, so a bounded-variable dual simplex restores primal
// feasibility in a handful of pivots instead of a from-scratch two-phase
// solve. Any numerical trouble on the warm path (singular refactorization,
// iteration blow-up) falls back to a cold start, so warm starts can only
// change speed, never the answer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ilp/lp.h"

namespace tensat {

class SparseSolveContext;

/// Basis snapshot in the solver's internal column space: structural columns
/// first, then one slack per normalized row. Valid for any SparseLpSolver
/// built from a LinearProgram with the same rows/objective (bounds may
/// differ — that is the point). Artificial columns are never recorded; a
/// solve whose optimal basis still contains an artificial emits no basis.
struct SparseBasis {
  std::vector<int32_t> basic;     // per normalized row: basic column
  std::vector<uint8_t> at_upper;  // per column: nonbasic rest bound (1 = upper)
  [[nodiscard]] bool empty() const { return basic.empty(); }
};

class SparseLpSolver {
 public:
  /// Captures rows and objective; lp's bounds are NOT captured (they are
  /// passed to every solve). Free variables are rejected, as in the dense
  /// path.
  explicit SparseLpSolver(const LinearProgram& lp);
  ~SparseLpSolver();
  // Non-copyable and non-movable: the live solve context keeps a reference
  // back to this solver.
  SparseLpSolver(const SparseLpSolver&) = delete;
  SparseLpSolver& operator=(const SparseLpSolver&) = delete;

  /// Solves min c.x subject to the captured rows and the given variable
  /// bounds. `warm`, if non-null and non-empty, seeds the basis (dual
  /// simplex restoration); `basis_out`, if non-null, receives the optimal
  /// basis (cleared when the solve did not end kOptimal or the basis still
  /// contains an artificial). result.warm reports whether the warm basis
  /// was actually used; result.refactorizations counts basis rebuilds.
  ///
  /// The factorization persists across calls: when `warm` names exactly the
  /// basis the previous solve on this object ended with (sibling B&B nodes,
  /// successive dive steps), the eta file is reused and the rebuild is
  /// skipped entirely — the dominant per-node cost in a warm-started tree.
  LpResult solve(const LpOptions& opt, const std::vector<double>& lower,
                 const std::vector<double>& upper,
                 const SparseBasis* warm = nullptr,
                 SparseBasis* basis_out = nullptr);

  [[nodiscard]] int num_vars() const { return n_; }
  [[nodiscard]] int num_rows() const { return m_; }

 private:
  friend class SparseSolveContext;

  int n_{0};  // structural variables
  int m_{0};  // normalized rows

  // CSC of the normalized structural columns (slacks are implicit e_i).
  std::vector<int32_t> col_start_;  // size n_ + 1
  std::vector<int32_t> row_ix_;
  std::vector<double> col_val_;

  std::vector<double> obj_;       // structural objective
  std::vector<double> rhs_;       // normalized row rhs
  std::vector<double> slack_hi_;  // slack upper bound per row (lower is 0)

  // Live solve state (basis, eta file), kept between solve() calls so a
  // matching warm basis skips refactorization. Lazily created.
  std::unique_ptr<SparseSolveContext> ctx_;
};

}  // namespace tensat
