// Mixed-integer linear programming by branch & bound over the LP relaxation
// (ilp/lp.h's simplex). Stands in for SCIP in the paper's extraction phase.
//
// Features used by extraction: binary selection variables x_i, optional
// continuous or integer topological-order variables t_m (paper §5.1
// constraints (4)-(5)), warm-starting from a known feasible solution (the
// greedy extraction), and a wall-clock time limit (the paper's 1-hour SCIP
// timeout, scaled down).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ilp/lp.h"
#include "ilp/sparse.h"

namespace tensat {

/// Pseudocost totals of a finished solve, exportable across solves of the
/// SAME formulation (rows + objective; bounds may differ). Branching history
/// is the slowest-to-warm part of a B&B search, so a service solving the
/// same extraction core request after request seeds it instead of relearning
/// it. Purely advisory: pseudocosts rank branching candidates, they never
/// enter a bound or a certificate, so a stale snapshot can change the search
/// path but not the certified result.
struct PseudocostSnapshot {
  std::vector<double> sum_down, sum_up;
  std::vector<int> cnt_down, cnt_up;
  double total_rate{0.0};
  int total_cnt{0};
};

enum class MilpStatus {
  kOptimal,     // proven optimal
  kFeasible,    // stopped early (time/node limit) with an incumbent
  kInfeasible,  // no integer-feasible point exists
  kNoSolution,  // stopped early with no incumbent found
};

struct MilpOptions {
  double time_limit_s = 60.0;
  int max_nodes = 2000000;
  double int_tol = 1e-6;
  /// Prune nodes whose bound is within this of the incumbent.
  double gap_tol = 1e-9;
  /// Relative MIP gap: stop when the bound is within rel_gap * |incumbent|.
  /// The incumbent is then reported optimal (within tolerance), as MILP
  /// solvers conventionally do.
  double rel_gap = 1e-3;
  /// Problem-specific rounding heuristic: maps a fractional LP solution to a
  /// candidate integer point. Candidates are verified (feasibility +
  /// integrality) before being accepted as incumbents. Optional.
  std::function<std::optional<std::vector<double>>(const std::vector<double>&)>
      rounding;
  /// Per-node LPs through the persistent sparse revised simplex (one
  /// SparseLpSolver per solve_milp call — the CSC and normalization are
  /// shared by every node, only bounds differ). false = the dense tableau,
  /// from scratch at every node: the differential baseline.
  bool sparse = true;
  /// Child nodes re-solve from the parent's optimal basis (dual simplex
  /// restoration after the branch bound flip). Only meaningful with
  /// `sparse`; false forces every node cold — the warm-vs-cold baseline.
  bool warm_start_basis = true;
  /// Problem-specific cutting planes, separated at the root ("cut &
  /// branch"): given a fractional root LP solution, returns rows VALID FOR
  /// EVERY integer-feasible point (never just for the current relaxation),
  /// so the strengthened bound stays a certificate for the original
  /// problem. Rounds repeat — re-solve, separate, append — until the
  /// generator returns nothing, the bound stalls for five rounds,
  /// max_cut_rounds is hit, or 30% of the time budget is gone. On the
  /// sparse path each round warm-starts from the
  /// previous basis extended with the new rows' slacks (basic, so still
  /// dual feasible); the dense baseline re-solves cold, and both paths see
  /// the identical cut sequence — the LP-path differential stays exact.
  std::function<std::vector<LinearProgram::Row>(const std::vector<double>&)>
      cut_generator;
  int max_cut_rounds = 200;
  /// Per-variable branching score weight: candidates are ranked by
  /// fractionality * weight, where weight defaults to 1 + |objective|.
  /// Lets zero-objective auxiliary variables carry the stakes they stand
  /// for: extraction weighs class-selection indicators by their class's
  /// option costs, so whole-class dichotomies — which actually move the
  /// bound, where fixing one option merely shifts mass to a sibling —
  /// compete with (and usually beat) per-option branching.
  std::vector<double> branch_weight;
  /// Cross-solve warm start (the service's request-to-request lever): a
  /// basis exported by a previous solve of the same formulation — same rows
  /// and objective; variable bounds may differ, exactly the guarantee
  /// SparseBasis documents. Seeds the first root LP (the first cut round
  /// when a cut_generator is set, the B&B root otherwise) in place of a cold
  /// two-phase start. Ignored on the dense path, when warm_start_basis is
  /// off, or when the snapshot's dimensions don't match. Like every warm
  /// basis here, numerical trouble falls back to a cold start — seeding can
  /// only change speed and tie-breaking among equally-optimal solutions,
  /// never the certified objective.
  std::shared_ptr<const SparseBasis> seed_basis;
  /// Cross-solve pseudocost seed from a previous solve of the same
  /// formulation. Ignored when the sizes don't match lp.num_vars().
  std::shared_ptr<const PseudocostSnapshot> seed_pseudocost;
};

struct MilpResult {
  MilpStatus status{MilpStatus::kNoSolution};
  std::vector<double> x;
  double objective{0.0};
  double best_bound{-kInf};  // proven lower bound on the optimum
  /// Certified relative optimality gap: (objective - best_bound) /
  /// max(|objective|, eps). 0 when optimality was proven by exhausting the
  /// tree; kInf when there is no incumbent. A rel-gap or time-limit stop
  /// reports the true frontier bound, so the gap is a real certificate.
  double gap{kInf};
  int nodes_explored{0};
  int lp_iterations{0};
  /// LP solves that reused a parent/previous basis without a cold restart.
  int warm_start_hits{0};
  /// Basis refactorizations across all node LPs (sparse path only).
  int refactorizations{0};
  /// Cutting planes added by the root cut loop (cut_generator).
  int cuts{0};
  double seconds{0.0};
  bool timed_out{false};
  /// Basis of the ORIGINAL formulation's root relaxation (captured before
  /// any cuts are appended, so it stays valid as a seed_basis for a later
  /// solve of the same rows + objective). Null on the dense path or when the
  /// root solve produced no reusable basis.
  std::shared_ptr<const SparseBasis> root_basis;
  /// Pseudocost totals at the end of the search, reusable as
  /// seed_pseudocost on a later solve of the same formulation.
  std::shared_ptr<const PseudocostSnapshot> pseudocost;
};

/// Solves min c.x over lp's constraints with x_j integral for every j with
/// integer_mask[j]. `warm_start`, if given, must be integer-feasible and
/// seeds the incumbent (its objective becomes the initial upper bound).
MilpResult solve_milp(const LinearProgram& lp, const std::vector<bool>& integer_mask,
                      const MilpOptions& options = {},
                      const std::optional<std::vector<double>>& warm_start = std::nullopt);

}  // namespace tensat
