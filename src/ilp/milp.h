// Mixed-integer linear programming by branch & bound over the LP relaxation
// (ilp/lp.h's simplex). Stands in for SCIP in the paper's extraction phase.
//
// Features used by extraction: binary selection variables x_i, optional
// continuous or integer topological-order variables t_m (paper §5.1
// constraints (4)-(5)), warm-starting from a known feasible solution (the
// greedy extraction), and a wall-clock time limit (the paper's 1-hour SCIP
// timeout, scaled down).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ilp/lp.h"

namespace tensat {

enum class MilpStatus {
  kOptimal,     // proven optimal
  kFeasible,    // stopped early (time/node limit) with an incumbent
  kInfeasible,  // no integer-feasible point exists
  kNoSolution,  // stopped early with no incumbent found
};

struct MilpOptions {
  double time_limit_s = 60.0;
  int max_nodes = 2000000;
  double int_tol = 1e-6;
  /// Prune nodes whose bound is within this of the incumbent.
  double gap_tol = 1e-9;
  /// Relative MIP gap: stop when the bound is within rel_gap * |incumbent|.
  /// The incumbent is then reported optimal (within tolerance), as MILP
  /// solvers conventionally do.
  double rel_gap = 1e-3;
  /// Problem-specific rounding heuristic: maps a fractional LP solution to a
  /// candidate integer point. Candidates are verified (feasibility +
  /// integrality) before being accepted as incumbents. Optional.
  std::function<std::optional<std::vector<double>>(const std::vector<double>&)>
      rounding;
};

struct MilpResult {
  MilpStatus status{MilpStatus::kNoSolution};
  std::vector<double> x;
  double objective{0.0};
  double best_bound{-kInf};  // proven lower bound on the optimum
  int nodes_explored{0};
  int lp_iterations{0};
  double seconds{0.0};
  bool timed_out{false};
};

/// Solves min c.x over lp's constraints with x_j integral for every j with
/// integer_mask[j]. `warm_start`, if given, must be integer-feasible and
/// seeds the incumbent (its objective becomes the initial upper bound).
MilpResult solve_milp(const LinearProgram& lp, const std::vector<bool>& integer_mask,
                      const MilpOptions& options = {},
                      const std::optional<std::vector<double>>& warm_start = std::nullopt);

}  // namespace tensat
