#include "ilp/milp.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "ilp/sparse.h"
#include "support/check.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace tensat {
namespace {

/// One open subproblem: variable-bound overrides relative to the root LP,
/// plus the parent's LP bound for best-first ordering. `warm` is the
/// parent's optimal basis (shared by both children): the child LP differs
/// from the parent's by one bound flip, so the basis is still dual feasible
/// and the dual simplex restores it in a few pivots.
struct Node {
  std::vector<std::pair<int, std::pair<double, double>>> bound_overrides;
  double parent_bound{-kInf};
  int depth{0};
  std::shared_ptr<const SparseBasis> warm;
  // Which branch created this node, for pseudocost learning: the variable,
  // the distance its parent LP value was rounded (toward this child), and
  // the direction. branch_var < 0 for the root.
  int branch_var{-1};
  double branch_frac{0.0};
  bool branch_up{false};
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    return a.parent_bound > b.parent_bound;  // min-heap on bound
  }
};

/// Per-direction pseudocosts: the LP bound gain per unit of rounded-off
/// fractionality, averaged over the branchings the tree actually explored.
/// Variables with history are ranked by what their dichotomies really move;
/// unseen ones borrow the global average (same units), or the caller's
/// static branch weight before anything has been observed.
struct Pseudocost {
  std::vector<double> sum_down, sum_up;
  std::vector<int> cnt_down, cnt_up;
  double total_rate{0.0};
  int total_cnt{0};
  explicit Pseudocost(size_t n)
      : sum_down(n, 0.0), sum_up(n, 0.0), cnt_down(n, 0), cnt_up(n, 0) {}
  /// Resumes from an exported snapshot of a same-formulation solve; a
  /// size-mismatched snapshot is ignored (cold pseudocosts).
  Pseudocost(size_t n, const PseudocostSnapshot* seed) : Pseudocost(n) {
    if (seed == nullptr || seed->sum_down.size() != n ||
        seed->sum_up.size() != n || seed->cnt_down.size() != n ||
        seed->cnt_up.size() != n)
      return;
    sum_down = seed->sum_down;
    sum_up = seed->sum_up;
    cnt_down = seed->cnt_down;
    cnt_up = seed->cnt_up;
    total_rate = seed->total_rate;
    total_cnt = seed->total_cnt;
  }
  [[nodiscard]] PseudocostSnapshot snapshot() const {
    return PseudocostSnapshot{sum_down, sum_up, cnt_down, cnt_up,
                              total_rate, total_cnt};
  }
  void observe(int j, bool up, double frac, double gain) {
    if (frac < 1e-9) return;
    const double rate = std::max(0.0, gain) / frac;
    (up ? sum_up : sum_down)[j] += rate;
    ++(up ? cnt_up : cnt_down)[j];
    total_rate += rate;
    ++total_cnt;
  }
  double rate(int j, bool up, double fallback) const {
    const int c = (up ? cnt_up : cnt_down)[j];
    if (c > 0) return (up ? sum_up : sum_down)[j] / c;
    return total_cnt > 0 ? total_rate / total_cnt : fallback;
  }
};

/// Picks the branching variable: the product rule over the estimated bound
/// movement of both children — a variable only scores high when BOTH sides
/// of its dichotomy move the bound, which is what shrinks the tree.
int pick_branch_var(const std::vector<double>& x, const std::vector<bool>& mask,
                    const std::vector<double>& objective,
                    const std::vector<double>& weight, const Pseudocost& pc,
                    double int_tol) {
  int best = -1;
  double best_score = 0.0;
  for (size_t j = 0; j < x.size(); ++j) {
    if (!mask[j]) continue;
    const double frac_down = x[j] - std::floor(x[j]);
    const double frac_up = std::ceil(x[j]) - x[j];
    if (std::min(frac_down, frac_up) <= int_tol) continue;
    const double w =
        j < weight.size() ? weight[j] : 1.0 + std::abs(objective[j]);
    const int jj = static_cast<int>(j);
    const double est_down = pc.rate(jj, false, w) * frac_down;
    const double est_up = pc.rate(jj, true, w) * frac_up;
    const double score =
        std::max(est_down, 1e-6) * std::max(est_up, 1e-6);
    if (best < 0 || score > best_score) {
      best_score = score;
      best = jj;
    }
  }
  return best;
}

}  // namespace

MilpResult solve_milp(const LinearProgram& lp_in, const std::vector<bool>& integer_mask,
                      const MilpOptions& options,
                      const std::optional<std::vector<double>>& warm_start) {
  TENSAT_CHECK(static_cast<int>(integer_mask.size()) == lp_in.num_vars(),
               "integer mask size mismatch");
  // Span on the caller's lane (engine cores call from pool workers); the
  // B&B/LP work totals go through incr(), whose per-lane sums merge into
  // deterministic aggregates regardless of which worker solved which core.
  const trace::ScopedSpan span("milp/solve", lp_in.num_vars());
  Timer timer;
  MilpResult result;

  // ---- Root cut loop (cut & branch) --------------------------------------
  // Repeatedly solve the relaxation and append the generator's violated
  // rows. The rows are valid for every integer point (the generator's
  // contract), so the whole tree — and the reported best_bound — stays a
  // certificate for the original problem. Sparse rounds warm-start from the
  // previous optimal basis extended with the new rows' slacks: appended
  // rows keep every existing column index, the new slacks are basic (still
  // dual feasible), and the dual simplex repairs their bound violations.
  LinearProgram augmented;
  std::shared_ptr<const SparseBasis> root_warm;
  if (options.cut_generator) {
    augmented = lp_in;
    LpOptions cut_lp_opt;
    cut_lp_opt.sparse = options.sparse;
    SparseBasis cut_warm;
    bool have_warm = false;
    if (options.sparse && options.warm_start_basis && options.seed_basis &&
        !options.seed_basis->empty()) {
      // Cross-solve seed: round 0 solves the original formulation, exactly
      // what the exported root_basis was recorded against. load_warm
      // rejects a dimension mismatch and falls back cold, so a stale seed
      // costs nothing.
      cut_warm = *options.seed_basis;
      have_warm = true;
    }
    double stall_ref = -kInf;  // objective at the last "real" improvement
    int stalled = 0;
    for (int round = 0; round < options.max_cut_rounds; ++round) {
      if (timer.seconds() > 0.3 * options.time_limit_s) break;
      LpResult root;
      SparseBasis basis_now;
      if (options.sparse) {
        SparseLpSolver solver(augmented);
        root = solver.solve(
            cut_lp_opt, augmented.lower, augmented.upper,
            have_warm && options.warm_start_basis ? &cut_warm : nullptr,
            &basis_now);
      } else {
        root = solve_lp(augmented, cut_lp_opt);
      }
      result.lp_iterations += root.iterations;
      result.refactorizations += root.refactorizations;
      if (root.warm) ++result.warm_start_hits;
      // Round 0 is the original formulation (no cut rows yet): its basis is
      // the one a later solve of the same formulation can seed from.
      if (round == 0 && !basis_now.empty())
        result.root_basis = std::make_shared<const SparseBasis>(basis_now);
      if (root.status != LpStatus::kOptimal) break;
      // Diminishing returns: once rounds stop moving the bound, further
      // cuts only bloat the node LPs — hand the time to branch & bound.
      if (root.objective >
          stall_ref + std::max(1e-6, 1e-3 * std::abs(root.objective))) {
        stall_ref = root.objective;
        stalled = 0;
      } else if (++stalled >= 5) {
        break;
      }
      const std::vector<LinearProgram::Row> cuts =
          options.cut_generator(root.x);
      if (cuts.empty()) {
        // Relaxation is cut-clean: seed the B&B root with its basis.
        if (!basis_now.empty())
          root_warm = std::make_shared<const SparseBasis>(std::move(basis_now));
        break;
      }
      // Slack columns are numbered n + bounded-row-index, so appending rows
      // leaves every existing index intact.
      size_t bounded_before = 0;
      for (const LinearProgram::Row& r : augmented.rows)
        if (!(r.lo == -kInf && r.hi == kInf)) ++bounded_before;
      size_t added = 0;
      for (const LinearProgram::Row& row : cuts) {
        augmented.rows.push_back(row);
        if (!(row.lo == -kInf && row.hi == kInf)) ++added;
        ++result.cuts;
      }
      if (options.sparse && !basis_now.empty()) {
        cut_warm = std::move(basis_now);
        for (size_t i = 0; i < added; ++i) {
          cut_warm.basic.push_back(static_cast<int32_t>(
              augmented.num_vars() + bounded_before + i));
          cut_warm.at_upper.push_back(0);
        }
        have_warm = true;
      } else {
        have_warm = false;
      }
    }
  }
  const LinearProgram& lp = options.cut_generator ? augmented : lp_in;

  if (warm_start.has_value()) {
    TENSAT_CHECK(lp.feasible(*warm_start, 1e-5), "warm start is not feasible");
    result.x = *warm_start;
    result.objective = lp.objective_value(*warm_start);
    result.status = MilpStatus::kFeasible;
  }
  double incumbent = warm_start ? result.objective : kInf;
  // Effective pruning cutoff: absolute or relative gap, whichever is looser.
  auto cutoff = [&] {
    return incumbent - std::max(options.gap_tol, options.rel_gap * std::abs(incumbent));
  };

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  Pseudocost pseudocost(static_cast<size_t>(lp.num_vars()),
                        options.seed_pseudocost.get());
  Node root_node;
  root_node.warm = std::move(root_warm);  // cut-clean basis, if any
  if (root_node.warm == nullptr && !options.cut_generator &&
      options.sparse && options.warm_start_basis && options.seed_basis &&
      !options.seed_basis->empty()) {
    // No cut loop ran: the B&B root solves the original formulation
    // directly, so the cross-solve seed applies to it.
    root_node.warm = options.seed_basis;
  }
  open.push(std::move(root_node));
  double explored_bound_floor = kInf;  // min bound among pruned-by-bound nodes
  double stop_frontier = kInf;  // open frontier at the rel-gap stop
  bool gap_stop = false;
  bool exhausted = true;

  // Node LPs: the persistent sparse solver shares the CSC/normalization
  // across the whole tree (nodes differ only in bounds); the dense tableau
  // baseline re-solves from scratch, exactly as before.
  LinearProgram work = lp;  // dense path: bounds mutated per node
  std::vector<double> node_lo = lp.lower;
  std::vector<double> node_hi = lp.upper;
  std::optional<SparseLpSolver> sparse_solver;
  if (options.sparse) sparse_solver.emplace(lp);
  LpOptions lp_opt;
  lp_opt.sparse = options.sparse;
  auto solve_node = [&](const SparseBasis* warm,
                        SparseBasis* basis_out) -> LpResult {
    LpResult r;
    if (sparse_solver) {
      r = sparse_solver->solve(lp_opt, node_lo, node_hi,
                               options.warm_start_basis ? warm : nullptr,
                               basis_out);
    } else {
      work.lower = node_lo;
      work.upper = node_hi;
      r = solve_lp(work, lp_opt);
      if (basis_out != nullptr) {
        basis_out->basic.clear();
        basis_out->at_upper.clear();
      }
    }
    result.lp_iterations += r.iterations;
    result.refactorizations += r.refactorizations;
    if (r.warm) ++result.warm_start_hits;
    return r;
  };

  // LP-guided diving: starting from a fractional point, repeatedly fix the
  // least-fractional integer variable to its nearest value and re-solve.
  // Finds coordinated integer solutions (e.g. a whole merged-operator
  // subtree) that single-shot rounding misses. Bounds in node_lo/node_hi
  // must be at the intended values on entry; they are restored on exit.
  // Successive dive LPs chain the basis: each re-solve warm-starts from the
  // previous one (one more bound fixed = one dual restoration).
  auto dive = [&](std::vector<double> x, const SparseBasis* seed_basis) {
    std::vector<std::pair<int, std::pair<double, double>>> fixed;
    auto fix = [&](int j, double v) {
      fixed.emplace_back(j, std::make_pair(node_lo[j], node_hi[j]));
      node_lo[j] = v;
      node_hi[j] = v;
    };
    SparseBasis dive_basis;
    if (seed_basis != nullptr) dive_basis = *seed_basis;
    for (int depth = 0; depth < 60; ++depth) {
      if (timer.seconds() > options.time_limit_s) break;
      // Fix every near-integral variable at once ("vector diving"), plus the
      // least-fractional remaining one — keeps dives to a handful of LPs.
      int var = -1;
      double best_frac = 1.0;
      for (size_t j = 0; j < x.size(); ++j) {
        if (!integer_mask[j]) continue;
        const double frac = std::abs(x[j] - std::round(x[j]));
        if (frac <= options.int_tol) continue;
        if (frac < 0.05) {
          fix(static_cast<int>(j), std::round(x[j]));
        } else if (frac < best_frac) {
          best_frac = frac;
          var = static_cast<int>(j);
        }
      }
      if (var < 0) {  // integral (after snapping): candidate incumbent
        for (size_t j = 0; j < x.size(); ++j)
          if (integer_mask[j]) x[j] = std::round(x[j]);
        const double obj = lp.objective_value(x);
        if (obj < incumbent && lp.feasible(x, 1e-6)) {
          incumbent = obj;
          result.x = x;
          result.objective = obj;
          result.status = MilpStatus::kFeasible;
        }
        break;
      }
      fix(var, std::round(x[var]));
      const LpResult sub = solve_node(&dive_basis, &dive_basis);
      if (sub.status != LpStatus::kOptimal || sub.objective >= incumbent) break;
      x = sub.x;
    }
    for (auto it = fixed.rbegin(); it != fixed.rend(); ++it) {
      node_lo[it->first] = it->second.first;
      node_hi[it->first] = it->second.second;
    }
  };

  // Plunging: after a branch, the child whose bound flip least perturbs the
  // parent LP is solved immediately (its warm basis is the solver's LIVE
  // one, so the eta file is reused without refactorizing — see
  // SparseLpSolver::solve); the sibling goes to the best-bound heap.
  // Pruning stays bound-based against the same cutoff, so plunging changes
  // visit order, never the certificate.
  std::optional<Node> plunge;
  while (plunge.has_value() || !open.empty()) {
    if (timer.seconds() > options.time_limit_s ||
        result.nodes_explored >= options.max_nodes) {
      result.timed_out = true;
      exhausted = false;
      break;
    }
    const bool plunged = plunge.has_value();
    Node node;
    if (plunged) {
      node = std::move(*plunge);
      plunge.reset();
    } else {
      node = open.top();
      open.pop();
    }
    if (node.parent_bound >= cutoff()) {
      if (plunged) continue;  // pruned mid-plunge; resume best-first
      // Best-first: every remaining node is at least as bad, so the
      // incumbent is optimal within the requested gap. Keep the frontier
      // bound so the reported gap stays a real certificate.
      stop_frontier = node.parent_bound;
      gap_stop = true;
      while (!open.empty()) open.pop();
      break;
    }
    ++result.nodes_explored;

    // Apply node bounds.
    for (const auto& [j, bounds] : node.bound_overrides) {
      node_lo[j] = bounds.first;
      node_hi[j] = bounds.second;
    }
    SparseBasis node_basis;
    LpResult relax = solve_node(node.warm.get(), &node_basis);
    // The first explored node is the root under original bounds; when no
    // cut loop captured the original-formulation basis, this one is it.
    if (result.nodes_explored == 1 && result.root_basis == nullptr &&
        !options.cut_generator && !node_basis.empty())
      result.root_basis = std::make_shared<const SparseBasis>(node_basis);
    // Restore root bounds.
    for (const auto& [j, bounds] : node.bound_overrides) {
      node_lo[j] = lp.lower[j];
      node_hi[j] = lp.upper[j];
    }

    if (relax.status == LpStatus::kOptimal && node.branch_var >= 0) {
      pseudocost.observe(node.branch_var, node.branch_up, node.branch_frac,
                         relax.objective - node.parent_bound);
    }
    if (relax.status == LpStatus::kInfeasible) continue;
    if (relax.status == LpStatus::kUnbounded) {
      // An unbounded relaxation of a node: the MILP itself is unbounded or
      // the formulation is broken; extraction LPs are always bounded.
      TENSAT_FAIL("unbounded LP relaxation in branch & bound");
    }
    if (relax.status == LpStatus::kIterLimit) {
      // Treat as unresolved: keep a conservative bound.
      explored_bound_floor = std::min(explored_bound_floor, node.parent_bound);
      exhausted = false;
      continue;
    }
    if (relax.objective >= cutoff()) {
      explored_bound_floor = std::min(explored_bound_floor, relax.objective);
      continue;
    }

    const int branch_var =
        pick_branch_var(relax.x, integer_mask, lp.objective,
                        options.branch_weight, pseudocost, options.int_tol);

    // Diving heuristic at the root and periodically afterwards (a dive costs
    // tens of LP solves, so not at every node).
    if (branch_var >= 0 &&
        (result.nodes_explored == 1 || result.nodes_explored % 200 == 0)) {
      dive(relax.x, node_basis.empty() ? node.warm.get() : &node_basis);
    }

    // Rounding heuristic: try to turn the fractional point into a feasible
    // integer incumbent (cheap compared to the LP solve; big win when the
    // warm start is far from optimal).
    if (branch_var >= 0 && options.rounding) {
      if (auto candidate = options.rounding(relax.x)) {
        bool integral_ok = candidate->size() == static_cast<size_t>(lp.num_vars());
        for (size_t j = 0; integral_ok && j < candidate->size(); ++j) {
          if (integer_mask[j] &&
              std::abs((*candidate)[j] - std::round((*candidate)[j])) > options.int_tol)
            integral_ok = false;
        }
        if (integral_ok && lp.feasible(*candidate, 1e-6)) {
          const double obj = lp.objective_value(*candidate);
          if (obj < incumbent) {
            incumbent = obj;
            result.x = *candidate;
            result.objective = obj;
            result.status = MilpStatus::kFeasible;
          }
        }
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent = relax.objective;
      result.x = relax.x;
      // Snap near-integral values exactly.
      for (size_t j = 0; j < result.x.size(); ++j)
        if (integer_mask[j]) result.x[j] = std::round(result.x[j]);
      result.objective = relax.objective;
      result.status = MilpStatus::kFeasible;
      continue;
    }

    // Branch: x_j <= floor(v)  |  x_j >= ceil(v). Both children share this
    // node's optimal basis for their warm start; when this node produced no
    // basis (dense path, or an artifact-carrying optimum), they inherit the
    // ancestor's — any basis optimal for the same rows and objective stays
    // dual feasible under arbitrary bound changes.
    std::shared_ptr<const SparseBasis> child_warm =
        node_basis.empty()
            ? node.warm
            : std::make_shared<const SparseBasis>(std::move(node_basis));
    const double v = relax.x[branch_var];
    Node down = node;
    down.parent_bound = relax.objective;
    down.depth = node.depth + 1;
    down.warm = child_warm;
    down.branch_var = branch_var;
    down.branch_frac = v - std::floor(v);
    down.branch_up = false;
    down.bound_overrides.emplace_back(
        branch_var, std::make_pair(lp.lower[branch_var], std::floor(v)));
    Node up = std::move(node);
    up.parent_bound = relax.objective;
    up.depth = down.depth;
    up.warm = std::move(child_warm);
    up.branch_var = branch_var;
    up.branch_frac = std::ceil(v) - v;
    up.branch_up = true;
    up.bound_overrides.emplace_back(
        branch_var, std::make_pair(std::ceil(v), lp.upper[branch_var]));
    // Plunge toward the nearest integer — the smaller perturbation, hence
    // the cheapest dual restoration off the live basis.
    if (v - std::floor(v) <= 0.5) {
      plunge = std::move(down);
      open.push(std::move(up));
    } else {
      plunge = std::move(up);
      open.push(std::move(down));
    }
  }

  result.seconds = timer.seconds();
  if (pseudocost.total_cnt > 0)
    result.pseudocost =
        std::make_shared<const PseudocostSnapshot>(pseudocost.snapshot());
  // Lower bound: min over open/pruned frontier (including the frontier at a
  // rel-gap stop); if the search finished with an incumbent and nothing
  // open, the incumbent is optimal.
  double frontier = std::min(explored_bound_floor, stop_frontier);
  if (!open.empty()) frontier = std::min(frontier, open.top().parent_bound);
  if (plunge.has_value()) frontier = std::min(frontier, plunge->parent_bound);
  if (result.status == MilpStatus::kFeasible) {
    if (exhausted && open.empty() && !plunge.has_value() && !gap_stop) {
      result.status = MilpStatus::kOptimal;
      result.best_bound = result.objective;
      result.gap = 0.0;
    } else {
      result.best_bound = std::min(frontier, result.objective);
      result.gap =
          std::max(0.0, (result.objective - result.best_bound) /
                            std::max(std::abs(result.objective), 1e-12));
      // Within the requested gap of the proven frontier: reported optimal,
      // as MILP solvers conventionally do — but with the true bound kept,
      // so IlpExtractOptions::rel_gap terminates early WITH a certificate.
      if (gap_stop) result.status = MilpStatus::kOptimal;
    }
  } else if (open.empty() && exhausted) {
    result.status = MilpStatus::kInfeasible;
  } else {
    result.best_bound = (frontier == kInf) ? -kInf : frontier;
  }
  trace::incr("milp/bb_nodes", static_cast<int64_t>(result.nodes_explored));
  trace::incr("milp/lp_iterations", static_cast<int64_t>(result.lp_iterations));
  trace::incr("milp/warm_start_hits",
              static_cast<int64_t>(result.warm_start_hits));
  trace::incr("milp/refactorizations",
              static_cast<int64_t>(result.refactorizations));
  trace::incr("milp/cuts", static_cast<int64_t>(result.cuts));
  trace::incr("milp/gap_ppm",
              result.gap == kInf
                  ? 1000000
                  : std::llround(std::min(result.gap, 1.0) * 1e6));
  return result;
}

}  // namespace tensat
