#include "ilp/milp.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/check.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace tensat {
namespace {

/// One open subproblem: variable-bound overrides relative to the root LP,
/// plus the parent's LP bound for best-first ordering.
struct Node {
  std::vector<std::pair<int, std::pair<double, double>>> bound_overrides;
  double parent_bound{-kInf};
  int depth{0};
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    return a.parent_bound > b.parent_bound;  // min-heap on bound
  }
};

/// Picks the branching variable: among fractional masked variables, prefer
/// high-stakes ones (fractionality weighted by objective magnitude), so the
/// bound moves early in the tree.
int pick_branch_var(const std::vector<double>& x, const std::vector<bool>& mask,
                    const std::vector<double>& objective, double int_tol) {
  int best = -1;
  double best_score = 0.0;
  for (size_t j = 0; j < x.size(); ++j) {
    if (!mask[j]) continue;
    const double frac = std::abs(x[j] - std::round(x[j]));
    if (frac <= int_tol) continue;
    const double score = frac * (1.0 + std::abs(objective[j]));
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace

MilpResult solve_milp(const LinearProgram& lp, const std::vector<bool>& integer_mask,
                      const MilpOptions& options,
                      const std::optional<std::vector<double>>& warm_start) {
  TENSAT_CHECK(static_cast<int>(integer_mask.size()) == lp.num_vars(),
               "integer mask size mismatch");
  // Span on the caller's lane (engine cores call from pool workers); the
  // B&B/LP work totals go through incr(), whose per-lane sums merge into
  // deterministic aggregates regardless of which worker solved which core.
  const trace::ScopedSpan span("milp/solve", lp.num_vars());
  Timer timer;
  MilpResult result;

  if (warm_start.has_value()) {
    TENSAT_CHECK(lp.feasible(*warm_start, 1e-5), "warm start is not feasible");
    result.x = *warm_start;
    result.objective = lp.objective_value(*warm_start);
    result.status = MilpStatus::kFeasible;
  }
  double incumbent = warm_start ? result.objective : kInf;
  // Effective pruning cutoff: absolute or relative gap, whichever is looser.
  auto cutoff = [&] {
    return incumbent - std::max(options.gap_tol, options.rel_gap * std::abs(incumbent));
  };

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push(Node{});
  double explored_bound_floor = kInf;  // min bound among pruned-by-bound nodes
  bool exhausted = true;

  LinearProgram work = lp;  // bounds mutated per node and restored after

  // LP-guided diving: starting from a fractional point, repeatedly fix the
  // least-fractional integer variable to its nearest value and re-solve.
  // Finds coordinated integer solutions (e.g. a whole merged-operator
  // subtree) that single-shot rounding misses. Bounds in `work` must be at
  // the current node's values on entry; they are restored on exit.
  auto dive = [&](std::vector<double> x) {
    std::vector<std::pair<int, std::pair<double, double>>> fixed;
    auto fix = [&](int j, double v) {
      fixed.emplace_back(j, std::make_pair(work.lower[j], work.upper[j]));
      work.lower[j] = v;
      work.upper[j] = v;
    };
    for (int depth = 0; depth < 60; ++depth) {
      if (timer.seconds() > options.time_limit_s) break;
      // Fix every near-integral variable at once ("vector diving"), plus the
      // least-fractional remaining one — keeps dives to a handful of LPs.
      int var = -1;
      double best_frac = 1.0;
      for (size_t j = 0; j < x.size(); ++j) {
        if (!integer_mask[j]) continue;
        const double frac = std::abs(x[j] - std::round(x[j]));
        if (frac <= options.int_tol) continue;
        if (frac < 0.05) {
          fix(static_cast<int>(j), std::round(x[j]));
        } else if (frac < best_frac) {
          best_frac = frac;
          var = static_cast<int>(j);
        }
      }
      if (var < 0) {  // integral (after snapping): candidate incumbent
        for (size_t j = 0; j < x.size(); ++j)
          if (integer_mask[j]) x[j] = std::round(x[j]);
        const double obj = lp.objective_value(x);
        if (obj < incumbent && lp.feasible(x, 1e-6)) {
          incumbent = obj;
          result.x = x;
          result.objective = obj;
          result.status = MilpStatus::kFeasible;
        }
        break;
      }
      fix(var, std::round(x[var]));
      const LpResult sub = solve_lp(work);
      result.lp_iterations += sub.iterations;
      if (sub.status != LpStatus::kOptimal || sub.objective >= incumbent) break;
      x = sub.x;
    }
    for (auto it = fixed.rbegin(); it != fixed.rend(); ++it) {
      work.lower[it->first] = it->second.first;
      work.upper[it->first] = it->second.second;
    }
  };

  while (!open.empty()) {
    if (timer.seconds() > options.time_limit_s ||
        result.nodes_explored >= options.max_nodes) {
      result.timed_out = true;
      exhausted = false;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.parent_bound >= cutoff()) {
      // Best-first: every remaining node is at least as bad, so the
      // incumbent is optimal.
      while (!open.empty()) open.pop();
      break;
    }
    ++result.nodes_explored;

    // Apply node bounds.
    for (const auto& [j, bounds] : node.bound_overrides) {
      work.lower[j] = bounds.first;
      work.upper[j] = bounds.second;
    }
    LpResult relax = solve_lp(work);
    result.lp_iterations += relax.iterations;
    // Restore root bounds.
    for (const auto& [j, bounds] : node.bound_overrides) {
      work.lower[j] = lp.lower[j];
      work.upper[j] = lp.upper[j];
    }

    if (relax.status == LpStatus::kInfeasible) continue;
    if (relax.status == LpStatus::kUnbounded) {
      // An unbounded relaxation of a node: the MILP itself is unbounded or
      // the formulation is broken; extraction LPs are always bounded.
      TENSAT_FAIL("unbounded LP relaxation in branch & bound");
    }
    if (relax.status == LpStatus::kIterLimit) {
      // Treat as unresolved: keep a conservative bound.
      explored_bound_floor = std::min(explored_bound_floor, node.parent_bound);
      exhausted = false;
      continue;
    }
    if (relax.objective >= cutoff()) {
      explored_bound_floor = std::min(explored_bound_floor, relax.objective);
      continue;
    }

    const int branch_var =
        pick_branch_var(relax.x, integer_mask, lp.objective, options.int_tol);

    // Diving heuristic at the root and periodically afterwards (a dive costs
    // tens of LP solves, so not at every node).
    if (branch_var >= 0 &&
        (result.nodes_explored == 1 || result.nodes_explored % 200 == 0)) {
      dive(relax.x);
    }

    // Rounding heuristic: try to turn the fractional point into a feasible
    // integer incumbent (cheap compared to the LP solve; big win when the
    // warm start is far from optimal).
    if (branch_var >= 0 && options.rounding) {
      if (auto candidate = options.rounding(relax.x)) {
        bool integral_ok = candidate->size() == static_cast<size_t>(lp.num_vars());
        for (size_t j = 0; integral_ok && j < candidate->size(); ++j) {
          if (integer_mask[j] &&
              std::abs((*candidate)[j] - std::round((*candidate)[j])) > options.int_tol)
            integral_ok = false;
        }
        if (integral_ok && lp.feasible(*candidate, 1e-6)) {
          const double obj = lp.objective_value(*candidate);
          if (obj < incumbent) {
            incumbent = obj;
            result.x = *candidate;
            result.objective = obj;
            result.status = MilpStatus::kFeasible;
          }
        }
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent = relax.objective;
      result.x = relax.x;
      // Snap near-integral values exactly.
      for (size_t j = 0; j < result.x.size(); ++j)
        if (integer_mask[j]) result.x[j] = std::round(result.x[j]);
      result.objective = relax.objective;
      result.status = MilpStatus::kFeasible;
      continue;
    }

    // Branch: x_j <= floor(v)  |  x_j >= ceil(v).
    const double v = relax.x[branch_var];
    Node down = node;
    down.parent_bound = relax.objective;
    down.depth = node.depth + 1;
    down.bound_overrides.emplace_back(
        branch_var, std::make_pair(lp.lower[branch_var], std::floor(v)));
    Node up = node;
    up.parent_bound = relax.objective;
    up.depth = node.depth + 1;
    up.bound_overrides.emplace_back(
        branch_var, std::make_pair(std::ceil(v), lp.upper[branch_var]));
    open.push(std::move(down));
    open.push(std::move(up));
  }

  result.seconds = timer.seconds();
  // Lower bound: min over open/pruned frontier; if the search finished with
  // an incumbent and nothing open, the incumbent is optimal.
  double frontier = explored_bound_floor;
  if (!open.empty()) frontier = std::min(frontier, open.top().parent_bound);
  if (result.status == MilpStatus::kFeasible) {
    if (exhausted && open.empty()) {
      result.status = MilpStatus::kOptimal;
      result.best_bound = result.objective;
    } else {
      result.best_bound = std::min(frontier, result.objective);
    }
  } else if (open.empty() && exhausted) {
    result.status = MilpStatus::kInfeasible;
  } else {
    result.best_bound = (frontier == kInf) ? -kInf : frontier;
  }
  trace::incr("milp/bb_nodes", static_cast<int64_t>(result.nodes_explored));
  trace::incr("milp/lp_iterations", static_cast<int64_t>(result.lp_iterations));
  return result;
}

}  // namespace tensat
