// Disjoint-set forest with path halving and union by size.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "lang/node.h"

namespace tensat {

class UnionFind {
 public:
  /// Creates a fresh singleton set; returns its id.
  Id make_set() {
    parent_.push_back(static_cast<Id>(parent_.size()));
    size_.push_back(1);
    return parent_.back();
  }

  [[nodiscard]] size_t size() const { return parent_.size(); }

  Id find(Id x) const {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Unions the sets of a and b; returns the new representative.
  Id unite(Id a, Id b) {
    a = find(a);
    b = find(b);
    if (a == b) return a;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return a;
  }

 private:
  mutable std::vector<Id> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace tensat
