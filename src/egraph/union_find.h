// Disjoint-set forest with path halving and union by size.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "lang/node.h"

namespace tensat {

class UnionFind {
 public:
  /// Creates a fresh singleton set; returns its id.
  Id make_set() {
    parent_.push_back(static_cast<Id>(parent_.size()));
    size_.push_back(1);
    return parent_.back();
  }

  [[nodiscard]] size_t size() const { return parent_.size(); }

  /// Path-halving find. The halving write is skipped when it would not
  /// change anything, so on a fully compressed forest (see compress_all)
  /// find() is a pure read — concurrent finds from the parallel pattern
  /// search are then race-free.
  Id find(Id x) const {
    while (parent_[x] != x) {
      const Id p = parent_[x];
      const Id gp = parent_[p];
      if (p != gp) parent_[x] = gp;
      x = gp;
    }
    return x;
  }

  /// Points every element directly at its root. Until the next unite(),
  /// find() performs no writes, which makes concurrent lookups safe; called
  /// by EGraph::rebuild() so searches on a clean e-graph are read-only.
  void compress_all() {
    for (Id x = 0; x < static_cast<Id>(parent_.size()); ++x) parent_[x] = find(x);
  }

  /// Unions the sets of a and b; returns the new representative.
  Id unite(Id a, Id b) {
    a = find(a);
    b = find(b);
    if (a == b) return a;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return a;
  }

 private:
  mutable std::vector<Id> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace tensat
