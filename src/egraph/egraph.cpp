#include "egraph/egraph.h"

#include <algorithm>

#include "support/check.h"
#include "support/parallel.h"

namespace tensat {

void EGraph::set_cycle_journal(CycleJournal* journal) {
  TENSAT_CHECK(journal == nullptr || journal_ == nullptr || journal == journal_,
               "a cycle journal is already attached; detach it first "
               "(a displaced consumer would resume from a stale epoch)");
  journal_ = journal;
}

TNode EGraph::canonicalize(TNode node) const {
  for (Id& c : node.children) c = find(c);
  return node;
}

std::optional<Id> EGraph::lookup(TNode node) const {
  node = canonicalize(node);
  const auto& sh = shard(node);
  auto it = sh.find(node);
  if (it == sh.end()) return std::nullopt;
  return find(it->second);
}

Id EGraph::insert_new_class(TNode node, ValueInfo data) {
  const Id id = uf_.make_set();
  TENSAT_CHECK(id == static_cast<Id>(classes_.size()), "class id mismatch");
  classes_.emplace_back();
  EClass& cls = classes_[id];
  cls.data = std::move(data);
  cls.nodes.push_back(EClassNode{node, next_stamp_++, false});
  op_index_[static_cast<size_t>(node.op)].push_back(id);
  for (Id c : node.children) classes_[find(c)].parents.emplace_back(node, id);
  shard(node).emplace(std::move(node), id);
  ++num_enodes_total_;
  if (journal_ != nullptr) journal_->new_classes.push_back(id);
  ++version_;
  return id;
}

std::optional<Id> EGraph::try_add(TNode node) {
  node = canonicalize(node);
  const auto& sh = shard(node);
  auto it = sh.find(node);
  if (it != sh.end()) return find(it->second);

  // E-class analysis: infer the new node's data from its children's.
  std::vector<ValueInfo> inputs;
  inputs.reserve(node.children.size());
  for (Id c : node.children) inputs.push_back(classes_[find(c)].data);
  auto data = infer(node, inputs);
  if (!data.has_value()) return std::nullopt;  // shape check failed
  return insert_new_class(std::move(node), std::move(*data));
}

Id EGraph::try_add_planned(TNode node, const ValueInfo& data) {
  node = canonicalize(node);
  const auto& sh = shard(node);
  auto it = sh.find(node);
  if (it != sh.end()) return find(it->second);
  return insert_new_class(std::move(node), data);
}

Id EGraph::add(TNode node) {
  auto id = try_add(std::move(node));
  TENSAT_CHECK(id.has_value(), "e-graph add failed shape check");
  return *id;
}

std::unordered_map<Id, Id> EGraph::add_graph(const Graph& g) {
  TENSAT_CHECK(g.kind() == GraphKind::kConcrete, "cannot add a pattern graph");
  std::unordered_map<Id, Id> mapping;
  for (Id gid : g.topo_order()) {
    TNode node = g.node(gid);
    for (Id& c : node.children) c = mapping.at(c);
    mapping.emplace(gid, add(std::move(node)));
  }
  return mapping;
}

void EGraph::join_data(ValueInfo& into, const ValueInfo& from) {
  TENSAT_CHECK(into.kind == from.kind, "analysis merge: kind mismatch ("
                                           << to_string(into) << " vs "
                                           << to_string(from) << ")");
  TENSAT_CHECK(into.shape == from.shape && into.shape2 == from.shape2,
               "analysis merge: shape mismatch (" << to_string(into) << " vs "
                                                  << to_string(from) << ")");
  if (into.kind == VKind::kNum)
    TENSAT_CHECK(into.num == from.num, "analysis merge: integer mismatch");
  if (into.kind == VKind::kStr)
    TENSAT_CHECK(into.str == from.str, "analysis merge: string mismatch");
  // Equivalent terms compute the same value, so weight-constness discovered
  // through any representation holds for the whole class.
  into.weight_only = into.weight_only || from.weight_only;
  // Concat histories join to equality-or-empty: a class only promises a
  // split boundary that every representation agrees on. (A "keep the richer
  // one" join lets extraction pick a member that cannot actually honor the
  // boundary, which breaks reconstruction of the selected graph.)
  if (into.hist != from.hist) into.hist.clear();
}

bool EGraph::merge(Id a, Id b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (journal_ != nullptr) journal_->merges.emplace_back(a, b);
  const Id root = uf_.unite(a, b);
  const Id other = (root == a) ? b : a;
  EClass& winner = classes_[root];
  EClass& loser = classes_[other];
  join_data(winner.data, loser.data);
  ++winner.data_epoch;  // conservative: any join invalidates plan-time reads
  std::move(loser.nodes.begin(), loser.nodes.end(), std::back_inserter(winner.nodes));
  std::move(loser.parents.begin(), loser.parents.end(),
            std::back_inserter(winner.parents));
  loser.nodes.clear();
  loser.nodes.shrink_to_fit();
  loser.parents.clear();
  loser.parents.shrink_to_fit();
  pending_.push_back(root);
  ++version_;
  return true;
}

void EGraph::rebuild() {
  while (!pending_.empty()) {
    std::vector<Id> todo;
    todo.swap(pending_);
    std::sort(todo.begin(), todo.end());
    todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
    for (Id id : todo) repair(find(id));
  }
  // Compact the op-index: merges leave stale (now non-canonical) ids behind;
  // re-canonicalizing here keeps later classes_with_op() calls cheap.
  for (std::vector<Id>& bucket : op_index_) {
    for (Id& id : bucket) id = find(id);
    std::sort(bucket.begin(), bucket.end());
    bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
  }
  // Fully compress the union-find so find() on the clean e-graph is a pure
  // read; the parallel pattern search depends on this (support/parallel.h).
  uf_.compress_all();
#ifndef NDEBUG
  size_t total = 0;
  for (const auto& sh : hashcons_) total += sh.size();
  TENSAT_CHECK(total == num_enodes_total_, "hash-cons size counter drifted");
#endif
}

Id EGraph::commit_prepared(const std::vector<PreparedNode>& nodes,
                           size_t threads) {
  TENSAT_CHECK(pending_.empty(), "commit_prepared: e-graph must be clean");
  const Id base = static_cast<Id>(uf_.size());
  const size_t k = nodes.size();
  if (k == 0) return base;

  // Serial prologue: everything whose *order* is observable. Ids and class
  // slots (dense, ascending), stamps (ascending batch order), the journal,
  // and the version/size counters — identical for any thread count.
  for (size_t i = 0; i < k; ++i) {
    const Id id = uf_.make_set();
    TENSAT_CHECK(id == static_cast<Id>(classes_.size()), "class id mismatch");
    classes_.emplace_back();
    if (journal_ != nullptr) journal_->new_classes.push_back(id);
  }
  const uint32_t stamp_base = next_stamp_;
  next_stamp_ += static_cast<uint32_t>(k);
  num_enodes_total_ += k;
  version_ += k;

  // The fills: class bodies (partitioned by batch index), hash-cons and
  // op-index appends (partitioned by op symbol — each shard map is touched
  // by exactly one worker), parent-list appends (partitioned by child
  // class). Every container receives its entries in ascending batch order
  // no matter how shards map to workers, so the partition count below is a
  // pure throughput knob, not a semantics knob.
  constexpr size_t kShards = 16;
  auto fill_shard = [&](size_t s) {
    for (size_t i = 0; i < k; ++i) {
      const PreparedNode& p = nodes[i];
      const Id id = base + static_cast<Id>(i);
      if (i % kShards == s) {
        EClass& cls = classes_[id];
        cls.data = *p.data;
        cls.nodes.push_back(
            EClassNode{p.node, stamp_base + static_cast<uint32_t>(i), false});
      }
      if (static_cast<size_t>(p.node.op) % kShards == s) {
        op_index_[static_cast<size_t>(p.node.op)].push_back(id);
        shard(p.node).emplace(p.node, id);
      }
      for (const Id c : p.node.children) {
        if (static_cast<size_t>(c) % kShards == s) {
          classes_[c].parents.emplace_back(p.node, id);
        }
      }
    }
  };
  // Below ~2 items per shard the scan overhead dominates; run serially.
  if (threads <= 1 || k < 2 * kShards) {
    for (size_t s = 0; s < kShards; ++s) fill_shard(s);
  } else {
    parallel_for(kShards, threads, fill_shard);
  }
  return base;
}

void EGraph::repair(Id id) {
  EClass& cls = classes_[id];

  // Re-intern parents under their canonical forms; congruent parents merge.
  auto parents = std::move(cls.parents);
  cls.parents.clear();
  for (auto& [p_node, p_class] : parents) {
    // Drop the stale key (no-op if already gone). Canonicalization never
    // changes the op, so the stale and canonical forms live in one shard.
    num_enodes_total_ -= shard(p_node).erase(p_node);
    p_node = canonicalize(p_node);
    auto& sh = shard(p_node);
    auto it = sh.find(p_node);
    if (it != sh.end()) {
      merge(p_class, it->second);
      it->second = find(p_class);
    } else {
      sh.emplace(p_node, find(p_class));
      ++num_enodes_total_;
    }
  }
  // Deduplicate the repaired parent list.
  std::unordered_map<TNode, Id, TNodeHash> seen;
  EClass& cls2 = classes_[find(id)];  // `merge` above may have moved us
  for (auto& [p_node, p_class] : parents) {
    auto [it, inserted] = seen.emplace(p_node, find(p_class));
    if (!inserted) continue;
    cls2.parents.emplace_back(p_node, it->second);
  }

  // Canonicalize and deduplicate this class's own nodes. Duplicates keep the
  // earliest stamp; a node is filtered if any duplicate was (the filter list
  // identifies nodes structurally).
  EClass& cls3 = classes_[find(id)];
  std::unordered_map<TNode, size_t, TNodeHash> index;
  std::vector<EClassNode> nodes;
  nodes.reserve(cls3.nodes.size());
  for (EClassNode& entry : cls3.nodes) {
    entry.node = canonicalize(std::move(entry.node));
    auto it = index.find(entry.node);
    if (it == index.end()) {
      index.emplace(entry.node, nodes.size());
      nodes.push_back(std::move(entry));
    } else {
      EClassNode& kept = nodes[it->second];
      kept.stamp = std::min(kept.stamp, entry.stamp);
      if (entry.filtered && !kept.filtered) {
        kept.filtered = true;
      } else if (entry.filtered) {
        --num_filtered_;  // collapsed two filtered copies into one
      }
    }
  }
  cls3.nodes = std::move(nodes);
}

std::vector<Id> EGraph::canonical_classes() const {
  std::vector<Id> out;
  for (Id id = 0; id < static_cast<Id>(classes_.size()); ++id)
    if (find(id) == id) out.push_back(id);
  return out;
}

const std::vector<Id>& EGraph::classes_with_op(Op op) const {
  const std::vector<Id>& bucket = op_index_[static_cast<size_t>(op)];
  // On a clean e-graph the bucket is already canonical, sorted, and unique:
  // rebuild() compacted it, and try_add() only appends fresh (strictly
  // increasing, canonical) ids. Only un-rebuilt merges can make it stale.
  if (pending_.empty()) return bucket;
  // Dirty path: canonicalize once per (op, version) into the cache so
  // repeated queries between state changes are allocation-free. version_
  // bumps on every add/merge/filter, so staleness is impossible.
  OpCacheEntry& cache = op_cache_[static_cast<size_t>(op)];
  if (cache.version != version_) {
    cache.ids = bucket;
    for (Id& id : cache.ids) id = find(id);
    std::sort(cache.ids.begin(), cache.ids.end());
    cache.ids.erase(std::unique(cache.ids.begin(), cache.ids.end()),
                    cache.ids.end());
    cache.version = version_;
  }
  return cache.ids;
}

size_t EGraph::num_classes() const {
  size_t n = 0;
  for (Id id = 0; id < static_cast<Id>(classes_.size()); ++id)
    if (find(id) == id) ++n;
  return n;
}

size_t EGraph::num_enodes() const {
  size_t n = 0;
  for (Id id = 0; id < static_cast<Id>(classes_.size()); ++id) {
    if (find(id) != id) continue;
    for (const EClassNode& e : classes_[id].nodes)
      if (!e.filtered) ++n;
  }
  return n;
}

std::optional<Id> NodeBuffer::stage(TNode node) {
  // Canonicalize the real children against the (clean) snapshot; staged
  // children are already canonical by construction.
  bool all_real = true;
  for (Id& c : node.children) {
    if (is_staged(c)) {
      all_real = false;
    } else {
      c = eg_->find(c);
    }
  }
  // A node whose children all exist can itself already exist in the e-graph.
  if (all_real) {
    if (auto existing = eg_->lookup(node)) return existing;
  }
  auto memo = memo_.find(node);
  if (memo != memo_.end()) return memo->second;

  // E-class analysis over mixed real/staged children: same shape-check gate
  // as EGraph::try_add, evaluated against the planned data.
  inputs_scratch_.clear();
  inputs_scratch_.reserve(node.children.size());
  for (Id c : node.children) inputs_scratch_.push_back(data(c));
  auto inferred = infer(node, inputs_scratch_);
  if (!inferred.has_value()) return std::nullopt;  // shape check failed

  // Record each real child's data epoch: commit() uses it to prove the
  // inputs this infer just consumed are still bit-identical at commit time.
  std::vector<uint32_t> child_epochs;
  child_epochs.reserve(node.children.size());
  for (Id c : node.children)
    child_epochs.push_back(is_staged(c) ? 0 : eg_->data_epoch(c));

  const Id id = id_of(entries_.size());
  memo_.emplace(node, id);
  entries_.push_back(Entry{std::move(node), std::move(*inferred),
                           std::move(child_epochs), kInvalidId, false});
  return id;
}

const ValueInfo& NodeBuffer::data(Id id) const {
  if (!is_staged(id)) return eg_->data(id);
  return entries_[index_of(id)].data;
}

std::optional<Id> NodeBuffer::commit(EGraph& eg, Id id) {
  if (!is_staged(id)) return eg.find(id);
  Entry& entry = entries_[index_of(id)];
  if (entry.committed != kInvalidId) return eg.find(entry.committed);
  if (entry.commit_failed) return std::nullopt;
  TNode node = entry.node;  // entry.node stays in staged form (re-commit safe)
  // Reuse proof: if every child's live analysis data is bit-identical to
  // what stage()'s infer consumed, the planned data *is* the re-infer
  // result (infer is deterministic), and the second infer can be skipped.
  bool reuse = true;
  for (size_t i = 0; i < node.children.size(); ++i) {
    const Id orig = node.children[i];
    auto real = commit(eg, orig);
    if (!real.has_value()) {
      entry.commit_failed = true;
      return std::nullopt;
    }
    if (!is_staged(orig)) {
      // Real child: still its own canonical representative and untouched by
      // any merge since plan time => data unchanged (merge is the only
      // ValueInfo mutator and always bumps data_epoch).
      if (*real != orig || eg.data_epoch(orig) != entry.child_epochs[i])
        reuse = false;
    } else {
      // Staged child: it may have landed in a pre-existing class whose data
      // drifted from the plan (merges can coarsen hist / set weight_only,
      // and a congruent node added via a different route can differ more).
      // Compare the landed data against the planned data outright.
      if (!(eg.data(*real) == entries_[index_of(orig)].data)) reuse = false;
    }
    node.children[i] = *real;
  }
  std::optional<Id> added;
  if (reuse) {
    added = eg.try_add_planned(std::move(node), entry.data);
  } else {
    added = eg.try_add(std::move(node));
    if (!added.has_value()) {
      entry.commit_failed = true;
      return std::nullopt;
    }
  }
  entry.committed = *added;
  return added;
}

void EGraph::set_filtered(Id class_id, size_t index) {
  EClass& cls = classes_[find(class_id)];
  TENSAT_CHECK(index < cls.nodes.size(), "set_filtered: bad node index");
  if (!cls.nodes[index].filtered) {
    cls.nodes[index].filtered = true;
    if (journal_ != nullptr) journal_->filtered_classes.push_back(find(class_id));
    ++num_filtered_;
    ++version_;
  }
}

}  // namespace tensat
