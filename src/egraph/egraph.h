// The e-graph: a set of e-classes, each a set of equivalent e-nodes, with
// hash-consing and deferred congruence-closure maintenance (the rebuild
// algorithm of egg, Willsey et al. 2020). The tensor shape analysis
// (lang/shapes.h) is attached as the e-class analysis, which implements the
// paper's shape checking: try_add() refuses to create nodes whose shapes
// don't check out, which is how rewrites with shape preconditions are gated.
//
// Cycle filtering (paper §5.2) is supported through per-e-node `filtered`
// flags: a filtered node is treated as removed by the matcher, the cycle
// analyses, and extraction, mirroring the paper's filter list l (the ILP
// constraint "x_i = 0 for i in l").
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "egraph/union_find.h"
#include "lang/graph.h"
#include "lang/shapes.h"

namespace tensat {

/// The change journal incremental cycle analysis consumes
/// (cycles/incremental.h): every e-graph state change between two epoch
/// advances, recorded by try_add/merge/set_filtered while a journal is
/// attached (EGraph::set_cycle_journal). Ids are canonical at record time;
/// consumers re-canonicalize through find() when they drain the journal, so
/// later merges folding a recorded class away are harmless.
struct CycleJournal {
  /// E-class ids created by try_add (one per genuinely new e-node).
  std::vector<Id> new_classes;
  /// Real merges as (a, b) canonical-at-merge-time pairs, in merge order —
  /// both the apply phase's merges and rebuild()'s congruence merges.
  std::vector<std::pair<Id, Id>> merges;
  /// Classes (canonical at call time) that gained a newly filtered e-node.
  std::vector<Id> filtered_classes;

  void clear() {
    new_classes.clear();
    merges.clear();
    filtered_classes.clear();
  }
  [[nodiscard]] bool empty() const {
    return new_classes.empty() && merges.empty() && filtered_classes.empty();
  }
};

/// One e-node stored inside an e-class. `stamp` is the global insertion
/// counter used by efficient cycle filtering to pick "the last node added"
/// on a cycle; `filtered` marks membership in the filter list.
struct EClassNode {
  TNode node;
  uint32_t stamp{0};
  bool filtered{false};
};

struct EClass {
  std::vector<EClassNode> nodes;
  /// (parent e-node as inserted, parent class at insertion) — repaired lazily.
  std::vector<std::pair<TNode, Id>> parents;
  ValueInfo data;
  /// Bumped every time a merge joins another class's data into this one
  /// (whether or not the join changed anything — conservative). Lets the
  /// apply pipeline's commit phase prove "this class's analysis data is
  /// bit-identical to what the plan phase read" without storing a copy:
  /// find(c) == c and an unchanged epoch imply unchanged data, because
  /// merge() is the only ValueInfo mutator.
  uint32_t data_epoch{0};
};

class EGraph {
 public:
  EGraph()
      : op_index_(static_cast<size_t>(Op::kOpCount)),
        op_cache_(static_cast<size_t>(Op::kOpCount)) {}

  /// Adds an e-node (children are e-class ids; they get canonicalized).
  /// Returns nullopt if the analysis rejects it (shape check failure).
  std::optional<Id> try_add(TNode node);

  /// try_add, but with the analysis data supplied by the caller instead of
  /// re-running infer() — the commit half of the apply pipeline uses this to
  /// kill the double shape-infer on new nodes. Sound only when the caller
  /// can prove every child's analysis data is bit-identical to what the
  /// plan-time infer consumed (see NodeBuffer::commit's reuse guard); the
  /// result is then exactly what try_add would have produced. Never fails
  /// the shape check (the plan already passed it on identical inputs).
  Id try_add_planned(TNode node, const ValueInfo& data);

  /// Adds an e-node that must be valid; throws on shape-check failure.
  Id add(TNode node);

  /// Adds every node reachable from `g`'s roots; returns graph-id -> class-id.
  std::unordered_map<Id, Id> add_graph(const Graph& g);

  /// Unions two e-classes. Returns true if they were distinct (a real merge).
  /// The caller must rebuild() before relying on congruence invariants.
  bool merge(Id a, Id b);

  /// Restores the congruence and hash-consing invariants after merges.
  void rebuild();

  [[nodiscard]] Id find(Id id) const { return uf_.find(id); }
  /// Canonicalizes an e-node's children.
  [[nodiscard]] TNode canonicalize(TNode node) const;

  /// Const hash-cons probe: the canonical e-class already containing `node`
  /// (children are e-class ids; they get canonicalized), or nullopt if the
  /// node is not in the e-graph. Never mutates. On a clean (rebuilt) e-graph
  /// this is a pure read, safe for concurrent callers — the staging half of
  /// the apply pipeline's plan phase (see NodeBuffer).
  [[nodiscard]] std::optional<Id> lookup(TNode node) const;

  [[nodiscard]] const EClass& eclass(Id id) const { return classes_[find(id)]; }
  [[nodiscard]] const ValueInfo& data(Id id) const { return classes_[find(id)].data; }
  /// Merge counter of `id`'s canonical class (see EClass::data_epoch).
  [[nodiscard]] uint32_t data_epoch(Id id) const {
    return classes_[find(id)].data_epoch;
  }

  /// Ids of all canonical (live) e-classes.
  [[nodiscard]] std::vector<Id> canonical_classes() const;

  /// Canonical ids (sorted, deduplicated) of every e-class containing an
  /// e-node with operator `op`. Maintained incrementally: try_add() appends
  /// to the per-op bucket and rebuild() re-canonicalizes it, so the result
  /// may conservatively include classes whose only `op` nodes are filtered
  /// (harmless to the matcher: those classes simply yield no matches). This
  /// is the root-operator index the e-matching VM dispatches through.
  ///
  /// On a clean (rebuilt) e-graph the per-op bucket is served directly —
  /// allocation-free and safe for concurrent readers (the parallel search
  /// path). With un-rebuilt merges pending, the canonicalized bucket is
  /// computed once into a version-keyed cache and reused until the next
  /// state change; that dirty path is single-threaded only. The reference
  /// stays valid until the next non-const e-graph operation.
  [[nodiscard]] const std::vector<Id>& classes_with_op(Op op) const;

  /// Number of canonical e-classes.
  [[nodiscard]] size_t num_classes() const;
  /// Number of e-nodes, excluding filtered ones.
  [[nodiscard]] size_t num_enodes() const;
  /// Number of e-nodes including filtered ones (the paper's e-graph size).
  /// A maintained counter (the hash-cons is sharded by op symbol).
  [[nodiscard]] size_t num_enodes_total() const { return num_enodes_total_; }

  /// One node of a sharded batch commit (see commit_prepared): the e-node
  /// in final-id form plus a pointer to its plan-time analysis data (owned
  /// by the caller, alive until commit_prepared returns).
  struct PreparedNode {
    TNode node;
    const ValueInfo* data;
  };

  /// Batch-inserts `nodes` as brand-new e-classes with pre-assigned dense
  /// ids base .. base+k-1, where base == num_ids() at call time; node i's
  /// children may reference canonical existing classes or earlier batch
  /// nodes by final id (base + j, j < i). The caller guarantees the e-graph
  /// is clean (rebuilt, no pending merges), every node is absent from the
  /// hash-cons, children are canonical, and the batch has no duplicates —
  /// exactly what the optimizer's sharded-commit resolve pass establishes.
  ///
  /// All ordered artifacts (ids, stamps, journal entries, version) are
  /// assigned serially up front; only the hash-cons / op-index / parent /
  /// class-body fills run on the pool, partitioned over a fixed shard count
  /// by op symbol (hash-cons, op-index) and child class (parents). Every
  /// per-container append happens in ascending batch order regardless of
  /// the partition, so the resulting e-graph is bit-identical for any
  /// `threads` value, including 1. Returns base.
  Id commit_prepared(const std::vector<PreparedNode>& nodes, size_t threads);

  /// Marks an e-node of `class_id` as filtered (adds it to the filter list).
  /// `index` addresses eclass(class_id).nodes.
  void set_filtered(Id class_id, size_t index);
  [[nodiscard]] size_t num_filtered() const { return num_filtered_; }

  /// Monotone counter bumped by every state change (add / merge); equal
  /// versions before and after an exploration iteration mean saturation.
  [[nodiscard]] uint64_t version() const { return version_; }

  /// Total e-class ids ever created (canonical or not). Ids are dense in
  /// [0, num_ids()), which is what lets cycle analysis index bitset rows by
  /// id instead of hashing.
  [[nodiscard]] size_t num_ids() const { return uf_.size(); }

  /// Attaches (or, with nullptr, detaches) a change journal: while attached,
  /// try_add/merge/set_filtered append to it. The journal must outlive the
  /// attachment and is drained/cleared by its consumer, never by the
  /// e-graph. Detach before moving the e-graph. Attaching a second journal
  /// over a live one throws: the displaced consumer would silently stop
  /// seeing changes and resume from a stale epoch — exactly the bug a
  /// session that persists its cycle analysis across run_exploration calls
  /// would otherwise hit (service_test.cpp pins this).
  void set_cycle_journal(CycleJournal* journal);
  [[nodiscard]] CycleJournal* cycle_journal() const { return journal_; }

  /// The designated root e-class (set after add_graph via set_root).
  void set_root(Id id) { root_ = id; }
  [[nodiscard]] Id root() const { return find(root_); }

 private:
  void repair(Id id);
  static void join_data(ValueInfo& into, const ValueInfo& from);
  /// Creates a brand-new singleton class for `node` (already canonical and
  /// known absent from the hash-cons) carrying `data`. The shared tail of
  /// try_add / try_add_planned.
  Id insert_new_class(TNode node, ValueInfo data);
  /// The hash-cons shard holding `node` (sharded by op symbol so disjoint
  /// regions of a batch commit can fill concurrently).
  std::unordered_map<TNode, Id, TNodeHash>& shard(const TNode& node) {
    return hashcons_[static_cast<size_t>(node.op)];
  }
  [[nodiscard]] const std::unordered_map<TNode, Id, TNodeHash>& shard(
      const TNode& node) const {
    return hashcons_[static_cast<size_t>(node.op)];
  }

  /// classes_with_op's dirty-path memo: the canonicalized bucket for one op,
  /// valid while the e-graph stays at `version`.
  struct OpCacheEntry {
    uint64_t version{UINT64_MAX};
    std::vector<Id> ids;
  };

  UnionFind uf_;
  // op -> e-class ids with at least one such e-node; ids may be stale
  // (non-canonical) or duplicated between rebuilds, never missing.
  std::vector<std::vector<Id>> op_index_;
  mutable std::vector<OpCacheEntry> op_cache_;
  // Deque: eclass()/data() references must survive later try_add() appends.
  std::deque<EClass> classes_;
  // Hash-cons, sharded by op symbol (one map per op). Serial code treats the
  // shards as one logical map through shard(); commit_prepared fills
  // disjoint shards concurrently. num_enodes_total_ tracks the summed size.
  std::vector<std::unordered_map<TNode, Id, TNodeHash>> hashcons_{
      static_cast<size_t>(Op::kOpCount)};
  size_t num_enodes_total_{0};
  std::vector<Id> pending_;
  CycleJournal* journal_{nullptr};
  uint64_t version_{0};
  uint32_t next_stamp_{0};
  size_t num_filtered_{0};
  Id root_{kInvalidId};
};

/// A staging arena for would-be e-node additions against a *const* e-graph:
/// the plan half of the apply pipeline's plan/commit split. stage() shape-
/// checks and hash-conses candidate nodes without touching the e-graph;
/// nodes not already present get negative placeholder ids (is_staged) that
/// later staged nodes may use as children. commit() then replays a staged
/// node (children first) into the real e-graph through the ordinary try_add
/// path, so duplicates staged by concurrent planners collapse through the
/// real hash-cons.
///
/// The snapshot e-graph must be clean (rebuilt) while staging: stage() then
/// only performs pure reads, so any number of NodeBuffers can plan against
/// the same e-graph from different threads.
class NodeBuffer {
 public:
  explicit NodeBuffer(const EGraph& eg) : eg_(&eg) {}

  /// Plans adding `node`. Children may be canonical e-class ids or staged
  /// ids from this buffer. Returns the existing e-class id if the e-graph
  /// (or this buffer) already has the node, a fresh staged id otherwise, or
  /// nullopt if the analysis rejects it (shape check failure).
  std::optional<Id> stage(TNode node);

  /// Analysis data of a real e-class or a staged node.
  [[nodiscard]] const ValueInfo& data(Id id) const;

  /// True for placeholder ids handed out by stage(). Staged ids start at -2
  /// so they never collide with kInvalidId, which planning scratch buffers
  /// use as their "unset" sentinel.
  [[nodiscard]] static constexpr bool is_staged(Id id) { return id < kInvalidId; }

  /// Number of staged (not already present) nodes.
  [[nodiscard]] size_t size() const { return entries_.size(); }

  /// Commits the node behind `id` into `eg` (the same e-graph this buffer
  /// was planned against, possibly mutated since by earlier commits),
  /// children first, memoizing per entry. Real ids pass through find().
  /// Returns nullopt if a shape check fails at commit time — possible when
  /// intervening merges coarsened an analysis value the plan relied on.
  ///
  /// Analysis reuse: when every child's live analysis data is provably
  /// bit-identical to what stage()'s infer consumed (real children: still
  /// canonical + unchanged data_epoch; staged children: landed class data
  /// equals the planned data), the planned ValueInfo is handed to
  /// try_add_planned and the commit-time re-infer is skipped — infer() is
  /// deterministic, so the result is exactly the legacy one. Any drift
  /// falls back to the full try_add re-infer path, shape failures included.
  std::optional<Id> commit(EGraph& eg, Id id);

  /// The snapshot this buffer stages against.
  [[nodiscard]] const EGraph& egraph() const { return *eg_; }

  /// Batch-resolve support (the optimizer's sharded commit reads staged
  /// entries directly instead of replaying them through commit()): the
  /// staged entry behind `id`, children still in mixed real/staged form,
  /// and its planned analysis data. `staged_index` maps a staged id to its
  /// dense entry index in [0, size()).
  [[nodiscard]] const TNode& staged_node(Id id) const {
    return entries_[index_of(id)].node;
  }
  [[nodiscard]] const ValueInfo& staged_data(Id id) const {
    return entries_[index_of(id)].data;
  }
  [[nodiscard]] static constexpr size_t staged_index(Id id) {
    return index_of(id);
  }

 private:
  struct Entry {
    TNode node;  // children: canonical class ids or staged ids
    ValueInfo data;
    /// Per-child EGraph::data_epoch captured at stage() time (0 for staged
    /// children — their guard compares landed data directly). Parallel to
    /// node.children; powers commit()'s analysis-reuse proof.
    std::vector<uint32_t> child_epochs;
    Id committed{kInvalidId};
    bool commit_failed{false};
  };
  [[nodiscard]] static constexpr size_t index_of(Id id) {
    return static_cast<size_t>(-(id + 2));
  }
  [[nodiscard]] static constexpr Id id_of(size_t index) {
    return -static_cast<Id>(index) - 2;
  }

  const EGraph* eg_;
  std::vector<Entry> entries_;
  std::unordered_map<TNode, Id, TNodeHash> memo_;  // staged-form node -> id
  std::vector<ValueInfo> inputs_scratch_;          // stage()'s infer inputs
};

}  // namespace tensat
