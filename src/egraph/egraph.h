// The e-graph: a set of e-classes, each a set of equivalent e-nodes, with
// hash-consing and deferred congruence-closure maintenance (the rebuild
// algorithm of egg, Willsey et al. 2020). The tensor shape analysis
// (lang/shapes.h) is attached as the e-class analysis, which implements the
// paper's shape checking: try_add() refuses to create nodes whose shapes
// don't check out, which is how rewrites with shape preconditions are gated.
//
// Cycle filtering (paper §5.2) is supported through per-e-node `filtered`
// flags: a filtered node is treated as removed by the matcher, the cycle
// analyses, and extraction, mirroring the paper's filter list l (the ILP
// constraint "x_i = 0 for i in l").
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "egraph/union_find.h"
#include "lang/graph.h"
#include "lang/shapes.h"

namespace tensat {

/// One e-node stored inside an e-class. `stamp` is the global insertion
/// counter used by efficient cycle filtering to pick "the last node added"
/// on a cycle; `filtered` marks membership in the filter list.
struct EClassNode {
  TNode node;
  uint32_t stamp{0};
  bool filtered{false};
};

struct EClass {
  std::vector<EClassNode> nodes;
  /// (parent e-node as inserted, parent class at insertion) — repaired lazily.
  std::vector<std::pair<TNode, Id>> parents;
  ValueInfo data;
};

class EGraph {
 public:
  EGraph() : op_index_(static_cast<size_t>(Op::kOpCount)) {}

  /// Adds an e-node (children are e-class ids; they get canonicalized).
  /// Returns nullopt if the analysis rejects it (shape check failure).
  std::optional<Id> try_add(TNode node);

  /// Adds an e-node that must be valid; throws on shape-check failure.
  Id add(TNode node);

  /// Adds every node reachable from `g`'s roots; returns graph-id -> class-id.
  std::unordered_map<Id, Id> add_graph(const Graph& g);

  /// Unions two e-classes. Returns true if they were distinct (a real merge).
  /// The caller must rebuild() before relying on congruence invariants.
  bool merge(Id a, Id b);

  /// Restores the congruence and hash-consing invariants after merges.
  void rebuild();

  [[nodiscard]] Id find(Id id) const { return uf_.find(id); }
  /// Canonicalizes an e-node's children.
  [[nodiscard]] TNode canonicalize(TNode node) const;

  [[nodiscard]] const EClass& eclass(Id id) const { return classes_[find(id)]; }
  [[nodiscard]] const ValueInfo& data(Id id) const { return classes_[find(id)].data; }

  /// Ids of all canonical (live) e-classes.
  [[nodiscard]] std::vector<Id> canonical_classes() const;

  /// Canonical ids (sorted, deduplicated) of every e-class containing an
  /// e-node with operator `op`. Maintained incrementally: try_add() appends
  /// to the per-op bucket and rebuild() re-canonicalizes it, so the result
  /// may conservatively include classes whose only `op` nodes are filtered
  /// (harmless to the matcher: those classes simply yield no matches). This
  /// is the root-operator index the e-matching VM dispatches through.
  [[nodiscard]] std::vector<Id> classes_with_op(Op op) const;

  /// Number of canonical e-classes.
  [[nodiscard]] size_t num_classes() const;
  /// Number of e-nodes, excluding filtered ones.
  [[nodiscard]] size_t num_enodes() const;
  /// Number of e-nodes including filtered ones (the paper's e-graph size).
  [[nodiscard]] size_t num_enodes_total() const { return hashcons_.size(); }

  /// Marks an e-node of `class_id` as filtered (adds it to the filter list).
  /// `index` addresses eclass(class_id).nodes.
  void set_filtered(Id class_id, size_t index);
  [[nodiscard]] size_t num_filtered() const { return num_filtered_; }

  /// Monotone counter bumped by every state change (add / merge); equal
  /// versions before and after an exploration iteration mean saturation.
  [[nodiscard]] uint64_t version() const { return version_; }

  /// The designated root e-class (set after add_graph via set_root).
  void set_root(Id id) { root_ = id; }
  [[nodiscard]] Id root() const { return find(root_); }

 private:
  void repair(Id id);
  static void join_data(ValueInfo& into, const ValueInfo& from);

  UnionFind uf_;
  // op -> e-class ids with at least one such e-node; ids may be stale
  // (non-canonical) or duplicated between rebuilds, never missing.
  std::vector<std::vector<Id>> op_index_;
  // Deque: eclass()/data() references must survive later try_add() appends.
  std::deque<EClass> classes_;
  std::unordered_map<TNode, Id, TNodeHash> hashcons_;
  std::vector<Id> pending_;
  uint64_t version_{0};
  uint32_t next_stamp_{0};
  size_t num_filtered_{0};
  Id root_{kInvalidId};
};

}  // namespace tensat
