// Text serialization for tensor graphs. The format is line-based and
// explicitly shared (one line per node, children by id), so DAGs round-trip
// without the exponential blowup of plain S-expressions:
//
//     tensat-graph v1
//     0 str x@64_512
//     1 input 0
//     2 num 0
//     3 str w@512_512
//     4 weight 3
//     5 matmul 2 1 4
//     roots 5
//
// Node ids are dense and topologically ordered (children first). Concrete
// graphs re-run shape inference on load, so a corrupted file cannot produce
// an ill-formed graph.
#pragma once

#include <iosfwd>
#include <string>

#include "lang/graph.h"

namespace tensat {

/// Writes the subgraph reachable from `g`'s roots.
void save_graph(const Graph& g, std::ostream& os);
std::string save_graph_to_string(const Graph& g);

/// Parses a graph in the format above. Throws tensat::Error on malformed
/// input (unknown ops, dangling ids, shape-check failures, bad header).
Graph load_graph(std::istream& is, GraphKind kind = GraphKind::kConcrete);
Graph load_graph_from_string(const std::string& text,
                             GraphKind kind = GraphKind::kConcrete);

}  // namespace tensat
