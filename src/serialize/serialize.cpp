#include "serialize/serialize.h"

#include <cctype>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "support/check.h"

namespace tensat {
namespace {

constexpr const char* kHeader = "tensat-graph v1";

// Strict integer token parse: the whole token must be a decimal integer.
// `ls >> int` would silently stop at the first non-numeric token, truncating
// child lists / roots lines instead of rejecting them — a service feeding
// untrusted text through load_graph needs the hard error.
int parse_id_token(const std::string& tok, const char* what) {
  int value = 0;
  auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
  TENSAT_CHECK(ec == std::errc() && ptr == tok.data() + tok.size(),
               "bad " << what << " '" << tok << "'");
  return value;
}

// Rejects trailing tokens on a line whose grammar is already complete
// (num/str/var payload lines; op lines consume children themselves).
void expect_line_end(std::istringstream& ls, const std::string& line) {
  std::string extra;
  TENSAT_CHECK(!(ls >> extra),
               "trailing content '" << extra << "' on line: " << line);
}

}  // namespace

void save_graph(const Graph& g, std::ostream& os) {
  os << kHeader << '\n';
  std::unordered_map<Id, int> renumber;
  for (Id id : g.topo_order()) {
    const int out_id = static_cast<int>(renumber.size());
    renumber.emplace(id, out_id);
    const TNode& n = g.node(id);
    os << out_id << ' ' << op_info(n.op).name;
    if (n.op == Op::kNum) os << ' ' << n.num;
    if (n.op == Op::kStr || n.op == Op::kVar) os << ' ' << n.str.str();
    for (Id c : n.children) os << ' ' << renumber.at(c);
    os << '\n';
  }
  os << "roots";
  for (Id root : g.roots()) os << ' ' << renumber.at(root);
  os << '\n';
}

std::string save_graph_to_string(const Graph& g) {
  std::ostringstream os;
  save_graph(g, os);
  return os.str();
}

Graph load_graph(std::istream& is, GraphKind kind) {
  std::string line;
  TENSAT_CHECK(std::getline(is, line) && line == kHeader,
               "bad header: expected '" << kHeader << "'");
  Graph g(kind);
  std::unordered_map<int, Id> ids;
  bool saw_roots = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "roots") {
      std::vector<Id> roots;
      std::string tok;
      while (ls >> tok) {
        const int rid = parse_id_token(tok, "root id");
        auto it = ids.find(rid);
        TENSAT_CHECK(it != ids.end(), "roots reference unknown id " << rid);
        roots.push_back(it->second);
      }
      TENSAT_CHECK(!roots.empty(), "empty roots line");
      g.set_roots(std::move(roots));
      saw_roots = true;
      break;
    }
    const int out_id = parse_id_token(first, "node id");
    TENSAT_CHECK(out_id >= 0, "negative node id " << out_id);
    TENSAT_CHECK(ids.count(out_id) == 0, "duplicate node id " << out_id);
    std::string op_name;
    TENSAT_CHECK(static_cast<bool>(ls >> op_name), "missing op on line: " << line);
    TNode node;
    if (op_name == "num") {
      node.op = Op::kNum;
      TENSAT_CHECK(static_cast<bool>(ls >> node.num), "num without value");
      expect_line_end(ls, line);
    } else if (op_name == "str" || op_name == "var") {
      node.op = op_name == "str" ? Op::kStr : Op::kVar;
      std::string text;
      TENSAT_CHECK(static_cast<bool>(ls >> text), op_name << " without payload");
      node.str = Symbol(text);
      expect_line_end(ls, line);
    } else {
      auto op = op_from_name(op_name);
      TENSAT_CHECK(op.has_value(), "unknown op '" << op_name << "'");
      node.op = *op;
      std::string tok;
      while (ls >> tok) {
        const int child = parse_id_token(tok, "child id");
        auto it = ids.find(child);
        TENSAT_CHECK(it != ids.end(), "child references unknown id " << child);
        node.children.push_back(it->second);
      }
    }
    ids.emplace(out_id, g.add(std::move(node)));
  }
  TENSAT_CHECK(saw_roots, "missing roots line");
  // The roots line terminates the graph; anything after it is a malformed
  // document, not ignorable trailing data (a concatenated second graph or a
  // garbled upload must not half-parse).
  while (std::getline(is, line)) {
    for (char c : line)
      TENSAT_CHECK(std::isspace(static_cast<unsigned char>(c)),
                   "content after roots line: " << line);
  }
  return g;
}

Graph load_graph_from_string(const std::string& text, GraphKind kind) {
  std::istringstream is(text);
  return load_graph(is, kind);
}

}  // namespace tensat
