#include "serialize/serialize.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "support/check.h"

namespace tensat {
namespace {

constexpr const char* kHeader = "tensat-graph v1";

}  // namespace

void save_graph(const Graph& g, std::ostream& os) {
  os << kHeader << '\n';
  std::unordered_map<Id, int> renumber;
  for (Id id : g.topo_order()) {
    const int out_id = static_cast<int>(renumber.size());
    renumber.emplace(id, out_id);
    const TNode& n = g.node(id);
    os << out_id << ' ' << op_info(n.op).name;
    if (n.op == Op::kNum) os << ' ' << n.num;
    if (n.op == Op::kStr || n.op == Op::kVar) os << ' ' << n.str.str();
    for (Id c : n.children) os << ' ' << renumber.at(c);
    os << '\n';
  }
  os << "roots";
  for (Id root : g.roots()) os << ' ' << renumber.at(root);
  os << '\n';
}

std::string save_graph_to_string(const Graph& g) {
  std::ostringstream os;
  save_graph(g, os);
  return os.str();
}

Graph load_graph(std::istream& is, GraphKind kind) {
  std::string line;
  TENSAT_CHECK(std::getline(is, line) && line == kHeader,
               "bad header: expected '" << kHeader << "'");
  Graph g(kind);
  std::unordered_map<int, Id> ids;
  bool saw_roots = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "roots") {
      std::vector<Id> roots;
      int rid = 0;
      while (ls >> rid) {
        auto it = ids.find(rid);
        TENSAT_CHECK(it != ids.end(), "roots reference unknown id " << rid);
        roots.push_back(it->second);
      }
      TENSAT_CHECK(!roots.empty(), "empty roots line");
      g.set_roots(std::move(roots));
      saw_roots = true;
      break;
    }
    int out_id = 0;
    {
      auto [ptr, ec] = std::from_chars(first.data(), first.data() + first.size(), out_id);
      TENSAT_CHECK(ec == std::errc() && ptr == first.data() + first.size(),
                   "bad node id '" << first << "'");
    }
    TENSAT_CHECK(ids.count(out_id) == 0, "duplicate node id " << out_id);
    std::string op_name;
    TENSAT_CHECK(static_cast<bool>(ls >> op_name), "missing op on line: " << line);
    TNode node;
    if (op_name == "num") {
      node.op = Op::kNum;
      TENSAT_CHECK(static_cast<bool>(ls >> node.num), "num without value");
    } else if (op_name == "str" || op_name == "var") {
      node.op = op_name == "str" ? Op::kStr : Op::kVar;
      std::string text;
      TENSAT_CHECK(static_cast<bool>(ls >> text), op_name << " without payload");
      node.str = Symbol(text);
    } else {
      auto op = op_from_name(op_name);
      TENSAT_CHECK(op.has_value(), "unknown op '" << op_name << "'");
      node.op = *op;
      int child = 0;
      while (ls >> child) {
        auto it = ids.find(child);
        TENSAT_CHECK(it != ids.end(), "child references unknown id " << child);
        node.children.push_back(it->second);
      }
    }
    ids.emplace(out_id, g.add(std::move(node)));
  }
  TENSAT_CHECK(saw_roots, "missing roots line");
  return g;
}

Graph load_graph_from_string(const std::string& text, GraphKind kind) {
  std::istringstream is(text);
  return load_graph(is, kind);
}

}  // namespace tensat
