#!/usr/bin/env python3
"""Validate Prometheus text-exposition conformance of a metrics scrape.

Usage: check_prometheus.py SCRAPE [EARLIER_SCRAPE ...]

Checks, on the first (latest) file:
  * every sample line parses as  name{labels} value  with a valid metric
    name and finite value;
  * every sample is preceded by a # TYPE line for its family (histogram
    samples belong to the family minus the _bucket/_sum/_count suffix);
  * counter and histogram samples are non-negative;
  * per histogram instance: the _bucket series is cumulative (counts never
    decrease as `le` grows), ends in an le="+Inf" bucket, and that bucket
    equals the _count sample.

When earlier scrape files are given (oldest last), additionally checks that
every counter and histogram _count/_bucket value is monotone non-decreasing
from each earlier scrape to the latest — the Prometheus counter contract
across scrapes of a live service.

Exits non-zero with a message on the first violation.
"""
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{label="value",...} value   — label values may contain escaped chars.
SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\})?'
    r' (?P<value>\S+)$'
)


def fail(msg):
    sys.stderr.write("check_prometheus: FAIL: %s\n" % msg)
    sys.exit(1)


def base_family(name, families):
    """Map a sample name to its # TYPE family (histograms expose suffixes)."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def parse(path):
    """Returns (families: name -> type, samples: [(name, labels, value)])."""
    families = {}
    samples = []
    for lineno, raw in enumerate(open(path), 1):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                fail("%s:%d malformed TYPE line: %r" % (path, lineno, line))
            name, mtype = parts[2], parts[3]
            if not NAME_RE.match(name):
                fail("%s:%d bad family name %r" % (path, lineno, name))
            if mtype not in ("counter", "gauge", "histogram"):
                fail("%s:%d unknown metric type %r" % (path, lineno, mtype))
            if name in families:
                fail("%s:%d duplicate TYPE line for %s" % (path, lineno, name))
            families[name] = mtype
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        m = SAMPLE_RE.match(line)
        if not m:
            fail("%s:%d unparseable sample line: %r" % (path, lineno, line))
        try:
            value = float(m.group("value"))
        except ValueError:
            fail("%s:%d non-numeric value: %r" % (path, lineno, line))
        if math.isnan(value):
            fail("%s:%d NaN sample value: %r" % (path, lineno, line))
        samples.append((m.group("name"), m.group("labels") or "", value))
    return families, samples


def check_scrape(path):
    families, samples = parse(path)
    if not samples:
        fail("%s: no samples" % path)

    # histogram instance -> list of (le, count) in exposition order; and
    # instance -> _count value, for the cumulativity check.
    buckets = {}
    counts = {}
    for name, labels, value in samples:
        family = base_family(name, families)
        if family is None:
            fail("%s: sample %s has no # TYPE line" % (path, name))
        mtype = families[family]
        if mtype in ("counter", "histogram") and value < 0:
            fail("%s: negative %s sample %s %r" % (path, mtype, name, value))
        if mtype == "histogram":
            # Instance key = labels minus the le pair.
            le = None
            kept = []
            for pair in filter(None, labels.split(",")):
                if pair.startswith('le="'):
                    le = pair[4:-1]
                else:
                    kept.append(pair)
            instance = (family, ",".join(kept))
            if name.endswith("_bucket"):
                if le is None:
                    fail("%s: bucket without le label: %s{%s}" % (path, name, labels))
                buckets.setdefault(instance, []).append((le, value))
            elif name.endswith("_count"):
                counts[instance] = value

    for instance, series in sorted(buckets.items()):
        prev = -1.0
        for le, value in series:
            if value < prev:
                fail("%s: histogram %s not cumulative at le=%s (%r < %r)"
                     % (path, instance, le, value, prev))
            prev = value
        if series[-1][0] != "+Inf":
            fail("%s: histogram %s bucket series does not end at le=\"+Inf\""
                 % (path, instance))
        if instance not in counts:
            fail("%s: histogram %s has buckets but no _count" % (path, instance))
        if series[-1][1] != counts[instance]:
            fail("%s: histogram %s +Inf bucket %r != _count %r"
                 % (path, instance, series[-1][1], counts[instance]))

    return families, samples


def monotone_view(families, samples):
    """All samples that must never decrease across scrapes."""
    view = {}
    for name, labels, value in samples:
        family = base_family(name, families)
        mtype = families[family]
        if mtype == "counter" or (
            mtype == "histogram" and not name.endswith("_sum")
        ):
            view[(name, labels)] = value
    return view


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    latest_families, latest_samples = check_scrape(argv[1])
    latest = monotone_view(latest_families, latest_samples)
    for earlier_path in argv[2:]:
        earlier_families, earlier_samples = check_scrape(earlier_path)
        earlier = monotone_view(earlier_families, earlier_samples)
        for key, value in earlier.items():
            if key not in latest:
                fail("series %s present in %s but missing from %s"
                     % (key, earlier_path, argv[1]))
            if latest[key] < value:
                fail("series %s decreased: %r in %s -> %r in %s"
                     % (key, value, earlier_path, latest[key], argv[1]))
    print("check_prometheus: OK (%d samples, %d families, %d earlier scrape(s))"
          % (len(latest_samples), len(latest_families), len(argv) - 2))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
