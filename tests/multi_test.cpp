#include <gtest/gtest.h>

#include "rewrite/multi.h"
#include "rewrite/rules.h"
#include "support/check.h"

namespace tensat {
namespace {

TEST(Multi, CanonicalizationRenamesInTraversalOrder) {
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(ewadd ?foo (ewmul ?bar ?foo))");
  std::vector<std::pair<Symbol, Symbol>> rename;
  const CanonicalPattern canon = canonicalize_pattern(pat, root, &rename);
  EXPECT_EQ(canon.key, "(ewadd ?$0 (ewmul ?$1 ?$0))");
  ASSERT_EQ(rename.size(), 2u);
  EXPECT_EQ(rename[0].first.str(), "$0");
  EXPECT_EQ(rename[0].second.str(), "foo");
  EXPECT_EQ(rename[1].second.str(), "bar");
}

TEST(Multi, AlphaEquivalentPatternsShareCanonicalForm) {
  Graph p1(GraphKind::kPattern), p2(GraphKind::kPattern);
  const Id r1 = parse_into(p1, "(matmul ?act ?a ?b)");
  const Id r2 = parse_into(p2, "(matmul ?mode ?x ?y)");
  EXPECT_EQ(canonicalize_pattern(p1, r1, nullptr).key,
            canonicalize_pattern(p2, r2, nullptr).key);
}

TEST(Multi, DistinctStructuresDiffer) {
  Graph p1(GraphKind::kPattern), p2(GraphKind::kPattern);
  const Id r1 = parse_into(p1, "(matmul ?act ?a ?b)");
  const Id r2 = parse_into(p2, "(matmul ?act ?a ?a)");
  EXPECT_NE(canonicalize_pattern(p1, r1, nullptr).key,
            canonicalize_pattern(p2, r2, nullptr).key);
}

TEST(Multi, PlanDeduplicatesAcrossRules) {
  // The two multi-pattern matmul rules share the canonical source pattern
  // (matmul ?act ?a ?b) — the plan must search it once.
  std::vector<Rewrite> rules;
  rules.push_back(make_rewrite("r1", "(matmul ?act ?a ?b) (matmul ?act ?a ?c)",
                               "(matmul ?act ?a ?b) (matmul ?act ?a ?c)"));
  rules.push_back(make_rewrite("r2", "(matmul ?m ?x ?w) (matmul ?m ?y ?w)",
                               "(matmul ?m ?x ?w) (matmul ?m ?y ?w)"));
  const MultiPlan plan = build_multi_plan(rules);
  EXPECT_EQ(plan.patterns.size(), 1u);  // all four sources are alpha-equivalent
  EXPECT_EQ(plan.rule_sources[0].size(), 2u);
  EXPECT_EQ(plan.rule_sources[1].size(), 2u);
}

TEST(Multi, DefaultRulesPlanIsShared) {
  const auto& rules = default_rules();
  const MultiPlan plan = build_multi_plan(rules);
  size_t total_sources = 0;
  for (const auto& s : plan.rule_sources) total_sources += s.size();
  EXPECT_GT(total_sources, plan.patterns.size());  // dedup happened
}

TEST(Multi, DecanonicalizeMapsBack) {
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(ewadd ?p ?q)");
  std::vector<std::pair<Symbol, Symbol>> rename;
  canonicalize_pattern(pat, root, &rename);
  Subst canon_subst;
  canon_subst.bind(Symbol("$0"), 7);
  canon_subst.bind(Symbol("$1"), 9);
  const Subst orig = decanonicalize(canon_subst, rename);
  EXPECT_EQ(orig.get(Symbol("p")), std::optional<Id>(7));
  EXPECT_EQ(orig.get(Symbol("q")), std::optional<Id>(9));
}

TEST(Multi, SubstMergeCompatibility) {
  Subst a, b;
  a.bind(Symbol("x"), 1);
  b.bind(Symbol("x"), 1);
  b.bind(Symbol("y"), 2);
  auto merged = Subst::merged(a, b);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->get(Symbol("y")), std::optional<Id>(2));
  Subst c;
  c.bind(Symbol("x"), 3);  // conflicts
  EXPECT_FALSE(Subst::merged(a, c).has_value());
}

TEST(Multi, RewriteFactoryValidations) {
  EXPECT_THROW(make_rewrite("bad-count", "(relu ?x) (tanh ?x)", "(relu ?x)"), Error);
  EXPECT_THROW(make_rewrite("unbound", "(relu ?x)", "(ewadd ?x ?y)"), Error);
  const Rewrite ok = make_rewrite("ok", "(relu ?x)", "(relu ?x)");
  EXPECT_FALSE(ok.is_multi());
  const Rewrite multi = make_rewrite("m", "(relu ?x) (tanh ?x)", "(relu ?x) (tanh ?x)");
  EXPECT_TRUE(multi.is_multi());
}

TEST(Multi, DefaultRulesWellFormed) {
  const auto& rules = default_rules();
  EXPECT_GE(rules.size(), 50u);
  size_t multi = 0;
  for (const Rewrite& r : rules) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_EQ(r.src_roots.size(), r.dst_roots.size());
    if (r.is_multi()) ++multi;
  }
  EXPECT_GE(multi, 4u);  // the paper's multi-pattern rules are present
}

}  // namespace
}  // namespace tensat
