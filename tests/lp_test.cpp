#include <gtest/gtest.h>

#include "ilp/lp.h"
#include "support/rng.h"

namespace tensat {
namespace {

TEST(Lp, UnconstrainedAtBounds) {
  // min x - y with x,y in [0,2]: x=0, y=2.
  LinearProgram lp;
  lp.add_var(0, 2, 1.0);
  lp.add_var(0, 2, -1.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-7);
  EXPECT_NEAR(r.x[0], 0.0, 1e-7);
  EXPECT_NEAR(r.x[1], 2.0, 1e-7);
}

TEST(Lp, TextbookTwoVar) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Classic Dantzig example: optimum (2, 6) with value 36.
  LinearProgram lp;
  lp.add_var(0, kInf, -3.0);
  lp.add_var(0, kInf, -5.0);
  lp.add_row({{0, 1.0}}, -kInf, 4.0);
  lp.add_row({{1, 2.0}}, -kInf, 12.0);
  lp.add_row({{0, 3.0}, {1, 2.0}}, -kInf, 18.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-6);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
  EXPECT_NEAR(r.x[1], 6.0, 1e-6);
}

TEST(Lp, EqualityConstraint) {
  // min x + 2y s.t. x + y = 3, 0 <= x,y <= 2 -> x=2, y=1.
  LinearProgram lp;
  lp.add_var(0, 2, 1.0);
  lp.add_var(0, 2, 2.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 3.0, 3.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
}

TEST(Lp, RangeRow) {
  // min x s.t. 1 <= x + y <= 2, y in [0, 0.5], x >= 0 -> x = 0.5.
  LinearProgram lp;
  lp.add_var(0, kInf, 1.0);
  lp.add_var(0, 0.5, 0.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 1.0, 2.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.5, 1e-7);
}

TEST(Lp, GreaterEqualRow) {
  // min 2x + 3y s.t. x + y >= 4, x <= 3, y <= 3 -> (3,1) value 9.
  LinearProgram lp;
  lp.add_var(0, 3, 2.0);
  lp.add_var(0, 3, 3.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 4.0, kInf);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 9.0, 1e-6);
}

TEST(Lp, DetectsInfeasible) {
  // x >= 3 with x <= 1 is infeasible (via rows).
  LinearProgram lp;
  lp.add_var(0, 1, 1.0);
  lp.add_row({{0, 1.0}}, 3.0, kInf);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Lp, DetectsInfeasibleEqualitySystem) {
  // x + y = 1 and x + y = 2 simultaneously.
  LinearProgram lp;
  lp.add_var(0, kInf, 0.0);
  lp.add_var(0, kInf, 0.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 1.0, 1.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 2.0, 2.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Lp, DetectsUnbounded) {
  // min -x with x >= 0 unbounded below.
  LinearProgram lp;
  lp.add_var(0, kInf, -1.0);
  lp.add_row({{0, 1.0}}, 0.0, kInf);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Lp, DegenerateVertexTerminates) {
  // Multiple redundant constraints through one vertex (degeneracy stress).
  LinearProgram lp;
  lp.add_var(0, kInf, -1.0);
  lp.add_var(0, kInf, -1.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, -kInf, 2.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, -kInf, 2.0);
  lp.add_row({{0, 2.0}, {1, 2.0}}, -kInf, 4.0);
  lp.add_row({{0, 1.0}}, -kInf, 1.0);
  lp.add_row({{1, 1.0}}, -kInf, 1.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-6);
}

TEST(Lp, ExtractionShapedProblem) {
  // A miniature of the extraction LP: two options in the root class, the
  // cheaper requiring a child. x0=5, x1=3+child(1) -> picks x1 chain (4).
  LinearProgram lp;
  const int x0 = lp.add_var(0, 1, 5.0);
  const int x1 = lp.add_var(0, 1, 3.0);
  const int c = lp.add_var(0, 1, 1.0);
  lp.add_row({{x0, 1.0}, {x1, 1.0}}, 1.0, 1.0);   // root
  lp.add_row({{x1, 1.0}, {c, -1.0}}, -kInf, 0.0);  // x1 needs c
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
  EXPECT_NEAR(r.x[x1], 1.0, 1e-7);
  EXPECT_NEAR(r.x[c], 1.0, 1e-7);
}

TEST(Lp, FeasibleHelperAgrees) {
  LinearProgram lp;
  lp.add_var(0, 1, 1.0);
  lp.add_row({{0, 1.0}}, 0.5, kInf);
  EXPECT_TRUE(lp.feasible({0.7}));
  EXPECT_FALSE(lp.feasible({0.2}));
  EXPECT_FALSE(lp.feasible({1.5}));
}

// Randomized property: on random feasible-by-construction LPs, the simplex
// optimum is never worse than any sampled feasible point.
TEST(Lp, NeverWorseThanSampledFeasiblePoints) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(4));
    LinearProgram lp;
    for (int j = 0; j < n; ++j) lp.add_var(0.0, 1.0, rng.uniform(-2.0, 2.0));
    // Random <= rows, each satisfied by the all-0.3 point by construction.
    std::vector<double> base(n, 0.3);
    for (int r = 0; r < 3; ++r) {
      LinearProgram::Row row;
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        const double coef = rng.uniform(-1.0, 1.0);
        row.terms.emplace_back(j, coef);
        lhs += coef * 0.3;
      }
      row.lo = -kInf;
      row.hi = lhs + rng.uniform(0.1, 1.0);
      lp.rows.push_back(row);
    }
    const LpResult res = solve_lp(lp);
    ASSERT_EQ(res.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_TRUE(lp.feasible(res.x, 1e-5)) << "trial " << trial;
    for (int s = 0; s < 50; ++s) {
      std::vector<double> candidate(n);
      for (int j = 0; j < n; ++j) candidate[j] = rng.uniform();
      if (!lp.feasible(candidate)) continue;
      EXPECT_LE(res.objective, lp.objective_value(candidate) + 1e-6)
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace tensat
