#include <gtest/gtest.h>

#include <cmath>

#include "ilp/milp.h"
#include "support/check.h"
#include "support/rng.h"

namespace tensat {
namespace {

TEST(Milp, PureLpPassesThrough) {
  LinearProgram lp;
  lp.add_var(0, 2, 1.0);
  const MilpResult r = solve_milp(lp, {false});
  EXPECT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-7);
}

TEST(Milp, RoundsViaBranching) {
  // min -x - y s.t. 2x + 2y <= 3, x,y binary -> best integer point (1,0) or
  // (0,1), value -1 (LP relaxation would give -1.5 at (0.75,0.75)).
  LinearProgram lp;
  lp.add_var(0, 1, -1.0);
  lp.add_var(0, 1, -1.0);
  lp.add_row({{0, 2.0}, {1, 2.0}}, -kInf, 3.0);
  const MilpResult r = solve_milp(lp, {true, true});
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-6);
}

TEST(Milp, KnapsackOptimal) {
  // Classic 0/1 knapsack: values {6,10,12}, weights {1,2,3}, capacity 5.
  // Optimum picks items 2 and 3: value 22.
  LinearProgram lp;
  lp.add_var(0, 1, -6.0);
  lp.add_var(0, 1, -10.0);
  lp.add_var(0, 1, -12.0);
  lp.add_row({{0, 1.0}, {1, 2.0}, {2, 3.0}}, -kInf, 5.0);
  const MilpResult r = solve_milp(lp, {true, true, true});
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -22.0, 1e-6);
  EXPECT_NEAR(r.x[0], 0.0, 1e-6);
}

TEST(Milp, ProvenOptimumHasZeroGap) {
  LinearProgram lp;
  lp.add_var(0, 1, -1.0);
  lp.add_var(0, 1, -1.0);
  lp.add_row({{0, 2.0}, {1, 2.0}}, -kInf, 3.0);
  MilpOptions opt;
  opt.rel_gap = 0.0;
  const MilpResult r = solve_milp(lp, {true, true}, opt);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_EQ(r.gap, 0.0);
  EXPECT_NEAR(r.best_bound, r.objective, 1e-9);
}

TEST(Milp, RelGapStopKeepsCertifiedBound) {
  // A loose rel_gap accepts the first incumbent; the reported bound must
  // stay the true LP frontier (-1.5 here), making the gap a certificate —
  // not get snapped to the incumbent.
  LinearProgram lp;
  lp.add_var(0, 1, -1.0);
  lp.add_var(0, 1, -1.0);
  lp.add_row({{0, 2.0}, {1, 2.0}}, -kInf, 3.0);
  MilpOptions opt;
  opt.rel_gap = 0.9;
  const MilpResult r = solve_milp(lp, {true, true}, opt,
                                  std::vector<double>{1.0, 0.0});
  ASSERT_EQ(r.status, MilpStatus::kOptimal);  // within the requested gap
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
  EXPECT_LE(r.best_bound, r.objective + 1e-9);
  EXPECT_GE(r.best_bound, -1.5 - 1e-6);  // true relaxation frontier
  EXPECT_NEAR(r.gap, (r.objective - r.best_bound) / std::abs(r.objective),
              1e-9);
  EXPECT_LE(r.gap, opt.rel_gap + 1e-9);
}

TEST(Milp, NodeLimitFallbackReportsFiniteGap) {
  // max_nodes = 1 is the engine's LP-relaxation + rounding fallback: one
  // root node (LP + dive + rounding) must still return an incumbent and the
  // root bound, with gap = (obj - bound) / |obj|.
  LinearProgram lp;
  Rng rng(11);
  for (int j = 0; j < 12; ++j) lp.add_var(0, 1, rng.uniform(0.5, 3.0));
  for (int r = 0; r < 8; ++r) {
    LinearProgram::Row row;
    for (int j = 0; j < 12; ++j)
      if (rng.chance(0.4)) row.terms.emplace_back(j, 1.0);
    if (row.terms.empty()) row.terms.emplace_back(0, 1.0);
    row.lo = 1.0;
    row.hi = kInf;
    lp.rows.push_back(row);
  }
  MilpOptions opt;
  opt.max_nodes = 1;
  opt.rel_gap = 0.0;
  const MilpResult r = solve_milp(lp, std::vector<bool>(12, true), opt);
  ASSERT_TRUE(r.status == MilpStatus::kFeasible ||
              r.status == MilpStatus::kOptimal);
  EXPECT_TRUE(lp.feasible(r.x, 1e-6));
  EXPECT_TRUE(std::isfinite(r.best_bound));
  EXPECT_TRUE(std::isfinite(r.gap));
  EXPECT_GE(r.gap, 0.0);
  EXPECT_GE(r.objective, r.best_bound - 1e-9);
}

TEST(Milp, InfeasibleDetected) {
  // x + y = 1 with x,y binary and x + y >= 2 impossible... use x+y=1 and
  // x+y=2 rows.
  LinearProgram lp;
  lp.add_var(0, 1, 0.0);
  lp.add_var(0, 1, 0.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 1.0, 1.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 2.0, 2.0);
  EXPECT_EQ(solve_milp(lp, {true, true}).status, MilpStatus::kInfeasible);
}

TEST(Milp, FractionalOnlyFeasibleIsIntegerInfeasible) {
  // 2x = 1 with x binary: LP feasible (x=0.5) but no integer point.
  LinearProgram lp;
  lp.add_var(0, 1, 1.0);
  lp.add_row({{0, 2.0}}, 1.0, 1.0);
  EXPECT_EQ(solve_milp(lp, {true}).status, MilpStatus::kInfeasible);
}

TEST(Milp, WarmStartBoundsSearch) {
  LinearProgram lp;
  lp.add_var(0, 1, -1.0);
  lp.add_var(0, 1, -1.0);
  lp.add_row({{0, 2.0}, {1, 2.0}}, -kInf, 3.0);
  const std::vector<double> warm = {1.0, 0.0};
  const MilpResult r = solve_milp(lp, {true, true}, {}, warm);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
}

TEST(Milp, InfeasibleWarmStartRejected) {
  LinearProgram lp;
  lp.add_var(0, 1, 1.0);
  lp.add_row({{0, 1.0}}, 1.0, 1.0);
  EXPECT_THROW(solve_milp(lp, {true}, {}, std::vector<double>{0.0}), Error);
}

TEST(Milp, MixedIntegerContinuous) {
  // min x + t, x binary, t real in [0,1], t >= 0.5 - x.
  // x=0 -> t=0.5 cost 0.5; x=1 -> t=0 cost 1. Optimum 0.5.
  LinearProgram lp;
  lp.add_var(0, 1, 1.0);  // x (binary)
  lp.add_var(0, 1, 1.0);  // t (continuous)
  lp.add_row({{0, 1.0}, {1, 1.0}}, 0.5, kInf);
  const MilpResult r = solve_milp(lp, {true, false});
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.5, 1e-6);
  EXPECT_NEAR(r.x[0], 0.0, 1e-6);
}

TEST(Milp, TimeLimitReturnsIncumbent) {
  // A solvable instance with a zero time budget and a warm start: must
  // return the warm start as feasible incumbent with timed_out set.
  LinearProgram lp;
  lp.add_var(0, 1, -1.0);
  lp.add_var(0, 1, -1.0);
  lp.add_row({{0, 2.0}, {1, 2.0}}, -kInf, 3.0);
  MilpOptions opt;
  opt.time_limit_s = 0.0;
  const std::vector<double> warm = {0.0, 1.0};
  const MilpResult r = solve_milp(lp, {true, true}, opt, warm);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.status, MilpStatus::kFeasible);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
}

TEST(Milp, SequentialSolvesGetFreshDeadlines) {
  // The service keeps one process alive across many solves: every
  // solve_milp must measure its budget from its OWN entry (a fresh
  // monotonic Timer), never from process start or any state left by a
  // previous solve. Reusing one MilpOptions object across solves — exactly
  // what a long-lived service does — must not let an earlier solve's
  // elapsed time bleed into a later deadline.
  LinearProgram lp;
  lp.add_var(0, 1, -1.0);
  lp.add_var(0, 1, -1.0);
  lp.add_row({{0, 2.0}, {1, 2.0}}, -kInf, 3.0);
  MilpOptions opt;
  opt.time_limit_s = 30.0;
  for (int i = 0; i < 3; ++i) {
    const MilpResult r = solve_milp(lp, {true, true}, opt);
    ASSERT_EQ(r.status, MilpStatus::kOptimal) << "solve " << i;
    EXPECT_FALSE(r.timed_out) << "solve " << i;
    // Each solve's clock starts at its own entry: a trivial instance must
    // report (far) less time than the budget even after prior solves.
    EXPECT_LT(r.seconds, opt.time_limit_s / 2) << "solve " << i;
  }
  // A warm-started re-solve seeded from the previous result's snapshots
  // gets the same fresh deadline and the same certified optimum.
  MilpResult first = solve_milp(lp, {true, true}, opt);
  ASSERT_EQ(first.status, MilpStatus::kOptimal);
  opt.seed_basis = first.root_basis;
  opt.seed_pseudocost = first.pseudocost;
  const MilpResult seeded = solve_milp(lp, {true, true}, opt);
  ASSERT_EQ(seeded.status, MilpStatus::kOptimal);
  EXPECT_FALSE(seeded.timed_out);
  EXPECT_NEAR(seeded.objective, first.objective, 1e-9);
}

TEST(Milp, SeedBasisReusedAcrossSolves) {
  // Exported root basis + pseudocosts from one solve warm the next solve of
  // the same formulation. The certified optimum must not move; the root LP
  // should report a warm-start hit.
  LinearProgram lp;
  Rng rng(77);
  const int n = 10;
  for (int j = 0; j < n; ++j) lp.add_var(0, 1, rng.uniform(0.5, 3.0));
  for (int r = 0; r < 7; ++r) {
    LinearProgram::Row row;
    for (int j = 0; j < n; ++j)
      if (rng.chance(0.4)) row.terms.emplace_back(j, 1.0);
    if (row.terms.empty()) row.terms.emplace_back(0, 1.0);
    row.lo = 1.0;
    row.hi = kInf;
    lp.rows.push_back(row);
  }
  MilpOptions opt;
  opt.rel_gap = 0.0;
  const MilpResult cold = solve_milp(lp, std::vector<bool>(n, true), opt);
  ASSERT_EQ(cold.status, MilpStatus::kOptimal);
  ASSERT_NE(cold.root_basis, nullptr);
  EXPECT_FALSE(cold.root_basis->empty());

  opt.seed_basis = cold.root_basis;
  opt.seed_pseudocost = cold.pseudocost;
  const MilpResult warm = solve_milp(lp, std::vector<bool>(n, true), opt);
  ASSERT_EQ(warm.status, MilpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
  EXPECT_GE(warm.warm_start_hits, 1);

  // A dimensionally-mismatched seed must be ignored (cold fallback), not
  // crash or corrupt the solve.
  auto junk = std::make_shared<SparseBasis>();
  junk->basic = {0};
  junk->at_upper = {0, 1};
  opt.seed_basis = junk;
  opt.seed_pseudocost = nullptr;
  const MilpResult mismatched = solve_milp(lp, std::vector<bool>(n, true), opt);
  ASSERT_EQ(mismatched.status, MilpStatus::kOptimal);
  EXPECT_NEAR(mismatched.objective, cold.objective, 1e-7);
}

/// Brute force over all binary assignments (continuous vars must be absent).
double brute_force(const LinearProgram& lp) {
  const int n = lp.num_vars();
  double best = kInf;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(n);
    for (int j = 0; j < n; ++j) x[j] = (mask >> j) & 1;
    if (!lp.feasible(x)) continue;
    best = std::min(best, lp.objective_value(x));
  }
  return best;
}

class MilpRandomized : public ::testing::TestWithParam<int> {};

TEST_P(MilpRandomized, MatchesBruteForce) {
  Rng rng(1000 + GetParam());
  const int n = 4 + static_cast<int>(rng.below(5));  // 4..8 binaries
  LinearProgram lp;
  for (int j = 0; j < n; ++j) lp.add_var(0, 1, rng.uniform(-3.0, 3.0));
  const int rows = 2 + static_cast<int>(rng.below(3));
  for (int r = 0; r < rows; ++r) {
    LinearProgram::Row row;
    for (int j = 0; j < n; ++j)
      if (rng.chance(0.7)) row.terms.emplace_back(j, rng.uniform(-2.0, 2.0));
    if (row.terms.empty()) row.terms.emplace_back(0, 1.0);
    row.lo = -kInf;
    row.hi = rng.uniform(-0.5, 2.5);
    lp.rows.push_back(row);
  }
  const double expected = brute_force(lp);
  const MilpResult got = solve_milp(lp, std::vector<bool>(n, true));
  if (expected == kInf) {
    EXPECT_EQ(got.status, MilpStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(got.status, MilpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(got.objective, expected, 1e-5) << "seed " << GetParam();
    EXPECT_TRUE(lp.feasible(got.x, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRandomized, ::testing::Range(0, 40));

}  // namespace
}  // namespace tensat
