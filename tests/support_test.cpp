#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include <atomic>

#include "support/check.h"
#include "support/hash.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/symbol.h"
#include "support/timer.h"

namespace tensat {
namespace {

TEST(Symbol, InternsIdentically) {
  Symbol a("hello");
  Symbol b("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.str(), "hello");
}

TEST(Symbol, DistinctStringsDistinctIds) {
  Symbol a("alpha");
  Symbol b("beta");
  EXPECT_NE(a, b);
  EXPECT_NE(a.id(), b.id());
}

TEST(Symbol, EmptyDefault) {
  Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s, Symbol(""));
}

TEST(Symbol, HashMatchesEquality) {
  std::hash<Symbol> h;
  EXPECT_EQ(h(Symbol("x")), h(Symbol("x")));
}

TEST(Symbol, ConcurrentInterningIsSafe) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<uint32_t> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ids] { ids[t] = Symbol("shared-name").id(); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[0], ids[t]);
}

TEST(Check, ThrowsWithMessage) {
  try {
    TENSAT_CHECK(1 == 2, "math is broken: " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken: 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { TENSAT_CHECK(true, "never"); }

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all values hit
}

TEST(Rng, NormalRoughlyCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.normal();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(Hash, CombineChangesSeed) {
  size_t a = 0, b = 0;
  hash_combine(a, 1);
  hash_combine(b, 2);
  EXPECT_NE(a, b);
}

TEST(Hash, OrderSensitive) {
  size_t a = 0, b = 0;
  hash_combine(a, 1);
  hash_combine(a, 2);
  hash_combine(b, 2);
  hash_combine(b, 1);
  EXPECT_NE(a, b);
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{3}, size_t{8}, size_t{0}}) {
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(kN, threads, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, HandlesEmptyAndMoreThreadsThanItems) {
  parallel_for(0, 8, [](size_t) { FAIL() << "no items to run"; });
  std::vector<std::atomic<int>> hits(2);
  parallel_for(2, 16, [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ParallelFor, RethrowsWorkerException) {
  EXPECT_THROW(
      parallel_for(64, 4,
                   [](size_t i) {
                     if (i == 13) throw Error("boom");
                   }),
      Error);
}

TEST(ParallelFor, ResolveThreadsNeverZero) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(5), 5u);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace tensat
