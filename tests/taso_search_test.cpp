#include <gtest/gtest.h>

#include "models/models.h"
#include "rewrite/rules.h"
#include "taso/search.h"

namespace tensat {
namespace {

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

Graph shared_matmuls() {
  Graph g;
  const Id x = g.input("x", {64, 256});
  for (int i = 0; i < 3; ++i)
    g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {256, 256})));
  return g;
}

TEST(TasoSearch, NeverWorseThanInput) {
  TasoOptions opt;
  opt.iterations = 5;
  const TasoResult r = taso_search(shared_matmuls(), default_rules(), model(), opt);
  EXPECT_LE(r.best_cost, r.original_cost + 1e-9);
}

TEST(TasoSearch, FindsMatmulMerge) {
  TasoOptions opt;
  opt.iterations = 30;
  const TasoResult r = taso_search(shared_matmuls(), default_rules(), model(), opt);
  EXPECT_LT(r.best_cost, r.original_cost - 1e-6);
  EXPECT_GT(r.best.op_histogram().count(Op::kSplit), 0u);
}

TEST(TasoSearch, TimelineMonotone) {
  TasoOptions opt;
  opt.iterations = 30;
  const TasoResult r = taso_search(shared_matmuls(), default_rules(), model(), opt);
  ASSERT_GE(r.stats.timeline.size(), 1u);
  for (size_t i = 1; i < r.stats.timeline.size(); ++i) {
    EXPECT_GE(r.stats.timeline[i].first, r.stats.timeline[i - 1].first);
    EXPECT_LT(r.stats.timeline[i].second, r.stats.timeline[i - 1].second);
  }
  EXPECT_LE(r.stats.best_seconds, r.stats.total_seconds + 1e-9);
}

TEST(TasoSearch, MoreIterationsNeverHurt) {
  TasoOptions few;
  few.iterations = 2;
  TasoOptions many;
  many.iterations = 40;
  const Graph g = shared_matmuls();
  const TasoResult a = taso_search(g, default_rules(), model(), few);
  const TasoResult b = taso_search(g, default_rules(), model(), many);
  EXPECT_LE(b.best_cost, a.best_cost + 1e-9);
}

TEST(TasoSearch, AlphaOneIsGreedyDescent) {
  // alpha = 1.0 only enqueues strict improvements; still sound.
  TasoOptions opt;
  opt.iterations = 20;
  opt.alpha = 1.0;
  const TasoResult r = taso_search(shared_matmuls(), default_rules(), model(), opt);
  EXPECT_LE(r.best_cost, r.original_cost);
}

TEST(TasoSearch, RespectsTimeLimit) {
  TasoOptions opt;
  opt.iterations = 1000000;
  opt.time_limit_s = 0.3;
  const TasoResult r =
      taso_search(paper_models()[1].graph /* BERT */, default_rules(), model(), opt);
  EXPECT_LT(r.stats.total_seconds, 2.0);
}

TEST(TasoSearch, OptimizesTinyBert) {
  TasoOptions opt;
  opt.iterations = 15;
  opt.time_limit_s = 10.0;
  const Graph g = make_bert(1, 16, 32);
  const TasoResult r = taso_search(g, default_rules(), model(), opt);
  EXPECT_LT(r.best_cost, r.original_cost);  // QKV merge must be found
}

}  // namespace
}  // namespace tensat
