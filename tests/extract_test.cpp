#include <gtest/gtest.h>

#include "extract/extract.h"
#include "optimizer/optimizer.h"
#include "rewrite/matcher.h"
#include "rewrite/rules.h"

namespace tensat {
namespace {

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

TEST(Extract, TrivialGraphRoundTrips) {
  Graph g;
  const Id x = g.input("x", {8, 8});
  const Id w = g.weight("w", {8, 8});
  g.add_root(g.matmul(x, w));
  EGraph eg = seed_egraph(g);

  const ExtractionResult greedy = extract_greedy(eg, model());
  ASSERT_TRUE(greedy.ok);
  EXPECT_NEAR(greedy.cost, graph_cost(g, model()), 1e-6);

  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);
  EXPECT_EQ(ilp.milp_status, MilpStatus::kOptimal);
  EXPECT_NEAR(ilp.cost, greedy.cost, 1e-6);
}

TEST(Extract, PicksCheaperAlternative) {
  // Class with two options: relu(relu(x)) merged with relu(x) — extraction
  // must pick the single relu.
  Graph g;
  const Id x = g.input("x", {64, 64});
  const Id r1 = g.relu(x);
  const Id r2 = g.relu(r1);
  g.add_root(r2);
  EGraph eg = seed_egraph(g);
  // Apply relu-idempotent manually: merge class(r2) with class(r1).
  Graph g2;
  const Id x2 = g2.input("x", {64, 64});
  const Id r = g2.relu(x2);
  g2.add_root(r);
  auto m2 = eg.add_graph(g2);
  eg.merge(eg.root(), m2.at(r));
  eg.rebuild();

  const ExtractionResult greedy = extract_greedy(eg, model());
  ASSERT_TRUE(greedy.ok);
  EXPECT_NEAR(greedy.cost, graph_cost(g2, model()), 1e-6);
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);
  EXPECT_NEAR(ilp.cost, greedy.cost, 1e-6);
}

/// Builds the paper's Fig. 2 situation: two matmuls sharing an input, plus
/// the merged concat/split alternative, in one e-graph.
EGraph shared_matmul_egraph(Graph* out_graph = nullptr) {
  Graph g;
  const Id x = g.input("x", {64, 256});
  const Id w1 = g.weight("w1", {256, 256});
  const Id w2 = g.weight("w2", {256, 256});
  const Id m1 = g.matmul(x, w1);
  const Id m2 = g.matmul(x, w2);
  g.add_root(m1);
  g.add_root(m2);
  if (out_graph) *out_graph = g;
  EGraph eg = seed_egraph(g);

  // Apply the multi-pattern rule once.
  const Rewrite rule = make_rewrite(
      "fig2",
      "(matmul ?act ?a ?b) (matmul ?act ?a ?c)",
      "(split0 (split 1 (matmul ?act ?a (concat2 1 ?b ?c)))) "
      "(split1 (split 1 (matmul ?act ?a (concat2 1 ?b ?c))))");
  auto matches = search_pattern(eg, rule.pat, rule.src_roots[0]);
  auto matches2 = search_pattern(eg, rule.pat, rule.src_roots[1]);
  bool applied = false;
  for (const auto& ma : matches) {
    for (const auto& mb : matches2) {
      if (eg.find(ma.root) == eg.find(mb.root)) continue;
      auto combined = Subst::merged(ma.subst, mb.subst);
      if (!combined) continue;
      auto t0 = instantiate(eg, rule.pat, rule.dst_roots[0], *combined);
      auto t1 = instantiate(eg, rule.pat, rule.dst_roots[1], *combined);
      if (!t0 || !t1) continue;
      eg.merge(ma.root, *t0);
      eg.merge(mb.root, *t1);
      applied = true;
    }
  }
  eg.rebuild();
  EXPECT_TRUE(applied);
  return eg;
}

TEST(Extract, GreedyMissesSharedSubgraph) {
  // The paper's §6.5 example: greedy never picks the split nodes because it
  // does not see that the merged matmul is shared between both outputs; ILP
  // does.
  Graph original;
  EGraph eg = shared_matmul_egraph(&original);

  const ExtractionResult greedy = extract_greedy(eg, model());
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(greedy.ok);
  ASSERT_TRUE(ilp.ok);

  // Greedy keeps the two separate matmuls (the original graph).
  EXPECT_NEAR(greedy.cost, graph_cost(original, model()), 1e-6);
  // ILP finds the merged form: strictly cheaper, and it contains a split.
  EXPECT_LT(ilp.cost, greedy.cost - 1e-6);
  EXPECT_GT(ilp.graph.op_histogram().count(Op::kSplit), 0u);
}

TEST(Extract, IlpOptimalOnSmallEGraphsByEnumeration) {
  // Cross-check ILP extraction against exhaustive enumeration of per-class
  // choices on the Fig. 2 e-graph (small enough to enumerate).
  EGraph eg = shared_matmul_egraph();
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);

  // Enumerate: per reachable class pick each unfiltered node, recursively —
  // here the only real choice is in the two matched root classes, so try
  // greedy-style fixed choices via ILP with forced picks instead. We settle
  // for verifying feasibility + that cost equals graph_cost of its graph.
  EXPECT_NEAR(ilp.cost, graph_cost(ilp.graph, model()), 1e-9);
  EXPECT_EQ(ilp.milp_status, MilpStatus::kOptimal);
}

TEST(Extract, ExtractedGraphIsAcyclicAndWellFormed) {
  EGraph eg = shared_matmul_egraph();
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);
  // topo_order succeeds only on DAGs reachable from roots.
  const auto order = ilp.graph.topo_order();
  EXPECT_GT(order.size(), 0u);
  EXPECT_EQ(ilp.graph.roots().size(), 1u);
}

TEST(Extract, CycleConstraintsPreventCyclicSelection) {
  // Build a cyclic e-graph (no filtering) and require the ILP with cycle
  // constraints to return an acyclic graph.
  Graph g;
  const Id x = g.input("x", {4, 4});
  const Id y = g.weight("y", {4, 4});
  const Id m1 = g.matmul(x, y);
  const Id m2 = g.matmul(x, m1);
  g.add_root(m2);
  EGraph eg = seed_egraph(g);
  const Rewrite rule = make_rewrite(
      "fig2",
      "(matmul ?act ?a ?b) (matmul ?act ?a ?c)",
      "(split0 (split 1 (matmul ?act ?a (concat2 1 ?b ?c)))) "
      "(split1 (split 1 (matmul ?act ?a (concat2 1 ?b ?c))))");
  auto matches = search_pattern(eg, rule.pat, rule.src_roots[0]);
  auto matches2 = search_pattern(eg, rule.pat, rule.src_roots[1]);
  for (const auto& ma : matches) {
    for (const auto& mb : matches2) {
      if (eg.find(ma.root) == eg.find(mb.root)) continue;
      auto combined = Subst::merged(ma.subst, mb.subst);
      if (!combined) continue;
      auto t0 = instantiate(eg, rule.pat, rule.dst_roots[0], *combined);
      auto t1 = instantiate(eg, rule.pat, rule.dst_roots[1], *combined);
      if (!t0 || !t1) continue;
      eg.merge(ma.root, *t0);
      eg.merge(mb.root, *t1);
    }
  }
  eg.rebuild();

  IlpExtractOptions with_cycles;
  with_cycles.cycle_constraints = true;
  const IlpExtractionResult r = extract_ilp(eg, model(), with_cycles);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.cyclic_selection);
  EXPECT_GT(r.graph.topo_order().size(), 0u);

  // Integer topological variables behave the same.
  IlpExtractOptions int_mode = with_cycles;
  int_mode.integer_topo_vars = true;
  const IlpExtractionResult r2 = extract_ilp(eg, model(), int_mode);
  ASSERT_TRUE(r2.ok);
  EXPECT_NEAR(r2.cost, r.cost, 1e-5);
}

TEST(Extract, FilteredNodesNeverSelected) {
  EGraph eg = shared_matmul_egraph();
  // Filter every split node; ILP must fall back to the separate matmuls.
  for (Id cls : eg.canonical_classes()) {
    const auto& nodes = eg.eclass(cls).nodes;
    for (size_t i = 0; i < nodes.size(); ++i)
      if (nodes[i].node.op == Op::kSplit0 || nodes[i].node.op == Op::kSplit1)
        eg.set_filtered(cls, i);
  }
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);
  EXPECT_EQ(ilp.graph.op_histogram().count(Op::kSplit0), 0u);
  EXPECT_EQ(ilp.graph.op_histogram().count(Op::kSplit1), 0u);
}

TEST(Extract, TooLargeInstanceReportsTimeout) {
  EGraph eg = shared_matmul_egraph();
  IlpExtractOptions opt;
  opt.max_instance_nodes = 1;  // force the too-large path
  const IlpExtractionResult r = extract_ilp(eg, model(), opt);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.too_large);
  EXPECT_TRUE(r.timed_out);
}

TEST(Extract, IlpNeverWorseThanGreedy) {
  EGraph eg = shared_matmul_egraph();
  const ExtractionResult greedy = extract_greedy(eg, model());
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(greedy.ok);
  ASSERT_TRUE(ilp.ok);
  EXPECT_LE(ilp.cost, greedy.cost + 1e-6);
}

}  // namespace
}  // namespace tensat
