#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "extract/engine/engine.h"
#include "extract/extract.h"
#include "optimizer/optimizer.h"
#include "rewrite/matcher.h"
#include "rewrite/rules.h"

namespace tensat {
namespace {

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

/// Fixed per-operator costs: lets tests craft exact cost relationships the
/// analytic T4 model cannot hit.
class FixedCostModel : public CostModel {
 public:
  explicit FixedCostModel(std::unordered_map<Op, double> costs)
      : costs_(std::move(costs)) {}
  [[nodiscard]] double op_cost(const TNode& node, span<const ValueInfo>,
                               const ValueInfo&) const override {
    auto it = costs_.find(node.op);
    return it == costs_.end() ? 0.0 : it->second;
  }

 private:
  std::unordered_map<Op, double> costs_;
};

/// Runs the decomposing engine and the monolithic ILP at zero MIP gap and
/// asserts they agree on solvability and (when both solve) on the extracted
/// cost — the engine's differential-parity contract.
void expect_engine_parity(const EGraph& eg, const CostModel& m,
                          IlpExtractOptions base = {}) {
  base.rel_gap = 0.0;  // exact parity needs exact per-core optima
  ExtractEngineOptions engine_opt;
  static_cast<IlpExtractOptions&>(engine_opt) = base;
  const EngineExtractionResult engine = extract_engine(eg, m, engine_opt);
  EXPECT_TRUE(engine.decomposed);
  const IlpExtractionResult mono = extract_ilp(eg, m, base);
  EXPECT_EQ(engine.ok, mono.ok);
  if (engine.ok && mono.ok) {
    EXPECT_NEAR(engine.cost, mono.cost, 1e-6 + 1e-9 * std::abs(mono.cost));
  }
}

TEST(Extract, TrivialGraphRoundTrips) {
  Graph g;
  const Id x = g.input("x", {8, 8});
  const Id w = g.weight("w", {8, 8});
  g.add_root(g.matmul(x, w));
  EGraph eg = seed_egraph(g);

  const ExtractionResult greedy = extract_greedy(eg, model());
  ASSERT_TRUE(greedy.ok);
  EXPECT_NEAR(greedy.cost, graph_cost(g, model()), 1e-6);

  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);
  EXPECT_EQ(ilp.milp_status, MilpStatus::kOptimal);
  EXPECT_NEAR(ilp.cost, greedy.cost, 1e-6);
}

TEST(Extract, PicksCheaperAlternative) {
  // Class with two options: relu(relu(x)) merged with relu(x) — extraction
  // must pick the single relu.
  Graph g;
  const Id x = g.input("x", {64, 64});
  const Id r1 = g.relu(x);
  const Id r2 = g.relu(r1);
  g.add_root(r2);
  EGraph eg = seed_egraph(g);
  // Apply relu-idempotent manually: merge class(r2) with class(r1).
  Graph g2;
  const Id x2 = g2.input("x", {64, 64});
  const Id r = g2.relu(x2);
  g2.add_root(r);
  auto m2 = eg.add_graph(g2);
  eg.merge(eg.root(), m2.at(r));
  eg.rebuild();

  const ExtractionResult greedy = extract_greedy(eg, model());
  ASSERT_TRUE(greedy.ok);
  EXPECT_NEAR(greedy.cost, graph_cost(g2, model()), 1e-6);
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);
  EXPECT_NEAR(ilp.cost, greedy.cost, 1e-6);
}

/// Applies the paper's Fig. 2 multi-pattern rule (two matmuls sharing an
/// operand merge into one matmul over concatenated weights, recovered with
/// splits) to every compatible match pair, then rebuilds. Returns true if at
/// least one application landed.
bool apply_fig2_rule(EGraph& eg) {
  const Rewrite rule = make_rewrite(
      "fig2",
      "(matmul ?act ?a ?b) (matmul ?act ?a ?c)",
      "(split0 (split 1 (matmul ?act ?a (concat2 1 ?b ?c)))) "
      "(split1 (split 1 (matmul ?act ?a (concat2 1 ?b ?c))))");
  auto matches = search_pattern(eg, rule.pat, rule.src_roots[0]);
  auto matches2 = search_pattern(eg, rule.pat, rule.src_roots[1]);
  bool applied = false;
  for (const auto& ma : matches) {
    for (const auto& mb : matches2) {
      if (eg.find(ma.root) == eg.find(mb.root)) continue;
      auto combined = Subst::merged(ma.subst, mb.subst);
      if (!combined) continue;
      auto t0 = instantiate(eg, rule.pat, rule.dst_roots[0], *combined);
      auto t1 = instantiate(eg, rule.pat, rule.dst_roots[1], *combined);
      if (!t0 || !t1) continue;
      eg.merge(ma.root, *t0);
      eg.merge(mb.root, *t1);
      applied = true;
    }
  }
  eg.rebuild();
  return applied;
}

/// Builds the paper's Fig. 2 situation: two matmuls sharing an input, plus
/// the merged concat/split alternative, in one e-graph.
EGraph shared_matmul_egraph(Graph* out_graph = nullptr) {
  Graph g;
  const Id x = g.input("x", {64, 256});
  const Id w1 = g.weight("w1", {256, 256});
  const Id w2 = g.weight("w2", {256, 256});
  const Id m1 = g.matmul(x, w1);
  const Id m2 = g.matmul(x, w2);
  g.add_root(m1);
  g.add_root(m2);
  if (out_graph) *out_graph = g;
  EGraph eg = seed_egraph(g);
  EXPECT_TRUE(apply_fig2_rule(eg));
  return eg;
}

TEST(Extract, GreedyMissesSharedSubgraph) {
  // The paper's §6.5 example: greedy never picks the split nodes because it
  // does not see that the merged matmul is shared between both outputs; ILP
  // does.
  Graph original;
  EGraph eg = shared_matmul_egraph(&original);

  const ExtractionResult greedy = extract_greedy(eg, model());
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(greedy.ok);
  ASSERT_TRUE(ilp.ok);

  // Greedy keeps the two separate matmuls (the original graph).
  EXPECT_NEAR(greedy.cost, graph_cost(original, model()), 1e-6);
  // ILP finds the merged form: strictly cheaper, and it contains a split.
  EXPECT_LT(ilp.cost, greedy.cost - 1e-6);
  EXPECT_GT(ilp.graph.op_histogram().count(Op::kSplit), 0u);
}

TEST(Extract, IlpOptimalOnSmallEGraphsByEnumeration) {
  // Cross-check ILP extraction against exhaustive enumeration of per-class
  // choices on the Fig. 2 e-graph (small enough to enumerate).
  EGraph eg = shared_matmul_egraph();
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);

  // Enumerate: per reachable class pick each unfiltered node, recursively —
  // here the only real choice is in the two matched root classes, so try
  // greedy-style fixed choices via ILP with forced picks instead. We settle
  // for verifying feasibility + that cost equals graph_cost of its graph.
  EXPECT_NEAR(ilp.cost, graph_cost(ilp.graph, model()), 1e-9);
  EXPECT_EQ(ilp.milp_status, MilpStatus::kOptimal);
}

TEST(Extract, ExtractedGraphIsAcyclicAndWellFormed) {
  EGraph eg = shared_matmul_egraph();
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);
  // topo_order succeeds only on DAGs reachable from roots.
  const auto order = ilp.graph.topo_order();
  EXPECT_GT(order.size(), 0u);
  EXPECT_EQ(ilp.graph.roots().size(), 1u);
}

TEST(Extract, CycleConstraintsPreventCyclicSelection) {
  // Build a cyclic e-graph (no filtering) and require the ILP with cycle
  // constraints to return an acyclic graph.
  Graph g;
  const Id x = g.input("x", {4, 4});
  const Id y = g.weight("y", {4, 4});
  const Id m1 = g.matmul(x, y);
  const Id m2 = g.matmul(x, m1);
  g.add_root(m2);
  EGraph eg = seed_egraph(g);
  ASSERT_TRUE(apply_fig2_rule(eg));

  IlpExtractOptions with_cycles;
  with_cycles.cycle_constraints = true;
  const IlpExtractionResult r = extract_ilp(eg, model(), with_cycles);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.cyclic_selection);
  EXPECT_GT(r.graph.topo_order().size(), 0u);

  // Integer topological variables behave the same.
  IlpExtractOptions int_mode = with_cycles;
  int_mode.integer_topo_vars = true;
  const IlpExtractionResult r2 = extract_ilp(eg, model(), int_mode);
  ASSERT_TRUE(r2.ok);
  EXPECT_NEAR(r2.cost, r.cost, 1e-5);
}

TEST(Extract, FilteredNodesNeverSelected) {
  EGraph eg = shared_matmul_egraph();
  // Filter every split node; ILP must fall back to the separate matmuls.
  for (Id cls : eg.canonical_classes()) {
    const auto& nodes = eg.eclass(cls).nodes;
    for (size_t i = 0; i < nodes.size(); ++i)
      if (nodes[i].node.op == Op::kSplit0 || nodes[i].node.op == Op::kSplit1)
        eg.set_filtered(cls, i);
  }
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(ilp.ok);
  EXPECT_EQ(ilp.graph.op_histogram().count(Op::kSplit0), 0u);
  EXPECT_EQ(ilp.graph.op_histogram().count(Op::kSplit1), 0u);
}

TEST(Extract, TooLargeInstanceReportsTimeout) {
  EGraph eg = shared_matmul_egraph();
  IlpExtractOptions opt;
  opt.max_instance_nodes = 1;  // force the too-large path
  const IlpExtractionResult r = extract_ilp(eg, model(), opt);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.too_large);
  EXPECT_TRUE(r.timed_out);
}

TEST(Extract, IlpNeverWorseThanGreedy) {
  EGraph eg = shared_matmul_egraph();
  const ExtractionResult greedy = extract_greedy(eg, model());
  const IlpExtractionResult ilp = extract_ilp(eg, model());
  ASSERT_TRUE(greedy.ok);
  ASSERT_TRUE(ilp.ok);
  EXPECT_LE(ilp.cost, greedy.cost + 1e-6);
}

// ---- Extraction engine (extract/engine/): decomposed vs monolithic --------

TEST(ExtractEngine, ParityOnBasicScenarios) {
  {
    Graph g;
    const Id x = g.input("x", {8, 8});
    const Id w = g.weight("w", {8, 8});
    g.add_root(g.matmul(x, w));
    EGraph eg = seed_egraph(g);
    expect_engine_parity(eg, model());
  }
  {
    EGraph eg = shared_matmul_egraph();
    expect_engine_parity(eg, model());
  }
}

TEST(ExtractEngine, ParityWithCycleConstraints) {
  // The cyclic Fig.-2-style e-graph of CycleConstraintsPreventCyclicSelection.
  Graph g;
  const Id x = g.input("x", {4, 4});
  const Id y = g.weight("y", {4, 4});
  const Id m1 = g.matmul(x, y);
  const Id m2 = g.matmul(x, m1);
  g.add_root(m2);
  EGraph eg = seed_egraph(g);
  ASSERT_TRUE(apply_fig2_rule(eg));

  IlpExtractOptions with_cycles;
  with_cycles.cycle_constraints = true;
  expect_engine_parity(eg, model(), with_cycles);

  IlpExtractOptions int_mode = with_cycles;
  int_mode.integer_topo_vars = true;
  expect_engine_parity(eg, model(), int_mode);

  // Engine alone: result is acyclic and optimal, cycle rows only on cores.
  ExtractEngineOptions opt;
  opt.cycle_constraints = true;
  const EngineExtractionResult r = extract_engine(eg, model(), opt);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.cyclic_selection);
  EXPECT_GT(r.graph.topo_order().size(), 0u);
}

TEST(ExtractEngine, ParityWithFilteredNodes) {
  EGraph eg = shared_matmul_egraph();
  for (Id cls : eg.canonical_classes()) {
    const auto& nodes = eg.eclass(cls).nodes;
    for (size_t i = 0; i < nodes.size(); ++i)
      if (nodes[i].node.op == Op::kSplit0 || nodes[i].node.op == Op::kSplit1)
        eg.set_filtered(cls, i);
  }
  expect_engine_parity(eg, model());
  const EngineExtractionResult r = extract_engine(eg, model());
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.graph.op_histogram().count(Op::kSplit0), 0u);
}

TEST(ExtractEngine, GreedyMissedSharingStillFound) {
  // The engine's reductions must not presolve away the shared-subgraph win
  // the ILP exists for (paper §6.5).
  EGraph eg = shared_matmul_egraph();
  const ExtractionResult greedy = extract_greedy(eg, model());
  const EngineExtractionResult engine = extract_engine(eg, model());
  ASSERT_TRUE(greedy.ok);
  ASSERT_TRUE(engine.ok);
  EXPECT_LT(engine.cost, greedy.cost - 1e-6);
  EXPECT_GT(engine.graph.op_histogram().count(Op::kSplit), 0u);
}

TEST(ExtractEngine, StatsBreakdownFilled) {
  EGraph eg = shared_matmul_egraph();
  const EngineExtractionResult r = extract_engine(eg, model());
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.stats.classes_reachable, 0u);
  // The weight/leaf towers of the Fig. 2 graph must presolve away.
  EXPECT_GT(r.stats.classes_forced + r.stats.classes_collapsed, 0u);
  EXPECT_GT(r.stats.milp_vars_total, 0u);
  EXPECT_GE(r.stats.largest_core_vars, 1u);
  EXPECT_GE(r.stats.num_cores, 1u);
  // The engine's instance is strictly smaller than the monolithic one.
  const IlpExtractionResult mono = extract_ilp(eg, model());
  EXPECT_LT(r.stats.milp_vars_total, mono.num_vars);
}

TEST(ExtractEngine, RootClassFullyFilteredIsInfeasible) {
  EGraph eg = shared_matmul_egraph();
  const Id root = eg.root();
  const size_t root_nodes = eg.eclass(root).nodes.size();
  for (size_t i = 0; i < root_nodes; ++i) eg.set_filtered(root, i);

  const ExtractionResult greedy = extract_greedy(eg, model());
  EXPECT_FALSE(greedy.ok);
  const IlpExtractionResult mono = extract_ilp(eg, model());
  EXPECT_FALSE(mono.ok);
  EXPECT_EQ(mono.milp_status, MilpStatus::kInfeasible);
  const EngineExtractionResult engine = extract_engine(eg, model());
  EXPECT_FALSE(engine.ok);
  EXPECT_EQ(engine.milp_status, MilpStatus::kInfeasible);
}

TEST(ExtractEngine, UnmappableGreedyWarmStartStillSolves) {
  // Class X = { ewadd(c, c), relu(c) } where the greedy DP double-counts c
  // (it sums per child occurrence) and so picks relu, while the monolithic
  // presolve groups both e-nodes under the deduped child set {c} and keeps
  // the cheaper ewadd — the greedy warm start maps to no variable and must
  // be dropped, not crash, and both paths still reach the true optimum.
  const FixedCostModel fixed({{Op::kMatmul, 20.0}, {Op::kEwadd, 1.0},
                              {Op::kRelu, 10.0}});
  Graph g;
  const Id x = g.input("x", {8, 8});
  const Id w = g.weight("w", {8, 8});
  const Id c = g.matmul(x, w);
  g.add_root(g.ewadd(c, c));
  EGraph eg = seed_egraph(g);
  Graph g2;
  const Id x2 = g2.input("x", {8, 8});
  const Id w2 = g2.weight("w", {8, 8});
  g2.add_root(g2.relu(g2.matmul(x2, w2)));
  auto m2 = eg.add_graph(g2);
  eg.merge(eg.root(), m2.at(g2.roots()[0]));
  eg.rebuild();

  // Greedy really does take the bait: 10 + 20 < 1 + 20 + 20.
  const ExtractionResult greedy = extract_greedy(eg, fixed);
  ASSERT_TRUE(greedy.ok);
  EXPECT_NEAR(greedy.cost, 30.0, 1e-9);

  IlpExtractOptions base;
  base.rel_gap = 0.0;
  const IlpExtractionResult mono = extract_ilp(eg, fixed, base);
  ASSERT_TRUE(mono.ok);
  EXPECT_EQ(mono.milp_status, MilpStatus::kOptimal);
  EXPECT_NEAR(mono.cost, 21.0, 1e-9);  // ewadd(c,c): 1 + one shared matmul
  expect_engine_parity(eg, fixed);
}

TEST(ExtractEngine, CyclicSelectionWithoutConstraintsFallsBackToGreedy) {
  // Cyclic e-graph, no filtering, cycle_constraints off: the cyclic
  // selection is strictly cheaper under a model that makes matmul expensive
  // and the merged-path ops cheap, so the MILP optimum is cyclic and both
  // paths must fall back to the greedy graph.
  const FixedCostModel fixed({{Op::kMatmul, 1000.0}, {Op::kConcat2, 1.0},
                              {Op::kSplit, 1.0}, {Op::kSplit0, 1.0},
                              {Op::kSplit1, 1.0}});
  Graph g;
  const Id x = g.input("x", {4, 4});
  const Id y = g.weight("y", {4, 4});
  const Id m1 = g.matmul(x, y);
  const Id m2 = g.matmul(x, m1);
  g.add_root(m2);
  EGraph eg = seed_egraph(g);
  ASSERT_TRUE(apply_fig2_rule(eg));

  IlpExtractOptions base;
  base.rel_gap = 0.0;
  const IlpExtractionResult mono = extract_ilp(eg, fixed, base);
  ASSERT_TRUE(mono.ok);  // greedy fallback
  EXPECT_TRUE(mono.cyclic_selection);
  ExtractEngineOptions engine_opt;
  engine_opt.rel_gap = 0.0;
  const EngineExtractionResult engine = extract_engine(eg, fixed, engine_opt);
  ASSERT_TRUE(engine.ok);
  EXPECT_TRUE(engine.cyclic_selection);
  EXPECT_NEAR(engine.cost, mono.cost, 1e-9);
  EXPECT_GT(engine.graph.topo_order().size(), 0u);  // the fallback is a DAG
}

TEST(ExtractEngine, CoreTooLargeRefusedWithoutFallback) {
  EGraph eg = shared_matmul_egraph();
  ExtractEngineOptions opt;
  opt.max_core_nodes = 1;
  opt.lp_fallback = false;  // pre-fallback baseline: refuse outright
  const EngineExtractionResult r = extract_engine(eg, model(), opt);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.too_large);
  EXPECT_TRUE(r.timed_out);
}

TEST(ExtractEngine, OversizedCoreFallsBackToLpRounding) {
  EGraph eg = shared_matmul_egraph();
  ExtractEngineOptions opt;
  opt.max_core_nodes = 1;  // forces every core through the fallback
  const EngineExtractionResult r = extract_engine(eg, model(), opt);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.too_large);
  EXPECT_FALSE(r.timed_out);
  EXPECT_GE(r.stats.fallback_cores, 1u);
  // Feasible selection, never worse than the greedy warm start, with a
  // certified gap against the root LP bound.
  const ExtractionResult greedy = extract_greedy(eg, model());
  ASSERT_TRUE(greedy.ok);
  EXPECT_LE(r.cost, greedy.cost + 1e-9);
  EXPECT_GE(r.cost, r.best_bound - 1e-6);
  EXPECT_GE(r.stats.gap, 0.0);
  EXPECT_LT(r.stats.gap, kInf);
}

TEST(ExtractEngine, MonolithicDelegationMatchesExtractIlp) {
  EGraph eg = shared_matmul_egraph();
  ExtractEngineOptions opt;
  opt.decompose = false;
  const EngineExtractionResult via_engine = extract_engine(eg, model(), opt);
  const IlpExtractionResult direct = extract_ilp(eg, model(), opt);
  EXPECT_FALSE(via_engine.decomposed);
  ASSERT_TRUE(via_engine.ok);
  ASSERT_TRUE(direct.ok);
  EXPECT_NEAR(via_engine.cost, direct.cost, 1e-9);
  EXPECT_EQ(via_engine.num_vars, direct.num_vars);
}

TEST(ExtractEngine, SolvesInstanceMonolithicRejectsAsTooLarge) {
  // Many independent shared-matmul motifs: the monolithic instance grows
  // with the motif count while the engine's largest core stays the size of
  // one motif.
  Graph g;
  for (int grp = 0; grp < 6; ++grp) {
    const Id x = g.input("x" + std::to_string(grp), {64, 256});
    const Id w1 = g.weight("w1_" + std::to_string(grp), {256, 256});
    const Id w2 = g.weight("w2_" + std::to_string(grp), {256, 256});
    g.add_root(g.matmul(x, w1));
    g.add_root(g.matmul(x, w2));
  }
  EGraph eg = seed_egraph(g);
  ASSERT_TRUE(apply_fig2_rule(eg));

  // Cap chosen between the largest engine core and the monolithic instance.
  const IlpExtractionResult probe = extract_ilp(eg, model());
  const EngineExtractionResult engine_probe = extract_engine(eg, model());
  ASSERT_TRUE(engine_probe.ok);
  ASSERT_LT(engine_probe.stats.largest_core_vars, probe.num_vars);

  IlpExtractOptions mono_opt;
  mono_opt.max_instance_nodes = engine_probe.stats.largest_core_vars;
  const IlpExtractionResult mono = extract_ilp(eg, model(), mono_opt);
  EXPECT_FALSE(mono.ok);
  EXPECT_TRUE(mono.too_large);

  ExtractEngineOptions engine_opt;
  engine_opt.max_core_nodes = engine_probe.stats.largest_core_vars;
  const EngineExtractionResult engine = extract_engine(eg, model(), engine_opt);
  ASSERT_TRUE(engine.ok);
  EXPECT_FALSE(engine.too_large);
  EXPECT_GT(engine.stats.num_cores, 1u);
  EXPECT_NEAR(engine.cost, probe.cost, 1e-6);

  // An explicit thread count forces the pooled per-core solve path even on
  // small instances (the dispatch gate only applies to the default) — the
  // sanitizer jobs exercise the parallel fan-out through this.
  ExtractEngineOptions pooled_opt = engine_opt;
  pooled_opt.core_threads = 3;
  const EngineExtractionResult pooled = extract_engine(eg, model(), pooled_opt);
  ASSERT_TRUE(pooled.ok);
  EXPECT_NEAR(pooled.cost, engine.cost, 1e-9);
  EXPECT_EQ(pooled.stats.num_cores, engine.stats.num_cores);
}

TEST(ExtractEngine, OptimizerRoutesThroughEngine) {
  Graph g;
  const Id x = g.input("x", {64, 512});
  const Id w1 = g.weight("w1", {512, 512});
  const Id w2 = g.weight("w2", {512, 512});
  g.add_root(g.matmul(x, w1));
  g.add_root(g.matmul(x, w2));
  TensatOptions options;
  options.k_max = 4;
  options.k_multi = 1;
  options.node_limit = 2000;
  const TensatResult engine_run = optimize(g, default_rules(), model(), options);
  ASSERT_TRUE(engine_run.ok);
  EXPECT_TRUE(engine_run.ilp.decomposed);
  EXPECT_GT(engine_run.extract_stats.classes_reachable, 0u);

  TensatOptions mono_options = options;
  mono_options.ilp.decompose = false;
  const TensatResult mono_run = optimize(g, default_rules(), model(), mono_options);
  ASSERT_TRUE(mono_run.ok);
  EXPECT_FALSE(mono_run.ilp.decomposed);
  EXPECT_NEAR(engine_run.optimized_cost, mono_run.optimized_cost, 1e-6);
}

}  // namespace
}  // namespace tensat
