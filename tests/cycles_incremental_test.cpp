// Differential suite for the incremental cycle analysis
// (cycles/incremental.h) against the fresh-rebuild baseline it replaces:
//
//  * full explorations on BERT / NasRNN / SharedMM with
//    TensatOptions::incremental_cycles on vs off must produce identical
//    filtered-node sets and bit-identical e-graphs after every iteration
//    (k_max = k replays exactly the first k iterations, so sweeping k pins
//    the per-iteration states, not just the final one);
//  * the incremental map's reaches() must equal a DescendantsMap built
//    fresh on the same clean e-graph after every epoch advance;
//  * the scoped sweep must filter exactly the nodes the full filter_cycles
//    pass filters;
//  * large fused regions must trip the full-reconstruction fallback without
//    changing any answer;
//  * the e-graph's CycleJournal must record every mutation class the
//    analysis depends on (adds, apply-phase and congruence merges,
//    filterings).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cycles/cycles.h"
#include "cycles/incremental.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "tests/egraph_fingerprint.h"

namespace tensat {
namespace {

Graph shared_matmuls(int groups, int per_group) {
  Graph g;
  for (int grp = 0; grp < groups; ++grp) {
    const Id x = g.input("x" + std::to_string(grp), {64, 64});
    for (int i = 0; i < per_group; ++i) {
      const Id w =
          g.weight("w" + std::to_string(grp) + "_" + std::to_string(i), {64, 64});
      g.add_root(g.matmul(x, w));
    }
  }
  return g;
}

std::vector<ModelInfo> differential_models() {
  std::vector<ModelInfo> models;
  models.push_back({"BERT(2,32,128)", make_bert(2, 32, 128)});
  models.push_back({"NasRNN(1,8,64)", make_nasrnn(1, 8, 64)});
  models.push_back({"SharedMM(4x6)", shared_matmuls(4, 6)});
  return models;
}

/// Canonical classes whose analysis value is a {64, 64} tensor — safe to
/// merge with one another (the analysis join requires equal kinds and
/// shapes; the e-graph also holds kNum/kStr parameter classes).
std::vector<Id> mergeable_tensor_classes(const EGraph& eg) {
  std::vector<Id> out;
  const std::vector<int32_t> shape{64, 64};
  for (Id cls : eg.canonical_classes())
    if (eg.data(cls).is_tensor() && eg.data(cls).shape == shape) out.push_back(cls);
  return out;
}

/// Mismatches between two reachability relations over all ordered pairs of
/// `classes`. Returns a count so a failure reports one number instead of a
/// million EXPECT lines.
size_t reaches_mismatches(const ReachabilityMap& a, const ReachabilityMap& b,
                          const std::vector<Id>& classes) {
  size_t mismatches = 0;
  for (Id from : classes)
    for (Id to : classes)
      if (a.reaches(from, to) != b.reaches(from, to)) ++mismatches;
  return mismatches;
}

/// Pairs where `fresh` reaches but `inc` does not — the unsound direction
/// for the pre-filter (it would let a known-cyclic merge through only to be
/// caught later, which is allowed, but the maps are specified to be equal).
size_t under_approximations(const ReachabilityMap& inc, const ReachabilityMap& fresh,
                            const std::vector<Id>& classes) {
  size_t misses = 0;
  for (Id from : classes)
    for (Id to : classes)
      if (fresh.reaches(from, to) && !inc.reaches(from, to)) ++misses;
  return misses;
}

// ---- Exploration-level differential ----------------------------------------

TEST(CyclesIncremental, ExplorationParityOnEveryIterationPrefix) {
  for (const ModelInfo& m : differential_models()) {
    for (int k = 1; k <= 3; ++k) {
      TensatOptions opt;
      opt.k_max = k;
      opt.k_multi = 1;
      opt.node_limit = 4000;

      opt.incremental_cycles = false;
      EGraph fresh = seed_egraph(m.graph);
      const ExploreStats fresh_stats = run_exploration(fresh, default_rules(), opt);

      opt.incremental_cycles = true;
      EGraph inc = seed_egraph(m.graph);
      const ExploreStats inc_stats = run_exploration(inc, default_rules(), opt);

      EXPECT_EQ(fresh_stats.iterations, inc_stats.iterations) << m.name << " k=" << k;
      EXPECT_EQ(fresh_stats.stop, inc_stats.stop) << m.name << " k=" << k;
      EXPECT_EQ(fresh_stats.applications, inc_stats.applications)
          << m.name << " k=" << k;
      EXPECT_EQ(fresh.num_filtered(), inc.num_filtered()) << m.name << " k=" << k;
      EXPECT_EQ(fingerprint(fresh), fingerprint(inc)) << m.name << " k=" << k;
      EXPECT_TRUE(is_acyclic(inc)) << m.name << " k=" << k;

      // The final e-graphs are clean, so the two reachability
      // implementations must agree on them too.
      const DescendantsMap fresh_map(fresh);
      const DescendantsMap inc_graph_map(inc);
      EXPECT_EQ(reaches_mismatches(fresh_map, inc_graph_map, inc.canonical_classes()),
                0u)
          << m.name << " k=" << k;
    }
  }
}

// ---- Epoch-level reaches() parity ------------------------------------------

TEST(CyclesIncremental, ReachesMatchesFreshMapAfterEveryEpoch) {
  // Deterministic churn driving the subsystem directly: add unary nodes over
  // existing classes, merge some of them back into their operands (which
  // closes cycles the sweep must resolve) and some sideways (plain fusion),
  // then rebuild / sweep / advance and compare against a from-scratch
  // DescendantsMap on the same clean e-graph.
  EGraph eg = seed_egraph(shared_matmuls(3, 3));
  eg.rebuild();
  IncrementalCycleAnalysis inc(eg);

  for (int round = 0; round < 6; ++round) {
    std::vector<Id> classes = mergeable_tensor_classes(eg);
    const size_t n = classes.size();
    // Adds: a relu and a tanh over a couple of round-dependent classes.
    std::vector<Id> added;
    for (int i = 0; i < 2; ++i) {
      const Id base = classes[(round * 7 + i * 3) % n];
      added.push_back(eg.add(TNode{Op::kRelu, 0, {}, {base}}));
      added.push_back(eg.add(TNode{Op::kTanh, 0, {}, {added.back()}}));
    }
    if (round % 2 == 0) {
      // Close a cycle: the class now contains a node reaching itself.
      eg.merge(classes[(round * 7) % n], added[1]);
    } else {
      // Sideways fusion (same shape by construction: unary over same base).
      eg.merge(added[0], added[2]);
    }
    eg.rebuild();
    inc.sweep_cycles();
    ASSERT_TRUE(is_acyclic(eg)) << "round " << round;
    inc.advance_epoch();

    const DescendantsMap fresh(eg);
    const std::vector<Id> canonical = eg.canonical_classes();
    EXPECT_EQ(under_approximations(inc, fresh, canonical), 0u) << "round " << round;
    EXPECT_EQ(reaches_mismatches(inc, fresh, canonical), 0u) << "round " << round;
  }
  // The churn above must exercise the scoped path, not just the fallback.
  EXPECT_GT(inc.stats().incremental_updates, 0u);
  EXPECT_EQ(inc.stats().epochs, 6u);
}

// ---- Scoped sweep vs full filter_cycles ------------------------------------

TEST(CyclesIncremental, ScopedSweepFiltersExactlyWhatFullSweepDoes) {
  // Two identical e-graphs get the same cycle-closing merges; one is swept
  // through the incremental analysis, the other with the full pass. The
  // filtered sets (and hence the fingerprints) must be identical, because
  // the scoped sweep delegates to the very same filter_cycles once its
  // detection DFS confirms a cycle.
  const auto build = [] {
    Graph g;
    const Id x = g.input("x", {8, 8});
    const Id r = g.relu(x);
    const Id t = g.tanh(r);
    g.add_root(g.ewadd(t, g.sigmoid(x)));
    return g;
  };
  EGraph full = seed_egraph(build());
  EGraph scoped = seed_egraph(build());
  full.rebuild();
  scoped.rebuild();
  ASSERT_EQ(fingerprint(full), fingerprint(scoped));
  IncrementalCycleAnalysis inc(scoped);

  // x = tanh(relu(x)): a cycle through two classes.
  const auto cycle_merge = [](EGraph& eg) {
    const std::vector<Id> classes = eg.canonical_classes();
    // Find the input class (the only leaf) and the tanh class.
    Id input = kInvalidId, tanh_cls = kInvalidId;
    for (Id cls : classes) {
      for (const EClassNode& e : eg.eclass(cls).nodes) {
        if (e.node.op == Op::kInput) input = cls;
        if (e.node.op == Op::kTanh) tanh_cls = cls;
      }
    }
    eg.merge(input, tanh_cls);
    eg.rebuild();
  };
  cycle_merge(full);
  cycle_merge(scoped);
  ASSERT_FALSE(is_acyclic(full));

  const size_t filtered_full = filter_cycles(full);
  const size_t filtered_scoped = inc.sweep_cycles();
  inc.advance_epoch();
  EXPECT_GE(filtered_full, 1u);
  EXPECT_EQ(filtered_full, filtered_scoped);
  EXPECT_TRUE(is_acyclic(scoped));
  EXPECT_EQ(fingerprint(full), fingerprint(scoped));
  EXPECT_EQ(inc.stats().sweeps_full, 1u);

  // And the post-filtering epoch still matches a fresh map (filtering
  // removes reachability, which the row recompute must propagate).
  const DescendantsMap fresh(scoped);
  EXPECT_EQ(reaches_mismatches(inc, fresh, scoped.canonical_classes()), 0u);
}

// ---- Fallback on large fused regions ---------------------------------------

TEST(CyclesIncremental, LargeMergeRegionFallsBackToFullReconstruction) {
  // Ten disjoint input->relu chains; merging every input into one class
  // dirties the single fused class plus (through congruence) every relu —
  // the whole graph — which must trip the fallback rather than "repair"
  // every row one by one.
  Graph g;
  std::vector<Id> roots;
  for (int i = 0; i < 10; ++i)
    g.add_root(g.relu(g.input("x" + std::to_string(i), {4, 4})));
  EGraph eg = seed_egraph(g);
  eg.rebuild();
  IncrementalCycleAnalysis inc(eg);
  ASSERT_EQ(inc.stats().fresh_rebuilds, 1u);  // the initial construction

  std::vector<Id> inputs;
  for (Id cls : eg.canonical_classes())
    for (const EClassNode& e : eg.eclass(cls).nodes)
      if (e.node.op == Op::kInput) inputs.push_back(cls);
  ASSERT_EQ(inputs.size(), 10u);
  for (size_t i = 1; i < inputs.size(); ++i) eg.merge(inputs[0], inputs[i]);
  eg.rebuild();
  inc.sweep_cycles();
  ASSERT_TRUE(is_acyclic(eg));
  inc.advance_epoch();

  EXPECT_EQ(inc.stats().fresh_rebuilds, 2u);
  EXPECT_EQ(inc.stats().incremental_updates, 0u);
  const DescendantsMap fresh(eg);
  EXPECT_EQ(reaches_mismatches(inc, fresh, eg.canonical_classes()), 0u);
}

// ---- Add-only epochs skip the sweep entirely --------------------------------

TEST(CyclesIncremental, AddOnlyEpochSkipsSweepAndStaysExact) {
  EGraph eg = seed_egraph(shared_matmuls(2, 2));
  eg.rebuild();
  IncrementalCycleAnalysis inc(eg);

  const Id base = mergeable_tensor_classes(eg).front();
  eg.add(TNode{Op::kRelu, 0, {}, {base}});
  eg.add(TNode{Op::kSigmoid, 0, {}, {base}});
  eg.rebuild();
  EXPECT_EQ(inc.sweep_cycles(), 0u);
  EXPECT_EQ(inc.stats().sweeps_skipped, 1u);  // no merges -> no DFS at all
  inc.advance_epoch();

  const DescendantsMap fresh(eg);
  EXPECT_EQ(reaches_mismatches(inc, fresh, eg.canonical_classes()), 0u);
  // Ids the epoch has never seen return false, like the fresh map.
  EXPECT_FALSE(inc.reaches(static_cast<Id>(eg.num_ids()) + 5, base));
  EXPECT_FALSE(inc.reaches(base, static_cast<Id>(eg.num_ids()) + 5));
  EXPECT_FALSE(inc.reaches(kInvalidId, base));
}

// ---- Journal unit coverage ---------------------------------------------------

TEST(CyclesIncremental, JournalRecordsAddsMergesCongruenceAndFilters) {
  Graph g;
  const Id a = g.input("a", {4, 4});
  const Id b = g.input("b", {4, 4});
  g.add_root(g.relu(a));
  g.add_root(g.relu(b));
  EGraph eg = seed_egraph(g);
  eg.rebuild();

  CycleJournal journal;
  eg.set_cycle_journal(&journal);
  ASSERT_TRUE(journal.empty());

  Id in_a = kInvalidId, in_b = kInvalidId;
  for (Id cls : eg.canonical_classes())
    for (const EClassNode& e : eg.eclass(cls).nodes)
      if (e.node.op == Op::kInput)
        (in_a == kInvalidId ? in_a : in_b) = cls;
  ASSERT_NE(in_b, kInvalidId);

  // An add lands in new_classes.
  const Id added = eg.add(TNode{Op::kTanh, 0, {}, {in_a}});
  ASSERT_EQ(journal.new_classes.size(), 1u);
  EXPECT_EQ(journal.new_classes[0], added);

  // Merging the two inputs records one merge; the rebuild's congruence
  // closure (relu(a) == relu(b)) records a second one.
  eg.merge(in_a, in_b);
  ASSERT_EQ(journal.merges.size(), 1u);
  eg.rebuild();
  EXPECT_EQ(journal.merges.size(), 2u);

  // set_filtered records the (canonical) class.
  eg.set_filtered(added, eg.eclass(added).nodes.size() - 1);
  ASSERT_EQ(journal.filtered_classes.size(), 1u);
  EXPECT_EQ(journal.filtered_classes[0], eg.find(added));
  // Re-filtering the same node is not a change.
  eg.set_filtered(added, eg.eclass(added).nodes.size() - 1);
  EXPECT_EQ(journal.filtered_classes.size(), 1u);

  eg.set_cycle_journal(nullptr);
  eg.add(TNode{Op::kSigmoid, 0, {}, {eg.find(in_a)}});
  EXPECT_EQ(journal.new_classes.size(), 1u);  // detached: no recording
}

}  // namespace
}  // namespace tensat
