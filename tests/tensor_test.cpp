#include <gtest/gtest.h>

#include <cmath>

#include "support/check.h"
#include "tensor/tensor.h"

namespace tensat {
namespace {

TEST(Tensor, ConstructAndIndex) {
  Tensor t({2, 3});
  EXPECT_EQ(t.volume(), 6);
  t.at2(1, 2) = 5.0f;
  EXPECT_EQ(t.at2(1, 2), 5.0f);
  EXPECT_EQ(t.at2(0, 0), 0.0f);
}

TEST(Tensor, OutOfRangeThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at2(2, 0), Error);
}

TEST(Tensor, EwaddAndEwmul) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {3.0f, 4.0f});
  EXPECT_EQ(ewadd(a, b).data()[0], 4.0f);
  EXPECT_EQ(ewadd(a, b).data()[1], 6.0f);
  EXPECT_EQ(ewmul(a, b).data()[0], 3.0f);
  EXPECT_EQ(ewmul(a, b).data()[1], 8.0f);
}

TEST(Tensor, Matmul2D) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  const Tensor c = matmul(a, b, kActNone);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 50.0f);
}

TEST(Tensor, MatmulActivationApplied) {
  Tensor a({1, 1}, {-2.0f});
  Tensor b({1, 1}, {3.0f});
  EXPECT_FLOAT_EQ(matmul(a, b, kActRelu).data()[0], 0.0f);
  EXPECT_NEAR(matmul(a, b, kActTanh).data()[0], std::tanh(-6.0f), 1e-6);
  EXPECT_NEAR(matmul(a, b, kActSigmoid).data()[0], 1.0f / (1.0f + std::exp(6.0f)),
              1e-6);
}

TEST(Tensor, MatmulBatchedMatchesPerSlice) {
  const Tensor a = random_tensor({3, 4, 5}, 1);
  const Tensor b = random_tensor({3, 5, 2}, 2);
  const Tensor c = matmul(a, b, kActNone);
  // Check one element of batch 2 by hand.
  double acc = 0;
  for (int k = 0; k < 5; ++k)
    acc += static_cast<double>(a.data()[2 * 20 + 1 * 5 + k]) * b.data()[2 * 10 + k * 2 + 1];
  EXPECT_NEAR(c.data()[2 * 8 + 1 * 2 + 1], acc, 1e-5);
}

TEST(Tensor, MatmulBroadcastRhsMatchesLoop) {
  const Tensor a = random_tensor({2, 3, 4}, 3);
  const Tensor w = random_tensor({4, 5}, 4);
  const Tensor c = matmul(a, w, kActNone);
  EXPECT_EQ(c.dims(), (std::vector<int32_t>{2, 3, 5}));
  double acc = 0;
  for (int k = 0; k < 4; ++k)
    acc += static_cast<double>(a.data()[1 * 12 + 2 * 4 + k]) * w.at2(k, 3);
  EXPECT_NEAR(c.data()[1 * 15 + 2 * 5 + 3], acc, 1e-5);
}

TEST(Tensor, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  const Tensor x = random_tensor({1, 1, 4, 4}, 5);
  Tensor w({1, 1, 1, 1}, {1.0f});
  const Tensor y = conv2d(x, w, 1, 1, kPadSame, kActNone);
  EXPECT_LT(Tensor::max_abs_diff(x, y), 1e-6);
}

TEST(Tensor, Conv2dValidSum) {
  // 2x2 all-ones kernel on VALID padding = sliding window sums.
  Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w({1, 1, 2, 2}, {1, 1, 1, 1});
  const Tensor y = conv2d(x, w, 1, 1, kPadValid, kActNone);
  EXPECT_EQ(y.dims(), (std::vector<int32_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(Tensor, Conv2dSamePadZeros) {
  // 3x3 ones kernel, SAME: corner output sums the 2x2 in-bounds block.
  Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w({1, 1, 3, 3}, std::vector<float>(9, 1.0f));
  const Tensor y = conv2d(x, w, 1, 1, kPadSame, kActNone);
  EXPECT_EQ(y.dims(), x.dims());
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 45.0f);
}

TEST(Tensor, GroupedConvSeparatesChannels) {
  // Depthwise conv (groups == channels) with per-channel scaling kernels.
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor w({2, 1, 1, 1}, {2.0f, 3.0f});
  const Tensor y = conv2d(x, w, 1, 1, kPadSame, kActNone);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), 30.0f);
}

TEST(Tensor, GroupedConvEqualsBlockDiagonalFull) {
  // A grouped conv equals a full conv with a block-diagonal weight.
  const int C = 4, G = 2;
  const Tensor x = random_tensor({1, C, 5, 5}, 6);
  const Tensor wg = random_tensor({4, C / G, 3, 3}, 7);
  Tensor wf({4, C, 3, 3});
  const int cout_per_group = 4 / G;
  for (int oc = 0; oc < 4; ++oc) {
    const int g = oc / cout_per_group;
    for (int ic = 0; ic < C / G; ++ic)
      for (int a = 0; a < 3; ++a)
        for (int b = 0; b < 3; ++b)
          wf.at4(oc, g * (C / G) + ic, a, b) = wg.at4(oc, ic, a, b);
  }
  const Tensor yg = conv2d(x, wg, 1, 1, kPadSame, kActNone);
  const Tensor yf = conv2d(x, wf, 1, 1, kPadSame, kActNone);
  EXPECT_LT(Tensor::max_abs_diff(yg, yf), 1e-5);
}

TEST(Tensor, PoolmaxBasic) {
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = poolmax(x, 2, 2, 2, 2, kPadValid, kActNone);
  EXPECT_EQ(y.volume(), 1);
  EXPECT_FLOAT_EQ(y.data()[0], 5.0f);
}

TEST(Tensor, PoolavgExcludesPadding) {
  Tensor x({1, 1, 2, 2}, {2, 2, 2, 2});
  const Tensor y = poolavg(x, 3, 3, 1, 1, kPadSame, kActNone);
  // Every window only averages in-bounds elements (all equal 2).
  for (int64_t i = 0; i < y.volume(); ++i) EXPECT_FLOAT_EQ(y.data()[i], 2.0f);
}

TEST(Tensor, TransposeInverts) {
  const Tensor x = random_tensor({3, 4}, 8);
  const int32_t perm[] = {1, 0};
  const Tensor t = transpose(transpose(x, perm), perm);
  EXPECT_LT(Tensor::max_abs_diff(x, t), 1e-7);
}

TEST(Tensor, Transpose3D) {
  const Tensor x = random_tensor({2, 3, 4}, 9);
  const int32_t perm[] = {2, 0, 1};
  const Tensor t = transpose(x, perm);
  EXPECT_EQ(t.dims(), (std::vector<int32_t>{4, 2, 3}));
  const int32_t i_t[] = {3, 1, 2};
  const int32_t i_x[] = {1, 2, 3};
  EXPECT_FLOAT_EQ(t.at(i_t), x.at(i_x));
}

TEST(Tensor, ConcatSplitRoundTrip) {
  const Tensor a = random_tensor({2, 3, 4}, 10);
  const Tensor b = random_tensor({2, 5, 4}, 11);
  const Tensor* inputs[] = {&a, &b};
  const Tensor cat = concat(1, inputs);
  EXPECT_EQ(cat.dims(), (std::vector<int32_t>{2, 8, 4}));
  auto [x, y] = split_at(cat, 1, 3);
  EXPECT_LT(Tensor::max_abs_diff(a, x), 1e-7);
  EXPECT_LT(Tensor::max_abs_diff(b, y), 1e-7);
}

TEST(Tensor, EnlargeCentersKernel) {
  Tensor w({1, 1, 1, 1}, {7.0f});
  const Tensor e = enlarge(w, 3, 3);
  EXPECT_EQ(e.dims(), (std::vector<int32_t>{1, 1, 3, 3}));
  EXPECT_FLOAT_EQ(e.at4(0, 0, 1, 1), 7.0f);
  EXPECT_FLOAT_EQ(e.at4(0, 0, 0, 0), 0.0f);
}

TEST(Tensor, EnlargedKernelSameConvEquivalence) {
  // The soundness fact behind the conv-enlarge rules: SAME-padding conv with
  // a zero-enlarged kernel equals the original conv.
  const Tensor x = random_tensor({1, 3, 8, 8}, 12);
  const Tensor w = random_tensor({2, 3, 1, 1}, 13);
  const Tensor y1 = conv2d(x, w, 1, 1, kPadSame, kActNone);
  const Tensor y2 = conv2d(x, enlarge(w, 3, 3), 1, 1, kPadSame, kActNone);
  EXPECT_LT(Tensor::max_abs_diff(y1, y2), 1e-5);
}

TEST(Tensor, EnlargedKernelStridedEquivalence) {
  const Tensor x = random_tensor({1, 2, 9, 9}, 14);
  const Tensor w = random_tensor({2, 2, 3, 3}, 15);
  const Tensor y1 = conv2d(x, w, 2, 2, kPadSame, kActNone);
  const Tensor y2 = conv2d(x, enlarge(w, 5, 5), 2, 2, kPadSame, kActNone);
  EXPECT_LT(Tensor::max_abs_diff(y1, y2), 1e-5);
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor x = random_tensor({2, 6}, 16);
  const Tensor y = reshape(x, {3, 4});
  for (int64_t i = 0; i < x.volume(); ++i) EXPECT_EQ(x.data()[i], y.data()[i]);
}

TEST(Tensor, RandomTensorDeterministic) {
  const Tensor a = random_tensor({4, 4}, 42);
  const Tensor b = random_tensor({4, 4}, 42);
  EXPECT_LT(Tensor::max_abs_diff(a, b), 0.0f + 1e-12);
  const Tensor c = random_tensor({4, 4}, 43);
  EXPECT_GT(Tensor::max_abs_diff(a, c), 1e-3);
}

}  // namespace
}  // namespace tensat
