// Parser robustness: arbitrary token soup must either parse or throw
// tensat::Error — never crash, hang, or corrupt the graph. Also checks the
// print -> parse -> print fixpoint on randomly generated patterns, and — the
// service ingestion path — the save_graph/load_graph round trip plus its
// malformed-input rejection (a long-lived service must never crash or
// silently mis-parse user-supplied graph text).
#include <gtest/gtest.h>

#include <string>

#include "lang/parse.h"
#include "serialize/serialize.h"
#include "support/check.h"
#include "support/rng.h"

namespace tensat {
namespace {

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  Rng rng(31337 + GetParam());
  static const char* kTokens[] = {"(",      ")",       "ewadd",  "matmul", "conv",
                                  "split",  "split0",  "relu",   "?x",     "?y",
                                  "0",      "1",       "2",      "1_0",    "x@2_3",
                                  "concat2", "transpose", "noop", "str",    "-5"};
  std::string input;
  const int len = 1 + static_cast<int>(rng.below(25));
  for (int i = 0; i < len; ++i) {
    input += kTokens[rng.below(std::size(kTokens))];
    input += ' ';
  }
  Graph g(GraphKind::kPattern);
  try {
    const Id root = parse_into(g, input);
    // If it parsed, the result must print and re-parse to the same form.
    const std::string printed = g.to_sexpr(root);
    Graph g2(GraphKind::kPattern);
    const Id root2 = parse_into(g2, printed);
    EXPECT_EQ(g2.to_sexpr(root2), printed);
  } catch (const Error&) {
    // Expected for malformed input.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 200));

/// Random well-formed pattern generator.
Id random_pattern(Graph& g, Rng& rng, int depth) {
  if (depth <= 0 || rng.chance(0.3)) {
    switch (rng.below(3)) {
      case 0:
        return g.var("v" + std::to_string(rng.below(4)));
      case 1:
        return g.num(static_cast<int64_t>(rng.range(0, 3)));
      default:
        return g.str("s" + std::to_string(rng.below(3)));
    }
  }
  static const Op kOps[] = {Op::kEwadd, Op::kEwmul, Op::kRelu,    Op::kTanh,
                            Op::kMatmul, Op::kConcat2, Op::kTranspose};
  const Op op = kOps[rng.below(std::size(kOps))];
  TNode node{op, 0, {}, {}};
  for (int i = 0; i < op_arity(op); ++i)
    node.children.push_back(random_pattern(g, rng, depth - 1));
  return g.add(std::move(node));
}

class PrintParseRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrintParseRoundTrip, GeneratedPatterns) {
  Rng rng(616 + GetParam());
  Graph g(GraphKind::kPattern);
  const Id root = random_pattern(g, rng, 4);
  const std::string printed = g.to_sexpr(root);
  Graph g2(GraphKind::kPattern);
  const Id root2 = parse_into(g2, printed);
  EXPECT_EQ(g2.to_sexpr(root2), printed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseRoundTrip, ::testing::Range(0, 50));

TEST(ParserEdge, DeeplyNestedInputIsFine) {
  std::string deep;
  constexpr int kDepth = 2000;
  for (int i = 0; i < kDepth; ++i) deep += "(relu ";
  deep += "?x";
  for (int i = 0; i < kDepth; ++i) deep += ")";
  Graph g(GraphKind::kPattern);
  EXPECT_NO_THROW(parse_into(g, deep));
  EXPECT_EQ(g.size(), kDepth + 1u);  // hash-consing cannot collapse a chain
}

TEST(ParserEdge, WhitespaceVariants) {
  Graph g(GraphKind::kPattern);
  const Id a = parse_into(g, "(ewadd ?x ?y)");
  const Id b = parse_into(g, "  (ewadd\n\t?x    ?y\n)  ");
  EXPECT_EQ(a, b);  // same hash-consed node
}

TEST(ParserEdge, NegativeNumbersAreNumLeaves) {
  Graph g(GraphKind::kPattern);
  const Id root = parse_into(g, "(ewadd ?x ?x)");
  (void)root;
  const Id n = parse_into(g, "-7");
  EXPECT_EQ(g.node(n).op, Op::kNum);
  EXPECT_EQ(g.node(n).num, -7);
}

// ---- serialize round-trip regime -------------------------------------------

/// Random well-formed concrete graph: shape-preserving op chains over a few
/// 2-D inputs, so every generated graph also passes shape inference.
Graph random_concrete_graph(Rng& rng) {
  Graph g;
  const int dim = 2 + static_cast<int>(rng.below(3)) * 2;  // 2, 4, or 6
  std::vector<Id> pool;
  const int inputs = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < inputs; ++i)
    pool.push_back(rng.chance(0.5) ? g.input("in" + std::to_string(i), {dim, dim})
                                   : g.weight("w" + std::to_string(i), {dim, dim}));
  const int steps = 1 + static_cast<int>(rng.below(12));
  for (int i = 0; i < steps; ++i) {
    const Id a = pool[rng.below(pool.size())];
    const Id b = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: pool.push_back(g.ewadd(a, b)); break;
      case 1: pool.push_back(g.ewmul(a, b)); break;
      case 2: pool.push_back(g.relu(a)); break;
      default: pool.push_back(g.matmul(a, b)); break;
    }
  }
  std::vector<Id> roots;
  const int nroots = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < nroots; ++i) roots.push_back(pool[pool.size() - 1 - i]);
  g.set_roots(std::move(roots));
  return g;
}

class SerializeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SerializeRoundTrip, SaveLoadSaveIsFixpoint) {
  Rng rng(90210 + GetParam());
  const Graph g = random_concrete_graph(rng);
  const std::string once = save_graph_to_string(g);
  const Graph back = load_graph_from_string(once);
  EXPECT_EQ(save_graph_to_string(back), once);
  EXPECT_EQ(back.canonical_key(), g.canonical_key());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTrip, ::testing::Range(0, 50));

class SerializeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SerializeFuzz, RandomLineSoupNeverCrashes) {
  Rng rng(4242 + GetParam());
  static const char* kTokens[] = {"0",     "1",    "2",     "-1",   "roots",
                                  "num",   "str",  "var",   "relu", "ewadd",
                                  "matmul", "x@2_3", "w@9999999999", "junk",
                                  "3x",    "tensat-graph"};
  std::string input = "tensat-graph v1\n";
  const int lines = 1 + static_cast<int>(rng.below(8));
  for (int l = 0; l < lines; ++l) {
    const int len = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < len; ++i) {
      input += kTokens[rng.below(std::size(kTokens))];
      input += ' ';
    }
    input += '\n';
  }
  try {
    const Graph g = load_graph_from_string(input);
    // If it parsed, it must round-trip exactly.
    EXPECT_EQ(save_graph_to_string(load_graph_from_string(save_graph_to_string(g))),
              save_graph_to_string(g));
  } catch (const Error&) {
    // Expected for malformed input.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz, ::testing::Range(0, 200));

TEST(SerializeEdge, MalformedInputsThrow) {
  static const char* kBad[] = {
      // Trailing garbage on the roots line (used to be silently dropped).
      "tensat-graph v1\n0 num 3\nroots 0 junk\n",
      // Non-integer child token (used to silently truncate the child list).
      "tensat-graph v1\n0 num 3\n1 relu 0junk\nroots 1\n",
      // Negative node id on the definition side.
      "tensat-graph v1\n-1 num 3\nroots -1\n",
      // Duplicate id.
      "tensat-graph v1\n0 num 3\n0 num 4\nroots 0\n",
      // Content after the roots line (used to be silently ignored).
      "tensat-graph v1\n0 num 3\nroots 0\n1 num 4\n",
      // Trailing token on a num payload line.
      "tensat-graph v1\n0 num 3 extra\nroots 0\n",
      // Trailing token on a str payload line.
      "tensat-graph v1\n0 str x@2_2 extra\nroots 0\n",
      // num payload overflow.
      "tensat-graph v1\n0 num 99999999999999999999999999\nroots 0\n",
      // Roots referencing an unknown id.
      "tensat-graph v1\n0 num 3\nroots 5\n",
      // Empty roots line.
      "tensat-graph v1\n0 num 3\nroots\n",
  };
  for (const char* bad : kBad) {
    EXPECT_THROW(load_graph_from_string(bad), Error) << bad;
  }
}

TEST(SerializeEdge, OverflowShapeLiteralThrows) {
  // An overflow-sized shape literal parses as a str payload, but the input
  // node consuming it runs shape inference inside Graph::add — the overflow
  // must surface as tensat::Error (not an assert or a silent truncation)
  // while still inside load_graph.
  EXPECT_THROW(load_graph_from_string(
                   "tensat-graph v1\n0 str x@99999999999\n1 input 0\nroots 1\n"),
               Error);
}

}  // namespace
}  // namespace tensat
