// Parser robustness: arbitrary token soup must either parse or throw
// tensat::Error — never crash, hang, or corrupt the graph. Also checks the
// print -> parse -> print fixpoint on randomly generated patterns.
#include <gtest/gtest.h>

#include <string>

#include "lang/parse.h"
#include "support/check.h"
#include "support/rng.h"

namespace tensat {
namespace {

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  Rng rng(31337 + GetParam());
  static const char* kTokens[] = {"(",      ")",       "ewadd",  "matmul", "conv",
                                  "split",  "split0",  "relu",   "?x",     "?y",
                                  "0",      "1",       "2",      "1_0",    "x@2_3",
                                  "concat2", "transpose", "noop", "str",    "-5"};
  std::string input;
  const int len = 1 + static_cast<int>(rng.below(25));
  for (int i = 0; i < len; ++i) {
    input += kTokens[rng.below(std::size(kTokens))];
    input += ' ';
  }
  Graph g(GraphKind::kPattern);
  try {
    const Id root = parse_into(g, input);
    // If it parsed, the result must print and re-parse to the same form.
    const std::string printed = g.to_sexpr(root);
    Graph g2(GraphKind::kPattern);
    const Id root2 = parse_into(g2, printed);
    EXPECT_EQ(g2.to_sexpr(root2), printed);
  } catch (const Error&) {
    // Expected for malformed input.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 200));

/// Random well-formed pattern generator.
Id random_pattern(Graph& g, Rng& rng, int depth) {
  if (depth <= 0 || rng.chance(0.3)) {
    switch (rng.below(3)) {
      case 0:
        return g.var("v" + std::to_string(rng.below(4)));
      case 1:
        return g.num(static_cast<int64_t>(rng.range(0, 3)));
      default:
        return g.str("s" + std::to_string(rng.below(3)));
    }
  }
  static const Op kOps[] = {Op::kEwadd, Op::kEwmul, Op::kRelu,    Op::kTanh,
                            Op::kMatmul, Op::kConcat2, Op::kTranspose};
  const Op op = kOps[rng.below(std::size(kOps))];
  TNode node{op, 0, {}, {}};
  for (int i = 0; i < op_arity(op); ++i)
    node.children.push_back(random_pattern(g, rng, depth - 1));
  return g.add(std::move(node));
}

class PrintParseRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrintParseRoundTrip, GeneratedPatterns) {
  Rng rng(616 + GetParam());
  Graph g(GraphKind::kPattern);
  const Id root = random_pattern(g, rng, 4);
  const std::string printed = g.to_sexpr(root);
  Graph g2(GraphKind::kPattern);
  const Id root2 = parse_into(g2, printed);
  EXPECT_EQ(g2.to_sexpr(root2), printed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseRoundTrip, ::testing::Range(0, 50));

TEST(ParserEdge, DeeplyNestedInputIsFine) {
  std::string deep;
  constexpr int kDepth = 2000;
  for (int i = 0; i < kDepth; ++i) deep += "(relu ";
  deep += "?x";
  for (int i = 0; i < kDepth; ++i) deep += ")";
  Graph g(GraphKind::kPattern);
  EXPECT_NO_THROW(parse_into(g, deep));
  EXPECT_EQ(g.size(), kDepth + 1u);  // hash-consing cannot collapse a chain
}

TEST(ParserEdge, WhitespaceVariants) {
  Graph g(GraphKind::kPattern);
  const Id a = parse_into(g, "(ewadd ?x ?y)");
  const Id b = parse_into(g, "  (ewadd\n\t?x    ?y\n)  ");
  EXPECT_EQ(a, b);  // same hash-consed node
}

TEST(ParserEdge, NegativeNumbersAreNumLeaves) {
  Graph g(GraphKind::kPattern);
  const Id root = parse_into(g, "(ewadd ?x ?x)");
  (void)root;
  const Id n = parse_into(g, "-7");
  EXPECT_EQ(g.node(n).op, Op::kNum);
  EXPECT_EQ(g.node(n).num, -7);
}

}  // namespace
}  // namespace tensat
