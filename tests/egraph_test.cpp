#include <gtest/gtest.h>

#include "egraph/egraph.h"
#include "egraph/union_find.h"
#include "lang/parse.h"
#include "support/check.h"
#include "support/rng.h"

namespace tensat {
namespace {

TEST(UnionFind, BasicOps) {
  UnionFind uf;
  const Id a = uf.make_set();
  const Id b = uf.make_set();
  const Id c = uf.make_set();
  EXPECT_NE(uf.find(a), uf.find(b));
  uf.unite(a, b);
  EXPECT_EQ(uf.find(a), uf.find(b));
  EXPECT_NE(uf.find(a), uf.find(c));
  uf.unite(b, c);
  EXPECT_EQ(uf.find(a), uf.find(c));
}

TEST(UnionFind, RandomizedInvariants) {
  Rng rng(42);
  UnionFind uf;
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) uf.make_set();
  // Mirror with a naive labels array.
  std::vector<int> label(kN);
  for (int i = 0; i < kN; ++i) label[i] = i;
  for (int step = 0; step < 500; ++step) {
    const Id a = static_cast<Id>(rng.below(kN));
    const Id b = static_cast<Id>(rng.below(kN));
    uf.unite(a, b);
    const int la = label[a], lb = label[b];
    if (la != lb)
      for (int& l : label)
        if (l == lb) l = la;
    // Spot-check equivalence agreement.
    const Id x = static_cast<Id>(rng.below(kN));
    const Id y = static_cast<Id>(rng.below(kN));
    EXPECT_EQ(uf.find(x) == uf.find(y), label[x] == label[y]);
  }
}

Graph simple_graph() {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.weight("b", {2, 2});
  g.add_root(g.ewadd(g.matmul(a, b), a));
  return g;
}

TEST(EGraph, AddGraphDeduplicates) {
  Graph g = simple_graph();
  EGraph eg;
  auto mapping = eg.add_graph(g);
  // Re-adding maps to the same classes and adds nothing.
  const size_t before = eg.num_enodes_total();
  auto mapping2 = eg.add_graph(g);
  EXPECT_EQ(eg.num_enodes_total(), before);
  for (const auto& [gid, cls] : mapping) EXPECT_EQ(eg.find(cls), eg.find(mapping2.at(gid)));
}

TEST(EGraph, AnalysisDataMatchesGraphInfo) {
  Graph g = simple_graph();
  EGraph eg;
  auto mapping = eg.add_graph(g);
  for (const auto& [gid, cls] : mapping) {
    EXPECT_EQ(eg.data(cls).shape, g.info(gid).shape);
    EXPECT_EQ(eg.data(cls).kind, g.info(gid).kind);
  }
}

TEST(EGraph, TryAddShapeCheckFails) {
  EGraph eg;
  Graph g;
  const Id a = g.input("a", {2, 3});
  const Id b = g.input("b", {3, 4});
  auto mapping = eg.add_graph([&] {
    g.add_root(a);
    g.add_root(b);
    return g;
  }());
  TNode bad{Op::kEwadd, 0, {}, {mapping.at(a), mapping.at(b)}};
  EXPECT_FALSE(eg.try_add(bad).has_value());
}

TEST(EGraph, MergeUnionsClasses) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id r1 = g.relu(a);
  const Id r2 = g.sigmoid(a);
  g.add_root(r1);
  g.add_root(r2);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  EXPECT_TRUE(eg.merge(mapping.at(r1), mapping.at(r2)));
  EXPECT_FALSE(eg.merge(mapping.at(r1), mapping.at(r2)));  // already merged
  eg.rebuild();
  EXPECT_EQ(eg.find(mapping.at(r1)), eg.find(mapping.at(r2)));
  EXPECT_EQ(eg.eclass(mapping.at(r1)).nodes.size(), 2u);
}

TEST(EGraph, CongruenceClosure) {
  // If a == b then f(a) == f(b) after rebuild.
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.input("b", {2, 2});
  const Id fa = g.relu(a);
  const Id fb = g.relu(b);
  g.add_root(fa);
  g.add_root(fb);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  EXPECT_NE(eg.find(mapping.at(fa)), eg.find(mapping.at(fb)));
  eg.merge(mapping.at(a), mapping.at(b));
  eg.rebuild();
  EXPECT_EQ(eg.find(mapping.at(fa)), eg.find(mapping.at(fb)));
}

TEST(EGraph, TransitiveCongruence) {
  // g(f(a)) == g(f(b)) requires two congruence steps.
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.input("b", {2, 2});
  const Id ga = g.tanh(g.relu(a));
  const Id gb = g.tanh(g.relu(b));
  g.add_root(ga);
  g.add_root(gb);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.merge(mapping.at(a), mapping.at(b));
  eg.rebuild();
  EXPECT_EQ(eg.find(mapping.at(ga)), eg.find(mapping.at(gb)));
}

TEST(EGraph, HashconsCanonicalAfterRebuild) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.input("b", {2, 2});
  const Id fa = g.relu(a);
  g.add_root(fa);
  g.add_root(b);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.merge(mapping.at(a), mapping.at(b));
  eg.rebuild();
  // Adding relu(b) must hit the same class as relu(a).
  TNode rb{Op::kRelu, 0, {}, {eg.find(mapping.at(b))}};
  EXPECT_EQ(eg.find(eg.add(std::move(rb))), eg.find(mapping.at(fa)));
}

TEST(EGraph, MergePreservesWeightOnlyUnion) {
  Graph g;
  const Id x = g.input("x", {2, 2});
  const Id w = g.weight("w", {2, 2});
  const Id rx = g.relu(x);
  const Id rw = g.relu(w);
  g.add_root(rx);
  g.add_root(rw);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  EXPECT_FALSE(eg.data(mapping.at(rx)).weight_only);
  EXPECT_TRUE(eg.data(mapping.at(rw)).weight_only);
  eg.merge(mapping.at(rx), mapping.at(rw));
  eg.rebuild();
  EXPECT_TRUE(eg.data(mapping.at(rx)).weight_only);
}

TEST(EGraph, MergeShapeMismatchThrows) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.input("b", {3, 3});
  g.add_root(a);
  g.add_root(b);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  EXPECT_THROW(eg.merge(mapping.at(a), mapping.at(b)), Error);
}

TEST(EGraph, VersionBumpsOnChange) {
  Graph g = simple_graph();
  EGraph eg;
  auto mapping = eg.add_graph(g);
  const uint64_t v = eg.version();
  TNode n{Op::kRelu, 0, {}, {eg.find(mapping.begin()->second)}};
  // Adding a genuinely new node bumps; re-adding does not.
  Graph g2;
  const Id a2 = g2.input("a", {2, 2});
  g2.add_root(g2.tanh(a2));
  eg.add_graph(g2);
  EXPECT_GT(eg.version(), v);
  const uint64_t v2 = eg.version();
  eg.add_graph(g2);
  EXPECT_EQ(eg.version(), v2);
  (void)n;
}

TEST(EGraph, FilteredNodesExcludedFromCounts) {
  Graph g = simple_graph();
  EGraph eg;
  eg.add_graph(g);
  const size_t before = eg.num_enodes();
  // Filter one node of some class.
  const Id cls = eg.canonical_classes().front();
  eg.set_filtered(cls, 0);
  EXPECT_EQ(eg.num_enodes(), before - 1);
  EXPECT_EQ(eg.num_filtered(), 1u);
  // Total count (paper's #enodes) unchanged.
  EXPECT_EQ(eg.num_enodes_total(), before);
}

TEST(EGraph, DuplicateNodesCollapseOnMerge) {
  // Classes {relu(a)} and {relu(b)} where a==b merge into one class whose
  // two congruent nodes deduplicate during rebuild.
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.input("b", {2, 2});
  const Id fa = g.relu(a);
  const Id fb = g.relu(b);
  g.add_root(fa);
  g.add_root(fb);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.merge(mapping.at(a), mapping.at(b));
  eg.rebuild();
  EXPECT_EQ(eg.eclass(mapping.at(fa)).nodes.size(), 1u);
}

TEST(EGraph, NumClassesTracksMerges) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id r = g.relu(a);
  const Id t = g.tanh(a);
  g.add_root(r);
  g.add_root(t);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  const size_t before = eg.num_classes();
  eg.merge(mapping.at(r), mapping.at(t));
  eg.rebuild();
  EXPECT_EQ(eg.num_classes(), before - 1);
}

}  // namespace
}  // namespace tensat
