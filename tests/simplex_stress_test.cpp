// Stress and edge-case coverage for the bounded-variable simplex beyond
// lp_test.cpp: vertex-enumeration cross-check on random 2-D LPs, bound
// handling (negative lower bounds, fixed variables, at-upper starts),
// and larger structured instances.
#include <gtest/gtest.h>

#include <cmath>

#include "ilp/lp.h"
#include "support/rng.h"

namespace tensat {
namespace {

/// Exact 2-variable LP solver by vertex enumeration: intersects every pair
/// of tight constraints (rows + bounds) and takes the best feasible vertex.
double brute_force_2d(const LinearProgram& lp) {
  struct Line {
    double a, b, c;  // a x + b y = c
  };
  std::vector<Line> lines;
  for (const auto& row : lp.rows) {
    double a = 0, b = 0;
    for (auto [j, coef] : row.terms) (j == 0 ? a : b) += coef;
    if (row.lo != -kInf) lines.push_back({a, b, row.lo});
    if (row.hi != kInf) lines.push_back({a, b, row.hi});
  }
  for (int j = 0; j < 2; ++j) {
    if (lp.lower[j] != -kInf) lines.push_back({j == 0 ? 1.0 : 0.0, j == 0 ? 0.0 : 1.0,
                                               lp.lower[j]});
    if (lp.upper[j] != kInf) lines.push_back({j == 0 ? 1.0 : 0.0, j == 0 ? 0.0 : 1.0,
                                              lp.upper[j]});
  }
  double best = kInf;
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-9) continue;
      const double x = (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      const double y = (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      if (lp.feasible({x, y}, 1e-7)) best = std::min(best, lp.objective_value({x, y}));
    }
  }
  return best;
}

class SimplexVsVertexEnum : public ::testing::TestWithParam<int> {};

TEST_P(SimplexVsVertexEnum, TwoVarRandomLps) {
  Rng rng(4242 + GetParam());
  LinearProgram lp;
  lp.add_var(rng.uniform(-2.0, 0.0), rng.uniform(0.5, 3.0), rng.uniform(-2.0, 2.0));
  lp.add_var(rng.uniform(-2.0, 0.0), rng.uniform(0.5, 3.0), rng.uniform(-2.0, 2.0));
  const int rows = 1 + static_cast<int>(rng.below(4));
  for (int r = 0; r < rows; ++r) {
    LinearProgram::Row row;
    row.terms.emplace_back(0, rng.uniform(-1.5, 1.5));
    row.terms.emplace_back(1, rng.uniform(-1.5, 1.5));
    if (rng.chance(0.3)) {
      row.lo = row.hi = rng.uniform(-1.0, 1.0);  // equality
    } else {
      row.lo = rng.chance(0.5) ? rng.uniform(-3.0, 0.0) : -kInf;
      row.hi = rng.chance(0.5) ? rng.uniform(0.0, 3.0) : kInf;
      if (row.lo > row.hi) std::swap(row.lo, row.hi);
    }
    lp.rows.push_back(row);
  }
  const double expected = brute_force_2d(lp);
  const LpResult got = solve_lp(lp);
  if (expected == kInf) {
    EXPECT_EQ(got.status, LpStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(got.status, LpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(got.objective, expected, 1e-5) << "seed " << GetParam();
    EXPECT_TRUE(lp.feasible(got.x, 1e-5)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexVsVertexEnum, ::testing::Range(0, 60));

TEST(SimplexEdge, NegativeLowerBounds) {
  // min x + y with x in [-5,-1], y in [-2,3], x + y >= -4 -> (-2,-2).
  LinearProgram lp;
  lp.add_var(-5, -1, 1.0);
  lp.add_var(-2, 3, 1.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, -4.0, kInf);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-6);
}

TEST(SimplexEdge, FixedVariables) {
  // Variables pinned by equal bounds participate correctly.
  LinearProgram lp;
  lp.add_var(2, 2, 1.0);   // fixed at 2
  lp.add_var(0, 10, 1.0);
  lp.add_row({{0, 1.0}, {1, 1.0}}, 5.0, kInf);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 3.0, 1e-6);
}

TEST(SimplexEdge, VacuousRowsIgnored) {
  LinearProgram lp;
  lp.add_var(0, 1, -1.0);
  lp.add_row({{0, 1.0}}, -kInf, kInf);  // vacuous
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
}

TEST(SimplexEdge, ZeroObjectiveFindsFeasible) {
  LinearProgram lp;
  lp.add_var(0, 10, 0.0);
  lp.add_var(0, 10, 0.0);
  lp.add_row({{0, 1.0}, {1, 2.0}}, 7.0, 7.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_TRUE(lp.feasible(r.x, 1e-6));
}

TEST(SimplexStress, LargerAssignmentLikeInstance) {
  // A 60-var transportation-style LP with known optimum: assign each of 20
  // "jobs" to the cheapest of 3 "machines" (relaxation is integral).
  Rng rng(99);
  LinearProgram lp;
  double expected = 0.0;
  for (int job = 0; job < 20; ++job) {
    double best = kInf;
    std::vector<std::pair<int, double>> row;
    for (int mach = 0; mach < 3; ++mach) {
      const double c = rng.uniform(1.0, 9.0);
      best = std::min(best, c);
      row.emplace_back(lp.add_var(0, 1, c), 1.0);
    }
    lp.add_row(std::move(row), 1.0, 1.0);
    expected += best;
  }
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, expected, 1e-5);
}

TEST(SimplexStress, ChainedCoverInstance) {
  // Extraction-shaped chain: root -> c1 -> c2 -> ... -> c30, two options per
  // class; optimum picks the per-class cheaper option all the way down.
  Rng rng(123);
  LinearProgram lp;
  double expected = 0.0;
  int prev_a = -1, prev_b = -1;
  for (int depth = 0; depth < 30; ++depth) {
    const double ca = rng.uniform(1.0, 5.0), cb = rng.uniform(1.0, 5.0);
    const int a = lp.add_var(0, 1, ca);
    const int b = lp.add_var(0, 1, cb);
    if (depth == 0) {
      lp.add_row({{a, 1.0}, {b, 1.0}}, 1.0, 1.0);
    } else {
      lp.add_row({{prev_a, 1.0}, {prev_b, 1.0}, {a, -1.0}, {b, -1.0}}, -kInf, 0.0);
    }
    expected += std::min(ca, cb);
    prev_a = a;
    prev_b = b;
  }
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, expected, 1e-5);
}

}  // namespace
}  // namespace tensat
