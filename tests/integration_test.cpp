// End-to-end properties of the whole pipeline, including the paper's
// headline claims at unit-test scale:
//   * TENSAT's optimized graphs compute the same function as the input
//     (checked through the reference interpreter),
//   * TENSAT matches or beats the TASO baseline's cost,
//   * the full approach (efficient cycle filtering + ILP without cycle
//     constraints) produces valid DAGs.
#include <gtest/gtest.h>

#include "cycles/cycles.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/rules.h"
#include "taso/search.h"
#include "tensor/interp.h"

namespace tensat {
namespace {

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

TensatOptions quick_options() {
  TensatOptions opt;
  opt.k_max = 4;
  opt.k_multi = 1;
  opt.node_limit = 4000;
  opt.explore_time_limit_s = 20.0;
  opt.ilp.time_limit_s = 10.0;
  return opt;
}

/// Strips the trailing noop chain so interpreter outputs can be compared
/// root by root (noop carries no data).
std::vector<Id> real_roots(const Graph& g) {
  std::vector<Id> out;
  std::vector<Id> stack(g.roots().begin(), g.roots().end());
  while (!stack.empty()) {
    const Id id = stack.back();
    stack.pop_back();
    if (g.node(id).op == Op::kNoop) {
      stack.push_back(g.node(id).children[1]);
      stack.push_back(g.node(id).children[0]);
    } else {
      out.push_back(id);
    }
  }
  return out;
}

void expect_same_function(const Graph& a, const Graph& b, double tol = 1e-3) {
  Graph ga = a, gb = b;
  ga.set_roots(real_roots(ga));
  gb.set_roots(real_roots(gb));
  Interpreter ia(42), ib(42);
  const auto va = ia.run_roots(ga);
  const auto vb = ib.run_roots(gb);
  ASSERT_EQ(va.size(), vb.size());
  for (size_t i = 0; i < va.size(); ++i) {
    ASSERT_EQ(va[i].dims(), vb[i].dims()) << "output " << i;
    EXPECT_LT(Tensor::max_abs_diff(va[i], vb[i]), tol) << "output " << i;
  }
}

TEST(Integration, OptimizedBertComputesSameFunction) {
  const Graph g = make_bert(1, 8, 16);
  const TensatResult r = optimize(g, default_rules(), model(), quick_options());
  ASSERT_TRUE(r.ok);
  expect_same_function(g, r.optimized);
}

TEST(Integration, OptimizedNasrnnComputesSameFunction) {
  const Graph g = make_nasrnn(1, 2, 8);
  const TensatResult r = optimize(g, default_rules(), model(), quick_options());
  ASSERT_TRUE(r.ok);
  expect_same_function(g, r.optimized);
}

TEST(Integration, OptimizedSqueezenetComputesSameFunction) {
  const Graph g = make_squeezenet(1, 8, 8);
  const TensatResult r = optimize(g, default_rules(), model(), quick_options());
  ASSERT_TRUE(r.ok);
  expect_same_function(g, r.optimized, 5e-3);
}

TEST(Integration, OptimizedInceptionComputesSameFunction) {
  const Graph g = make_inception_v3(1, 8, 8);
  const TensatResult r = optimize(g, default_rules(), model(), quick_options());
  ASSERT_TRUE(r.ok);
  expect_same_function(g, r.optimized, 5e-3);
}

TEST(Integration, TensatAtLeastMatchesTasoOnSharedMatmuls) {
  Graph g;
  const Id x = g.input("x", {64, 256});
  for (int i = 0; i < 4; ++i)
    g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {256, 256})));

  TasoOptions taso_opt;
  taso_opt.iterations = 30;
  const TasoResult taso = taso_search(g, default_rules(), model(), taso_opt);
  // Fully merging four matmuls takes two rounds of the multi-pattern rule
  // (pairs, then pairs of pairs) — the paper's k_multi = 2 regime. The node
  // limit keeps the ILP instance within the dense solver's reach.
  TensatOptions opt = quick_options();
  opt.k_multi = 2;
  opt.node_limit = 1500;
  const TensatResult tensat = optimize(g, default_rules(), model(), opt);
  ASSERT_TRUE(tensat.ok);
  EXPECT_LE(tensat.optimized_cost, taso.best_cost + 1e-6);
  EXPECT_LT(tensat.optimized_cost, tensat.original_cost);
}

TEST(Integration, FullPipelineKeepsEGraphAcyclicAndExtractsDag) {
  EGraph eg = seed_egraph(make_bert(1, 8, 16));
  TensatOptions opt = quick_options();
  run_exploration(eg, default_rules(), opt);
  ASSERT_TRUE(is_acyclic(eg));
  const IlpExtractionResult r = extract_ilp(eg, model(), opt.ilp);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.cyclic_selection);
  EXPECT_GT(r.graph.topo_order().size(), 0u);
}

TEST(Integration, HigherKMultiNeverWorseCostWhenSaturating) {
  // Monotonicity in k_multi holds when exploration saturates (the k+1
  // e-graph is then a superset of the k one). Under node-budget truncation
  // it can legitimately fail — the budget split shifts (see EXPERIMENTS.md),
  // so we test the saturating regime on a small graph.
  Graph g;
  const Id x = g.input("x", {32, 128});
  g.add_root(g.matmul(x, g.weight("w1", {128, 128})));
  g.add_root(g.matmul(x, g.weight("w2", {128, 128})));
  double prev = 1e300;
  for (int k = 0; k <= 2; ++k) {
    TensatOptions opt = quick_options();
    opt.k_multi = k;
    opt.node_limit = 4000;
    const TensatResult r = optimize(g, default_rules(), model(), opt);
    ASSERT_TRUE(r.ok);
    EXPECT_LE(r.optimized_cost, prev + 1e-6) << "k_multi " << k;
    prev = r.optimized_cost;
  }
}

TEST(Integration, GreedyVsIlpTable4Shape) {
  // Paper Table 4's qualitative shape at unit scale: ILP <= greedy, and on
  // graphs with shared-subgraph rewrites the gap is strict.
  Graph g;
  const Id x = g.input("x", {64, 256});
  g.add_root(g.matmul(x, g.weight("w1", {256, 256})));
  g.add_root(g.matmul(x, g.weight("w2", {256, 256})));

  TensatOptions greedy_opt = quick_options();
  greedy_opt.extractor = ExtractorKind::kGreedy;
  const TensatResult greedy = optimize(g, default_rules(), model(), greedy_opt);
  const TensatResult ilp = optimize(g, default_rules(), model(), quick_options());
  ASSERT_TRUE(greedy.ok);
  ASSERT_TRUE(ilp.ok);
  EXPECT_LE(ilp.optimized_cost, greedy.optimized_cost + 1e-6);
  EXPECT_LT(ilp.optimized_cost, ilp.original_cost - 1e-6);
}

}  // namespace
}  // namespace tensat
