// Tests for the service metrics layer (src/metrics/):
//  * primitives — sharded counters/gauges/histograms record exactly, alone
//    and under concurrency (1/2/8 threads; run under ASan and TSan in CI);
//  * quantile math — bucket-edge inclusivity, interpolation bounds,
//    monotonicity, over/underflow, the empty histogram, snapshot merging;
//  * exposition — Prometheus text format (TYPE lines, bucket cumulativity,
//    +Inf == count, label escaping) and the JSON exposition (validated with
//    the same mini recursive-descent parser trace_test uses);
//  * flight recorder — ring eviction order, slow-request capture producing
//    a valid Chrome trace dump, the fast path NOT capturing, dump caps;
//  * service integration — OptimizationService populates per-outcome
//    latency histograms, hit-ratio gauges, and monotone request ids, and
//    the slow-threshold knob dumps through the serving path.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "metrics/flight.h"
#include "metrics/metrics.h"
#include "models/models.h"
#include "rewrite/rules.h"
#include "serialize/serialize.h"
#include "service/service.h"

namespace tensat {
namespace {

// ---- Minimal JSON validity checker (structure only, no DOM) ---------------

struct JsonCursor {
  const std::string& s;
  size_t i{0};
  bool ok{true};

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void value() {
    if (!ok) return;
    ws();
    if (i >= s.size()) {
      ok = false;
      return;
    }
    const char c = s[i];
    if (c == '{') {
      ++i;
      if (eat('}')) return;
      do {
        ws();
        string();
        if (!eat(':')) ok = false;
        value();
        if (!ok) return;
      } while (eat(','));
      if (!eat('}')) ok = false;
    } else if (c == '[') {
      ++i;
      if (eat(']')) return;
      do {
        value();
        if (!ok) return;
      } while (eat(','));
      if (!eat(']')) ok = false;
    } else if (c == '"') {
      string();
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      number();
    }
  }
  void string() {
    ws();
    if (i >= s.size() || s[i] != '"') {
      ok = false;
      return;
    }
    ++i;
    while (i < s.size() && s[i] != '"') {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      if (c < 0x20) {  // raw control characters are invalid inside strings
        ok = false;
        return;
      }
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) {
          ok = false;
          return;
        }
        const char e = s[i];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i;
            if (i >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(s[i]))) {
              ok = false;
              return;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          ok = false;
          return;
        }
      }
      ++i;
    }
    if (i >= s.size()) {
      ok = false;
      return;
    }
    ++i;  // closing quote
  }
  void number() {
    const size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    bool digits = false;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                            s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                            s[i] == '-' || s[i] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s[i]))) digits = true;
      ++i;
    }
    if (!digits || i == start) ok = false;
  }
  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++i) {
      if (i >= s.size() || s[i] != *p) {
        ok = false;
        return;
      }
    }
  }
};

bool json_valid(const std::string& s) {
  JsonCursor c{s};
  c.value();
  c.ws();
  return c.ok && c.i == s.size();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- Counter / Gauge ------------------------------------------------------

TEST(Counter, AddsAndSums) {
  metrics::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentAddsAreExact) {
  metrics::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& t : threads) t.join();
  // Relaxed sharded adds still sum exactly — no observation is lost.
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  metrics::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(7.0);  // set overwrites accumulated state
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

// ---- Histogram buckets and quantiles --------------------------------------

TEST(Histogram, CountAndSum) {
  metrics::Histogram h(1e-6);
  h.observe(0.001);
  h.observe(0.002);
  h.observe(0.004);
  const metrics::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.sum, 0.007, 1e-12);
  EXPECT_EQ(s.cumulative.back(), s.count);  // +Inf bucket holds everything
}

TEST(Histogram, BucketUpperEdgeIsInclusive) {
  // Prometheus `le` semantics: a value exactly on a bucket's upper bound
  // counts in that bucket, not the next one.
  metrics::Histogram h(1.0);
  h.observe(1.0);  // == lowest -> bucket 0
  h.observe(2.0);  // == bound of bucket 1
  h.observe(4.0);  // == bound of bucket 2
  const metrics::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.cumulative[0], 1u);
  EXPECT_EQ(s.cumulative[1], 2u);
  EXPECT_EQ(s.cumulative[2], 3u);
}

TEST(Histogram, QuantileWithinContainingBucket) {
  metrics::Histogram h(1.0);
  for (int i = 0; i < 100; ++i) h.observe(3.0);  // bucket (2, 4]
  const metrics::HistogramSnapshot s = h.snapshot();
  const double p50 = s.quantile(0.5);
  EXPECT_GE(p50, 2.0);
  EXPECT_LE(p50, 4.0);
}

TEST(Histogram, QuantilesAreMonotone) {
  metrics::Histogram h(1e-6);
  for (int i = 1; i <= 1000; ++i) h.observe(i * 1e-4);
  const metrics::HistogramSnapshot s = h.snapshot();
  const double p50 = s.quantile(0.5);
  const double p90 = s.quantile(0.9);
  const double p99 = s.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // The true p50 is 0.05s; the log-bucket estimate is within a factor of 2.
  EXPECT_GE(p50, 0.025);
  EXPECT_LE(p50, 0.1);
}

TEST(Histogram, UnderflowAndOverflow) {
  metrics::Histogram h(1.0);
  h.observe(1e-9);  // below lowest -> bucket 0
  h.observe(1e12);  // beyond the finite grid -> +Inf bucket
  const metrics::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.cumulative[0], 1u);
  EXPECT_EQ(s.count, 2u);
  // A quantile landing in the +Inf bucket reports the largest finite bound
  // (the Prometheus histogram_quantile convention), never infinity.
  const double p99 = s.quantile(0.99);
  EXPECT_TRUE(std::isfinite(p99));
  EXPECT_DOUBLE_EQ(p99, s.upper_bound(metrics::Histogram::kBuckets - 1));
}

TEST(Histogram, EmptyQuantileIsZero) {
  metrics::Histogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST(Histogram, MergeSnapshots) {
  metrics::Histogram a(1e-6);
  metrics::Histogram b(1e-6);
  for (int i = 0; i < 10; ++i) a.observe(0.001);
  for (int i = 0; i < 30; ++i) b.observe(0.1);
  const metrics::HistogramSnapshot merged =
      metrics::merge_snapshots({a.snapshot(), b.snapshot()});
  EXPECT_EQ(merged.count, 40u);
  EXPECT_NEAR(merged.sum, 10 * 0.001 + 30 * 0.1, 1e-9);
  // 75% of mass sits at 0.1s, so the median must come from b's bucket.
  EXPECT_GE(merged.quantile(0.5), 0.05);
}

TEST(Histogram, ConcurrentObservationsAreExact) {
  for (const int threads : {1, 2, 8}) {
    metrics::Histogram h(1e-6);
    constexpr int kPerThread = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
      pool.emplace_back([&h, t] {
        for (int i = 0; i < kPerThread; ++i)
          h.observe(1e-4 * (1 + ((t + i) % 7)));
      });
    for (auto& t : pool) t.join();
    const metrics::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, static_cast<uint64_t>(threads) * kPerThread)
        << "threads=" << threads;
    EXPECT_EQ(s.cumulative.back(), s.count);
  }
}

// ---- Registry -------------------------------------------------------------

TEST(Registry, SameFamilyAndLabelsReturnsSameHandle) {
  metrics::MetricsRegistry reg;
  metrics::Counter& a = reg.counter("tensat_test_total", {{"kind", "x"}});
  metrics::Counter& b = reg.counter("tensat_test_total", {{"kind", "x"}});
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, DistinctLabelsAreDistinctInstances) {
  metrics::MetricsRegistry reg;
  metrics::Counter& a = reg.counter("tensat_test_total", {{"kind", "x"}});
  metrics::Counter& b = reg.counter("tensat_test_total", {{"kind", "y"}});
  EXPECT_NE(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 0u);
  EXPECT_EQ(reg.families(), 1u);
}

TEST(Registry, TypeConflictThrows) {
  metrics::MetricsRegistry reg;
  reg.counter("tensat_conflict");
  EXPECT_THROW(reg.gauge("tensat_conflict"), std::exception);
  EXPECT_THROW(reg.histogram("tensat_conflict"), std::exception);
}

// ---- Exposition -----------------------------------------------------------

TEST(Exposition, PrometheusTextFormat) {
  metrics::MetricsRegistry reg;
  reg.counter("tensat_req_total", {}, "requests").add(5);
  reg.gauge("tensat_depth", {}, "queue depth").set(2.0);
  metrics::Histogram& h =
      reg.histogram("tensat_lat_seconds", {{"outcome", "hit"}}, "latency");
  h.observe(0.001);
  h.observe(0.002);

  std::ostringstream out;
  reg.expose_prometheus(out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE tensat_req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP tensat_req_total requests\n"), std::string::npos);
  EXPECT_NE(text.find("tensat_req_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tensat_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tensat_lat_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("tensat_lat_seconds_bucket{outcome=\"hit\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tensat_lat_seconds_count{outcome=\"hit\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tensat_lat_seconds_sum{outcome=\"hit\"} "),
            std::string::npos);
}

TEST(Exposition, BucketSeriesIsCumulative) {
  metrics::MetricsRegistry reg;
  metrics::Histogram& h = reg.histogram("tensat_c_seconds");
  for (int i = 1; i <= 64; ++i) h.observe(i * 1e-5);
  std::ostringstream out;
  reg.expose_prometheus(out);

  // Parse every _bucket line back out; the counts must never decrease and
  // the +Inf bucket must equal _count.
  std::istringstream in(out.str());
  std::string line;
  uint64_t prev = 0;
  uint64_t inf_value = 0;
  uint64_t count_value = 0;
  while (std::getline(in, line)) {
    if (line.rfind("tensat_c_seconds_bucket", 0) == 0) {
      const uint64_t v =
          std::stoull(line.substr(line.find_last_of(' ') + 1));
      EXPECT_GE(v, prev) << line;
      prev = v;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_value = v;
    } else if (line.rfind("tensat_c_seconds_count", 0) == 0) {
      count_value = std::stoull(line.substr(line.find_last_of(' ') + 1));
    }
  }
  EXPECT_EQ(inf_value, 64u);
  EXPECT_EQ(count_value, 64u);
}

TEST(Exposition, LabelValuesAreEscaped) {
  metrics::MetricsRegistry reg;
  reg.counter("tensat_esc_total", {{"path", "a\"b\\c\nd"}}).inc();
  std::ostringstream out;
  reg.expose_prometheus(out);
  // Quote, backslash, and newline must appear escaped inside the label.
  EXPECT_NE(out.str().find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << out.str();
}

TEST(Exposition, JsonIsValidAndCarriesQuantiles) {
  metrics::MetricsRegistry reg;
  reg.counter("tensat_req_total").add(7);
  reg.gauge("tensat_ratio").set(0.5);
  metrics::Histogram& h = reg.histogram("tensat_lat_seconds");
  for (int i = 0; i < 100; ++i) h.observe(0.001);
  std::ostringstream out;
  reg.expose_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---- Flight recorder ------------------------------------------------------

metrics::RequestRecord make_record(uint64_t id, double seconds) {
  metrics::RequestRecord r;
  r.request_id = id;
  r.fingerprint = 0x1234 + id;
  r.outcome = metrics::RequestRecord::Outcome::kCold;
  r.seconds = seconds;
  r.iterations = 3;
  r.search_seconds = seconds * 0.25;
  r.apply_seconds = seconds * 0.25;
  r.solve_seconds = seconds * 0.25;
  r.milp_gap = 0.01;
  return r;
}

TEST(FlightRecorder, RingEvictsOldestFirst) {
  metrics::FlightRecorder::Options opt;
  opt.capacity = 4;
  metrics::FlightRecorder fr(opt);
  for (uint64_t id = 1; id <= 10; ++id) fr.record(make_record(id, 0.001));
  EXPECT_EQ(fr.total_recorded(), 10u);
  const std::vector<metrics::RequestRecord> ring = fr.snapshot();
  ASSERT_EQ(ring.size(), 4u);
  for (size_t i = 0; i < ring.size(); ++i)
    EXPECT_EQ(ring[i].request_id, 7u + i);  // 7, 8, 9, 10 — oldest first
}

TEST(FlightRecorder, SlowRequestCaptureDumpsValidTrace) {
  metrics::FlightRecorder::Options opt;
  opt.slow_threshold_s = 0.010;
  opt.dump_dir = ::testing::TempDir();
  metrics::FlightRecorder fr(opt);
  fr.record(make_record(1, 0.002));  // fast: recorded, NOT captured
  fr.record(make_record(2, 0.500));  // slow: captured
  EXPECT_EQ(fr.total_recorded(), 2u);
  ASSERT_EQ(fr.dumps_written(), 1u);
  const std::vector<std::string> paths = fr.dump_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NE(paths[0].find("slow_request_2.json"), std::string::npos);
  const std::string dump = slurp(paths[0]);
  EXPECT_TRUE(json_valid(dump)) << paths[0];
  // The dump is the request's phase breakdown as spans.
  EXPECT_NE(dump.find("explore/search"), std::string::npos);
  EXPECT_NE(dump.find("extract/solve"), std::string::npos);
  std::remove(paths[0].c_str());
}

TEST(FlightRecorder, DumpCountIsBounded) {
  metrics::FlightRecorder::Options opt;
  opt.slow_threshold_s = 0.001;
  opt.max_dumps = 2;
  opt.dump_dir = ::testing::TempDir();
  metrics::FlightRecorder fr(opt);
  for (uint64_t id = 1; id <= 5; ++id) fr.record(make_record(id, 1.0));
  EXPECT_EQ(fr.dumps_written(), 2u);  // the cap, not 5
  for (const std::string& p : fr.dump_paths()) std::remove(p.c_str());
}

TEST(FlightRecorder, ThresholdDisabledCapturesNothing) {
  metrics::FlightRecorder fr;  // slow_threshold_s = 0 -> capture off
  fr.record(make_record(1, 100.0));
  EXPECT_EQ(fr.total_recorded(), 1u);
  EXPECT_EQ(fr.dumps_written(), 0u);
}

TEST(FlightRecorder, ConcurrentRecordsAllLand) {
  metrics::FlightRecorder::Options opt;
  opt.capacity = 64;
  metrics::FlightRecorder fr(opt);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&fr, t] {
      for (int i = 0; i < kPerThread; ++i)
        fr.record(make_record(static_cast<uint64_t>(t) * kPerThread + i,
                              0.0001));
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(fr.total_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(fr.snapshot().size(), 64u);
}

// ---- Service integration --------------------------------------------------

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

service::ServiceOptions fast_options() {
  service::ServiceOptions opt;
  opt.tensat.k_max = 2;
  opt.tensat.k_multi = 1;
  opt.tensat.node_limit = 300;
  opt.tensat.explore_time_limit_s = 10.0;
  opt.tensat.ilp.time_limit_s = 5.0;
  return opt;
}

std::string small_graph_text() {
  Graph g;
  const Id x = g.input("x", {32, 32});
  for (int i = 0; i < 3; ++i)
    g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {32, 32})));
  return save_graph_to_string(g);
}

TEST(ServiceMetrics, DisabledMeansNoRegistry) {
  service::ServiceOptions opt = fast_options();
  opt.enable_metrics = false;
  service::OptimizationService svc(default_rules(), model(), opt);
  EXPECT_EQ(svc.metrics(), nullptr);
  EXPECT_EQ(svc.flight_recorder(), nullptr);
  // The uninstrumented path still serves.
  EXPECT_TRUE(svc.submit(small_graph_text()).ok);
}

TEST(ServiceMetrics, OutcomesLatencyAndRequestIds) {
  service::OptimizationService svc(default_rules(), model(), fast_options());
  ASSERT_NE(svc.metrics(), nullptr);

  const std::string text = small_graph_text();
  const service::ServiceResponse cold = svc.submit(text);
  const service::ServiceResponse hit = svc.submit(text);
  const service::ServiceResponse bad = svc.submit("not a graph");
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_FALSE(bad.ok);

  // Request ids are process-unique and monotone across outcomes.
  EXPECT_EQ(cold.request_id + 1, hit.request_id);
  EXPECT_EQ(hit.request_id + 1, bad.request_id);

  metrics::MetricsRegistry& reg = *svc.metrics();
  EXPECT_EQ(reg.counter("tensat_service_requests_total").value(), 3u);
  EXPECT_EQ(reg.counter("tensat_service_errors_total").value(), 1u);
  EXPECT_EQ(reg.counter("tensat_service_cache_hits_total").value(), 1u);
  EXPECT_EQ(reg.counter("tensat_service_cache_misses_total").value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("tensat_service_cache_hit_ratio").value(), 0.5);
  EXPECT_GE(reg.gauge("tensat_service_cache_entries").value(), 1.0);

  // One observation per outcome in the right latency histogram.
  using Labels = metrics::Labels;
  EXPECT_EQ(reg.histogram("tensat_service_submit_seconds",
                          Labels{{"outcome", "cold"}})
                .snapshot()
                .count,
            1u);
  EXPECT_EQ(reg.histogram("tensat_service_submit_seconds",
                          Labels{{"outcome", "hit"}})
                .snapshot()
                .count,
            1u);
  EXPECT_EQ(reg.histogram("tensat_service_submit_seconds",
                          Labels{{"outcome", "error"}})
                .snapshot()
                .count,
            1u);

  // Every request got a flight-recorder record, in submission order.
  const std::vector<metrics::RequestRecord> ring =
      svc.flight_recorder()->snapshot();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].request_id, cold.request_id);
  EXPECT_EQ(ring[2].outcome, metrics::RequestRecord::Outcome::kError);
  // The cold run carried its phase breakdown and e-graph size.
  EXPECT_GT(ring[0].enodes_total, 0u);
  EXPECT_GE(ring[0].stop_reason, 0);
}

TEST(ServiceMetrics, SessionOutcomeAndGauges) {
  service::OptimizationService svc(default_rules(), model(), fast_options());
  const std::string text = small_graph_text();
  ASSERT_TRUE(svc.submit(text, "sess").ok);
  metrics::MetricsRegistry& reg = *svc.metrics();
  EXPECT_EQ(reg.counter("tensat_service_sessions_created_total").value(), 1u);
  EXPECT_EQ(reg.histogram("tensat_service_submit_seconds",
                          metrics::Labels{{"outcome", "session"}})
                .snapshot()
                .count,
            1u);
  EXPECT_DOUBLE_EQ(reg.gauge("tensat_service_sessions_live").value(), 1.0);
  EXPECT_GT(reg.gauge("tensat_service_session_enodes").value(), 0.0);
}

TEST(ServiceMetrics, SlowThresholdCapturesThroughServingPath) {
  service::ServiceOptions opt = fast_options();
  opt.slow_threshold_s = 1e-9;  // everything is "slow"
  opt.slow_dump_dir = ::testing::TempDir();
  opt.max_slow_dumps = 1;
  service::OptimizationService svc(default_rules(), model(), opt);
  ASSERT_TRUE(svc.submit(small_graph_text()).ok);
  ASSERT_EQ(svc.flight_recorder()->dumps_written(), 1u);
  const std::string dump = slurp(svc.flight_recorder()->dump_paths()[0]);
  EXPECT_TRUE(json_valid(dump));
  EXPECT_NE(dump.find("explore/search"), std::string::npos);
  std::remove(svc.flight_recorder()->dump_paths()[0].c_str());
}

TEST(ServiceMetrics, PrometheusScrapeOfLiveService) {
  service::OptimizationService svc(default_rules(), model(), fast_options());
  const std::string text = small_graph_text();
  ASSERT_TRUE(svc.submit(text).ok);
  ASSERT_TRUE(svc.submit(text).ok);
  std::ostringstream prom;
  svc.metrics()->expose_prometheus(prom);
  EXPECT_NE(prom.str().find("tensat_service_requests_total 2"),
            std::string::npos);
  EXPECT_NE(prom.str().find("# TYPE tensat_service_submit_seconds histogram"),
            std::string::npos);
  std::ostringstream json;
  svc.metrics()->expose_json(json);
  EXPECT_TRUE(json_valid(json.str())) << json.str();
}

}  // namespace
}  // namespace tensat
