#include <gtest/gtest.h>

#include "cycles/cycles.h"
#include "lang/parse.h"
#include "rewrite/matcher.h"
#include "rewrite/rules.h"

namespace tensat {
namespace {

struct Fixture {
  Graph g;
  EGraph eg;
  std::unordered_map<Id, Id> mapping;
  explicit Fixture(const std::function<void(Graph&)>& build) {
    build(g);
    mapping = eg.add_graph(g);
  }
  Id cls(Id gid) const { return eg.find(mapping.at(gid)); }
};

TEST(Descendants, DirectAndTransitive) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    const Id r = g.relu(a);
    g.add_root(g.tanh(r));
  });
  const DescendantsMap d(f.eg);
  Graph& g = f.g;
  const Id a = g.input("a", {2, 2});
  const Id r = g.relu(a);
  const Id t = g.tanh(r);
  EXPECT_TRUE(d.reaches(f.cls(t), f.cls(r)));
  EXPECT_TRUE(d.reaches(f.cls(t), f.cls(a)));  // transitive
  EXPECT_TRUE(d.reaches(f.cls(r), f.cls(a)));
  EXPECT_FALSE(d.reaches(f.cls(a), f.cls(t)));
  EXPECT_FALSE(d.reaches(f.cls(a), f.cls(a)));  // not reflexive
}

TEST(Descendants, SharedSubgraph) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    g.add_root(g.ewadd(g.relu(a), g.tanh(a)));
  });
  const DescendantsMap d(f.eg);
  Graph& g = f.g;
  const Id a = g.input("a", {2, 2});
  const Id add = g.ewadd(g.relu(a), g.tanh(a));
  EXPECT_TRUE(d.reaches(f.cls(add), f.cls(a)));
}

TEST(Cycles, AcyclicInitially) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    g.add_root(g.relu(g.tanh(a)));
  });
  EXPECT_TRUE(is_acyclic(f.eg));
  EXPECT_EQ(filter_cycles(f.eg), 0u);
}

TEST(Cycles, MergeWouldCreateCycleDetected) {
  // Merging a class with its own ancestor closes a cycle.
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    g.add_root(g.relu(g.tanh(a)));
  });
  Graph& g = f.g;
  const Id a = g.input("a", {2, 2});
  const Id t = g.tanh(a);
  const Id r = g.relu(t);
  EXPECT_TRUE(merge_would_create_cycle(f.eg, f.cls(a), f.cls(r)));
  EXPECT_TRUE(merge_would_create_cycle(f.eg, f.cls(r), f.cls(a)));
  EXPECT_TRUE(merge_would_create_cycle(f.eg, f.cls(t), f.cls(r)));
  // Merging siblings does not.
  Graph h;
  const Id a2 = h.input("a", {2, 2});
  h.add_root(h.sigmoid(a2));
  auto m2 = f.eg.add_graph(h);
  EXPECT_FALSE(merge_would_create_cycle(f.eg, f.cls(t), f.eg.find(m2.at(h.roots()[0]))));
}

TEST(Cycles, FilterBreaksIntroducedCycle) {
  // Make the e-graph cyclic by merging x with relu(x), then filter.
  Fixture f([](Graph& g) {
    const Id x = g.input("x", {2, 2});
    g.add_root(g.relu(x));
  });
  Graph& g = f.g;
  const Id x = g.input("x", {2, 2});
  const Id r = g.relu(x);
  f.eg.merge(f.cls(x), f.cls(r));
  f.eg.rebuild();
  EXPECT_FALSE(is_acyclic(f.eg));
  const size_t filtered = filter_cycles(f.eg);
  EXPECT_GE(filtered, 1u);
  EXPECT_TRUE(is_acyclic(f.eg));
  EXPECT_EQ(f.eg.num_filtered(), filtered);
}

TEST(Cycles, FilterPrefersLastAddedNode) {
  // The cycle-closing node added LAST should be the one filtered, keeping
  // the original program extractable.
  Fixture f([](Graph& g) {
    const Id x = g.input("x", {2, 2});
    g.add_root(g.relu(x));
  });
  Graph& g = f.g;
  const Id x = g.input("x", {2, 2});
  const Id r = g.relu(x);
  // Add tanh(r) into x's class (an equality x = tanh(relu(x))): cyclic.
  TNode t{Op::kTanh, 0, {}, {f.cls(r)}};
  const Id tcls = f.eg.add(std::move(t));
  f.eg.merge(f.cls(x), tcls);
  f.eg.rebuild();
  ASSERT_FALSE(is_acyclic(f.eg));
  filter_cycles(f.eg);
  EXPECT_TRUE(is_acyclic(f.eg));
  // The original input and relu nodes must survive; the late tanh is the
  // filtered one.
  bool tanh_filtered = false, relu_filtered = false;
  for (Id cls : f.eg.canonical_classes()) {
    for (const EClassNode& e : f.eg.eclass(cls).nodes) {
      if (e.node.op == Op::kTanh && e.filtered) tanh_filtered = true;
      if (e.node.op == Op::kRelu && e.filtered) relu_filtered = true;
    }
  }
  EXPECT_TRUE(tanh_filtered);
  EXPECT_FALSE(relu_filtered);
}

TEST(Cycles, PaperFig3Scenario) {
  // The paper's Fig. 3: applying the concat/split multi-pattern rule to two
  // matmuls where one consumes the other creates a cycle in the e-graph.
  Graph g;
  const Id x = g.input("x", {4, 4});
  const Id y = g.weight("y", {4, 4});
  const Id m1 = g.matmul(x, y);       // matmul(x, y)
  const Id m2 = g.matmul(x, m1);      // matmul(x, matmul(x, y)) — shares x
  g.add_root(m2);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.set_root(mapping.at(m2));

  const Rewrite rule = make_rewrite(
      "fig2",
      "(matmul ?act ?a ?b) (matmul ?act ?a ?c)",
      "(split0 (split 1 (matmul ?act ?a (concat2 1 ?b ?c)))) "
      "(split1 (split 1 (matmul ?act ?a (concat2 1 ?b ?c))))");
  // Find the (m1, m2) match pair and apply it without any cycle filtering.
  auto matches = search_pattern(eg, rule.pat, rule.src_roots[0]);
  auto matches2 = search_pattern(eg, rule.pat, rule.src_roots[1]);
  bool applied = false;
  for (const auto& ma : matches) {
    for (const auto& mb : matches2) {
      if (eg.find(ma.root) == eg.find(mb.root)) continue;
      auto combined = Subst::merged(ma.subst, mb.subst);
      if (!combined) continue;
      auto t0 = instantiate(eg, rule.pat, rule.dst_roots[0], *combined);
      auto t1 = instantiate(eg, rule.pat, rule.dst_roots[1], *combined);
      if (!t0 || !t1) continue;
      eg.merge(ma.root, *t0);
      eg.merge(mb.root, *t1);
      applied = true;
    }
  }
  eg.rebuild();
  ASSERT_TRUE(applied);
  EXPECT_FALSE(is_acyclic(eg));  // the paper's cycle
  filter_cycles(eg);
  EXPECT_TRUE(is_acyclic(eg));
}

TEST(Cycles, DescendantsSnapshotIsStable) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    g.add_root(g.relu(a));
  });
  const DescendantsMap d(f.eg);
  // Unknown (later) ids just return false instead of crashing.
  EXPECT_FALSE(d.reaches(9999, 0));
  EXPECT_FALSE(d.reaches(0, 9999));
}

}  // namespace
}  // namespace tensat
