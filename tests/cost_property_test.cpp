// Cost-model properties swept across operators and sizes (TEST_P):
// monotonicity in tensor volume, launch-overhead floor, fusion economics,
// and consistency between the graph-level and e-node-level cost paths.
#include <gtest/gtest.h>

#include "cost/cost.h"
#include "egraph/egraph.h"
#include "support/rng.h"

namespace tensat {
namespace {

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

double cost_of(const Graph& g, Id id) {
  std::vector<ValueInfo> inputs;
  for (Id c : g.node(id).children) inputs.push_back(g.info(c));
  return node_cost(model(), g.node(id), inputs, g.info(id));
}

// ---- Monotonicity in size, per operator family ----------------------------

class MatmulMonotone : public ::testing::TestWithParam<int> {};

TEST_P(MatmulMonotone, CostGrowsWithInnerDim) {
  const int k = 32 << GetParam();
  Graph g;
  const Id small = g.matmul(g.input("a", {64, k}), g.weight("b", {k, 64}));
  const Id large = g.matmul(g.input("c", {64, 2 * k}), g.weight("d", {2 * k, 64}));
  EXPECT_LT(cost_of(g, small), cost_of(g, large)) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulMonotone, ::testing::Range(0, 5));

class ConvMonotone : public ::testing::TestWithParam<int> {};

TEST_P(ConvMonotone, CostGrowsWithChannels) {
  const int c = 8 << GetParam();
  Graph g;
  const Id a = g.conv(g.input("x", {1, c, 14, 14}), g.weight("w", {c, c, 3, 3}), 1, 1);
  const Id b =
      g.conv(g.input("y", {1, 2 * c, 14, 14}), g.weight("v", {2 * c, 2 * c, 3, 3}), 1, 1);
  EXPECT_LT(cost_of(g, a), cost_of(g, b)) << "c=" << c;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConvMonotone, ::testing::Range(0, 4));

class ElementwiseMonotone : public ::testing::TestWithParam<int> {};

TEST_P(ElementwiseMonotone, CostGrowsWithVolume) {
  const int n = 64 << GetParam();
  Graph g;
  const Id a = g.ewadd(g.input("a", {n, 64}), g.input("b", {n, 64}));
  const Id b = g.ewadd(g.input("c", {2 * n, 64}), g.input("d", {2 * n, 64}));
  EXPECT_LT(cost_of(g, a), cost_of(g, b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElementwiseMonotone, ::testing::Range(0, 4));

// ---- Launch overhead and merging economics ---------------------------------

TEST(CostEconomics, LaunchOverheadIsTheFloor) {
  // Even a 1-element op costs at least the launch overhead.
  Graph g;
  const Id tiny = g.relu(g.input("t", {1, 1}));
  EXPECT_GE(cost_of(g, tiny), 5.0 - 1e-9);
}

class MergeEconomics : public ::testing::TestWithParam<int> {};

TEST_P(MergeEconomics, OneMergedMatmulBeatsTwoAcrossSizes) {
  const int n = 64 << GetParam();
  Graph g;
  const Id x = g.input("x", {64, n});
  const double two = 2.0 * cost_of(g, g.matmul(x, g.weight("w1", {n, n})));
  const double one = cost_of(g, g.matmul(x, g.weight("w2", {n, 2 * n})));
  EXPECT_LT(one, two) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MergeEconomics, ::testing::Range(0, 5));

TEST(CostEconomics, UtilizationSaturates) {
  // Per-flop cost decreases with size: c(2k)/c(k) < 2 for compute-bound ops.
  Graph g;
  const Id small = g.matmul(g.input("a", {256, 256}), g.weight("b", {256, 256}));
  const Id large = g.matmul(g.input("c", {256, 512}), g.weight("d", {512, 256}));
  EXPECT_LT(cost_of(g, large), 2.0 * cost_of(g, small));
}

// ---- Consistency across the two costing paths ------------------------------

class GraphVsEnodeCost : public ::testing::TestWithParam<int> {};

TEST_P(GraphVsEnodeCost, AgreeOnRandomGraphs) {
  Rng rng(111 + GetParam());
  Graph g;
  const int32_t n = static_cast<int32_t>(rng.range(8, 64));
  Id cur = g.input("x", {n, n});
  for (int i = 0; i < 5; ++i) {
    switch (rng.below(3)) {
      case 0:
        cur = g.relu(cur);
        break;
      case 1:
        cur = g.matmul(cur, g.weight("w" + std::to_string(i), {n, n}));
        break;
      default:
        cur = g.ewadd(cur, cur);
        break;
    }
  }
  g.add_root(cur);

  EGraph eg;
  auto mapping = eg.add_graph(g);
  double enode_total = 0.0;
  for (Id gid : g.topo_order())
    enode_total += enode_cost(eg, mapping.at(gid), eg.eclass(mapping.at(gid)).nodes[0].node,
                              model());
  EXPECT_NEAR(enode_total, graph_cost(g, model()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphVsEnodeCost, ::testing::Range(0, 20));

TEST(CostEconomics, WeightPrecomputeBeatsRuntimeConcat) {
  // concat of weights: free; concat of activations: paid. This asymmetry is
  // what makes weight-side merges strictly better than activation-side ones.
  Graph g;
  const Id w = g.concat(0, {g.weight("w1", {64, 64}), g.weight("w2", {64, 64})});
  const Id a = g.concat(0, {g.input("x1", {64, 64}), g.input("x2", {64, 64})});
  EXPECT_EQ(cost_of(g, w), 0.0);
  EXPECT_GT(cost_of(g, a), 0.0);
}

}  // namespace
}  // namespace tensat
