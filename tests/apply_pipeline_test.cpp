// The staged apply pipeline (optimizer/optimizer.cpp): stage 1 plans every
// pending application read-only against the clean e-graph, stage 2 commits
// staged nodes and merges in plan order — either serially one application
// at a time (sharded_commit = false) or via the batch path (serial resolve,
// parallel sharded insert, serial merge) — and stage 3 is the single
// rebuild. These tests pin its two contracts:
//
//  * determinism: the explored e-graph is bit-identical (same class ids,
//    same e-node sets, same filtered flags, same extracted graph) for any
//    apply_threads value, because stage 2's serial plan-order commit is the
//    only place mutation happens;
//  * parity: the plan/commit split of instantiate (plan_instantiate +
//    NodeBuffer::commit) produces exactly the e-graph the legacy direct
//    instantiate() does, and the staged pipeline as a whole matches the
//    legacy direct apply path (TensatOptions::staged_apply = false)
//    semantically — same applications, merges, filtered nodes, and
//    extraction; the only divergence is that failed instantiations leave no
//    partial nodes behind under the all-or-nothing commit.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cost/cost.h"
#include "extract/extract.h"
#include "lang/parse.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/matcher.h"
#include "rewrite/rules.h"
#include "tests/egraph_fingerprint.h"

namespace tensat {
namespace {

// fingerprint() comes from tests/egraph_fingerprint.h.

std::string explore_and_fingerprint(const Graph& g, const TensatOptions& opt) {
  EGraph eg = seed_egraph(g);
  run_exploration(eg, default_rules(), opt);
  std::string fp = fingerprint(eg);
  // Fold the extracted graph in as well: identical e-graphs must extract
  // identical graphs at identical cost.
  const ExtractionResult ext = extract_greedy(eg, T4CostModel{});
  if (ext.ok) {
    fp += "cost=" + std::to_string(ext.cost) + "\n";
    fp += ext.graph.to_sexpr(ext.graph.roots()[0]);
  }
  return fp;
}

Graph shared_matmuls(int n = 3) {
  Graph g;
  const Id x = g.input("x", {64, 256});
  for (int i = 0; i < n; ++i)
    g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {256, 256})));
  return g;
}

std::vector<ModelInfo> seed_examples() {
  std::vector<ModelInfo> models;
  models.push_back({"shared_matmuls", shared_matmuls()});
  for (ModelInfo& m : tiny_models()) models.push_back(std::move(m));
  return models;
}

TensatOptions explore_options() {
  TensatOptions opt;
  opt.k_max = 3;
  opt.k_multi = 1;
  opt.node_limit = 3000;
  return opt;
}

// ---- Determinism across apply_threads --------------------------------------

TEST(ApplyPipeline, FingerprintIdenticalForAnyThreadCount) {
  // Both commit modes must be bit-identical across thread counts: the
  // sharded batch commit's only scheduling-dependent stage is the
  // commit_prepared parallel fill, whose every container receives entries
  // in ascending batch order regardless of which worker fills which shard.
  for (bool sharded : {true, false}) {
    for (const ModelInfo& m : seed_examples()) {
      TensatOptions opt = explore_options();
      opt.sharded_commit = sharded;
      opt.apply_threads = 1;
      const std::string baseline = explore_and_fingerprint(m.graph, opt);
      for (size_t threads : {2u, 8u}) {
        opt.apply_threads = threads;
        EXPECT_EQ(baseline, explore_and_fingerprint(m.graph, opt))
            << m.name << " sharded=" << sharded
            << " apply_threads=" << threads;
      }
    }
  }
}

TEST(ApplyPipeline, IncrementalCyclesDeterministicAcrossThreadCounts) {
  // The incremental cycle analysis advances its epoch only at the serial
  // rebuild boundary, so its map — and with it the pre-filter's answers and
  // the filtered node set — must be a pure function of the e-graph state,
  // never of worker count or scheduling: bit-identical e-graphs for any
  // apply_threads/search_threads combination, in both cycle modes, with the
  // sharded commit on or off (the full toggle matrix).
  for (bool sharded : {true, false}) {
    for (bool incremental : {true, false}) {
      for (const ModelInfo& m : seed_examples()) {
        TensatOptions opt = explore_options();
        opt.sharded_commit = sharded;
        opt.incremental_cycles = incremental;
        opt.search_threads = 1;
        opt.apply_threads = 1;
        const std::string baseline = explore_and_fingerprint(m.graph, opt);
        for (size_t threads : {2u, 8u}) {
          opt.search_threads = threads;
          opt.apply_threads = threads;
          EXPECT_EQ(baseline, explore_and_fingerprint(m.graph, opt))
              << m.name << " sharded=" << sharded
              << " incremental=" << incremental << " threads=" << threads;
        }
      }
    }
  }
}

TEST(ApplyPipeline, SearchAndApplyThreadsCompose) {
  // Both pools on at once must not perturb anything either.
  for (const ModelInfo& m : seed_examples()) {
    TensatOptions opt = explore_options();
    const std::string baseline = explore_and_fingerprint(m.graph, opt);
    opt.search_threads = 4;
    opt.apply_threads = 4;
    EXPECT_EQ(baseline, explore_and_fingerprint(m.graph, opt)) << m.name;
  }
}

// ---- Staged pipeline vs legacy direct path ---------------------------------

TEST(ApplyPipeline, StagedMatchesLegacyDirectPath) {
  // The two paths are differential baselines of each other. They agree on
  // everything semantically visible — applications, merges, filtered nodes,
  // extraction — but not byte-for-byte: the direct path's instantiate adds
  // nodes bottom-up and leaves partial junk behind when a later node fails
  // its shape check or the src/target data compare, while a non-viable plan
  // commits nothing. Staged is therefore never larger than legacy on these
  // workloads (commit-time shape failures, which can also strand nodes on
  // the staged path, do not occur here — no mid-iteration analysis joins).
  //
  // Pinned to sharded_commit = false: the size comparisons below hold only
  // for the serial commit, whose interleaved insert/merge collapses
  // would-be duplicates through the live hash-cons before inserting. Batch
  // mode resolves against the clean snapshot, so duplicates that a merge
  // earlier in the same batch would have collapsed land as separate nodes
  // and fall to the rebuild — a distinct valid mode, covered by
  // ShardedCommitMatchesSerialCommitSemantically below.
  for (CycleFilterMode mode :
       {CycleFilterMode::kEfficient, CycleFilterMode::kVanilla}) {
    for (const ModelInfo& m : seed_examples()) {
      TensatOptions opt = explore_options();
      opt.sharded_commit = false;
      opt.cycle_filter = mode;

      opt.staged_apply = false;
      EGraph legacy = seed_egraph(m.graph);
      const ExploreStats legacy_stats = run_exploration(legacy, default_rules(), opt);
      opt.staged_apply = true;
      EGraph staged = seed_egraph(m.graph);
      const ExploreStats staged_stats = run_exploration(staged, default_rules(), opt);

      // applications is NOT compared: the direct path's stranded partial
      // nodes are matchable in later iterations, so its application count
      // drifts upward relative to staged on multi-iteration runs.
      EXPECT_GT(staged_stats.applications, 0u) << m.name;
      EXPECT_EQ(legacy_stats.iterations, staged_stats.iterations) << m.name;
      EXPECT_EQ(legacy_stats.stop, staged_stats.stop) << m.name;
      EXPECT_EQ(legacy.num_filtered(), staged.num_filtered()) << m.name;
      EXPECT_EQ(legacy.num_classes() >= staged.num_classes(), true) << m.name;
      EXPECT_GE(legacy.num_enodes_total(), staged.num_enodes_total()) << m.name;

      const T4CostModel model;
      const ExtractionResult lx = extract_greedy(legacy, model);
      const ExtractionResult sx = extract_greedy(staged, model);
      ASSERT_EQ(lx.ok, sx.ok) << m.name;
      if (lx.ok) {
        EXPECT_DOUBLE_EQ(lx.cost, sx.cost) << m.name;
        EXPECT_EQ(lx.graph.to_sexpr(lx.graph.roots()[0]),
                  sx.graph.to_sexpr(sx.graph.roots()[0]))
            << m.name << " mode=" << static_cast<int>(mode);
      }
    }
  }
}

// ---- Sharded batch commit vs serial commit ---------------------------------

TEST(ApplyPipeline, ShardedCommitMatchesSerialCommitSemantically) {
  // Batch mode inserts the whole iteration's fresh nodes before any merge,
  // so nodes the serial commit would have collapsed through the live
  // hash-cons instead collapse at the rebuild. The two modes are therefore
  // not bit-replays of each other — the e-graphs can hold different (but
  // equivalent) node sets, and greedy extraction may break cost ties toward
  // different representatives. What must agree is the semantics: the run
  // stops for the same reason, extraction succeeds on both, and the
  // extracted graphs cost exactly the same.
  for (bool incremental : {true, false}) {
    for (const ModelInfo& m : seed_examples()) {
      TensatOptions opt = explore_options();
      opt.incremental_cycles = incremental;

      opt.sharded_commit = false;
      EGraph serial = seed_egraph(m.graph);
      const ExploreStats serial_stats =
          run_exploration(serial, default_rules(), opt);
      opt.sharded_commit = true;
      EGraph sharded = seed_egraph(m.graph);
      const ExploreStats sharded_stats =
          run_exploration(sharded, default_rules(), opt);

      EXPECT_GT(sharded_stats.applications, 0u) << m.name;
      EXPECT_EQ(serial_stats.stop, sharded_stats.stop)
          << m.name << " incremental=" << incremental;

      const T4CostModel model;
      const ExtractionResult sx = extract_greedy(serial, model);
      const ExtractionResult bx = extract_greedy(sharded, model);
      ASSERT_EQ(sx.ok, bx.ok) << m.name;
      if (sx.ok) {
        EXPECT_DOUBLE_EQ(sx.cost, bx.cost)
            << m.name << " incremental=" << incremental;
      }
    }
  }
}

TEST(ApplyPipeline, ShardedToggleIsNoOpOnLegacyDirectPath) {
  // sharded_commit only routes the staged pipeline's stage 2; with
  // staged_apply off it must change nothing, bit-for-bit.
  for (const ModelInfo& m : seed_examples()) {
    TensatOptions opt = explore_options();
    opt.staged_apply = false;
    opt.sharded_commit = false;
    const std::string baseline = explore_and_fingerprint(m.graph, opt);
    opt.sharded_commit = true;
    EXPECT_EQ(baseline, explore_and_fingerprint(m.graph, opt)) << m.name;
  }
}

// ---- plan/commit parity with direct instantiate ----------------------------

TEST(ApplyPipeline, PlanCommitParityWithDirectInstantiate) {
  const Rewrite rule =
      make_rewrite("t", "(ewadd ?x ?y)", "(relu (ewadd ?y ?x))");
  Graph g;
  const Id a = g.input("a", {8, 8});
  const Id b = g.input("b", {8, 8});
  g.add_root(g.ewadd(a, b));

  EGraph direct = seed_egraph(g);
  EGraph staged = seed_egraph(g);
  ASSERT_EQ(fingerprint(direct), fingerprint(staged));

  Subst subst;
  // Bind against the seeded input classes (same ids in both copies).
  const auto matches = search_pattern(direct, rule.pat, rule.src_roots[0]);
  ASSERT_EQ(matches.size(), 1u);
  subst = matches[0].subst;

  const auto direct_id = instantiate(direct, rule.pat, rule.dst_roots[0], subst);
  ASSERT_TRUE(direct_id.has_value());

  NodeBuffer buf(staged);
  const uint64_t version_before = staged.version();
  const auto planned = plan_instantiate(buf, rule.pat, rule.dst_roots[0], subst);
  ASSERT_TRUE(planned.has_value());
  EXPECT_TRUE(NodeBuffer::is_staged(*planned));  // relu+ewadd are new nodes
  EXPECT_EQ(buf.size(), 2u);
  // Planning is read-only: nothing changed yet.
  EXPECT_EQ(staged.version(), version_before);
  EXPECT_EQ(fingerprint(seed_egraph(g)), fingerprint(staged));
  // The planned analysis data matches what the committed class will carry.
  EXPECT_EQ(to_string(buf.data(*planned)), to_string(direct.data(*direct_id)));

  const auto committed = buf.commit(staged, *planned);
  ASSERT_TRUE(committed.has_value());
  EXPECT_EQ(*committed, *direct_id);
  EXPECT_EQ(fingerprint(direct), fingerprint(staged));

  // Re-committing is idempotent (memoized), and re-planning the same target
  // now resolves to the existing class without staging anything.
  EXPECT_EQ(buf.commit(staged, *planned), committed);
  NodeBuffer buf2(staged);
  const auto replanned = plan_instantiate(buf2, rule.pat, rule.dst_roots[0], subst);
  ASSERT_TRUE(replanned.has_value());
  EXPECT_FALSE(NodeBuffer::is_staged(*replanned));
  EXPECT_EQ(*replanned, *committed);
  EXPECT_EQ(buf2.size(), 0u);
}

TEST(ApplyPipeline, PlanRejectsShapeFailuresWithoutMutation) {
  // A matmul of shape-incompatible operands must fail the plan the same way
  // the direct path fails, leaving no trace in buffer or e-graph.
  Graph g;
  const Id a = g.input("a", {8, 8});
  const Id z = g.input("z", {3, 5});  // 8x8 matmul 3x5: shape check fails
  g.add_root(a);
  g.add_root(z);
  EGraph eg;
  const auto mapping = eg.add_graph(g);
  eg.set_root(mapping.at(a));  // fingerprint() reads the root

  Graph pat{GraphKind::kPattern};
  const std::vector<Id> roots = parse_all_into(pat, "(matmul 0 ?x ?z)");
  ASSERT_EQ(roots.size(), 1u);
  Subst subst;
  ASSERT_TRUE(subst.bind(Symbol("x"), mapping.at(a)));
  ASSERT_TRUE(subst.bind(Symbol("z"), mapping.at(z)));

  const std::string before = fingerprint(eg);
  const size_t enodes_before = eg.num_enodes_total();
  NodeBuffer buf(eg);
  EXPECT_FALSE(plan_instantiate(buf, pat, roots[0], subst).has_value());
  EXPECT_EQ(buf.size(), 1u);  // the axis literal was staged before the failure
  EXPECT_EQ(before, fingerprint(eg));  // ...but nothing touched the e-graph

  // Contrast with the direct path: it adds nodes bottom-up, so the failed
  // instantiation leaves the orphan literal behind — the junk the staged
  // pipeline's all-or-nothing commit avoids.
  EXPECT_FALSE(instantiate(eg, pat, roots[0], subst).has_value());
  EXPECT_EQ(eg.num_enodes_total(), enodes_before + 1);
}

// ---- Mid-apply time limit ---------------------------------------------------

TEST(ApplyPipeline, TimeLimitMidApplyStopsPhaseAndRecordsReason) {
  // A rule whose condition stalls makes the apply phase blow the time limit
  // while applications are still pending: the whole phase must stop and the
  // stop reason must be kTimeLimit (it used to leak kIterLimit because the
  // mid-apply check only broke to the next rule).
  Graph g;
  const Id x = g.input("x", {8, 8});
  const Id y = g.input("y", {8, 8});
  g.add_root(g.ewadd(x, y));
  g.add_root(g.ewadd(y, x));

  auto stall = [](const InfoLookup&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return true;
  };
  std::vector<Rewrite> rules;
  rules.push_back(make_rewrite("comm", "(ewadd ?a ?b)", "(ewadd ?b ?a)", stall));

  TensatOptions opt;
  opt.k_max = 50;
  opt.explore_time_limit_s = 0.05;
  EGraph eg = seed_egraph(g);
  const ExploreStats stats = run_exploration(eg, rules, opt);
  EXPECT_EQ(stats.stop, StopReason::kTimeLimit);
  EXPECT_LE(stats.iterations, 2);

  // Same workload with a generous limit saturates instead.
  opt.explore_time_limit_s = 60.0;
  EGraph eg2 = seed_egraph(g);
  const ExploreStats ok = run_exploration(eg2, rules, opt);
  EXPECT_EQ(ok.stop, StopReason::kSaturated);
}

// ---- Phase timing -----------------------------------------------------------

TEST(ApplyPipeline, PhaseTimingsArePopulatedAndCoherent) {
  TensatOptions opt = explore_options();
  EGraph eg = seed_egraph(shared_matmuls());
  const ExploreStats stats = run_exploration(eg, default_rules(), opt);
  EXPECT_GT(stats.search_seconds, 0.0);
  EXPECT_GT(stats.apply_seconds, 0.0);
  EXPECT_GT(stats.rebuild_seconds, 0.0);
  // The cycle-analysis phases are split out of apply/rebuild so the
  // incremental-vs-fresh gate can measure exactly the work it replaces.
  EXPECT_GT(stats.dmap_seconds, 0.0);
  EXPECT_GE(stats.cycle_sweep_seconds, 0.0);
  // The phases are the bulk of exploration; they can never exceed it.
  EXPECT_LE(stats.search_seconds + stats.apply_seconds + stats.rebuild_seconds +
                stats.dmap_seconds + stats.cycle_sweep_seconds,
            stats.seconds);
}

}  // namespace
}  // namespace tensat
