// Deeper rule properties than rules_soundness_test.cpp:
//   * random SEQUENCES of rewrites stay semantics-preserving (compositions
//     can break invariants single steps don't, e.g. stale concat histories),
//   * rewrites preserve inferred output shapes across randomized dims,
//   * every bidirectional pair is actually inverse-closed on the e-graph
//     (applying fwd then rev returns to an e-class containing the original).
#include <gtest/gtest.h>

#include "rewrite/matcher.h"
#include "rewrite/rules.h"
#include "support/rng.h"
#include "taso/graph_rewrite.h"
#include "tensor/interp.h"

namespace tensat {
namespace {

/// A randomized matmul/elementwise/concat workload graph.
Graph random_graph(Rng& rng) {
  Graph g;
  const int32_t m = static_cast<int32_t>(rng.range(2, 5));
  const int32_t k = static_cast<int32_t>(rng.range(2, 5));
  const int32_t n = static_cast<int32_t>(rng.range(2, 5));
  const Id x = g.input("x", {m, k});
  const Id w1 = g.weight("w1", {k, n});
  const Id w2 = g.weight("w2", {k, n});
  std::vector<Id> pool = {g.matmul(x, w1), g.matmul(x, w2)};
  for (int step = 0; step < 6; ++step) {
    const Id a = pool[rng.below(pool.size())];
    const Id b = pool[rng.below(pool.size())];
    switch (rng.below(5)) {
      case 0:
        if (g.info(a).shape == g.info(b).shape) pool.push_back(g.ewadd(a, b));
        break;
      case 1:
        if (g.info(a).shape == g.info(b).shape) pool.push_back(g.ewmul(a, b));
        break;
      case 2:
        pool.push_back(g.relu(a));
        break;
      case 3:
        pool.push_back(g.tanh(a));
        break;
      case 4:
        if (g.info(a).rank() == 2) pool.push_back(g.transpose(a, {1, 0}));
        break;
    }
  }
  g.add_root(pool.back());
  g.add_root(pool[pool.size() / 2]);
  return g;
}

class RandomRewriteSequences : public ::testing::TestWithParam<int> {};

TEST_P(RandomRewriteSequences, StaySemanticsPreserving) {
  Rng rng(5000 + GetParam());
  Graph g = random_graph(rng);
  const auto baseline = Interpreter(7).run_roots(g);
  const auto& rules = default_rules();

  int applied = 0;
  for (int step = 0; step < 6; ++step) {
    // Gather every applicable (rule, site) pair and apply a random one.
    std::vector<std::pair<const Rewrite*, std::vector<PatternMatch>>> options;
    for (const Rewrite& rule : rules)
      for (auto& tuple : find_rule_applications(g, rule))
        options.emplace_back(&rule, std::move(tuple));
    if (options.empty()) break;
    std::optional<Graph> next;
    const Rewrite* rule = nullptr;
    for (int attempt = 0; attempt < 10 && !next; ++attempt) {
      auto& [r, tuple] = options[rng.below(options.size())];
      rule = r;
      next = apply_to_graph(g, *r, tuple);
    }
    if (!next.has_value()) continue;
    g = std::move(*next);
    ++applied;

    const auto outputs = Interpreter(7).run_roots(g);
    ASSERT_EQ(outputs.size(), baseline.size());
    for (size_t i = 0; i < outputs.size(); ++i) {
      ASSERT_EQ(outputs[i].dims(), baseline[i].dims())
          << "after " << rule->name << " at step " << step;
      EXPECT_LT(Tensor::max_abs_diff(outputs[i], baseline[i]), 1e-3)
          << "after " << rule->name << " at step " << step;
    }
  }
  EXPECT_GT(applied, 0) << "no rule ever applied on seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRewriteSequences, ::testing::Range(0, 25));

class ShapePreservation : public ::testing::TestWithParam<int> {};

TEST_P(ShapePreservation, RewritesNeverChangeRootShapes) {
  Rng rng(9000 + GetParam());
  const Graph g = random_graph(rng);
  for (const Rewrite& rule : default_rules()) {
    for (const auto& tuple : find_rule_applications(g, rule)) {
      auto next = apply_to_graph(g, rule, tuple);
      if (!next.has_value()) continue;
      ASSERT_EQ(next->roots().size(), g.roots().size()) << rule.name;
      for (size_t i = 0; i < g.roots().size(); ++i)
        EXPECT_EQ(next->info(next->roots()[i]).shape, g.info(g.roots()[i]).shape)
            << rule.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapePreservation, ::testing::Range(0, 10));

TEST(BidirectionalRules, RoundTripInEGraph) {
  // For every -fwd/-rev pair: applying fwd on a seeded e-graph and then rev
  // must merge back into the same class (trivially true when both fire, but
  // verifies the pair is actually inverse-shaped and well-formed).
  const auto& rules = default_rules();
  int pairs = 0;
  for (const Rewrite& fwd : rules) {
    if (fwd.name.size() < 4 || fwd.name.substr(fwd.name.size() - 4) != "-fwd") continue;
    const std::string rev_name = fwd.name.substr(0, fwd.name.size() - 4) + "-rev";
    const auto rev = std::find_if(rules.begin(), rules.end(), [&](const Rewrite& r) {
      return r.name == rev_name;
    });
    ASSERT_NE(rev, rules.end()) << "missing reverse for " << fwd.name;
    // Source of fwd == target of rev and vice versa (as S-expressions).
    ASSERT_EQ(fwd.src_roots.size(), rev->dst_roots.size());
    for (size_t i = 0; i < fwd.src_roots.size(); ++i) {
      EXPECT_EQ(fwd.pat.to_sexpr(fwd.src_roots[i]), rev->pat.to_sexpr(rev->dst_roots[i]))
          << fwd.name;
      EXPECT_EQ(fwd.pat.to_sexpr(fwd.dst_roots[i]), rev->pat.to_sexpr(rev->src_roots[i]))
          << fwd.name;
    }
    ++pairs;
  }
  EXPECT_GT(pairs, 15);
}

}  // namespace
}  // namespace tensat
