#include <gtest/gtest.h>

#include "egraph/egraph.h"
#include "lang/parse.h"
#include "rewrite/matcher.h"
#include "rewrite/rules.h"

namespace tensat {
namespace {

struct Fixture {
  Graph g;
  EGraph eg;
  std::unordered_map<Id, Id> mapping;

  explicit Fixture(const std::function<void(Graph&)>& build) {
    build(g);
    mapping = eg.add_graph(g);
  }
  Id cls(Id gid) const { return eg.find(mapping.at(gid)); }
};

TEST(Matcher, MatchesSimplePattern) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    const Id b = g.input("b", {2, 2});
    g.add_root(g.ewadd(a, b));
  });
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(ewadd ?x ?y)");
  const auto matches = search_pattern(f.eg, pat, root);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].subst.bindings().size(), 2u);
}

TEST(Matcher, VariableConsistency) {
  // (ewadd ?x ?x) must only match ewadd with equal operand classes.
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    const Id b = g.input("b", {2, 2});
    g.add_root(g.ewadd(a, b));
    g.add_root(g.ewadd(a, a));
  });
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(ewadd ?x ?x)");
  const auto matches = search_pattern(f.eg, pat, root);
  ASSERT_EQ(matches.size(), 1u);
}

TEST(Matcher, LiteralNumMustMatch) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    const Id b = g.weight("b", {2, 2});
    g.add_root(g.matmul(a, b, kActRelu));
  });
  Graph pat(GraphKind::kPattern);
  EXPECT_EQ(search_pattern(f.eg, pat, parse_into(pat, "(matmul 0 ?a ?b)")).size(), 0u);
  EXPECT_EQ(search_pattern(f.eg, pat, parse_into(pat, "(matmul 1 ?a ?b)")).size(), 1u);
  // A variable in the parameter position matches any activation.
  EXPECT_EQ(search_pattern(f.eg, pat, parse_into(pat, "(matmul ?act ?a ?b)")).size(),
            1u);
}

TEST(Matcher, LiteralStrMustMatch) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 3});
    g.add_root(g.transpose(a, {1, 0}));
  });
  Graph pat(GraphKind::kPattern);
  EXPECT_EQ(search_pattern(f.eg, pat, parse_into(pat, "(transpose ?x 1_0)")).size(), 1u);
  EXPECT_EQ(search_pattern(f.eg, pat, parse_into(pat, "(transpose ?x 0_1)")).size(), 0u);
}

TEST(Matcher, NestedPattern) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    const Id b = g.weight("b", {2, 2});
    g.add_root(g.relu(g.matmul(a, b)));
  });
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(relu (matmul 0 ?a ?b))");
  const auto matches = search_pattern(f.eg, pat, root);
  ASSERT_EQ(matches.size(), 1u);
}

TEST(Matcher, MatchesThroughMergedClasses) {
  // Assert the equality a = tanh(a); the class of `a` then also contains a
  // tanh e-node, so (relu (tanh ?x)) matches relu(a) — something no single
  // concrete term in the original graph exhibits. This is the extra proving
  // power of e-graph matching (paper §2.3).
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    g.add_root(g.relu(a));
    g.add_root(g.tanh(a));
  });
  Graph h;
  const Id a2 = h.input("a", {2, 2});
  const Id t = h.tanh(a2);
  h.add_root(t);
  auto mapping = f.eg.add_graph(h);
  f.eg.merge(mapping.at(a2), mapping.at(t));
  f.eg.rebuild();
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(relu (tanh ?x))");
  EXPECT_EQ(search_pattern(f.eg, pat, root).size(), 1u);
}

TEST(Matcher, SkipsFilteredNodes) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    g.add_root(g.relu(a));
  });
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(relu ?x)");
  ASSERT_EQ(search_pattern(f.eg, pat, root).size(), 1u);
  // Filter the relu node; the match disappears.
  for (Id cls : f.eg.canonical_classes()) {
    const auto& nodes = f.eg.eclass(cls).nodes;
    for (size_t i = 0; i < nodes.size(); ++i)
      if (nodes[i].node.op == Op::kRelu) f.eg.set_filtered(cls, i);
  }
  EXPECT_EQ(search_pattern(f.eg, pat, root).size(), 0u);
}

TEST(Matcher, MultipleMatchesEnumerated) {
  Fixture f([](Graph& g) {
    const Id x = g.input("x", {4, 4});
    const Id w1 = g.weight("w1", {4, 4});
    const Id w2 = g.weight("w2", {4, 4});
    const Id w3 = g.weight("w3", {4, 4});
    g.add_root(g.matmul(x, w1));
    g.add_root(g.matmul(x, w2));
    g.add_root(g.matmul(x, w3));
  });
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(matmul ?act ?a ?b)");
  EXPECT_EQ(search_pattern(f.eg, pat, root).size(), 3u);
}

TEST(Matcher, MatchLimitRespected) {
  Fixture f([](Graph& g) {
    const Id x = g.input("x", {4, 4});
    for (int i = 0; i < 10; ++i)
      g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {4, 4})));
  });
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(matmul ?act ?a ?b)");
  SearchLimits limits;
  limits.max_matches = 4;
  EXPECT_EQ(search_pattern(f.eg, pat, root, limits).size(), 4u);
}

TEST(Matcher, InstantiateAddsTarget) {
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 2});
    const Id b = g.input("b", {2, 2});
    g.add_root(g.ewadd(a, b));
  });
  Graph pat(GraphKind::kPattern);
  const Id src = parse_into(pat, "(ewadd ?x ?y)");
  const Id dst = parse_into(pat, "(ewadd ?y ?x)");
  auto matches = search_pattern(f.eg, pat, src);
  ASSERT_EQ(matches.size(), 1u);
  auto target = instantiate(f.eg, pat, dst, matches[0].subst);
  ASSERT_TRUE(target.has_value());
  // The flipped ewadd is a distinct class until merged.
  EXPECT_NE(f.eg.find(*target), f.eg.find(matches[0].root));
  f.eg.merge(*target, matches[0].root);
  f.eg.rebuild();
  EXPECT_EQ(f.eg.find(*target), f.eg.find(matches[0].root));
}

TEST(Matcher, InstantiateShapeCheckFails) {
  // Instantiating (matmul ?x ?x) where ?x : 2x3 must fail the shape check.
  Fixture f([](Graph& g) {
    const Id a = g.input("a", {2, 3});
    g.add_root(g.relu(a));
  });
  Graph pat(GraphKind::kPattern);
  const Id src = parse_into(pat, "(relu ?x)");
  const Id dst = parse_into(pat, "(matmul 0 ?x ?x)");
  auto matches = search_pattern(f.eg, pat, src);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_FALSE(instantiate(f.eg, pat, dst, matches[0].subst).has_value());
}

}  // namespace
}  // namespace tensat
