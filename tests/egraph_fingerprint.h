// Shared test helper: a strong, order-stable fingerprint of an explored
// e-graph. Used by the determinism and differential suites
// (apply_pipeline_test, cycles_incremental_test, cycles_fuzz_test) — two
// e-graphs with equal fingerprints are identical up to e-node order within a
// class: same canonical class ids, same analysis data, same e-node sets,
// same filtered flags, and — via each e-node's insertion stamp — the same
// global insertion order. The stamps are what make the sharded-commit
// determinism tests strong: a parallel fill that permuted insertion order
// across thread counts would produce equal node *sets* but different
// stamps, and the fingerprint would catch it.
#pragma once

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "egraph/egraph.h"
#include "lang/op.h"

namespace tensat {

inline std::string fingerprint(const EGraph& eg) {
  std::ostringstream out;
  out << "classes=" << eg.num_classes() << " enodes=" << eg.num_enodes_total()
      << " filtered=" << eg.num_filtered() << " root=" << eg.root() << "\n";
  for (Id cls : eg.canonical_classes()) {
    std::vector<std::string> nodes;
    for (const EClassNode& e : eg.eclass(cls).nodes) {
      std::ostringstream n;
      n << op_info(e.node.op).name << '/' << e.node.num << '/' << e.node.str.str();
      for (Id c : e.node.children) n << ' ' << eg.find(c);
      n << " @" << e.stamp;
      if (e.filtered) n << " [filtered]";
      nodes.push_back(n.str());
    }
    std::sort(nodes.begin(), nodes.end());
    out << cls << ": " << to_string(eg.data(cls));
    for (const std::string& n : nodes) out << " | " << n;
    out << "\n";
  }
  return out.str();
}

}  // namespace tensat
