// Seeded fuzz harness for the extraction engine: random small e-graphs
// (random DAGs of same-shape tensor ops, randomly merged same-analysis
// classes, randomly filtered e-nodes) extracted by both the decomposing
// engine and the monolithic ILP at zero MIP gap. The engine's contract is
// exact-cost parity on every instance both paths solve — the reductions,
// the SCC condensation, the tree-like DP collapse, and the per-core stitch
// must all be invisible in the objective.
//
// Two regimes, mirroring the paper's two ways of handling cycles:
//  * filtered/acyclic: cycles filtered out of the e-graph (the paper's main
//    mode), ILP without acyclicity constraints — every selection is a DAG,
//    so costs must match exactly.
//  * cyclic with constraints (4)-(5): no filtering; both paths must agree on
//    the optimal acyclic selection cost.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cycles/cycles.h"
#include "extract/engine/engine.h"
#include "extract/extract.h"
#include "optimizer/optimizer.h"
#include "support/rng.h"

namespace tensat {
namespace {

const T4CostModel& model() {
  static const T4CostModel m;
  return m;
}

/// Random DAG over {8,8} tensors: a few input/weight leaves, then random
/// unary/binary ops over earlier nodes, with 1-3 random roots.
Graph random_graph(Rng& rng) {
  Graph g;
  std::vector<Id> pool;
  const int inputs = static_cast<int>(rng.range(1, 3));
  const int weights = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < inputs; ++i)
    pool.push_back(g.input("x" + std::to_string(i), {8, 8}));
  for (int i = 0; i < weights; ++i)
    pool.push_back(g.weight("w" + std::to_string(i), {8, 8}));
  const int ops = static_cast<int>(rng.range(6, 22));
  for (int i = 0; i < ops; ++i) {
    const Id a = pool[rng.below(pool.size())];
    const Id b = pool[rng.below(pool.size())];
    Id made;
    switch (rng.below(6)) {
      case 0: made = g.matmul(a, b); break;
      case 1: made = g.ewadd(a, b); break;
      case 2: made = g.ewmul(a, b); break;
      case 3: made = g.relu(a); break;
      case 4: made = g.tanh(a); break;
      default: made = g.sigmoid(a); break;
    }
    pool.push_back(made);
  }
  const int roots = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < roots; ++i)
    g.add_root(pool[pool.size() - 1 - rng.below(std::min<size_t>(pool.size(), 5))]);
  return g;
}

/// Randomly merges same-analysis tensor classes (creating real extraction
/// choices, possibly cycles) and rebuilds.
void random_merges(EGraph& eg, Rng& rng, int merges) {
  for (int i = 0; i < merges; ++i) {
    const std::vector<Id> classes = eg.canonical_classes();
    const Id a = classes[rng.below(classes.size())];
    const Id b = classes[rng.below(classes.size())];
    if (eg.find(a) == eg.find(b)) continue;
    const ValueInfo& da = eg.data(a);
    const ValueInfo& db = eg.data(b);
    if (da.kind != VKind::kTensor || db.kind != VKind::kTensor) continue;
    if (da.shape != db.shape || da.shape2 != db.shape2) continue;
    if (da.num != db.num || da.str != db.str) continue;
    // Merging a weight-only class into a non-weight-only one is possible in
    // the e-graph but never semantic (real rewrites preserve the value, and
    // weight-only-ness is a property of the value): it makes the class-level
    // cost diverge from the re-inferred cost of an extracted member, so tied
    // optima would realize different graph costs and parity would be
    // unfalsifiable. Keep the fuzz instances semantically coherent instead.
    if (da.weight_only != db.weight_only) continue;
    eg.merge(a, b);
    eg.rebuild();
  }
}

/// Randomly filters a few e-nodes (never the last live node of the root).
void random_filtering(EGraph& eg, Rng& rng, int attempts) {
  for (int i = 0; i < attempts; ++i) {
    const std::vector<Id> classes = eg.canonical_classes();
    const Id cls = classes[rng.below(classes.size())];
    const auto& nodes = eg.eclass(cls).nodes;
    const size_t k = rng.below(nodes.size());
    if (nodes[k].filtered) continue;
    if (eg.find(cls) == eg.root()) continue;
    eg.set_filtered(cls, k);
  }
}

void expect_parity(const EGraph& eg, bool cycle_constraints, uint64_t seed) {
  IlpExtractOptions base;
  base.cycle_constraints = cycle_constraints;
  base.rel_gap = 0.0;  // exact per-core optima, so costs must match exactly
  base.time_limit_s = 30.0;
  ExtractEngineOptions engine_opt;
  static_cast<IlpExtractOptions&>(engine_opt) = base;

  const EngineExtractionResult engine = extract_engine(eg, model(), engine_opt);
  const IlpExtractionResult mono = extract_ilp(eg, model(), base);
  ASSERT_FALSE(engine.timed_out) << "seed " << seed;
  ASSERT_FALSE(mono.timed_out) << "seed " << seed;
  EXPECT_EQ(engine.ok, mono.ok) << "seed " << seed;
  if (!engine.ok || !mono.ok) return;
  EXPECT_NEAR(engine.cost, mono.cost, 1e-6 + 1e-9 * std::abs(mono.cost))
      << "seed " << seed;
  // The engine must never lose to greedy either (it subsumes the warm start).
  const ExtractionResult greedy = extract_greedy(eg, model());
  if (greedy.ok) EXPECT_LE(engine.cost, greedy.cost + 1e-6) << "seed " << seed;
  // The extracted graph must realize the claimed cost.
  if (!engine.cyclic_selection)
    EXPECT_NEAR(graph_cost(engine.graph, model()), engine.cost, 1e-6)
        << "seed " << seed;
}

TEST(ExtractFuzz, FilteredAcyclicParity) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull);
    Graph g = random_graph(rng);
    EGraph eg = seed_egraph(g);
    random_merges(eg, rng, static_cast<int>(rng.range(0, 8)));
    random_filtering(eg, rng, static_cast<int>(rng.range(0, 4)));
    // The paper's main mode: cycles filtered during exploration, ILP without
    // acyclicity constraints.
    filter_cycles(eg);
    ASSERT_TRUE(is_acyclic(eg)) << "seed " << seed;
    expect_parity(eg, /*cycle_constraints=*/false, seed);
  }
}

TEST(ExtractFuzz, CyclicWithConstraintsParity) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 0xbf58476d1ce4e5b9ull);
    Graph g = random_graph(rng);
    EGraph eg = seed_egraph(g);
    random_merges(eg, rng, static_cast<int>(rng.range(1, 10)));
    expect_parity(eg, /*cycle_constraints=*/true, seed);
  }
}

// Differential: the sparse revised simplex vs the dense tableau under the
// engine at zero MIP gap. Both LP paths must produce the same extraction
// cost AND the same proven bound — the sparse solver is a perf change, not
// a semantic one.
TEST(ExtractFuzz, SparseVsDenseLpParity) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 0xd6e8feb86659fd93ull);
    Graph g = random_graph(rng);
    EGraph eg = seed_egraph(g);
    random_merges(eg, rng, static_cast<int>(rng.range(0, 8)));
    filter_cycles(eg);
    ExtractEngineOptions opt;
    opt.rel_gap = 0.0;
    opt.time_limit_s = 30.0;
    opt.sparse_lp = true;
    const EngineExtractionResult sparse = extract_engine(eg, model(), opt);
    opt.sparse_lp = false;
    const EngineExtractionResult dense = extract_engine(eg, model(), opt);
    ASSERT_FALSE(sparse.timed_out) << "seed " << seed;
    ASSERT_FALSE(dense.timed_out) << "seed " << seed;
    ASSERT_EQ(sparse.ok, dense.ok) << "seed " << seed;
    if (!sparse.ok) continue;
    EXPECT_NEAR(sparse.cost, dense.cost, 1e-6 + 1e-9 * std::abs(dense.cost))
        << "seed " << seed;
    EXPECT_NEAR(sparse.best_bound, dense.best_bound,
                1e-6 + 1e-9 * std::abs(dense.best_bound))
        << "seed " << seed;
  }
}

// Differential: warm-started B&B (children re-solve from the parent basis)
// vs every node cold. Warm starts may only change speed — at zero gap the
// incumbent cost and the certified bound must match.
TEST(ExtractFuzz, WarmVsColdBasisParity) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 0xa0761d6478bd642full);
    Graph g = random_graph(rng);
    EGraph eg = seed_egraph(g);
    random_merges(eg, rng, static_cast<int>(rng.range(0, 8)));
    filter_cycles(eg);
    ExtractEngineOptions opt;
    opt.rel_gap = 0.0;
    opt.time_limit_s = 30.0;
    opt.warm_start_basis = true;
    const EngineExtractionResult warm = extract_engine(eg, model(), opt);
    opt.warm_start_basis = false;
    const EngineExtractionResult cold = extract_engine(eg, model(), opt);
    ASSERT_FALSE(warm.timed_out) << "seed " << seed;
    ASSERT_FALSE(cold.timed_out) << "seed " << seed;
    ASSERT_EQ(warm.ok, cold.ok) << "seed " << seed;
    if (!warm.ok) continue;
    EXPECT_NEAR(warm.cost, cold.cost, 1e-6 + 1e-9 * std::abs(cold.cost))
        << "seed " << seed;
    EXPECT_NEAR(warm.best_bound, cold.best_bound,
                1e-6 + 1e-9 * std::abs(cold.best_bound))
        << "seed " << seed;
    EXPECT_EQ(cold.stats.warm_start_hits, 0) << "seed " << seed;
  }
}

TEST(ExtractFuzz, IntegerTopoVariantParity) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x94d049bb133111ebull);
    Graph g = random_graph(rng);
    EGraph eg = seed_egraph(g);
    random_merges(eg, rng, static_cast<int>(rng.range(1, 6)));
    IlpExtractOptions base;
    base.cycle_constraints = true;
    base.integer_topo_vars = true;
    base.rel_gap = 0.0;
    base.time_limit_s = 30.0;
    ExtractEngineOptions engine_opt;
    static_cast<IlpExtractOptions&>(engine_opt) = base;
    const EngineExtractionResult engine = extract_engine(eg, model(), engine_opt);
    const IlpExtractionResult mono = extract_ilp(eg, model(), base);
    ASSERT_FALSE(engine.timed_out) << "seed " << seed;
    ASSERT_FALSE(mono.timed_out) << "seed " << seed;
    EXPECT_EQ(engine.ok, mono.ok) << "seed " << seed;
    if (engine.ok && mono.ok)
      EXPECT_NEAR(engine.cost, mono.cost, 1e-6 + 1e-9 * std::abs(mono.cost))
          << "seed " << seed;
  }
}

}  // namespace
}  // namespace tensat
