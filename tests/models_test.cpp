#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost.h"
#include "models/models.h"
#include "tensor/interp.h"

namespace tensat {
namespace {

TEST(Models, PaperSetHasSevenBenchmarks) {
  const auto models = paper_models();
  ASSERT_EQ(models.size(), 7u);
  EXPECT_EQ(models[0].name, "NasRNN");
  EXPECT_EQ(models[1].name, "BERT");
  EXPECT_EQ(models[6].name, "Inception-v3");
}

TEST(Models, AllGraphsWellFormed) {
  for (const ModelInfo& m : paper_models()) {
    EXPECT_GT(m.graph.reachable_size(), 10u) << m.name;
    ASSERT_FALSE(m.graph.roots().empty()) << m.name;
    for (Id root : m.graph.roots())
      EXPECT_EQ(m.graph.info(root).kind, VKind::kTensor) << m.name;
  }
}

TEST(Models, BertContainsQkvMotif) {
  // Three matmuls sharing the layer input (paper Fig. 8's merge target).
  const Graph g = make_bert(1, 8, 16);
  int matmuls = 0;
  for (Id id : g.topo_order())
    if (g.node(id).op == Op::kMatmul) ++matmuls;
  EXPECT_GE(matmuls, 6);  // QKV + scores + ctx + out + 2 FFN
}

TEST(Models, NasrnnMatmulFarm) {
  const Graph g = make_nasrnn(1, 2, 8);
  const auto hist = g.op_histogram();
  EXPECT_EQ(hist.at(Op::kMatmul), 16);  // 8 gates x 2 operands
  EXPECT_GE(hist.at(Op::kEwmul) + hist.at(Op::kEwadd), 10);
}

TEST(Models, ResnextUsesGroupedConv) {
  const Graph g = make_resnext50(1, 8, 8, 2);
  bool found_grouped = false;
  for (Id id : g.topo_order()) {
    const TNode& n = g.node(id);
    if (n.op != Op::kConv) continue;
    const ValueInfo& x = g.info(n.children[4]);
    const ValueInfo& w = g.info(n.children[5]);
    if (x.shape[1] != w.shape[1]) found_grouped = true;
  }
  EXPECT_TRUE(found_grouped);
}

TEST(Models, SqueezenetFireMotif) {
  const Graph g = make_squeezenet(1, 8, 8);
  const auto hist = g.op_histogram();
  EXPECT_GE(hist.at(Op::kConcat2), 1);  // expand 1x1 / 3x3 concat
}

TEST(Models, InceptionConcatsFourBranches) {
  const Graph g = make_inception_v3(1, 8, 8);
  const auto hist = g.op_histogram();
  EXPECT_GE(hist.count(Op::kConcat4) ? hist.at(Op::kConcat4) : 0, 1);
}

TEST(Models, Vgg19HasSixteenConvsThreeFcs) {
  const Graph g = make_vgg19(2, 32);
  const auto hist = g.op_histogram();
  EXPECT_EQ(hist.at(Op::kConv), 16);
  EXPECT_EQ(hist.at(Op::kMatmul), 3);
}

TEST(Models, DifferentScalesDifferentCosts) {
  const T4CostModel model;
  const double small = graph_cost(make_bert(1, 8, 16), model);
  const double large = graph_cost(make_bert(2, 64, 256), model);
  EXPECT_LT(small, large);
}

TEST(Models, TinyModelsExecuteFinite) {
  // VGG-19 covered here (largest tiny model).
  const Graph g = make_vgg19(2, 32);
  Interpreter interp(5);
  const auto out = interp.run_roots(g);
  ASSERT_EQ(out.size(), 1u);
  for (float v : out[0].data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Models, DeterministicConstruction) {
  const Graph a = make_nasnet_a(2, 8, 8);
  const Graph b = make_nasnet_a(2, 8, 8);
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
}

}  // namespace
}  // namespace tensat
