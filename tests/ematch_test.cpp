// Tests for the compiled e-matching subsystem (src/ematch): pattern
// compiler unit tests, VM behavior, BackoffScheduler ban/unban logic, and
// the differential test proving the VM returns exactly the same match set
// as the legacy recursive matcher across the full rule set.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "ematch/machine.h"
#include "ematch/program.h"
#include "ematch/scheduler.h"
#include "lang/parse.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/matcher.h"
#include "rewrite/multi.h"
#include "rewrite/rules.h"

namespace tensat {
namespace {

using ematch::BackoffOptions;
using ematch::BackoffScheduler;
using ematch::compile_pattern;
using ematch::Instruction;
using ematch::Program;

Program compile(const char* sexpr, Graph* keep = nullptr) {
  Graph local(GraphKind::kPattern);
  Graph& pat = keep ? *keep : local;
  const Id root = parse_into(pat, sexpr);
  return compile_pattern(pat, root);
}

// ---- Pattern compiler ------------------------------------------------------

TEST(EmatchCompile, SimpleBinaryPattern) {
  const Program prog = compile("(ewadd ?x ?y)");
  ASSERT_EQ(prog.insts.size(), 1u);
  EXPECT_EQ(prog.insts[0].kind, Instruction::Kind::kBind);
  EXPECT_EQ(prog.insts[0].op, Op::kEwadd);
  EXPECT_EQ(prog.insts[0].reg, 0);
  EXPECT_EQ(prog.insts[0].out, 1);
  EXPECT_EQ(prog.num_regs, 3);
  EXPECT_EQ(prog.root_op, Op::kEwadd);
  ASSERT_EQ(prog.vars.size(), 2u);
  EXPECT_EQ(prog.vars[0].first.str(), "x");
  EXPECT_EQ(prog.vars[0].second, 1);
  EXPECT_EQ(prog.vars[1].first.str(), "y");
  EXPECT_EQ(prog.vars[1].second, 2);
}

TEST(EmatchCompile, RepeatedVariableEmitsCompare) {
  const Program prog = compile("(ewadd ?x ?x)");
  ASSERT_EQ(prog.insts.size(), 2u);
  EXPECT_EQ(prog.insts[0].kind, Instruction::Kind::kBind);
  EXPECT_EQ(prog.insts[1].kind, Instruction::Kind::kCompare);
  EXPECT_EQ(prog.insts[1].reg, 2);
  EXPECT_EQ(prog.insts[1].other, 1);
  ASSERT_EQ(prog.vars.size(), 1u);  // one variable, bound once
}

TEST(EmatchCompile, LiteralsCompileToChecks) {
  const Program num = compile("(matmul 1 ?a ?b)");
  ASSERT_EQ(num.insts.size(), 2u);
  EXPECT_EQ(num.insts[1].kind, Instruction::Kind::kCheckNum);
  EXPECT_EQ(num.insts[1].num, 1);

  const Program str = compile("(transpose ?x 1_0)");
  ASSERT_EQ(str.insts.size(), 2u);
  EXPECT_EQ(str.insts[1].kind, Instruction::Kind::kCheckStr);
  EXPECT_EQ(str.insts[1].str.str(), "1_0");
}

TEST(EmatchCompile, NestedPatternAllocatesRegistersDepthFirst) {
  const Program prog = compile("(relu (matmul 0 ?a ?b))");
  // bind relu -> r1; bind matmul on r1 -> r2..r4; check_num r2.
  ASSERT_EQ(prog.insts.size(), 3u);
  EXPECT_EQ(prog.insts[0].kind, Instruction::Kind::kBind);
  EXPECT_EQ(prog.insts[0].op, Op::kRelu);
  EXPECT_EQ(prog.insts[1].kind, Instruction::Kind::kBind);
  EXPECT_EQ(prog.insts[1].op, Op::kMatmul);
  EXPECT_EQ(prog.insts[1].reg, 1);
  EXPECT_EQ(prog.insts[1].out, 2);
  EXPECT_EQ(prog.insts[2].kind, Instruction::Kind::kCheckNum);
  EXPECT_EQ(prog.num_regs, 5);
}

TEST(EmatchCompile, LeafRootPrograms) {
  const Program var = compile("?x");
  EXPECT_TRUE(var.insts.empty());
  EXPECT_EQ(var.root_op, Op::kVar);
  ASSERT_EQ(var.vars.size(), 1u);
  EXPECT_EQ(var.vars[0].second, 0);

  const Program num = compile("7");
  ASSERT_EQ(num.insts.size(), 1u);
  EXPECT_EQ(num.insts[0].kind, Instruction::Kind::kCheckNum);
  EXPECT_EQ(num.root_op, Op::kNum);
}

TEST(EmatchCompile, ToStringListsInstructions) {
  const Program prog = compile("(ewadd ?x ?x)");
  const std::string listing = ematch::to_string(prog);
  EXPECT_NE(listing.find("bind r0, ewadd, r1"), std::string::npos);
  EXPECT_NE(listing.find("compare r2, r1"), std::string::npos);
  EXPECT_NE(listing.find("yield ?x=r1"), std::string::npos);
}

// ---- VM behavior -----------------------------------------------------------

TEST(EmatchVM, SearchUsesOpIndexCandidates) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id b = g.weight("b", {2, 2});
  g.add_root(g.matmul(a, b));
  g.add_root(g.relu(a));
  EGraph eg;
  eg.add_graph(g);

  Graph pat(GraphKind::kPattern);
  const Program prog = compile_pattern(pat, parse_into(pat, "(matmul ?act ?a ?b)"));
  const auto matches = ematch::search(eg, prog);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].subst.bindings().size(), 3u);
  // The matched root really is the matmul class.
  const auto idx = eg.classes_with_op(Op::kMatmul);
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(eg.find(matches[0].root), idx[0]);
}

TEST(EmatchVM, MatchLimitStopsSearch) {
  Graph g;
  const Id x = g.input("x", {4, 4});
  for (int i = 0; i < 10; ++i)
    g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {4, 4})));
  EGraph eg;
  eg.add_graph(g);
  Graph pat(GraphKind::kPattern);
  const Id root = parse_into(pat, "(matmul ?act ?a ?b)");
  const Program prog = compile_pattern(pat, root);
  ematch::MatchLimits limits;
  limits.max_matches = 4;
  EXPECT_EQ(ematch::search(eg, prog, limits).size(), 4u);
  ematch::MatchLimits steps;
  steps.max_steps = 3;
  EXPECT_LT(ematch::search(eg, prog, steps).size(), 10u);
}

TEST(EmatchVM, MatchClassRespectsTargetClass) {
  Graph g;
  const Id a = g.input("a", {2, 2});
  const Id r = g.relu(a);
  g.add_root(r);
  EGraph eg;
  auto mapping = eg.add_graph(g);
  Graph pat(GraphKind::kPattern);
  const Program prog = compile_pattern(pat, parse_into(pat, "(relu ?x)"));
  EXPECT_EQ(ematch::match_class(eg, prog, mapping.at(r)).size(), 1u);
  EXPECT_EQ(ematch::match_class(eg, prog, mapping.at(a)).size(), 0u);
}

// ---- Differential test against the legacy matcher --------------------------

/// Canonical fingerprint of a match set: multiset of (root, var=class...)
/// lines with every id canonicalized. Equal fingerprints <=> equal match
/// multisets.
std::string fingerprint(const EGraph& eg, const std::vector<PatternMatch>& matches) {
  std::vector<std::string> lines;
  lines.reserve(matches.size());
  for (const PatternMatch& m : matches) {
    std::ostringstream os;
    os << eg.find(m.root) << ":";
    std::vector<std::pair<std::string, Id>> bindings;
    for (const auto& [var, cls] : m.subst.bindings())
      bindings.emplace_back(var.str(), eg.find(cls));
    std::sort(bindings.begin(), bindings.end());
    for (const auto& [var, cls] : bindings) os << " " << var << "=" << cls;
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

/// Asserts VM == naive for every canonical pattern of default_rules().
void expect_parity(const EGraph& eg, const char* context) {
  const MultiPlan plan = build_multi_plan(default_rules());
  SearchLimits unlimited;
  unlimited.max_matches = 0;
  unlimited.max_steps = 0;
  ematch::MatchLimits vm_unlimited;
  vm_unlimited.max_matches = 0;
  vm_unlimited.max_steps = 0;
  for (size_t p = 0; p < plan.patterns.size(); ++p) {
    const CanonicalPattern& cp = plan.patterns[p];
    const auto vm = ematch::search(eg, cp.program, vm_unlimited);
    const auto naive = search_pattern_naive(eg, cp.pat, cp.root, unlimited);
    EXPECT_EQ(fingerprint(eg, vm), fingerprint(eg, naive))
        << context << ": pattern " << cp.key;
  }
}

TEST(EmatchDifferential, SeedEGraphsOfAllModels) {
  for (const ModelInfo& m : tiny_models()) {
    const EGraph eg = seed_egraph(m.graph);
    expect_parity(eg, m.name.c_str());
  }
}

TEST(EmatchDifferential, ExploredEGraphWithMergesAndFilters) {
  // After exploration the e-graph has merged classes, congruence-closure
  // unions, and cycle-filtered e-nodes — the hard cases for index staleness.
  Graph g;
  const Id x = g.input("x", {64, 256});
  for (int i = 0; i < 3; ++i)
    g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {256, 256})));
  EGraph eg = seed_egraph(g);
  TensatOptions opt;
  opt.k_max = 3;
  opt.k_multi = 2;
  opt.node_limit = 3000;
  run_exploration(eg, default_rules(), opt);
  ASSERT_GT(eg.num_filtered(), 0u);  // the workload really exercises filtering
  expect_parity(eg, "explored shared-matmuls");
}

TEST(EmatchDifferential, ExploredNasrnnEGraph) {
  EGraph eg = seed_egraph(make_nasrnn(1, 4, 32));
  TensatOptions opt;
  opt.k_max = 2;
  opt.k_multi = 1;
  opt.node_limit = 2000;
  run_exploration(eg, default_rules(), opt);
  expect_parity(eg, "explored nasrnn");
}

// ---- BackoffScheduler ------------------------------------------------------

TEST(Scheduler, NoBanUnderLimit) {
  BackoffScheduler sched(2, BackoffOptions{10, 3});
  EXPECT_FALSE(sched.record_matches(0, 0, 10));  // at the limit: allowed
  EXPECT_FALSE(sched.is_banned(0, 1));
  EXPECT_FALSE(sched.any_banned(1));
}

TEST(Scheduler, BanOnBlownBudgetAndExpiry) {
  BackoffScheduler sched(2, BackoffOptions{10, 3});
  EXPECT_TRUE(sched.record_matches(0, 0, 11));
  // Banned for ban_length = 3 iterations: 1, 2, 3; free again at 4.
  EXPECT_TRUE(sched.is_banned(0, 1));
  EXPECT_TRUE(sched.is_banned(0, 3));
  EXPECT_FALSE(sched.is_banned(0, 4));
  EXPECT_FALSE(sched.is_banned(1, 1));  // other rules unaffected
  EXPECT_TRUE(sched.any_banned(2));
  EXPECT_FALSE(sched.any_banned(4));
}

TEST(Scheduler, BudgetAndBanLengthDoubleOnRepeatOffense) {
  BackoffScheduler sched(1, BackoffOptions{10, 3});
  EXPECT_EQ(sched.match_limit(0), 10u);
  EXPECT_TRUE(sched.record_matches(0, 0, 11));
  EXPECT_EQ(sched.match_limit(0), 20u);  // doubled budget after first ban
  EXPECT_FALSE(sched.record_matches(0, 4, 15));  // within the doubled budget
  EXPECT_TRUE(sched.record_matches(0, 5, 21));
  // Second ban lasts 2 * ban_length = 6 iterations: 6..11, free at 12.
  EXPECT_TRUE(sched.is_banned(0, 11));
  EXPECT_FALSE(sched.is_banned(0, 12));
  EXPECT_EQ(sched.stats(0).times_banned, 2u);
  EXPECT_EQ(sched.stats(0).total_matches, 11u + 15u + 21u);
}

TEST(Scheduler, UnbanAllLiftsBansButKeepsBudgets) {
  BackoffScheduler sched(2, BackoffOptions{10, 100});
  EXPECT_TRUE(sched.record_matches(0, 0, 11));
  EXPECT_TRUE(sched.record_matches(1, 0, 999));
  EXPECT_TRUE(sched.any_banned(1));
  sched.unban_all();
  EXPECT_FALSE(sched.any_banned(1));
  EXPECT_FALSE(sched.is_banned(0, 1));
  EXPECT_EQ(sched.match_limit(0), 20u);  // doubling survives the unban
}

TEST(Scheduler, ExplorationBansExplosiveRulesButStillSaturates) {
  // A tiny budget forces bans on the match-rich algebraic rules; exploration
  // must keep going (unbanning before declaring saturation) and terminate.
  Graph g;
  const Id a = g.input("a", {8, 8});
  const Id b = g.input("b", {8, 8});
  const Id c = g.input("c", {8, 8});
  const Id d = g.input("d", {8, 8});
  g.add_root(g.ewadd(a, g.ewadd(b, g.ewmul(c, d))));
  EGraph eg = seed_egraph(g);
  TensatOptions opt;
  opt.k_max = 50;
  opt.node_limit = 100000;
  opt.backoff = BackoffOptions{2, 1};
  const ExploreStats stats = run_exploration(eg, default_rules(), opt);
  EXPECT_GT(stats.bans, 0u);
  EXPECT_EQ(stats.stop, StopReason::kSaturated);
}

// ---- EGraph op-index -------------------------------------------------------

TEST(OpIndex, MatchesDirectScanAfterMergesAndRebuild) {
  Graph g;
  const Id a = g.input("a", {4, 4});
  const Id b = g.input("b", {4, 4});
  g.add_root(g.relu(a));
  g.add_root(g.relu(b));
  g.add_root(g.tanh(a));
  EGraph eg;
  auto mapping = eg.add_graph(g);
  eg.merge(mapping.at(a), mapping.at(b));  // congruence-merges the two relus

  // Dirty query (merge not yet rebuilt): the index must still come back
  // canonical and duplicate-free via the defensive fallback path.
  const std::vector<Id> dirty = eg.classes_with_op(Op::kInput);
  for (Id id : dirty) EXPECT_EQ(eg.find(id), id);
  EXPECT_TRUE(std::adjacent_find(dirty.begin(), dirty.end()) == dirty.end());
  ASSERT_EQ(dirty.size(), 1u);  // the two inputs are one class now

  eg.rebuild();

  for (Op op : {Op::kRelu, Op::kTanh, Op::kInput, Op::kMatmul}) {
    const std::vector<Id> indexed = eg.classes_with_op(op);
    // The index must be canonical, sorted, and duplicate-free.
    for (Id id : indexed) EXPECT_EQ(eg.find(id), id);
    EXPECT_TRUE(std::is_sorted(indexed.begin(), indexed.end()));
    EXPECT_TRUE(std::adjacent_find(indexed.begin(), indexed.end()) == indexed.end());
    // And agree with a direct scan over all classes.
    std::vector<Id> scan;
    for (Id cls : eg.canonical_classes())
      for (const EClassNode& e : eg.eclass(cls).nodes)
        if (e.node.op == op) {
          scan.push_back(cls);
          break;
        }
    EXPECT_EQ(indexed, scan) << "op " << op_info(op).name;
  }
  EXPECT_EQ(eg.classes_with_op(Op::kRelu).size(), 1u);
}

TEST(OpIndex, DirtyQueriesAreCachedPerVersion) {
  Graph g;
  const Id a = g.input("a", {4, 4});
  const Id b = g.input("b", {4, 4});
  g.add_root(g.relu(a));
  g.add_root(g.relu(b));
  EGraph eg;
  auto mapping = eg.add_graph(g);

  // Clean e-graph: the op-index bucket itself is served, allocation-free —
  // repeated calls return the identical vector.
  const std::vector<Id>* clean1 = &eg.classes_with_op(Op::kInput);
  const std::vector<Id>* clean2 = &eg.classes_with_op(Op::kInput);
  EXPECT_EQ(clean1, clean2);

  eg.merge(mapping.at(a), mapping.at(b));

  // Dirty e-graph: the canonicalized bucket is computed once and cached
  // until the next state change.
  const std::vector<Id>* dirty1 = &eg.classes_with_op(Op::kInput);
  const std::vector<Id>* dirty2 = &eg.classes_with_op(Op::kInput);
  EXPECT_EQ(dirty1, dirty2);
  ASSERT_EQ(dirty1->size(), 1u);
  EXPECT_EQ(eg.find((*dirty1)[0]), (*dirty1)[0]);

  // A state change invalidates the cache: the relus congruence-merge during
  // rebuild, after which the clean path serves the compacted bucket again.
  const uint64_t version_before = eg.version();
  eg.rebuild();
  EXPECT_GT(eg.version(), version_before);  // congruence merge happened
  const std::vector<Id>& relus = eg.classes_with_op(Op::kRelu);
  ASSERT_EQ(relus.size(), 1u);
  EXPECT_EQ(eg.find(relus[0]), relus[0]);
}

}  // namespace
}  // namespace tensat
