// Tests for the joint multi-pattern search plan and the parallel pattern
// search: joint-program compilation, the differential oracle proving the
// joint plan enumerates exactly the Cartesian-product join of the per-source
// match sets (with the naive backtracker as the per-source oracle), and
// determinism of N-thread vs 1-thread search.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "ematch/machine.h"
#include "ematch/program.h"
#include "lang/parse.h"
#include "models/models.h"
#include "optimizer/optimizer.h"
#include "rewrite/matcher.h"
#include "rewrite/multi.h"
#include "rewrite/rules.h"
#include "support/parallel.h"

namespace tensat {
namespace {

using ematch::compile_joint_pattern;
using ematch::Instruction;
using ematch::JointMatch;
using ematch::Program;

// ---- Joint-program compilation ---------------------------------------------

TEST(JointCompile, SharedVariablesCompareAcrossSubPatterns) {
  // (matmul ?act ?a ?b) (matmul ?act ?a ?c): the second sub-pattern's ?act
  // and ?a occurrences must prune via kCompare against the first's registers.
  Graph pat(GraphKind::kPattern);
  const Id r1 = parse_into(pat, "(matmul ?act ?a ?b)");
  const Id r2 = parse_into(pat, "(matmul ?act ?a ?c)");
  const Program prog = compile_joint_pattern(pat, {r1, r2});

  ASSERT_TRUE(prog.is_joint());
  ASSERT_EQ(prog.root_regs.size(), 2u);
  EXPECT_EQ(prog.root_regs[0], 0);
  EXPECT_EQ(prog.root_regs[1], 4);
  EXPECT_EQ(prog.num_regs, 8);

  // scan r0; bind r0 -> r1..r3; scan r4; bind r4 -> r5..r7; compare x2.
  ASSERT_EQ(prog.insts.size(), 6u);
  EXPECT_EQ(prog.insts[0].kind, Instruction::Kind::kScan);
  EXPECT_EQ(prog.insts[0].reg, 0);
  EXPECT_EQ(prog.insts[0].op, Op::kMatmul);
  EXPECT_EQ(prog.insts[1].kind, Instruction::Kind::kBind);
  EXPECT_EQ(prog.insts[2].kind, Instruction::Kind::kScan);
  EXPECT_EQ(prog.insts[2].reg, 4);
  EXPECT_EQ(prog.insts[3].kind, Instruction::Kind::kBind);
  EXPECT_EQ(prog.insts[4].kind, Instruction::Kind::kCompare);
  EXPECT_EQ(prog.insts[4].reg, 5);
  EXPECT_EQ(prog.insts[4].other, 1);  // second ?act vs first ?act
  EXPECT_EQ(prog.insts[5].kind, Instruction::Kind::kCompare);
  EXPECT_EQ(prog.insts[5].other, 2);  // second ?a vs first ?a

  // One binding per distinct variable, first occurrence wins.
  ASSERT_EQ(prog.vars.size(), 4u);
  EXPECT_EQ(prog.vars[0].first.str(), "act");
  EXPECT_EQ(prog.vars[3].first.str(), "c");

  const std::string listing = ematch::to_string(prog);
  EXPECT_NE(listing.find("scan r0, matmul"), std::string::npos);
  EXPECT_NE(listing.find("scan r4, matmul"), std::string::npos);
  EXPECT_NE(listing.find("root=r0 root=r4"), std::string::npos);
}

TEST(JointCompile, DefaultMultiRulesAllCompile) {
  const MultiPlan plan = build_multi_plan(default_rules());
  const auto& rules = default_rules();
  size_t joint = 0;
  for (size_t r = 0; r < rules.size(); ++r) {
    if (!rules[r].is_multi()) {
      EXPECT_FALSE(plan.joint_programs[r].is_joint());
      continue;
    }
    ++joint;
    const Program& prog = plan.joint_programs[r];
    ASSERT_TRUE(prog.is_joint());
    EXPECT_EQ(prog.root_regs.size(), rules[r].src_roots.size());
    // Every source variable is bound exactly once.
    for (Id src : rules[r].src_roots)
      for (Symbol v : pattern_vars(rules[r].pat, src))
        EXPECT_EQ(std::count_if(prog.vars.begin(), prog.vars.end(),
                                [&](const auto& p) { return p.first == v; }),
                  1)
            << rules[r].name << " ?" << v.str();
  }
  EXPECT_GE(joint, 4u);
}

// ---- Differential oracle: joint plan == Cartesian-product join -------------

/// Canonical fingerprint of a joint match set: multiset of
/// "root,root,...: var=class ..." lines with every id canonicalized.
std::string fingerprint(const EGraph& eg, const std::vector<JointMatch>& matches) {
  std::vector<std::string> lines;
  lines.reserve(matches.size());
  for (const JointMatch& m : matches) {
    std::ostringstream os;
    for (Id root : m.roots) os << eg.find(root) << ",";
    os << ":";
    std::vector<std::pair<std::string, Id>> bindings;
    for (const auto& [var, cls] : m.subst.bindings())
      bindings.emplace_back(var.str(), eg.find(cls));
    std::sort(bindings.begin(), bindings.end());
    for (const auto& [var, cls] : bindings) os << " " << var << "=" << cls;
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

/// Asserts, for every multi-pattern rule, that the joint program enumerates
/// exactly the compatible combinations of the per-source match sets — with
/// the per-source sets produced by the NAIVE matcher, so the joint plan is
/// anchored to the same reference oracle as the single-pattern VM.
void expect_joint_parity(const EGraph& eg, const char* context) {
  const auto& rules = default_rules();
  const MultiPlan plan = build_multi_plan(rules);
  SearchLimits unlimited;
  unlimited.max_matches = 0;
  unlimited.max_steps = 0;
  ematch::MatchLimits vm_unlimited;
  vm_unlimited.max_matches = 0;
  vm_unlimited.max_steps = 0;
  for (size_t r = 0; r < rules.size(); ++r) {
    if (!rules[r].is_multi()) continue;
    std::vector<std::vector<PatternMatch>> per_source;
    for (Id src : rules[r].src_roots)
      per_source.push_back(search_pattern_naive(eg, rules[r].pat, src, unlimited));
    const auto baseline = cartesian_join(per_source);
    const auto joint = ematch::search_joint(eg, plan.joint_programs[r], vm_unlimited);
    EXPECT_EQ(fingerprint(eg, joint), fingerprint(eg, baseline))
        << context << ": rule " << rules[r].name;
  }
}

TEST(JointDifferential, SeedEGraphsOfAllModels) {
  for (const ModelInfo& m : tiny_models()) {
    const EGraph eg = seed_egraph(m.graph);
    expect_joint_parity(eg, m.name.c_str());
  }
}

TEST(JointDifferential, SharedOperandMatmulsWithIncompatibleGroups) {
  // Two groups of matmuls with distinct inputs: the Cartesian product is
  // (2*3)^2 = 36 combinations per rule but only same-group pairs agree on
  // ?a — exactly the pruning the joint plan must reproduce, not improve on.
  Graph g;
  for (int grp = 0; grp < 2; ++grp) {
    const Id x = g.input("x" + std::to_string(grp), {16, 16});
    for (int i = 0; i < 3; ++i)
      g.add_root(g.matmul(x, g.weight("w" + std::to_string(3 * grp + i), {16, 16})));
  }
  const EGraph eg = seed_egraph(g);
  expect_joint_parity(eg, "two-group matmuls");

  // Spot-check the counts for the share-lhs rule: 2 groups x 3x3 pairs.
  const auto& rules = default_rules();
  const MultiPlan plan = build_multi_plan(rules);
  for (size_t r = 0; r < rules.size(); ++r) {
    if (rules[r].name != "multi-matmul-share-lhs") continue;
    const auto joint = ematch::search_joint(eg, plan.joint_programs[r]);
    EXPECT_EQ(joint.size(), 18u);
    for (const JointMatch& jm : joint) {
      ASSERT_EQ(jm.roots.size(), 2u);
      // Shared ?a really is shared: both roots' matmuls read the same input.
      const auto a = jm.subst.get(Symbol("a"));
      ASSERT_TRUE(a.has_value());
    }
  }
}

TEST(JointDifferential, ExploredEGraphWithMergesAndFilters) {
  Graph g;
  const Id x = g.input("x", {64, 256});
  for (int i = 0; i < 3; ++i)
    g.add_root(g.matmul(x, g.weight("w" + std::to_string(i), {256, 256})));
  EGraph eg = seed_egraph(g);
  TensatOptions opt;
  opt.k_max = 3;
  opt.k_multi = 2;
  opt.node_limit = 3000;
  run_exploration(eg, default_rules(), opt);
  ASSERT_GT(eg.num_filtered(), 0u);  // the workload really exercises filtering
  expect_joint_parity(eg, "explored shared-matmuls");
}

// ---- Exploration-level equivalence and stats -------------------------------

TEST(JointExploration, SameCombinedMatchCountAsCartesianBaseline) {
  // One iteration over the same seed e-graph: both join strategies must see
  // exactly the same compatible combinations (order may differ, count not).
  for (const ModelInfo& m : tiny_models()) {
    ExploreStats joint_stats, cart_stats;
    {
      EGraph eg = seed_egraph(m.graph);
      TensatOptions opt;
      opt.k_max = 1;
      opt.joint_multi = true;
      joint_stats = run_exploration(eg, default_rules(), opt);
    }
    {
      EGraph eg = seed_egraph(m.graph);
      TensatOptions opt;
      opt.k_max = 1;
      opt.joint_multi = false;
      cart_stats = run_exploration(eg, default_rules(), opt);
    }
    EXPECT_EQ(joint_stats.multi_matches_found, cart_stats.multi_matches_found)
        << m.name;
    // The joint plan only ever examines compatible tuples; the Cartesian
    // baseline examines the full product.
    EXPECT_EQ(joint_stats.multi_combos_considered, joint_stats.multi_matches_found)
        << m.name;
    EXPECT_GE(cart_stats.multi_combos_considered, cart_stats.multi_matches_found)
        << m.name;
  }
}

TEST(JointExploration, OptimizesBertAndRecordsStats) {
  const Graph g = make_bert(1, 8, 64);
  TensatOptions opt;
  opt.k_max = 3;
  opt.k_multi = 2;
  opt.node_limit = 5000;
  opt.extractor = ExtractorKind::kGreedy;
  const T4CostModel model;
  const TensatResult result = optimize(g, default_rules(), model, opt);
  ASSERT_TRUE(result.ok);
  EXPECT_LE(result.optimized_cost, result.original_cost);
  EXPECT_GT(result.explore.multi_matches_found, 0u);
}

// ---- Parallel search determinism -------------------------------------------

TEST(ParallelSearch, IdenticalToSerialAcrossThreadCounts) {
  EGraph eg = seed_egraph(make_nasrnn(1, 4, 32));
  const MultiPlan plan = build_multi_plan(default_rules());
  std::vector<const ematch::Program*> progs;
  for (const CanonicalPattern& cp : plan.patterns) progs.push_back(&cp.program);

  const auto serial = ematch::search_all(eg, progs, 1);
  for (size_t threads : {2u, 4u, 8u}) {
    const auto parallel = ematch::search_all(eg, progs, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t p = 0; p < serial.size(); ++p) {
      ASSERT_EQ(parallel[p].size(), serial[p].size()) << "pattern " << p;
      for (size_t i = 0; i < serial[p].size(); ++i) {
        // Bit-identical: same roots, same bindings, same order.
        EXPECT_EQ(parallel[p][i].root, serial[p][i].root);
        EXPECT_EQ(parallel[p][i].subst.bindings(), serial[p][i].subst.bindings());
      }
    }
  }
}

TEST(ParallelSearch, TinySweepsSkipThePoolAndStayIdentical) {
  // Sweeps whose work estimate falls below kMinParallelSearchWork must run
  // serially — observable through the estimate itself — while returning the
  // same matches as any pool. The floor dropped 4096 -> 256 with the
  // persistent pool (a dispatch is a queue push, not a thread spawn), so a
  // full-ruleset sweep over a seed e-graph now *crosses* it; the
  // below-floor regime is pinned with a single-pattern sweep instead.
  EGraph eg = seed_egraph(make_nasrnn(1, 4, 32));
  const MultiPlan plan = build_multi_plan(default_rules());
  std::vector<const ematch::Program*> progs;
  for (const CanonicalPattern& cp : plan.patterns) progs.push_back(&cp.program);

  // One pattern over a few dozen classes sits far below even the lowered
  // floor: search_all takes the serial path for it...
  const std::vector<const ematch::Program*> one(progs.begin(),
                                                progs.begin() + 1);
  const size_t tiny_estimate = ematch::search_work_estimate(eg, one);
  EXPECT_LT(tiny_estimate, ematch::kMinParallelSearchWork);
  EXPECT_GT(tiny_estimate, 0u);

  // ...and whichever side of the gate a sweep lands on, the matches are
  // identical (checked on the full pattern set, which may dispatch).
  const auto serial = ematch::search_all(eg, progs, 1);
  const auto gated = ematch::search_all(eg, progs, 8);
  ASSERT_EQ(gated.size(), serial.size());
  for (size_t p = 0; p < serial.size(); ++p) {
    ASSERT_EQ(gated[p].size(), serial[p].size()) << "pattern " << p;
    for (size_t i = 0; i < serial[p].size(); ++i) {
      EXPECT_EQ(gated[p][i].root, serial[p][i].root);
      EXPECT_EQ(gated[p][i].subst.bindings(), serial[p][i].subst.bindings());
    }
  }

  // The estimate scales with the candidate classes, so a graph with many
  // root-op candidates crosses the threshold and re-enables the pool.
  Graph big;
  const Id x = big.input("x", {8, 8});
  for (int i = 0; i < 400; ++i) {
    const Id w = big.weight("w" + std::to_string(i), {8, 8});
    big.add_root(big.matmul(x, w));
  }
  EGraph big_eg = seed_egraph(big);
  EXPECT_GE(ematch::search_work_estimate(big_eg, progs),
            ematch::kMinParallelSearchWork);
}

TEST(ParallelSearch, ExplorationStatsIndependentOfThreadCount) {
  auto explore = [](size_t threads) {
    EGraph eg = seed_egraph(make_bert(1, 8, 64));
    TensatOptions opt;
    opt.k_max = 3;
    opt.k_multi = 2;
    opt.node_limit = 4000;
    opt.search_threads = threads;
    ExploreStats stats = run_exploration(eg, default_rules(), opt);
    stats.seconds = 0.0;  // the only field allowed to differ
    return std::make_tuple(stats.iterations, stats.stop, stats.enodes,
                           stats.enodes_total, stats.eclasses, stats.filtered,
                           stats.matches_found, stats.applications,
                           stats.multi_matches_found, stats.multi_combos_considered,
                           stats.bans, stats.searches_skipped);
  };
  const auto serial = explore(1);
  EXPECT_EQ(explore(2), serial);
  EXPECT_EQ(explore(4), serial);
  EXPECT_EQ(explore(0), serial);  // 0 = hardware concurrency
}

TEST(ParallelSearch, JointSearchAlsoRunsUnderWorkers) {
  // Joint searches fan out through the same pool inside run_exploration;
  // this pins the multi-pattern stats across thread counts too.
  auto multi_found = [](size_t threads) {
    EGraph eg = seed_egraph(make_bert(1, 8, 64));
    TensatOptions opt;
    opt.k_max = 1;
    opt.search_threads = threads;
    return run_exploration(eg, default_rules(), opt).multi_matches_found;
  };
  EXPECT_EQ(multi_found(4), multi_found(1));
}

}  // namespace
}  // namespace tensat
